/**
 * @file
 * Table I: the 122 benchmarks with their suites, inputs, and dynamic
 * instruction counts — the paper's counts (millions, on Alpha) side by
 * side with the synthetic kernels' counts (run to completion here).
 */

#include "bench_common.hh"

#include "isa/interpreter.hh"
#include "report/table.hh"
#include "workloads/registry.hh"

using namespace mica;

int
main(int argc, char **argv)
{
    (void)argc;
    (void)argv;
    bench::banner("Table I: benchmark population",
                  "Table I (benchmarks, inputs, instruction counts)");

    const auto &reg = workloads::BenchmarkRegistry::instance();

    report::TextTable t({"suite", "program", "input", "paper I-cnt (M)",
                         "synthetic I-cnt", "static insts"},
                        {report::Align::Left, report::Align::Left,
                         report::Align::Left, report::Align::Right,
                         report::Align::Right, report::Align::Right});

    uint64_t total = 0;
    for (const auto &e : reg.all()) {
        const isa::Program prog = e.build();
        isa::Interpreter interp(prog);
        InstRecord rec;
        uint64_t n = 0;
        while (n < 8000000 && interp.next(rec))
            ++n;
        total += n;
        t.addRow({e.info.suite, e.info.program, e.info.input,
                  std::to_string(e.info.paperICountM),
                  std::to_string(n), std::to_string(prog.code.size())});
    }
    std::printf("%s\n", t.render("Benchmarks used (Table I)").c_str());

    std::printf("122 benchmarks, 6 suites; total synthetic dynamic "
                "instructions: %llu\n",
                static_cast<unsigned long long>(total));
    std::printf("(Synthetic counts are scaled-down kernels; the paper "
                "profiles full Alpha runs.)\n");
    return 0;
}
