/**
 * @file
 * Fig. 5: the correlation between full-space and reduced-space pairwise
 * distances, as a function of how many characteristics the correlation-
 * elimination method retains, with the genetic algorithm's single point
 * overlaid. Paper: GA reaches rho = 0.876 with 8 characteristics, above
 * the CE curve (0.823 with 17 kept).
 */

#include "bench_common.hh"

#include "methodology/correlation_elimination.hh"
#include "methodology/genetic_selector.hh"
#include "methodology/workload_space.hh"
#include "report/ascii_plot.hh"
#include "report/table.hh"

using namespace mica;

int
main(int argc, char **argv)
{
    const auto cfg = experiments::configFromArgs(argc, argv);
    bench::banner("Fig. 5: distance correlation vs retained count",
                  "Fig. 5 and Section V-D");

    const auto ds = bench::collectWithBanner(cfg);
    const WorkloadSpace mica(ds.micaMatrix());

    const auto ce = correlationElimination(mica);
    GaConfig gcfg;
    const GaResult ga = geneticSelect(mica, gcfg);

    report::Series ceSeries;
    ceSeries.label = "correlation elimination";
    ceSeries.marker = 'o';
    for (size_t k = 1; k <= kNumMicaChars; ++k) {
        ceSeries.x.push_back(static_cast<double>(k));
        ceSeries.y.push_back(ce.distanceCorrByK[k - 1]);
    }
    report::Series gaSeries;
    gaSeries.label = "genetic algorithm";
    gaSeries.marker = '#';
    gaSeries.x.push_back(static_cast<double>(ga.selected.size()));
    gaSeries.y.push_back(ga.distanceCorrelation);

    report::PlotConfig pc;
    pc.width = 70;
    pc.height = 22;
    pc.xLabel = "number of retained characteristics";
    pc.yLabel = "distance correlation with the full 47-char space";
    pc.title = "Fig. 5";
    std::printf("%s\n",
                report::scatterPlot({ceSeries, gaSeries}, pc).c_str());

    report::TextTable t({"retained k", "CE rho"},
                        {report::Align::Right, report::Align::Right});
    for (size_t k : {47u, 32u, 24u, 17u, 12u, 8u, 7u, 4u, 2u, 1u}) {
        t.addRow({std::to_string(k),
                  report::TextTable::num(ce.distanceCorrByK[k - 1], 3)});
    }
    std::printf("%s\n",
                t.render("Correlation elimination trajectory").c_str());

    std::printf("GA point: %zu characteristics, rho = %.3f "
                "(fitness %.3f)\n",
                ga.selected.size(), ga.distanceCorrelation, ga.fitness);
    std::printf("paper:    8 characteristics, rho = 0.876; "
                "CE rho = 0.823 at 17 kept\n\n");

    const size_t gaK = ga.selected.size();
    const double ceAtGaK = ce.distanceCorrByK[gaK - 1];
    const bool gaBeatsCe = ga.distanceCorrelation > ceAtGaK;
    const bool gaHighRho = ga.distanceCorrelation > 0.8;
    const bool gaSmall = gaK <= 16;
    std::printf("shape check: GA rho beats CE at the same k (%zu): "
                "%.3f vs %.3f: %s\n",
                gaK, ga.distanceCorrelation, ceAtGaK,
                gaBeatsCe ? "PASS" : "FAIL");
    std::printf("shape check: GA keeps high fidelity (rho > 0.8):  %s\n",
                gaHighRho ? "PASS" : "FAIL");
    std::printf("shape check: GA subset is small (<= 16 of 47):    %s\n",
                gaSmall ? "PASS" : "FAIL");
    return (gaBeatsCe && gaHighRho && gaSmall) ? 0 : 1;
}
