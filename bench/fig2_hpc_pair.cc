/**
 * @file
 * Fig. 2: hardware-performance-counter characteristics of the case-study
 * pair. The paper contrasts SPEC's bzip2 with BioInfoMark's blast: their
 * counter profiles look alike. We print the paper's pair and also search
 * for the strongest "false positive" pair in our population (closest in
 * HPC space while far apart in MICA space).
 */

#include "bench_common.hh"

#include "methodology/workload_space.hh"
#include "report/table.hh"

using namespace mica;

namespace
{

/** Per-metric normalization by the column max (the paper's Fig. 2). */
void
printPair(const experiments::SuiteDataset &ds, size_t a, size_t b)
{
    const Matrix hm = ds.hpcMatrix();
    report::TextTable t({"HPC metric", ds.benchmarks[a].shortName(),
                         ds.benchmarks[b].shortName(), "normalized A",
                         "normalized B"},
                        {report::Align::Left, report::Align::Right,
                         report::Align::Right, report::Align::Right,
                         report::Align::Right});
    for (size_t c = 0; c < hm.cols(); ++c) {
        double mx = 0;
        for (size_t r = 0; r < hm.rows(); ++r)
            mx = std::max(mx, hm(r, c));
        const double na = mx > 0 ? hm(a, c) / mx : 0.0;
        const double nb = mx > 0 ? hm(b, c) / mx : 0.0;
        t.addRow({hm.colNames[c], report::TextTable::num(hm(a, c), 4),
                  report::TextTable::num(hm(b, c), 4),
                  report::TextTable::num(na, 3),
                  report::TextTable::num(nb, 3)});
    }
    std::printf("%s\n", t.render().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const auto cfg = experiments::configFromArgs(argc, argv);
    bench::banner("Fig. 2: HPC characteristics of a look-alike pair",
                  "Fig. 2 (bzip2 vs blast, hardware counters)");

    const auto ds = bench::collectWithBanner(cfg);
    const WorkloadSpace mica(ds.micaMatrix());
    const WorkloadSpace hpc(ds.hpcMatrix());

    const size_t bzip2 = ds.indexOf("SPEC2000/bzip2.source");
    const size_t blast = ds.indexOf("BioInfoMark/blast.protein");

    std::printf("--- the paper's pair: bzip2 vs blast ---\n");
    printPair(ds, bzip2, blast);
    std::printf("HPC-space distance:  %.3f  (max observed %.3f)\n",
                hpc.distances().at(bzip2, blast),
                hpc.distances().maxDistance());
    std::printf("MICA-space distance: %.3f  (max observed %.3f)\n\n",
                mica.distances().at(bzip2, blast),
                mica.distances().maxDistance());

    // Strongest false-positive pair in this population: minimize the
    // HPC distance among tuples whose MICA distance is "large" (>20%).
    const double micaThr = 0.2 * mica.distances().maxDistance();
    size_t bestI = 0, bestJ = 1;
    double bestH = 1e300;
    const size_t n = ds.benchmarks.size();
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            if (mica.distances().at(i, j) <= micaThr)
                continue;
            const double h = hpc.distances().at(i, j);
            if (h < bestH) {
                bestH = h;
                bestI = i;
                bestJ = j;
            }
        }
    }
    std::printf("--- strongest false-positive pair here: %s vs %s ---\n",
                ds.benchmarks[bestI].fullName().c_str(),
                ds.benchmarks[bestJ].fullName().c_str());
    printPair(ds, bestI, bestJ);
    std::printf("HPC-space distance:  %.3f (near-identical counters)\n",
                bestH);
    std::printf("MICA-space distance: %.3f (inherently dissimilar)\n\n",
                mica.distances().at(bestI, bestJ));

    const bool foundFp = bestH < 0.2 * hpc.distances().maxDistance();
    std::printf("shape check: a pair exists that is similar in HPC "
                "space yet dissimilar in MICA space: %s\n",
                foundFp ? "PASS" : "FAIL");
    return foundFp ? 0 : 1;
}
