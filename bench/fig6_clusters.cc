/**
 * @file
 * Fig. 6 and Section VI: cluster the 122 benchmarks in the GA-selected
 * key-characteristic space with k-means, picking K by the BIC-within-
 * 90%-of-max rule over K = 1..70, then report the clusters with kiviat
 * summaries and the paper's suite-level conclusions: parts of
 * BioInfoMark / BioMetricsWorkload / CommBench sit apart from SPEC
 * CPU2000, while MediaBench / MiBench mostly co-cluster with SPEC.
 */

#include "bench_common.hh"

#include "methodology/cluster_report.hh"
#include "methodology/genetic_selector.hh"
#include "methodology/kiviat.hh"
#include "methodology/workload_space.hh"
#include "report/table.hh"
#include "stats/descriptive.hh"

using namespace mica;

int
main(int argc, char **argv)
{
    const auto cfg = experiments::configFromArgs(argc, argv);
    bench::banner("Fig. 6: clustering in the key-characteristic space",
                  "Fig. 6 and Section VI");

    const auto ds = bench::collectWithBanner(cfg);
    Matrix mm = ds.micaMatrix();
    const WorkloadSpace mica(mm);

    GaConfig gcfg;
    const GaResult ga = geneticSelect(mica, gcfg);
    std::printf("GA retained %zu characteristics (rho %.3f):",
                ga.selected.size(), ga.distanceCorrelation);
    for (size_t s : ga.selected)
        std::printf(" %s", micaCharInfo(s).name);
    std::printf("\n\n");

    Matrix reduced = mica.normalized().selectCols(ga.selected);
    reduced.rowNames = mm.rowNames;

    const ClusterReport rep = clusterBenchmarks(reduced, 70, 20061027);
    std::printf("chosen K by the 90%%-of-max BIC rule over K=1..70: "
                "%zu clusters (paper: 15)\n\n", rep.chosenK);

    // Min-max normalized kiviat data in the reduced space.
    Matrix kiviatData = mica.raw().selectCols(ga.selected);
    kiviatData.rowNames = mm.rowNames;
    const auto stars = buildKiviats(kiviatData);

    const auto &suites = experiments::suiteNames();
    for (const auto &c : rep.clusters) {
        std::printf("cluster %zu (%zu members)%s\n", c.id,
                    c.members.size(),
                    c.isSingleton() ? " [singleton]" : "");
        const auto hist = rep.suiteHistogram(c, suites);
        std::printf("  suites:");
        for (size_t s = 0; s < suites.size(); ++s) {
            if (hist[s])
                std::printf(" %s=%zu", suites[s].c_str(), hist[s]);
        }
        std::printf("\n");
        for (size_t m : c.members) {
            std::printf("  %-46s %s\n",
                        ds.benchmarks[m].fullName().c_str(),
                        renderKiviatBars(stars[m], 8).c_str());
        }
        std::printf("\n");
    }

    // Suite-level conclusions: which benchmarks share no cluster with
    // any SPEC CPU2000 benchmark?
    std::vector<bool> clusterHasSpec(rep.clusters.size(), false);
    for (const auto &c : rep.clusters) {
        for (size_t m : c.members) {
            if (ds.benchmarks[m].suite == "SPEC2000")
                clusterHasSpec[c.id] = true;
        }
    }
    report::TextTable t({"suite", "benchmarks",
                         "dissimilar from all of SPEC", "fraction"},
                        {report::Align::Left, report::Align::Right,
                         report::Align::Right, report::Align::Right});
    std::vector<double> dissimFrac;
    for (const auto &suite : suites) {
        size_t total = 0, dissim = 0;
        for (size_t m = 0; m < ds.benchmarks.size(); ++m) {
            if (ds.benchmarks[m].suite != suite)
                continue;
            ++total;
            if (!clusterHasSpec[static_cast<size_t>(rep.assignment[m])])
                ++dissim;
        }
        dissimFrac.push_back(total ? double(dissim) / double(total) : 0);
        t.addRow({suite, std::to_string(total), std::to_string(dissim),
                  report::TextTable::pct(dissimFrac.back(), 0)});
    }
    std::printf("%s\n",
                t.render("Benchmarks in clusters with no SPEC CPU2000 "
                         "member").c_str());
    std::printf("paper: several BioInfoMark / BioMetricsWorkload / "
                "CommBench benchmarks are\ndissimilar from SPEC; "
                "MediaBench / MiBench mostly co-cluster with SPEC\n\n");

    // Shape checks.
    const double bioDis = dissimFrac[0];
    const double commDis = dissimFrac[2];
    const double mediaDis = dissimFrac[3];
    const double miDis = dissimFrac[4];
    const bool multiCluster = rep.chosenK >= 6 && rep.chosenK <= 40;
    const bool emergingApart = bioDis > 0.0 || commDis > 0.0;
    const bool mediaClose = mediaDis <= bioDis + 0.5 &&
                            miDis < 0.67;
    std::printf("shape check: population splits into many clusters "
                "(6..40): %s (K=%zu)\n",
                multiCluster ? "PASS" : "FAIL", rep.chosenK);
    std::printf("shape check: emerging bio/comm workloads sit apart "
                "from SPEC: %s\n", emergingApart ? "PASS" : "FAIL");
    std::printf("shape check: media/embedded mostly co-cluster with "
                "SPEC: %s\n", mediaClose ? "PASS" : "FAIL");
    return (multiCluster && emergingApart && mediaClose) ? 0 : 1;
}
