/**
 * @file
 * Ablation: PCA versus subset selection (Section V-C discussion).
 *
 * PCA also compresses the 47-D space, and does so optimally in a
 * variance sense — but every original characteristic must still be
 * measured to project onto the components, and the dimensions are
 * linear mixtures that resist interpretation. This harness quantifies
 * the comparison: distance fidelity at equal dimensionality, and how
 * many raw characteristics each approach must measure.
 */

#include "bench_common.hh"

#include "methodology/correlation_elimination.hh"
#include "methodology/genetic_selector.hh"
#include "methodology/workload_space.hh"
#include "report/table.hh"
#include "stats/descriptive.hh"
#include "stats/pca.hh"

using namespace mica;

int
main(int argc, char **argv)
{
    const auto cfg = experiments::configFromArgs(argc, argv);
    bench::banner("Ablation: PCA vs characteristic-subset selection",
                  "Section V-C (comparison against PCA methods)");

    const auto ds = bench::collectWithBanner(cfg);
    const WorkloadSpace mica(ds.micaMatrix());
    const auto &fullDist = mica.distances().condensed();

    const PcaResult pca = pcaFit(mica.normalized());
    const auto ce = correlationElimination(mica);
    GaConfig gcfg;
    const GaResult ga = geneticSelect(mica, gcfg);
    const size_t k = ga.selected.size();

    // Distance fidelity of a k-PC projection.
    const Matrix proj = pca.project(mica.normalized(), k);
    const DistanceMatrix pcaDist(proj);
    const double pcaRho = pearson(fullDist, pcaDist.condensed());

    report::TextTable t({"method", "dims kept", "raw chars measured",
                         "distance rho", "interpretable axes"},
                        {report::Align::Left, report::Align::Right,
                         report::Align::Right, report::Align::Right,
                         report::Align::Right});
    t.addRow({"PCA projection", std::to_string(k), "47",
              report::TextTable::num(pcaRho, 3), "no"});
    t.addRow({"correlation elimination", std::to_string(k),
              std::to_string(k),
              report::TextTable::num(ce.distanceCorrByK[k - 1], 3),
              "yes"});
    t.addRow({"genetic algorithm", std::to_string(k), std::to_string(k),
              report::TextTable::num(ga.distanceCorrelation, 3), "yes"});
    std::printf("%s\n",
                t.render("Dimensionality reduction at equal k").c_str());

    std::printf("variance explained by the first %zu PCs: %.1f%%\n\n",
                k, 100.0 * pca.varianceExplained(k));

    // Shape checks: PCA is the fidelity upper bound at equal k, but the
    // GA subset comes close while measuring k instead of 47 raw
    // characteristics — the paper's "faster to collect" argument.
    const bool pcaBest = pcaRho >= ga.distanceCorrelation - 0.02;
    const bool gaClose = ga.distanceCorrelation > pcaRho - 0.2;
    std::printf("shape check: PCA is the fidelity bound at equal k: "
                "%s\n", pcaBest ? "PASS" : "FAIL");
    std::printf("shape check: GA subset stays close to PCA while "
                "measuring only %zu/47: %s\n",
                k, gaClose ? "PASS" : "FAIL");
    return (pcaBest && gaClose) ? 0 : 1;
}
