/**
 * @file
 * Ablation: genetic-algorithm hyperparameter sensitivity. DESIGN.md
 * calls out the GA configuration (population, mutation rate, seed) as
 * a design choice; this harness shows the selected-subset quality is
 * stable across reasonable settings, i.e. the paper's conclusion does
 * not hinge on GA tuning.
 */

#include "bench_common.hh"

#include "methodology/genetic_selector.hh"
#include "methodology/workload_space.hh"
#include "report/table.hh"

using namespace mica;

int
main(int argc, char **argv)
{
    const auto cfg = experiments::configFromArgs(argc, argv);
    bench::banner("Ablation: GA hyperparameter sensitivity",
                  "Section V-B (GA configuration)");

    const auto ds = bench::collectWithBanner(cfg);
    const WorkloadSpace mica(ds.micaMatrix());

    struct Variant
    {
        const char *label;
        GaConfig cfg;
    };
    std::vector<Variant> variants;
    {
        Variant v{"baseline", {}};
        variants.push_back(v);
        v = {"small population (16)", {}};
        v.cfg.populationSize = 16;
        variants.push_back(v);
        v = {"large population (128)", {}};
        v.cfg.populationSize = 128;
        variants.push_back(v);
        v = {"high mutation (0.08)", {}};
        v.cfg.mutationRate = 0.08;
        variants.push_back(v);
        v = {"low mutation (0.005)", {}};
        v.cfg.mutationRate = 0.005;
        variants.push_back(v);
        v = {"no crossover", {}};
        v.cfg.crossoverRate = 0.0;
        variants.push_back(v);
        v = {"seed 1", {}};
        v.cfg.seed = 1;
        variants.push_back(v);
        v = {"seed 2", {}};
        v.cfg.seed = 2;
        variants.push_back(v);
    }

    report::TextTable t({"variant", "#chars", "rho", "fitness",
                         "generations"},
                        {report::Align::Left, report::Align::Right,
                         report::Align::Right, report::Align::Right,
                         report::Align::Right});
    double minFit = 1.0, maxFit = 0.0, minRho = 1.0;
    for (const auto &v : variants) {
        const GaResult res = geneticSelect(mica, v.cfg);
        t.addRow({v.label, std::to_string(res.selected.size()),
                  report::TextTable::num(res.distanceCorrelation, 3),
                  report::TextTable::num(res.fitness, 3),
                  std::to_string(res.generationsRun)});
        minFit = std::min(minFit, res.fitness);
        maxFit = std::max(maxFit, res.fitness);
        minRho = std::min(minRho, res.distanceCorrelation);
    }
    std::printf("%s\n", t.render("GA outcome across settings").c_str());

    const bool stableFitness = (maxFit - minFit) < 0.15;
    const bool alwaysFaithful = minRho > 0.7;
    std::printf("shape check: fitness stable across settings "
                "(spread %.3f < 0.15): %s\n",
                maxFit - minFit, stableFitness ? "PASS" : "FAIL");
    std::printf("shape check: every setting keeps rho > 0.7:          "
                "    %s\n", alwaysFaithful ? "PASS" : "FAIL");
    return (stableFitness && alwaysFaithful) ? 0 : 1;
}
