/**
 * @file
 * Fig. 3: microarchitecture-independent characteristics of the bzip2 /
 * blast case-study pair, normalized per characteristic by the maximum
 * across benchmarks. The paper's observation: the working sets (both
 * streams), global-history branch predictability, and global store
 * strides differ sharply even though the counters look alike (Fig. 2).
 */

#include <cmath>

#include "bench_common.hh"

#include "report/table.hh"

using namespace mica;

int
main(int argc, char **argv)
{
    const auto cfg = experiments::configFromArgs(argc, argv);
    bench::banner("Fig. 3: MICA characteristics of the same pair",
                  "Fig. 3 (bzip2 vs blast, 47 characteristics)");

    const auto ds = bench::collectWithBanner(cfg);
    const Matrix mm = ds.micaMatrix();
    const size_t a = ds.indexOf("SPEC2000/bzip2.source");
    const size_t b = ds.indexOf("BioInfoMark/blast.protein");

    report::TextTable t({"no.", "characteristic", "bzip2 (norm)",
                         "blast (norm)", "|delta|"},
                        {report::Align::Right, report::Align::Left,
                         report::Align::Right, report::Align::Right,
                         report::Align::Right});

    std::vector<std::pair<double, size_t>> deltas;
    for (size_t c = 0; c < kNumMicaChars; ++c) {
        double mx = 0;
        for (size_t r = 0; r < mm.rows(); ++r)
            mx = std::max(mx, std::fabs(mm(r, c)));
        const double na = mx > 0 ? mm(a, c) / mx : 0.0;
        const double nb = mx > 0 ? mm(b, c) / mx : 0.0;
        deltas.push_back({std::fabs(na - nb), c});
        t.addRow({std::to_string(c + 1), micaCharInfo(c).name,
                  report::TextTable::num(na, 3),
                  report::TextTable::num(nb, 3),
                  report::TextTable::num(std::fabs(na - nb), 3)});
    }
    std::printf("%s\n",
                t.render("Normalized MICA characteristics "
                         "(Fig. 3)").c_str());

    std::sort(deltas.rbegin(), deltas.rend());
    std::printf("most dissimilar characteristics for this pair:\n");
    for (size_t i = 0; i < 6; ++i) {
        std::printf("  %-14s (no. %zu)  |delta| = %.3f\n",
                    micaCharInfo(deltas[i].second).name,
                    deltas[i].second + 1, deltas[i].first);
    }
    std::printf("paper highlights: working sets (I and D streams), "
                "global-history branch\npredictability, global store "
                "strides\n\n");

    // Shape check: at least one working-set characteristic is among
    // the most divergent for this pair, as in the paper.
    bool wsDivergent = false;
    for (size_t i = 0; i < 8; ++i) {
        const size_t c = deltas[i].second;
        wsDivergent = wsDivergent ||
            (c >= DWorkSet32B && c <= IWorkSet4K);
    }
    std::printf("shape check: working-set characteristics among the "
                "top differences: %s\n", wsDivergent ? "PASS" : "FAIL");
    return wsDivergent ? 0 : 1;
}
