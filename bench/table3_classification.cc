/**
 * @file
 * Table III: classify every benchmark tuple by whether its distance is
 * large/small in the HPC space vs the MICA space (20%-of-max
 * thresholds). The paper's shape: false negatives are rare (0.2%),
 * false positives are plentiful (41.1%) — HPC similarity often hides
 * dissimilar inherent behavior.
 */

#include "bench_common.hh"

#include "methodology/classifier.hh"
#include "methodology/workload_space.hh"
#include "report/table.hh"

using namespace mica;

int
main(int argc, char **argv)
{
    const auto cfg = experiments::configFromArgs(argc, argv);
    bench::banner("Table III: benchmark-tuple classification",
                  "Table III and Section IV");

    const auto ds = bench::collectWithBanner(cfg);
    const WorkloadSpace mica(ds.micaMatrix());
    const WorkloadSpace hpc(ds.hpcMatrix());

    const auto q = classifyTuples(hpc.distances().condensed(),
                                  mica.distances().condensed(),
                                  0.2, 0.2);

    report::TextTable t({"", "small dist in uarch-indep space",
                         "large dist in uarch-indep space"},
                        {report::Align::Left, report::Align::Right,
                         report::Align::Right});
    t.addRow({"large dist in HPC space",
              "FN: " + report::TextTable::pct(q.fracFN(), 1),
              "TP: " + report::TextTable::pct(q.fracTP(), 1)});
    t.addRow({"small dist in HPC space",
              "TN: " + report::TextTable::pct(q.fracTN(), 1),
              "FP: " + report::TextTable::pct(q.fracFP(), 1)});
    std::printf("%s\n",
                t.render("Tuple classification at 20%-of-max "
                         "thresholds (Table III)").c_str());

    std::printf("paper:  FN 0.2%%   TP 56.9%%   TN 1.8%%   FP 41.1%%\n");
    std::printf("thresholds: HPC %.3f, MICA %.3f (absolute)\n\n",
                q.refThreshold, q.candThreshold);

    // Shape checks from the paper's analysis.
    const bool fnRare = q.fracFN() < 0.05;
    const bool fpDominatesFn = q.fracFP() > 5 * q.fracFN();
    const bool fpSubstantial = q.fracFP() > 0.05;
    std::printf("shape check: false negatives rare (<5%%):         %s\n",
                fnRare ? "PASS" : "FAIL");
    std::printf("shape check: false positives >> false negatives: %s\n",
                fpDominatesFn ? "PASS" : "FAIL");
    std::printf("shape check: false positives substantial (>5%%):  %s\n",
                fpSubstantial ? "PASS" : "FAIL");
    return (fnRare && fpDominatesFn && fpSubstantial) ? 0 : 1;
}
