/**
 * @file
 * Application harness: benchmark-suite subsetting (the payoff the paper
 * motivates in Section I — avoid simulating redundant benchmarks).
 *
 * Selects cluster-medoid representatives in the GA-reduced key-
 * characteristic space and sweeps the subset size against coverage, so
 * an architect can read off "simulate these N instead of all 122".
 */

#include "bench_common.hh"

#include "methodology/genetic_selector.hh"
#include "methodology/subsetting.hh"
#include "methodology/workload_space.hh"
#include "report/table.hh"

using namespace mica;

int
main(int argc, char **argv)
{
    const auto cfg = experiments::configFromArgs(argc, argv);
    bench::banner("Application: benchmark-suite subsetting",
                  "Section I motivation; Eeckhout et al. [16], "
                  "Phansalkar et al. [9]");

    const auto ds = bench::collectWithBanner(cfg);
    Matrix mm = ds.micaMatrix();
    const WorkloadSpace mica(mm);

    GaConfig gcfg;
    const GaResult ga = geneticSelect(mica, gcfg);
    Matrix reduced = mica.normalized().selectCols(ga.selected);
    reduced.rowNames = mm.rowNames;

    // BIC-chosen subset.
    const SubsetResult bic =
        selectRepresentatives(reduced, 70, 20061027);
    report::TextTable t({"representative", "covers", "max dist",
                         "mean dist"},
                        {report::Align::Left, report::Align::Right,
                         report::Align::Right, report::Align::Right});
    for (const auto &rep : bic.representatives) {
        t.addRow({rep.name, std::to_string(rep.covers.size()),
                  report::TextTable::num(rep.maxDistance, 3),
                  report::TextTable::num(rep.meanDistance, 3)});
    }
    std::printf("%s\n",
                t.render("BIC-chosen representatives (one per behavior "
                         "cluster)").c_str());
    std::printf("%zu representatives for %zu benchmarks: %.1fX fewer "
                "simulations,\nmean coverage distance %.3f "
                "(population max pair distance %.3f)\n\n",
                bic.representatives.size(), bic.populationSize,
                bic.reductionFactor, bic.meanCoverDistance,
                mica.distances().maxDistance());

    // Size-vs-coverage sweep.
    report::TextTable sweep({"subset size", "reduction", "mean dist",
                             "max dist"},
                            {report::Align::Right, report::Align::Right,
                             report::Align::Right,
                             report::Align::Right});
    double prevMean = 1e300;
    bool monotone = true;
    for (size_t k : {4u, 8u, 15u, 25u, 40u, 60u}) {
        const SubsetResult r = selectKRepresentatives(reduced, k, 7);
        sweep.addRow({std::to_string(k),
                      report::TextTable::num(r.reductionFactor, 1) + "X",
                      report::TextTable::num(r.meanCoverDistance, 3),
                      report::TextTable::num(r.maxCoverDistance, 3)});
        monotone = monotone && r.meanCoverDistance <= prevMean + 0.05;
        prevMean = r.meanCoverDistance;
    }
    std::printf("%s\n",
                sweep.render("Subset size vs coverage").c_str());

    const bool usefulReduction = bic.reductionFactor >= 3.0;
    const bool tightCoverage =
        bic.meanCoverDistance < 0.2 * mica.distances().maxDistance();
    std::printf("shape check: >= 3X fewer benchmarks to simulate:   "
                "%s\n", usefulReduction ? "PASS" : "FAIL");
    std::printf("shape check: mean coverage within 20%% of max dist: "
                "%s\n", tightCoverage ? "PASS" : "FAIL");
    std::printf("shape check: coverage improves with subset size:   "
                "%s\n", monotone ? "PASS" : "FAIL");
    return (usefulReduction && tightCoverage && monotone) ? 0 : 1;
}
