/**
 * @file
 * Shared scaffolding for the experiment harnesses in bench/.
 *
 * Every harness regenerates one table or figure of the paper. They all
 * accept --budget=N (per-benchmark instruction cap), --cache=DIR (CSV
 * profile cache), and --quick (reduced budget), via
 * experiments::configFromArgs.
 */

#pragma once

#include <cstdio>
#include <string>

#include "experiments/experiments.hh"

namespace mica::bench
{

/** Print the standard harness banner. */
inline void
banner(const std::string &what, const std::string &paperRef)
{
    std::printf("================================================"
                "=====================\n");
    std::printf("%s\n", what.c_str());
    std::printf("Reproduces: %s (Hoste & Eeckhout, IISWC 2006)\n",
                paperRef.c_str());
    std::printf("================================================"
                "=====================\n\n");
}

/** Collect the full 122-benchmark dataset, reporting live progress. */
inline experiments::SuiteDataset
collectWithBanner(const experiments::DatasetConfig &cfg)
{
    std::printf("[collecting %s profiles for 122 benchmarks, "
                "budget=%llu%s, jobs=%u]\n\n",
                cfg.cacheDir.empty() ? "fresh" : "cached-or-fresh",
                static_cast<unsigned long long>(cfg.maxInsts),
                cfg.maxInsts == 0 ? " (run to completion)" : "",
                cfg.jobs);
    experiments::DatasetConfig runCfg = cfg;
    if (!runCfg.progress)
        runCfg.progress = pipeline::stderrProgress();
    return experiments::collectSuiteDataset(runCfg);
}

} // namespace mica::bench
