/**
 * @file
 * Table IV: the key microarchitecture-independent characteristics the
 * genetic algorithm retains. The paper's eight: pct loads, avg input
 * operands, reg dep <= 8, local load stride <= 64, global load stride
 * <= 512, local store stride <= 4096, D-working-set at 4KB pages, and
 * ILP at a 256-entry window — one or two picks per Table II category.
 */

#include <set>

#include "bench_common.hh"

#include "methodology/genetic_selector.hh"
#include "methodology/workload_space.hh"
#include "report/table.hh"

using namespace mica;

int
main(int argc, char **argv)
{
    const auto cfg = experiments::configFromArgs(argc, argv);
    bench::banner("Table IV: GA-selected key characteristics",
                  "Table IV and Section V-B");

    const auto ds = bench::collectWithBanner(cfg);
    const WorkloadSpace mica(ds.micaMatrix());

    GaConfig gcfg;
    const GaResult ga = geneticSelect(mica, gcfg);

    report::TextTable t({"#", "Table II no.", "characteristic",
                         "category"},
                        {report::Align::Right, report::Align::Right,
                         report::Align::Left, report::Align::Left});
    size_t i = 1;
    for (size_t s : ga.selected) {
        const auto &info = micaCharInfo(s);
        t.addRow({std::to_string(i++), std::to_string(s + 1),
                  info.describe, info.category});
    }
    std::printf("%s\n",
                t.render("Characteristics selected by the genetic "
                         "algorithm (Table IV)").c_str());

    std::printf("selected %zu of 47; distance correlation %.3f; "
                "fitness %.3f;\nconverged after %zu generations\n",
                ga.selected.size(), ga.distanceCorrelation, ga.fitness,
                ga.generationsRun);
    std::printf("paper: 8 of 47; distance correlation 0.876\n\n");

    // Shape checks: small subset, high fidelity, and category spread
    // (the paper's set covers mix/ILP/register/working-set/strides).
    std::set<std::string> categories;
    for (size_t s : ga.selected)
        categories.insert(micaCharInfo(s).category);
    const bool small = ga.selected.size() >= 4 &&
                       ga.selected.size() <= 16;
    const bool faithful = ga.distanceCorrelation > 0.8;
    const bool spread = categories.size() >= 3;
    std::printf("shape check: compact subset (4..16 chars):      %s\n",
                small ? "PASS" : "FAIL");
    std::printf("shape check: high distance fidelity (rho>0.8):  %s\n",
                faithful ? "PASS" : "FAIL");
    std::printf("shape check: picks span >= 3 categories:        %s\n",
                spread ? "PASS" : "FAIL");
    return (small && faithful && spread) ? 0 : 1;
}
