/**
 * @file
 * Frozen copies of the PR-1 (seed) analyzer hot paths, bench-only.
 *
 * These are the node-container, record-at-a-time implementations the
 * batched engine and flat-hash analyzers replaced: std::unordered_map
 * PPM context tables with separate find and update passes,
 * std::unordered_set working sets, per-cut compare loops, and the
 * modulo ILP ring. perf_analyzers drives them through
 * AnalysisEngine::runPerRecord() to measure the *seed baseline*
 * throughput on the current machine, so BENCH_profile.json records an
 * honest before/after pair for every run instead of a number measured
 * once on somebody else's hardware.
 *
 * Do not use these outside the benchmark; they exist only as the
 * measurement baseline.
 */

#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/trace_source.hh"

namespace mica::legacy
{

/** Seed instruction-mix analyzer (identical hot path to current). */
class InstMixAnalyzer : public TraceAnalyzer
{
  public:
    void
    accept(const InstRecord &rec) override
    {
        ++counts_[static_cast<size_t>(rec.cls)];
        ++total_;
    }

  private:
    std::array<uint64_t, kNumInstClasses> counts_{};
    uint64_t total_ = 0;
};

/** Seed ILP analyzer: modulo ring indexing. */
class IlpAnalyzer : public TraceAnalyzer
{
  public:
    explicit IlpAnalyzer(
        std::vector<size_t> windows = {32, 64, 128, 256})
    {
        for (size_t w : windows)
            states_.emplace_back(w);
    }

    void
    accept(const InstRecord &rec) override
    {
        for (auto &st : states_)
            st.step(rec);
    }

  private:
    struct WindowState
    {
        explicit WindowState(size_t w) : window(w), complete(w, 0) {}

        void
        step(const InstRecord &rec)
        {
            uint64_t start = complete[count % window];
            for (unsigned s = 0; s < rec.numSrcRegs; ++s) {
                const uint16_t r = rec.srcRegs[s];
                if (r == kZeroReg || r >= kNumRegs)
                    continue;
                start = std::max(start, regReady[r]);
            }
            const uint64_t comp = start + 1;
            complete[count % window] = comp;
            if (rec.hasDst() && rec.dstReg != kZeroReg &&
                rec.dstReg < kNumRegs) {
                regReady[rec.dstReg] = comp;
            }
            maxComplete = std::max(maxComplete, comp);
            ++count;
        }

        size_t window;
        std::vector<uint64_t> complete;
        std::array<uint64_t, kNumRegs> regReady{};
        uint64_t count = 0;
        uint64_t maxComplete = 0;
    };

    std::vector<WindowState> states_;
};

/** Seed register-traffic analyzer: per-cut compare loop. */
class RegTrafficAnalyzer : public TraceAnalyzer
{
  public:
    static constexpr std::array<uint64_t, 7> kDistCuts =
        {1, 2, 4, 8, 16, 32, 64};

    void
    accept(const InstRecord &rec) override
    {
        for (unsigned s = 0; s < rec.numSrcRegs; ++s) {
            const uint16_t r = rec.srcRegs[s];
            if (r == kZeroReg || r >= kNumRegs)
                continue;
            ++totalReads_;
            auto &st = regs_[r];
            if (st.written) {
                ++st.uses;
                const uint64_t dist = instIdx_ - st.lastWriteIdx;
                ++totalDeps_;
                for (size_t c = 0; c < kDistCuts.size(); ++c) {
                    if (dist <= kDistCuts[c])
                        ++distCum_[c];
                }
            }
        }
        if (rec.hasDst() && rec.dstReg != kZeroReg &&
            rec.dstReg < kNumRegs) {
            auto &st = regs_[rec.dstReg];
            if (st.written) {
                useSum_ += st.uses;
                ++instances_;
            }
            st.written = true;
            st.uses = 0;
            st.lastWriteIdx = instIdx_;
        }
        ++instIdx_;
        ++totalInsts_;
    }

    void
    finish() override
    {
        if (flushed_)
            return;
        flushed_ = true;
        for (auto &st : regs_) {
            if (st.written) {
                useSum_ += st.uses;
                ++instances_;
            }
        }
    }

  private:
    struct RegState
    {
        bool written = false;
        uint64_t uses = 0;
        uint64_t lastWriteIdx = 0;
    };

    std::array<RegState, kNumRegs> regs_{};
    std::array<uint64_t, 7> distCum_{};
    uint64_t totalReads_ = 0;
    uint64_t totalDeps_ = 0;
    uint64_t totalInsts_ = 0;
    uint64_t instIdx_ = 0;
    uint64_t useSum_ = 0;
    uint64_t instances_ = 0;
    bool flushed_ = false;
};

/** Seed working-set analyzer: node-based unordered_sets. */
class WorkingSetAnalyzer : public TraceAnalyzer
{
  public:
    static constexpr unsigned kBlockBits = 5;
    static constexpr unsigned kPageBits = 12;

    void
    accept(const InstRecord &rec) override
    {
        iBlocks_.insert(rec.pc >> kBlockBits);
        iPages_.insert(rec.pc >> kPageBits);
        if (rec.isMem()) {
            dBlocks_.insert(rec.memAddr >> kBlockBits);
            dPages_.insert(rec.memAddr >> kPageBits);
        }
    }

  private:
    std::unordered_set<uint64_t> dBlocks_;
    std::unordered_set<uint64_t> dPages_;
    std::unordered_set<uint64_t> iBlocks_;
    std::unordered_set<uint64_t> iPages_;
};

/** Seed stride analyzer: unordered_map last-address tables. */
class StrideAnalyzer : public TraceAnalyzer
{
  public:
    static constexpr std::array<uint64_t, 5> kCuts = {0, 8, 64, 512, 4096};

    struct Dist
    {
        std::array<uint64_t, 5> cum{};
        uint64_t total = 0;

        void
        add(uint64_t stride)
        {
            ++total;
            for (size_t c = 0; c < kCuts.size(); ++c) {
                if (stride <= kCuts[c])
                    ++cum[c];
            }
        }
    };

    void
    accept(const InstRecord &rec) override
    {
        if (!rec.isMem())
            return;
        const bool is_load = rec.cls == InstClass::Load;
        auto &globalLast = is_load ? lastGlobalLoad_ : lastGlobalStore_;
        auto &globalDist = is_load ? globalLoad_ : globalStore_;
        auto &localMap = is_load ? lastLocalLoad_ : lastLocalStore_;
        auto &localDist = is_load ? localLoad_ : localStore_;

        if (globalLast.valid)
            globalDist.add(absDiff(rec.memAddr, globalLast.addr));
        globalLast.addr = rec.memAddr;
        globalLast.valid = true;

        auto [it, inserted] = localMap.try_emplace(rec.pc, rec.memAddr);
        if (!inserted) {
            localDist.add(absDiff(rec.memAddr, it->second));
            it->second = rec.memAddr;
        }
    }

  private:
    static uint64_t
    absDiff(uint64_t a, uint64_t b)
    {
        return a > b ? a - b : b - a;
    }

    struct Last
    {
        uint64_t addr = 0;
        bool valid = false;
    };

    Dist localLoad_, globalLoad_, localStore_, globalStore_;
    Last lastGlobalLoad_, lastGlobalStore_;
    std::unordered_map<uint64_t, uint64_t> lastLocalLoad_;
    std::unordered_map<uint64_t, uint64_t> lastLocalStore_;
};

/** Seed PPM predictor: unordered_map tables, find + update passes. */
class PpmPredictor
{
  public:
    enum class History { Global, PerAddress };
    enum class Tables { Shared, PerBranch };

    PpmPredictor(History hist, Tables tables, unsigned maxOrder = 8)
        : hist_(hist), tables_(tables), maxOrder_(maxOrder),
          ctx_(maxOrder + 1)
    {}

    bool
    predictAndUpdate(uint64_t pc, bool taken)
    {
        const uint64_t history = currentHistory(pc);

        bool prediction = true;
        for (int k = static_cast<int>(maxOrder_); k >= 0; --k) {
            const auto it = ctx_[k].find(key(pc, history, k));
            if (it != ctx_[k].end() && it->second != 0) {
                prediction = it->second > 0;
                break;
            }
        }

        for (int k = static_cast<int>(maxOrder_); k >= 0; --k) {
            int8_t &ctr = ctx_[k][key(pc, history, k)];
            if (taken) {
                if (ctr < kCtrMax)
                    ++ctr;
            } else {
                if (ctr > -kCtrMax)
                    --ctr;
            }
        }

        pushHistory(pc, taken);
        return prediction;
    }

  private:
    static constexpr int8_t kCtrMax = 4;

    uint64_t
    currentHistory(uint64_t pc) const
    {
        if (hist_ == History::Global)
            return ghist_;
        const auto it = lhist_.find(pc);
        return it == lhist_.end() ? 0 : it->second;
    }

    void
    pushHistory(uint64_t pc, bool taken)
    {
        if (hist_ == History::Global)
            ghist_ = (ghist_ << 1) | (taken ? 1 : 0);
        else
            lhist_[pc] = (lhist_[pc] << 1) | (taken ? 1 : 0);
    }

    uint64_t
    key(uint64_t pc, uint64_t history, int order) const
    {
        const uint64_t h =
            order > 0 ? (history & ((1ull << order) - 1)) : 0;
        uint64_t k = h * 0x9e3779b97f4a7c15ull;
        if (tables_ == Tables::PerBranch)
            k ^= pc * 0xc2b2ae3d27d4eb4full;
        return k ^ (static_cast<uint64_t>(order) << 56);
    }

    History hist_;
    Tables tables_;
    unsigned maxOrder_;
    std::vector<std::unordered_map<uint64_t, int8_t>> ctx_;
    uint64_t ghist_ = 0;
    std::unordered_map<uint64_t, uint64_t> lhist_;
};

/** Seed four-variant PPM branch analyzer. */
class PpmBranchAnalyzer : public TraceAnalyzer
{
  public:
    explicit PpmBranchAnalyzer(unsigned maxOrder = 8)
        : gag_(PpmPredictor::History::Global,
               PpmPredictor::Tables::Shared, maxOrder),
          pag_(PpmPredictor::History::PerAddress,
               PpmPredictor::Tables::Shared, maxOrder),
          gas_(PpmPredictor::History::Global,
               PpmPredictor::Tables::PerBranch, maxOrder),
          pas_(PpmPredictor::History::PerAddress,
               PpmPredictor::Tables::PerBranch, maxOrder)
    {}

    void
    accept(const InstRecord &rec) override
    {
        if (!rec.isCondBranch())
            return;
        ++branches_;
        miss_[0] += gag_.predictAndUpdate(rec.pc, rec.taken) != rec.taken;
        miss_[1] += pag_.predictAndUpdate(rec.pc, rec.taken) != rec.taken;
        miss_[2] += gas_.predictAndUpdate(rec.pc, rec.taken) != rec.taken;
        miss_[3] += pas_.predictAndUpdate(rec.pc, rec.taken) != rec.taken;
    }

  private:
    PpmPredictor gag_, pag_, gas_, pas_;
    uint64_t branches_ = 0;
    uint64_t miss_[4] = {};
};

} // namespace mica::legacy
