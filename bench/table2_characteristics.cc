/**
 * @file
 * Table II: the 47 microarchitecture-independent characteristics, with
 * measured values for a reference benchmark to show each one live.
 */

#include "bench_common.hh"

#include "isa/interpreter.hh"
#include "mica/profile.hh"
#include "mica/runner.hh"
#include "report/table.hh"
#include "workloads/registry.hh"

using namespace mica;

int
main(int argc, char **argv)
{
    const auto cfg = experiments::configFromArgs(argc, argv);
    bench::banner("Table II: the 47 characteristics",
                  "Table II (microarchitecture-independent "
                  "characteristics)");

    const auto &reg = workloads::BenchmarkRegistry::instance();
    const auto *bzip2 = reg.find("SPEC2000/bzip2.source");
    const auto *blast = reg.find("BioInfoMark/blast.protein");

    MicaRunnerConfig rc;
    rc.maxInsts = cfg.maxInsts;

    const auto profileFor = [&](const workloads::BenchmarkEntry *e) {
        const isa::Program prog = e->build();
        isa::Interpreter interp(prog);
        return collectMicaProfile(interp, e->info.fullName(), rc);
    };
    const MicaProfile pb = profileFor(bzip2);
    const MicaProfile pl = profileFor(blast);

    report::TextTable t({"no.", "category", "characteristic",
                         "bzip2.source", "blast.protein"},
                        {report::Align::Right, report::Align::Left,
                         report::Align::Left, report::Align::Right,
                         report::Align::Right});
    for (size_t i = 0; i < kNumMicaChars; ++i) {
        const auto &info = micaCharInfo(i);
        t.addRow({std::to_string(i + 1), info.category, info.describe,
                  report::TextTable::num(pb[i], 4),
                  report::TextTable::num(pl[i], 4)});
    }
    std::printf("%s\n",
                t.render("Microarchitecture-independent characteristics "
                         "(Table II), with measured values").c_str());

    std::printf("Collected over %llu (bzip2) / %llu (blast) dynamic "
                "instructions in one analysis pass each.\n",
                static_cast<unsigned long long>(pb.instCount),
                static_cast<unsigned long long>(pl.instCount));
    return 0;
}
