/**
 * @file
 * Frozen seed implementation of the GA fitness evaluation, kept as the
 * same-machine baseline for the methodology perf profile (the same
 * role bench/legacy_analyzers.hh plays for the analyzer engine). This
 * is the pre-refactor FitnessEval verbatim: per-characteristic pair
 * columns in separate vectors, a fresh distance scratch allocation per
 * mask, one sweep per selected column, and a full two-vector
 * stats::pearson per evaluation. Do not "fix" or optimize it — its
 * value is that it never changes.
 */

#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "methodology/workload_space.hh"
#include "stats/descriptive.hh"

namespace mica::legacy
{

/** Seed GA fitness engine (serial, memoized per bitmask). */
class FitnessEval
{
  public:
    explicit FitnessEval(const WorkloadSpace &space)
        : numChars_(space.numChars()),
          fullDist_(space.distances().condensed())
    {
        if (numChars_ > 64)
            throw std::invalid_argument("GA supports up to 64 chars");
        const Matrix &m = space.normalized();
        const size_t pairs = fullDist_.size();
        sq_.assign(numChars_, std::vector<double>(pairs));
        size_t p = 0;
        for (size_t i = 0; i < m.rows(); ++i) {
            for (size_t j = i + 1; j < m.rows(); ++j, ++p) {
                for (size_t c = 0; c < numChars_; ++c) {
                    const double d = m.at(i, c) - m.at(j, c);
                    sq_[c][p] = d * d;
                }
            }
        }
    }

    size_t numChars() const { return numChars_; }

    /** @return {fitness, rho} for a bitmask. */
    std::pair<double, double>
    operator()(uint64_t mask)
    {
        auto it = memo_.find(mask);
        if (it != memo_.end())
            return it->second;

        const size_t pairs = fullDist_.size();
        std::vector<double> dist(pairs, 0.0);
        size_t n = 0;
        for (size_t c = 0; c < numChars_; ++c) {
            if (!(mask & (1ull << c)))
                continue;
            ++n;
            const auto &col = sq_[c];
            for (size_t p = 0; p < pairs; ++p)
                dist[p] += col[p];
        }
        std::pair<double, double> result{0.0, 0.0};
        if (n > 0) {
            for (double &d : dist)
                d = std::sqrt(d);
            const double rho = pearson(fullDist_, dist);
            const double sizeFactor = 1.0 -
                static_cast<double>(n) / static_cast<double>(numChars_);
            result = {rho * sizeFactor, rho};
        }
        memo_[mask] = result;
        return result;
    }

  private:
    size_t numChars_;
    std::vector<double> fullDist_;
    std::vector<std::vector<double>> sq_;
    std::unordered_map<uint64_t, std::pair<double, double>> memo_;
};

} // namespace mica::legacy
