/**
 * @file
 * Ablation: PPM context depth for the branch-predictability
 * characteristics (Table II nos. 44-47). The paper treats PPM as a
 * theoretical predictability measure; this harness sweeps the maximum
 * context order and shows (i) deeper context never hurts on average
 * and (ii) the benchmark ordering the metric induces stabilizes well
 * before the default depth of 8.
 */

#include "bench_common.hh"

#include "isa/interpreter.hh"
#include "mica/ppm.hh"
#include "report/table.hh"
#include "stats/descriptive.hh"
#include "workloads/registry.hh"

using namespace mica;

int
main(int argc, char **argv)
{
    const auto cfg = experiments::configFromArgs(argc, argv);
    bench::banner("Ablation: PPM predictor context depth",
                  "Table II nos. 44-47 (PPM predictability)");

    // A representative slice across the suites.
    const std::vector<std::string> picks = {
        "BioInfoMark/blast.protein",  "BioInfoMark/phylip.dnapenny",
        "CommBench/drr.drr",          "MediaBench/mpeg2.encode",
        "MiBench/qsort.large",        "MiBench/CRC32.large",
        "SPEC2000/bzip2.source",      "SPEC2000/gcc.166",
        "SPEC2000/twolf.ref",         "SPEC2000/swim.ref",
    };
    const std::vector<unsigned> orders = {1, 2, 4, 8, 12};
    const uint64_t budget = cfg.maxInsts ? cfg.maxInsts : 150000;

    const auto &reg = workloads::BenchmarkRegistry::instance();
    std::vector<std::vector<double>> gag(orders.size());

    std::vector<std::string> headers = {"benchmark"};
    for (unsigned o : orders)
        headers.push_back("GAg@" + std::to_string(o));
    report::TextTable t(std::move(headers));

    for (const auto &name : picks) {
        const auto *e = reg.find(name);
        const isa::Program prog = e->build();

        std::vector<std::string> row = {e->info.shortName()};
        for (size_t oi = 0; oi < orders.size(); ++oi) {
            isa::Interpreter interp(prog);
            PpmBranchAnalyzer ppm(orders[oi]);
            InstRecord r;
            uint64_t n = 0;
            while (n < budget && interp.next(r)) {
                ppm.accept(r);
                ++n;
            }
            ppm.finish();
            gag[oi].push_back(ppm.missRateGAg());
            row.push_back(report::TextTable::num(ppm.missRateGAg(), 4));
        }
        t.addRow(std::move(row));
    }
    std::printf("%s\n",
                t.render("GAg PPM miss rate vs context depth").c_str());

    // Average miss rate should fall (or hold) as order grows, and the
    // benchmark ranking should converge: order-8 vs order-12 nearly
    // identical orderings.
    bool monotoneAvg = true;
    for (size_t oi = 1; oi < orders.size(); ++oi)
        monotoneAvg = monotoneAvg &&
            mean(gag[oi]) <= mean(gag[oi - 1]) + 0.01;

    const double rankStable = pearson(gag[3], gag[4]);   // order 8 vs 12
    const double rankShallow = pearson(gag[0], gag[3]);  // order 1 vs 8
    std::printf("avg GAg miss:");
    for (size_t oi = 0; oi < orders.size(); ++oi)
        std::printf(" %.4f@%u", mean(gag[oi]), orders[oi]);
    std::printf("\nranking correlation: order 8 vs 12 = %.3f; "
                "order 1 vs 8 = %.3f\n\n", rankStable, rankShallow);

    const bool converged = rankStable > 0.99;
    std::printf("shape check: deeper context never hurts on average: "
                "%s\n", monotoneAvg ? "PASS" : "FAIL");
    std::printf("shape check: metric stable by order 8 (rho > 0.99):  "
                "%s\n", converged ? "PASS" : "FAIL");
    return (monotoneAvg && converged) ? 0 : 1;
}
