/**
 * @file
 * Ablation: sensitivity of the Table III quadrants to the "large
 * distance" threshold. The paper fixes both thresholds at 20% of the
 * maximum and notes they are subjective; this harness sweeps them to
 * show the qualitative conclusion (FN rare, FP plentiful) is robust.
 */

#include "bench_common.hh"

#include "methodology/classifier.hh"
#include "methodology/workload_space.hh"
#include "report/table.hh"

using namespace mica;

int
main(int argc, char **argv)
{
    const auto cfg = experiments::configFromArgs(argc, argv);
    bench::banner("Ablation: Table III threshold sensitivity",
                  "Section IV (threshold choice discussion)");

    const auto ds = bench::collectWithBanner(cfg);
    const WorkloadSpace mica(ds.micaMatrix());
    const WorkloadSpace hpc(ds.hpcMatrix());
    const auto &h = hpc.distances().condensed();
    const auto &m = mica.distances().condensed();

    report::TextTable t({"threshold", "TP", "FP", "TN", "FN",
                         "sensitivity", "specificity"},
                        {report::Align::Right, report::Align::Right,
                         report::Align::Right, report::Align::Right,
                         report::Align::Right, report::Align::Right,
                         report::Align::Right});

    bool fnAlwaysRare = true;
    bool fpUsuallyLarger = true;
    for (double frac : {0.10, 0.15, 0.20, 0.25, 0.30, 0.40}) {
        const auto q = classifyTuples(h, m, frac, frac);
        t.addRow({report::TextTable::pct(frac, 0),
                  report::TextTable::pct(q.fracTP(), 1),
                  report::TextTable::pct(q.fracFP(), 1),
                  report::TextTable::pct(q.fracTN(), 1),
                  report::TextTable::pct(q.fracFN(), 1),
                  report::TextTable::num(q.sensitivity(), 3),
                  report::TextTable::num(q.specificity(), 3)});
        fnAlwaysRare = fnAlwaysRare && q.fracFN() < 0.08;
        fpUsuallyLarger = fpUsuallyLarger && q.fracFP() >= q.fracFN();
    }
    std::printf("%s\n",
                t.render("Quadrants as the large-distance threshold "
                         "sweeps (both spaces)").c_str());
    std::printf("paper at 20%%: TP 56.9  FP 41.1  TN 1.8  FN 0.2\n\n");

    std::printf("shape check: FN stays rare across thresholds:    %s\n",
                fnAlwaysRare ? "PASS" : "FAIL");
    std::printf("shape check: FP >= FN at every threshold:        %s\n",
                fpUsuallyLarger ? "PASS" : "FAIL");
    return (fnAlwaysRare && fpUsuallyLarger) ? 0 : 1;
}
