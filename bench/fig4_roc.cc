/**
 * @file
 * Fig. 4: ROC curves for identifying HPC-space similarity from
 * microarchitecture-independent distances, comparing the full 47-
 * characteristic space against correlation elimination (17/12/7 kept)
 * and the GA-selected subset. Paper AUCs: all 0.72, GA 0.69, CE 0.67
 * (17 kept) and 0.64 (12/7 kept); GA tracks the full space closest.
 */

#include "bench_common.hh"

#include "methodology/correlation_elimination.hh"
#include "methodology/genetic_selector.hh"
#include "methodology/workload_space.hh"
#include "report/ascii_plot.hh"
#include "report/table.hh"
#include "stats/roc.hh"

using namespace mica;

int
main(int argc, char **argv)
{
    const auto cfg = experiments::configFromArgs(argc, argv);
    bench::banner("Fig. 4: ROC curves of reduced characteristic sets",
                  "Fig. 4 and Section V-D");

    const auto ds = bench::collectWithBanner(cfg);
    const WorkloadSpace mica(ds.micaMatrix());
    const WorkloadSpace hpc(ds.hpcMatrix());

    // Ground truth: HPC-space distance above 20% of max = "large".
    const auto labels =
        labelsFromDistances(hpc.distances().condensed(), 0.2);

    struct Curve
    {
        std::string label;
        char marker;
        RocCurve roc;
        size_t numChars;
    };
    std::vector<Curve> curves;

    const auto addCurve = [&](const std::string &label, char marker,
                              const std::vector<size_t> &cols) {
        const DistanceMatrix d = mica.distancesForSubset(cols);
        curves.push_back({label, marker,
                          rocCurve(labels, d.condensed(), 40),
                          cols.size()});
    };

    std::vector<size_t> all(kNumMicaChars);
    for (size_t c = 0; c < kNumMicaChars; ++c)
        all[c] = c;
    addCurve("all 47 characteristics", '*', all);

    const auto ce = correlationElimination(mica);
    addCurve("corr. elim. (17 kept)", 'o', ce.retained(17));
    addCurve("corr. elim. (12 kept)", '+', ce.retained(12));
    addCurve("corr. elim. (7 kept)", 'x', ce.retained(7));

    GaConfig gcfg;
    const GaResult ga = geneticSelect(mica, gcfg);
    addCurve("genetic algorithm (" + std::to_string(ga.selected.size()) +
                 " kept)", '#', ga.selected);

    // Plot sensitivity vs 1-specificity for every method.
    std::vector<report::Series> series;
    for (const auto &c : curves) {
        report::Series s;
        s.label = c.label;
        s.marker = c.marker;
        for (const auto &p : c.roc.points) {
            s.x.push_back(p.fpr());
            s.y.push_back(p.sensitivity);
        }
        series.push_back(std::move(s));
    }
    report::PlotConfig pc;
    pc.width = 64;
    pc.height = 24;
    pc.xLabel = "1 - specificity";
    pc.yLabel = "sensitivity";
    pc.title = "ROC: identifying HPC-similar tuples from MICA distances";
    pc.fixedScale = true;
    std::printf("%s\n", report::scatterPlot(series, pc).c_str());

    report::TextTable t({"method", "#chars", "AUC"},
                        {report::Align::Left, report::Align::Right,
                         report::Align::Right});
    for (const auto &c : curves) {
        t.addRow({c.label, std::to_string(c.numChars),
                  report::TextTable::num(c.roc.auc, 3)});
    }
    std::printf("%s\n", t.render("Area under the ROC curves").c_str());
    std::printf("paper: all-47 0.72; GA 0.69; CE 0.67 (17 kept), "
                "0.64 (12 and 7 kept)\n\n");

    const double aucAll = curves[0].roc.auc;
    const double aucGa = curves.back().roc.auc;
    const double aucCe7 = curves[3].roc.auc;
    const bool gaNearAll = aucGa > aucAll - 0.08;
    const bool gaBeatsCe = aucGa >= aucCe7 - 0.01;
    std::printf("shape check: GA ROC approaches the all-47 ROC:  %s\n",
                gaNearAll ? "PASS" : "FAIL");
    std::printf("shape check: GA >= small CE set at equal size:  %s\n",
                gaBeatsCe ? "PASS" : "FAIL");
    return (gaNearAll && gaBeatsCe) ? 0 : 1;
}
