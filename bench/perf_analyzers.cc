/**
 * @file
 * Measurement-cost microbenchmarks (Section V's "3X speedup" claim).
 *
 * The paper's motivation for feature selection is profiling cost: all
 * 47 characteristics take ~110 machine-days, the 8 GA-selected ones
 * ~37 (about 3X less), because fewer analyzer families need to run.
 * These google-benchmark timers measure each analyzer family and the
 * full vs key-subset collection over identical traces, for both the
 * batched engine (the default) and the per-record reference path.
 *
 * Besides the google-benchmark timers, `--json=<path>` runs a small
 * self-timed harness and writes a machine-readable throughput profile
 * (records/sec per analyzer family plus full-profile and key-subset
 * collection on both engine paths) so the perf trajectory can be
 * tracked across commits; CI runs it as a non-gating step.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <atomic>

#include "index/fingerprint_index.hh"
#include "index/snapshot.hh"
#include "isa/interpreter.hh"
#include "legacy_analyzers.hh"
#include "legacy_fitness.hh"
#include "methodology/genetic_selector.hh"
#include "methodology/workload_space.hh"
#include "mica/ilp.hh"
#include "mica/inst_mix.hh"
#include "mica/ppm.hh"
#include "mica/reg_traffic.hh"
#include "mica/runner.hh"
#include "mica/strides.hh"
#include "mica/working_set.hh"
#include "obs/obs.hh"
#include "pipeline/thread_pool.hh"
#include "service/client.hh"
#include "service/query_engine.hh"
#include "service/server.hh"
#include "stats/kmeans.hh"
#include "stats/rng.hh"
#include "trace/engine.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"
#include "uarch/hpc_runner.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mica;

/** Pre-generated replay trace shared by all analyzer benchmarks. */
const std::vector<InstRecord> &
sharedTrace()
{
    static const std::vector<InstRecord> trace = [] {
        RandomTraceParams p;
        p.numInsts = 200000;
        p.seed = 42;
        RandomTraceSource src(p);
        std::vector<InstRecord> v;
        v.reserve(p.numInsts);
        InstRecord r;
        while (src.next(r))
            v.push_back(r);
        return v;
    }();
    return trace;
}

/** Paper Table IV key-characteristic subset. */
const std::vector<size_t> &
keySubset()
{
    static const std::vector<size_t> key = {PctLoads, AvgInputOperands,
                                            RegDepLe8, LocalLoadStrideLe64,
                                            GlobalLoadStrideLe512,
                                            LocalStoreStrideLe4096,
                                            DWorkSet4K, Ilp256};
    return key;
}

template <typename Analyzer, typename... Args>
void
runAnalyzer(benchmark::State &state, Args &&...args)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        Analyzer a(std::forward<Args>(args)...);
        for (const auto &r : trace)
            a.accept(r);
        a.finish();
        benchmark::DoNotOptimize(&a);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(trace.size()));
}

/** Same analyzer, driven through one acceptBatch span per iteration. */
template <typename Analyzer, typename... Args>
void
runAnalyzerBatched(benchmark::State &state, Args &&...args)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        Analyzer a(std::forward<Args>(args)...);
        a.acceptBatch(trace.data(), trace.size());
        a.finish();
        benchmark::DoNotOptimize(&a);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(trace.size()));
}

void BM_InstMix(benchmark::State &s) { runAnalyzer<InstMixAnalyzer>(s); }
void BM_Ilp(benchmark::State &s) { runAnalyzer<IlpAnalyzer>(s); }
void BM_RegTraffic(benchmark::State &s)
{
    runAnalyzer<RegTrafficAnalyzer>(s);
}
void BM_WorkingSet(benchmark::State &s)
{
    runAnalyzer<WorkingSetAnalyzer>(s);
}
void BM_Strides(benchmark::State &s) { runAnalyzer<StrideAnalyzer>(s); }
void BM_Ppm(benchmark::State &s)
{
    runAnalyzer<PpmBranchAnalyzer>(s, 8u);
}

BENCHMARK(BM_InstMix);
BENCHMARK(BM_Ilp);
BENCHMARK(BM_RegTraffic);
BENCHMARK(BM_WorkingSet);
BENCHMARK(BM_Strides);
BENCHMARK(BM_Ppm);

void BM_InstMixBatched(benchmark::State &s)
{
    runAnalyzerBatched<InstMixAnalyzer>(s);
}
void BM_IlpBatched(benchmark::State &s)
{
    runAnalyzerBatched<IlpAnalyzer>(s);
}
void BM_RegTrafficBatched(benchmark::State &s)
{
    runAnalyzerBatched<RegTrafficAnalyzer>(s);
}
void BM_WorkingSetBatched(benchmark::State &s)
{
    runAnalyzerBatched<WorkingSetAnalyzer>(s);
}
void BM_StridesBatched(benchmark::State &s)
{
    runAnalyzerBatched<StrideAnalyzer>(s);
}
void BM_PpmBatched(benchmark::State &s)
{
    runAnalyzerBatched<PpmBranchAnalyzer>(s, 8u);
}

BENCHMARK(BM_InstMixBatched);
BENCHMARK(BM_IlpBatched);
BENCHMARK(BM_RegTrafficBatched);
BENCHMARK(BM_WorkingSetBatched);
BENCHMARK(BM_StridesBatched);
BENCHMARK(BM_PpmBatched);

/**
 * Full 47-characteristic collection over the shared replay trace —
 * the apples-to-apples engine comparison: identical records, identical
 * analyzers, only the dispatch granularity differs.
 */
void
runFullProfile(benchmark::State &state, size_t engineBatch)
{
    VectorTraceSource src(sharedTrace());
    for (auto _ : state) {
        src.reset();
        MicaRunnerConfig cfg;
        cfg.engineBatch = engineBatch;
        const MicaProfile p = collectMicaProfile(src, "x", cfg);
        benchmark::DoNotOptimize(p.values[0]);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(sharedTrace().size()));
}

void BM_FullProfilePerRecord(benchmark::State &s) { runFullProfile(s, 0); }
void BM_FullProfileBatched(benchmark::State &s)
{
    runFullProfile(s, AnalysisEngine::kDefaultBatchSize);
}

BENCHMARK(BM_FullProfilePerRecord);
BENCHMARK(BM_FullProfileBatched);

/**
 * The seed baseline: all six PR-1 analyzer implementations (node
 * containers, two-pass PPM, modulo ILP) driven record-at-a-time —
 * what one full profile cost before this change. The key-subset
 * variant drops PPM, mirroring which families the Table IV subset
 * needs.
 */
struct LegacyAnalyzerSet
{
    legacy::InstMixAnalyzer mix;
    legacy::IlpAnalyzer ilp;
    legacy::RegTrafficAnalyzer rt;
    legacy::WorkingSetAnalyzer ws;
    legacy::StrideAnalyzer st;
    legacy::PpmBranchAnalyzer ppm{8};

    void
    addTo(AnalysisEngine &eng, bool keyOnly)
    {
        eng.add(&mix);
        eng.add(&ilp);
        eng.add(&rt);
        eng.add(&ws);
        eng.add(&st);
        if (!keyOnly)
            eng.add(&ppm);
    }
};

/** One record-at-a-time run of the frozen seed analyzer set. */
void
runSeedOnce(VectorTraceSource &src, bool keyOnly)
{
    LegacyAnalyzerSet set;
    AnalysisEngine eng;
    set.addTo(eng, keyOnly);
    src.reset();
    eng.runPerRecord(src);
    benchmark::DoNotOptimize(&eng);
}

template <bool KeyOnly>
void
runSeedBaseline(benchmark::State &state)
{
    VectorTraceSource src(sharedTrace());
    for (auto _ : state)
        runSeedOnce(src, KeyOnly);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(sharedTrace().size()));
}

void BM_FullProfileSeedBaseline(benchmark::State &s)
{
    runSeedBaseline<false>(s);
}
void BM_KeySubsetSeedBaseline(benchmark::State &s)
{
    runSeedBaseline<true>(s);
}

BENCHMARK(BM_FullProfileSeedBaseline);
BENCHMARK(BM_KeySubsetSeedBaseline);

/** Full 47-characteristic collection over a registry benchmark. */
void
BM_CollectAll47(benchmark::State &state)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    uint64_t insts = 0;
    for (auto _ : state) {
        isa::Interpreter interp(prog);
        MicaRunnerConfig cfg;
        cfg.maxInsts = 100000;
        const MicaProfile p = collectMicaProfile(interp, "x", cfg);
        insts = p.instCount;
        benchmark::DoNotOptimize(p.values[0]);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(insts));
}
BENCHMARK(BM_CollectAll47);

/** Key-subset collection (the paper's Table IV set). */
void
BM_CollectKey8(benchmark::State &state)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    uint64_t insts = 0;
    for (auto _ : state) {
        isa::Interpreter interp(prog);
        MicaRunnerConfig cfg;
        cfg.maxInsts = 100000;
        const MicaProfile p =
            collectMicaProfileSubset(interp, "x", keySubset(), cfg);
        insts = p.instCount;
        benchmark::DoNotOptimize(p.values[0]);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(insts));
}
BENCHMARK(BM_CollectKey8);

/** The HPC characterization for scale (fast on real HW, simulated here). */
void
BM_CollectHpc(benchmark::State &state)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    for (auto _ : state) {
        isa::Interpreter interp(prog);
        const auto p = uarch::collectHwProfile(interp, "x", 100000);
        benchmark::DoNotOptimize(p.ipcEv56);
    }
}
BENCHMARK(BM_CollectHpc);

/** Bare interpretation, to separate tracing cost from analysis cost. */
void
BM_InterpreterOnly(benchmark::State &state)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    for (auto _ : state) {
        isa::Interpreter interp(prog);
        InstRecord r;
        uint64_t n = 0;
        while (n < 100000 && interp.next(r))
            ++n;
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_InterpreterOnly);

// ----------------------------------------------------------------------
// Trace recording / replay benchmarks: what does moving records
// through a file cost relative to interpreting the program directly?
// ----------------------------------------------------------------------

/** The shared trace recorded once to a scratch trace file. */
const std::string &
recordedTracePath()
{
    static const std::string path = [] {
        std::string p =
            (std::filesystem::temp_directory_path() /
             "mica_perf_replay.trace")
                .string();
        VectorTraceSource src(sharedTrace());
        TraceFileWriter w(p);
        RecordingSource tee(src, w);
        std::vector<InstRecord> buf(4096);
        const InstRecord *span = nullptr;
        while (tee.nextSpan(span, buf.data(), buf.size()) != 0) {
        }
        w.close();
        return p;
    }();
    return path;
}

void
BM_TraceRecord(benchmark::State &state)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "mica_perf_record_bm.trace")
            .string();
    VectorTraceSource src(sharedTrace());
    for (auto _ : state) {
        src.reset();
        TraceFileWriter w(path);
        RecordingSource tee(src, w);
        std::vector<InstRecord> buf(4096);
        const InstRecord *span = nullptr;
        while (tee.nextSpan(span, buf.data(), buf.size()) != 0) {
        }
        w.close();
        benchmark::DoNotOptimize(w.recordCount());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(sharedTrace().size()));
    std::filesystem::remove(path);
}
BENCHMARK(BM_TraceRecord);

/** Full 47-characteristic collection replayed from the trace file. */
template <bool Streamed>
void
BM_TraceReplayProfile(benchmark::State &state)
{
    const std::string &path = recordedTracePath();
    for (auto _ : state) {
        auto src = openTraceFile(path, Streamed);
        const MicaProfile p = collectMicaProfile(*src, "x", {});
        benchmark::DoNotOptimize(p.values[0]);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(sharedTrace().size()));
}
void BM_TraceReplayMmap(benchmark::State &s)
{
    BM_TraceReplayProfile<false>(s);
}
void BM_TraceReplayStream(benchmark::State &s)
{
    BM_TraceReplayProfile<true>(s);
}
BENCHMARK(BM_TraceReplayMmap);
BENCHMARK(BM_TraceReplayStream);

// ----------------------------------------------------------------------
// Methodology engine (GA fitness, clustering sweep) benchmarks.
// ----------------------------------------------------------------------

/**
 * Paper-scale synthetic workload space: 122 benchmarks x 47
 * characteristics of fixed gaussian data, so the methodology numbers
 * track the engine, not the profiling pipeline.
 */
const WorkloadSpace &
methodologySpace()
{
    static const WorkloadSpace space = [] {
        Matrix m;
        Rng rng(20061027);
        for (int r = 0; r < 122; ++r) {
            std::vector<double> v(47);
            for (auto &x : v)
                x = rng.gauss();
            m.appendRow(v);
            m.rowNames.push_back("b" + std::to_string(r));
        }
        return WorkloadSpace(std::move(m));
    }();
    return space;
}

/** Fixed bitmask workload with the GA's subset-size distribution. */
const std::vector<uint64_t> &
methodologyMasks()
{
    static const std::vector<uint64_t> masks = [] {
        std::vector<uint64_t> v;
        Rng rng(7);
        const size_t n = methodologySpace().numChars();
        for (int i = 0; i < 256; ++i) {
            const double density = 0.1 + 0.8 * rng.unit();
            uint64_t m = 0;
            for (size_t c = 0; c < n; ++c)
                if (rng.chance(density))
                    m |= 1ull << c;
            v.push_back(m ? m : 1);
        }
        return v;
    }();
    return masks;
}

void
BM_GaFitnessSeed(benchmark::State &state)
{
    legacy::FitnessEval eval(methodologySpace());
    for (auto _ : state) {
        double acc = 0.0;
        // Clone the engine so every iteration starts with a cold memo,
        // like the masks of one fresh GA generation.
        legacy::FitnessEval fresh = eval;
        for (uint64_t m : methodologyMasks())
            acc += fresh(m).first;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(methodologyMasks().size()));
}
BENCHMARK(BM_GaFitnessSeed);

void
BM_GaFitnessEngine(benchmark::State &state)
{
    FitnessEval eval(methodologySpace());
    for (auto _ : state) {
        double acc = 0.0;
        for (uint64_t m : methodologyMasks())
            acc += eval.compute(m).first;    // pure path, no memo
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(methodologyMasks().size()));
}
BENCHMARK(BM_GaFitnessEngine);

void
BM_BicSweep(benchmark::State &state)
{
    const Matrix reduced = methodologySpace().normalized().selectCols(
        {0, 1, 2, 3, 4, 5, 6, 7});
    for (auto _ : state) {
        const BicSweepResult r = bicSweep(reduced, 24, 5);
        benchmark::DoNotOptimize(r.chosenK);
    }
}
BENCHMARK(BM_BicSweep);

// ----------------------------------------------------------------------
// Index family: fingerprint-index build and query throughput. The
// population is synthetic but index-shaped: a few thousand workloads
// in a GA-reduced-size space, far past the paper's 122 so the tree
// has something to prune.
// ----------------------------------------------------------------------

constexpr size_t kIndexPoints = 4096;
constexpr size_t kIndexDim = 16;
constexpr size_t kIndexK = 10;

/** Raw dataset the index benchmarks fingerprint. */
const Matrix &
indexDataset()
{
    static const Matrix m = [] {
        Matrix raw;
        Rng rng(20061027);
        for (size_t r = 0; r < kIndexPoints; ++r) {
            std::vector<double> v(kIndexDim);
            for (auto &x : v)
                x = rng.gauss();
            raw.appendRow(v);
            raw.rowNames.push_back("w" + std::to_string(r));
        }
        return raw;
    }();
    return m;
}

const index::FingerprintIndex &
indexCorpus()
{
    static const index::FingerprintIndex idx =
        index::FingerprintIndex::build(indexDataset());
    return idx;
}

void
BM_IndexBuild(benchmark::State &state)
{
    const Matrix &raw = indexDataset();
    for (auto _ : state) {
        const auto idx = index::FingerprintIndex::build(raw);
        benchmark::DoNotOptimize(idx.size());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(kIndexPoints));
}
BENCHMARK(BM_IndexBuild);

template <bool brute>
void
BM_IndexKnn(benchmark::State &state)
{
    const auto &idx = indexCorpus();
    size_t q = 0;
    for (auto _ : state) {
        const auto r = idx.knn(q, kIndexK, brute);
        benchmark::DoNotOptimize(r.data());
        q = (q + 1) % idx.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
void BM_IndexKnnTree(benchmark::State &s) { BM_IndexKnn<false>(s); }
void BM_IndexKnnBrute(benchmark::State &s) { BM_IndexKnn<true>(s); }
BENCHMARK(BM_IndexKnnTree);
BENCHMARK(BM_IndexKnnBrute);

// ----------------------------------------------------------------------
// serve family: the similarity-query daemon under load. The snapshot
// is the synthetic index corpus (queries hit the same VP-tree the
// index family measures), so the delta between local_requests_per_sec
// and the daemon numbers is exactly what the wire adds: socket round
// trip, envelope parse/serialize, and the poll-loop handoff.
// ----------------------------------------------------------------------

/** The immutable snapshot every serve benchmark queries. */
std::shared_ptr<const service::ServerSnapshot>
serveSnapshot()
{
    static const std::shared_ptr<const service::ServerSnapshot> snap =
        [] {
            auto s = std::make_shared<service::ServerSnapshot>();
            s->idx = indexCorpus();
            s->space = "mica";
            s->key = "bench-serve";
            s->maxPairDist = 1.0;
            return s;
        }();
    return snap;
}

/** A daemon on a temp unix socket, alive for the harness's lifetime. */
struct ServeHarness
{
    std::filesystem::path dir;
    std::unique_ptr<service::Server> server;
    std::thread loop;

    ServeHarness()
    {
        dir = std::filesystem::temp_directory_path() /
              "mica_perf_serve";
        std::filesystem::create_directories(dir);
        service::ServerOptions opt;
        opt.address = "unix:" + (dir / "bench.sock").string();
        opt.jobs = 4;
        server = std::make_unique<service::Server>(
            opt, serveSnapshot(), experiments::DatasetConfig{},
            service::SpaceChoice{});
        std::string err;
        if (!server->start(&err)) {
            std::cerr << "serve bench: " << err << "\n";
            return;
        }
        loop = std::thread([this] { server->run(); });
    }

    ~ServeHarness()
    {
        if (loop.joinable()) {
            server->requestStop();
            loop.join();
        }
        std::filesystem::remove_all(dir);
    }
};

/** One knn request line against the synthetic corpus. */
std::string
serveRequestLine(size_t i)
{
    const auto &idx = indexCorpus();
    return "{\"op\":\"knn\",\"bench\":\"" +
           idx.nameOf(i % idx.size()) + "\",\"k\":10}";
}

void
BM_ServeRoundTrip(benchmark::State &state)
{
    static ServeHarness harness;
    service::ServiceClient client;
    std::string err;
    if (!client.connect(harness.server->boundAddress(), &err)) {
        state.SkipWithError(err.c_str());
        return;
    }
    size_t i = 0;
    for (auto _ : state) {
        std::string reply;
        if (!client.request(serveRequestLine(i++), &reply, &err)) {
            state.SkipWithError(err.c_str());
            return;
        }
        benchmark::DoNotOptimize(reply.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeRoundTrip);

// ----------------------------------------------------------------------
// --json mode: self-timed throughput profile for trend tracking.
// ----------------------------------------------------------------------

/** Best-of-N records/sec for one collection run over the trace. */
template <typename Fn>
double
bestRate(uint64_t records, Fn &&run)
{
    double best = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        run();
        const double dt = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();
        if (dt > 0.0)
            best = std::max(best, static_cast<double>(records) / dt);
    }
    return best;
}

/** Time one analyzer family over the shared trace, batched engine. */
template <typename MakeAnalyzer>
double
familyRate(VectorTraceSource &src, MakeAnalyzer &&make)
{
    return bestRate(src.size(), [&] {
        auto a = make();
        AnalysisEngine eng;
        eng.add(&a);
        src.reset();
        eng.run(src);
        benchmark::DoNotOptimize(&a);
    });
}

/** Time a full or key-subset collection on one engine path. */
double
collectRate(VectorTraceSource &src, size_t engineBatch, bool keyOnly)
{
    return bestRate(src.size(), [&] {
        MicaRunnerConfig cfg;
        cfg.engineBatch = engineBatch;
        src.reset();
        const MicaProfile p = keyOnly
            ? collectMicaProfileSubset(src, "x", keySubset(), cfg)
            : collectMicaProfile(src, "x", cfg);
        benchmark::DoNotOptimize(p.values[0]);
    });
}

/** Time the frozen seed implementations (see legacy_analyzers.hh). */
double
seedBaselineRate(VectorTraceSource &src, bool keyOnly)
{
    return bestRate(src.size(), [&] { runSeedOnce(src, keyOnly); });
}

/** Masks/sec of the frozen seed fitness engine (cold memo per rep). */
double
seedFitnessRate()
{
    const auto &masks = methodologyMasks();
    legacy::FitnessEval proto(methodologySpace());
    return bestRate(masks.size(), [&] {
        legacy::FitnessEval eval = proto;
        double acc = 0.0;
        for (uint64_t m : masks)
            acc += eval(m).first;
        benchmark::DoNotOptimize(acc);
    });
}

/**
 * Masks/sec of the current fitness engine through the pure compute()
 * path, serial or fanned across a pool in the same fixed-size chunks
 * geneticSelect uses.
 */
double
engineFitnessRate(const FitnessEval &eval, mica::pipeline::ThreadPool *pool)
{
    const auto &masks = methodologyMasks();
    std::vector<double> out(masks.size());
    const size_t chunks = pool
        ? std::min(masks.size(), pool->workerCount() * 4) : 1;
    return bestRate(masks.size(), [&] {
        mica::pipeline::parallelBlocks(pool, chunks, [&](size_t b) {
            const size_t lo = masks.size() * b / chunks;
            const size_t hi = masks.size() * (b + 1) / chunks;
            for (size_t i = lo; i < hi; ++i)
                out[i] = eval.compute(masks[i]).first;
        });
        benchmark::DoNotOptimize(out.data());
    });
}

/** GA generations/sec for a fixed-length run (stall exit disabled). */
double
gaGenerationsRate(mica::pipeline::ThreadPool *pool)
{
    GaConfig cfg;
    cfg.maxGenerations = 25;
    cfg.stallGenerations = 10000;
    return bestRate(cfg.maxGenerations, [&] {
        const GaResult r = geneticSelect(methodologySpace(), cfg, pool);
        benchmark::DoNotOptimize(r.fitness);
    });
}

/** Full BIC K-sweeps/sec over the reduced 8-D methodology space. */
double
clusterSweepRate(mica::pipeline::ThreadPool *pool)
{
    const Matrix reduced = methodologySpace().normalized().selectCols(
        {0, 1, 2, 3, 4, 5, 6, 7});
    return bestRate(1, [&] {
        const BicSweepResult r =
            bicSweep(reduced, 24, 5, 0.9, 0.0, pool);
        benchmark::DoNotOptimize(r.chosenK);
    });
}

/**
 * trace_replay family: one registry program, one record stream —
 * profile it from the interpreter vs from a recorded trace file, so
 * the ratio isolates what the trace source itself costs (record =
 * interpret + write; replay = read instead of interpret; open cost,
 * including the full checksum validation pass, is in the loop).
 */
struct TraceReplayRates
{
    uint64_t records = 0;
    double interp = 0, record = 0, stream = 0, mmap = 0;
};

TraceReplayRates
traceReplayRates()
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    MicaRunnerConfig cfg;
    cfg.maxInsts = 200000;
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "mica_perf_replay_vs_interp.trace")
            .string();

    TraceReplayRates r;
    {
        // Record once (also learns the record count) ...
        isa::Interpreter interp(prog);
        TraceFileWriter w(path);
        RecordingSource tee(interp, w);
        std::vector<InstRecord> buf(4096);
        const InstRecord *span = nullptr;
        size_t got;
        while (r.records < cfg.maxInsts &&
               (got = tee.nextSpan(
                    span, buf.data(),
                    std::min<uint64_t>(buf.size(),
                                       cfg.maxInsts - r.records))) != 0)
            r.records += got;
        w.close();
    }

    r.interp = bestRate(r.records, [&] {
        isa::Interpreter interp(prog);
        const MicaProfile p = collectMicaProfile(interp, "x", cfg);
        benchmark::DoNotOptimize(p.values[0]);
    });
    r.record = bestRate(r.records, [&] {
        isa::Interpreter interp(prog);
        TraceFileWriter w(path + ".rec");
        RecordingSource tee(interp, w);
        std::vector<InstRecord> buf(4096);
        const InstRecord *span = nullptr;
        uint64_t n = 0;
        size_t got;
        while (n < cfg.maxInsts &&
               (got = tee.nextSpan(
                    span, buf.data(),
                    std::min<uint64_t>(buf.size(),
                                       cfg.maxInsts - n))) != 0)
            n += got;
        w.close();
        benchmark::DoNotOptimize(n);
    });
    r.stream = bestRate(r.records, [&] {
        FileTraceSource src(path);
        const MicaProfile p = collectMicaProfile(src, "x", cfg);
        benchmark::DoNotOptimize(p.values[0]);
    });
    r.mmap = bestRate(r.records, [&] {
        MappedTraceSource src(path);
        const MicaProfile p = collectMicaProfile(src, "x", cfg);
        benchmark::DoNotOptimize(p.values[0]);
    });
    std::filesystem::remove(path);
    std::filesystem::remove(path + ".rec");
    return r;
}

/** Index builds/sec over the synthetic population. */
double
indexBuildRate()
{
    const Matrix &raw = indexDataset();
    return bestRate(1, [&] {
        const auto idx = index::FingerprintIndex::build(raw);
        benchmark::DoNotOptimize(idx.size());
    });
}

/** Single-query kNN throughput, tree or brute reference. */
double
indexKnnRate(bool brute)
{
    const auto &idx = indexCorpus();
    const size_t queries = 512;
    return bestRate(queries, [&] {
        for (size_t q = 0; q < queries; ++q) {
            const auto r = idx.knn(q, kIndexK, brute);
            benchmark::DoNotOptimize(r.data());
        }
    });
}

/**
 * Warm daemon starts/sec: reopen the persisted index snapshot instead
 * of rebuilding (the cold counterpart is indexBuildRate).
 */
double
serveSnapshotLoadRate()
{
    const auto path = (std::filesystem::temp_directory_path() /
                       "mica_perf_serve.idx")
                          .string();
    std::string why;
    if (!index::saveIndexSnapshot(indexCorpus(), path, "bench-serve",
                                  &why)) {
        std::cerr << "serve bench: save snapshot: " << why << "\n";
        return 0.0;
    }
    const double rate = bestRate(1, [&] {
        index::FingerprintIndex loaded;
        if (index::loadIndexSnapshot(path, "bench-serve", &loaded,
                                     &why))
            benchmark::DoNotOptimize(loaded.size());
    });
    std::filesystem::remove(path);
    return rate;
}

/** In-process requests/sec: the one-shot CLI path, no socket. */
double
serveLocalRate()
{
    auto snap = serveSnapshot();
    constexpr size_t kReqs = 512;
    return bestRate(kReqs, [&] {
        for (size_t i = 0; i < kReqs; ++i) {
            const std::string reply =
                service::executeLine(*snap, serveRequestLine(i));
            benchmark::DoNotOptimize(reply.data());
        }
    });
}

/** Aggregate daemon requests/sec with @p conns concurrent clients. */
double
serveDaemonRate(service::Server &server, size_t conns)
{
    constexpr size_t kPerConn = 256;
    return bestRate(conns * kPerConn, [&] {
        std::atomic<size_t> failures{0};
        std::vector<std::thread> clients;
        for (size_t c = 0; c < conns; ++c) {
            clients.emplace_back([&, c] {
                service::ServiceClient client;
                std::string err;
                if (!client.connect(server.boundAddress(), &err)) {
                    failures.fetch_add(kPerConn);
                    return;
                }
                std::string reply;
                for (size_t i = 0; i < kPerConn; ++i) {
                    if (!client.request(
                            serveRequestLine(c * kPerConn + i),
                            &reply, &err))
                        failures.fetch_add(1);
                }
            });
        }
        for (auto &t : clients)
            t.join();
        if (failures.load() != 0)
            std::cerr << "serve bench: " << failures.load()
                      << " failed requests\n";
    });
}

/** Whole-population batch kNN throughput (queries/sec). */
double
indexBatchRate(mica::pipeline::ThreadPool *pool)
{
    const auto &idx = indexCorpus();
    return bestRate(idx.size(), [&] {
        const auto r = idx.batchKnn(kIndexK, pool);
        benchmark::DoNotOptimize(r.data());
    });
}

// ----------------------------------------------------------------------
// obs family: what the telemetry layer itself costs. The acceptance
// bar for the subsystem is that an instrumented build with no sinks
// attached keeps >= 97% of the MICA_OBS=0 build's full-profile
// throughput; the reference rate comes from a separately-built binary
// via --obs-ref so the ratio lands in one JSON document.
// ----------------------------------------------------------------------

/** Best-of-5 nanoseconds per call for a hot telemetry primitive. */
template <typename Fn>
double
primitiveNs(uint64_t calls, Fn &&loop)
{
    double best = 1e18;
    for (int rep = 0; rep < 5; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        loop();
        const double ns = std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - t0).count();
        best = std::min(best, ns / static_cast<double>(calls));
    }
    return best;
}

/** ns per Counter::add on the sharded fast path. */
double
counterAddNs()
{
    static obs::Counter c("bench.obs.counter");
    constexpr uint64_t kAdds = 1u << 22;
    return primitiveNs(kAdds, [] {
        for (uint64_t i = 0; i < kAdds; ++i)
            c.add(1);
        benchmark::DoNotOptimize(&c);
    });
}

/** ns per armed span (construct, one arg, record into the ring). */
double
spanRecordNs()
{
    obs::setTraceEnabled(true);
    constexpr uint64_t kSpans = 1u << 16;
    const double ns = primitiveNs(kSpans, [] {
        for (uint64_t i = 0; i < kSpans; ++i) {
            obs::ObsSpan sp("bench.obs.span");
            sp.arg("i", i);
        }
    });
    obs::setTraceEnabled(false);
    return ns;
}

int
writeJsonProfile(const std::string &path, double obsRef)
{
    VectorTraceSource src(sharedTrace());
    const uint64_t records = src.size();

    const double mix = familyRate(src, [] { return InstMixAnalyzer(); });
    const double ilp = familyRate(src, [] { return IlpAnalyzer(); });
    const double rt = familyRate(src, [] { return RegTrafficAnalyzer(); });
    const double ws = familyRate(src, [] { return WorkingSetAnalyzer(); });
    const double st = familyRate(src, [] { return StrideAnalyzer(); });
    const double ppm =
        familyRate(src, [] { return PpmBranchAnalyzer(8); });

    const double fullSeed = seedBaselineRate(src, false);
    const double fullPerRecord = collectRate(src, 0, false);
    const double fullBatched =
        collectRate(src, AnalysisEngine::kDefaultBatchSize, false);
    const double keySeed = seedBaselineRate(src, true);
    const double keyPerRecord = collectRate(src, 0, true);
    const double keyBatched =
        collectRate(src, AnalysisEngine::kDefaultBatchSize, true);

    // Methodology engine family: the GA fitness stage (masks/sec,
    // frozen seed vs current engine vs 8-job fan-out), whole-GA
    // generations/sec, and clustering K-sweeps/sec. The 8-job numbers
    // only beat serial on multi-core machines, so the worker and CPU
    // counts are recorded alongside.
    mica::pipeline::ThreadPool pool8(8);
    const FitnessEval methodologyEval(methodologySpace());
    const double fitSeed = seedFitnessRate();
    const double fitSerial = engineFitnessRate(methodologyEval, nullptr);
    const double fitJobs8 = engineFitnessRate(methodologyEval, &pool8);
    const double gaSerial = gaGenerationsRate(nullptr);
    const double gaJobs8 = gaGenerationsRate(&pool8);
    const double sweepSerial = clusterSweepRate(nullptr);
    const double sweepJobs8 = clusterSweepRate(&pool8);

    // Trace-replay family: records/sec profiling the same program
    // from the interpreter, while recording, and replayed through
    // each reader.
    const TraceReplayRates trr = traceReplayRates();

    // Index family: build cost and query throughput of the
    // fingerprint similarity index, VP-tree vs the brute-force
    // reference, plus the pooled batch-query path at 1 and 8 jobs.
    const double idxBuild = indexBuildRate();
    const double idxTree = indexKnnRate(false);
    const double idxBrute = indexKnnRate(true);
    const double idxBatchSerial = indexBatchRate(nullptr);
    const double idxBatchJobs8 = indexBatchRate(&pool8);

    // serve family: daemon saturation (aggregate requests/sec at 1,
    // 2, 4, 8 concurrent connections against a 4-worker daemon), the
    // in-process one-shot rate for contrast, and cold-vs-warm daemon
    // start (index rebuild vs snapshot reopen).
    const double serveWarmLoad = serveSnapshotLoadRate();
    const double serveLocal = serveLocalRate();
    double serveConns[4] = {0, 0, 0, 0};
    {
        ServeHarness harness;
        const size_t counts[4] = {1, 2, 4, 8};
        for (size_t i = 0; i < 4; ++i)
            serveConns[i] = serveDaemonRate(*harness.server,
                                            counts[i]);
    }

    // obs family: telemetry primitives, plus the full-profile rate
    // with the tracer armed (idle = compiled in but no sinks, which is
    // exactly the fullBatched number above).
    const double obsCounterNs = counterAddNs();
    const double obsSpanNs = spanRecordNs();
    obs::setTraceEnabled(true);
    const double fullTraced =
        collectRate(src, AnalysisEngine::kDefaultBatchSize, false);
    obs::setTraceEnabled(false);

    // Wall-clock stamp (UTC) so trend dashboards can order documents
    // without trusting file mtimes.
    char generatedAt[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (const std::tm *tm = std::gmtime(&now))
        std::strftime(generatedAt, sizeof(generatedAt), "%FT%TZ", tm);

    std::ofstream out(path);
    if (!out) {
        std::cerr << "perf_analyzers: cannot write " << path << "\n";
        return 1;
    }
    out.precision(17);
    out << "{\n"
        << "  \"schema\": \"mica-perf-profile/1\",\n"
        << "  \"generated_at\": \"" << generatedAt << "\",\n"
        << "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "  \"records\": " << records << ",\n"
        << "  \"per_family_records_per_sec\": {\n"
        << "    \"inst_mix\": " << mix << ",\n"
        << "    \"ilp\": " << ilp << ",\n"
        << "    \"reg_traffic\": " << rt << ",\n"
        << "    \"working_set\": " << ws << ",\n"
        << "    \"strides\": " << st << ",\n"
        << "    \"ppm\": " << ppm << "\n"
        << "  },\n"
        << "  \"full_profile_records_per_sec\": {\n"
        << "    \"seed_baseline\": " << fullSeed << ",\n"
        << "    \"per_record\": " << fullPerRecord << ",\n"
        << "    \"batched\": " << fullBatched << ",\n"
        << "    \"speedup_vs_seed\": " << fullBatched / fullSeed << "\n"
        << "  },\n"
        << "  \"key_subset_records_per_sec\": {\n"
        << "    \"seed_baseline\": " << keySeed << ",\n"
        << "    \"per_record\": " << keyPerRecord << ",\n"
        << "    \"batched\": " << keyBatched << ",\n"
        << "    \"speedup_vs_seed\": " << keyBatched / keySeed << "\n"
        << "  },\n"
        << "  \"methodology\": {\n"
        << "    \"workers\": 8,\n"
        << "    \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << ",\n"
        << "    \"ga_fitness_masks_per_sec\": {\n"
        << "      \"seed_baseline\": " << fitSeed << ",\n"
        << "      \"serial\": " << fitSerial << ",\n"
        << "      \"jobs8\": " << fitJobs8 << ",\n"
        << "      \"speedup_vs_seed\": " << fitJobs8 / fitSeed << ",\n"
        << "      \"serial_speedup_vs_seed\": " << fitSerial / fitSeed
        << "\n"
        << "    },\n"
        << "    \"ga_generations_per_sec\": {\n"
        << "      \"serial\": " << gaSerial << ",\n"
        << "      \"jobs8\": " << gaJobs8 << ",\n"
        << "      \"speedup\": " << gaJobs8 / gaSerial << "\n"
        << "    },\n"
        << "    \"clustering_sweeps_per_sec\": {\n"
        << "      \"serial\": " << sweepSerial << ",\n"
        << "      \"jobs8\": " << sweepJobs8 << ",\n"
        << "      \"speedup\": " << sweepJobs8 / sweepSerial << "\n"
        << "    }\n"
        << "  },\n"
        << "  \"trace_replay\": {\n"
        << "    \"records\": " << trr.records << ",\n"
        << "    \"full_profile_records_per_sec\": {\n"
        << "      \"interpreter\": " << trr.interp << ",\n"
        << "      \"recording\": " << trr.record << ",\n"
        << "      \"stream_replay\": " << trr.stream << ",\n"
        << "      \"mmap_replay\": " << trr.mmap << ",\n"
        << "      \"mmap_speedup_vs_interp\": " << trr.mmap / trr.interp
        << "\n"
        << "    }\n"
        << "  },\n"
        << "  \"index\": {\n"
        << "    \"points\": " << kIndexPoints << ",\n"
        << "    \"dim\": " << kIndexDim << ",\n"
        << "    \"k\": " << kIndexK << ",\n"
        << "    \"builds_per_sec\": " << idxBuild << ",\n"
        << "    \"knn_queries_per_sec\": {\n"
        << "      \"vp_tree\": " << idxTree << ",\n"
        << "      \"brute\": " << idxBrute << ",\n"
        << "      \"speedup_vs_brute\": " << idxTree / idxBrute << "\n"
        << "    },\n"
        << "    \"batch_knn_queries_per_sec\": {\n"
        << "      \"serial\": " << idxBatchSerial << ",\n"
        << "      \"jobs8\": " << idxBatchJobs8 << ",\n"
        << "      \"speedup\": " << idxBatchJobs8 / idxBatchSerial
        << "\n"
        << "    }\n"
        << "  },\n"
        << "  \"serve\": {\n"
        << "    \"workers\": 4,\n"
        << "    \"snapshot_cold_builds_per_sec\": " << idxBuild
        << ",\n"
        << "    \"snapshot_warm_loads_per_sec\": " << serveWarmLoad
        << ",\n"
        << "    \"local_requests_per_sec\": " << serveLocal << ",\n"
        << "    \"daemon_requests_per_sec\": {\n"
        << "      \"conns1\": " << serveConns[0] << ",\n"
        << "      \"conns2\": " << serveConns[1] << ",\n"
        << "      \"conns4\": " << serveConns[2] << ",\n"
        << "      \"conns8\": " << serveConns[3] << ",\n"
        << "      \"saturation_speedup\": "
        << (serveConns[0] > 0.0 ? serveConns[3] / serveConns[0] : 0.0)
        << "\n"
        << "    }\n"
        << "  },\n"
        << "  \"obs\": {\n"
        << "    \"compiled\": " << (MICA_OBS ? "true" : "false") << ",\n"
        << "    \"counter_add_ns\": " << obsCounterNs << ",\n"
        << "    \"span_record_ns\": " << obsSpanNs << ",\n"
        << "    \"full_profile_records_per_sec\": {\n"
        << "      \"idle\": " << fullBatched << ",\n"
        << "      \"traced\": " << fullTraced << ",\n"
        << "      \"traced_over_idle\": " << fullTraced / fullBatched;
    if (obsRef > 0.0) {
        out << ",\n"
            << "      \"obs_off_reference\": " << obsRef << ",\n"
            << "      \"idle_over_obs_off\": " << fullBatched / obsRef;
    }
    out << "\n"
        << "    }\n"
        << "  }\n"
        << "}\n";
    std::cout << "perf profile written to " << path
              << " (full-profile speedup vs seed "
              << fullBatched / fullSeed << "x)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our --json / --obs-ref flags before google-benchmark sees
    // (and rejects) them; any other arguments pass through untouched.
    // --obs-ref feeds the MICA_OBS=0 build's full-profile rate into
    // the obs family so one document holds the compiled-in/out ratio.
    std::string jsonPath;
    double obsRef = 0.0;
    std::vector<char *> args;
    args.reserve(static_cast<size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            jsonPath = argv[i] + 7;
        else if (std::strncmp(argv[i], "--obs-ref=", 10) == 0)
            obsRef = std::strtod(argv[i] + 10, nullptr);
        else
            args.push_back(argv[i]);
    }
    if (!jsonPath.empty())
        return writeJsonProfile(jsonPath, obsRef);

    int rest = static_cast<int>(args.size());
    benchmark::Initialize(&rest, args.data());
    if (benchmark::ReportUnrecognizedArguments(rest, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
