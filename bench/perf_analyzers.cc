/**
 * @file
 * Measurement-cost microbenchmarks (Section V's "3X speedup" claim).
 *
 * The paper's motivation for feature selection is profiling cost: all
 * 47 characteristics take ~110 machine-days, the 8 GA-selected ones
 * ~37 (about 3X less), because fewer analyzer families need to run.
 * These google-benchmark timers measure each analyzer family and the
 * full vs key-subset collection over identical traces, for both the
 * batched engine (the default) and the per-record reference path.
 *
 * Besides the google-benchmark timers, `--json=<path>` runs a small
 * self-timed harness and writes a machine-readable throughput profile
 * (records/sec per analyzer family plus full-profile and key-subset
 * collection on both engine paths) so the perf trajectory can be
 * tracked across commits; CI runs it as a non-gating step.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "isa/interpreter.hh"
#include "legacy_analyzers.hh"
#include "mica/ilp.hh"
#include "mica/inst_mix.hh"
#include "mica/ppm.hh"
#include "mica/reg_traffic.hh"
#include "mica/runner.hh"
#include "mica/strides.hh"
#include "mica/working_set.hh"
#include "trace/engine.hh"
#include "trace/synthetic.hh"
#include "uarch/hpc_runner.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mica;

/** Pre-generated replay trace shared by all analyzer benchmarks. */
const std::vector<InstRecord> &
sharedTrace()
{
    static const std::vector<InstRecord> trace = [] {
        RandomTraceParams p;
        p.numInsts = 200000;
        p.seed = 42;
        RandomTraceSource src(p);
        std::vector<InstRecord> v;
        v.reserve(p.numInsts);
        InstRecord r;
        while (src.next(r))
            v.push_back(r);
        return v;
    }();
    return trace;
}

/** Paper Table IV key-characteristic subset. */
const std::vector<size_t> &
keySubset()
{
    static const std::vector<size_t> key = {PctLoads, AvgInputOperands,
                                            RegDepLe8, LocalLoadStrideLe64,
                                            GlobalLoadStrideLe512,
                                            LocalStoreStrideLe4096,
                                            DWorkSet4K, Ilp256};
    return key;
}

template <typename Analyzer, typename... Args>
void
runAnalyzer(benchmark::State &state, Args &&...args)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        Analyzer a(std::forward<Args>(args)...);
        for (const auto &r : trace)
            a.accept(r);
        a.finish();
        benchmark::DoNotOptimize(&a);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(trace.size()));
}

/** Same analyzer, driven through one acceptBatch span per iteration. */
template <typename Analyzer, typename... Args>
void
runAnalyzerBatched(benchmark::State &state, Args &&...args)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        Analyzer a(std::forward<Args>(args)...);
        a.acceptBatch(trace.data(), trace.size());
        a.finish();
        benchmark::DoNotOptimize(&a);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(trace.size()));
}

void BM_InstMix(benchmark::State &s) { runAnalyzer<InstMixAnalyzer>(s); }
void BM_Ilp(benchmark::State &s) { runAnalyzer<IlpAnalyzer>(s); }
void BM_RegTraffic(benchmark::State &s)
{
    runAnalyzer<RegTrafficAnalyzer>(s);
}
void BM_WorkingSet(benchmark::State &s)
{
    runAnalyzer<WorkingSetAnalyzer>(s);
}
void BM_Strides(benchmark::State &s) { runAnalyzer<StrideAnalyzer>(s); }
void BM_Ppm(benchmark::State &s)
{
    runAnalyzer<PpmBranchAnalyzer>(s, 8u);
}

BENCHMARK(BM_InstMix);
BENCHMARK(BM_Ilp);
BENCHMARK(BM_RegTraffic);
BENCHMARK(BM_WorkingSet);
BENCHMARK(BM_Strides);
BENCHMARK(BM_Ppm);

void BM_InstMixBatched(benchmark::State &s)
{
    runAnalyzerBatched<InstMixAnalyzer>(s);
}
void BM_IlpBatched(benchmark::State &s)
{
    runAnalyzerBatched<IlpAnalyzer>(s);
}
void BM_RegTrafficBatched(benchmark::State &s)
{
    runAnalyzerBatched<RegTrafficAnalyzer>(s);
}
void BM_WorkingSetBatched(benchmark::State &s)
{
    runAnalyzerBatched<WorkingSetAnalyzer>(s);
}
void BM_StridesBatched(benchmark::State &s)
{
    runAnalyzerBatched<StrideAnalyzer>(s);
}
void BM_PpmBatched(benchmark::State &s)
{
    runAnalyzerBatched<PpmBranchAnalyzer>(s, 8u);
}

BENCHMARK(BM_InstMixBatched);
BENCHMARK(BM_IlpBatched);
BENCHMARK(BM_RegTrafficBatched);
BENCHMARK(BM_WorkingSetBatched);
BENCHMARK(BM_StridesBatched);
BENCHMARK(BM_PpmBatched);

/**
 * Full 47-characteristic collection over the shared replay trace —
 * the apples-to-apples engine comparison: identical records, identical
 * analyzers, only the dispatch granularity differs.
 */
void
runFullProfile(benchmark::State &state, size_t engineBatch)
{
    VectorTraceSource src(sharedTrace());
    for (auto _ : state) {
        src.reset();
        MicaRunnerConfig cfg;
        cfg.engineBatch = engineBatch;
        const MicaProfile p = collectMicaProfile(src, "x", cfg);
        benchmark::DoNotOptimize(p.values[0]);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(sharedTrace().size()));
}

void BM_FullProfilePerRecord(benchmark::State &s) { runFullProfile(s, 0); }
void BM_FullProfileBatched(benchmark::State &s)
{
    runFullProfile(s, AnalysisEngine::kDefaultBatchSize);
}

BENCHMARK(BM_FullProfilePerRecord);
BENCHMARK(BM_FullProfileBatched);

/**
 * The seed baseline: all six PR-1 analyzer implementations (node
 * containers, two-pass PPM, modulo ILP) driven record-at-a-time —
 * what one full profile cost before this change. The key-subset
 * variant drops PPM, mirroring which families the Table IV subset
 * needs.
 */
struct LegacyAnalyzerSet
{
    legacy::InstMixAnalyzer mix;
    legacy::IlpAnalyzer ilp;
    legacy::RegTrafficAnalyzer rt;
    legacy::WorkingSetAnalyzer ws;
    legacy::StrideAnalyzer st;
    legacy::PpmBranchAnalyzer ppm{8};

    void
    addTo(AnalysisEngine &eng, bool keyOnly)
    {
        eng.add(&mix);
        eng.add(&ilp);
        eng.add(&rt);
        eng.add(&ws);
        eng.add(&st);
        if (!keyOnly)
            eng.add(&ppm);
    }
};

/** One record-at-a-time run of the frozen seed analyzer set. */
void
runSeedOnce(VectorTraceSource &src, bool keyOnly)
{
    LegacyAnalyzerSet set;
    AnalysisEngine eng;
    set.addTo(eng, keyOnly);
    src.reset();
    eng.runPerRecord(src);
    benchmark::DoNotOptimize(&eng);
}

template <bool KeyOnly>
void
runSeedBaseline(benchmark::State &state)
{
    VectorTraceSource src(sharedTrace());
    for (auto _ : state)
        runSeedOnce(src, KeyOnly);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(sharedTrace().size()));
}

void BM_FullProfileSeedBaseline(benchmark::State &s)
{
    runSeedBaseline<false>(s);
}
void BM_KeySubsetSeedBaseline(benchmark::State &s)
{
    runSeedBaseline<true>(s);
}

BENCHMARK(BM_FullProfileSeedBaseline);
BENCHMARK(BM_KeySubsetSeedBaseline);

/** Full 47-characteristic collection over a registry benchmark. */
void
BM_CollectAll47(benchmark::State &state)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    uint64_t insts = 0;
    for (auto _ : state) {
        isa::Interpreter interp(prog);
        MicaRunnerConfig cfg;
        cfg.maxInsts = 100000;
        const MicaProfile p = collectMicaProfile(interp, "x", cfg);
        insts = p.instCount;
        benchmark::DoNotOptimize(p.values[0]);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(insts));
}
BENCHMARK(BM_CollectAll47);

/** Key-subset collection (the paper's Table IV set). */
void
BM_CollectKey8(benchmark::State &state)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    uint64_t insts = 0;
    for (auto _ : state) {
        isa::Interpreter interp(prog);
        MicaRunnerConfig cfg;
        cfg.maxInsts = 100000;
        const MicaProfile p =
            collectMicaProfileSubset(interp, "x", keySubset(), cfg);
        insts = p.instCount;
        benchmark::DoNotOptimize(p.values[0]);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(insts));
}
BENCHMARK(BM_CollectKey8);

/** The HPC characterization for scale (fast on real HW, simulated here). */
void
BM_CollectHpc(benchmark::State &state)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    for (auto _ : state) {
        isa::Interpreter interp(prog);
        const auto p = uarch::collectHwProfile(interp, "x", 100000);
        benchmark::DoNotOptimize(p.ipcEv56);
    }
}
BENCHMARK(BM_CollectHpc);

/** Bare interpretation, to separate tracing cost from analysis cost. */
void
BM_InterpreterOnly(benchmark::State &state)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    for (auto _ : state) {
        isa::Interpreter interp(prog);
        InstRecord r;
        uint64_t n = 0;
        while (n < 100000 && interp.next(r))
            ++n;
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_InterpreterOnly);

// ----------------------------------------------------------------------
// --json mode: self-timed throughput profile for trend tracking.
// ----------------------------------------------------------------------

/** Best-of-N records/sec for one collection run over the trace. */
template <typename Fn>
double
bestRate(uint64_t records, Fn &&run)
{
    double best = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        run();
        const double dt = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();
        if (dt > 0.0)
            best = std::max(best, static_cast<double>(records) / dt);
    }
    return best;
}

/** Time one analyzer family over the shared trace, batched engine. */
template <typename MakeAnalyzer>
double
familyRate(VectorTraceSource &src, MakeAnalyzer &&make)
{
    return bestRate(src.size(), [&] {
        auto a = make();
        AnalysisEngine eng;
        eng.add(&a);
        src.reset();
        eng.run(src);
        benchmark::DoNotOptimize(&a);
    });
}

/** Time a full or key-subset collection on one engine path. */
double
collectRate(VectorTraceSource &src, size_t engineBatch, bool keyOnly)
{
    return bestRate(src.size(), [&] {
        MicaRunnerConfig cfg;
        cfg.engineBatch = engineBatch;
        src.reset();
        const MicaProfile p = keyOnly
            ? collectMicaProfileSubset(src, "x", keySubset(), cfg)
            : collectMicaProfile(src, "x", cfg);
        benchmark::DoNotOptimize(p.values[0]);
    });
}

/** Time the frozen seed implementations (see legacy_analyzers.hh). */
double
seedBaselineRate(VectorTraceSource &src, bool keyOnly)
{
    return bestRate(src.size(), [&] { runSeedOnce(src, keyOnly); });
}

int
writeJsonProfile(const std::string &path)
{
    VectorTraceSource src(sharedTrace());
    const uint64_t records = src.size();

    const double mix = familyRate(src, [] { return InstMixAnalyzer(); });
    const double ilp = familyRate(src, [] { return IlpAnalyzer(); });
    const double rt = familyRate(src, [] { return RegTrafficAnalyzer(); });
    const double ws = familyRate(src, [] { return WorkingSetAnalyzer(); });
    const double st = familyRate(src, [] { return StrideAnalyzer(); });
    const double ppm =
        familyRate(src, [] { return PpmBranchAnalyzer(8); });

    const double fullSeed = seedBaselineRate(src, false);
    const double fullPerRecord = collectRate(src, 0, false);
    const double fullBatched =
        collectRate(src, AnalysisEngine::kDefaultBatchSize, false);
    const double keySeed = seedBaselineRate(src, true);
    const double keyPerRecord = collectRate(src, 0, true);
    const double keyBatched =
        collectRate(src, AnalysisEngine::kDefaultBatchSize, true);

    std::ofstream out(path);
    if (!out) {
        std::cerr << "perf_analyzers: cannot write " << path << "\n";
        return 1;
    }
    out.precision(17);
    out << "{\n"
        << "  \"schema\": \"mica-perf-profile/1\",\n"
        << "  \"records\": " << records << ",\n"
        << "  \"per_family_records_per_sec\": {\n"
        << "    \"inst_mix\": " << mix << ",\n"
        << "    \"ilp\": " << ilp << ",\n"
        << "    \"reg_traffic\": " << rt << ",\n"
        << "    \"working_set\": " << ws << ",\n"
        << "    \"strides\": " << st << ",\n"
        << "    \"ppm\": " << ppm << "\n"
        << "  },\n"
        << "  \"full_profile_records_per_sec\": {\n"
        << "    \"seed_baseline\": " << fullSeed << ",\n"
        << "    \"per_record\": " << fullPerRecord << ",\n"
        << "    \"batched\": " << fullBatched << ",\n"
        << "    \"speedup_vs_seed\": " << fullBatched / fullSeed << "\n"
        << "  },\n"
        << "  \"key_subset_records_per_sec\": {\n"
        << "    \"seed_baseline\": " << keySeed << ",\n"
        << "    \"per_record\": " << keyPerRecord << ",\n"
        << "    \"batched\": " << keyBatched << ",\n"
        << "    \"speedup_vs_seed\": " << keyBatched / keySeed << "\n"
        << "  }\n"
        << "}\n";
    std::cout << "perf profile written to " << path
              << " (full-profile speedup vs seed "
              << fullBatched / fullSeed << "x)\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our --json flag before google-benchmark sees (and rejects)
    // it; any other arguments pass through untouched.
    std::string jsonPath;
    std::vector<char *> args;
    args.reserve(static_cast<size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            jsonPath = argv[i] + 7;
        else
            args.push_back(argv[i]);
    }
    if (!jsonPath.empty())
        return writeJsonProfile(jsonPath);

    int rest = static_cast<int>(args.size());
    benchmark::Initialize(&rest, args.data());
    if (benchmark::ReportUnrecognizedArguments(rest, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
