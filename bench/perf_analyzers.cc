/**
 * @file
 * Measurement-cost microbenchmarks (Section V's "3X speedup" claim).
 *
 * The paper's motivation for feature selection is profiling cost: all
 * 47 characteristics take ~110 machine-days, the 8 GA-selected ones
 * ~37 (about 3X less), because fewer analyzer families need to run.
 * These google-benchmark timers measure each analyzer family and the
 * full vs key-subset collection over identical traces.
 */

#include <benchmark/benchmark.h>

#include "isa/interpreter.hh"
#include "mica/ilp.hh"
#include "mica/inst_mix.hh"
#include "mica/ppm.hh"
#include "mica/reg_traffic.hh"
#include "mica/runner.hh"
#include "mica/strides.hh"
#include "mica/working_set.hh"
#include "trace/engine.hh"
#include "trace/synthetic.hh"
#include "uarch/hpc_runner.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mica;

/** Pre-generated replay trace shared by all analyzer benchmarks. */
const std::vector<InstRecord> &
sharedTrace()
{
    static const std::vector<InstRecord> trace = [] {
        RandomTraceParams p;
        p.numInsts = 200000;
        p.seed = 42;
        RandomTraceSource src(p);
        std::vector<InstRecord> v;
        v.reserve(p.numInsts);
        InstRecord r;
        while (src.next(r))
            v.push_back(r);
        return v;
    }();
    return trace;
}

template <typename Analyzer, typename... Args>
void
runAnalyzer(benchmark::State &state, Args &&...args)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        Analyzer a(std::forward<Args>(args)...);
        for (const auto &r : trace)
            a.accept(r);
        a.finish();
        benchmark::DoNotOptimize(&a);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(trace.size()));
}

void BM_InstMix(benchmark::State &s) { runAnalyzer<InstMixAnalyzer>(s); }
void BM_Ilp(benchmark::State &s) { runAnalyzer<IlpAnalyzer>(s); }
void BM_RegTraffic(benchmark::State &s)
{
    runAnalyzer<RegTrafficAnalyzer>(s);
}
void BM_WorkingSet(benchmark::State &s)
{
    runAnalyzer<WorkingSetAnalyzer>(s);
}
void BM_Strides(benchmark::State &s) { runAnalyzer<StrideAnalyzer>(s); }
void BM_Ppm(benchmark::State &s)
{
    runAnalyzer<PpmBranchAnalyzer>(s, 8u);
}

BENCHMARK(BM_InstMix);
BENCHMARK(BM_Ilp);
BENCHMARK(BM_RegTraffic);
BENCHMARK(BM_WorkingSet);
BENCHMARK(BM_Strides);
BENCHMARK(BM_Ppm);

/** Full 47-characteristic collection over a registry benchmark. */
void
BM_CollectAll47(benchmark::State &state)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    uint64_t insts = 0;
    for (auto _ : state) {
        isa::Interpreter interp(prog);
        MicaRunnerConfig cfg;
        cfg.maxInsts = 100000;
        const MicaProfile p = collectMicaProfile(interp, "x", cfg);
        insts = p.instCount;
        benchmark::DoNotOptimize(p.values[0]);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(insts));
}
BENCHMARK(BM_CollectAll47);

/** Key-subset collection (the paper's Table IV set). */
void
BM_CollectKey8(benchmark::State &state)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    const std::vector<size_t> key = {PctLoads, AvgInputOperands,
                                     RegDepLe8, LocalLoadStrideLe64,
                                     GlobalLoadStrideLe512,
                                     LocalStoreStrideLe4096, DWorkSet4K,
                                     Ilp256};
    uint64_t insts = 0;
    for (auto _ : state) {
        isa::Interpreter interp(prog);
        MicaRunnerConfig cfg;
        cfg.maxInsts = 100000;
        const MicaProfile p =
            collectMicaProfileSubset(interp, "x", key, cfg);
        insts = p.instCount;
        benchmark::DoNotOptimize(p.values[0]);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(insts));
}
BENCHMARK(BM_CollectKey8);

/** The HPC characterization for scale (fast on real HW, simulated here). */
void
BM_CollectHpc(benchmark::State &state)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    for (auto _ : state) {
        isa::Interpreter interp(prog);
        const auto p = uarch::collectHwProfile(interp, "x", 100000);
        benchmark::DoNotOptimize(p.ipcEv56);
    }
}
BENCHMARK(BM_CollectHpc);

/** Bare interpretation, to separate tracing cost from analysis cost. */
void
BM_InterpreterOnly(benchmark::State &state)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    for (auto _ : state) {
        isa::Interpreter interp(prog);
        InstRecord r;
        uint64_t n = 0;
        while (n < 100000 && interp.next(r))
            ++n;
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_InterpreterOnly);

} // namespace

BENCHMARK_MAIN();
