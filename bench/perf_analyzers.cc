/**
 * @file
 * Measurement-cost microbenchmarks (Section V's "3X speedup" claim).
 *
 * The paper's motivation for feature selection is profiling cost: all
 * 47 characteristics take ~110 machine-days, the 8 GA-selected ones
 * ~37 (about 3X less), because fewer analyzer families need to run.
 * These google-benchmark timers measure each analyzer family and the
 * full vs key-subset collection over identical traces, for both the
 * batched engine (the default) and the per-record reference path.
 *
 * Besides the google-benchmark timers, `--json=<path>` runs a small
 * self-timed harness and writes a machine-readable mica-perf-profile/2
 * document: every family runs one untimed warmup pass plus --reps
 * timed repetitions, and each metric is a dispersion summary
 * ({p50, p90, min, max, n} via util::QuantileSketch) instead of a
 * single-shot number, so `mica perf compare` can gate regressions
 * against noise. `--enable-file=<F>` restricts the run to the
 * families named in an enable JSON (the benchmark-automation
 * contract; see `mica capabilities` for the family list).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <atomic>

#include "index/fingerprint_index.hh"
#include "index/snapshot.hh"
#include "isa/interpreter.hh"
#include "legacy_analyzers.hh"
#include "legacy_fitness.hh"
#include "methodology/genetic_selector.hh"
#include "methodology/workload_space.hh"
#include "mica/ilp.hh"
#include "mica/inst_mix.hh"
#include "mica/ppm.hh"
#include "mica/reg_traffic.hh"
#include "mica/runner.hh"
#include "mica/strides.hh"
#include "mica/working_set.hh"
#include "obs/obs.hh"
#include "pipeline/thread_pool.hh"
#include "service/client.hh"
#include "service/json.hh"
#include "util/quantile.hh"
#include "service/query_engine.hh"
#include "service/server.hh"
#include "stats/kmeans.hh"
#include "stats/rng.hh"
#include "trace/engine.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"
#include "uarch/hpc_runner.hh"
#include "workloads/registry.hh"

namespace
{

using namespace mica;

/** Pre-generated replay trace shared by all analyzer benchmarks. */
const std::vector<InstRecord> &
sharedTrace()
{
    static const std::vector<InstRecord> trace = [] {
        RandomTraceParams p;
        p.numInsts = 200000;
        p.seed = 42;
        RandomTraceSource src(p);
        std::vector<InstRecord> v;
        v.reserve(p.numInsts);
        InstRecord r;
        while (src.next(r))
            v.push_back(r);
        return v;
    }();
    return trace;
}

/** Paper Table IV key-characteristic subset. */
const std::vector<size_t> &
keySubset()
{
    static const std::vector<size_t> key = {PctLoads, AvgInputOperands,
                                            RegDepLe8, LocalLoadStrideLe64,
                                            GlobalLoadStrideLe512,
                                            LocalStoreStrideLe4096,
                                            DWorkSet4K, Ilp256};
    return key;
}

template <typename Analyzer, typename... Args>
void
runAnalyzer(benchmark::State &state, Args &&...args)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        Analyzer a(std::forward<Args>(args)...);
        for (const auto &r : trace)
            a.accept(r);
        a.finish();
        benchmark::DoNotOptimize(&a);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(trace.size()));
}

/** Same analyzer, driven through one acceptBatch span per iteration. */
template <typename Analyzer, typename... Args>
void
runAnalyzerBatched(benchmark::State &state, Args &&...args)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        Analyzer a(std::forward<Args>(args)...);
        a.acceptBatch(trace.data(), trace.size());
        a.finish();
        benchmark::DoNotOptimize(&a);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(trace.size()));
}

void BM_InstMix(benchmark::State &s) { runAnalyzer<InstMixAnalyzer>(s); }
void BM_Ilp(benchmark::State &s) { runAnalyzer<IlpAnalyzer>(s); }
void BM_RegTraffic(benchmark::State &s)
{
    runAnalyzer<RegTrafficAnalyzer>(s);
}
void BM_WorkingSet(benchmark::State &s)
{
    runAnalyzer<WorkingSetAnalyzer>(s);
}
void BM_Strides(benchmark::State &s) { runAnalyzer<StrideAnalyzer>(s); }
void BM_Ppm(benchmark::State &s)
{
    runAnalyzer<PpmBranchAnalyzer>(s, 8u);
}

BENCHMARK(BM_InstMix);
BENCHMARK(BM_Ilp);
BENCHMARK(BM_RegTraffic);
BENCHMARK(BM_WorkingSet);
BENCHMARK(BM_Strides);
BENCHMARK(BM_Ppm);

void BM_InstMixBatched(benchmark::State &s)
{
    runAnalyzerBatched<InstMixAnalyzer>(s);
}
void BM_IlpBatched(benchmark::State &s)
{
    runAnalyzerBatched<IlpAnalyzer>(s);
}
void BM_RegTrafficBatched(benchmark::State &s)
{
    runAnalyzerBatched<RegTrafficAnalyzer>(s);
}
void BM_WorkingSetBatched(benchmark::State &s)
{
    runAnalyzerBatched<WorkingSetAnalyzer>(s);
}
void BM_StridesBatched(benchmark::State &s)
{
    runAnalyzerBatched<StrideAnalyzer>(s);
}
void BM_PpmBatched(benchmark::State &s)
{
    runAnalyzerBatched<PpmBranchAnalyzer>(s, 8u);
}

BENCHMARK(BM_InstMixBatched);
BENCHMARK(BM_IlpBatched);
BENCHMARK(BM_RegTrafficBatched);
BENCHMARK(BM_WorkingSetBatched);
BENCHMARK(BM_StridesBatched);
BENCHMARK(BM_PpmBatched);

/**
 * Full 47-characteristic collection over the shared replay trace —
 * the apples-to-apples engine comparison: identical records, identical
 * analyzers, only the dispatch granularity differs.
 */
void
runFullProfile(benchmark::State &state, size_t engineBatch)
{
    VectorTraceSource src(sharedTrace());
    for (auto _ : state) {
        src.reset();
        MicaRunnerConfig cfg;
        cfg.engineBatch = engineBatch;
        const MicaProfile p = collectMicaProfile(src, "x", cfg);
        benchmark::DoNotOptimize(p.values[0]);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(sharedTrace().size()));
}

void BM_FullProfilePerRecord(benchmark::State &s) { runFullProfile(s, 0); }
void BM_FullProfileBatched(benchmark::State &s)
{
    runFullProfile(s, AnalysisEngine::kDefaultBatchSize);
}

BENCHMARK(BM_FullProfilePerRecord);
BENCHMARK(BM_FullProfileBatched);

/**
 * The seed baseline: all six PR-1 analyzer implementations (node
 * containers, two-pass PPM, modulo ILP) driven record-at-a-time —
 * what one full profile cost before this change. The key-subset
 * variant drops PPM, mirroring which families the Table IV subset
 * needs.
 */
struct LegacyAnalyzerSet
{
    legacy::InstMixAnalyzer mix;
    legacy::IlpAnalyzer ilp;
    legacy::RegTrafficAnalyzer rt;
    legacy::WorkingSetAnalyzer ws;
    legacy::StrideAnalyzer st;
    legacy::PpmBranchAnalyzer ppm{8};

    void
    addTo(AnalysisEngine &eng, bool keyOnly)
    {
        eng.add(&mix);
        eng.add(&ilp);
        eng.add(&rt);
        eng.add(&ws);
        eng.add(&st);
        if (!keyOnly)
            eng.add(&ppm);
    }
};

/** One record-at-a-time run of the frozen seed analyzer set. */
void
runSeedOnce(VectorTraceSource &src, bool keyOnly)
{
    LegacyAnalyzerSet set;
    AnalysisEngine eng;
    set.addTo(eng, keyOnly);
    src.reset();
    eng.runPerRecord(src);
    benchmark::DoNotOptimize(&eng);
}

template <bool KeyOnly>
void
runSeedBaseline(benchmark::State &state)
{
    VectorTraceSource src(sharedTrace());
    for (auto _ : state)
        runSeedOnce(src, KeyOnly);
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(sharedTrace().size()));
}

void BM_FullProfileSeedBaseline(benchmark::State &s)
{
    runSeedBaseline<false>(s);
}
void BM_KeySubsetSeedBaseline(benchmark::State &s)
{
    runSeedBaseline<true>(s);
}

BENCHMARK(BM_FullProfileSeedBaseline);
BENCHMARK(BM_KeySubsetSeedBaseline);

/** Full 47-characteristic collection over a registry benchmark. */
void
BM_CollectAll47(benchmark::State &state)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    uint64_t insts = 0;
    for (auto _ : state) {
        isa::Interpreter interp(prog);
        MicaRunnerConfig cfg;
        cfg.maxInsts = 100000;
        const MicaProfile p = collectMicaProfile(interp, "x", cfg);
        insts = p.instCount;
        benchmark::DoNotOptimize(p.values[0]);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(insts));
}
BENCHMARK(BM_CollectAll47);

/** Key-subset collection (the paper's Table IV set). */
void
BM_CollectKey8(benchmark::State &state)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    uint64_t insts = 0;
    for (auto _ : state) {
        isa::Interpreter interp(prog);
        MicaRunnerConfig cfg;
        cfg.maxInsts = 100000;
        const MicaProfile p =
            collectMicaProfileSubset(interp, "x", keySubset(), cfg);
        insts = p.instCount;
        benchmark::DoNotOptimize(p.values[0]);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(insts));
}
BENCHMARK(BM_CollectKey8);

/** The HPC characterization for scale (fast on real HW, simulated here). */
void
BM_CollectHpc(benchmark::State &state)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    for (auto _ : state) {
        isa::Interpreter interp(prog);
        const auto p = uarch::collectHwProfile(interp, "x", 100000);
        benchmark::DoNotOptimize(p.ipcEv56);
    }
}
BENCHMARK(BM_CollectHpc);

/** Bare interpretation, to separate tracing cost from analysis cost. */
void
BM_InterpreterOnly(benchmark::State &state)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    for (auto _ : state) {
        isa::Interpreter interp(prog);
        InstRecord r;
        uint64_t n = 0;
        while (n < 100000 && interp.next(r))
            ++n;
        benchmark::DoNotOptimize(n);
    }
}
BENCHMARK(BM_InterpreterOnly);

// ----------------------------------------------------------------------
// Trace recording / replay benchmarks: what does moving records
// through a file cost relative to interpreting the program directly?
// ----------------------------------------------------------------------

/** The shared trace recorded once to a scratch trace file. */
const std::string &
recordedTracePath()
{
    static const std::string path = [] {
        std::string p =
            (std::filesystem::temp_directory_path() /
             "mica_perf_replay.trace")
                .string();
        VectorTraceSource src(sharedTrace());
        TraceFileWriter w(p);
        RecordingSource tee(src, w);
        std::vector<InstRecord> buf(4096);
        const InstRecord *span = nullptr;
        while (tee.nextSpan(span, buf.data(), buf.size()) != 0) {
        }
        w.close();
        return p;
    }();
    return path;
}

void
BM_TraceRecord(benchmark::State &state)
{
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "mica_perf_record_bm.trace")
            .string();
    VectorTraceSource src(sharedTrace());
    for (auto _ : state) {
        src.reset();
        TraceFileWriter w(path);
        RecordingSource tee(src, w);
        std::vector<InstRecord> buf(4096);
        const InstRecord *span = nullptr;
        while (tee.nextSpan(span, buf.data(), buf.size()) != 0) {
        }
        w.close();
        benchmark::DoNotOptimize(w.recordCount());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(sharedTrace().size()));
    std::filesystem::remove(path);
}
BENCHMARK(BM_TraceRecord);

/** Full 47-characteristic collection replayed from the trace file. */
template <bool Streamed>
void
BM_TraceReplayProfile(benchmark::State &state)
{
    const std::string &path = recordedTracePath();
    for (auto _ : state) {
        auto src = openTraceFile(path, Streamed);
        const MicaProfile p = collectMicaProfile(*src, "x", {});
        benchmark::DoNotOptimize(p.values[0]);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(sharedTrace().size()));
}
void BM_TraceReplayMmap(benchmark::State &s)
{
    BM_TraceReplayProfile<false>(s);
}
void BM_TraceReplayStream(benchmark::State &s)
{
    BM_TraceReplayProfile<true>(s);
}
BENCHMARK(BM_TraceReplayMmap);
BENCHMARK(BM_TraceReplayStream);

// ----------------------------------------------------------------------
// Methodology engine (GA fitness, clustering sweep) benchmarks.
// ----------------------------------------------------------------------

/**
 * Paper-scale synthetic workload space: 122 benchmarks x 47
 * characteristics of fixed gaussian data, so the methodology numbers
 * track the engine, not the profiling pipeline.
 */
const WorkloadSpace &
methodologySpace()
{
    static const WorkloadSpace space = [] {
        Matrix m;
        Rng rng(20061027);
        for (int r = 0; r < 122; ++r) {
            std::vector<double> v(47);
            for (auto &x : v)
                x = rng.gauss();
            m.appendRow(v);
            m.rowNames.push_back("b" + std::to_string(r));
        }
        return WorkloadSpace(std::move(m));
    }();
    return space;
}

/** Fixed bitmask workload with the GA's subset-size distribution. */
const std::vector<uint64_t> &
methodologyMasks()
{
    static const std::vector<uint64_t> masks = [] {
        std::vector<uint64_t> v;
        Rng rng(7);
        const size_t n = methodologySpace().numChars();
        for (int i = 0; i < 256; ++i) {
            const double density = 0.1 + 0.8 * rng.unit();
            uint64_t m = 0;
            for (size_t c = 0; c < n; ++c)
                if (rng.chance(density))
                    m |= 1ull << c;
            v.push_back(m ? m : 1);
        }
        return v;
    }();
    return masks;
}

void
BM_GaFitnessSeed(benchmark::State &state)
{
    legacy::FitnessEval eval(methodologySpace());
    for (auto _ : state) {
        double acc = 0.0;
        // Clone the engine so every iteration starts with a cold memo,
        // like the masks of one fresh GA generation.
        legacy::FitnessEval fresh = eval;
        for (uint64_t m : methodologyMasks())
            acc += fresh(m).first;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(methodologyMasks().size()));
}
BENCHMARK(BM_GaFitnessSeed);

void
BM_GaFitnessEngine(benchmark::State &state)
{
    FitnessEval eval(methodologySpace());
    for (auto _ : state) {
        double acc = 0.0;
        for (uint64_t m : methodologyMasks())
            acc += eval.compute(m).first;    // pure path, no memo
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(methodologyMasks().size()));
}
BENCHMARK(BM_GaFitnessEngine);

void
BM_BicSweep(benchmark::State &state)
{
    const Matrix reduced = methodologySpace().normalized().selectCols(
        {0, 1, 2, 3, 4, 5, 6, 7});
    for (auto _ : state) {
        const BicSweepResult r = bicSweep(reduced, 24, 5);
        benchmark::DoNotOptimize(r.chosenK);
    }
}
BENCHMARK(BM_BicSweep);

// ----------------------------------------------------------------------
// Index family: fingerprint-index build and query throughput. The
// population is synthetic but index-shaped: a few thousand workloads
// in a GA-reduced-size space, far past the paper's 122 so the tree
// has something to prune.
// ----------------------------------------------------------------------

constexpr size_t kIndexPoints = 4096;
constexpr size_t kIndexDim = 16;
constexpr size_t kIndexK = 10;

/** Raw dataset the index benchmarks fingerprint. */
const Matrix &
indexDataset()
{
    static const Matrix m = [] {
        Matrix raw;
        Rng rng(20061027);
        for (size_t r = 0; r < kIndexPoints; ++r) {
            std::vector<double> v(kIndexDim);
            for (auto &x : v)
                x = rng.gauss();
            raw.appendRow(v);
            raw.rowNames.push_back("w" + std::to_string(r));
        }
        return raw;
    }();
    return m;
}

const index::FingerprintIndex &
indexCorpus()
{
    static const index::FingerprintIndex idx =
        index::FingerprintIndex::build(indexDataset());
    return idx;
}

void
BM_IndexBuild(benchmark::State &state)
{
    const Matrix &raw = indexDataset();
    for (auto _ : state) {
        const auto idx = index::FingerprintIndex::build(raw);
        benchmark::DoNotOptimize(idx.size());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(kIndexPoints));
}
BENCHMARK(BM_IndexBuild);

template <bool brute>
void
BM_IndexKnn(benchmark::State &state)
{
    const auto &idx = indexCorpus();
    size_t q = 0;
    for (auto _ : state) {
        const auto r = idx.knn(q, kIndexK, brute);
        benchmark::DoNotOptimize(r.data());
        q = (q + 1) % idx.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
void BM_IndexKnnTree(benchmark::State &s) { BM_IndexKnn<false>(s); }
void BM_IndexKnnBrute(benchmark::State &s) { BM_IndexKnn<true>(s); }
BENCHMARK(BM_IndexKnnTree);
BENCHMARK(BM_IndexKnnBrute);

// ----------------------------------------------------------------------
// serve family: the similarity-query daemon under load. The snapshot
// is the synthetic index corpus (queries hit the same VP-tree the
// index family measures), so the delta between local_requests_per_sec
// and the daemon numbers is exactly what the wire adds: socket round
// trip, envelope parse/serialize, and the poll-loop handoff.
// ----------------------------------------------------------------------

/** The immutable snapshot every serve benchmark queries. */
std::shared_ptr<const service::ServerSnapshot>
serveSnapshot()
{
    static const std::shared_ptr<const service::ServerSnapshot> snap =
        [] {
            auto s = std::make_shared<service::ServerSnapshot>();
            s->idx = indexCorpus();
            s->space = "mica";
            s->key = "bench-serve";
            s->maxPairDist = 1.0;
            return s;
        }();
    return snap;
}

/** A daemon on a temp unix socket, alive for the harness's lifetime. */
struct ServeHarness
{
    std::filesystem::path dir;
    std::unique_ptr<service::Server> server;
    std::thread loop;

    ServeHarness()
    {
        dir = std::filesystem::temp_directory_path() /
              "mica_perf_serve";
        std::filesystem::create_directories(dir);
        service::ServerOptions opt;
        opt.address = "unix:" + (dir / "bench.sock").string();
        opt.jobs = 4;
        server = std::make_unique<service::Server>(
            opt, serveSnapshot(), experiments::DatasetConfig{},
            service::SpaceChoice{});
        std::string err;
        if (!server->start(&err)) {
            std::cerr << "serve bench: " << err << "\n";
            return;
        }
        loop = std::thread([this] { server->run(); });
    }

    ~ServeHarness()
    {
        if (loop.joinable()) {
            server->requestStop();
            loop.join();
        }
        std::filesystem::remove_all(dir);
    }
};

/** One knn request line against the synthetic corpus. */
std::string
serveRequestLine(size_t i)
{
    const auto &idx = indexCorpus();
    return "{\"op\":\"knn\",\"bench\":\"" +
           idx.nameOf(i % idx.size()) + "\",\"k\":10}";
}

void
BM_ServeRoundTrip(benchmark::State &state)
{
    static ServeHarness harness;
    service::ServiceClient client;
    std::string err;
    if (!client.connect(harness.server->boundAddress(), &err)) {
        state.SkipWithError(err.c_str());
        return;
    }
    size_t i = 0;
    for (auto _ : state) {
        std::string reply;
        if (!client.request(serveRequestLine(i++), &reply, &err)) {
            state.SkipWithError(err.c_str());
            return;
        }
        benchmark::DoNotOptimize(reply.data());
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ServeRoundTrip);

// ----------------------------------------------------------------------
// --json mode: self-timed dispersion profile for trend tracking and
// regression gating. Every family runs one untimed warmup pass (so a
// cold first iteration never sets the number) and then g_reps timed
// repetitions whose per-rep rates feed a deterministic quantile
// sketch; the emitted summary is {p50, p90, min, max, n}.
// ----------------------------------------------------------------------

/** Timed repetitions per family (--reps=N; warmup is extra). */
int g_reps = 5;

/** One metric's dispersion over the timed repetitions. */
struct Summary
{
    double p50 = 0.0;
    double p90 = 0.0;
    double min = 0.0;
    double max = 0.0;
    uint64_t n = 0;
};

Summary
fromSketch(const util::QuantileSketch &sk)
{
    Summary s;
    s.p50 = sk.quantile(0.5);
    s.p90 = sk.quantile(0.9);
    s.min = sk.min();
    s.max = sk.max();
    s.n = sk.count();
    return s;
}

/** Warmup + g_reps timed runs; per-rep value is items/sec. */
template <typename Fn>
Summary
rateSummary(uint64_t items, Fn &&run)
{
    run();   // warmup: first-touch page faults and cold caches
    util::QuantileSketch sk;
    for (int rep = 0; rep < g_reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        run();
        const double dt = std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0).count();
        sk.add(static_cast<double>(items) / std::max(dt, 1e-12));
    }
    return fromSketch(sk);
}

/** Warmup + g_reps timed runs; per-rep value is ns/item. */
template <typename Fn>
Summary
nsSummary(uint64_t items, Fn &&run)
{
    run();
    util::QuantileSketch sk;
    for (int rep = 0; rep < g_reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        run();
        const double ns = std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - t0).count();
        sk.add(ns / static_cast<double>(items));
    }
    return fromSketch(sk);
}

/** Render one summary as a single-line JSON object. */
void
emitSummary(std::ostream &out, const Summary &s)
{
    out << "{\"p50\": " << s.p50 << ", \"p90\": " << s.p90
        << ", \"min\": " << s.min << ", \"max\": " << s.max
        << ", \"n\": " << s.n << "}";
}

/** Time one analyzer family over the shared trace, batched engine. */
template <typename MakeAnalyzer>
Summary
familyRate(VectorTraceSource &src, MakeAnalyzer &&make)
{
    return rateSummary(src.size(), [&] {
        auto a = make();
        AnalysisEngine eng;
        eng.add(&a);
        src.reset();
        eng.run(src);
        benchmark::DoNotOptimize(&a);
    });
}

/** Time a full or key-subset collection on one engine path. */
Summary
collectRate(VectorTraceSource &src, size_t engineBatch, bool keyOnly)
{
    return rateSummary(src.size(), [&] {
        MicaRunnerConfig cfg;
        cfg.engineBatch = engineBatch;
        src.reset();
        const MicaProfile p = keyOnly
            ? collectMicaProfileSubset(src, "x", keySubset(), cfg)
            : collectMicaProfile(src, "x", cfg);
        benchmark::DoNotOptimize(p.values[0]);
    });
}

/** Time the frozen seed implementations (see legacy_analyzers.hh). */
Summary
seedBaselineRate(VectorTraceSource &src, bool keyOnly)
{
    return rateSummary(src.size(), [&] { runSeedOnce(src, keyOnly); });
}

/** Masks/sec of the frozen seed fitness engine (cold memo per rep). */
Summary
seedFitnessRate()
{
    const auto &masks = methodologyMasks();
    legacy::FitnessEval proto(methodologySpace());
    return rateSummary(masks.size(), [&] {
        legacy::FitnessEval eval = proto;
        double acc = 0.0;
        for (uint64_t m : masks)
            acc += eval(m).first;
        benchmark::DoNotOptimize(acc);
    });
}

/**
 * Masks/sec of the current fitness engine through the pure compute()
 * path, serial or fanned across a pool in the same fixed-size chunks
 * geneticSelect uses.
 */
Summary
engineFitnessRate(const FitnessEval &eval, mica::pipeline::ThreadPool *pool)
{
    const auto &masks = methodologyMasks();
    std::vector<double> out(masks.size());
    const size_t chunks = pool
        ? std::min(masks.size(), pool->workerCount() * 4) : 1;
    return rateSummary(masks.size(), [&] {
        mica::pipeline::parallelBlocks(pool, chunks, [&](size_t b) {
            const size_t lo = masks.size() * b / chunks;
            const size_t hi = masks.size() * (b + 1) / chunks;
            for (size_t i = lo; i < hi; ++i)
                out[i] = eval.compute(masks[i]).first;
        });
        benchmark::DoNotOptimize(out.data());
    });
}

/** GA generations/sec for a fixed-length run (stall exit disabled). */
Summary
gaGenerationsRate(mica::pipeline::ThreadPool *pool)
{
    GaConfig cfg;
    cfg.maxGenerations = 25;
    cfg.stallGenerations = 10000;
    return rateSummary(cfg.maxGenerations, [&] {
        const GaResult r = geneticSelect(methodologySpace(), cfg, pool);
        benchmark::DoNotOptimize(r.fitness);
    });
}

/** Full BIC K-sweeps/sec over the reduced 8-D methodology space. */
Summary
clusterSweepRate(mica::pipeline::ThreadPool *pool)
{
    const Matrix reduced = methodologySpace().normalized().selectCols(
        {0, 1, 2, 3, 4, 5, 6, 7});
    return rateSummary(1, [&] {
        const BicSweepResult r =
            bicSweep(reduced, 24, 5, 0.9, 0.0, pool);
        benchmark::DoNotOptimize(r.chosenK);
    });
}

/**
 * trace_replay family: one registry program, one record stream —
 * profile it from the interpreter vs from a recorded trace file, so
 * the ratio isolates what the trace source itself costs (record =
 * interpret + write; replay = read instead of interpret; open cost,
 * including the full checksum validation pass, is in the loop).
 */
struct TraceReplayRates
{
    uint64_t records = 0;
    Summary interp, record, stream, mmap;
};

TraceReplayRates
traceReplayRates()
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    MicaRunnerConfig cfg;
    cfg.maxInsts = 200000;
    const std::string path =
        (std::filesystem::temp_directory_path() /
         "mica_perf_replay_vs_interp.trace")
            .string();

    TraceReplayRates r;
    {
        // Record once (also learns the record count) ...
        isa::Interpreter interp(prog);
        TraceFileWriter w(path);
        RecordingSource tee(interp, w);
        std::vector<InstRecord> buf(4096);
        const InstRecord *span = nullptr;
        size_t got;
        while (r.records < cfg.maxInsts &&
               (got = tee.nextSpan(
                    span, buf.data(),
                    std::min<uint64_t>(buf.size(),
                                       cfg.maxInsts - r.records))) != 0)
            r.records += got;
        w.close();
    }

    r.interp = rateSummary(r.records, [&] {
        isa::Interpreter interp(prog);
        const MicaProfile p = collectMicaProfile(interp, "x", cfg);
        benchmark::DoNotOptimize(p.values[0]);
    });
    r.record = rateSummary(r.records, [&] {
        isa::Interpreter interp(prog);
        TraceFileWriter w(path + ".rec");
        RecordingSource tee(interp, w);
        std::vector<InstRecord> buf(4096);
        const InstRecord *span = nullptr;
        uint64_t n = 0;
        size_t got;
        while (n < cfg.maxInsts &&
               (got = tee.nextSpan(
                    span, buf.data(),
                    std::min<uint64_t>(buf.size(),
                                       cfg.maxInsts - n))) != 0)
            n += got;
        w.close();
        benchmark::DoNotOptimize(n);
    });
    r.stream = rateSummary(r.records, [&] {
        FileTraceSource src(path);
        const MicaProfile p = collectMicaProfile(src, "x", cfg);
        benchmark::DoNotOptimize(p.values[0]);
    });
    r.mmap = rateSummary(r.records, [&] {
        MappedTraceSource src(path);
        const MicaProfile p = collectMicaProfile(src, "x", cfg);
        benchmark::DoNotOptimize(p.values[0]);
    });
    std::filesystem::remove(path);
    std::filesystem::remove(path + ".rec");
    return r;
}

/**
 * trace_v2 family: the columnar format against the flat one over the
 * same record stream — encode and decode rates in isolation (no
 * analyzers), the end-to-end replay rate through each reader, and the
 * on-disk compression ratio the column streams buy.
 */
struct TraceV2Rates
{
    uint64_t records = 0;
    uint64_t v1Bytes = 0, v2Bytes = 0;
    Summary encode, decode, replayV1, replayV2;
};

TraceV2Rates
traceV2Rates()
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "SPEC2000/bzip2.source");
    const isa::Program prog = e->build();
    MicaRunnerConfig cfg;
    cfg.maxInsts = 200000;
    const auto tmp = std::filesystem::temp_directory_path();
    const std::string p1 = (tmp / "mica_perf_trace_v2.v1.trace").string();
    const std::string p2 = (tmp / "mica_perf_trace_v2.v2.trace").string();

    TraceV2Rates r;
    // Record the stream once into the flat format, then keep the
    // records resident so encode timings see no interpreter cost.
    std::vector<InstRecord> recs;
    {
        isa::Interpreter interp(prog);
        TraceFileWriter w(p1, kTraceFormatV1);
        RecordingSource tee(interp, w);
        std::vector<InstRecord> buf(4096);
        const InstRecord *span = nullptr;
        size_t got;
        while (r.records < cfg.maxInsts &&
               (got = tee.nextSpan(
                    span, buf.data(),
                    std::min<uint64_t>(buf.size(),
                                       cfg.maxInsts - r.records))) != 0) {
            recs.insert(recs.end(), span, span + got);
            r.records += got;
        }
        w.close();
    }
    {
        TraceFileWriter w(p2, kTraceFormatV2);
        w.append(recs.data(), recs.size());
        w.close();
    }
    r.v1Bytes = std::filesystem::file_size(p1);
    r.v2Bytes = std::filesystem::file_size(p2);

    r.encode = rateSummary(r.records, [&] {
        TraceFileWriter w(p2 + ".enc", kTraceFormatV2);
        w.append(recs.data(), recs.size());
        w.close();
        benchmark::DoNotOptimize(w.version());
    });
    r.decode = rateSummary(r.records, [&] {
        FileTraceSource src(p2);
        std::vector<InstRecord> buf(4096);
        const InstRecord *span = nullptr;
        uint64_t n = 0;
        size_t got;
        while ((got = src.nextSpan(span, buf.data(), buf.size())) != 0)
            n += got;
        benchmark::DoNotOptimize(n);
    });
    r.replayV1 = rateSummary(r.records, [&] {
        FileTraceSource src(p1);
        const MicaProfile p = collectMicaProfile(src, "x", cfg);
        benchmark::DoNotOptimize(p.values[0]);
    });
    r.replayV2 = rateSummary(r.records, [&] {
        FileTraceSource src(p2);
        const MicaProfile p = collectMicaProfile(src, "x", cfg);
        benchmark::DoNotOptimize(p.values[0]);
    });
    std::filesystem::remove(p1);
    std::filesystem::remove(p2);
    std::filesystem::remove(p2 + ".enc");
    return r;
}

/** Index builds/sec over the synthetic population. */
Summary
indexBuildRate()
{
    const Matrix &raw = indexDataset();
    return rateSummary(1, [&] {
        const auto idx = index::FingerprintIndex::build(raw);
        benchmark::DoNotOptimize(idx.size());
    });
}

/** Single-query kNN throughput, tree or brute reference. */
Summary
indexKnnRate(bool brute)
{
    const auto &idx = indexCorpus();
    const size_t queries = 512;
    return rateSummary(queries, [&] {
        for (size_t q = 0; q < queries; ++q) {
            const auto r = idx.knn(q, kIndexK, brute);
            benchmark::DoNotOptimize(r.data());
        }
    });
}

/**
 * Warm daemon starts/sec: reopen the persisted index snapshot instead
 * of rebuilding (the cold counterpart is indexBuildRate).
 */
Summary
serveSnapshotLoadRate()
{
    const auto path = (std::filesystem::temp_directory_path() /
                       "mica_perf_serve.idx")
                          .string();
    std::string why;
    if (!index::saveIndexSnapshot(indexCorpus(), path, "bench-serve",
                                  &why)) {
        std::cerr << "serve bench: save snapshot: " << why << "\n";
        return {};
    }
    const Summary rate = rateSummary(1, [&] {
        index::FingerprintIndex loaded;
        if (index::loadIndexSnapshot(path, "bench-serve", &loaded,
                                     &why))
            benchmark::DoNotOptimize(loaded.size());
    });
    std::filesystem::remove(path);
    return rate;
}

/** In-process requests/sec: the one-shot CLI path, no socket. */
Summary
serveLocalRate()
{
    auto snap = serveSnapshot();
    constexpr size_t kReqs = 512;
    return rateSummary(kReqs, [&] {
        for (size_t i = 0; i < kReqs; ++i) {
            const std::string reply =
                service::executeLine(*snap, serveRequestLine(i));
            benchmark::DoNotOptimize(reply.data());
        }
    });
}

/** Aggregate daemon requests/sec with @p conns concurrent clients. */
Summary
serveDaemonRate(service::Server &server, size_t conns)
{
    constexpr size_t kPerConn = 256;
    return rateSummary(conns * kPerConn, [&] {
        std::atomic<size_t> failures{0};
        std::vector<std::thread> clients;
        for (size_t c = 0; c < conns; ++c) {
            clients.emplace_back([&, c] {
                service::ServiceClient client;
                std::string err;
                if (!client.connect(server.boundAddress(), &err)) {
                    failures.fetch_add(kPerConn);
                    return;
                }
                std::string reply;
                for (size_t i = 0; i < kPerConn; ++i) {
                    if (!client.request(
                            serveRequestLine(c * kPerConn + i),
                            &reply, &err))
                        failures.fetch_add(1);
                }
            });
        }
        for (auto &t : clients)
            t.join();
        if (failures.load() != 0)
            std::cerr << "serve bench: " << failures.load()
                      << " failed requests\n";
    });
}

/**
 * Per-request knn round-trip latency (microseconds) on one
 * connection: the latency-side complement of the aggregate
 * requests/sec numbers, with every individual request feeding the
 * sketch so the tail (p99) is visible.
 */
struct LatencySummary
{
    double p50 = 0.0, p90 = 0.0, p99 = 0.0, min = 0.0, max = 0.0;
    uint64_t n = 0;
};

void
emitLatencySummary(std::ostream &out, const LatencySummary &s)
{
    out << "{\"p50\": " << s.p50 << ", \"p90\": " << s.p90
        << ", \"p99\": " << s.p99 << ", \"min\": " << s.min
        << ", \"max\": " << s.max << ", \"n\": " << s.n << "}";
}

LatencySummary
latencyFromSketch(const util::QuantileSketch &sk)
{
    LatencySummary s;
    s.p50 = sk.quantile(0.5);
    s.p90 = sk.quantile(0.9);
    s.p99 = sk.quantile(0.99);
    s.min = sk.min();
    s.max = sk.max();
    s.n = sk.count();
    return s;
}

LatencySummary
serveKnnLatencyUs(service::Server &server)
{
    service::ServiceClient client;
    std::string err;
    if (!client.connect(server.boundAddress(), &err)) {
        std::cerr << "serve bench: " << err << "\n";
        return {};
    }
    constexpr size_t kWarmup = 64;
    constexpr size_t kTimed = 1024;
    util::QuantileSketch sk;
    std::string reply;
    for (size_t i = 0; i < kWarmup + kTimed; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        if (!client.request(serveRequestLine(i), &reply, &err)) {
            std::cerr << "serve bench: " << err << "\n";
            return {};
        }
        const double us = std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - t0).count();
        if (i >= kWarmup)
            sk.add(us);
    }
    return latencyFromSketch(sk);
}

/** Whole-population batch kNN throughput (queries/sec). */
Summary
indexBatchRate(mica::pipeline::ThreadPool *pool)
{
    const auto &idx = indexCorpus();
    return rateSummary(idx.size(), [&] {
        const auto r = idx.batchKnn(kIndexK, pool);
        benchmark::DoNotOptimize(r.data());
    });
}

// ----------------------------------------------------------------------
// obs family: what the telemetry layer itself costs. The acceptance
// bar for the subsystem is that an instrumented build with no sinks
// attached keeps >= 97% of the MICA_OBS=0 build's full-profile
// throughput; the reference rate comes from a separately-built binary
// via --obs-ref so the ratio lands in one JSON document.
// ----------------------------------------------------------------------

/** ns per Counter::add on the sharded fast path. */
Summary
counterAddNs()
{
    static obs::Counter c("bench.obs.counter");
    constexpr uint64_t kAdds = 1u << 22;
    return nsSummary(kAdds, [] {
        for (uint64_t i = 0; i < kAdds; ++i)
            c.add(1);
        benchmark::DoNotOptimize(&c);
    });
}

/** ns per armed span (construct, one arg, record into the ring). */
Summary
spanRecordNs()
{
    obs::setTraceEnabled(true);
    constexpr uint64_t kSpans = 1u << 16;
    const Summary ns = nsSummary(kSpans, [] {
        for (uint64_t i = 0; i < kSpans; ++i) {
            obs::ObsSpan sp("bench.obs.span");
            sp.arg("i", i);
        }
    });
    obs::setTraceEnabled(false);
    return ns;
}

/** The canonical family names (enable-file / capabilities contract). */
const std::vector<std::string> &
allFamilies()
{
    static const std::vector<std::string> fams = {
        "analyzers", "engine", "methodology", "trace_replay",
        "trace_v2",  "index",  "serve",       "obs"};
    return fams;
}

/** Parse an enable JSON: {"families": ["index", "serve", ...]}. */
bool
loadEnableFile(const std::string &path, std::set<std::string> *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::cerr << "perf_analyzers: cannot read " << path << "\n";
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    service::JsonValue doc;
    std::string err;
    if (!service::parseJson(buf.str(), &doc, &err) || !doc.isObject()) {
        std::cerr << "perf_analyzers: " << path << ": "
                  << (err.empty() ? "not a JSON object" : err) << "\n";
        return false;
    }
    const service::JsonValue *fams = doc.find("families");
    if (fams == nullptr || !fams->isArray()) {
        std::cerr << "perf_analyzers: " << path
                  << ": missing \"families\" array\n";
        return false;
    }
    const auto &known = allFamilies();
    for (const auto &f : fams->items()) {
        if (!f.isString() ||
            std::find(known.begin(), known.end(), f.asString()) ==
                known.end()) {
            std::cerr << "perf_analyzers: " << path
                      << ": unknown family "
                      << (f.isString() ? f.asString() : f.dump())
                      << "\n";
            return false;
        }
        out->insert(f.asString());
    }
    if (out->empty()) {
        std::cerr << "perf_analyzers: " << path
                  << ": no families enabled\n";
        return false;
    }
    return true;
}

/** p50 ratio with a zero guard (a failed family reports 0 rates). */
double
ratio(const Summary &num, const Summary &den)
{
    return den.p50 > 0.0 ? num.p50 / den.p50 : 0.0;
}

int
writeJsonProfile(const std::string &path, double obsRef,
                 const std::set<std::string> &enabled)
{
    VectorTraceSource src(sharedTrace());
    const uint64_t records = src.size();
    const auto on = [&](const char *fam) {
        return enabled.count(fam) != 0;
    };

    std::optional<mica::pipeline::ThreadPool> pool8;
    const auto pool = [&]() -> mica::pipeline::ThreadPool * {
        if (!pool8)
            pool8.emplace(8);
        return &*pool8;
    };

    // The engine's batched full-profile rate doubles as the obs
    // family's "idle" number; computed once, whichever family asks
    // first.
    std::optional<Summary> fullBatchedCache;
    const auto fullBatched = [&]() -> const Summary & {
        if (!fullBatchedCache)
            fullBatchedCache = collectRate(
                src, AnalysisEngine::kDefaultBatchSize, false);
        return *fullBatchedCache;
    };

    // Each enabled family renders its own object; disabled families
    // are simply absent from the document (the enable-file contract).
    std::vector<std::pair<std::string, std::string>> fams;

    if (on("analyzers")) {
        const Summary mix =
            familyRate(src, [] { return InstMixAnalyzer(); });
        const Summary ilp = familyRate(src, [] { return IlpAnalyzer(); });
        const Summary rt =
            familyRate(src, [] { return RegTrafficAnalyzer(); });
        const Summary ws =
            familyRate(src, [] { return WorkingSetAnalyzer(); });
        const Summary st =
            familyRate(src, [] { return StrideAnalyzer(); });
        const Summary ppm =
            familyRate(src, [] { return PpmBranchAnalyzer(8); });
        std::ostringstream os;
        os.precision(17);
        os << "{\n      \"units\": \"records_per_sec\",\n"
           << "      \"inst_mix\": ";
        emitSummary(os, mix);
        os << ",\n      \"ilp\": ";
        emitSummary(os, ilp);
        os << ",\n      \"reg_traffic\": ";
        emitSummary(os, rt);
        os << ",\n      \"working_set\": ";
        emitSummary(os, ws);
        os << ",\n      \"strides\": ";
        emitSummary(os, st);
        os << ",\n      \"ppm\": ";
        emitSummary(os, ppm);
        os << "\n    }";
        fams.emplace_back("analyzers", os.str());
    }

    if (on("engine")) {
        const Summary fullSeed = seedBaselineRate(src, false);
        const Summary fullPerRecord = collectRate(src, 0, false);
        const Summary fullB = fullBatched();
        const Summary keySeed = seedBaselineRate(src, true);
        const Summary keyPerRecord = collectRate(src, 0, true);
        const Summary keyBatched = collectRate(
            src, AnalysisEngine::kDefaultBatchSize, true);
        std::ostringstream os;
        os.precision(17);
        os << "{\n      \"units\": \"records_per_sec\",\n"
           << "      \"full_profile\": {\n"
           << "        \"seed_baseline\": ";
        emitSummary(os, fullSeed);
        os << ",\n        \"per_record\": ";
        emitSummary(os, fullPerRecord);
        os << ",\n        \"batched\": ";
        emitSummary(os, fullB);
        os << ",\n        \"speedup_vs_seed\": " << ratio(fullB, fullSeed)
           << "\n      },\n      \"key_subset\": {\n"
           << "        \"seed_baseline\": ";
        emitSummary(os, keySeed);
        os << ",\n        \"per_record\": ";
        emitSummary(os, keyPerRecord);
        os << ",\n        \"batched\": ";
        emitSummary(os, keyBatched);
        os << ",\n        \"speedup_vs_seed\": "
           << ratio(keyBatched, keySeed) << "\n      }\n    }";
        fams.emplace_back("engine", os.str());
    }

    if (on("methodology")) {
        // GA fitness stage (masks/sec, frozen seed vs current engine
        // vs 8-job fan-out), whole-GA generations/sec, and clustering
        // K-sweeps/sec. The 8-job numbers only beat serial on
        // multi-core machines; the host block records the CPU count.
        const FitnessEval methodologyEval(methodologySpace());
        const Summary fitSeed = seedFitnessRate();
        const Summary fitSerial =
            engineFitnessRate(methodologyEval, nullptr);
        const Summary fitJobs8 =
            engineFitnessRate(methodologyEval, pool());
        const Summary gaSerial = gaGenerationsRate(nullptr);
        const Summary gaJobs8 = gaGenerationsRate(pool());
        const Summary sweepSerial = clusterSweepRate(nullptr);
        const Summary sweepJobs8 = clusterSweepRate(pool());
        std::ostringstream os;
        os.precision(17);
        os << "{\n      \"workers\": 8,\n"
           << "      \"ga_fitness_masks_per_sec\": {\n"
           << "        \"seed_baseline\": ";
        emitSummary(os, fitSeed);
        os << ",\n        \"serial\": ";
        emitSummary(os, fitSerial);
        os << ",\n        \"jobs8\": ";
        emitSummary(os, fitJobs8);
        os << ",\n        \"speedup_vs_seed\": " << ratio(fitJobs8, fitSeed)
           << ",\n        \"serial_speedup_vs_seed\": "
           << ratio(fitSerial, fitSeed) << "\n      },\n"
           << "      \"ga_generations_per_sec\": {\n"
           << "        \"serial\": ";
        emitSummary(os, gaSerial);
        os << ",\n        \"jobs8\": ";
        emitSummary(os, gaJobs8);
        os << ",\n        \"speedup\": " << ratio(gaJobs8, gaSerial)
           << "\n      },\n"
           << "      \"clustering_sweeps_per_sec\": {\n"
           << "        \"serial\": ";
        emitSummary(os, sweepSerial);
        os << ",\n        \"jobs8\": ";
        emitSummary(os, sweepJobs8);
        os << ",\n        \"speedup\": " << ratio(sweepJobs8, sweepSerial)
           << "\n      }\n    }";
        fams.emplace_back("methodology", os.str());
    }

    if (on("trace_replay")) {
        const TraceReplayRates trr = traceReplayRates();
        std::ostringstream os;
        os.precision(17);
        os << "{\n      \"records\": " << trr.records << ",\n"
           << "      \"full_profile_records_per_sec\": {\n"
           << "        \"interpreter\": ";
        emitSummary(os, trr.interp);
        os << ",\n        \"recording\": ";
        emitSummary(os, trr.record);
        os << ",\n        \"stream_replay\": ";
        emitSummary(os, trr.stream);
        os << ",\n        \"mmap_replay\": ";
        emitSummary(os, trr.mmap);
        os << ",\n        \"mmap_speedup_vs_interp\": "
           << ratio(trr.mmap, trr.interp) << "\n      }\n    }";
        fams.emplace_back("trace_replay", os.str());
    }

    if (on("trace_v2")) {
        const TraceV2Rates tv = traceV2Rates();
        std::ostringstream os;
        os.precision(17);
        os << "{\n      \"records\": " << tv.records << ",\n"
           << "      \"v1_bytes\": " << tv.v1Bytes << ",\n"
           << "      \"v2_bytes\": " << tv.v2Bytes << ",\n"
           << "      \"compression_ratio\": "
           << (tv.v2Bytes > 0 ? static_cast<double>(tv.v1Bytes) /
                                    static_cast<double>(tv.v2Bytes)
                              : 0.0)
           << ",\n      \"encode_records_per_sec\": ";
        emitSummary(os, tv.encode);
        os << ",\n      \"decode_records_per_sec\": ";
        emitSummary(os, tv.decode);
        os << ",\n      \"full_profile_records_per_sec\": {\n"
           << "        \"v1_stream_replay\": ";
        emitSummary(os, tv.replayV1);
        os << ",\n        \"v2_stream_replay\": ";
        emitSummary(os, tv.replayV2);
        os << ",\n        \"v2_speedup_vs_v1\": "
           << ratio(tv.replayV2, tv.replayV1) << "\n      }\n    }";
        fams.emplace_back("trace_v2", os.str());
    }

    if (on("index")) {
        const Summary idxBuild = indexBuildRate();
        const Summary idxTree = indexKnnRate(false);
        const Summary idxBrute = indexKnnRate(true);
        const Summary idxBatchSerial = indexBatchRate(nullptr);
        const Summary idxBatchJobs8 = indexBatchRate(pool());
        std::ostringstream os;
        os.precision(17);
        os << "{\n      \"points\": " << kIndexPoints << ",\n"
           << "      \"dim\": " << kIndexDim << ",\n"
           << "      \"k\": " << kIndexK << ",\n"
           << "      \"builds_per_sec\": ";
        emitSummary(os, idxBuild);
        os << ",\n      \"knn_queries_per_sec\": {\n"
           << "        \"vp_tree\": ";
        emitSummary(os, idxTree);
        os << ",\n        \"brute\": ";
        emitSummary(os, idxBrute);
        os << ",\n        \"speedup_vs_brute\": "
           << ratio(idxTree, idxBrute) << "\n      },\n"
           << "      \"batch_knn_queries_per_sec\": {\n"
           << "        \"serial\": ";
        emitSummary(os, idxBatchSerial);
        os << ",\n        \"jobs8\": ";
        emitSummary(os, idxBatchJobs8);
        os << ",\n        \"speedup\": "
           << ratio(idxBatchJobs8, idxBatchSerial) << "\n      }\n    }";
        fams.emplace_back("index", os.str());
    }

    if (on("serve")) {
        // Daemon saturation (aggregate requests/sec at 1, 2, 4, 8
        // concurrent connections against a 4-worker daemon), the
        // in-process one-shot rate for contrast, warm daemon start
        // (snapshot reopen), and the per-request round-trip latency
        // tail on one connection.
        const Summary serveWarmLoad = serveSnapshotLoadRate();
        const Summary serveLocal = serveLocalRate();
        Summary serveConns[4];
        LatencySummary lat;
        {
            ServeHarness harness;
            const size_t counts[4] = {1, 2, 4, 8};
            for (size_t i = 0; i < 4; ++i)
                serveConns[i] =
                    serveDaemonRate(*harness.server, counts[i]);
            lat = serveKnnLatencyUs(*harness.server);
        }
        std::ostringstream os;
        os.precision(17);
        os << "{\n      \"workers\": 4,\n"
           << "      \"snapshot_warm_loads_per_sec\": ";
        emitSummary(os, serveWarmLoad);
        os << ",\n      \"local_requests_per_sec\": ";
        emitSummary(os, serveLocal);
        os << ",\n      \"daemon_requests_per_sec\": {\n"
           << "        \"conns1\": ";
        emitSummary(os, serveConns[0]);
        os << ",\n        \"conns2\": ";
        emitSummary(os, serveConns[1]);
        os << ",\n        \"conns4\": ";
        emitSummary(os, serveConns[2]);
        os << ",\n        \"conns8\": ";
        emitSummary(os, serveConns[3]);
        os << ",\n        \"saturation_speedup\": "
           << ratio(serveConns[3], serveConns[0]) << "\n      },\n"
           << "      \"knn_round_trip_us\": ";
        emitLatencySummary(os, lat);
        os << "\n    }";
        fams.emplace_back("serve", os.str());
    }

    if (on("obs")) {
        // Telemetry primitives plus the full-profile rate with the
        // tracer armed (idle = compiled in but no sinks attached).
        const Summary obsCounter = counterAddNs();
        const Summary obsSpan = spanRecordNs();
        const Summary idle = fullBatched();
        obs::setTraceEnabled(true);
        const Summary fullTraced = collectRate(
            src, AnalysisEngine::kDefaultBatchSize, false);
        obs::setTraceEnabled(false);
        std::ostringstream os;
        os.precision(17);
        os << "{\n      \"compiled\": " << (MICA_OBS ? "true" : "false")
           << ",\n      \"counter_add_ns\": ";
        emitSummary(os, obsCounter);
        os << ",\n      \"span_record_ns\": ";
        emitSummary(os, obsSpan);
        os << ",\n      \"full_profile_records_per_sec\": {\n"
           << "        \"idle\": ";
        emitSummary(os, idle);
        os << ",\n        \"traced\": ";
        emitSummary(os, fullTraced);
        os << ",\n        \"traced_over_idle\": "
           << ratio(fullTraced, idle);
        if (obsRef > 0.0) {
            os << ",\n        \"obs_off_reference\": " << obsRef
               << ",\n        \"idle_over_obs_off\": "
               << (idle.p50 / obsRef);
        }
        os << "\n      }\n    }";
        fams.emplace_back("obs", os.str());
    }

    // Wall-clock stamp (UTC) so trend dashboards can order documents
    // without trusting file mtimes.
    char generatedAt[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    if (const std::tm *tm = std::gmtime(&now))
        std::strftime(generatedAt, sizeof(generatedAt), "%FT%TZ", tm);

    std::ofstream out(path);
    if (!out) {
        std::cerr << "perf_analyzers: cannot write " << path << "\n";
        return 1;
    }
    out.precision(17);
    out << "{\n"
        << "  \"schema\": \"mica-perf-profile/2\",\n"
        << "  \"host\": {\n"
        << "    \"generated_at\": \"" << generatedAt << "\",\n"
        << "    \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << "\n"
        << "  },\n"
        << "  \"records\": " << records << ",\n"
        << "  \"reps\": " << g_reps << ",\n"
        << "  \"families\": {";
    for (size_t i = 0; i < fams.size(); ++i)
        out << (i == 0 ? "\n    \"" : ",\n    \"") << fams[i].first
            << "\": " << fams[i].second;
    out << "\n  }\n}\n";
    std::cout << "perf profile written to " << path << " ("
              << fams.size() << "/" << allFamilies().size()
              << " families, reps=" << g_reps << ")\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our own flags before google-benchmark sees (and rejects)
    // them; any other arguments pass through untouched. --obs-ref
    // feeds the MICA_OBS=0 build's full-profile p50 into the obs
    // family so one document holds the compiled-in/out ratio.
    std::string jsonPath;
    std::string enablePath;
    double obsRef = 0.0;
    std::vector<char *> args;
    args.reserve(static_cast<size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            jsonPath = argv[i] + 7;
        else if (std::strncmp(argv[i], "--obs-ref=", 10) == 0)
            obsRef = std::strtod(argv[i] + 10, nullptr);
        else if (std::strncmp(argv[i], "--enable-file=", 14) == 0)
            enablePath = argv[i] + 14;
        else if (std::strncmp(argv[i], "--reps=", 7) == 0)
            g_reps = static_cast<int>(std::strtol(argv[i] + 7,
                                                  nullptr, 10));
        else
            args.push_back(argv[i]);
    }
    if (g_reps < 2 || g_reps > 100) {
        std::cerr << "perf_analyzers: --reps must be in [2, 100]\n";
        return 2;
    }
    if (!jsonPath.empty()) {
        std::set<std::string> enabled(allFamilies().begin(),
                                      allFamilies().end());
        if (!enablePath.empty()) {
            enabled.clear();
            if (!loadEnableFile(enablePath, &enabled))
                return 2;
        }
        return writeJsonProfile(jsonPath, obsRef, enabled);
    }

    int rest = static_cast<int>(args.size());
    benchmark::Initialize(&rest, args.data());
    if (benchmark::ReportUnrecognizedArguments(rest, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
