/**
 * @file
 * Ablation: input-set sensitivity. Table I treats each (program, input)
 * pair as a separate benchmark; the paper's prior work (Eeckhout,
 * Vandierendonck & De Bosschere, JILP 2003 [7]) showed inputs usually
 * perturb behavior far less than changing programs does. This harness
 * verifies the population preserves that structure: distances between
 * inputs of the same program are much smaller than distances between
 * different programs, with a few interesting exceptions (the paper's
 * tiff- and gcc-style input-dependent programs).
 */

#include <algorithm>
#include <map>

#include "bench_common.hh"

#include "methodology/workload_space.hh"
#include "report/table.hh"
#include "stats/descriptive.hh"

using namespace mica;

int
main(int argc, char **argv)
{
    const auto cfg = experiments::configFromArgs(argc, argv);
    bench::banner("Ablation: input-set sensitivity",
                  "Table I structure; Eeckhout et al. [7]");

    const auto ds = bench::collectWithBanner(cfg);
    const WorkloadSpace mica(ds.micaMatrix());
    const auto &dist = mica.distances();

    // Group rows by (suite, program).
    std::map<std::string, std::vector<size_t>> programs;
    for (size_t i = 0; i < ds.benchmarks.size(); ++i) {
        programs[ds.benchmarks[i].suite + "/" +
                 ds.benchmarks[i].program].push_back(i);
    }

    std::vector<double> sameProgram, crossProgram;
    const size_t n = ds.benchmarks.size();
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            const bool same =
                ds.benchmarks[i].suite == ds.benchmarks[j].suite &&
                ds.benchmarks[i].program == ds.benchmarks[j].program;
            (same ? sameProgram : crossProgram).push_back(dist.at(i, j));
        }
    }

    report::TextTable t({"program", "#inputs", "max intra dist",
                         "mean intra dist"},
                        {report::Align::Left, report::Align::Right,
                         report::Align::Right, report::Align::Right});
    std::vector<std::pair<double, std::string>> spread;
    for (const auto &[name, rows] : programs) {
        if (rows.size() < 2)
            continue;
        double mx = 0, sum = 0;
        size_t cnt = 0;
        for (size_t a = 0; a < rows.size(); ++a) {
            for (size_t b = a + 1; b < rows.size(); ++b) {
                const double d = dist.at(rows[a], rows[b]);
                mx = std::max(mx, d);
                sum += d;
                ++cnt;
            }
        }
        spread.push_back({mx, name});
        t.addRow({name, std::to_string(rows.size()),
                  report::TextTable::num(mx, 3),
                  report::TextTable::num(sum / double(cnt), 3)});
    }
    std::printf("%s\n",
                t.render("Intra-program (input-to-input) "
                         "distances").c_str());

    const double meanSame = mean(sameProgram);
    const double meanCross = mean(crossProgram);
    std::printf("mean distance, same program different input: %.3f "
                "(%zu pairs)\n", meanSame, sameProgram.size());
    std::printf("mean distance, different programs:           %.3f "
                "(%zu pairs)\n\n", meanCross, crossProgram.size());

    std::sort(spread.rbegin(), spread.rend());
    std::printf("most input-sensitive programs (the paper's tiff/gcc "
                "effect):\n");
    for (size_t i = 0; i < 3 && i < spread.size(); ++i)
        std::printf("  %-28s max intra distance %.3f\n",
                    spread[i].second.c_str(), spread[i].first);
    std::printf("\n");

    const bool inputsCloser = meanSame < 0.5 * meanCross;
    const bool exceptionsExist = spread.front().first > meanSame * 2;
    std::printf("shape check: inputs perturb less than programs "
                "(mean ratio %.2f < 0.5): %s\n", meanSame / meanCross,
                inputsCloser ? "PASS" : "FAIL");
    std::printf("shape check: some programs are strongly input-"
                "dependent: %s\n", exceptionsExist ? "PASS" : "FAIL");
    return (inputsCloser && exceptionsExist) ? 0 : 1;
}
