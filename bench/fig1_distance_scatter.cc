/**
 * @file
 * Fig. 1: distance in the hardware-performance-counter space versus
 * distance in the microarchitecture-independent space, over all
 * C(122,2) = 7381 benchmark tuples, plus the correlation coefficient
 * (0.46 in the paper; "modest" is the claim under test).
 */

#include "bench_common.hh"

#include "methodology/workload_space.hh"
#include "report/ascii_plot.hh"
#include "stats/descriptive.hh"

using namespace mica;

int
main(int argc, char **argv)
{
    const auto cfg = experiments::configFromArgs(argc, argv);
    bench::banner("Fig. 1: HPC-space vs MICA-space distances",
                  "Fig. 1 and Section IV");

    const auto ds = bench::collectWithBanner(cfg);
    const WorkloadSpace mica(ds.micaMatrix());
    const WorkloadSpace hpc(ds.hpcMatrix());

    const auto &mDist = mica.distances().condensed();
    const auto &hDist = hpc.distances().condensed();
    const double rho = pearson(mDist, hDist);

    report::PlotConfig pc;
    pc.width = 72;
    pc.height = 26;
    pc.xLabel = "distance in microarchitecture-independent space";
    pc.yLabel = "distance in HPC space";
    pc.title = "each dot: one of the 7381 benchmark tuples";
    std::printf("%s\n", report::densityPlot(mDist, hDist, pc).c_str());

    std::printf("benchmark tuples:          %zu\n", mDist.size());
    std::printf("correlation coefficient:   %.3f\n", rho);
    std::printf("paper reports:             0.46 (modest)\n\n");

    const bool modest = rho > 0.15 && rho < 0.8;
    std::printf("shape check: correlation is modest (well below 1): %s\n",
                modest ? "PASS" : "FAIL");
    return modest ? 0 : 1;
}
