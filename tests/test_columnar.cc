/**
 * @file
 * Tests for the v2 columnar chunk codec primitives: varint and zigzag
 * round trips at every boundary the encodings care about, bit-packed
 * register fields at the width edges, full-chunk round trips over
 * randomized record streams, and the per-column error naming the
 * decoder guarantees.
 */

#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "trace/columnar.hh"
#include "trace/trace_file.hh"

namespace mica
{
namespace columnar
{
namespace
{

uint64_t
varintRoundTrip(uint64_t v, size_t *encodedBytes = nullptr)
{
    std::string buf;
    putVarint(buf, v);
    if (encodedBytes != nullptr)
        *encodedBytes = buf.size();
    const auto *p = reinterpret_cast<const unsigned char *>(buf.data());
    const auto *end = p + buf.size();
    uint64_t out = ~v;
    EXPECT_TRUE(getVarint(p, end, out));
    EXPECT_EQ(p, end) << "decoder must consume the whole encoding";
    return out;
}

TEST(VarintTest, RoundTripsBoundaryValues)
{
    // The byte-count edges of base-128: 0 and 127 fit one byte, 128
    // and 16383 two, 16384 three, and UINT64_MAX all ten.
    const struct { uint64_t v; size_t bytes; } cases[] = {
        {0, 1},           {1, 1},          {127, 1},
        {128, 2},         {16383, 2},      {16384, 3},
        {(1ull << 35), 6}, {UINT64_MAX, 10},
    };
    for (const auto &c : cases) {
        size_t n = 0;
        EXPECT_EQ(varintRoundTrip(c.v, &n), c.v);
        EXPECT_EQ(n, c.bytes) << "value " << c.v;
    }
}

TEST(VarintTest, RejectsTruncationAndGarbage)
{
    std::string buf;
    putVarint(buf, UINT64_MAX);
    for (size_t keep = 0; keep < buf.size(); ++keep) {
        const auto *p =
            reinterpret_cast<const unsigned char *>(buf.data());
        uint64_t v = 0;
        EXPECT_FALSE(getVarint(p, p + keep, v)) << keep;
    }
    // Eleven continuation bytes can never be a valid u64.
    const unsigned char overlong[11] = {0x80, 0x80, 0x80, 0x80, 0x80,
                                        0x80, 0x80, 0x80, 0x80, 0x80,
                                        0x00};
    const unsigned char *p = overlong;
    uint64_t v = 0;
    EXPECT_FALSE(getVarint(p, p + sizeof(overlong), v));
}

TEST(ZigzagTest, RoundTripsBoundaryValues)
{
    const int64_t cases[] = {
        0, 1, -1, 2, -2, 63, -64, INT64_MAX, INT64_MIN,
        // The most negative PC delta a wrap-around step can produce.
        INT64_MIN + 1,
    };
    for (int64_t v : cases)
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v) << v;
    // Small magnitudes must map onto small codes (that is the point).
    EXPECT_EQ(zigzagEncode(0), 0u);
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
    EXPECT_EQ(zigzagEncode(-2), 3u);
}

TEST(BitPackTest, RoundTripsAtEveryWidth)
{
    for (unsigned width = 0; width <= 16; ++width) {
        const uint64_t maxVal =
            width == 0 ? 0 : ((1ull << width) - 1);
        const uint64_t vals[] = {0, maxVal / 2, maxVal};
        std::string buf;
        BitWriter bw(buf);
        for (uint64_t v : vals)
            bw.put(v, width);
        bw.flush();
        const auto *p =
            reinterpret_cast<const unsigned char *>(buf.data());
        BitReader br(p, p + buf.size());
        for (uint64_t v : vals) {
            uint64_t got = ~v;
            ASSERT_TRUE(br.get(width, got)) << width;
            EXPECT_EQ(got, v) << width;
        }
    }
}

TEST(BitPackTest, ReaderRefusesToRunPastTheEnd)
{
    std::string buf;
    BitWriter bw(buf);
    bw.put(0x3, 2);
    bw.flush();     // one byte total
    const auto *p = reinterpret_cast<const unsigned char *>(buf.data());
    BitReader br(p, p + buf.size());
    uint64_t v = 0;
    EXPECT_TRUE(br.get(2, v));
    EXPECT_TRUE(br.get(6, v));      // padding bits of the same byte
    EXPECT_FALSE(br.get(1, v));     // next byte does not exist
}

/** One record of every shape the validity rules allow. */
std::vector<InstRecord>
shapedRecords()
{
    std::vector<InstRecord> recs;
    InstRecord r;

    r = InstRecord{};
    r.cls = InstClass::Nop;
    recs.push_back(r);      // no operands at all

    r = InstRecord{};
    r.cls = InstClass::Load;
    r.pc = 0xfffffffffffffff0ull;   // wraps to a small PC next record
    r.numSrcRegs = 1;
    r.srcRegs[0] = 31;
    r.dstReg = 7;
    r.memAddr = UINT64_MAX;
    r.memSize = 16;
    recs.push_back(r);

    r = InstRecord{};
    r.cls = InstClass::Store;
    r.pc = 4;               // max negative delta from the record above
    r.numSrcRegs = 3;
    r.srcRegs = {1, 2, 3};
    r.memAddr = 0;          // max negative address delta
    r.memSize = 1;
    recs.push_back(r);

    r = InstRecord{};
    r.cls = InstClass::Branch;
    r.pc = 0x400000;
    r.numSrcRegs = 2;
    r.srcRegs[0] = 63;
    r.srcRegs[1] = 0;
    r.taken = true;
    r.target = 8;           // far backward target
    recs.push_back(r);

    r = InstRecord{};
    r.cls = InstClass::Return;
    r.pc = 0;
    r.taken = true;
    r.target = UINT64_MAX;  // far forward target
    recs.push_back(r);
    return recs;
}

std::vector<InstRecord>
chunkRoundTrip(const std::vector<InstRecord> &recs)
{
    std::string enc;
    uint32_t colBytes[kNumColumns] = {};
    encodeChunk(recs.data(), recs.size(), enc, colBytes);
    uint64_t total = 0;
    for (uint32_t b : colBytes)
        total += b;
    EXPECT_EQ(total, enc.size());
    std::vector<InstRecord> out(recs.size());
    decodeChunk(enc.data(), colBytes, recs.size(), out.data(), "test");
    return out;
}

TEST(ChunkCodecTest, RoundTripsEveryRecordShape)
{
    const auto recs = shapedRecords();
    const auto out = chunkRoundTrip(recs);
    for (size_t i = 0; i < recs.size(); ++i) {
        const InstRecord a = canonicalRecord(recs[i]);
        const InstRecord b = canonicalRecord(out[i]);
        EXPECT_EQ(std::memcmp(&a, &b, sizeof(InstRecord)), 0) << i;
    }
}

TEST(ChunkCodecTest, CanonicalizesWhatTheValidityRulesAllow)
{
    // Junk in fields the record's class declares meaningless must not
    // survive a round trip — and must not affect the encoding of the
    // records around it.
    InstRecord junk;
    junk.cls = InstClass::IntAlu;
    junk.numSrcRegs = 1;
    junk.srcRegs = {5, 999, 777};   // lanes 1..2 are invalid
    junk.dstReg = 3;
    junk.memAddr = 0xdeadbeef;      // not a memory record
    junk.memSize = 77;
    junk.target = 0x1234;           // not a control record
    const auto out = chunkRoundTrip({junk});
    EXPECT_EQ(out[0].srcRegs[0], 5);
    EXPECT_EQ(out[0].srcRegs[1], kInvalidReg);
    EXPECT_EQ(out[0].srcRegs[2], kInvalidReg);
    EXPECT_EQ(out[0].memAddr, 0u);
    EXPECT_EQ(out[0].memSize, 0u);
    EXPECT_EQ(out[0].target, 0u);
    const InstRecord a = canonicalRecord(junk);
    const InstRecord b = canonicalRecord(out[0]);
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(InstRecord)), 0);
}

TEST(ChunkCodecTest, FuzzRoundTripAcrossSeeds)
{
    for (uint32_t seed : {1u, 2u, 42u, 1234u, 99999u}) {
        std::mt19937_64 rng(seed);
        std::vector<InstRecord> recs(1 + rng() % 3000);
        for (auto &r : recs) {
            r = InstRecord{};
            r.cls = static_cast<InstClass>(rng() % kNumInstClasses);
            // Mix dense sequential PCs with wild jumps.
            r.pc = (rng() % 4 == 0) ? rng() : 0x400000 + 4 * (rng() %
                                                              100000);
            r.numSrcRegs = static_cast<uint8_t>(rng() % 4);
            for (size_t s = 0; s < r.numSrcRegs; ++s)
                r.srcRegs[s] = static_cast<uint16_t>(rng());
            if (rng() % 2)
                r.dstReg = static_cast<uint16_t>(rng() % kNumRegs);
            if (r.isMem()) {
                r.memAddr = rng();
                r.memSize = static_cast<uint8_t>(1 + rng() % 64);
            }
            if (r.isControl()) {
                r.taken = rng() % 2 != 0;
                r.target = rng();
            }
        }
        const auto out = chunkRoundTrip(recs);
        for (size_t i = 0; i < recs.size(); ++i) {
            const InstRecord a = canonicalRecord(recs[i]);
            const InstRecord b = canonicalRecord(out[i]);
            ASSERT_EQ(std::memcmp(&a, &b, sizeof(InstRecord)), 0)
                << "seed " << seed << " record " << i;
        }
    }
}

void
expectColumnError(const std::string &enc,
                  const uint32_t colBytes[kNumColumns], size_t n,
                  const std::string &needle)
{
    std::vector<InstRecord> out(n);
    try {
        decodeChunk(enc.data(), colBytes, n, out.data(), "t.trace");
        FAIL() << "expected TraceFileError containing '" << needle
               << "'";
    } catch (const TraceFileError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "actual: " << e.what();
    }
}

TEST(ChunkCodecTest, CorruptColumnsNameTheColumn)
{
    const auto recs = shapedRecords();
    std::string enc;
    uint32_t colBytes[kNumColumns] = {};
    encodeChunk(recs.data(), recs.size(), enc, colBytes);

    // Class value out of range.
    {
        std::string bad = enc;
        bad[0] = static_cast<char>(kNumInstClasses);
        uint32_t cb[kNumColumns];
        std::memcpy(cb, colBytes, sizeof(cb));
        expectColumnError(bad, cb, recs.size(), "column 'cls'");
    }
    // PC stream shorter than the record count.
    {
        std::string bad = enc;
        uint32_t cb[kNumColumns];
        std::memcpy(cb, colBytes, sizeof(cb));
        bad.erase(cb[kColCls] + cb[kColPc] - 1, 1);
        cb[kColPc] -= 1;
        expectColumnError(bad, cb, recs.size(), "column 'pc'");
    }
    // Register width byte over 16 bits.
    {
        std::string bad = enc;
        uint32_t cb[kNumColumns];
        std::memcpy(cb, colBytes, sizeof(cb));
        bad[cb[kColCls] + cb[kColPc]] = 17;
        expectColumnError(bad, cb, recs.size(), "column 'reg'");
    }
    // A memory-size byte for every memory record is mandatory.
    {
        std::string bad = enc;
        uint32_t cb[kNumColumns];
        std::memcpy(cb, colBytes, sizeof(cb));
        const size_t sizeOff =
            cb[kColCls] + cb[kColPc] + cb[kColReg] + cb[kColMemAddr];
        bad.erase(sizeOff, 1);
        cb[kColMemSize] -= 1;
        expectColumnError(bad, cb, recs.size(), "column 'mem_size'");
    }
    // Trailing bytes in the target stream.
    {
        std::string bad = enc + '\0';
        uint32_t cb[kNumColumns];
        std::memcpy(cb, colBytes, sizeof(cb));
        cb[kColTarget] += 1;
        expectColumnError(bad, cb, recs.size(), "column 'target'");
    }
}

} // namespace
} // namespace columnar
} // namespace mica
