/**
 * @file
 * Golden A/B tests: the batched analysis engine must be bit-identical
 * to the per-record reference path — same MicaProfile bytes for every
 * batch size, trace source, seed, and instruction budget.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "isa/interpreter.hh"
#include "mica/ilp.hh"
#include "mica/ppm.hh"
#include "mica/profile.hh"
#include "mica/reg_traffic.hh"
#include "mica/runner.hh"
#include "mica/strides.hh"
#include "mica/working_set.hh"
#include "trace/engine.hh"
#include "trace/synthetic.hh"
#include "workloads/registry.hh"

namespace mica
{
namespace
{

/** Bitwise profile comparison: no tolerance, no rounding. */
void
expectProfilesIdentical(const MicaProfile &a, const MicaProfile &b,
                        const std::string &what)
{
    EXPECT_EQ(a.name, b.name) << what;
    EXPECT_EQ(a.instCount, b.instCount) << what;
    EXPECT_EQ(std::memcmp(a.values.data(), b.values.data(),
                          sizeof(a.values)),
              0)
        << what;
}

MicaProfile
profileRandom(uint64_t seed, size_t engineBatch, uint64_t budget)
{
    RandomTraceParams p;
    p.numInsts = 20000;
    p.seed = seed;
    RandomTraceSource src(p);
    MicaRunnerConfig cfg;
    cfg.maxInsts = budget;
    cfg.engineBatch = engineBatch;
    return collectMicaProfile(src, "rand", cfg);
}

TEST(BatchedEquivalenceTest, RandomTracesAcrossSeedsAndBatchSizes)
{
    // Batch size 1, a non-divisor of the trace length, the default,
    // and one larger than the whole trace.
    const size_t batchSizes[] = {1, 3, 333,
                                 AnalysisEngine::kDefaultBatchSize,
                                 1 << 16};
    for (uint64_t seed : {1ull, 7ull, 42ull}) {
        const MicaProfile ref = profileRandom(seed, 0, 0);
        for (size_t bs : batchSizes) {
            const MicaProfile got = profileRandom(seed, bs, 0);
            expectProfilesIdentical(
                ref, got,
                "seed=" + std::to_string(seed) +
                    " batch=" + std::to_string(bs));
        }
    }
}

TEST(BatchedEquivalenceTest, BudgetNotAMultipleOfBatchSize)
{
    // 12345 records through 1024-record batches: the last batch is
    // partial and the budget cuts mid-batch.
    const MicaProfile ref = profileRandom(11, 0, 12345);
    const MicaProfile got =
        profileRandom(11, AnalysisEngine::kDefaultBatchSize, 12345);
    expectProfilesIdentical(ref, got, "budget=12345");
    EXPECT_EQ(got.instCount, 12345u);
}

TEST(BatchedEquivalenceTest, VectorReplayMatchesGenerator)
{
    // The borrowed-span (zero-copy) VectorTraceSource path must agree
    // with both the generator-backed batched path and the per-record
    // reference.
    RandomTraceParams p;
    p.numInsts = 20000;
    p.seed = 42;
    RandomTraceSource gen(p);
    std::vector<InstRecord> recs;
    recs.reserve(p.numInsts);
    InstRecord r;
    while (gen.next(r))
        recs.push_back(r);
    VectorTraceSource replay(std::move(recs));

    MicaRunnerConfig batched;
    const MicaProfile viaReplay =
        collectMicaProfile(replay, "rand", batched);
    const MicaProfile viaGenerator = profileRandom(42, 0, 0);
    expectProfilesIdentical(viaReplay, viaGenerator, "replay vs gen");
}

TEST(BatchedEquivalenceTest, RealKernelsMatchBitForBit)
{
    // Two registry kernels through the interpreter: the engine path
    // must not change a single profile byte.
    const char *names[] = {"SPEC2000/bzip2.source",
                           "MediaBench/epic.test2"};
    for (const char *name : names) {
        const auto *e = workloads::BenchmarkRegistry::instance().find(
            name);
        ASSERT_NE(e, nullptr) << name;
        const isa::Program prog = e->build();

        MicaRunnerConfig perRecord;
        perRecord.maxInsts = 50000;
        perRecord.engineBatch = 0;
        isa::Interpreter interpA(prog);
        const MicaProfile ref =
            collectMicaProfile(interpA, name, perRecord);

        for (size_t bs : {size_t(1), size_t(100),
                          AnalysisEngine::kDefaultBatchSize}) {
            MicaRunnerConfig batched = perRecord;
            batched.engineBatch = bs;
            isa::Interpreter interpB(prog);
            const MicaProfile got =
                collectMicaProfile(interpB, name, batched);
            expectProfilesIdentical(ref, got,
                                    std::string(name) + " batch=" +
                                        std::to_string(bs));
        }
    }
}

/**
 * A lone analyzer takes the engine's span-sized acceptBatch path —
 * the only place the analyzers' batch-kernel overrides (e.g.
 * StrideAnalyzer's two-pass load/store split) actually run in
 * production. Drive each analyzer alone, batched vs per-record.
 */
template <typename Analyzer, typename Check>
void
loneAnalyzerAB(Check &&check)
{
    RandomTraceParams p;
    p.numInsts = 20000;
    p.seed = 13;

    Analyzer perRecord;
    {
        RandomTraceSource src(p);
        AnalysisEngine eng;
        eng.add(&perRecord);
        eng.runPerRecord(src);
    }
    for (size_t bs : {size_t(1), size_t(97),
                      AnalysisEngine::kDefaultBatchSize}) {
        Analyzer batched;
        RandomTraceSource src(p);
        AnalysisEngine eng;
        eng.add(&batched);
        eng.setBatchSize(bs);
        eng.run(src);
        check(perRecord, batched);
    }
}

TEST(BatchedEquivalenceTest, LoneStrideAnalyzerBatchKernel)
{
    loneAnalyzerAB<StrideAnalyzer>([](const StrideAnalyzer &a,
                                      const StrideAnalyzer &b) {
        for (size_t c = 0; c < StrideAnalyzer::kCuts.size(); ++c) {
            EXPECT_DOUBLE_EQ(a.localLoad().prob(c), b.localLoad().prob(c));
            EXPECT_DOUBLE_EQ(a.globalLoad().prob(c),
                             b.globalLoad().prob(c));
            EXPECT_DOUBLE_EQ(a.localStore().prob(c),
                             b.localStore().prob(c));
            EXPECT_DOUBLE_EQ(a.globalStore().prob(c),
                             b.globalStore().prob(c));
        }
        EXPECT_EQ(a.localLoad().total, b.localLoad().total);
        EXPECT_EQ(a.globalStore().total, b.globalStore().total);
    });
}

TEST(BatchedEquivalenceTest, LoneWorkingSetAnalyzerBatchKernel)
{
    loneAnalyzerAB<WorkingSetAnalyzer>([](const WorkingSetAnalyzer &a,
                                          const WorkingSetAnalyzer &b) {
        EXPECT_EQ(a.dBlocks(), b.dBlocks());
        EXPECT_EQ(a.dPages(), b.dPages());
        EXPECT_EQ(a.iBlocks(), b.iBlocks());
        EXPECT_EQ(a.iPages(), b.iPages());
    });
}

TEST(BatchedEquivalenceTest, LoneIlpAnalyzerBatchKernel)
{
    loneAnalyzerAB<IlpAnalyzer>([](const IlpAnalyzer &a,
                                   const IlpAnalyzer &b) {
        for (size_t w = 0; w < a.numWindows(); ++w)
            EXPECT_DOUBLE_EQ(a.ipc(w), b.ipc(w));
    });
}

TEST(BatchedEquivalenceTest, LonePpmAnalyzerBatchKernel)
{
    loneAnalyzerAB<PpmBranchAnalyzer>([](const PpmBranchAnalyzer &a,
                                         const PpmBranchAnalyzer &b) {
        EXPECT_EQ(a.branches(), b.branches());
        EXPECT_DOUBLE_EQ(a.missRateGAg(), b.missRateGAg());
        EXPECT_DOUBLE_EQ(a.missRatePAg(), b.missRatePAg());
        EXPECT_DOUBLE_EQ(a.missRateGAs(), b.missRateGAs());
        EXPECT_DOUBLE_EQ(a.missRatePAs(), b.missRatePAs());
    });
}

TEST(BatchedEquivalenceTest, LoneRegTrafficAnalyzerBatchKernel)
{
    loneAnalyzerAB<RegTrafficAnalyzer>(
        [](const RegTrafficAnalyzer &a, const RegTrafficAnalyzer &b) {
            EXPECT_DOUBLE_EQ(a.avgInputOperands(), b.avgInputOperands());
            EXPECT_DOUBLE_EQ(a.avgDegreeOfUse(), b.avgDegreeOfUse());
            EXPECT_EQ(a.totalDeps(), b.totalDeps());
            for (size_t c = 0; c < RegTrafficAnalyzer::kDistCuts.size();
                 ++c)
                EXPECT_DOUBLE_EQ(a.depDistanceCum(c),
                                 b.depDistanceCum(c));
        });
}

TEST(BatchedEquivalenceTest, StrideOnlySubsetUsesLoneAnalyzerPath)
{
    // All requested characteristics come from one family, so the
    // engine registers exactly one analyzer and takes the
    // acceptBatch fast path end to end through the runner.
    const std::vector<size_t> strideOnly = {LocalLoadStrideEq0,
                                            GlobalLoadStrideLe512,
                                            LocalStoreStrideLe4096};
    RandomTraceParams p;
    p.numInsts = 20000;
    p.seed = 29;

    RandomTraceSource a(p);
    MicaRunnerConfig perRecord;
    perRecord.engineBatch = 0;
    const MicaProfile ref =
        collectMicaProfileSubset(a, "rand", strideOnly, perRecord);

    RandomTraceSource b(p);
    MicaRunnerConfig batched;
    const MicaProfile got =
        collectMicaProfileSubset(b, "rand", strideOnly, batched);
    expectProfilesIdentical(ref, got, "stride-only subset");
}

TEST(BatchedEquivalenceTest, SubsetCollectionMatches)
{
    const std::vector<size_t> key = {PctLoads, AvgInputOperands,
                                     RegDepLe8, LocalLoadStrideLe64,
                                     GlobalLoadStrideLe512,
                                     LocalStoreStrideLe4096, DWorkSet4K,
                                     Ilp256};
    RandomTraceParams p;
    p.numInsts = 20000;
    p.seed = 5;

    RandomTraceSource a(p);
    MicaRunnerConfig perRecord;
    perRecord.engineBatch = 0;
    const MicaProfile ref =
        collectMicaProfileSubset(a, "rand", key, perRecord);

    RandomTraceSource b(p);
    MicaRunnerConfig batched;
    const MicaProfile got =
        collectMicaProfileSubset(b, "rand", key, batched);
    expectProfilesIdentical(ref, got, "subset");
}

} // namespace
} // namespace mica
