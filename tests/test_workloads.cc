/**
 * @file
 * Tests for the workload substrate: the 122-entry registry, kernel
 * termination and determinism (parameterized over every benchmark),
 * and per-family behavioral signatures.
 */

#include <gtest/gtest.h>

#include "isa/interpreter.hh"
#include "mica/runner.hh"
#include "workloads/kernel_lib.hh"
#include "workloads/registry.hh"

namespace mica::workloads
{
namespace
{

namespace k = kernels;

/** Run a program to completion under a hard cap. */
uint64_t
runToCompletion(const isa::Program &prog, uint64_t cap = 8000000)
{
    isa::Interpreter in(prog);
    InstRecord r;
    uint64_t n = 0;
    while (n < cap && in.next(r))
        ++n;
    EXPECT_TRUE(in.halted()) << prog.name << " did not halt";
    return n;
}

TEST(RegistryTest, HasExactly122Benchmarks)
{
    EXPECT_EQ(BenchmarkRegistry::instance().size(), 122u);
}

TEST(RegistryTest, HasTheSixPaperSuites)
{
    const auto suites = BenchmarkRegistry::instance().suites();
    ASSERT_EQ(suites.size(), 6u);
    EXPECT_EQ(suites[0], "BioInfoMark");
    EXPECT_EQ(suites[1], "BioMetricsWorkload");
    EXPECT_EQ(suites[2], "CommBench");
    EXPECT_EQ(suites[3], "MediaBench");
    EXPECT_EQ(suites[4], "MiBench");
    EXPECT_EQ(suites[5], "SPEC2000");
}

TEST(RegistryTest, SuiteSizesMatchTableI)
{
    const auto &reg = BenchmarkRegistry::instance();
    EXPECT_EQ(reg.bySuite("BioInfoMark").size(), 12u);
    EXPECT_EQ(reg.bySuite("BioMetricsWorkload").size(), 8u);
    EXPECT_EQ(reg.bySuite("CommBench").size(), 12u);
    EXPECT_EQ(reg.bySuite("MediaBench").size(), 12u);
    EXPECT_EQ(reg.bySuite("MiBench").size(), 30u);
    EXPECT_EQ(reg.bySuite("SPEC2000").size(), 48u);
}

TEST(RegistryTest, NamesAreUniqueAndWellFormed)
{
    const auto &reg = BenchmarkRegistry::instance();
    std::set<std::string> names;
    for (const auto &e : reg.all()) {
        EXPECT_FALSE(e.info.suite.empty());
        EXPECT_FALSE(e.info.program.empty());
        EXPECT_FALSE(e.info.input.empty());
        EXPECT_TRUE(names.insert(e.info.fullName()).second)
            << "duplicate " << e.info.fullName();
    }
    EXPECT_EQ(names.size(), 122u);
}

TEST(RegistryTest, FindLocatesKnownBenchmarks)
{
    const auto &reg = BenchmarkRegistry::instance();
    ASSERT_NE(reg.find("SPEC2000/bzip2.graphic"), nullptr);
    ASSERT_NE(reg.find("BioInfoMark/blast.protein"), nullptr);
    EXPECT_EQ(reg.find("SPEC2000/nope.ref"), nullptr);
    EXPECT_EQ(reg.find("SPEC2000/bzip2.graphic")->info.paperICountM,
              157003u);
}

TEST(RegistryTest, PaperInstructionCountsArePositive)
{
    for (const auto &e : BenchmarkRegistry::instance().all())
        EXPECT_GT(e.info.paperICountM, 0u) << e.info.fullName();
}

// ----------------------------------------------------------------------
// Every benchmark kernel terminates, is deterministic, and is sized
// inside the harness envelope (parameterized over all 122 entries).
// ----------------------------------------------------------------------

class KernelExecutionTest : public ::testing::TestWithParam<size_t>
{};

TEST_P(KernelExecutionTest, BuildsAndTerminatesWithinBudget)
{
    const auto &e = BenchmarkRegistry::instance().all()[GetParam()];
    const isa::Program prog = e.build();
    EXPECT_FALSE(prog.code.empty());
    const uint64_t n = runToCompletion(prog);
    EXPECT_GE(n, 50000u) << e.info.fullName() << " too short";
    EXPECT_LE(n, 4000000u) << e.info.fullName() << " too long";
}

TEST_P(KernelExecutionTest, RebuildIsDeterministic)
{
    const auto &e = BenchmarkRegistry::instance().all()[GetParam()];
    const isa::Program p1 = e.build();
    const isa::Program p2 = e.build();
    ASSERT_EQ(p1.code.size(), p2.code.size());
    for (size_t i = 0; i < p1.code.size(); ++i) {
        EXPECT_EQ(p1.code[i].op, p2.code[i].op);
        EXPECT_EQ(p1.code[i].imm, p2.code[i].imm);
    }
    ASSERT_EQ(p1.segments.size(), p2.segments.size());
    for (size_t s = 0; s < p1.segments.size(); ++s)
        EXPECT_EQ(p1.segments[s].bytes, p2.segments[s].bytes);
}

std::string
kernelTestName(const ::testing::TestParamInfo<size_t> &info)
{
    std::string n = BenchmarkRegistry::instance()
                        .all()[info.param]
                        .info.fullName();
    for (char &c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return n;
}

INSTANTIATE_TEST_SUITE_P(All122, KernelExecutionTest,
                         ::testing::Range<size_t>(0, 122),
                         kernelTestName);

// ----------------------------------------------------------------------
// Family signatures: kernels land in the right region of the
// characteristic space.
// ----------------------------------------------------------------------

MicaProfile
profileOf(const isa::Program &prog, uint64_t budget = 120000)
{
    isa::Interpreter in(prog);
    MicaRunnerConfig cfg;
    cfg.maxInsts = budget;
    return collectMicaProfile(in, prog.name, cfg);
}

TEST(KernelSignatureTest, FpKernelsAreFpDominated)
{
    const auto p = profileOf(k::denseMatMul({.n = 24, .iters = 1}));
    EXPECT_GT(p[PctFpOps], 20.0);
    EXPECT_LT(p[PctIntMul] + 0.0, 10.0);
    const auto s = profileOf(k::stencilSweep({}));
    EXPECT_GT(s[PctFpOps], 15.0);
}

TEST(KernelSignatureTest, IntKernelsHaveNoFp)
{
    for (const auto &p :
         {profileOf(k::crc32({})), profileOf(k::blockCipher({})),
          profileOf(k::bwtSort({.blockBytes = 512}))}) {
        EXPECT_DOUBLE_EQ(p[PctFpOps], 0.0);
    }
}

TEST(KernelSignatureTest, PointerChaseHasLowIlpAndLargeWorkingSet)
{
    const auto chase = profileOf(
        k::pointerChase({.nodes = 1 << 14, .iters = 1, .steps = 9000}));
    const auto dense = profileOf(k::matVec({}));
    EXPECT_LT(chase[Ilp256], dense[Ilp256]);
    // Each chase step touches a fresh 64-byte node: pages >> stencil.
    const auto small = profileOf(k::crc32({}));
    EXPECT_GT(chase[DWorkSet4K], 4 * small[DWorkSet4K]);
}

TEST(KernelSignatureTest, KmerScanTouchesManyPages)
{
    const auto blast = profileOf(
        k::kmerScan({.dbBytes = 8000, .tableBytes = 1 << 22}));
    const auto cipher = profileOf(k::blockCipher({}));
    EXPECT_GT(blast[DWorkSet4K], 10 * cipher[DWorkSet4K]);
}

TEST(KernelSignatureTest, SerialCodecSignature)
{
    // ADPCM's defining traits: branch-dense control, a tiny data
    // working set, and byte-granular output. (Its register dataflow is
    // parallel under the idealized ILP model, which ignores control
    // dependences -- the serialization is architectural, not dataflow.)
    const auto p = profileOf(k::adpcmCodec({.samples = 4000}));
    EXPECT_GT(p[PctControl], 12.0);
    EXPECT_LT(p[DWorkSet4K], 24.0);
}

TEST(KernelSignatureTest, TableRecurrenceLimitsIlp)
{
    // CRC's crc -> table -> crc loop is a true register-dataflow cycle,
    // so its inherent ILP sits far below an unrolled dense kernel.
    const auto ser = profileOf(k::crc32({}));
    const auto wide = profileOf(k::matVec({}));
    EXPECT_LT(ser[Ilp256], 4.0);
    EXPECT_GT(wide[Ilp256], 2.0 * ser[Ilp256]);
}

TEST(KernelSignatureTest, StreamingKernelsHaveSmallLocalStrides)
{
    const auto p = profileOf(k::imageNormalize({}));
    EXPECT_GT(p[LocalLoadStrideLe8], 0.9);
    EXPECT_GT(p[GlobalLoadStrideLe8], 0.6);
}

TEST(KernelSignatureTest, RandomBranchKernelsAreHardToPredict)
{
    const auto sorter = profileOf(k::quickSort({.elems = 1024}));
    const auto streamer = profileOf(k::imageNormalize({}));
    EXPECT_GT(sorter[PpmGAg], streamer[PpmGAg]);
    EXPECT_GT(sorter[PpmGAg], 0.05);
    EXPECT_LT(streamer[PpmPAs], 0.05);
}

TEST(KernelSignatureTest, DctIsMultiplyHeavy)
{
    const auto p = profileOf(k::dct8x8({.blocks = 16}));
    EXPECT_GT(p[PctIntMul], 5.0);
}

TEST(KernelSignatureTest, InterpreterGrowsInstructionWorkingSet)
{
    const auto small = profileOf(k::interpDispatch(
        {.codeLen = 1024, .numOps = 8, .handlerBody = 4}));
    const auto large = profileOf(k::interpDispatch(
        {.codeLen = 1024, .numOps = 96, .handlerBody = 12}));
    EXPECT_GT(large[IWorkSet32B], 2 * small[IWorkSet32B]);
}

TEST(KernelSignatureTest, Lz77EntropyControlsBranchBehavior)
{
    const auto low = profileOf(
        k::lz77({.bufBytes = 6 << 10, .alphabet = 4, .seed = 1}));
    const auto high = profileOf(
        k::lz77({.bufBytes = 6 << 10, .alphabet = 0, .seed = 1}));
    // Compressible input spends more time in the match loop; the two
    // inputs must be measurably different benchmarks.
    EXPECT_NE(low[PctLoads], high[PctLoads]);
    EXPECT_NE(low[PpmGAg], high[PpmGAg]);
}

TEST(KernelSignatureTest, HostHelpersAreDeterministic)
{
    EXPECT_EQ(k::randomBytes(64, 16, 9), k::randomBytes(64, 16, 9));
    EXPECT_NE(k::randomBytes(64, 16, 9), k::randomBytes(64, 16, 10));
    EXPECT_EQ(k::randomDoubles(8, 0, 1, 3), k::randomDoubles(8, 0, 1, 3));
}

TEST(KernelSignatureTest, RandomCycleIsASingleCycle)
{
    const auto perm = k::randomCycle(257, 5);
    std::vector<bool> seen(perm.size(), false);
    size_t cur = 0, steps = 0;
    do {
        EXPECT_FALSE(seen[cur]);
        seen[cur] = true;
        cur = perm[cur];
        ++steps;
    } while (cur != 0 && steps <= perm.size());
    EXPECT_EQ(steps, perm.size());      // full cycle returns to start
}

TEST(KernelSignatureTest, AlphabetBoundsRandomBytes)
{
    for (uint8_t b : k::randomBytes(4096, 20, 77))
        EXPECT_LT(b, 20);
}

} // namespace
} // namespace mica::workloads
