/**
 * @file
 * Tests for the statistics substrate: matrix, descriptive statistics,
 * distances, PCA, k-means + BIC, and ROC analysis.
 */

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "pipeline/thread_pool.hh"
#include "stats/descriptive.hh"
#include "stats/distance.hh"
#include "stats/kmeans.hh"
#include "stats/matrix.hh"
#include "stats/pca.hh"
#include "stats/rng.hh"
#include "stats/roc.hh"

namespace mica
{
namespace
{

// ----------------------------------------------------------------------
// Matrix.
// ----------------------------------------------------------------------

TEST(MatrixTest, AppendRowFixesColumnCount)
{
    Matrix m;
    m.appendRow({1, 2, 3});
    EXPECT_EQ(m.rows(), 1u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_THROW(m.appendRow({1, 2}), std::invalid_argument);
}

TEST(MatrixTest, ElementAccessRowMajor)
{
    Matrix m(2, 3);
    m.at(1, 2) = 7.5;
    EXPECT_DOUBLE_EQ(m(1, 2), 7.5);
    EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, RowAndColVectors)
{
    Matrix m;
    m.appendRow({1, 2});
    m.appendRow({3, 4});
    EXPECT_EQ(m.rowVec(1), (std::vector<double>{3, 4}));
    EXPECT_EQ(m.colVec(0), (std::vector<double>{1, 3}));
}

TEST(MatrixTest, SelectColsReordersAndCopiesNames)
{
    Matrix m;
    m.appendRow({1, 2, 3});
    m.appendRow({4, 5, 6});
    m.colNames = {"a", "b", "c"};
    m.rowNames = {"r0", "r1"};
    const Matrix s = m.selectCols({2, 0});
    EXPECT_EQ(s.cols(), 2u);
    EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(s(1, 1), 4.0);
    EXPECT_EQ(s.colNames, (std::vector<std::string>{"c", "a"}));
    EXPECT_EQ(s.rowNames, m.rowNames);
}

// ----------------------------------------------------------------------
// Descriptive statistics.
// ----------------------------------------------------------------------

TEST(DescriptiveTest, MeanAndStddevClosedForm)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(stddev({5, 5, 5}), 0.0);
}

TEST(DescriptiveTest, PearsonPerfectAndInverse)
{
    EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
    EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(DescriptiveTest, PearsonConstantInputGivesZero)
{
    EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(DescriptiveTest, PearsonIsSymmetric)
{
    Rng rng(4);
    std::vector<double> a(50), b(50);
    for (size_t i = 0; i < a.size(); ++i) {
        a[i] = rng.gauss();
        b[i] = rng.gauss();
    }
    EXPECT_NEAR(pearson(a, b), pearson(b, a), 1e-14);
    EXPECT_LE(std::fabs(pearson(a, b)), 1.0);
}

TEST(DescriptiveTest, ZscoreNormalizesEveryColumn)
{
    Matrix m;
    Rng rng(8);
    for (int r = 0; r < 40; ++r)
        m.appendRow({rng.unit() * 100, rng.gauss() * 3 + 7, 5.0});
    zscoreNormalize(m);
    for (size_t c = 0; c < 2; ++c) {
        EXPECT_NEAR(mean(m.colVec(c)), 0.0, 1e-10);
        EXPECT_NEAR(stddev(m.colVec(c)), 1.0, 1e-10);
    }
    // Constant column maps to zero, not NaN.
    for (double v : m.colVec(2))
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(DescriptiveTest, MinmaxMapsToUnitInterval)
{
    Matrix m;
    m.appendRow({10, 3});
    m.appendRow({20, 3});
    m.appendRow({15, 3});
    minmaxNormalize(m);
    EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(m(2, 0), 0.5);
    EXPECT_DOUBLE_EQ(m(0, 1), 0.5);     // constant column -> middle
}

TEST(DescriptiveTest, CorrelationMatrixHasUnitDiagonal)
{
    Matrix m;
    Rng rng(12);
    for (int r = 0; r < 60; ++r) {
        const double x = rng.gauss();
        m.appendRow({x, -x, rng.gauss()});
    }
    const Matrix c = correlationMatrix(m);
    EXPECT_EQ(c.rows(), 3u);
    EXPECT_EQ(c.cols(), 3u);
    for (size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(c(i, i), 1.0, 1e-12);
    EXPECT_NEAR(c(0, 1), -1.0, 1e-12);
    EXPECT_NEAR(c(0, 2), c(2, 0), 1e-14);
    EXPECT_LT(std::fabs(c(0, 2)), 0.4);
}

// ----------------------------------------------------------------------
// Distances.
// ----------------------------------------------------------------------

TEST(DistanceTest, ClosedFormPairs)
{
    Matrix m;
    m.appendRow({0, 0});
    m.appendRow({3, 4});
    m.appendRow({0, 1});
    const DistanceMatrix d(m);
    EXPECT_EQ(d.numItems(), 3u);
    EXPECT_EQ(d.numPairs(), 3u);
    EXPECT_DOUBLE_EQ(d.at(0, 1), 5.0);
    EXPECT_DOUBLE_EQ(d.at(0, 2), 1.0);
    EXPECT_DOUBLE_EQ(d.at(1, 2), std::sqrt(9.0 + 9.0));
}

TEST(DistanceTest, SymmetricAndZeroDiagonal)
{
    Matrix m;
    Rng rng(3);
    for (int r = 0; r < 10; ++r)
        m.appendRow({rng.gauss(), rng.gauss(), rng.gauss()});
    const DistanceMatrix d(m);
    for (size_t i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(d.at(i, i), 0.0);
        for (size_t j = 0; j < 10; ++j)
            EXPECT_DOUBLE_EQ(d.at(i, j), d.at(j, i));
    }
}

TEST(DistanceTest, TriangleInequalityHolds)
{
    Matrix m;
    Rng rng(6);
    for (int r = 0; r < 12; ++r)
        m.appendRow({rng.gauss(), rng.gauss()});
    const DistanceMatrix d(m);
    for (size_t i = 0; i < 12; ++i)
        for (size_t j = 0; j < 12; ++j)
            for (size_t k = 0; k < 12; ++k)
                EXPECT_LE(d.at(i, j), d.at(i, k) + d.at(k, j) + 1e-9);
}

TEST(DistanceTest, PairIndexRoundTrip)
{
    Matrix m(7, 2);
    const DistanceMatrix d(m);
    size_t idx = 0;
    for (size_t i = 0; i < 7; ++i) {
        for (size_t j = i + 1; j < 7; ++j, ++idx) {
            EXPECT_EQ(d.pairIndex(i, j), idx);
            const auto [pi, pj] = d.pairOf(idx);
            EXPECT_EQ(pi, i);
            EXPECT_EQ(pj, j);
        }
    }
}

TEST(DistanceTest, SubsetColumnsMatchManualSelection)
{
    Matrix m;
    Rng rng(9);
    for (int r = 0; r < 8; ++r)
        m.appendRow({rng.gauss(), rng.gauss(), rng.gauss(),
                     rng.gauss()});
    const DistanceMatrix full(m.selectCols({1, 3}));
    const DistanceMatrix sub(m, {1, 3});
    ASSERT_EQ(full.numPairs(), sub.numPairs());
    for (size_t i = 0; i < full.numPairs(); ++i)
        EXPECT_NEAR(full.condensed()[i], sub.condensed()[i], 1e-12);
}

TEST(DistanceTest, MaxDistanceMatchesScan)
{
    Matrix m;
    m.appendRow({0.0});
    m.appendRow({10.0});
    m.appendRow({4.0});
    const DistanceMatrix d(m);
    EXPECT_DOUBLE_EQ(d.maxDistance(), 10.0);
}

TEST(DistanceTest, PairOfRejectsOutOfRangeIndices)
{
    Matrix m(3, 2);
    const DistanceMatrix d(m);
    ASSERT_EQ(d.numPairs(), 3u);
    EXPECT_EQ(d.pairOf(2), (std::pair<size_t, size_t>{1, 2}));
    // One past the condensed triangle used to underflow the row walk.
    EXPECT_THROW(d.pairOf(3), std::out_of_range);
    EXPECT_THROW(d.pairOf(static_cast<size_t>(-1)), std::out_of_range);
}

TEST(DistanceTest, DegenerateMatricesHaveNoPairs)
{
    const DistanceMatrix empty;
    EXPECT_EQ(empty.numItems(), 0u);
    EXPECT_EQ(empty.numPairs(), 0u);
    EXPECT_DOUBLE_EQ(empty.maxDistance(), 0.0);
    EXPECT_THROW(empty.pairOf(0), std::out_of_range);

    Matrix one;
    one.appendRow({1.0, 2.0});
    const DistanceMatrix single(one);
    EXPECT_EQ(single.numItems(), 1u);
    EXPECT_EQ(single.numPairs(), 0u);
    EXPECT_DOUBLE_EQ(single.maxDistance(), 0.0);
    EXPECT_DOUBLE_EQ(single.at(0, 0), 0.0);
    EXPECT_THROW(single.pairOf(0), std::out_of_range);
}

TEST(DistanceTest, ParallelConstructionIsBitIdentical)
{
    Matrix m;
    Rng rng(21);
    for (int r = 0; r < 70; ++r)
        m.appendRow({rng.gauss(), rng.gauss(), rng.gauss(),
                     rng.gauss(), rng.gauss()});
    pipeline::ThreadPool pool(8);
    const DistanceMatrix serial(m);
    const DistanceMatrix parallel(m, &pool);
    EXPECT_EQ(serial.condensed(), parallel.condensed());

    const std::vector<size_t> cols = {0, 2, 4};
    const DistanceMatrix subSerial(m, cols);
    const DistanceMatrix subParallel(m, cols, &pool);
    EXPECT_EQ(subSerial.condensed(), subParallel.condensed());
}

// ----------------------------------------------------------------------
// PCA.
// ----------------------------------------------------------------------

TEST(PcaTest, RecoversDominantDirection)
{
    // Points along y = 2x with small noise: PC1 ~ (1, 2)/sqrt(5).
    Matrix m;
    Rng rng(14);
    for (int i = 0; i < 200; ++i) {
        const double t = rng.gauss();
        m.appendRow({t + 0.01 * rng.gauss(), 2 * t + 0.01 * rng.gauss()});
    }
    const PcaResult pca = pcaFit(m);
    ASSERT_EQ(pca.eigenvalues.size(), 2u);
    EXPECT_GT(pca.eigenvalues[0], pca.eigenvalues[1]);
    const double ratio = std::fabs(pca.components(0, 1) /
                                   pca.components(0, 0));
    EXPECT_NEAR(ratio, 2.0, 0.05);
    EXPECT_GT(pca.varianceExplained(1), 0.99);
}

TEST(PcaTest, EigenvaluesSumToTotalVariance)
{
    Matrix m;
    Rng rng(15);
    for (int i = 0; i < 100; ++i)
        m.appendRow({rng.gauss() * 2, rng.gauss(), rng.gauss() * 0.5});
    const PcaResult pca = pcaFit(m);
    double evSum = 0, var = 0;
    for (double e : pca.eigenvalues)
        evSum += e;
    for (size_t c = 0; c < 3; ++c) {
        const double s = stddev(m.colVec(c));
        var += s * s;
    }
    EXPECT_NEAR(evSum, var, var * 0.02);
    EXPECT_NEAR(pca.varianceExplained(3), 1.0, 1e-9);
}

TEST(PcaTest, ProjectionPreservesPairwiseStructure)
{
    Matrix m;
    Rng rng(16);
    for (int i = 0; i < 30; ++i) {
        const double t = rng.gauss();
        m.appendRow({t, 2 * t, -t});
    }
    const PcaResult pca = pcaFit(m);
    const Matrix p = pca.project(m, 1);
    EXPECT_EQ(p.rows(), 30u);
    EXPECT_EQ(p.cols(), 1u);
    // Distances in 1-D PC space match full-space distances (rank 1).
    const DistanceMatrix dFull(m), dProj(p);
    EXPECT_GT(pearson(dFull.condensed(), dProj.condensed()), 0.999);
}

// ----------------------------------------------------------------------
// K-means and BIC.
// ----------------------------------------------------------------------

Matrix
threeBlobs(int perBlob, uint64_t seed)
{
    Matrix m;
    Rng rng(seed);
    const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
    for (int b = 0; b < 3; ++b) {
        for (int i = 0; i < perBlob; ++i) {
            m.appendRow({centers[b][0] + 0.5 * rng.gauss(),
                         centers[b][1] + 0.5 * rng.gauss()});
        }
    }
    return m;
}

TEST(KMeansTest, RecoversSeparableBlobs)
{
    const Matrix m = threeBlobs(30, 19);
    KMeansParams params;
    params.k = 3;
    params.seed = 7;
    const KMeansResult res = kMeansFit(m, params);
    EXPECT_EQ(res.k, 3u);
    ASSERT_EQ(res.assignment.size(), 90u);
    // All members of a ground-truth blob share one label.
    for (int b = 0; b < 3; ++b) {
        const int label = res.assignment[b * 30];
        for (int i = 0; i < 30; ++i)
            EXPECT_EQ(res.assignment[b * 30 + i], label);
    }
    EXPECT_LT(res.inertia, 90 * 1.0);
}

TEST(KMeansTest, DeterministicForFixedSeed)
{
    const Matrix m = threeBlobs(20, 23);
    KMeansParams params;
    params.k = 4;
    params.seed = 11;
    const KMeansResult a = kMeansFit(m, params);
    const KMeansResult b = kMeansFit(m, params);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, MoreClustersNeverIncreaseInertia)
{
    const Matrix m = threeBlobs(20, 29);
    double last = 1e300;
    for (size_t k = 1; k <= 6; ++k) {
        KMeansParams params;
        params.k = k;
        params.seed = 3;
        params.restarts = 5;
        const KMeansResult res = kMeansFit(m, params);
        EXPECT_LE(res.inertia, last * 1.001);
        last = res.inertia;
    }
}

TEST(KMeansTest, KOneCentroidIsTheMean)
{
    Matrix m;
    m.appendRow({1, 1});
    m.appendRow({3, 5});
    KMeansParams params;
    params.k = 1;
    const KMeansResult res = kMeansFit(m, params);
    EXPECT_DOUBLE_EQ(res.centroids(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(res.centroids(0, 1), 3.0);
}

TEST(KMeansTest, MembersListMatchesAssignment)
{
    const Matrix m = threeBlobs(10, 31);
    KMeansParams params;
    params.k = 3;
    const KMeansResult res = kMeansFit(m, params);
    size_t total = 0;
    for (size_t c = 0; c < 3; ++c) {
        for (size_t r : res.members(c))
            EXPECT_EQ(res.assignment[r], static_cast<int>(c));
        total += res.members(c).size();
    }
    EXPECT_EQ(total, m.rows());
}

TEST(KMeansTest, SeedingFallbackAvoidsDuplicatingARow)
{
    // Squared distances of 1e308 and inf make the D^2 total overflow to
    // inf, so the sampling scan's running difference never reaches
    // zero and the fallback decides the pick. The seed code silently
    // kept row 0 — duplicating the first centroid whenever row 0
    // seeded it — instead of taking a row that carries weight.
    Matrix m;
    m.appendRow({0.0});
    m.appendRow({1e154});
    m.appendRow({3e154});
    bool checked = false;
    for (uint64_t seed = 0; seed < 64 && !checked; ++seed) {
        Rng probe(seed);
        if (probe.below(3) != 0)
            continue;   // want the first centroid on row 0
        Rng rng(seed);
        const Matrix cent = kMeansSeedCentroids(m, 2, rng);
        EXPECT_DOUBLE_EQ(cent(0, 0), 0.0);
        // The fallback must land on the last weighted row, never back
        // on the row that is already centroid 0.
        EXPECT_DOUBLE_EQ(cent(1, 0), 3e154);
        checked = true;
    }
    EXPECT_TRUE(checked);
}

TEST(KMeansTest, EmptyClustersReseedOntoDistinctPoints)
{
    // Three empty clusters in one update step: the farthest point must
    // be handed out once, then recomputed excluding it — the seed code
    // gave every empty cluster the same point, leaving duplicated
    // centroids that never win a member again.
    Matrix data;
    data.appendRow({0.0, 0.0});
    data.appendRow({10.0, 0.0});
    data.appendRow({0.0, 10.0});
    data.appendRow({20.0, 20.0});
    data.appendRow({21.0, 21.0});
    Matrix cent(4, 2, 0.0);    // cluster 0 at the origin, rest empty
    const std::vector<int> assignment = {0, 0, 0, 0, 0};
    const std::vector<size_t> counts = {5, 0, 0, 0};
    kMeansReseedEmpty(data, assignment, counts, cent);
    // Farthest first: (21,21), then (20,20), then the first of the two
    // equidistant points (10,0).
    EXPECT_DOUBLE_EQ(cent(1, 0), 21.0);
    EXPECT_DOUBLE_EQ(cent(1, 1), 21.0);
    EXPECT_DOUBLE_EQ(cent(2, 0), 20.0);
    EXPECT_DOUBLE_EQ(cent(2, 1), 20.0);
    EXPECT_DOUBLE_EQ(cent(3, 0), 10.0);
    EXPECT_DOUBLE_EQ(cent(3, 1), 0.0);
}

TEST(KMeansTest, ReseedStopsWhenPointsRunOut)
{
    Matrix data;
    data.appendRow({1.0});
    data.appendRow({2.0});
    Matrix cent(4, 1, 7.0);
    const std::vector<int> assignment = {0, 0};
    const std::vector<size_t> counts = {2, 0, 0, 0};
    kMeansReseedEmpty(data, assignment, counts, cent);
    // Two re-seeds possible, the third empty cluster is left alone.
    EXPECT_DOUBLE_EQ(cent(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(cent(2, 0), 2.0);
    EXPECT_DOUBLE_EQ(cent(3, 0), 7.0);
}

TEST(KMeansTest, ConvergedFitsHaveNoEmptyClusters)
{
    // With at least k distinct rows, distinct re-seed points guarantee
    // a converged fit fills every cluster, whatever the RNG stream.
    const Matrix m = threeBlobs(8, 77);
    for (uint64_t stream = 0; stream < 40; ++stream) {
        const KMeansResult res = kMeansRunOnce(m, 6, stream, 100);
        for (size_t c = 0; c < res.k; ++c)
            EXPECT_FALSE(res.members(c).empty())
                << "stream " << stream << " cluster " << c;
    }
}

TEST(KMeansTest, MultiRestartPoolInvariantAndReproducible)
{
    const Matrix m = threeBlobs(20, 83);
    KMeansParams params;
    params.k = 4;
    params.seed = 17;
    params.restarts = 7;
    pipeline::ThreadPool pool(8);
    const KMeansResult serial = kMeansFit(m, params);
    const KMeansResult parallel = kMeansFit(m, params, &pool);
    const KMeansResult again = kMeansFit(m, params, &pool);
    EXPECT_EQ(serial.assignment, parallel.assignment);
    EXPECT_DOUBLE_EQ(serial.inertia, parallel.inertia);
    for (size_t c = 0; c < serial.k; ++c) {
        for (size_t j = 0; j < m.cols(); ++j) {
            EXPECT_DOUBLE_EQ(serial.centroids(c, j),
                             parallel.centroids(c, j));
        }
    }
    EXPECT_EQ(parallel.assignment, again.assignment);
    EXPECT_DOUBLE_EQ(parallel.inertia, again.inertia);
}

TEST(KMeansTest, RestartStreamsAreIndependentOfRestartCount)
{
    // Restart r draws from childSeed(seed, r), so prepending restarts
    // never changes what an existing restart computes — the best of 3
    // can only improve (or stay) when extended to 6.
    const Matrix m = threeBlobs(12, 89);
    KMeansParams p3;
    p3.k = 5;
    p3.seed = 23;
    p3.restarts = 3;
    KMeansParams p6 = p3;
    p6.restarts = 6;
    EXPECT_LE(kMeansFit(m, p6).inertia, kMeansFit(m, p3).inertia);
}

TEST(BicTest, EmptyDatasetGivesEmptySweep)
{
    // A zero-row dataset (e.g. a suite filter matching nothing) must
    // come back as an empty sweep with chosenK = 0, never hand callers
    // an index into an empty fits vector.
    const Matrix empty;
    const BicSweepResult sweep = bicSweep(empty, 10, 1);
    EXPECT_EQ(sweep.chosenK, 0u);
    EXPECT_TRUE(sweep.bicByK.empty());
    EXPECT_TRUE(sweep.fits.empty());

    const KMeansResult none = kMeansRunOnce(empty, 3, 1, 100);
    EXPECT_EQ(none.k, 0u);
    EXPECT_TRUE(none.assignment.empty());
}

TEST(BicTest, SweepPoolInvariant)
{
    const Matrix m = threeBlobs(15, 91);
    pipeline::ThreadPool pool(8);
    const BicSweepResult serial = bicSweep(m, 7, 13);
    const BicSweepResult parallel =
        bicSweep(m, 7, 13, 0.9, 0.0, &pool);
    EXPECT_EQ(serial.chosenK, parallel.chosenK);
    EXPECT_EQ(serial.bicByK, parallel.bicByK);
    ASSERT_EQ(serial.fits.size(), parallel.fits.size());
    for (size_t k = 0; k < serial.fits.size(); ++k)
        EXPECT_EQ(serial.fits[k].assignment, parallel.fits[k].assignment);
}

TEST(BicTest, PrefersTheTrueClusterCount)
{
    const Matrix m = threeBlobs(40, 37);
    const BicSweepResult sweep = bicSweep(m, 8, 5);
    EXPECT_EQ(sweep.bicByK.size(), 8u);
    // The 90%-of-max rule should land on K = 3 for clean blobs.
    EXPECT_EQ(sweep.chosenK, 3u);
}

TEST(BicTest, SweepIsDeterministic)
{
    const Matrix m = threeBlobs(15, 41);
    const BicSweepResult a = bicSweep(m, 6, 9);
    const BicSweepResult b = bicSweep(m, 6, 9);
    EXPECT_EQ(a.chosenK, b.chosenK);
    EXPECT_EQ(a.bicByK, b.bicByK);
}

// ----------------------------------------------------------------------
// ROC.
// ----------------------------------------------------------------------

TEST(RocTest, PerfectSeparationGivesAucOne)
{
    std::vector<bool> labels;
    std::vector<double> scores;
    for (int i = 0; i < 50; ++i) {
        labels.push_back(false);
        scores.push_back(i * 0.01);             // negatives low
        labels.push_back(true);
        scores.push_back(10.0 + i * 0.01);      // positives high
    }
    const RocCurve roc = rocCurve(labels, scores);
    EXPECT_NEAR(roc.auc, 1.0, 1e-9);
}

TEST(RocTest, InvertedScoresGiveAucZero)
{
    std::vector<bool> labels;
    std::vector<double> scores;
    for (int i = 0; i < 50; ++i) {
        labels.push_back(false);
        scores.push_back(10.0 + i * 0.01);
        labels.push_back(true);
        scores.push_back(i * 0.01);
    }
    const RocCurve roc = rocCurve(labels, scores);
    EXPECT_NEAR(roc.auc, 0.0, 1e-9);
}

TEST(RocTest, RandomScoresGiveAucNearHalf)
{
    Rng rng(43);
    std::vector<bool> labels;
    std::vector<double> scores;
    for (int i = 0; i < 4000; ++i) {
        labels.push_back(rng.chance(0.5));
        scores.push_back(rng.unit());
    }
    const RocCurve roc = rocCurve(labels, scores);
    EXPECT_NEAR(roc.auc, 0.5, 0.05);
}

TEST(RocTest, CurveEndsAtCorners)
{
    Rng rng(47);
    std::vector<bool> labels;
    std::vector<double> scores;
    for (int i = 0; i < 200; ++i) {
        labels.push_back(rng.chance(0.4));
        scores.push_back(rng.gauss());
    }
    const RocCurve roc = rocCurve(labels, scores);
    ASSERT_GE(roc.points.size(), 2u);
    // Sweep includes a threshold below all scores (sens = 1, spec = 0)
    // and above all scores (sens = 0, spec = 1).
    EXPECT_NEAR(roc.points.front().sensitivity, 0.0, 1e-9);
    EXPECT_NEAR(roc.points.front().specificity, 1.0, 1e-9);
    EXPECT_NEAR(roc.points.back().sensitivity, 1.0, 1e-9);
    EXPECT_NEAR(roc.points.back().specificity, 0.0, 1e-9);
}

TEST(RocTest, FprIsMonotoneAlongTheCurve)
{
    Rng rng(53);
    std::vector<bool> labels;
    std::vector<double> scores;
    for (int i = 0; i < 500; ++i) {
        labels.push_back(rng.chance(0.3));
        scores.push_back(rng.gauss() + (labels.back() ? 0.5 : 0.0));
    }
    const RocCurve roc = rocCurve(labels, scores);
    for (size_t i = 1; i < roc.points.size(); ++i)
        EXPECT_GE(roc.points[i].fpr() + 1e-12, roc.points[i - 1].fpr());
    EXPECT_GT(roc.auc, 0.5);
}

TEST(RocTest, LabelsFromDistancesUsesFractionOfMax)
{
    const std::vector<double> dist = {0.0, 1.0, 4.0, 10.0};
    const auto labels = labelsFromDistances(dist, 0.2);
    // Threshold = 2.0: only 4.0 and 10.0 are "large".
    EXPECT_EQ(labels,
              (std::vector<bool>{false, false, true, true}));
}

TEST(RocTest, BestPointMaximizesYoudenIndex)
{
    std::vector<bool> labels = {false, false, true, true};
    std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
    const RocCurve roc = rocCurve(labels, scores);
    const RocPoint &bp = roc.bestPoint();
    EXPECT_NEAR(bp.sensitivity + bp.specificity, 2.0, 1e-9);
}

} // namespace
} // namespace mica
