/**
 * @file
 * Tests for the service layer: address parsing, request validation,
 * the query engine against direct index calls, CLI↔server
 * byte-identity, concurrent snapshot swap (readers see a complete old
 * or a complete new snapshot, never a mix), and wire-protocol fuzz
 * (oversized lines, bad JSON, half-closed sockets get error replies,
 * never a crash).
 */

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "experiments/experiments.hh"
#include "index/fingerprint_index.hh"
#include "obs/obs.hh"
#include "pipeline/thread_pool.hh"
#include "service/client.hh"
#include "service/json.hh"
#include "service/protocol.hh"
#include "service/query_engine.hh"
#include "service/server.hh"
#include "stats/rng.hh"

namespace mica::service
{
namespace
{

/** Self-cleaning temp directory. */
struct TempDir
{
    std::string dir;

    TempDir()
    {
        char tmpl[] = "/tmp/mica_test_service_XXXXXX";
        const char *made = mkdtemp(tmpl);
        dir = made ? made : "/tmp/mica_test_service_fallback";
    }

    ~TempDir() { std::filesystem::remove_all(dir); }
};

/**
 * The shared small dataset config: CommBench only, reduced budget,
 * profile store in a per-process temp dir so the first collection
 * pays and every later one is a store hit.
 */
const experiments::DatasetConfig &
testConfig()
{
    static TempDir *cache = new TempDir();
    static experiments::DatasetConfig cfg = [] {
        experiments::DatasetConfig c;
        c.maxInsts = 30000;
        c.suites = {"CommBench"};
        c.cacheDir = cache->dir;
        return c;
    }();
    return cfg;
}

/** One snapshot shared by the engine tests (immutable, so sharing is safe). */
std::shared_ptr<const ServerSnapshot>
testSnapshot()
{
    static std::shared_ptr<const ServerSnapshot> snap = [] {
        std::string err;
        auto s = buildServerSnapshot(testConfig(), SpaceChoice{},
                                     nullptr, 0, {}, &err);
        EXPECT_NE(s, nullptr) << err;
        return s;
    }();
    return snap;
}

/** A synthetic self-consistent snapshot for swap tests. */
std::shared_ptr<const ServerSnapshot>
syntheticSnapshot(size_t rows, uint64_t generation)
{
    Matrix m;
    Rng rng(17 + generation);
    for (size_t r = 0; r < rows; ++r) {
        std::vector<double> v(6);
        for (auto &x : v)
            x = rng.gauss();
        m.appendRow(v);
        m.rowNames.push_back("bench" + std::to_string(r));
    }
    auto s = std::make_shared<ServerSnapshot>();
    s->idx = index::FingerprintIndex::build(m);
    s->space = "mica";
    s->key = "gen:" + std::to_string(generation) + ":" +
             std::to_string(rows);
    s->maxPairDist = static_cast<double>(rows);
    s->generation = generation;
    return s;
}

// ----------------------------------------------------------------------
// Address parsing.
// ----------------------------------------------------------------------

TEST(ServiceAddressTest, ParsesEveryAcceptedForm)
{
    SocketAddress a;
    std::string err;
    ASSERT_TRUE(parseAddress("unix:/tmp/x.sock", &a, &err)) << err;
    EXPECT_TRUE(a.isUnix);
    EXPECT_EQ(a.path, "/tmp/x.sock");

    ASSERT_TRUE(parseAddress("tcp:127.0.0.1:9000", &a, &err)) << err;
    EXPECT_FALSE(a.isUnix);
    EXPECT_EQ(a.host, "127.0.0.1");
    EXPECT_EQ(a.port, 9000);

    ASSERT_TRUE(parseAddress("tcp:9001", &a, &err)) << err;
    EXPECT_EQ(a.host, "127.0.0.1");
    EXPECT_EQ(a.port, 9001);

    ASSERT_TRUE(parseAddress("127.0.0.1:9002", &a, &err)) << err;
    EXPECT_FALSE(a.isUnix);
    EXPECT_EQ(a.port, 9002);

    ASSERT_TRUE(parseAddress("9003", &a, &err)) << err;
    EXPECT_FALSE(a.isUnix);
    EXPECT_EQ(a.port, 9003);

    // A bare path with a slash is a unix socket.
    ASSERT_TRUE(parseAddress("/run/mica.sock", &a, &err)) << err;
    EXPECT_TRUE(a.isUnix);
}

TEST(ServiceAddressTest, RejectsMalformedSpecs)
{
    SocketAddress a;
    std::string err;
    EXPECT_FALSE(parseAddress("", &a, &err));
    EXPECT_FALSE(parseAddress("unix:", &a, &err));
    EXPECT_FALSE(parseAddress("tcp:", &a, &err));
    EXPECT_FALSE(parseAddress("tcp:host:99999", &a, &err));
    EXPECT_FALSE(parseAddress("notaport", &a, &err));
}

// ----------------------------------------------------------------------
// Request validation.
// ----------------------------------------------------------------------

TEST(ServiceProtocolTest, ValidatesRequests)
{
    Request req;
    ErrorCode code;
    std::string msg;

    EXPECT_TRUE(parseRequest("{\"op\":\"ping\"}", &req, &code, &msg));
    EXPECT_EQ(req.op, Op::Ping);

    EXPECT_TRUE(parseRequest(
        "{\"op\":\"knn\",\"bench\":\"a/b.c\",\"k\":3,\"brute\":true}",
        &req, &code, &msg));
    EXPECT_EQ(req.op, Op::Knn);
    EXPECT_EQ(req.bench, "a/b.c");
    EXPECT_EQ(req.k, 3u);
    EXPECT_TRUE(req.brute);

    EXPECT_FALSE(parseRequest("not json", &req, &code, &msg));
    EXPECT_EQ(code, ErrorCode::BadJson);

    EXPECT_FALSE(parseRequest("[1,2]", &req, &code, &msg));
    EXPECT_EQ(code, ErrorCode::BadJson);

    EXPECT_FALSE(parseRequest("{\"op\":\"teleport\"}", &req, &code,
                              &msg));
    EXPECT_EQ(code, ErrorCode::UnknownOp);

    EXPECT_FALSE(parseRequest("{\"op\":\"knn\"}", &req, &code, &msg));
    EXPECT_EQ(code, ErrorCode::BadRequest);

    EXPECT_FALSE(parseRequest("{\"op\":\"knn\",\"bench\":\"x\","
                              "\"k\":-1}",
                              &req, &code, &msg));
    EXPECT_EQ(code, ErrorCode::BadRequest);

    EXPECT_FALSE(parseRequest("{\"op\":\"radius\",\"bench\":\"x\"}",
                              &req, &code, &msg));
    EXPECT_EQ(code, ErrorCode::BadRequest);
}

TEST(ServiceProtocolTest, IdSurvivesValidationFailure)
{
    Request req;
    ErrorCode code;
    std::string msg;
    ASSERT_FALSE(parseRequest("{\"id\":42,\"op\":\"nope\"}", &req,
                              &code, &msg));
    ASSERT_TRUE(req.hasId);
    const std::string line =
        serializeResponse(makeError(req, code, msg));
    EXPECT_NE(line.find("\"id\":42"), std::string::npos) << line;
    EXPECT_NE(line.find("\"ok\":false"), std::string::npos) << line;
    EXPECT_NE(line.find("\"unknown_op\""), std::string::npos) << line;
}

// ----------------------------------------------------------------------
// Query engine vs direct index calls.
// ----------------------------------------------------------------------

TEST(ServiceEngineTest, KnnMatchesDirectIndexCall)
{
    auto snap = testSnapshot();
    ASSERT_NE(snap, nullptr);
    ASSERT_GT(snap->idx.size(), 0u);
    const std::string bench = snap->idx.nameOf(0);

    Request req;
    req.op = Op::Knn;
    req.bench = bench;
    req.k = 5;
    const JsonValue resp = executeRequest(*snap, req);
    const JsonValue *ok = resp.find("ok");
    ASSERT_NE(ok, nullptr);
    ASSERT_TRUE(ok->asBool()) << serializeResponse(resp);
    const JsonValue *neighbors = resp.find("result")->find("neighbors");
    ASSERT_NE(neighbors, nullptr);

    const auto direct = snap->idx.knn(0, 5);
    ASSERT_EQ(neighbors->items().size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i) {
        const JsonValue &one = neighbors->items()[i];
        EXPECT_EQ(one.find("bench")->asString(),
                  snap->idx.nameOf(direct[i].id));
        EXPECT_EQ(one.find("dist")->asDouble(), direct[i].dist);
    }
}

TEST(ServiceEngineTest, TreeAndBruteAnswersAgree)
{
    auto snap = testSnapshot();
    ASSERT_NE(snap, nullptr);
    const std::string bench = snap->idx.nameOf(1);
    const std::string tree = executeLine(
        *snap, "{\"op\":\"knn\",\"bench\":\"" + bench + "\",\"k\":4}");
    const std::string brute = executeLine(
        *snap, "{\"op\":\"knn\",\"bench\":\"" + bench +
                   "\",\"k\":4,\"brute\":true}");
    EXPECT_EQ(tree, brute);
}

TEST(ServiceEngineTest, UnknownBenchAndBadLinesGetErrorEnvelopes)
{
    auto snap = testSnapshot();
    ASSERT_NE(snap, nullptr);
    const std::string miss = executeLine(
        *snap, "{\"op\":\"knn\",\"bench\":\"no/such.bench\"}");
    EXPECT_NE(miss.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(miss.find("\"unknown_bench\""), std::string::npos);

    const std::string garbage = executeLine(*snap, "{{{{");
    EXPECT_NE(garbage.find("\"bad_json\""), std::string::npos);

    // reindex is daemon-only; the one-shot path reports unavailable.
    const std::string reindex =
        executeLine(*snap, "{\"op\":\"reindex\"}");
    EXPECT_NE(reindex.find("\"unavailable\""), std::string::npos);
}

TEST(ServiceEngineTest, StatsReflectsTheSnapshot)
{
    auto snap = testSnapshot();
    ASSERT_NE(snap, nullptr);
    const JsonValue resp = [&] {
        Request req;
        req.op = Op::Stats;
        return executeRequest(*snap, req);
    }();
    const JsonValue *result = resp.find("result");
    ASSERT_NE(result, nullptr);
    EXPECT_EQ(result->find("indexed")->asCount(),
              static_cast<int64_t>(snap->idx.size()));
    EXPECT_EQ(result->find("space")->asString(), snap->space);
    EXPECT_EQ(result->find("generation")->asCount(), 0);
}

// ----------------------------------------------------------------------
// Concurrent snapshot swap.
// ----------------------------------------------------------------------

/**
 * Readers hammer SnapshotHolder::get() while a writer swaps between
 * two self-consistent snapshots. Every observation must be one of the
 * two complete states — the (generation, key, maxPairDist, size)
 * tuple always internally consistent, never a mix.
 */
void
swapTortureTest(size_t readers)
{
    auto a = syntheticSnapshot(8, 0);
    auto b = syntheticSnapshot(16, 1);
    SnapshotHolder holder(a);
    std::atomic<bool> stop{false};
    std::atomic<size_t> torn{0};

    std::vector<std::thread> pool;
    for (size_t r = 0; r < readers; ++r) {
        pool.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                auto s = holder.get();
                const size_t rows = s->generation == 0 ? 8 : 16;
                const std::string key =
                    "gen:" + std::to_string(s->generation) + ":" +
                    std::to_string(rows);
                if (s->idx.size() != rows || s->key != key ||
                    s->maxPairDist != static_cast<double>(rows))
                    torn.fetch_add(1);
                // The snapshot must stay answerable mid-swap.
                Request req;
                req.op = Op::Knn;
                req.bench = s->idx.nameOf(0);
                req.k = 3;
                const JsonValue resp = executeRequest(*s, req);
                if (!resp.find("ok")->asBool())
                    torn.fetch_add(1);
            }
        });
    }
    for (int i = 0; i < 400; ++i)
        holder.swap(i % 2 == 0 ? b : a);
    stop.store(true);
    for (auto &t : pool)
        t.join();
    EXPECT_EQ(torn.load(), 0u);
}

TEST(ServiceSwapTest, ReadersNeverSeeAMixSingleReader)
{
    swapTortureTest(1);
}

TEST(ServiceSwapTest, ReadersNeverSeeAMixEightReaders)
{
    swapTortureTest(8);
}

// ----------------------------------------------------------------------
// Server end-to-end over a unix socket.
// ----------------------------------------------------------------------

/** A running daemon on a temp unix socket, torn down on scope exit. */
struct RunningServer
{
    TempDir dir;
    std::unique_ptr<Server> server;
    std::thread loop;
    int rc = -1;

    explicit RunningServer(size_t jobs = 2)
    {
        ServerOptions opt;
        opt.address = "unix:" + dir.dir + "/srv.sock";
        opt.jobs = jobs;
        server = std::make_unique<Server>(opt, testSnapshot(),
                                          testConfig(), SpaceChoice{});
        std::string err;
        if (!server->start(&err)) {
            ADD_FAILURE() << "start: " << err;
            return;
        }
        loop = std::thread([this] { rc = server->run(); });
    }

    std::string address() const { return server->boundAddress(); }

    ~RunningServer()
    {
        if (loop.joinable()) {
            server->requestStop();
            loop.join();
            EXPECT_EQ(rc, 0);
        }
    }
};

TEST(ServiceServerTest, AnswersIdenticallyToTheOneShotPath)
{
    RunningServer rs;
    auto snap = testSnapshot();
    const std::string bench = snap->idx.nameOf(0);
    // stats is deliberately absent: a daemon enriches it with live
    // introspection (uptime, per-op counters), so only the other ops
    // keep the byte-identity contract.
    const std::vector<std::string> lines = {
        "{\"op\":\"ping\"}",
        "{\"id\":9,\"op\":\"knn\",\"bench\":\"" + bench +
            "\",\"k\":5}",
        "{\"op\":\"redundant\",\"top\":4}",
        "{\"op\":\"suites\"}",
        "{\"op\":\"nope\"}",
    };
    ServiceClient client;
    std::string err;
    ASSERT_TRUE(client.connect(rs.address(), &err)) << err;
    for (const auto &line : lines) {
        std::string reply;
        ASSERT_TRUE(client.request(line, &reply, &err)) << err;
        EXPECT_EQ(reply, executeLine(*snap, line, true)) << line;
    }
}

TEST(ServiceServerTest, DaemonStatsCarriesLiveIntrospection)
{
    RunningServer rs;
    ServiceClient client;
    std::string err;
    ASSERT_TRUE(client.connect(rs.address(), &err)) << err;
    std::string reply;
    ASSERT_TRUE(client.request("{\"op\":\"stats\"}", &reply, &err))
        << err;
    JsonValue doc;
    ASSERT_TRUE(parseJson(reply, &doc, &err)) << err;
    ASSERT_TRUE(doc.find("ok") && doc.find("ok")->asBool());
    const JsonValue *result = doc.find("result");
    ASSERT_NE(result, nullptr);
    const JsonValue *uptime = result->find("uptime_s");
    ASSERT_NE(uptime, nullptr);
    const JsonValue *requests = result->find("requests");
    ASSERT_NE(requests, nullptr);
    const JsonValue *byOp = requests->find("by_op");
    ASSERT_NE(byOp, nullptr);
    const JsonValue *statsCount = byOp->find("stats");
    ASSERT_NE(statsCount, nullptr);
    const JsonValue *conns = result->find("connections");
    ASSERT_NE(conns, nullptr);
    const JsonValue *open = conns->find("open");
    ASSERT_NE(open, nullptr);
#if MICA_OBS
    // The block is fed by live telemetry: this reply answers its own
    // stats request and the querying client itself holds a connection
    // right now. Compiled-out telemetry reads everything as zero, so
    // only the structure is asserted on that leg.
    EXPECT_GT(uptime->asDouble(), 0.0);
    EXPECT_GE(statsCount->asDouble(), 1.0);
    EXPECT_GE(open->asDouble(), 1.0);
#endif
    // The local one-shot path stays unenriched: no introspection
    // block when the same request runs without a daemon.
    auto snap = testSnapshot();
    JsonValue local;
    ASSERT_TRUE(parseJson(
        executeLine(*snap, "{\"op\":\"stats\"}", false), &local, &err))
        << err;
    const JsonValue *localResult = local.find("result");
    ASSERT_NE(localResult, nullptr);
    EXPECT_EQ(localResult->find("uptime_s"), nullptr);
}

TEST(ServiceServerTest, ConcurrentClientsAllGetAnswers)
{
    RunningServer rs(4);
    const std::string bench = testSnapshot()->idx.nameOf(0);
    std::atomic<size_t> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&, c] {
            ServiceClient client;
            std::string err;
            if (!client.connect(rs.address(), &err)) {
                failures.fetch_add(1);
                return;
            }
            for (int i = 0; i < 25; ++i) {
                const std::string line =
                    i % 2 == 0
                        ? "{\"id\":" + std::to_string(c * 100 + i) +
                              ",\"op\":\"knn\",\"bench\":\"" + bench +
                              "\",\"k\":3}"
                        : "{\"id\":" + std::to_string(c * 100 + i) +
                              ",\"op\":\"stats\"}";
                std::string reply;
                if (!client.request(line, &reply, &err) ||
                    reply.find("\"ok\":true") == std::string::npos ||
                    reply.find("\"id\":" +
                               std::to_string(c * 100 + i)) ==
                        std::string::npos)
                    failures.fetch_add(1);
            }
        });
    }
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(failures.load(), 0u);
}

TEST(ServiceServerTest, ReindexSwapsUnderConcurrentQueries)
{
    RunningServer rs(4);
    std::atomic<size_t> failures{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 3; ++c) {
        clients.emplace_back([&] {
            ServiceClient client;
            std::string err;
            if (!client.connect(rs.address(), &err)) {
                failures.fetch_add(1);
                return;
            }
            for (int i = 0; i < 20; ++i) {
                std::string reply;
                if (!client.request("{\"op\":\"stats\"}", &reply,
                                    &err) ||
                    reply.find("\"ok\":true") == std::string::npos) {
                    failures.fetch_add(1);
                    continue;
                }
                // Generation is 0 (startup) or 1 (post-reindex) —
                // any other value means a torn snapshot.
                if (reply.find("\"generation\":0") ==
                        std::string::npos &&
                    reply.find("\"generation\":1") ==
                        std::string::npos)
                    failures.fetch_add(1);
            }
        });
    }
    {
        ServiceClient client;
        std::string err, reply;
        ASSERT_TRUE(client.connect(rs.address(), &err)) << err;
        ASSERT_TRUE(client.request("{\"op\":\"reindex\"}", &reply,
                                   &err))
            << err;
        EXPECT_NE(reply.find("\"ok\":true"), std::string::npos)
            << reply;
        EXPECT_NE(reply.find("\"generation\":1"), std::string::npos)
            << reply;
    }
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(rs.server->snapshot()->generation, 1u);
}

// ----------------------------------------------------------------------
// Wire-protocol fuzz: hostile bytes must produce error replies (or a
// clean close), never a crash or a wedged daemon.
// ----------------------------------------------------------------------

TEST(ServiceServerTest, BadJsonGetsErrorReplyAndConnectionSurvives)
{
    RunningServer rs;
    ServiceClient client;
    std::string err, reply;
    ASSERT_TRUE(client.connect(rs.address(), &err)) << err;
    ASSERT_TRUE(client.request("{{{not json", &reply, &err)) << err;
    EXPECT_NE(reply.find("\"bad_json\""), std::string::npos) << reply;
    // Same connection still answers.
    ASSERT_TRUE(client.request("{\"op\":\"ping\"}", &reply, &err))
        << err;
    EXPECT_NE(reply.find("\"pong\":true"), std::string::npos);
}

TEST(ServiceServerTest, OversizedLineGetsLineTooLongThenClose)
{
    RunningServer rs;
    ServiceClient client;
    std::string err, reply;
    ASSERT_TRUE(client.connect(rs.address(), &err)) << err;
    // One line larger than the hard cap; the server must reply
    // line_too_long and close — the send may fail part-way once the
    // server stops reading, which is fine.
    std::string huge(kMaxLineBytes + 4096, 'a');
    (void)client.sendLine(huge, &err);
    ASSERT_TRUE(client.recvLine(&reply, &err)) << err;
    EXPECT_NE(reply.find("\"line_too_long\""), std::string::npos)
        << reply;
    // Then EOF: the connection is gone, the daemon is not.
    EXPECT_FALSE(client.recvLine(&reply, &err));
    ServiceClient again;
    ASSERT_TRUE(again.connect(rs.address(), &err)) << err;
    ASSERT_TRUE(again.request("{\"op\":\"ping\"}", &reply, &err))
        << err;
    EXPECT_NE(reply.find("\"pong\":true"), std::string::npos);
}

TEST(ServiceServerTest, HalfClosedSocketStillGetsItsReply)
{
    RunningServer rs;
    ServiceClient client;
    std::string err, reply;
    ASSERT_TRUE(client.connect(rs.address(), &err)) << err;
    ASSERT_TRUE(client.sendLine("{\"op\":\"ping\"}", &err)) << err;
    client.shutdownWrite();
    ASSERT_TRUE(client.recvLine(&reply, &err)) << err;
    EXPECT_NE(reply.find("\"pong\":true"), std::string::npos);
    EXPECT_FALSE(client.recvLine(&reply, &err));   // then EOF
}

TEST(ServiceServerTest, PartialLineThenEofGetsBadJsonReply)
{
    RunningServer rs;
    SocketAddress addr;
    std::string err;
    ASSERT_TRUE(parseAddress(rs.address(), &addr, &err)) << err;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.path.c_str(),
                 sizeof(sa.sun_path) - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&sa),
                        sizeof(sa)),
              0);
    // A fragment with no newline, then write-side close: the server
    // must treat the fragment as a (malformed) final line.
    const char frag[] = "{\"op\":\"pi";
    ASSERT_EQ(::send(fd, frag, sizeof(frag) - 1, MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(frag) - 1));
    ::shutdown(fd, SHUT_WR);
    std::string reply;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        reply.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    EXPECT_NE(reply.find("\"bad_json\""), std::string::npos) << reply;
}

} // namespace
} // namespace mica::service
