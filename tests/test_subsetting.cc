/**
 * @file
 * Tests for the benchmark-subsetting extension (cluster medoids).
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "methodology/subsetting.hh"
#include "stats/rng.hh"

namespace mica
{
namespace
{

/** Three tight, well-separated groups with names. */
Matrix
groups(uint64_t seed, int perGroup = 10)
{
    Matrix m;
    Rng rng(seed);
    const double centers[3][2] = {{0, 0}, {30, 0}, {0, 30}};
    int idx = 0;
    for (int g = 0; g < 3; ++g) {
        for (int i = 0; i < perGroup; ++i, ++idx) {
            m.appendRow({centers[g][0] + 0.2 * rng.gauss(),
                         centers[g][1] + 0.2 * rng.gauss()});
            m.rowNames.push_back("b" + std::to_string(idx));
        }
    }
    return m;
}

TEST(SubsettingTest, PicksOneMedoidPerGroup)
{
    const Matrix m = groups(3);
    const SubsetResult r = selectRepresentatives(m, 10, 5, 0.9, 0.0);
    EXPECT_EQ(r.representatives.size(), 3u);
    EXPECT_EQ(r.populationSize, 30u);
    EXPECT_NEAR(r.reductionFactor, 10.0, 1e-9);
    // Each representative covers one full group, and the medoid is a
    // member of the group it represents.
    for (const auto &rep : r.representatives) {
        EXPECT_EQ(rep.covers.size(), 10u);
        EXPECT_NE(std::find(rep.covers.begin(), rep.covers.end(),
                            rep.row),
                  rep.covers.end());
        EXPECT_LT(rep.maxDistance, 2.0);    // tight groups
        EXPECT_LE(rep.meanDistance, rep.maxDistance);
    }
}

TEST(SubsettingTest, CoverageStatsAggregateCorrectly)
{
    const Matrix m = groups(7);
    const SubsetResult r = selectRepresentatives(m, 8, 9, 0.9, 0.0);
    double worst = 0.0;
    for (const auto &rep : r.representatives)
        worst = std::max(worst, rep.maxDistance);
    EXPECT_DOUBLE_EQ(r.maxCoverDistance, worst);
    EXPECT_GT(r.meanCoverDistance, 0.0);
    EXPECT_LE(r.meanCoverDistance, r.maxCoverDistance);
}

TEST(SubsettingTest, SelectedRowsAreSortedAndUnique)
{
    const Matrix m = groups(11);
    const SubsetResult r = selectRepresentatives(m, 8, 13, 0.9, 0.0);
    const auto rows = r.selectedRows();
    ASSERT_EQ(rows.size(), r.representatives.size());
    for (size_t i = 1; i < rows.size(); ++i)
        EXPECT_LT(rows[i - 1], rows[i]);
}

TEST(SubsettingTest, EveryBenchmarkIsCoveredExactlyOnce)
{
    const Matrix m = groups(17);
    const SubsetResult r = selectRepresentatives(m, 10, 19, 0.9, 0.0);
    std::vector<int> covered(m.rows(), 0);
    for (const auto &rep : r.representatives)
        for (size_t c : rep.covers)
            ++covered[c];
    for (int c : covered)
        EXPECT_EQ(c, 1);
}

TEST(SubsettingTest, FixedKControlsSubsetSize)
{
    const Matrix m = groups(23, 12);
    for (size_t k : {2u, 3u, 6u}) {
        const SubsetResult r = selectKRepresentatives(m, k, 29);
        EXPECT_EQ(r.representatives.size(), k);
    }
}

TEST(SubsettingTest, MoreRepresentativesNeverWorsenMeanCoverage)
{
    Matrix m;
    Rng rng(31);
    for (int i = 0; i < 60; ++i) {
        m.appendRow({rng.gauss() * 3, rng.gauss() * 3});
        m.rowNames.push_back("r" + std::to_string(i));
    }
    double prev = 1e300;
    for (size_t k : {2u, 4u, 8u, 16u, 32u}) {
        const SubsetResult r = selectKRepresentatives(m, k, 37);
        EXPECT_LE(r.meanCoverDistance, prev + 0.15);
        prev = r.meanCoverDistance;
    }
}

TEST(SubsettingTest, KEqualPopulationGivesZeroCoverage)
{
    const Matrix m = groups(41, 4);
    const SubsetResult r = selectKRepresentatives(m, m.rows(), 43);
    EXPECT_NEAR(r.meanCoverDistance, 0.0, 1e-9);
    EXPECT_NEAR(r.reductionFactor, 1.0, 1e-9);
}

TEST(SubsettingTest, EmptyDatasetYieldsEmptyResult)
{
    const Matrix empty;
    const SubsetResult r = selectRepresentatives(empty, 10, 5);
    EXPECT_TRUE(r.representatives.empty());
    EXPECT_EQ(r.populationSize, 0u);
}

TEST(SubsettingTest, RepresentativesSortedBySizeDescending)
{
    Matrix m = groups(47, 9);
    // Add a singleton outlier -> smallest cluster last.
    m.appendRow({500.0, 500.0});
    m.rowNames.push_back("outlier");
    const SubsetResult r = selectRepresentatives(m, 10, 51, 0.9, 0.0);
    for (size_t i = 1; i < r.representatives.size(); ++i) {
        EXPECT_GE(r.representatives[i - 1].covers.size(),
                  r.representatives[i].covers.size());
    }
    EXPECT_EQ(r.representatives.back().name, "outlier");
}

} // namespace
} // namespace mica
