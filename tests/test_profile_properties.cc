/**
 * @file
 * Registry-wide property tests: for EVERY one of the 122 benchmarks,
 * the measured 47-characteristic profile and the hardware-counter
 * profile must satisfy the invariants the characteristics are defined
 * by (bounds, monotone CDFs, cross-metric consistency).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "isa/interpreter.hh"
#include "mica/profile.hh"
#include "mica/runner.hh"
#include "uarch/hpc_runner.hh"
#include "workloads/registry.hh"

namespace mica
{
namespace
{

constexpr uint64_t kBudget = 60000;

class ProfilePropertyTest : public ::testing::TestWithParam<size_t>
{
  protected:
    static MicaProfile
    micaProfile(size_t idx)
    {
        const auto &e =
            workloads::BenchmarkRegistry::instance().all()[idx];
        const isa::Program prog = e.build();
        isa::Interpreter interp(prog);
        MicaRunnerConfig cfg;
        cfg.maxInsts = kBudget;
        return collectMicaProfile(interp, e.info.fullName(), cfg);
    }

    static uarch::HwCounterProfile
    hpcProfile(size_t idx)
    {
        const auto &e =
            workloads::BenchmarkRegistry::instance().all()[idx];
        const isa::Program prog = e.build();
        isa::Interpreter interp(prog);
        return uarch::collectHwProfile(interp, e.info.fullName(),
                                       kBudget);
    }
};

TEST_P(ProfilePropertyTest, MixPercentagesFormAPartition)
{
    const MicaProfile p = micaProfile(GetParam());
    double sum = 0.0;
    for (size_t c = PctLoads; c <= PctFpOps; ++c) {
        EXPECT_GE(p[c], 0.0) << micaCharInfo(c).name;
        EXPECT_LE(p[c], 100.0) << micaCharInfo(c).name;
        sum += p[c];
    }
    // Mix classes partition the non-Nop instructions.
    EXPECT_LE(sum, 100.0 + 1e-9);
    EXPECT_GT(sum, 50.0);   // a real program is not mostly Nops
}

TEST_P(ProfilePropertyTest, IlpIsBoundedAndMonotoneInWindowSize)
{
    const MicaProfile p = micaProfile(GetParam());
    EXPECT_GE(p[Ilp32], 1.0);
    EXPECT_LE(p[Ilp32], p[Ilp64] + 1e-9);
    EXPECT_LE(p[Ilp64], p[Ilp128] + 1e-9);
    EXPECT_LE(p[Ilp128], p[Ilp256] + 1e-9);
    EXPECT_LE(p[Ilp256], 256.0);
}

TEST_P(ProfilePropertyTest, RegisterTrafficInvariants)
{
    const MicaProfile p = micaProfile(GetParam());
    EXPECT_GE(p[AvgInputOperands], 0.0);
    EXPECT_LE(p[AvgInputOperands], 3.0);    // max sources per record
    EXPECT_GE(p[AvgDegreeOfUse], 0.0);
    // Dependency-distance CDF: monotone, within [0, 1].
    for (size_t c = RegDepEq1; c <= RegDepLe64; ++c) {
        EXPECT_GE(p[c], 0.0) << micaCharInfo(c).name;
        EXPECT_LE(p[c], 1.0) << micaCharInfo(c).name;
        if (c > RegDepEq1)
            EXPECT_GE(p[c] + 1e-12, p[c - 1]) << micaCharInfo(c).name;
    }
}

TEST_P(ProfilePropertyTest, WorkingSetsAreConsistent)
{
    const MicaProfile p = micaProfile(GetParam());
    // Every benchmark touches data and executes code.
    EXPECT_GT(p[DWorkSet32B], 0.0);
    EXPECT_GT(p[IWorkSet32B], 0.0);
    // Finer granularity can only see more units, and a 4KB page holds
    // 128 32-byte blocks.
    EXPECT_GE(p[DWorkSet32B], p[DWorkSet4K]);
    EXPECT_LE(p[DWorkSet32B], 128.0 * p[DWorkSet4K]);
    EXPECT_GE(p[IWorkSet32B], p[IWorkSet4K]);
    EXPECT_LE(p[IWorkSet32B], 128.0 * p[IWorkSet4K]);
}

TEST_P(ProfilePropertyTest, StrideCdfsAreMonotoneProbabilities)
{
    const MicaProfile p = micaProfile(GetParam());
    const size_t starts[] = {LocalLoadStrideEq0, GlobalLoadStrideEq0,
                             LocalStoreStrideEq0, GlobalStoreStrideEq0};
    for (size_t s : starts) {
        for (size_t c = s; c < s + 5; ++c) {
            EXPECT_GE(p[c], 0.0) << micaCharInfo(c).name;
            EXPECT_LE(p[c], 1.0) << micaCharInfo(c).name;
            if (c > s)
                EXPECT_GE(p[c] + 1e-12, p[c - 1])
                    << micaCharInfo(c).name;
        }
    }
}

TEST_P(ProfilePropertyTest, PpmMissRatesAreProbabilities)
{
    const MicaProfile p = micaProfile(GetParam());
    for (size_t c = PpmGAg; c <= PpmPAs; ++c) {
        EXPECT_GE(p[c], 0.0) << micaCharInfo(c).name;
        EXPECT_LE(p[c], 1.0) << micaCharInfo(c).name;
    }
    // Per-branch tables cannot be worse than sharing one table with
    // everything on average... they can, slightly, via cold starts; so
    // only sanity-bound the spread between variants.
    EXPECT_LT(std::fabs(p[PpmGAs] - p[PpmGAg]), 0.6);
}

TEST_P(ProfilePropertyTest, HpcMetricsAreWellFormed)
{
    const auto h = hpcProfile(GetParam());
    EXPECT_GT(h.ipcEv56, 0.0);
    EXPECT_LE(h.ipcEv56, 2.0 + 1e-9);
    EXPECT_GT(h.ipcEv67, 0.0);
    EXPECT_LE(h.ipcEv67, 4.0 + 1e-9);
    for (double r : {h.branchMissRate, h.l1dMissRate, h.l1iMissRate,
                     h.l2MissRate, h.dtlbMissRate}) {
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, 1.0);
    }
    EXPECT_GT(h.instCount, 0u);
}

std::string
propTestName(const ::testing::TestParamInfo<size_t> &info)
{
    std::string n = workloads::BenchmarkRegistry::instance()
                        .all()[info.param]
                        .info.fullName();
    for (char &c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return n;
}

INSTANTIATE_TEST_SUITE_P(All122, ProfilePropertyTest,
                         ::testing::Range<size_t>(0, 122), propTestName);

} // namespace
} // namespace mica
