/**
 * @file
 * Tests for file-backed trace recording and replay: the binary format
 * round trip (streamed and mmap readers, bit for bit), writer
 * atomicity, rejection of corrupt/truncated/version-mismatched files,
 * the RecordingSource tee, the next()/nextBatch()/nextSpan() prefix
 * contract across every source, text traces, trace-directory
 * benchmark surfacing, and the load-bearing contract of the whole
 * subsystem: replaying a recorded trace produces profiles
 * byte-identical to interpreting the program directly.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "experiments/experiments.hh"
#include "isa/interpreter.hh"
#include "mica/runner.hh"
#include "pipeline/profile_store.hh"
#include "test_util.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"
#include "uarch/hpc_runner.hh"
#include "workloads/registry.hh"

namespace mica
{
namespace
{

namespace fs = std::filesystem;

/** Self-cleaning unique temp directory (parallel ctest safe). */
struct TmpDir
{
    std::string dir;

    TmpDir()
    {
        char tmpl[] = "/tmp/mica_test_trace_XXXXXX";
        const char *made = mkdtemp(tmpl);
        dir = made ? made : "/tmp/mica_test_trace_fallback";
    }

    ~TmpDir() { fs::remove_all(dir); }

    std::string file(const std::string &name) const
    {
        return dir + "/" + name;
    }
};

bool
sameRec(const InstRecord &a, const InstRecord &b)
{
    return a.pc == b.pc && a.cls == b.cls &&
           a.numSrcRegs == b.numSrcRegs && a.srcRegs == b.srcRegs &&
           a.dstReg == b.dstReg && a.memAddr == b.memAddr &&
           a.memSize == b.memSize && a.taken == b.taken &&
           a.target == b.target;
}

/** A deterministic, varied record stream for round-trip tests. */
std::vector<InstRecord>
sampleRecords(uint64_t n, uint64_t seed = 7)
{
    RandomTraceParams p;
    p.numInsts = n;
    p.seed = seed;
    RandomTraceSource src(p);
    std::vector<InstRecord> out;
    out.reserve(n);
    InstRecord r;
    while (src.next(r))
        out.push_back(r);
    return out;
}

std::string
writeTrace(const TmpDir &tmp, const std::vector<InstRecord> &recs,
           const std::string &name = "t.trace")
{
    const std::string path = tmp.file(name);
    TraceFileWriter w(path);
    w.append(recs.data(), recs.size());
    w.close();
    return path;
}

/** Overwrite bytes at an absolute file offset. */
void
patchBytes(const std::string &path, uint64_t offset, const void *data,
           size_t n)
{
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.is_open());
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(static_cast<const char *>(data),
            static_cast<std::streamsize>(n));
}

// ----------------------------------------------------------------------
// Round trip
// ----------------------------------------------------------------------

TEST(TraceFileTest, RoundTripsBitForBitThroughBothReaders)
{
    TmpDir tmp;
    // Spans multiple chunks (kChunkRecords = 4096) plus a partial one.
    const auto recs = sampleRecords(3 * TraceFileWriter::kChunkRecords +
                                    1234);
    const std::string path = writeTrace(tmp, recs);

    EXPECT_EQ(probeTraceFile(path).recordCount, recs.size());

    FileTraceSource streamed(path);
    MappedTraceSource mapped(path);
    EXPECT_EQ(streamed.recordCount(), recs.size());
    EXPECT_EQ(mapped.recordCount(), recs.size());
    InstRecord a, b;
    for (size_t i = 0; i < recs.size(); ++i) {
        ASSERT_TRUE(streamed.next(a)) << i;
        ASSERT_TRUE(mapped.next(b)) << i;
        EXPECT_TRUE(sameRec(a, recs[i])) << i;
        EXPECT_TRUE(sameRec(b, recs[i])) << i;
    }
    EXPECT_FALSE(streamed.next(a));
    EXPECT_FALSE(mapped.next(b));
}

TEST(TraceFileTest, RecordingTheSameTraceTwiceIsByteIdentical)
{
    TmpDir tmp;
    const auto recs = sampleRecords(5000);
    const std::string p1 = writeTrace(tmp, recs, "a.trace");
    const std::string p2 = writeTrace(tmp, recs, "b.trace");
    std::ifstream f1(p1, std::ios::binary), f2(p2, std::ios::binary);
    std::stringstream s1, s2;
    s1 << f1.rdbuf();
    s2 << f2.rdbuf();
    // Zeroed struct padding makes recordings reproducible files.
    EXPECT_EQ(s1.str(), s2.str());
    EXPECT_EQ(s1.str().size(), fs::file_size(p1));
}

TEST(TraceFileTest, EmptyTraceRoundTrips)
{
    TmpDir tmp;
    const std::string path = writeTrace(tmp, {});
    EXPECT_EQ(probeTraceFile(path).recordCount, 0u);
    FileTraceSource streamed(path);
    MappedTraceSource mapped(path);
    InstRecord r;
    EXPECT_FALSE(streamed.next(r));
    EXPECT_FALSE(mapped.next(r));
}

TEST(TraceFileTest, ResetRewindsBothReaders)
{
    TmpDir tmp;
    const auto recs = sampleRecords(6000);
    const std::string path = writeTrace(tmp, recs);
    FileTraceSource streamed(path);
    MappedTraceSource mapped(path);
    InstRecord r;
    for (int i = 0; i < 4999; ++i) {
        ASSERT_TRUE(streamed.next(r));
        ASSERT_TRUE(mapped.next(r));
    }
    EXPECT_TRUE(streamed.reset());
    EXPECT_TRUE(mapped.reset());
    size_t n = 0;
    while (streamed.next(r)) {
        ASSERT_TRUE(sameRec(r, recs[n]));
        ++n;
    }
    EXPECT_EQ(n, recs.size());
    n = 0;
    while (mapped.next(r)) {
        ASSERT_TRUE(sameRec(r, recs[n]));
        ++n;
    }
    EXPECT_EQ(n, recs.size());
}

TEST(TraceFileTest, MappedSpansAreZeroCopy)
{
    TmpDir tmp;
    const auto recs = sampleRecords(100);
    const std::string path = writeTrace(tmp, recs);
    MappedTraceSource mapped(path);
    InstRecord backing[128];
    const InstRecord *span = nullptr;
    const size_t got = mapped.nextSpan(span, backing, 128);
    EXPECT_EQ(got, 100u);
    EXPECT_NE(span, backing);   // points into the mapping, not at buf
    EXPECT_TRUE(sameRec(span[0], recs[0]));
    EXPECT_TRUE(sameRec(span[99], recs[99]));
}

TEST(TraceFileTest, SpansStopAtChunkBoundariesButNeverReturnZeroMidTrace)
{
    TmpDir tmp;
    const size_t n = TraceFileWriter::kChunkRecords + 17;
    const auto recs = sampleRecords(n);
    const std::string path = writeTrace(tmp, recs);
    for (int streamed = 0; streamed < 2; ++streamed) {
        auto src = openTraceFile(path, streamed != 0);
        std::vector<InstRecord> buf(n + 100);
        const InstRecord *span = nullptr;
        size_t total = 0, calls = 0;
        size_t got;
        while ((got = src->nextSpan(span, buf.data(), buf.size())) != 0) {
            ASSERT_GT(got, 0u);
            for (size_t i = 0; i < got; ++i)
                ASSERT_TRUE(sameRec(span[i], recs[total + i]));
            total += got;
            ++calls;
        }
        EXPECT_EQ(total, n);
        EXPECT_EQ(calls, 2u) << "one span per chunk";
    }
}

/** Expect a TraceFileError whose message mentions @p needle. */
template <typename Fn>
void
expectReject(Fn &&fn, const std::string &needle)
{
    try {
        fn();
        FAIL() << "expected TraceFileError containing '" << needle << "'";
    } catch (const TraceFileError &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "actual: " << e.what();
    }
}

// ----------------------------------------------------------------------
// Columnar format v2
// ----------------------------------------------------------------------

std::string
writeTraceV2(const TmpDir &tmp, const std::vector<InstRecord> &recs,
             const std::string &name = "v2.trace")
{
    const std::string path = tmp.file(name);
    TraceFileWriter w(path, kTraceFormatV2);
    w.append(recs.data(), recs.size());
    w.close();
    return path;
}

TEST(TraceV2Test, RoundTripsThroughTheStreamedReader)
{
    TmpDir tmp;
    // Multiple v2 chunks plus a partial one.
    const auto recs =
        sampleRecords(2 * TraceFileWriter::kChunkRecordsV2 + 777);
    const std::string path = writeTraceV2(tmp, recs);

    const TraceFileInfo info = probeTraceFile(path);
    EXPECT_EQ(info.version, kTraceFormatV2);
    EXPECT_EQ(info.recordCount, recs.size());
    EXPECT_EQ(info.chunkCount, 3u);

    FileTraceSource streamed(path);
    InstRecord r;
    size_t n = 0;
    while (streamed.next(r)) {
        ASSERT_TRUE(sameRec(r, recs[n])) << n;
        ++n;
    }
    EXPECT_EQ(n, recs.size());
    EXPECT_TRUE(streamed.reset());
    EXPECT_TRUE(streamed.next(r));
    EXPECT_TRUE(sameRec(r, recs[0]));
}

TEST(TraceV2Test, CompressesAtLeast3xAndIsDeterministic)
{
    TmpDir tmp;
    const auto recs = sampleRecords(50000);
    const std::string p1 = writeTrace(tmp, recs, "v1.trace");
    const std::string pa = writeTraceV2(tmp, recs, "a.trace");
    const std::string pb = writeTraceV2(tmp, recs, "b.trace");
    EXPECT_GE(fs::file_size(p1), 3 * fs::file_size(pa))
        << "v2 must be >= 3x smaller than v1";
    std::ifstream f1(pa, std::ios::binary), f2(pb, std::ios::binary);
    std::stringstream s1, s2;
    s1 << f1.rdbuf();
    s2 << f2.rdbuf();
    EXPECT_EQ(s1.str(), s2.str());
}

TEST(TraceV2Test, EmptyTraceRoundTrips)
{
    TmpDir tmp;
    const std::string path = writeTraceV2(tmp, {});
    const TraceFileInfo info = probeTraceFile(path);
    EXPECT_EQ(info.version, kTraceFormatV2);
    EXPECT_EQ(info.recordCount, 0u);
    FileTraceSource streamed(path);
    InstRecord r;
    EXPECT_FALSE(streamed.next(r));
}

TEST(TraceV2Test, MmapReaderRejectsV2AndOpenTraceFileDispatches)
{
    TmpDir tmp;
    const auto recs = sampleRecords(100);
    const std::string path = writeTraceV2(tmp, recs);
    expectReject([&] { MappedTraceSource s(path); }, "v1-only");

    // openTraceFile must route a v2 file to the streamed reader even
    // when the caller asked for the default (mmap) path.
    for (int streamed = 0; streamed < 2; ++streamed) {
        auto src = openTraceFile(path, streamed != 0);
        InstRecord r;
        size_t n = 0;
        while (src->next(r)) {
            ASSERT_TRUE(sameRec(r, recs[n])) << n;
            ++n;
        }
        EXPECT_EQ(n, recs.size());
    }
}

TEST(TraceV2Test, ConvertRoundTripsBothWaysRecordIdentical)
{
    TmpDir tmp;
    const auto recs = sampleRecords(20000);
    const std::string v1 = writeTrace(tmp, recs, "orig.trace");

    const TraceConvertStats up =
        convertTraceFile(v1, tmp.file("conv.trace"), kTraceFormatV2);
    EXPECT_EQ(up.srcVersion, kTraceFormatV1);
    EXPECT_EQ(up.dstVersion, kTraceFormatV2);
    EXPECT_EQ(up.records, recs.size());
    EXPECT_GE(up.srcBytes, 3 * up.dstBytes);

    const TraceConvertStats down = convertTraceFile(
        tmp.file("conv.trace"), tmp.file("back.trace"), kTraceFormatV1);
    EXPECT_EQ(down.records, recs.size());

    // Canonical records + deterministic writer: a v1 -> v2 -> v1 round
    // trip reproduces the original file bit for bit.
    std::ifstream f1(v1, std::ios::binary),
        f2(tmp.file("back.trace"), std::ios::binary);
    std::stringstream s1, s2;
    s1 << f1.rdbuf();
    s2 << f2.rdbuf();
    EXPECT_EQ(s1.str(), s2.str());

    std::string why;
    EXPECT_TRUE(
        traceRecordsIdentical(v1, tmp.file("conv.trace"), why)) << why;
}

TEST(TraceV2Test, FlippedColumnByteRejectsNamingTheColumn)
{
    TmpDir tmp;
    const auto recs = sampleRecords(3000);
    const std::string path = writeTraceV2(tmp, recs);

    // Read the first chunk's column lengths so the patch lands on the
    // register column's width byte (offset: 48-byte file header +
    // 32-byte chunk header + cls and pc streams).
    uint32_t colBytes[6] = {};
    {
        std::ifstream f(path, std::ios::binary);
        f.seekg(48 + 8);
        f.read(reinterpret_cast<char *>(colBytes), sizeof(colBytes));
        ASSERT_TRUE(f.good());
    }
    const uint8_t badWidth = 17;
    patchBytes(path, 48 + 32 + colBytes[0] + colBytes[1], &badWidth, 1);
    expectReject([&] { probeTraceFile(path); }, "column 'reg'");
}

TEST(TraceV2Test, FlippedPayloadBitsAndTruncationReject)
{
    TmpDir tmp;
    const auto recs = sampleRecords(3000);
    const std::string path = writeTraceV2(tmp, recs);
    const uint64_t full = fs::file_size(path);

    const std::string cut = tmp.file("cut.trace");
    fs::copy_file(path, cut, fs::copy_options::overwrite_existing);
    fs::resize_file(cut, full - 1);
    EXPECT_THROW(probeTraceFile(cut), TraceFileError);

    // A flipped byte anywhere in a column stream must reject — either
    // a column decode error or the payload checksum catches it.
    const uint8_t junk = 0xa5;
    patchBytes(path, full - 10, &junk, 1);
    EXPECT_THROW(probeTraceFile(path), TraceFileError);
}

// ----------------------------------------------------------------------
// Writer atomicity
// ----------------------------------------------------------------------

TEST(TraceFileTest, WriterIsAtomicTmpUntilClose)
{
    TmpDir tmp;
    const std::string path = tmp.file("a.trace");
    {
        TraceFileWriter w(path);
        w.append(test::alu(1));
        EXPECT_FALSE(fs::exists(path));
        EXPECT_TRUE(fs::exists(path + ".tmp"));
        w.close();
    }
    EXPECT_TRUE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    EXPECT_EQ(probeTraceFile(path).recordCount, 1u);
}

TEST(TraceFileTest, AbandonedWriterLeavesNoFinalFile)
{
    TmpDir tmp;
    const std::string path = tmp.file("a.trace");
    {
        TraceFileWriter w(path);
        w.append(test::alu(1));
        // No close(): simulates a crash mid-recording.
    }
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

// ----------------------------------------------------------------------
// Rejection: corrupt, truncated, mismatched files
// ----------------------------------------------------------------------

TEST(TraceFileTest, RejectsMissingAndNonTraceFiles)
{
    TmpDir tmp;
    expectReject([&] { probeTraceFile(tmp.file("absent.trace")); },
                 "No such file or directory");
    std::ofstream(tmp.file("junk.trace")) << "this is not a trace";
    expectReject([&] { probeTraceFile(tmp.file("junk.trace")); },
                 "not a mica trace file");
    expectReject([&] { FileTraceSource s(tmp.file("junk.trace")); },
                 "not a mica trace file");
    expectReject([&] { MappedTraceSource s(tmp.file("junk.trace")); },
                 "not a mica trace file");
}

TEST(TraceFileTest, RejectsVersionAndLayoutMismatch)
{
    TmpDir tmp;
    const auto recs = sampleRecords(10);

    const std::string p1 = writeTrace(tmp, recs, "v.trace");
    const uint32_t badVersion = kTraceFormatLatest + 1;
    patchBytes(p1, 8, &badVersion, sizeof(badVersion));
    expectReject([&] { probeTraceFile(p1); }, "version");

    const std::string p2 = writeTrace(tmp, recs, "h.trace");
    const uint64_t badHash = kTraceLayoutHash ^ 1;
    patchBytes(p2, 16, &badHash, sizeof(badHash));
    expectReject([&] { probeTraceFile(p2); }, "layout mismatch");
}

TEST(TraceFileTest, RejectsTruncationAnywhere)
{
    TmpDir tmp;
    const auto recs = sampleRecords(100);
    const std::string path = writeTrace(tmp, recs);
    const uint64_t full = fs::file_size(path);

    for (uint64_t keep : {uint64_t(0), uint64_t(7), uint64_t(47),
                          uint64_t(48), uint64_t(56), full - 1}) {
        const std::string cut = tmp.file("cut.trace");
        fs::copy_file(path, cut, fs::copy_options::overwrite_existing);
        fs::resize_file(cut, keep);
        EXPECT_THROW(probeTraceFile(cut), TraceFileError) << keep;
        EXPECT_THROW(FileTraceSource s(cut), TraceFileError) << keep;
        EXPECT_THROW(MappedTraceSource s(cut), TraceFileError) << keep;
    }
}

TEST(TraceFileTest, RejectsFlippedPayloadBits)
{
    TmpDir tmp;
    const auto recs = sampleRecords(100);
    const std::string path = writeTrace(tmp, recs);
    const uint8_t junk = 0xa5;
    patchBytes(path, 56 + 3, &junk, 1);     // inside the first record
    expectReject([&] { probeTraceFile(path); }, "checksum mismatch");
}

TEST(TraceFileTest, RejectsCorruptChunkHeaderAndCountMismatch)
{
    TmpDir tmp;
    const auto recs = sampleRecords(100);

    const std::string p1 = writeTrace(tmp, recs, "cm.trace");
    const uint32_t badMagic = 0xdeadbeef;
    patchBytes(p1, 48, &badMagic, sizeof(badMagic));
    expectReject([&] { probeTraceFile(p1); }, "corrupt chunk header");

    const std::string p2 = writeTrace(tmp, recs, "cc.trace");
    const uint64_t badCount = 99;
    patchBytes(p2, 24, &badCount, sizeof(badCount));
    expectReject([&] { probeTraceFile(p2); }, "record count mismatch");
}

TEST(TraceFileTest, RejectsUnfinishedRecording)
{
    TmpDir tmp;
    const std::string path = writeTrace(tmp, sampleRecords(10));
    const uint64_t unfinished = kTraceUnfinished;
    patchBytes(path, 24, &unfinished, sizeof(unfinished));
    expectReject([&] { probeTraceFile(path); }, "unfinished recording");
}

// ----------------------------------------------------------------------
// RecordingSource
// ----------------------------------------------------------------------

TEST(RecordingSourceTest, TeesEveryConsumedRecordExactlyOnce)
{
    TmpDir tmp;
    const auto recs = sampleRecords(1000);
    const std::string path = tmp.file("tee.trace");
    {
        VectorTraceSource inner(recs);
        TraceFileWriter w(path);
        RecordingSource tee(inner, w);

        // Mixed consumption: next, nextBatch, nextSpan, then drain.
        InstRecord r;
        InstRecord buf[64];
        const InstRecord *span = nullptr;
        ASSERT_TRUE(tee.next(r));
        EXPECT_TRUE(sameRec(r, recs[0]));
        ASSERT_EQ(tee.nextBatch(buf, 10), 10u);
        ASSERT_EQ(tee.nextSpan(span, buf, 25), 25u);
        while (tee.next(r)) {
        }
        EXPECT_EQ(w.recordCount(), recs.size());
        w.close();
    }
    MappedTraceSource replay(path);
    InstRecord r;
    size_t i = 0;
    while (replay.next(r)) {
        ASSERT_TRUE(sameRec(r, recs[i])) << i;
        ++i;
    }
    EXPECT_EQ(i, recs.size());
}

TEST(RecordingSourceTest, IsSinglePass)
{
    TmpDir tmp;
    VectorTraceSource inner(sampleRecords(10));
    TraceFileWriter w(tmp.file("x.trace"));
    RecordingSource tee(inner, w);
    InstRecord r;
    tee.next(r);
    EXPECT_FALSE(tee.reset());     // a rewind would re-record
    w.abort();
}

// ----------------------------------------------------------------------
// The prefix contract: next / nextBatch / nextSpan interleave onto
// one stream, same records, same order — for every source.
// ----------------------------------------------------------------------

/** Drain a source through a fixed mixed-call schedule. */
std::vector<InstRecord>
drainInterleaved(TraceSource &src, size_t cap)
{
    std::vector<InstRecord> out;
    InstRecord buf[97];
    const InstRecord *span = nullptr;
    int phase = 0;
    while (out.size() < cap) {
        size_t got = 0;
        switch (phase % 4) {
          case 0: {
            InstRecord r;
            if (src.next(r)) {
                out.push_back(r);
                got = 1;
            }
            break;
          }
          case 1:
            got = src.nextBatch(buf, 7);
            out.insert(out.end(), buf, buf + got);
            break;
          case 2:
            got = src.nextSpan(span, buf, 53);
            out.insert(out.end(), span, span + got);
            break;
          case 3:
            got = src.nextBatch(buf, 97);
            out.insert(out.end(), buf, buf + got);
            break;
        }
        if (got == 0 && phase % 4 == 0)
            break;      // next() said end-of-trace: done
        ++phase;
    }
    return out;
}

/** Drain a source via next() only. */
std::vector<InstRecord>
drainPlain(TraceSource &src, size_t cap)
{
    std::vector<InstRecord> out;
    InstRecord r;
    while (out.size() < cap && src.next(r))
        out.push_back(r);
    return out;
}

void
expectPrefixContract(TraceSource &a, TraceSource &b, size_t cap)
{
    const auto plain = drainPlain(a, cap);
    const auto mixed = drainInterleaved(b, cap);
    ASSERT_GE(mixed.size(), plain.size());
    ASSERT_GE(plain.size(), std::min<size_t>(cap, mixed.size()));
    const size_t n = std::min(plain.size(), mixed.size());
    for (size_t i = 0; i < n; ++i)
        ASSERT_TRUE(sameRec(plain[i], mixed[i])) << "record " << i;
}

TEST(PrefixContractTest, VectorSource)
{
    const auto recs = sampleRecords(2000);
    VectorTraceSource a(recs), b(recs);
    expectPrefixContract(a, b, recs.size());
}

TEST(PrefixContractTest, RandomSource)
{
    RandomTraceParams p;
    p.numInsts = 2000;
    p.seed = 11;
    RandomTraceSource a(p), b(p);
    expectPrefixContract(a, b, p.numInsts);
}

TEST(PrefixContractTest, Interpreter)
{
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "CommBench/tcp.tcp");
    ASSERT_NE(e, nullptr);
    const isa::Program prog = e->build();
    isa::Interpreter a(prog), b(prog);
    expectPrefixContract(a, b, 20000);
}

TEST(PrefixContractTest, FileAndMappedSources)
{
    TmpDir tmp;
    const auto recs =
        sampleRecords(TraceFileWriter::kChunkRecords + 321);
    const std::string path = writeTrace(tmp, recs);

    FileTraceSource fa(path), fb(path);
    expectPrefixContract(fa, fb, recs.size());

    MappedTraceSource ma(path), mb(path);
    expectPrefixContract(ma, mb, recs.size());

    // And across reader kinds: streamed and mapped observe the same
    // stream.
    FileTraceSource fs2(path);
    MappedTraceSource ms2(path);
    expectPrefixContract(fs2, ms2, recs.size());
}

// ----------------------------------------------------------------------
// Text traces
// ----------------------------------------------------------------------

TEST(TextTraceTest, ParsesLenientlyWithDefaults)
{
    std::istringstream in(
        "# hand-made trace\n"
        "\n"
        "load pc=0x400000 addr=0x10000 size=4 dst=3 src=1:2\n"
        "ALU, dst=4, src=3\n"
        "branch taken=1 target=0x400000 bogus=field\n"
        "jmp\n"
        "st addr=64\n");
    const auto recs = parseTextTrace(in, "test");
    ASSERT_EQ(recs.size(), 5u);
    EXPECT_EQ(recs[0].cls, InstClass::Load);
    EXPECT_EQ(recs[0].memAddr, 0x10000u);
    EXPECT_EQ(recs[0].memSize, 4);
    EXPECT_EQ(recs[0].dstReg, 3);
    EXPECT_EQ(recs[0].numSrcRegs, 2);
    EXPECT_EQ(recs[0].srcRegs[0], 1);
    EXPECT_EQ(recs[0].srcRegs[1], 2);
    EXPECT_EQ(recs[1].cls, InstClass::IntAlu);    // commas, case
    EXPECT_EQ(recs[1].dstReg, 4);
    EXPECT_EQ(recs[2].cls, InstClass::Branch);
    EXPECT_TRUE(recs[2].taken);
    EXPECT_EQ(recs[2].target, 0x400000u);
    EXPECT_EQ(recs[3].cls, InstClass::Jump);
    EXPECT_TRUE(recs[3].taken);                   // unconditional default
    EXPECT_EQ(recs[4].cls, InstClass::Store);
    EXPECT_EQ(recs[4].memSize, 8);                // default access size
    // Sequential default PCs where none was given.
    EXPECT_EQ(recs[1].pc, 0x400000u + 4);
    EXPECT_EQ(recs[3].pc, 0x400000u + 12);
}

TEST(TextTraceTest, UnknownClassRejectsWithLineNumber)
{
    std::istringstream in("alu\nwizardry dst=1\n");
    expectReject([&] { parseTextTrace(in, "t.csv"); },
                 "line 2: unknown instruction class 'wizardry'");
}

TEST(TextTraceTest, OpenTraceFileDispatchesOnExtension)
{
    TmpDir tmp;
    std::ofstream(tmp.file("hand.csv")) << "alu dst=1\nload addr=8\n";
    auto text = openTraceFile(tmp.file("hand.csv"));
    InstRecord r;
    ASSERT_TRUE(text->next(r));
    EXPECT_EQ(r.cls, InstClass::IntAlu);

    const std::string bin = writeTrace(tmp, sampleRecords(3));
    auto mapped = openTraceFile(bin, false);
    auto streamed = openTraceFile(bin, true);
    ASSERT_TRUE(mapped->next(r));
    ASSERT_TRUE(streamed->next(r));
}

// ----------------------------------------------------------------------
// Trace directories as benchmarks
// ----------------------------------------------------------------------

TEST(TraceBenchmarksTest, SurfacesNamesAndRegistryOrder)
{
    TmpDir tmp;
    // Deliberately created in anti-registry order; MiBench/sha.large
    // follows CommBench/tcp.tcp in Table I.
    writeTrace(tmp, sampleRecords(10), "MiBench__sha.large.trace");
    writeTrace(tmp, sampleRecords(10), "CommBench__tcp.tcp.trace");
    std::ofstream(tmp.file("zcustom.txt")) << "alu dst=1\n";
    std::ofstream(tmp.file("notes.md")) << "ignored\n";

    const auto entries = workloads::traceBenchmarks(tmp.dir);
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].info.fullName(), "CommBench/tcp.tcp");
    EXPECT_EQ(entries[1].info.fullName(), "MiBench/sha.large");
    // Unknown names trail, in the synthetic "traces" suite.
    EXPECT_EQ(entries[2].info.suite, "traces");
    EXPECT_EQ(entries[2].info.program, "zcustom");

    // Factories open fresh sources positioned at the start.
    for (const auto &e : entries) {
        ASSERT_TRUE(static_cast<bool>(e.source));
        auto src = e.source();
        InstRecord r;
        EXPECT_TRUE(src->next(r));
    }
}

TEST(TraceBenchmarksTest, RejectsCorruptFilesAndMissingDirs)
{
    TmpDir tmp;
    EXPECT_THROW(workloads::traceBenchmarks(tmp.dir + "/nope"),
                 TraceFileError);
    std::ofstream(tmp.file("bad.trace")) << "garbage";
    EXPECT_THROW(workloads::traceBenchmarks(tmp.dir), TraceFileError);
}

TEST(TraceBenchmarksTest, RejectsBudgetBeyondTheRecording)
{
    TmpDir tmp;
    writeTrace(tmp, sampleRecords(500), "CommBench__tcp.tcp.trace");
    // Budget within (or at) the recorded length is fine; 0 means
    // "replay everything recorded".
    EXPECT_EQ(workloads::traceBenchmarks(tmp.dir, false, 500).size(), 1u);
    EXPECT_EQ(workloads::traceBenchmarks(tmp.dir, false, 0).size(), 1u);
    // Beyond it, replay would come up short of direct interpretation.
    expectReject(
        [&] { workloads::traceBenchmarks(tmp.dir, false, 501); },
        "silently diverge");
}

TEST(TraceBenchmarksTest, RejectsDuplicateBenchmarkNames)
{
    TmpDir tmp;
    writeTrace(tmp, sampleRecords(10), "CommBench__tcp.tcp.trace");
    std::ofstream(tmp.file("CommBench__tcp.tcp.csv")) << "alu dst=1\n";
    expectReject([&] { workloads::traceBenchmarks(tmp.dir); },
                 "duplicate trace benchmark 'CommBench/tcp.tcp'");
}

TEST(TraceBenchmarksTest, ContentStampTracksTraceBytes)
{
    TmpDir tmp;
    writeTrace(tmp, sampleRecords(100, 1), "CommBench__tcp.tcp.trace");
    uint64_t s1 = 0, s2 = 0, s3 = 0;
    workloads::traceBenchmarks(tmp.dir, false, 0, &s1);
    workloads::traceBenchmarks(tmp.dir, false, 0, &s2);
    EXPECT_EQ(s1, s2);      // stable for unchanged contents
    // Re-record the same benchmark with different records: the name
    // is identical but the stamp must move (this is what keys the
    // profile store to trace contents, not the directory path).
    writeTrace(tmp, sampleRecords(100, 2), "CommBench__tcp.tcp.trace");
    workloads::traceBenchmarks(tmp.dir, false, 0, &s3);
    EXPECT_NE(s1, s3);
}

// ----------------------------------------------------------------------
// The load-bearing contract: replayed profiles are byte-identical to
// interpreting the program directly, for every analyzer, at any
// batch path, through either reader.
// ----------------------------------------------------------------------

void
expectProfilesIdentical(const MicaProfile &a, const MicaProfile &b)
{
    EXPECT_EQ(a.instCount, b.instCount);
    for (size_t i = 0; i < kNumMicaChars; ++i)
        EXPECT_EQ(a.values[i], b.values[i]) << "characteristic " << i;
}

TEST(TraceReplayTest, ReplayedProfilesMatchInterpreterBitForBit)
{
    TmpDir tmp;
    MicaRunnerConfig rc;
    rc.maxInsts = 30000;
    for (const char *name : {"CommBench/tcp.tcp", "MiBench/sha.large",
                             "SPEC2000/gzip.log"}) {
        const auto *e =
            workloads::BenchmarkRegistry::instance().find(name);
        ASSERT_NE(e, nullptr) << name;
        const isa::Program prog = e->build();

        // Record under the same budget the profiling run uses.
        const std::string path = tmp.file("r.trace");
        {
            isa::Interpreter interp(prog);
            TraceFileWriter w(path);
            RecordingSource tee(interp, w);
            std::vector<InstRecord> buf(1024);
            uint64_t n = 0;
            const InstRecord *span = nullptr;
            size_t got;
            while (n < rc.maxInsts &&
                   (got = tee.nextSpan(
                        span, buf.data(),
                        std::min<uint64_t>(buf.size(),
                                           rc.maxInsts - n))) != 0)
                n += got;
            w.close();
        }

        isa::Interpreter direct(prog);
        const MicaProfile ref = collectMicaProfile(direct, name, rc);

        FileTraceSource streamed(path);
        expectProfilesIdentical(
            collectMicaProfile(streamed, name, rc), ref);

        MappedTraceSource mapped(path);
        expectProfilesIdentical(collectMicaProfile(mapped, name, rc),
                                ref);

        // The per-record reference engine path sees the same stream.
        MicaRunnerConfig perRecord = rc;
        perRecord.engineBatch = 0;
        MappedTraceSource mapped2(path);
        expectProfilesIdentical(
            collectMicaProfile(mapped2, name, perRecord), ref);

        // And the HPC characterization.
        direct.reset();
        const auto hpcRef =
            uarch::collectHwProfile(direct, name, rc.maxInsts);
        ASSERT_TRUE(mapped.reset());
        const auto hpcReplay =
            uarch::collectHwProfile(mapped, name, rc.maxInsts);
        const auto va = hpcRef.toVector(), vb = hpcReplay.toVector();
        ASSERT_EQ(va.size(), vb.size());
        for (size_t i = 0; i < va.size(); ++i)
            EXPECT_EQ(va[i], vb[i]) << "hpc metric " << i;
    }
}

TEST(TraceReplayTest, DatasetFromTracesMatchesDirectAndIsJobsInvariant)
{
    TmpDir tmp;
    const std::string traceDir = tmp.dir + "/traces";
    const uint64_t budget = 20000;

    // Record two registry benchmarks the way `mica trace record` does.
    for (const char *name : {"CommBench/tcp.tcp", "CommBench/frag.frag"}) {
        const auto *e =
            workloads::BenchmarkRegistry::instance().find(name);
        ASSERT_NE(e, nullptr);
        std::string stem = name;
        stem.replace(stem.find('/'), 1, "__");
        const isa::Program prog = e->build();
        isa::Interpreter interp(prog);
        TraceFileWriter w(traceDir + "/" + stem + ".trace");
        RecordingSource tee(interp, w);
        std::vector<InstRecord> buf(1024);
        uint64_t n = 0;
        const InstRecord *span = nullptr;
        size_t got;
        while (n < budget &&
               (got = tee.nextSpan(span, buf.data(),
                                   std::min<uint64_t>(
                                       buf.size(), budget - n))) != 0)
            n += got;
        w.close();
    }

    experiments::DatasetConfig direct;
    direct.maxInsts = budget;
    direct.suites = {"CommBench"};
    auto directDs = experiments::collectSuiteDataset(direct);

    experiments::DatasetConfig replay;
    replay.maxInsts = budget;
    replay.traceDir = traceDir;
    auto replayDs = experiments::collectSuiteDataset(replay);

    ASSERT_EQ(replayDs.benchmarks.size(), 2u);
    for (size_t r = 0; r < replayDs.benchmarks.size(); ++r) {
        const size_t d =
            directDs.indexOf(replayDs.benchmarks[r].fullName());
        ASSERT_NE(d, static_cast<size_t>(-1));
        expectProfilesIdentical(replayDs.micaProfiles[r],
                                directDs.micaProfiles[d]);
    }

    // jobs=8 and the streamed reader replay the identical dataset.
    experiments::DatasetConfig replay8 = replay;
    replay8.jobs = 8;
    replay8.traceStream = true;
    auto replay8Ds = experiments::collectSuiteDataset(replay8);
    ASSERT_EQ(replay8Ds.benchmarks.size(), replayDs.benchmarks.size());
    for (size_t r = 0; r < replayDs.benchmarks.size(); ++r) {
        expectProfilesIdentical(replay8Ds.micaProfiles[r],
                                replayDs.micaProfiles[r]);
        const auto va = replayDs.hpcProfiles[r].toVector();
        const auto vb = replay8Ds.hpcProfiles[r].toVector();
        for (size_t i = 0; i < va.size(); ++i)
            EXPECT_EQ(va[i], vb[i]);
    }
}

TEST(TraceReplayTest, ReRecordedTraceInvalidatesTheProfileStore)
{
    TmpDir tmp;
    const std::string traceDir = tmp.dir + "/traces";
    const std::string cacheDir = tmp.dir + "/cache";
    const auto *e = workloads::BenchmarkRegistry::instance().find(
        "CommBench/tcp.tcp");
    ASSERT_NE(e, nullptr);
    const isa::Program prog = e->build();

    auto record = [&](uint64_t budget) {
        isa::Interpreter interp(prog);
        TraceFileWriter w(traceDir + "/CommBench__tcp.tcp.trace");
        RecordingSource tee(interp, w);
        std::vector<InstRecord> buf(1024);
        uint64_t n = 0;
        const InstRecord *span = nullptr;
        size_t got;
        while (n < budget &&
               (got = tee.nextSpan(span, buf.data(),
                                   std::min<uint64_t>(
                                       buf.size(), budget - n))) != 0)
            n += got;
        w.close();
    };

    experiments::DatasetConfig cfg;
    cfg.traceDir = traceDir;
    cfg.cacheDir = cacheDir;    // budget 0: replay whatever is there

    record(15000);
    const auto first = experiments::collectSuiteDataset(cfg);
    ASSERT_EQ(first.micaProfiles.size(), 1u);
    EXPECT_EQ(first.micaProfiles[0].instCount, 15000u);

    // Same directory, same config — but the trace bytes changed. The
    // content-keyed store must re-profile, not serve the stale 15000-
    // record profile.
    record(18000);
    const auto second = experiments::collectSuiteDataset(cfg);
    ASSERT_EQ(second.micaProfiles.size(), 1u);
    EXPECT_EQ(second.micaProfiles[0].instCount, 18000u);
}

TEST(TraceReplayTest, UnknownSuiteFilterRejectsInsteadOfEmptyDataset)
{
    experiments::DatasetConfig cfg;
    cfg.maxInsts = 1000;
    cfg.suites = {"CommBnech"};     // typo'd suite
    EXPECT_THROW(experiments::collectSuiteDataset(cfg),
                 std::invalid_argument);
}

TEST(TraceReplayTest, StoreKeySeparatesTraceAndInterpreterRuns)
{
    pipeline::StoreKey interp;
    interp.maxInsts = 1000;
    pipeline::StoreKey traced = interp;
    traced.traceDir = "some/dir";
    EXPECT_NE(interp.describe(), traced.describe());
    // Interpreter-keyed stores keep their pre-trace-era key strings.
    EXPECT_EQ(interp.describe().find("traces="), std::string::npos);
}

} // namespace
} // namespace mica
