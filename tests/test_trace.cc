/**
 * @file
 * Tests for the trace substrate: InstRecord predicates, the analysis
 * engine, and the synthetic trace sources.
 */

#include <gtest/gtest.h>

#include "test_util.hh"
#include "trace/engine.hh"
#include "trace/inst_record.hh"
#include "trace/synthetic.hh"

namespace mica
{
namespace
{

using test::Rec;

TEST(InstClassTest, ControlClassesAreExactlyTheFourTransferKinds)
{
    EXPECT_TRUE(isControlClass(InstClass::Branch));
    EXPECT_TRUE(isControlClass(InstClass::Jump));
    EXPECT_TRUE(isControlClass(InstClass::Call));
    EXPECT_TRUE(isControlClass(InstClass::Return));
    EXPECT_FALSE(isControlClass(InstClass::IntAlu));
    EXPECT_FALSE(isControlClass(InstClass::Load));
    EXPECT_FALSE(isControlClass(InstClass::Store));
    EXPECT_FALSE(isControlClass(InstClass::Nop));
}

TEST(InstClassTest, FpClassesCoverAluMulDiv)
{
    EXPECT_TRUE(isFpClass(InstClass::FpAlu));
    EXPECT_TRUE(isFpClass(InstClass::FpMul));
    EXPECT_TRUE(isFpClass(InstClass::FpDiv));
    EXPECT_FALSE(isFpClass(InstClass::IntMul));
    EXPECT_FALSE(isFpClass(InstClass::Load));
}

TEST(InstClassTest, IntArithExcludesMultiplies)
{
    EXPECT_TRUE(isIntArithClass(InstClass::IntAlu));
    EXPECT_TRUE(isIntArithClass(InstClass::IntDiv));
    EXPECT_FALSE(isIntArithClass(InstClass::IntMul));
    EXPECT_FALSE(isIntArithClass(InstClass::FpAlu));
}

TEST(InstRecordTest, DefaultRecordIsInertNop)
{
    InstRecord r;
    EXPECT_EQ(r.cls, InstClass::Nop);
    EXPECT_FALSE(r.isMem());
    EXPECT_FALSE(r.isControl());
    EXPECT_FALSE(r.isCondBranch());
    EXPECT_FALSE(r.hasDst());
    EXPECT_EQ(r.numSrcRegs, 0);
}

TEST(InstRecordTest, MemPredicatesMatchLoadAndStoreOnly)
{
    EXPECT_TRUE(test::load(0x100).isMem());
    EXPECT_TRUE(test::store(0x100).isMem());
    EXPECT_FALSE(test::alu(1).isMem());
    EXPECT_FALSE(test::branch(0x10, true).isMem());
}

TEST(InstRecordTest, OnlyConditionalBranchesAreCondBranches)
{
    EXPECT_TRUE(test::branch(0x10, false).isCondBranch());
    Rec jump(InstClass::Jump);
    jump.taken(true);
    EXPECT_FALSE(InstRecord(jump).isCondBranch());
    EXPECT_TRUE(InstRecord(jump).isControl());
}

TEST(InstRecordTest, HasDstTracksInvalidSentinel)
{
    EXPECT_TRUE(test::alu(5).hasDst());
    EXPECT_FALSE(test::alu(kInvalidReg).hasDst());
}

TEST(VectorTraceSourceTest, ReplaysRecordsInOrder)
{
    VectorTraceSource src({test::alu(1), test::load(0x40),
                           test::store(0x80)});
    InstRecord r;
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.cls, InstClass::IntAlu);
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.cls, InstClass::Load);
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.cls, InstClass::Store);
    EXPECT_FALSE(src.next(r));
}

TEST(VectorTraceSourceTest, ResetRewindsToTheBeginning)
{
    VectorTraceSource src({test::alu(1), test::alu(2)});
    InstRecord r;
    while (src.next(r)) {
    }
    EXPECT_TRUE(src.reset());
    int n = 0;
    while (src.next(r))
        ++n;
    EXPECT_EQ(n, 2);
}

TEST(VectorTraceSourceTest, PushAppendsRecords)
{
    VectorTraceSource src;
    EXPECT_EQ(src.size(), 0u);
    src.push(test::alu(1));
    src.push(test::alu(2));
    EXPECT_EQ(src.size(), 2u);
}

/** Counts accepts and finishes for engine tests. */
class CountingAnalyzer : public TraceAnalyzer
{
  public:
    void accept(const InstRecord &) override { ++accepts; }
    void finish() override { ++finishes; }

    int accepts = 0;
    int finishes = 0;
};

TEST(AnalysisEngineTest, BroadcastsEveryRecordToEveryAnalyzer)
{
    VectorTraceSource src({test::alu(1), test::alu(2), test::alu(3)});
    CountingAnalyzer a, b;
    AnalysisEngine eng;
    eng.add(&a);
    eng.add(&b);
    EXPECT_EQ(eng.numAnalyzers(), 2u);
    EXPECT_EQ(eng.run(src), 3u);
    EXPECT_EQ(a.accepts, 3);
    EXPECT_EQ(b.accepts, 3);
}

TEST(AnalysisEngineTest, FinishIsCalledExactlyOnce)
{
    VectorTraceSource src({test::alu(1)});
    CountingAnalyzer a;
    AnalysisEngine eng;
    eng.add(&a);
    eng.run(src);
    EXPECT_EQ(a.finishes, 1);
}

TEST(AnalysisEngineTest, BudgetTruncatesTheTrace)
{
    std::vector<InstRecord> recs(100, test::alu(1));
    VectorTraceSource src(recs);
    CountingAnalyzer a;
    AnalysisEngine eng;
    eng.add(&a);
    EXPECT_EQ(eng.run(src, 42), 42u);
    EXPECT_EQ(a.accepts, 42);
}

TEST(AnalysisEngineTest, ZeroBudgetMeansUnlimited)
{
    std::vector<InstRecord> recs(57, test::alu(1));
    VectorTraceSource src(recs);
    CountingAnalyzer a;
    AnalysisEngine eng;
    eng.add(&a);
    EXPECT_EQ(eng.run(src, 0), 57u);
}

TEST(AnalysisEngineTest, ClearRemovesAnalyzers)
{
    AnalysisEngine eng;
    CountingAnalyzer a;
    eng.add(&a);
    eng.clear();
    EXPECT_EQ(eng.numAnalyzers(), 0u);
    VectorTraceSource src({test::alu(1)});
    eng.run(src);
    EXPECT_EQ(a.accepts, 0);
}

TEST(RandomTraceSourceTest, ProducesExactlyNumInsts)
{
    RandomTraceParams p;
    p.numInsts = 1234;
    RandomTraceSource src(p);
    InstRecord r;
    uint64_t n = 0;
    while (src.next(r))
        ++n;
    EXPECT_EQ(n, 1234u);
}

TEST(RandomTraceSourceTest, SameSeedSameTrace)
{
    RandomTraceParams p;
    p.numInsts = 500;
    p.seed = 77;
    RandomTraceSource a(p), b(p);
    InstRecord ra, rb;
    while (a.next(ra)) {
        ASSERT_TRUE(b.next(rb));
        EXPECT_EQ(ra.pc, rb.pc);
        EXPECT_EQ(ra.cls, rb.cls);
        EXPECT_EQ(ra.memAddr, rb.memAddr);
        EXPECT_EQ(ra.taken, rb.taken);
    }
    EXPECT_FALSE(b.next(rb));
}

TEST(RandomTraceSourceTest, DifferentSeedsDiffer)
{
    RandomTraceParams pa, pb;
    pa.numInsts = pb.numInsts = 400;
    pa.seed = 1;
    pb.seed = 2;
    RandomTraceSource a(pa), b(pb);
    InstRecord ra, rb;
    int differences = 0;
    while (a.next(ra) && b.next(rb)) {
        if (ra.cls != rb.cls || ra.memAddr != rb.memAddr)
            ++differences;
    }
    EXPECT_GT(differences, 0);
}

TEST(RandomTraceSourceTest, ResetReproducesTheTrace)
{
    RandomTraceParams p;
    p.numInsts = 300;
    p.seed = 5;
    RandomTraceSource src(p);
    std::vector<InstRecord> first;
    InstRecord r;
    while (src.next(r))
        first.push_back(r);
    EXPECT_TRUE(src.reset());
    size_t i = 0;
    while (src.next(r)) {
        ASSERT_LT(i, first.size());
        EXPECT_EQ(r.pc, first[i].pc);
        EXPECT_EQ(r.cls, first[i].cls);
        ++i;
    }
    EXPECT_EQ(i, first.size());
}

/** Property sweep over generator mixes: class fractions track params. */
class RandomTraceMixTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>>
{};

TEST_P(RandomTraceMixTest, ClassFractionsTrackParameters)
{
    const auto [pLoad, pStore, pBranch] = GetParam();
    RandomTraceParams p;
    p.numInsts = 40000;
    p.seed = 99;
    p.pLoad = pLoad;
    p.pStore = pStore;
    p.pBranch = pBranch;
    p.pFp = 0.0;
    p.pIntMul = 0.0;
    RandomTraceSource src(p);
    InstRecord r;
    uint64_t loads = 0, stores = 0, branches = 0, n = 0;
    while (src.next(r)) {
        ++n;
        loads += r.cls == InstClass::Load;
        stores += r.cls == InstClass::Store;
        branches += r.cls == InstClass::Branch;
    }
    const double tol = 0.02;
    EXPECT_NEAR(double(loads) / double(n), pLoad, tol);
    EXPECT_NEAR(double(stores) / double(n), pStore, tol);
    EXPECT_NEAR(double(branches) / double(n), pBranch, tol);
}

INSTANTIATE_TEST_SUITE_P(
    MixSweep, RandomTraceMixTest,
    ::testing::Values(std::make_tuple(0.1, 0.05, 0.1),
                      std::make_tuple(0.3, 0.15, 0.05),
                      std::make_tuple(0.5, 0.2, 0.2),
                      std::make_tuple(0.0, 0.0, 0.5)));

TEST(VectorTraceSourceTest, NextBatchDrainsInChunks)
{
    std::vector<InstRecord> recs(10, test::alu(1));
    VectorTraceSource src(recs);
    InstRecord buf[4];
    EXPECT_EQ(src.nextBatch(buf, 4), 4u);
    EXPECT_EQ(src.nextBatch(buf, 4), 4u);
    EXPECT_EQ(src.nextBatch(buf, 4), 2u);   // partial final batch
    EXPECT_EQ(src.nextBatch(buf, 4), 0u);   // exhausted
}

TEST(VectorTraceSourceTest, NextBatchInterleavesWithNext)
{
    VectorTraceSource src({test::alu(1), test::alu(2), test::alu(3),
                           test::alu(4)});
    InstRecord r;
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.dstReg, 1);
    InstRecord buf[2];
    ASSERT_EQ(src.nextBatch(buf, 2), 2u);
    EXPECT_EQ(buf[0].dstReg, 2);
    EXPECT_EQ(buf[1].dstReg, 3);
    ASSERT_TRUE(src.next(r));
    EXPECT_EQ(r.dstReg, 4);
    EXPECT_FALSE(src.next(r));
}

TEST(VectorTraceSourceTest, NextSpanBorrowsWithoutCopying)
{
    VectorTraceSource src({test::alu(1), test::alu(2), test::alu(3)});
    InstRecord backing[8];
    const InstRecord *span = nullptr;
    EXPECT_EQ(src.nextSpan(span, backing, 8), 3u);
    // The span points into the source's own storage, not at the
    // caller's backing buffer.
    EXPECT_NE(span, backing);
    EXPECT_EQ(span[0].dstReg, 1);
    EXPECT_EQ(span[2].dstReg, 3);
    EXPECT_EQ(src.nextSpan(span, backing, 8), 0u);
}

TEST(RandomTraceSourceTest, NextBatchMatchesNext)
{
    RandomTraceParams p;
    p.numInsts = 1000;
    p.seed = 3;
    RandomTraceSource a(p), b(p);
    std::vector<InstRecord> viaNext;
    InstRecord r;
    while (a.next(r))
        viaNext.push_back(r);
    std::vector<InstRecord> viaBatch(p.numInsts + 10);
    size_t got = 0, n = 0;
    while ((got = b.nextBatch(viaBatch.data() + n, 77)) != 0)
        n += got;
    ASSERT_EQ(n, viaNext.size());
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(viaBatch[i].pc, viaNext[i].pc);
        EXPECT_EQ(viaBatch[i].cls, viaNext[i].cls);
        EXPECT_EQ(viaBatch[i].memAddr, viaNext[i].memAddr);
        EXPECT_EQ(viaBatch[i].taken, viaNext[i].taken);
    }
}

TEST(AnalysisEngineTest, BatchedRunMatchesPerRecordCounts)
{
    for (size_t bs : {size_t(1), size_t(3), size_t(100),
                      AnalysisEngine::kDefaultBatchSize}) {
        std::vector<InstRecord> recs(101, test::alu(1));
        VectorTraceSource src(recs);
        CountingAnalyzer a;
        AnalysisEngine eng;
        eng.add(&a);
        eng.setBatchSize(bs);
        EXPECT_EQ(eng.run(src), 101u) << "batch=" << bs;
        EXPECT_EQ(a.accepts, 101) << "batch=" << bs;
        EXPECT_EQ(a.finishes, 1) << "batch=" << bs;
    }
}

TEST(AnalysisEngineTest, BatchedBudgetCutsMidBatch)
{
    std::vector<InstRecord> recs(100, test::alu(1));
    VectorTraceSource src(recs);
    CountingAnalyzer a;
    AnalysisEngine eng;
    eng.add(&a);
    eng.setBatchSize(8);
    EXPECT_EQ(eng.run(src, 42), 42u);   // 42 is not a multiple of 8
    EXPECT_EQ(a.accepts, 42);
}

TEST(AnalysisEngineTest, ZeroBatchSizeClampsToOne)
{
    AnalysisEngine eng;
    eng.setBatchSize(0);
    EXPECT_EQ(eng.batchSize(), 1u);
    std::vector<InstRecord> recs(5, test::alu(1));
    VectorTraceSource src(recs);
    CountingAnalyzer a;
    eng.add(&a);
    EXPECT_EQ(eng.run(src), 5u);
    EXPECT_EQ(a.accepts, 5);
}

TEST(AnalysisEngineTest, RunPerRecordIsTheReferencePath)
{
    std::vector<InstRecord> recs(57, test::alu(1));
    VectorTraceSource src(recs);
    CountingAnalyzer a;
    AnalysisEngine eng;
    eng.add(&a);
    EXPECT_EQ(eng.runPerRecord(src), 57u);
    EXPECT_EQ(a.accepts, 57);
    EXPECT_EQ(a.finishes, 1);
}

/** Records how accept/acceptBatch were invoked. */
class BatchSpyAnalyzer : public TraceAnalyzer
{
  public:
    void accept(const InstRecord &) override { ++singles; }

    void
    acceptBatch(const InstRecord *recs, size_t n) override
    {
        batchSizes.push_back(n);
        TraceAnalyzer::acceptBatch(recs, n);
    }

    int singles = 0;
    std::vector<size_t> batchSizes;
};

TEST(AnalysisEngineTest, BatchedRunDeliversSpans)
{
    std::vector<InstRecord> recs(10, test::alu(1));
    VectorTraceSource src(recs);
    BatchSpyAnalyzer a;
    AnalysisEngine eng;
    eng.add(&a);
    eng.setBatchSize(4);
    eng.run(src);
    EXPECT_EQ(a.batchSizes, (std::vector<size_t>{4, 4, 2}));
    // The default acceptBatch forwarded every record to accept().
    EXPECT_EQ(a.singles, 10);
}

TEST(RandomTraceSourceTest, FootprintBoundsDataAddresses)
{
    RandomTraceParams p;
    p.numInsts = 20000;
    p.dataFootprint = 4096;
    RandomTraceSource src(p);
    InstRecord r;
    while (src.next(r)) {
        if (r.isMem()) {
            EXPECT_GE(r.memAddr, RandomTraceSource::kDataBase);
            EXPECT_LT(r.memAddr,
                      RandomTraceSource::kDataBase + p.dataFootprint + 8);
        }
    }
}

} // namespace
} // namespace mica
