/**
 * @file
 * Tests for the strict CLI flag parser the mica front end validates
 * argv with: known flags parse into (name, value) pairs, anything
 * unknown is rejected with an error that names the flag.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/arg_parse.hh"

namespace mica::util
{
namespace
{

/** Build a mutable argv from string literals. */
struct Argv
{
    std::vector<std::string> store;
    std::vector<char *> ptrs;

    explicit Argv(std::initializer_list<const char *> args)
    {
        store.assign(args.begin(), args.end());
        for (auto &s : store)
            ptrs.push_back(s.data());
    }

    int argc() const { return static_cast<int>(ptrs.size()); }

    char **argv() { return ptrs.data(); }
};

// Trailing '=' marks value-taking flags; "quick" is bare.
const std::vector<std::string> kKnown = {"budget=", "cache=", "jobs=",
                                         "quick"};

TEST(ArgParseTest, SplitsPositionalsAndFlags)
{
    Argv a({"mica", "profile", "all", "--budget=5000", "--quick",
            "--cache=/tmp/store"});
    const CliArgs r = parseCliArgs(a.argc(), a.argv(), kKnown);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.positionals,
              (std::vector<std::string>{"profile", "all"}));
    EXPECT_EQ(r.value("budget"), "5000");
    EXPECT_EQ(r.value("cache"), "/tmp/store");
    EXPECT_TRUE(r.has("quick"));
    EXPECT_EQ(r.value("quick"), "");
    EXPECT_FALSE(r.has("jobs"));
    EXPECT_EQ(r.value("jobs", "fallback"), "fallback");
}

TEST(ArgParseTest, RejectsUnknownFlagNamingIt)
{
    Argv a({"mica", "cluster", "--mask=40"});
    const CliArgs r = parseCliArgs(a.argc(), a.argv(), kKnown);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("--mask"), std::string::npos);
    EXPECT_NE(r.error.find("--budget"), std::string::npos);    // accepted list
    // The value is not part of the reported name.
    EXPECT_EQ(r.error.find("=40"), std::string::npos);
}

TEST(ArgParseTest, RejectsSingleDashOptions)
{
    Argv a({"mica", "list", "-j4"});
    const CliArgs r = parseCliArgs(a.argc(), a.argv(), kKnown);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("-j4"), std::string::npos);
}

TEST(ArgParseTest, FlagPrefixOfAKnownFlagIsStillUnknown)
{
    Argv a({"mica", "profile", "--budge=1"});
    EXPECT_FALSE(parseCliArgs(a.argc(), a.argv(), kKnown).ok());
    Argv b({"mica", "profile", "--budgets=1"});
    EXPECT_FALSE(parseCliArgs(b.argc(), b.argv(), kKnown).ok());
}

TEST(ArgParseTest, IntValueParsesStrictDecimals)
{
    Argv a({"mica", "x", "--budget=123", "--cache=12abc", "--jobs=-4"});
    const CliArgs r = parseCliArgs(a.argc(), a.argv(), kKnown);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.intValue("budget", 7), 123);
    EXPECT_EQ(r.intValue("cache", 7), 7);    // trailing garbage
    EXPECT_EQ(r.intValue("jobs", 7), 7);     // negative
    EXPECT_EQ(r.intValue("absent", 9), 9);
    // intOk distinguishes "absent" (fine) from "present but garbage"
    // (callers reject instead of silently using the fallback).
    EXPECT_TRUE(r.intOk("budget"));
    EXPECT_TRUE(r.intOk("absent"));
    EXPECT_FALSE(r.intOk("cache"));
    EXPECT_FALSE(r.intOk("jobs"));
}

TEST(ArgParseTest, BareFlagRejectsAValue)
{
    // "--quick=50000" must not silently mean quick mode off (nor
    // "--brute=false" mean brute mode on).
    Argv a({"mica", "profile", "all", "--quick=50000"});
    const CliArgs r = parseCliArgs(a.argc(), a.argv(), kKnown);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("--quick"), std::string::npos);
    EXPECT_NE(r.error.find("takes no value"), std::string::npos);
}

TEST(ArgParseTest, ValueFlagRejectsBareForm)
{
    // "--cache /tmp/x" (space instead of '=') must not silently run
    // uncached with "/tmp/x" as a stray positional.
    Argv a({"mica", "cluster", "--cache", "/tmp/x"});
    const CliArgs r = parseCliArgs(a.argc(), a.argv(), kKnown);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error.find("--cache"), std::string::npos);
    EXPECT_NE(r.error.find("needs a value"), std::string::npos);
}

TEST(ArgParseTest, RepeatedFlagLastWins)
{
    Argv a({"mica", "x", "--budget=5", "--budget=9"});
    const CliArgs r = parseCliArgs(a.argc(), a.argv(), kKnown);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value("budget"), "9");
    EXPECT_EQ(r.intValue("budget", 0), 9);
}

TEST(ArgParseTest, LoneDashAndEmptyValueEdgeCases)
{
    Argv a({"mica", "x", "-", "--cache="});
    const CliArgs r = parseCliArgs(a.argc(), a.argv(), kKnown);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.positionals, (std::vector<std::string>{"x", "-"}));
    EXPECT_TRUE(r.has("cache"));
    EXPECT_EQ(r.value("cache"), "");
}

} // namespace
} // namespace mica::util
