/**
 * @file
 * Unit tests for the open-addressing flat hash containers backing the
 * analyzer hot paths: growth, insert/find semantics, the hashed entry
 * points, move-only values, and collision stress with degenerate key
 * patterns under every hash policy.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/flat_hash.hh"

namespace mica::util
{
namespace
{

TEST(FlatHashMapTest, EmptyMapFindsNothing)
{
    FlatHashMap<uint64_t, uint64_t> m;
    EXPECT_EQ(m.size(), 0u);
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(0), nullptr);
    EXPECT_EQ(m.find(42), nullptr);
    EXPECT_FALSE(m.contains(42));
}

TEST(FlatHashMapTest, InsertFindRoundTrip)
{
    FlatHashMap<uint64_t, uint64_t> m;
    auto [v, inserted] = m.tryEmplace(7, 70);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(*v, 70u);
    EXPECT_EQ(m.size(), 1u);
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 70u);
    EXPECT_EQ(m.find(8), nullptr);
}

TEST(FlatHashMapTest, TryEmplaceDoesNotOverwrite)
{
    FlatHashMap<uint64_t, uint64_t> m;
    m.tryEmplace(7, 70);
    auto [v, inserted] = m.tryEmplace(7, 99);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(*v, 70u);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMapTest, BracketValueInitializesMissingEntries)
{
    FlatHashMap<uint64_t, int8_t> m;
    EXPECT_EQ(m[123], 0);
    m[123] = 4;
    EXPECT_EQ(m[123], 4);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatHashMapTest, ZeroKeyIsAnOrdinaryKey)
{
    // PPM order-0 contexts hash to key 0; it must behave like any key.
    FlatHashMap<uint64_t, uint64_t> m;
    EXPECT_EQ(m.find(0), nullptr);
    m[0] = 17;
    ASSERT_NE(m.find(0), nullptr);
    EXPECT_EQ(*m.find(0), 17u);
}

TEST(FlatHashMapTest, GrowthPreservesAllEntries)
{
    FlatHashMap<uint64_t, uint64_t> m;
    constexpr uint64_t kN = 20000;
    for (uint64_t i = 0; i < kN; ++i)
        m[i * 31 + 1] = i;
    EXPECT_EQ(m.size(), kN);
    for (uint64_t i = 0; i < kN; ++i) {
        ASSERT_NE(m.find(i * 31 + 1), nullptr) << i;
        EXPECT_EQ(*m.find(i * 31 + 1), i);
    }
    EXPECT_EQ(m.find(2), nullptr);
}

TEST(FlatHashMapTest, MatchesUnorderedMapUnderRandomOps)
{
    FlatHashMap<uint64_t, uint64_t> m;
    std::unordered_map<uint64_t, uint64_t> ref;
    uint64_t state = 0x1234'5678'9abc'def0ull;
    for (int i = 0; i < 50000; ++i) {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        const uint64_t key = state % 4096;   // force collisions/hits
        const uint64_t val = state >> 32;
        m.tryEmplace(key, val);
        ref.try_emplace(key, val);
    }
    EXPECT_EQ(m.size(), ref.size());
    for (const auto &[k, v] : ref) {
        ASSERT_NE(m.find(k), nullptr);
        EXPECT_EQ(*m.find(k), v);
    }
}

/** Degenerate key families that punish weak table hashing. */
std::vector<std::vector<uint64_t>>
degenerateKeySets()
{
    std::vector<std::vector<uint64_t>> sets;
    std::vector<uint64_t> pages;        // multiples of a power of two
    std::vector<uint64_t> highBits;     // differ only in high bits
    std::vector<uint64_t> lowClustered; // tiny dense range
    for (uint64_t i = 0; i < 3000; ++i) {
        pages.push_back(i * 4096);
        highBits.push_back(i << 40);
        lowClustered.push_back(i);
    }
    sets.push_back(std::move(pages));
    sets.push_back(std::move(highBits));
    sets.push_back(std::move(lowClustered));
    return sets;
}

template <typename Map>
void
collisionStress(const std::vector<uint64_t> &keys)
{
    Map m;
    for (size_t i = 0; i < keys.size(); ++i)
        m[keys[i]] = i;
    ASSERT_EQ(m.size(), keys.size());
    for (size_t i = 0; i < keys.size(); ++i) {
        ASSERT_NE(m.find(keys[i]), nullptr);
        EXPECT_EQ(*m.find(keys[i]), i);
    }
}

TEST(FlatHashMapTest, CollisionStressDegenerateKeysMixHash)
{
    for (const auto &keys : degenerateKeySets())
        collisionStress<FlatHashMap<uint64_t, uint64_t, MixHash>>(keys);
}

TEST(FlatHashMapTest, CollisionStressDegenerateKeysMulHash)
{
    for (const auto &keys : degenerateKeySets())
        collisionStress<FlatHashMap<uint64_t, uint64_t, MulHash>>(keys);
}

TEST(FlatHashMapTest, CollisionStressDegenerateKeysPremixedHash)
{
    // Identity hashing degrades to long probe runs on clustered keys
    // but must stay correct.
    for (const auto &keys : degenerateKeySets())
        collisionStress<FlatHashMap<uint64_t, uint64_t, PremixedHash>>(
            keys);
}

TEST(FlatHashMapTest, MoveOnlyValuesSurviveGrowth)
{
    FlatHashMap<uint64_t, std::unique_ptr<uint64_t>> m;
    for (uint64_t i = 0; i < 500; ++i)
        m.tryEmplace(i, std::make_unique<uint64_t>(i * 3));
    EXPECT_EQ(m.size(), 500u);
    for (uint64_t i = 0; i < 500; ++i) {
        ASSERT_NE(m.find(i), nullptr);
        ASSERT_NE(*m.find(i), nullptr);
        EXPECT_EQ(**m.find(i), i * 3);
    }
    // operator[] default-constructs a null pointer.
    EXPECT_EQ(m[777], nullptr);
}

TEST(FlatHashMapTest, ReserveAvoidsRehashAndKeepsSemantics)
{
    FlatHashMap<uint64_t, uint64_t> m;
    m.reserve(1000);
    const size_t cap = m.capacity();
    EXPECT_GE(cap, 1000u);
    for (uint64_t i = 0; i < 1000; ++i)
        m[i] = i;
    EXPECT_EQ(m.capacity(), cap);    // no growth needed
    EXPECT_EQ(m.size(), 1000u);
}

TEST(FlatHashMapTest, ClearEmptiesTheMap)
{
    FlatHashMap<uint64_t, uint64_t> m;
    for (uint64_t i = 0; i < 100; ++i)
        m[i] = i;
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.find(5), nullptr);
    m[5] = 50;    // usable after clear
    EXPECT_EQ(*m.find(5), 50u);
}

TEST(FlatHashSetTest, InsertReportsNewness)
{
    FlatHashSet<uint64_t> s;
    EXPECT_TRUE(s.insert(9));
    EXPECT_FALSE(s.insert(9));
    EXPECT_TRUE(s.insert(10));
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.contains(9));
    EXPECT_TRUE(s.contains(10));
    EXPECT_FALSE(s.contains(11));
}

TEST(FlatHashSetTest, MatchesUnorderedSetUnderStress)
{
    FlatHashSet<uint64_t, MulHash> s;
    std::unordered_set<uint64_t> ref;
    uint64_t state = 99;
    for (int i = 0; i < 60000; ++i) {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        const uint64_t key = (state * 0x2545f4914f6cdd1dull) % 8192;
        EXPECT_EQ(s.insert(key), ref.insert(key).second);
    }
    EXPECT_EQ(s.size(), ref.size());
    for (uint64_t k : ref)
        EXPECT_TRUE(s.contains(k));
}

TEST(FlatHashSetTest, GrowthKeepsDegenerateKeys)
{
    FlatHashSet<uint64_t> s;
    for (uint64_t i = 0; i < 4000; ++i)
        s.insert(i << 12);    // page-aligned addresses
    EXPECT_EQ(s.size(), 4000u);
    for (uint64_t i = 0; i < 4000; ++i)
        EXPECT_TRUE(s.contains(i << 12));
    EXPECT_FALSE(s.contains(1));
}

TEST(FlatHashSetTest, ClearEmptiesTheSet)
{
    FlatHashSet<uint64_t> s;
    s.insert(1);
    s.insert(2);
    s.clear();
    EXPECT_EQ(s.size(), 0u);
    EXPECT_FALSE(s.contains(1));
    EXPECT_TRUE(s.insert(1));
}

} // namespace
} // namespace mica::util
