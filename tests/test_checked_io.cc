/**
 * @file
 * Tests for the checked-I/O layer and fault injection through the real
 * writers: IoError self-description (op + path + errno), the atomic
 * .tmp/fsync/rename commit leaving the destination untouched on any
 * injected failure (ENOSPC, short write, at every step), stale .tmp
 * debris never blocking the next attempt, and the same
 * destination-untouched contract driven end to end through all three
 * on-disk formats (profile store, index snapshot, trace file). Ends
 * with the in-process crash-consistency matrix.
 */

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "experiments/crash_matrix.hh"
#include "index/fingerprint_index.hh"
#include "index/snapshot.hh"
#include "pipeline/profile_store.hh"
#include "trace/trace_file.hh"
#include "util/checked_io.hh"
#include "util/failpoint.hh"

namespace mica
{
namespace
{

namespace fs = std::filesystem;

/** Self-cleaning unique temp directory (parallel ctest safe). */
struct TmpDir
{
    std::string dir;

    TmpDir()
    {
        char tmpl[] = "/tmp/mica_test_ckio_XXXXXX";
        const char *made = mkdtemp(tmpl);
        dir = made ? made : "/tmp/mica_test_ckio_fallback";
    }

    ~TmpDir() { fs::remove_all(dir); }

    std::string file(const std::string &name) const
    {
        return dir + "/" + name;
    }
};

std::string
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

class CheckedIoTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::disarmFailpoints(); }

    void TearDown() override { util::disarmFailpoints(); }

    void
    arm(const std::string &spec)
    {
        std::string err;
        ASSERT_TRUE(util::armFailpoints(spec, &err)) << err;
    }

    TmpDir tmp;
};

TEST_F(CheckedIoTest, IoErrorNamesOpPathAndErrno)
{
    const util::IoError e("write", "/data/profiles.bin", ENOSPC);
    EXPECT_EQ(e.op(), "write");
    EXPECT_EQ(e.path(), "/data/profiles.bin");
    EXPECT_EQ(e.code(), ENOSPC);

    const std::string msg = e.what();
    EXPECT_NE(msg.find("write"), std::string::npos) << msg;
    EXPECT_NE(msg.find("/data/profiles.bin"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::strerror(ENOSPC)), std::string::npos) << msg;

    // code 0 is the logical-corruption arm: "unexpected end of file".
    const util::IoError eof("read", "t.bin", 0);
    EXPECT_NE(std::string(eof.what()).find("unexpected end of file"),
              std::string::npos);
}

TEST_F(CheckedIoTest, MissingFileSurfacesEnoent)
{
    try {
        util::readFileBytes(tmp.file("absent.bin"), "store.load");
        FAIL() << "expected IoError";
    } catch (const util::IoError &e) {
        EXPECT_EQ(e.code(), ENOENT);
        EXPECT_EQ(e.op(), "open");
        EXPECT_NE(std::string(e.what()).find("absent.bin"),
                  std::string::npos);
    }
}

TEST_F(CheckedIoTest, AtomicWriteRoundTripsAndLeavesNoTmp)
{
    const std::string path = tmp.file("out.bin");
    const std::string payload = "forty-seven characteristics";
    util::atomicWriteFile(path, payload, "store.put");
    EXPECT_EQ(readAll(path), payload);
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

#if MICA_FAILPOINTS

TEST_F(CheckedIoTest, FailedCommitLeavesDestinationUntouched)
{
    const std::string path = tmp.file("out.bin");
    const std::string oldData = "old complete contents";
    util::atomicWriteFile(path, oldData, "store.put");

    // Every step of the commit, failed independently, must leave the
    // previous file byte-identical and remove its .tmp.
    const char *specs[] = {
        "store.put.open=error:EACCES",
        "store.put.write=error:ENOSPC",
        "store.put.write=shortwrite:4",
        "store.put.fsync=error:EIO",
        "store.put.rename=error:EIO",
    };
    for (const char *spec : specs) {
        SCOPED_TRACE(spec);
        arm(spec);
        EXPECT_THROW(
            util::atomicWriteFile(path, std::string("new data"),
                                  "store.put"),
            util::IoError);
        util::disarmFailpoints();
        EXPECT_EQ(readAll(path), oldData);
        EXPECT_FALSE(fs::exists(path + ".tmp"));
    }
}

TEST_F(CheckedIoTest, ShortWriteReportsEnospcAndTruncates)
{
    const std::string path = tmp.file("short.bin");
    arm("trace.record.write=shortwrite:4");
    try {
        util::atomicWriteFile(path, std::string("0123456789"),
                              "trace.record");
        FAIL() << "expected IoError";
    } catch (const util::IoError &e) {
        EXPECT_EQ(e.code(), ENOSPC);
        EXPECT_EQ(e.op(), "write");
    }
    util::disarmFailpoints();
    // The torn bytes went to the .tmp, which the failure removed; the
    // destination never existed.
    EXPECT_FALSE(fs::exists(path));
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

#endif // MICA_FAILPOINTS

TEST_F(CheckedIoTest, StaleTmpDebrisNeverBlocksTheNextCommit)
{
    const std::string path = tmp.file("out.bin");
    {
        std::ofstream junk(path + ".tmp", std::ios::binary);
        junk << "debris from a crashed run";
    }
    util::atomicWriteFile(path, std::string("fresh"), "store.put");
    EXPECT_EQ(readAll(path), "fresh");
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

#if MICA_FAILPOINTS

pipeline::StoredProfile
namedProfile(const std::string &name)
{
    pipeline::StoredProfile p;
    p.mica.name = name;
    p.hpc.name = name;
    return p;
}

TEST_F(CheckedIoTest, StorePutEnospcLeavesPreviousStoreReadable)
{
    const pipeline::StoreKey key;
    const std::string bin = tmp.file("profiles.bin");
    {
        pipeline::ProfileStore s(tmp.dir, key);
        s.put(namedProfile("suite/alpha.a"));
    }
    const std::string before = readAll(bin);
    ASSERT_FALSE(before.empty());

    // put() retries kPutAttempts times, warns, and never throws for
    // I/O: a full disk must not abort a sweep whose computation is
    // fine. The destination stays the previous complete store.
    arm("store.put.write=error:ENOSPC");
    {
        pipeline::ProfileStore s(tmp.dir, key);
        ASSERT_TRUE(s.open());
        s.put(namedProfile("suite/beta.b"));
    }
    EXPECT_EQ(util::failpointFireCount("store.put.write"),
              uint64_t(pipeline::ProfileStore::kPutAttempts));
    util::disarmFailpoints();

    EXPECT_EQ(readAll(bin), before);
    EXPECT_FALSE(fs::exists(bin + ".tmp"));
    pipeline::ProfileStore reread(tmp.dir, key);
    ASSERT_TRUE(reread.open());
    EXPECT_NE(reread.find("suite/alpha.a"), nullptr);
    EXPECT_EQ(reread.find("suite/beta.b"), nullptr);
}

index::FingerprintIndex
tinyIndex(double salt)
{
    Matrix raw(3, 2);
    raw.rowNames = {"a", "b", "c"};
    raw.colNames = {"x", "y"};
    for (size_t r = 0; r < raw.rows(); ++r) {
        for (size_t c = 0; c < raw.cols(); ++c)
            raw(r, c) = salt + double(r * 2 + c);
    }
    return index::FingerprintIndex::build(raw);
}

TEST_F(CheckedIoTest, SnapshotSaveFailureNamesTheSinkAndKeepsOld)
{
    const std::string bin = tmp.file("index.bin");
    std::string why;
    ASSERT_TRUE(index::saveIndexSnapshot(tinyIndex(0.0), bin, "k", &why))
        << why;
    const std::string before = readAll(bin);

    arm("index.snapshot.write=error:ENOSPC");
    EXPECT_FALSE(
        index::saveIndexSnapshot(tinyIndex(1.0), bin, "k", &why));
    EXPECT_NE(why.find("index.bin"), std::string::npos) << why;
    EXPECT_NE(why.find(std::strerror(ENOSPC)), std::string::npos) << why;
    util::disarmFailpoints();

    EXPECT_EQ(readAll(bin), before);
    EXPECT_FALSE(fs::exists(bin + ".tmp"));
    index::FingerprintIndex idx;
    EXPECT_TRUE(index::loadIndexSnapshot(bin, "k", &idx, &why)) << why;
}

void
writeTinyTrace(const std::string &path, size_t records)
{
    TraceFileWriter w(path);
    InstRecord rec;
    for (size_t i = 0; i < records; ++i) {
        rec.pc = 0x1000 + i * 4;
        rec.cls = InstClass::IntAlu;
        w.append(rec);
    }
    w.close();
}

TEST_F(CheckedIoTest, TraceWriterShortWriteKeepsOldTraceReplayable)
{
    const std::string path = tmp.file("t__p.a.trace");
    writeTinyTrace(path, 50);
    const std::string before = readAll(path);

    // The trace layer wraps the IoError in its own exception; the
    // message must still name the sink and the OS reason.
    arm("trace.record.write=shortwrite");
    try {
        writeTinyTrace(path, 80);
        FAIL() << "expected TraceFileError";
    } catch (const TraceFileError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("t__p.a.trace"), std::string::npos) << msg;
        EXPECT_NE(msg.find(std::strerror(ENOSPC)), std::string::npos)
            << msg;
    }
    util::disarmFailpoints();

    EXPECT_EQ(readAll(path), before);
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    EXPECT_EQ(probeTraceFile(path).recordCount, 50u);

    // And the next unfaulted recording commits over it cleanly.
    writeTinyTrace(path, 80);
    EXPECT_EQ(probeTraceFile(path).recordCount, 80u);
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(CheckedIoTest, CrashMatrixAllCellsHoldTheContract)
{
    ASSERT_TRUE(experiments::crashMatrixSupported());
    const std::vector<experiments::CrashMatrixRow> rows =
        experiments::runCrashMatrix(tmp.file("matrix"));
    // Every write-path failpoint in the registry gets a cell.
    size_t writeSites = 0;
    for (const auto &fp : util::knownFailpoints())
        writeSites += fp.writeSite;
    EXPECT_EQ(rows.size(), writeSites);
    for (const auto &row : rows) {
        SCOPED_TRACE(row.site);
        EXPECT_TRUE(row.crashed) << row.detail;
        EXPECT_TRUE(row.oldValid || row.newValid) << row.detail;
        EXPECT_TRUE(row.recovered) << row.detail;
    }
}

#else // !MICA_FAILPOINTS

TEST_F(CheckedIoTest, CrashMatrixReportsCompiledOut)
{
    EXPECT_FALSE(experiments::crashMatrixSupported());
}

#endif // MICA_FAILPOINTS

} // namespace
} // namespace mica
