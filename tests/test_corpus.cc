/**
 * @file
 * Tests for the out-of-core corpus layer: manifest scanning (sharding,
 * determinism, validation), save/load round trips, the shard runner's
 * durable resume semantics (done markers, digest staleness, shard
 * quarantine), and the contract that profiling a corpus shard through
 * the file-list dataset path is byte-identical to profiling the same
 * traces as a directory.
 */

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "experiments/experiments.hh"
#include "pipeline/corpus_runner.hh"
#include "trace/synthetic.hh"
#include "trace/trace_file.hh"
#include "workloads/corpus.hh"

namespace mica
{
namespace
{

namespace fs = std::filesystem;

/** Self-cleaning unique temp directory (parallel ctest safe). */
struct TmpDir
{
    std::string dir;

    TmpDir()
    {
        char tmpl[] = "/tmp/mica_test_corpus_XXXXXX";
        const char *made = mkdtemp(tmpl);
        dir = made ? made : "/tmp/mica_test_corpus_fallback";
    }

    ~TmpDir() { fs::remove_all(dir); }

    std::string file(const std::string &name) const
    {
        return dir + "/" + name;
    }
};

std::vector<InstRecord>
sampleRecords(uint64_t n, uint64_t seed = 7)
{
    RandomTraceParams p;
    p.numInsts = n;
    p.seed = seed;
    RandomTraceSource src(p);
    std::vector<InstRecord> out;
    out.reserve(n);
    InstRecord r;
    while (src.next(r))
        out.push_back(r);
    return out;
}

void
writeTraceAt(const std::string &path, const std::vector<InstRecord> &recs,
             uint32_t version = kTraceFormatV2)
{
    fs::create_directories(fs::path(path).parent_path());
    TraceFileWriter w(path, version);
    w.append(recs.data(), recs.size());
    w.close();
}

/**
 * A small tree: five binary traces (mixed formats, one nested) plus a
 * text trace, so sharding, nesting, and format tagging all exercise.
 */
workloads::CorpusManifest
makeCorpus(const TmpDir &tmp, size_t shardSize = 2)
{
    writeTraceAt(tmp.file("CommBench__tcp.tcp.trace"), sampleRecords(50, 1));
    writeTraceAt(tmp.file("MiBench__sha.large.trace"), sampleRecords(60, 2),
                 kTraceFormatV1);
    writeTraceAt(tmp.file("nested/a.trace"), sampleRecords(70, 3));
    writeTraceAt(tmp.file("nested/b.trace"), sampleRecords(80, 4));
    writeTraceAt(tmp.file("zz.trace"), sampleRecords(90, 5));
    std::ofstream(tmp.file("hand.txt")) << "alu dst=1\nload addr=8\n";
    std::ofstream(tmp.file("notes.md")) << "ignored\n";
    return workloads::scanCorpus(tmp.dir, shardSize);
}

TEST(CorpusScanTest, ShardsSortedFilesDeterministically)
{
    TmpDir tmp;
    const auto m = makeCorpus(tmp);

    // 6 trace files in lexicographic relative-path order, carved into
    // contiguous shards of 2.
    ASSERT_EQ(m.traceCount(), 6u);
    ASSERT_EQ(m.shards.size(), 3u);
    EXPECT_EQ(m.shards[0].name, "shard-000");
    EXPECT_EQ(m.shards[0].traces[0].file, "CommBench__tcp.tcp.trace");
    EXPECT_EQ(m.shards[0].traces[1].file, "MiBench__sha.large.trace");
    EXPECT_EQ(m.shards[1].traces[0].file, "hand.txt");
    EXPECT_EQ(m.shards[1].traces[1].file, "nested/a.trace");
    EXPECT_EQ(m.shards[2].traces[0].file, "nested/b.trace");
    EXPECT_EQ(m.shards[2].traces[1].file, "zz.trace");

    // Formats and counts come from the probe, not the filename.
    EXPECT_EQ(m.shards[0].traces[0].format, kTraceFormatV2);
    EXPECT_EQ(m.shards[0].traces[1].format, kTraceFormatV1);
    EXPECT_EQ(m.shards[1].traces[0].format, 0u);   // text
    EXPECT_EQ(m.shards[0].traces[0].records, 50u);
    EXPECT_EQ(m.records(), 50u + 60 + 70 + 80 + 90 + 2);

    // Scanning the identical tree again reproduces the manifest
    // bit-for-bit (this is what makes shard digests trustworthy).
    EXPECT_EQ(m.dump(), workloads::scanCorpus(tmp.dir, 2).dump());
}

TEST(CorpusScanTest, RejectsBadTreesAndCorruptTraces)
{
    TmpDir tmp;
    EXPECT_THROW(workloads::scanCorpus(tmp.dir + "/nope", 2),
                 workloads::CorpusError);
    EXPECT_THROW(workloads::scanCorpus(tmp.dir, 2),
                 workloads::CorpusError);   // no trace files
    writeTraceAt(tmp.file("ok.trace"), sampleRecords(10));
    EXPECT_THROW(workloads::scanCorpus(tmp.dir, 0),
                 workloads::CorpusError);   // shardSize 0
    std::ofstream(tmp.file("bad.trace")) << "garbage";
    // A corpus with a corrupt member must be fixed before sharding.
    EXPECT_THROW(workloads::scanCorpus(tmp.dir, 2), TraceFileError);
}

TEST(CorpusManifestTest, SaveLoadRoundTripsAndValidates)
{
    TmpDir tmp;
    const auto m = makeCorpus(tmp);
    workloads::saveCorpus(m);
    const auto loaded = workloads::loadCorpus(tmp.dir);
    EXPECT_EQ(loaded.dump(), m.dump());
    for (size_t i = 0; i < m.shards.size(); ++i)
        EXPECT_EQ(loaded.shards[i].digest(), m.shards[i].digest());

    // Absolute shard files point back into the tree.
    const auto files = loaded.shardFiles(1);
    ASSERT_EQ(files.size(), 2u);
    EXPECT_TRUE(fs::exists(files[0]));
    EXPECT_TRUE(fs::exists(files[1]));

    // Validation names the violated invariant.
    TmpDir other;
    EXPECT_THROW(workloads::loadCorpus(other.dir), util::IoError);
    const auto reject = [&](const std::string &json) {
        std::ofstream(other.file("corpus.json")) << json;
        EXPECT_THROW(workloads::loadCorpus(other.dir),
                     workloads::CorpusError);
    };
    reject("not json at all");
    reject("{\"schema\":\"mica-corpus/999\",\"shards\":[]}");
    reject("{\"schema\":\"mica-corpus/1\",\"shards\":[]}");
    reject("{\"schema\":\"mica-corpus/1\",\"shards\":["
           "{\"name\":\"s\",\"traces\":[]}]}");
    reject("{\"schema\":\"mica-corpus/1\",\"shards\":["
           "{\"name\":\"s\",\"traces\":[{\"file\":\"a\",\"format\":1,"
           "\"records\":1,\"bytes\":1,\"digest\":\"0x0\"}]},"
           "{\"name\":\"s\",\"traces\":[{\"file\":\"b\",\"format\":1,"
           "\"records\":1,\"bytes\":1,\"digest\":\"0x0\"}]}]}");
}

TEST(CorpusRunnerTest, ResumeSkipsShardsWithValidMarkers)
{
    TmpDir tmp, out;
    const auto m = makeCorpus(tmp);

    size_t calls = 0;
    const auto fn = [&](size_t, const std::string &)
        -> pipeline::ShardResult {
        ++calls;
        return {3, 1};
    };

    pipeline::CorpusRunOptions opt;
    opt.outDir = out.file("run");
    auto first = pipeline::runCorpusShards(m, opt, fn);
    ASSERT_EQ(first.size(), 3u);
    EXPECT_EQ(calls, 3u);
    for (const auto &o : first) {
        EXPECT_EQ(o.status, pipeline::ShardOutcome::Status::Done);
        EXPECT_EQ(o.benchmarks, 3u);
        EXPECT_EQ(o.failures, 1u);
        EXPECT_TRUE(fs::exists(fs::path(opt.outDir) / o.shard /
                               "shard.done.json"));
    }

    // Second run: every shard resumes from its marker, callback never
    // fires, and the recorded counts survive.
    auto second = pipeline::runCorpusShards(m, opt, fn);
    EXPECT_EQ(calls, 3u);
    for (const auto &o : second) {
        EXPECT_EQ(o.status, pipeline::ShardOutcome::Status::Skipped);
        EXPECT_EQ(o.benchmarks, 3u);
        EXPECT_EQ(o.failures, 1u);
    }

    // --rerun semantics: markers are ignored, everything recomputes.
    opt.rerunAll = true;
    auto third = pipeline::runCorpusShards(m, opt, fn);
    EXPECT_EQ(calls, 6u);
    for (const auto &o : third)
        EXPECT_EQ(o.status, pipeline::ShardOutcome::Status::Done);
}

TEST(CorpusRunnerTest, FailedShardIsQuarantinedAndRecomputes)
{
    TmpDir tmp, out;
    const auto m = makeCorpus(tmp);

    size_t calls = 0;
    pipeline::CorpusRunOptions opt;
    opt.outDir = out.file("run");
    auto first = pipeline::runCorpusShards(
        m, opt,
        [&](size_t i, const std::string &) -> pipeline::ShardResult {
            ++calls;
            if (i == 1)
                throw std::runtime_error("simulated shard failure");
            return {2, 0};
        });
    ASSERT_EQ(first.size(), 3u);
    EXPECT_EQ(first[0].status, pipeline::ShardOutcome::Status::Done);
    EXPECT_EQ(first[1].status, pipeline::ShardOutcome::Status::Failed);
    EXPECT_EQ(first[1].error, "simulated shard failure");
    EXPECT_EQ(first[2].status, pipeline::ShardOutcome::Status::Done);
    EXPECT_FALSE(fs::exists(fs::path(opt.outDir) / first[1].shard /
                            "shard.done.json"));

    // The failed shard (and only it) recomputes on the next run.
    auto second = pipeline::runCorpusShards(
        m, opt,
        [&](size_t, const std::string &) -> pipeline::ShardResult {
            ++calls;
            return {2, 0};
        });
    EXPECT_EQ(calls, 4u);
    EXPECT_EQ(second[0].status, pipeline::ShardOutcome::Status::Skipped);
    EXPECT_EQ(second[1].status, pipeline::ShardOutcome::Status::Done);
    EXPECT_EQ(second[2].status, pipeline::ShardOutcome::Status::Skipped);

    // With isolation off, the failure propagates instead.
    opt.rerunAll = true;
    opt.isolate = false;
    EXPECT_THROW(
        pipeline::runCorpusShards(
            m, opt,
            [&](size_t, const std::string &) -> pipeline::ShardResult {
                throw std::runtime_error("boom");
            }),
        std::runtime_error);
}

TEST(CorpusRunnerTest, StaleOrForeignMarkersAreNotTrusted)
{
    TmpDir tmp, out;
    auto m = makeCorpus(tmp);

    size_t calls = 0;
    const auto fn = [&](size_t, const std::string &)
        -> pipeline::ShardResult {
        ++calls;
        return {1, 0};
    };
    pipeline::CorpusRunOptions opt;
    opt.outDir = out.file("run");
    pipeline::runCorpusShards(m, opt, fn);
    EXPECT_EQ(calls, 3u);

    // Re-record one shard-0 trace with different contents and rescan:
    // the shard digest moves, so shard 0's marker is stale and only
    // shard 0 recomputes.
    writeTraceAt(tmp.file("CommBench__tcp.tcp.trace"),
                 sampleRecords(50, 99));
    m = workloads::scanCorpus(tmp.dir, 2);
    auto rerun = pipeline::runCorpusShards(m, opt, fn);
    EXPECT_EQ(calls, 4u);
    EXPECT_EQ(rerun[0].status, pipeline::ShardOutcome::Status::Done);
    EXPECT_EQ(rerun[1].status, pipeline::ShardOutcome::Status::Skipped);
    EXPECT_EQ(rerun[2].status, pipeline::ShardOutcome::Status::Skipped);

    // A torn/garbage marker also reads as "not done".
    std::ofstream(out.file("run/shard-001/shard.done.json")) << "gar";
    auto torn = pipeline::runCorpusShards(m, opt, fn);
    EXPECT_EQ(calls, 5u);
    EXPECT_EQ(torn[1].status, pipeline::ShardOutcome::Status::Done);
}

// ----------------------------------------------------------------------
// The dataset contract: a shard profiled through traceFiles is
// byte-identical to the same files profiled as a directory.
// ----------------------------------------------------------------------

TEST(CorpusDatasetTest, FileListDatasetMatchesDirectoryDataset)
{
    TmpDir tmp;
    writeTraceAt(tmp.file("CommBench__tcp.tcp.trace"),
                 sampleRecords(400, 11));
    writeTraceAt(tmp.file("MiBench__sha.large.trace"),
                 sampleRecords(400, 12), kTraceFormatV1);
    const auto m = workloads::scanCorpus(tmp.dir, 8);
    ASSERT_EQ(m.shards.size(), 1u);

    experiments::DatasetConfig byDir;
    byDir.traceDir = tmp.dir;
    const auto a = experiments::collectSuiteDataset(byDir);

    experiments::DatasetConfig byFiles;
    byFiles.traceFiles = m.shardFiles(0);
    byFiles.traceLabel = "corpus:" + m.shards[0].name;
    const auto b = experiments::collectSuiteDataset(byFiles);

    ASSERT_EQ(a.benchmarks.size(), 2u);
    ASSERT_EQ(b.benchmarks.size(), 2u);
    for (size_t i = 0; i < a.benchmarks.size(); ++i) {
        EXPECT_EQ(a.benchmarks[i].fullName(), b.benchmarks[i].fullName());
        ASSERT_EQ(a.micaProfiles[i].values.size(),
                  b.micaProfiles[i].values.size());
        for (size_t v = 0; v < a.micaProfiles[i].values.size(); ++v)
            EXPECT_EQ(a.micaProfiles[i].values[v],
                      b.micaProfiles[i].values[v]);
        EXPECT_EQ(a.hpcProfiles[i].instCount, b.hpcProfiles[i].instCount);
    }

    // Mixing the two selectors is a usage error, not a silent pick.
    experiments::DatasetConfig both = byFiles;
    both.traceDir = tmp.dir;
    EXPECT_THROW(experiments::collectSuiteDataset(both),
                 std::invalid_argument);
}

} // namespace
} // namespace mica
