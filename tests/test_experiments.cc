/**
 * @file
 * Tests for the shared experiment layer and an end-to-end integration
 * run of the paper's pipeline on a reduced benchmark population.
 */

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "experiments/experiments.hh"
#include "methodology/classifier.hh"
#include "methodology/cluster_report.hh"
#include "methodology/genetic_selector.hh"
#include "methodology/workload_space.hh"
#include "stats/descriptive.hh"
#include "stats/roc.hh"

namespace mica::experiments
{
namespace
{

DatasetConfig
smallConfig()
{
    DatasetConfig cfg;
    cfg.maxInsts = 30000;               // keep the test fast
    cfg.suites = {"CommBench", "MediaBench"};
    return cfg;
}

TEST(ExperimentsTest, CollectsSelectedSuitesInTableOrder)
{
    const SuiteDataset ds = collectSuiteDataset(smallConfig());
    EXPECT_EQ(ds.benchmarks.size(), 24u);   // 12 + 12
    EXPECT_EQ(ds.micaProfiles.size(), 24u);
    EXPECT_EQ(ds.hpcProfiles.size(), 24u);
    EXPECT_EQ(ds.benchmarks[0].suite, "CommBench");
    EXPECT_EQ(ds.benchmarks[12].suite, "MediaBench");
    for (size_t i = 0; i < ds.benchmarks.size(); ++i) {
        EXPECT_EQ(ds.micaProfiles[i].name, ds.benchmarks[i].fullName());
        EXPECT_EQ(ds.hpcProfiles[i].name, ds.benchmarks[i].fullName());
    }
}

TEST(ExperimentsTest, MatricesHaveTheRightShape)
{
    const SuiteDataset ds = collectSuiteDataset(smallConfig());
    const Matrix mm = ds.micaMatrix();
    const Matrix hm = ds.hpcMatrix();
    EXPECT_EQ(mm.rows(), 24u);
    EXPECT_EQ(mm.cols(), kNumMicaChars);
    EXPECT_EQ(hm.rows(), 24u);
    EXPECT_EQ(hm.cols(), uarch::HwCounterProfile::kNumMetrics);
}

TEST(ExperimentsTest, IndexOfResolvesNames)
{
    const SuiteDataset ds = collectSuiteDataset(smallConfig());
    const size_t i = ds.indexOf("CommBench/drr.drr");
    ASSERT_NE(i, static_cast<size_t>(-1));
    EXPECT_EQ(ds.benchmarks[i].program, "drr");
    EXPECT_EQ(ds.indexOf("missing/none.x"), static_cast<size_t>(-1));
}

TEST(ExperimentsTest, CollectionIsDeterministic)
{
    const SuiteDataset a = collectSuiteDataset(smallConfig());
    const SuiteDataset b = collectSuiteDataset(smallConfig());
    for (size_t i = 0; i < a.micaProfiles.size(); ++i) {
        for (size_t c = 0; c < kNumMicaChars; ++c)
            EXPECT_DOUBLE_EQ(a.micaProfiles[i][c], b.micaProfiles[i][c]);
        EXPECT_DOUBLE_EQ(a.hpcProfiles[i].ipcEv56,
                         b.hpcProfiles[i].ipcEv56);
    }
}

TEST(ExperimentsTest, CacheRoundTrip)
{
    const std::string dir = "/tmp/mica_test_cache";
    std::filesystem::remove_all(dir);
    DatasetConfig cfg = smallConfig();
    cfg.cacheDir = dir;
    const SuiteDataset fresh = collectSuiteDataset(cfg);
    ASSERT_TRUE(std::filesystem::exists(dir + "/mica_profiles.csv"));
    ASSERT_TRUE(std::filesystem::exists(dir + "/hpc_profiles.csv"));
    const SuiteDataset cached = collectSuiteDataset(cfg);
    ASSERT_EQ(cached.micaProfiles.size(), fresh.micaProfiles.size());
    for (size_t i = 0; i < fresh.micaProfiles.size(); ++i) {
        for (size_t c = 0; c < kNumMicaChars; ++c)
            EXPECT_NEAR(cached.micaProfiles[i][c],
                        fresh.micaProfiles[i][c], 1e-9);
        EXPECT_NEAR(cached.hpcProfiles[i].ipcEv67,
                    fresh.hpcProfiles[i].ipcEv67, 1e-9);
    }
    std::filesystem::remove_all(dir);
}

TEST(ExperimentsTest, ConfigFromArgsParsesFlags)
{
    const char *argv[] = {"prog", "--budget=1234", "--cache=/tmp/x",
                          "--benchmark_filter=all"};
    const DatasetConfig cfg =
        configFromArgs(4, const_cast<char **>(argv));
    EXPECT_EQ(cfg.maxInsts, 1234u);
    EXPECT_EQ(cfg.cacheDir, "/tmp/x");
}

TEST(ExperimentsTest, SuiteNamesMatchRegistry)
{
    EXPECT_EQ(suiteNames().size(), 6u);
    EXPECT_EQ(suiteNames().front(), "BioInfoMark");
    EXPECT_EQ(suiteNames().back(), "SPEC2000");
}

// ----------------------------------------------------------------------
// End-to-end pipeline on a reduced population: the paper's entire
// methodology in one integration test.
// ----------------------------------------------------------------------

TEST(IntegrationTest, FullMethodologyPipelineOnThreeSuites)
{
    DatasetConfig cfg;
    cfg.maxInsts = 40000;
    cfg.suites = {"CommBench", "MiBench", "BioInfoMark"};
    const SuiteDataset ds = collectSuiteDataset(cfg);
    ASSERT_EQ(ds.benchmarks.size(), 54u);   // 12 + 30 + 12

    // Build the two workload spaces (Section IV).
    const WorkloadSpace micaSpace(ds.micaMatrix());
    const WorkloadSpace hpcSpace(ds.hpcMatrix());
    ASSERT_EQ(micaSpace.distances().numPairs(),
              hpcSpace.distances().numPairs());

    // Fig. 1: the spaces correlate only partially.
    const double rho = pearson(micaSpace.distances().condensed(),
                               hpcSpace.distances().condensed());
    EXPECT_GT(rho, 0.1);
    EXPECT_LT(rho, 0.95);

    // Table III: false negatives must be rare, and the false-positive
    // quadrant (similar counters, dissimilar program) must dominate
    // the false quadrants.
    const auto quad = classifyTuples(hpcSpace.distances().condensed(),
                                     micaSpace.distances().condensed());
    EXPECT_LT(quad.fracFN(), 0.05);
    EXPECT_GT(quad.fracFP(), quad.fracFN());

    // Fig. 4 flavor: the MICA distances rank HPC-similarity decently.
    const auto labels = labelsFromDistances(
        hpcSpace.distances().condensed(), 0.2);
    const auto roc = rocCurve(labels,
                              micaSpace.distances().condensed(), 64);
    EXPECT_GT(roc.auc, 0.6);

    // Section V: GA selection compresses 47 -> few with high fidelity.
    GaConfig gcfg;
    gcfg.maxGenerations = 100;
    gcfg.seed = 13;
    const GaResult ga = geneticSelect(micaSpace, gcfg);
    EXPECT_LE(ga.selected.size(), 16u);
    EXPECT_GE(ga.selected.size(), 3u);
    EXPECT_GT(ga.distanceCorrelation, 0.7);

    // Section VI: cluster in the GA-reduced space.
    Matrix reduced = micaSpace.normalized().selectCols(ga.selected);
    reduced.rowNames = ds.micaMatrix().rowNames;
    const ClusterReport rep = clusterBenchmarks(reduced, 20, 42);
    EXPECT_GE(rep.chosenK, 2u);
    EXPECT_LE(rep.chosenK, 20u);
    size_t members = 0;
    for (const auto &c : rep.clusters)
        members += c.members.size();
    EXPECT_EQ(members, ds.benchmarks.size());
}

} // namespace
} // namespace mica::experiments
