/**
 * @file
 * Tests for the reporting helpers: text tables and ASCII plots.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "report/ascii_plot.hh"
#include "report/table.hh"

namespace mica::report
{
namespace
{

TEST(TextTableTest, RendersHeadersAndRows)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"beta", "22"});
    const std::string out = t.render("My Table");
    EXPECT_NE(out.find("My Table"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTableTest, ArityMismatchThrows)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(TextTableTest, ColumnsAreAligned)
{
    TextTable t({"n", "val"}, {Align::Left, Align::Right});
    t.addRow({"x", "1"});
    t.addRow({"longer", "100"});
    const std::string out = t.render();
    // Each line of the body must have the same length (fixed width).
    size_t firstLen = 0;
    size_t lines = 0;
    std::stringstream ss(out);
    std::string line;
    while (std::getline(ss, line)) {
        if (line.empty())
            continue;
        if (firstLen == 0)
            firstLen = line.size();
        EXPECT_EQ(line.size(), firstLen);
        ++lines;
    }
    EXPECT_GE(lines, 4u);   // header, separator, two rows
}

TEST(TextTableTest, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
    EXPECT_EQ(TextTable::pct(0.256, 1), "25.6%");
    EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(ScatterPlotTest, MarksPointsAndLegend)
{
    Series s;
    s.label = "mydata";
    s.marker = 'o';
    s.x = {0.0, 0.5, 1.0};
    s.y = {0.0, 0.5, 1.0};
    PlotConfig cfg;
    cfg.width = 20;
    cfg.height = 10;
    cfg.title = "diag";
    const std::string out = scatterPlot({s}, cfg);
    EXPECT_NE(out.find('o'), std::string::npos);
    EXPECT_NE(out.find("mydata"), std::string::npos);
    EXPECT_NE(out.find("diag"), std::string::npos);
}

TEST(ScatterPlotTest, FixedScaleClampsRange)
{
    Series s;
    s.label = "s";
    s.x = {0.5};
    s.y = {0.5};
    PlotConfig cfg;
    cfg.width = 10;
    cfg.height = 6;
    cfg.fixedScale = true;
    cfg.xMin = 0;
    cfg.xMax = 1;
    cfg.yMin = 0;
    cfg.yMax = 1;
    const std::string out = scatterPlot({s}, cfg);
    EXPECT_FALSE(out.empty());
}

TEST(ScatterPlotTest, EmptySeriesDoesNotCrash)
{
    PlotConfig cfg;
    const std::string out = scatterPlot({}, cfg);
    EXPECT_FALSE(out.empty());
}

TEST(ScatterPlotTest, MismatchedSeriesLengthsPlotTheCommonPrefix)
{
    // Regression: y shorter than x used to read y past its end in
    // findBounds and the render loop (OOB). Only the common prefix
    // is plotted now.
    Series s;
    s.label = "ragged";
    s.marker = 'o';
    s.x = {0.0, 0.25, 0.5, 0.75, 1.0};
    s.y = {0.0, 1.0};   // three x values have no y partner
    PlotConfig cfg;
    cfg.width = 21;
    cfg.height = 11;
    const std::string out = scatterPlot({s}, cfg);
    EXPECT_FALSE(out.empty());
    // Exactly the two paired points land on the grid.
    EXPECT_EQ(std::count(out.begin(), out.end(), 'o'),
              2 + 1);   // two cells + the legend marker
    EXPECT_EQ(out.find("nan"), std::string::npos);

    // x shorter than y is the mirror case.
    Series t;
    t.label = "mirror";
    t.marker = 'x';
    t.x = {0.5};
    t.y = {0.5, 0.6, 0.7};
    EXPECT_FALSE(scatterPlot({t}, cfg).empty());

    // densityPlot takes raw vectors and had the same read.
    EXPECT_FALSE(densityPlot({0.1, 0.9}, {0.4}, cfg).empty());
}

TEST(ScatterPlotTest, DegenerateFixedScaleIsWidenedNotNaN)
{
    // Regression: fixedScale bounds bypassed the degenerate-range
    // widening, so xMax == xMin divided by zero and every coordinate
    // went NaN.
    Series s;
    s.label = "pt";
    s.marker = 'o';
    s.x = {2.0, 2.0};
    s.y = {3.0, 7.0};
    PlotConfig cfg;
    cfg.width = 13;
    cfg.height = 7;
    cfg.fixedScale = true;
    cfg.xMin = 2.0;
    cfg.xMax = 2.0;     // degenerate x range
    cfg.yMin = 3.0;
    cfg.yMax = 7.0;
    const std::string out = scatterPlot({s}, cfg);
    EXPECT_NE(out.find('o'), std::string::npos);    // points rendered
    EXPECT_EQ(out.find("nan"), std::string::npos);
    EXPECT_EQ(out.find("-nan"), std::string::npos);

    // Both axes degenerate at once.
    PlotConfig both = cfg;
    both.yMin = both.yMax = 3.0;
    const std::string out2 = scatterPlot({s}, both);
    EXPECT_NE(out2.find('o'), std::string::npos);
    EXPECT_EQ(out2.find("nan"), std::string::npos);

    // densityPlot shares findBounds and the cell mapping.
    const std::string out3 = densityPlot({2.0}, {3.0}, both);
    EXPECT_EQ(out3.find("nan"), std::string::npos);
}

TEST(DensityPlotTest, RampsWithDensity)
{
    std::vector<double> x, y;
    for (int i = 0; i < 500; ++i) {
        x.push_back(0.5);
        y.push_back(0.5);    // everything in one cell
    }
    x.push_back(0.9);
    y.push_back(0.9);        // a single lonely point
    PlotConfig cfg;
    cfg.width = 12;
    cfg.height = 8;
    const std::string out = densityPlot(x, y, cfg);
    EXPECT_NE(out.find('@'), std::string::npos);    // dense cell
    EXPECT_NE(out.find('.'), std::string::npos);    // sparse cell
}

} // namespace
} // namespace mica::report
