/**
 * @file
 * Tests for the MicaProfile container, the one-pass runner, subset
 * collection, and CSV dataset serialization.
 */

#include <cmath>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "mica/dataset.hh"
#include "mica/ilp.hh"
#include "mica/inst_mix.hh"
#include "mica/profile.hh"
#include "mica/runner.hh"
#include "trace/synthetic.hh"

namespace mica
{
namespace
{

RandomTraceParams
defaultParams(uint64_t seed = 1)
{
    RandomTraceParams p;
    p.numInsts = 20000;
    p.seed = seed;
    return p;
}

TEST(MicaCharTableTest, Has47UniqueEntriesInTableOrder)
{
    const auto &table = micaCharTable();
    EXPECT_EQ(table.size(), kNumMicaChars);
    for (size_t i = 0; i < kNumMicaChars; ++i) {
        EXPECT_EQ(table[i].index, i);
        EXPECT_NE(table[i].name, nullptr);
        EXPECT_NE(table[i].category, nullptr);
        for (size_t j = i + 1; j < kNumMicaChars; ++j)
            EXPECT_STRNE(table[i].name, table[j].name);
    }
}

TEST(MicaCharTableTest, CategoriesMatchTableII)
{
    EXPECT_STREQ(micaCharInfo(PctLoads).category, "instruction mix");
    EXPECT_STREQ(micaCharInfo(Ilp256).category, "ILP");
    EXPECT_STREQ(micaCharInfo(AvgDegreeOfUse).category,
                 "register traffic");
    EXPECT_STREQ(micaCharInfo(DWorkSet4K).category, "working set");
    EXPECT_STREQ(micaCharInfo(GlobalStoreStrideLe4096).category,
                 "data stride");
    EXPECT_STREQ(micaCharInfo(PpmPAs).category, "branch predictability");
}

TEST(MicaCharTableTest, EnumMatchesPaperNumbering)
{
    // Spot-check the enum against Table II row numbers (index = n-1).
    EXPECT_EQ(static_cast<size_t>(PctLoads), 0u);
    EXPECT_EQ(static_cast<size_t>(Ilp32), 6u);
    EXPECT_EQ(static_cast<size_t>(AvgInputOperands), 10u);
    EXPECT_EQ(static_cast<size_t>(DWorkSet32B), 19u);
    EXPECT_EQ(static_cast<size_t>(LocalLoadStrideEq0), 23u);
    EXPECT_EQ(static_cast<size_t>(PpmGAg), 43u);
    EXPECT_EQ(static_cast<size_t>(PpmPAs), 46u);
}

TEST(MicaProfileTest, IndexingAndVectorConversion)
{
    MicaProfile p;
    p[PctLoads] = 25.0;
    p[PpmPAs] = 0.1;
    const auto v = p.toVector();
    ASSERT_EQ(v.size(), kNumMicaChars);
    EXPECT_DOUBLE_EQ(v[0], 25.0);
    EXPECT_DOUBLE_EQ(v[46], 0.1);
}

TEST(RunnerTest, ProfileMatchesStandaloneAnalyzers)
{
    RandomTraceSource src(defaultParams(3));
    const MicaProfile p = collectMicaProfile(src, "x", {});

    RandomTraceSource src2(defaultParams(3));
    InstMixAnalyzer mix;
    IlpAnalyzer ilp;
    InstRecord r;
    while (src2.next(r)) {
        mix.accept(r);
        ilp.accept(r);
    }
    EXPECT_DOUBLE_EQ(p[PctLoads], mix.pctLoads());
    EXPECT_DOUBLE_EQ(p[PctFpOps], mix.pctFpOps());
    EXPECT_DOUBLE_EQ(p[Ilp32], ilp.ipc(0));
    EXPECT_DOUBLE_EQ(p[Ilp256], ilp.ipc(3));
}

TEST(RunnerTest, ProfileFieldsAreAllPopulated)
{
    RandomTraceSource src(defaultParams(5));
    const MicaProfile p = collectMicaProfile(src, "y", {});
    EXPECT_EQ(p.instCount, 20000u);
    // Every characteristic family must be nonzero for a random trace.
    EXPECT_GT(p[PctLoads], 0.0);
    EXPECT_GT(p[Ilp32], 0.0);
    EXPECT_GT(p[AvgInputOperands], 0.0);
    EXPECT_GT(p[DWorkSet32B], 0.0);
    EXPECT_GT(p[IWorkSet4K], 0.0);
    EXPECT_GT(p[GlobalLoadStrideLe4096], 0.0);
    EXPECT_GT(p[PpmGAg], 0.0);
}

TEST(RunnerTest, BudgetIsRespected)
{
    RandomTraceSource src(defaultParams(7));
    MicaRunnerConfig cfg;
    cfg.maxInsts = 500;
    const MicaProfile p = collectMicaProfile(src, "z", cfg);
    EXPECT_EQ(p.instCount, 500u);
}

TEST(RunnerTest, SubsetMatchesFullProfileOnSelectedChars)
{
    const std::vector<size_t> selected = {PctLoads, AvgInputOperands,
                                          RegDepLe8, LocalLoadStrideLe64,
                                          GlobalLoadStrideLe512,
                                          LocalStoreStrideLe4096,
                                          DWorkSet4K, Ilp256};
    RandomTraceSource a(defaultParams(11));
    const MicaProfile full = collectMicaProfile(a, "full", {});
    RandomTraceSource b(defaultParams(11));
    const MicaProfile sub =
        collectMicaProfileSubset(b, "sub", selected, {});
    for (size_t s : selected)
        EXPECT_DOUBLE_EQ(sub[s], full[s]) << micaCharInfo(s).name;
}

TEST(RunnerTest, SubsetLeavesUnrequestedFamiliesAtZero)
{
    RandomTraceSource src(defaultParams(13));
    const MicaProfile p =
        collectMicaProfileSubset(src, "s", {PctLoads}, {});
    EXPECT_GT(p[PctLoads], 0.0);
    EXPECT_DOUBLE_EQ(p[Ilp32], 0.0);        // ILP family not requested
    EXPECT_DOUBLE_EQ(p[PpmGAg], 0.0);       // PPM family not requested
}

TEST(DatasetTest, ProfilesToMatrixLayout)
{
    std::vector<MicaProfile> profs(2);
    profs[0].name = "a";
    profs[1].name = "b";
    profs[0][PctLoads] = 1.5;
    profs[1][PpmPAs] = 0.25;
    const Matrix m = profilesToMatrix(profs);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), kNumMicaChars);
    EXPECT_DOUBLE_EQ(m(0, 0), 1.5);
    EXPECT_DOUBLE_EQ(m(1, 46), 0.25);
    EXPECT_EQ(m.rowNames, (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(m.colNames.size(), kNumMicaChars);
}

TEST(DatasetTest, CsvRoundTripPreservesEverything)
{
    const std::string path = "/tmp/mica_test_profiles.csv";
    std::vector<MicaProfile> profs;
    for (int i = 0; i < 3; ++i) {
        RandomTraceSource src(defaultParams(20 + i));
        profs.push_back(
            collectMicaProfile(src, "bench" + std::to_string(i), {}));
    }
    saveProfilesCsv(path, profs);
    const auto loaded = loadProfilesCsv(path);
    ASSERT_EQ(loaded.size(), profs.size());
    for (size_t i = 0; i < profs.size(); ++i) {
        EXPECT_EQ(loaded[i].name, profs[i].name);
        EXPECT_EQ(loaded[i].instCount, profs[i].instCount);
        for (size_t c = 0; c < kNumMicaChars; ++c)
            EXPECT_NEAR(loaded[i][c], profs[i][c],
                        1e-9 * (1.0 + std::fabs(profs[i][c])));
    }
    std::remove(path.c_str());
}

TEST(DatasetTest, LoadFromMissingFileReturnsEmpty)
{
    EXPECT_TRUE(loadProfilesCsv("/tmp/does_not_exist_9a7f.csv").empty());
}

TEST(DatasetTest, SaveMatrixCsvWritesHeaderAndRows)
{
    const std::string path = "/tmp/mica_test_matrix.csv";
    Matrix m;
    m.appendRow({1.25, 2.5});
    m.appendRow({3.0, 4.0});
    m.rowNames = {"r0", "r1"};
    m.colNames = {"c0", "c1"};
    saveMatrixCsv(path, m);
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "name,c0,c1");
    std::getline(in, line);
    EXPECT_EQ(line.substr(0, 3), "r0,");
    std::remove(path.c_str());
}

} // namespace
} // namespace mica
