/**
 * @file
 * Tests for the deterministic streaming quantile sketch
 * (src/util/quantile): exactness below capacity, bounded rank error on
 * long uniform/lognormal/adversarial streams, exact min/max at the
 * range ends, merge consistency, and input-determinism (same stream,
 * same bytes out — the property the perf profiles rely on).
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "util/quantile.hh"

namespace mica::util
{
namespace
{

const double kQs[] = {0.0, 0.01, 0.10, 0.25, 0.50,
                      0.75, 0.90, 0.99, 1.0};

/**
 * Rank-error check: the sketch's answer at q must sit within
 * @p tolFrac * n ranks of the nearest-rank target in the exact data.
 * Duplicates make a single rank ambiguous, so the estimate's whole
 * equal-range is compared against the target.
 */
void
expectRankClose(const QuantileSketch &sk, std::vector<double> sorted,
                double tolFrac)
{
    std::sort(sorted.begin(), sorted.end());
    const double n = static_cast<double>(sorted.size());
    for (const double q : kQs) {
        const double est = sk.quantile(q);
        const auto lo = std::lower_bound(sorted.begin(), sorted.end(),
                                         est) -
            sorted.begin();
        const auto hi = std::upper_bound(sorted.begin(), sorted.end(),
                                         est) -
            sorted.begin();
        const auto target = static_cast<double>(
            quantileRank(q, sorted.size()));
        const double slack = tolFrac * n + 1.0;
        EXPECT_GE(static_cast<double>(hi) - 1.0, target - slack)
            << "q=" << q << " est=" << est;
        EXPECT_LE(static_cast<double>(lo), target + slack)
            << "q=" << q << " est=" << est;
    }
}

TEST(QuantileRank, NearestRankConvention)
{
    EXPECT_EQ(quantileRank(0.0, 10), 0u);
    EXPECT_EQ(quantileRank(1.0, 10), 9u);
    EXPECT_EQ(quantileRank(0.5, 10), 4u);   // ceil(5) - 1
    EXPECT_EQ(quantileRank(0.5, 11), 5u);   // ceil(5.5) - 1
    EXPECT_EQ(quantileRank(0.91, 10), 9u);  // ceil(9.1) - 1
    EXPECT_EQ(quantileRank(0.3, 1), 0u);
    EXPECT_EQ(quantileRank(0.5, 0), 0u);
}

TEST(QuantileSketch, EmptyAndSingle)
{
    QuantileSketch sk;
    EXPECT_TRUE(sk.empty());
    EXPECT_EQ(sk.quantile(0.5), 0.0);
    sk.add(42.0);
    EXPECT_EQ(sk.count(), 1u);
    for (const double q : kQs)
        EXPECT_EQ(sk.quantile(q), 42.0);
}

TEST(QuantileSketch, ExactBelowCapacity)
{
    // Below one level's capacity nothing is ever compacted away, so
    // the sketch must agree with the exact reference bit-for-bit.
    std::mt19937 rng(7);
    std::uniform_real_distribution<double> dist(-100.0, 100.0);
    QuantileSketch sk;
    ExactQuantiles exact;
    for (int i = 0; i < 100; ++i) {
        const double v = dist(rng);
        sk.add(v);
        exact.add(v);
    }
    for (const double q : kQs)
        EXPECT_EQ(sk.quantile(q), exact.quantile(q)) << "q=" << q;
}

TEST(QuantileSketch, UniformStream)
{
    std::mt19937 rng(11);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    QuantileSketch sk;
    std::vector<double> all;
    for (int i = 0; i < 50000; ++i) {
        const double v = dist(rng);
        sk.add(v);
        all.push_back(v);
    }
    expectRankClose(sk, all, 0.02);
}

TEST(QuantileSketch, LognormalStream)
{
    // Heavy tail: most mass near zero, rare huge values — the shape
    // of a latency distribution, where p99 actually matters.
    std::mt19937 rng(13);
    std::lognormal_distribution<double> dist(0.0, 2.0);
    QuantileSketch sk;
    std::vector<double> all;
    for (int i = 0; i < 50000; ++i) {
        const double v = dist(rng);
        sk.add(v);
        all.push_back(v);
    }
    expectRankClose(sk, all, 0.02);
}

TEST(QuantileSketch, ConstantStream)
{
    QuantileSketch sk;
    for (int i = 0; i < 20000; ++i)
        sk.add(3.5);
    for (const double q : kQs)
        EXPECT_EQ(sk.quantile(q), 3.5);
    EXPECT_EQ(sk.min(), 3.5);
    EXPECT_EQ(sk.max(), 3.5);
    EXPECT_EQ(sk.count(), 20000u);
}

TEST(QuantileSketch, AdversarialSortedStream)
{
    // Sorted input is the classic killer for naive sampling: every
    // compaction sees a fully ordered level.
    QuantileSketch sk;
    std::vector<double> all;
    for (int i = 0; i < 50000; ++i) {
        sk.add(static_cast<double>(i));
        all.push_back(static_cast<double>(i));
    }
    expectRankClose(sk, all, 0.02);

    QuantileSketch desc;
    for (int i = 50000; i-- > 0;)
        desc.add(static_cast<double>(i));
    expectRankClose(desc, all, 0.02);
}

TEST(QuantileSketch, AdversarialDuplicatesWithOutliers)
{
    // A spike distribution: 99% identical values, 1% far outliers.
    QuantileSketch sk;
    std::vector<double> all;
    for (int i = 0; i < 30000; ++i) {
        const double v = i % 100 == 0 ? 1e9 : 5.0;
        sk.add(v);
        all.push_back(v);
    }
    EXPECT_EQ(sk.quantile(0.5), 5.0);
    EXPECT_EQ(sk.quantile(0.0), 5.0);
    EXPECT_EQ(sk.quantile(1.0), 1e9);
    expectRankClose(sk, all, 0.02);
}

TEST(QuantileSketch, ExactMinMaxSurviveCompaction)
{
    std::mt19937 rng(17);
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    QuantileSketch sk;
    double mn = 2.0, mx = -1.0;
    for (int i = 0; i < 100000; ++i) {
        const double v = dist(rng);
        mn = std::min(mn, v);
        mx = std::max(mx, v);
        sk.add(v);
    }
    // The ends of the range are tracked exactly, never estimated.
    EXPECT_EQ(sk.quantile(0.0), mn);
    EXPECT_EQ(sk.quantile(1.0), mx);
    EXPECT_EQ(sk.min(), mn);
    EXPECT_EQ(sk.max(), mx);
    EXPECT_EQ(sk.count(), 100000u);
}

TEST(QuantileSketch, MergeMatchesAccuracyBound)
{
    std::mt19937 rng(19);
    std::lognormal_distribution<double> dist(1.0, 1.5);
    QuantileSketch parts[3];
    std::vector<double> all;
    for (int i = 0; i < 60000; ++i) {
        const double v = dist(rng);
        parts[i % 3].add(v);
        all.push_back(v);
    }
    // Left fold and right fold must both respect the error bound and
    // agree exactly on the exactly-tracked facts.
    QuantileSketch left = parts[0];
    left.merge(parts[1]);
    left.merge(parts[2]);
    QuantileSketch tail = parts[1];
    tail.merge(parts[2]);
    QuantileSketch right = parts[0];
    right.merge(tail);

    EXPECT_EQ(left.count(), all.size());
    EXPECT_EQ(right.count(), all.size());
    EXPECT_EQ(left.min(), right.min());
    EXPECT_EQ(left.max(), right.max());
    expectRankClose(left, all, 0.02);
    expectRankClose(right, all, 0.02);

    // Merging an empty sketch is the identity.
    QuantileSketch empty;
    const double before = left.quantile(0.5);
    left.merge(empty);
    EXPECT_EQ(left.quantile(0.5), before);
    empty.merge(right);
    EXPECT_EQ(empty.count(), right.count());
    EXPECT_EQ(empty.quantile(0.9), right.quantile(0.9));
}

TEST(QuantileSketch, DeterministicAcrossRuns)
{
    // Two sketches fed the same stream must answer bit-identically at
    // every probed q — no randomness anywhere in the compaction.
    std::mt19937 rngA(23), rngB(23);
    std::uniform_real_distribution<double> dist(0.0, 1e6);
    QuantileSketch a, b;
    for (int i = 0; i < 75000; ++i) {
        a.add(dist(rngA));
        b.add(dist(rngB));
    }
    for (const double q : kQs)
        EXPECT_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
    for (double q = 0.0; q <= 1.0; q += 0.001)
        ASSERT_EQ(a.quantile(q), b.quantile(q)) << "q=" << q;
}

TEST(ExactQuantiles, NearestRankOnKnownData)
{
    ExactQuantiles e;
    for (int i = 10; i >= 1; --i)
        e.add(static_cast<double>(i));   // 1..10, added descending
    EXPECT_EQ(e.count(), 10u);
    EXPECT_EQ(e.quantile(0.0), 1.0);
    EXPECT_EQ(e.quantile(0.5), 5.0);
    EXPECT_EQ(e.quantile(0.9), 9.0);
    EXPECT_EQ(e.quantile(1.0), 10.0);
}

} // namespace
} // namespace mica::util
