/**
 * @file
 * Tests for the runtime telemetry subsystem (src/obs): sharded
 * counters fold exactly under any worker count, histogram buckets sit
 * on power-of-two boundaries, span export is well-formed Chrome-
 * tracing JSON with strict per-thread nesting, the bounded ring drops
 * oldest-first, and the MICA_OBS=0 stub API stays compilable.
 *
 * Each TEST runs in its own gtest process (gtest_discover_tests), so
 * obs::resetForTest() gives every test a clean registry without
 * cross-test interference.
 */

#include <cctype>
#include <cstdint>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hh"
#include "pipeline/thread_pool.hh"

namespace mica::obs
{
namespace
{

#if MICA_OBS

/** Look up one folded metric, failing the test when it is absent. */
MetricValue
metric(const MetricsSnapshot &snap, const std::string &name)
{
    const auto it = snap.metrics.find(name);
    EXPECT_NE(it, snap.metrics.end()) << "metric " << name << " missing";
    return it == snap.metrics.end() ? MetricValue{} : it->second;
}

/** 64 blocks x 10000 adds through a pool of the given size. */
void
hammerCounter(size_t jobs)
{
    pipeline::ThreadPool pool(jobs);
    pipeline::parallelBlocks(&pool, 64, [&](size_t) {
        static Counter c("test.obs.hammer");
        for (int i = 0; i < 10000; ++i)
            c.add(1);
    });
}

TEST(ObsCounter, ExactUnderSerialFanout)
{
    resetForTest();
    hammerCounter(1);
    EXPECT_EQ(metric(snapshotMetrics(), "test.obs.hammer").value,
              640000);
}

TEST(ObsCounter, ExactUnderParallelFanout)
{
    resetForTest();
    hammerCounter(8);
    EXPECT_EQ(metric(snapshotMetrics(), "test.obs.hammer").value,
              640000);
}

TEST(ObsCounter, CopiesShareOneCell)
{
    resetForTest();
    // Two Counter objects with the same name are handles to the same
    // cell — the idiom is `static obs::Counter c("...")` at every use
    // site, and the registry dedups by name.
    Counter a("test.obs.shared");
    Counter b("test.obs.shared");
    a.add(3);
    b.add(4);
    EXPECT_EQ(metric(snapshotMetrics(), "test.obs.shared").value, 7);
}

TEST(ObsGauge, FoldsSignedDeltasAcrossThreads)
{
    resetForTest();
    // +1 on the submitting thread, -1 on the worker: per-slab deltas
    // are signed, so the fold nets out to the live depth (zero once
    // the pool drains) even though no single slab holds the truth.
    pipeline::ThreadPool pool(4);
    std::vector<std::future<void>> done;
    for (int i = 0; i < 100; ++i) {
        static Gauge depth("test.obs.depth");
        depth.add(1);
        done.push_back(pool.submit([] {
            static Gauge depth2("test.obs.depth");
            depth2.add(-1);
        }));
    }
    for (auto &f : done)
        f.get();
    EXPECT_EQ(metric(snapshotMetrics(), "test.obs.depth").value, 0);
}

TEST(ObsHistogram, BucketBoundaries)
{
    // Bucket b holds values whose bit width is b: 0 -> bucket 0,
    // 1 -> bucket 1, [2,3] -> 2, [4,7] -> 3, ..., so boundaries sit
    // exactly on powers of two.
    static_assert(histBucket(0) == 0, "zero gets its own bucket");
    static_assert(histBucket(1) == 1, "one starts bucket 1");
    static_assert(histBucket(2) == 2 && histBucket(3) == 2,
                  "[2,4) is bucket 2");
    static_assert(histBucket(4) == 3 && histBucket(7) == 3,
                  "[4,8) is bucket 3");
    static_assert(histBucket(255) == 8 && histBucket(256) == 9,
                  "boundary at 256");
    static_assert(histBucket(1ull << 63) == 64, "top bit is bucket 64");

    resetForTest();
    Histogram h("test.obs.hist");
    for (uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 7ull, 255ull,
                       256ull})
        h.record(v);
    const auto mv = metric(snapshotMetrics(), "test.obs.hist");
    ASSERT_EQ(mv.kind, MetricKind::Histogram);
    EXPECT_EQ(mv.hist.count, 8);
    EXPECT_EQ(mv.hist.sum, 0 + 1 + 2 + 3 + 4 + 7 + 255 + 256);
    EXPECT_EQ(mv.hist.buckets[0], 1);   // 0
    EXPECT_EQ(mv.hist.buckets[1], 1);   // 1
    EXPECT_EQ(mv.hist.buckets[2], 2);   // 2, 3
    EXPECT_EQ(mv.hist.buckets[3], 2);   // 4, 7
    EXPECT_EQ(mv.hist.buckets[8], 1);   // 255
    EXPECT_EQ(mv.hist.buckets[9], 1);   // 256
}

// ----------------------------------------------------------------------
// A minimal recursive-descent JSON validator: enough to prove the
// exported documents parse, without pulling in a JSON dependency.
// ----------------------------------------------------------------------

struct JsonCursor
{
    const char *p;
    const char *end;

    void ws()
    {
        while (p < end && std::isspace(static_cast<unsigned char>(*p)))
            ++p;
    }

    bool lit(const char *s)
    {
        const size_t n = std::strlen(s);
        if (static_cast<size_t>(end - p) < n ||
            std::strncmp(p, s, n) != 0)
            return false;
        p += n;
        return true;
    }

    bool string()
    {
        if (p >= end || *p != '"')
            return false;
        ++p;
        while (p < end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p >= end)
                    return false;
            }
            ++p;
        }
        if (p >= end)
            return false;
        ++p;   // closing quote
        return true;
    }

    bool number()
    {
        const char *start = p;
        if (p < end && *p == '-')
            ++p;
        while (p < end &&
               (std::isdigit(static_cast<unsigned char>(*p)) ||
                *p == '.' || *p == 'e' || *p == 'E' || *p == '+' ||
                *p == '-'))
            ++p;
        return p != start;
    }

    bool value()
    {
        ws();
        if (p >= end)
            return false;
        if (*p == '"')
            return string();
        if (*p == '{')
            return object();
        if (*p == '[')
            return array();
        if (lit("true") || lit("false") || lit("null"))
            return true;
        return number();
    }

    bool object()
    {
        if (*p != '{')
            return false;
        ++p;
        ws();
        if (p < end && *p == '}') {
            ++p;
            return true;
        }
        for (;;) {
            ws();
            if (!string())
                return false;
            ws();
            if (p >= end || *p != ':')
                return false;
            ++p;
            if (!value())
                return false;
            ws();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            return false;
        }
    }

    bool array()
    {
        if (*p != '[')
            return false;
        ++p;
        ws();
        if (p < end && *p == ']') {
            ++p;
            return true;
        }
        for (;;) {
            if (!value())
                return false;
            ws();
            if (p < end && *p == ',') {
                ++p;
                continue;
            }
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            return false;
        }
    }
};

bool
validJson(const std::string &doc)
{
    JsonCursor c{doc.data(), doc.data() + doc.size()};
    if (!c.value())
        return false;
    c.ws();
    return c.p == c.end;
}

TEST(ObsTrace, SpanJsonWellFormedAndNested)
{
    resetForTest();
    setTraceEnabled(true);

    // Two workers each record a parent span wrapping two children,
    // with args that need escaping; the export must parse and the
    // (ts, ts+dur) intervals must nest strictly per thread.
    pipeline::ThreadPool pool(2);
    pipeline::parallelBlocks(&pool, 2, [&](size_t b) {
        ObsSpan parent("test.parent");
        parent.arg("label", "quote\"back\\slash");
        parent.arg("block", static_cast<uint64_t>(b));
        for (int i = 0; i < 2; ++i) {
            ObsSpan child("test.child");
            child.argF("ratio", 0.5);
        }
    });
    setTraceEnabled(false);

    EXPECT_TRUE(validJson(traceJson()));
    EXPECT_TRUE(validJson(metricsJson()));

    // 2 x (1 parent + 2 children); the pool's own pool.task spans ride
    // along when the blocks ran on workers, wrapping each parent.
    const auto events = traceEvents();
    size_t parents = 0, children = 0;
    for (const auto &e : events) {
        parents += e.name == "test.parent";
        children += e.name == "test.child";
    }
    EXPECT_EQ(parents, 2u);
    EXPECT_EQ(children, 4u);

    // Strict nesting per thread: walking in (ts asc, dur desc) order,
    // every event must fit inside whatever interval is open on its
    // thread. Parents sort before their children at equal ts because
    // the drain orders longer durations first.
    std::vector<std::vector<const TraceEventCopy *>> stacks(64);
    for (const auto &e : events) {
        ASSERT_LT(e.tid, stacks.size());
        auto &stack = stacks[e.tid];
        while (!stack.empty() &&
               e.tsNs >= stack.back()->tsNs + stack.back()->durNs)
            stack.pop_back();
        if (!stack.empty()) {
            EXPECT_GE(e.tsNs, stack.back()->tsNs);
            EXPECT_LE(e.tsNs + e.durNs,
                      stack.back()->tsNs + stack.back()->durNs);
        }
        stack.push_back(&e);
    }
}

TEST(ObsTrace, DisabledTracerRecordsNothing)
{
    resetForTest();
    ASSERT_FALSE(traceEnabled());
    {
        ObsSpan sp("test.ghost");
        sp.arg("n", static_cast<uint64_t>(1));
    }
    EXPECT_TRUE(traceEvents().empty());
    EXPECT_TRUE(spanStats().empty());
}

TEST(ObsTrace, RingOverflowDropsOldest)
{
    resetForTest();
    setTraceEnabled(true);
    const size_t extra = 500;
    for (size_t i = 0; i < kTraceRingCap + extra; ++i) {
        ObsSpan sp("test.ring");
        sp.arg("i", static_cast<uint64_t>(i));
    }
    setTraceEnabled(false);

    const auto events = traceEvents();
    ASSERT_EQ(events.size(), kTraceRingCap);
    // Oldest dropped: the surviving window is the most recent
    // kTraceRingCap spans, i.e. args start at i=extra.
    const std::string first = "\"i\": " + std::to_string(extra);
    EXPECT_NE(events.front().args.find(first), std::string::npos)
        << "got: " << events.front().args;
    EXPECT_EQ(metric(snapshotMetrics(), "obs.trace.dropped").value,
              static_cast<int64_t>(extra));
}

TEST(ObsSummary, NamesTopCountersAndSpans)
{
    resetForTest();
    setTraceEnabled(true);
    static Counter c("test.obs.summary");
    c.add(42);
    {
        ObsSpan sp("test.summary.span");
    }
    setTraceEnabled(false);
    const std::string s = summaryText();
    EXPECT_NE(s.find("test.obs.summary"), std::string::npos);
    EXPECT_NE(s.find("test.summary.span"), std::string::npos);
}

#endif   // MICA_OBS

// histQuantile works on the unconditional HistogramValue type, so
// these run in both MICA_OBS legs.

TEST(ObsHistQuantile, EmptyIsZero)
{
    EXPECT_EQ(histQuantile(HistogramValue{}, 0.5), 0.0);
}

TEST(ObsHistQuantile, SingleValuedBucketsAreExact)
{
    // Buckets 0 and 1 span exactly one value each, so interpolation
    // cannot smear them: an all-zeros histogram answers 0, an all-ones
    // histogram answers 1, at every quantile.
    HistogramValue zeros;
    zeros.count = 7;
    zeros.buckets[0] = 7;
    HistogramValue ones;
    ones.count = 7;
    ones.buckets[1] = 7;
    for (const double q : {0.0, 0.5, 0.99, 1.0}) {
        EXPECT_EQ(histQuantile(zeros, q), 0.0) << "q=" << q;
        EXPECT_EQ(histQuantile(ones, q), 1.0) << "q=" << q;
    }
}

TEST(ObsHistQuantile, StaysInsideTheTargetBucket)
{
    // 10 samples in bucket 4 ([8, 15]): every quantile must land
    // inside that bucket's span, interpolated monotonically across it.
    HistogramValue h;
    h.count = 10;
    h.buckets[4] = 10;
    double prev = -1.0;
    for (const double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
        const double v = histQuantile(h, q);
        EXPECT_GE(v, static_cast<double>(histBucketLo(4)));
        EXPECT_LE(v, static_cast<double>(histBucketHi(4)));
        EXPECT_GE(v, prev) << "q=" << q;
        prev = v;
    }
}

TEST(ObsHistQuantile, SplitsAtTheBucketBoundary)
{
    // 50 samples in [4,7] and 50 in [8,15]: the lower half's
    // quantiles stay in the low bucket, the upper half's in the high
    // one. p50 hits rank 49 (nearest-rank) — still the low bucket.
    HistogramValue h;
    h.count = 100;
    h.buckets[3] = 50;
    h.buckets[4] = 50;
    EXPECT_GE(histQuantile(h, 0.25), 4.0);
    EXPECT_LE(histQuantile(h, 0.25), 7.0);
    EXPECT_GE(histQuantile(h, 0.50), 4.0);
    EXPECT_LE(histQuantile(h, 0.50), 7.0);
    EXPECT_GE(histQuantile(h, 0.51), 8.0);
    EXPECT_LE(histQuantile(h, 0.51), 15.0);
    EXPECT_GE(histQuantile(h, 0.99), 8.0);
    EXPECT_LE(histQuantile(h, 0.99), 15.0);
}

TEST(ObsHistQuantile, SparseBucketsSkipGaps)
{
    // Mass in buckets 2 and 10 only: mid quantiles never invent
    // values in the empty gap between them.
    HistogramValue h;
    h.count = 4;
    h.buckets[2] = 2;
    h.buckets[10] = 2;
    const double lo = histQuantile(h, 0.25);
    EXPECT_GE(lo, 2.0);
    EXPECT_LE(lo, 3.0);
    const double hi = histQuantile(h, 0.9);
    EXPECT_GE(hi, static_cast<double>(histBucketLo(10)));
    EXPECT_LE(hi, static_cast<double>(histBucketHi(10)));
}

// The no-op surface must stay compilable and inert in both modes —
// this is the whole contract that lets instrumented code build under
// MICA_OBS=0 without a single #ifdef at the use sites.
TEST(ObsStub, ApiCompilesAndIsInert)
{
    static Counter c("test.obs.stub.count");
    c.add(1);
    static Gauge g("test.obs.stub.gauge");
    g.add(-1);
    static Histogram h("test.obs.stub.hist");
    h.record(12345);
    {
        ObsSpan sp("test.obs.stub.span");
        sp.arg("k", static_cast<uint64_t>(1));
        sp.arg("s", "text");
        sp.arg("t", std::string("text"));
        sp.argF("f", 1.5);
    }
    // Exports are valid JSON documents in both modes.
    EXPECT_FALSE(metricsJson().empty());
    EXPECT_NE(traceJson().find("traceEvents"), std::string::npos);
    EXPECT_FALSE(summaryText().empty());
}

} // namespace
} // namespace mica::obs
