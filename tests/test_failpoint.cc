/**
 * @file
 * Tests for the failpoint registry and spec grammar: parsing (actions,
 * args, triggers, rejection of unknown sites and malformed tokens),
 * deterministic trigger behaviour (@N, every=N, seeded probability),
 * later-point-wins masking with 'off', fire counting, and the armed /
 * disarmed fast-path contract.
 *
 * Failpoints are process-global; every test disarms on the way out so
 * the suites sharing this binary never see a leftover arming.
 */

#include <cerrno>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/failpoint.hh"

namespace mica
{
namespace
{

using util::FailDecision;
using util::FailOp;

#if !MICA_FAILPOINTS

// Compiled-out builds keep the API as inert stubs: nothing arms,
// nothing fires, and the registry is empty — so release binaries can
// prove the hooks cost nothing.
TEST(FailpointStubTest, CompiledOutApiIsInert)
{
    std::string err;
    EXPECT_FALSE(util::armFailpoints("store.put.write=error", &err));
    EXPECT_NE(err.find("compiled out"), std::string::npos) << err;
    EXPECT_FALSE(util::failpointsArmed());
    EXPECT_FALSE(util::evalFailpoint("store.put.write"));
    EXPECT_EQ(util::failpointFireCount("store.put.write"), 0u);
    EXPECT_TRUE(util::knownFailpoints().empty());
    util::disarmFailpoints();    // harmless no-op
}

#else

class FailpointTest : public ::testing::Test
{
  protected:
    void SetUp() override { util::disarmFailpoints(); }

    void TearDown() override { util::disarmFailpoints(); }

    /** Arm @p spec, failing the test with the parser's message. */
    void
    arm(const std::string &spec)
    {
        std::string err;
        ASSERT_TRUE(util::armFailpoints(spec, &err)) << err;
    }
};

TEST_F(FailpointTest, DisarmedByDefault)
{
    EXPECT_FALSE(util::failpointsArmed());
    EXPECT_FALSE(util::evalFailpoint("store.put.write"));
}

TEST_F(FailpointTest, RegistryHasTheDocumentedShape)
{
    const auto &pts = util::knownFailpoints();
    ASSERT_FALSE(pts.empty());

    bool sawPutWrite = false, sawLoadRead = false, sawAnalyze = false;
    size_t writeSites = 0;
    for (const auto &fp : pts) {
        writeSites += fp.writeSite;
        if (fp.name == "store.put.write") {
            sawPutWrite = true;
            EXPECT_TRUE(fp.writeSite);
        }
        if (fp.name == "store.load.read") {
            sawLoadRead = true;
            EXPECT_FALSE(fp.writeSite);
        }
        if (fp.name == "pipeline.analyze")
            sawAnalyze = true;
    }
    EXPECT_TRUE(sawPutWrite);
    EXPECT_TRUE(sawLoadRead);
    EXPECT_TRUE(sawAnalyze);
    // Every durable writer contributes open/write/fsync/rename.
    EXPECT_EQ(writeSites % 4, 0u);
    EXPECT_GE(writeSites, 12u);
}

TEST_F(FailpointTest, ErrorActionCarriesTheNamedErrno)
{
    arm("store.put.write=error:ENOSPC");
    EXPECT_TRUE(util::failpointsArmed());

    const FailDecision d = util::evalFailpoint("store.put.write");
    ASSERT_TRUE(d);
    EXPECT_EQ(d.op, FailOp::Error);
    EXPECT_EQ(d.err, ENOSPC);
    EXPECT_STREQ(d.site, "store.put.write");

    // Unarmed sites stay silent even while others are armed.
    EXPECT_FALSE(util::evalFailpoint("store.put.fsync"));
}

TEST_F(FailpointTest, NumericErrnoAndDefaultEio)
{
    arm("store.load.read=error:13");    // EACCES by number
    EXPECT_EQ(util::evalFailpoint("store.load.read").err, EACCES);

    arm("store.load.read=error");
    EXPECT_EQ(util::evalFailpoint("store.load.read").err, EIO);
}

TEST_F(FailpointTest, ShortWriteDelayAndAbortArgs)
{
    arm("store.put.write=shortwrite:100");
    FailDecision d = util::evalFailpoint("store.put.write");
    EXPECT_EQ(d.op, FailOp::ShortWrite);
    EXPECT_EQ(d.param, 100u);

    arm("store.put.write=delay:7");
    d = util::evalFailpoint("store.put.write");
    EXPECT_EQ(d.op, FailOp::Delay);
    EXPECT_EQ(d.param, 7u);

    arm("store.put.rename=abort");
    d = util::evalFailpoint("store.put.rename");
    EXPECT_EQ(d.op, FailOp::Abort);
}

TEST_F(FailpointTest, NthHitTriggerFiresExactlyOnce)
{
    arm("trace.record.write=error:ENOSPC@3");
    EXPECT_FALSE(util::evalFailpoint("trace.record.write"));
    EXPECT_FALSE(util::evalFailpoint("trace.record.write"));
    EXPECT_TRUE(util::evalFailpoint("trace.record.write"));
    EXPECT_FALSE(util::evalFailpoint("trace.record.write"));
    EXPECT_EQ(util::failpointFireCount("trace.record.write"), 1u);
}

TEST_F(FailpointTest, EveryNthTriggerKeepsFiring)
{
    arm("trace.chunk.read=error,every=2");
    int fired = 0;
    for (int i = 0; i < 6; ++i)
        fired += bool(util::evalFailpoint("trace.chunk.read"));
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(util::failpointFireCount("trace.chunk.read"), 3u);
}

TEST_F(FailpointTest, SeededProbabilityIsReproducible)
{
    const std::string spec = "store.put.write=error,p=0.5,seed=42";
    auto pattern = [&]() {
        arm(spec);
        std::vector<bool> fires;
        for (int i = 0; i < 32; ++i)
            fires.push_back(bool(util::evalFailpoint("store.put.write")));
        return fires;
    };
    const std::vector<bool> a = pattern();
    const std::vector<bool> b = pattern();
    EXPECT_EQ(a, b);
    // p=0.5 over 32 draws: all-or-nothing would mean a broken RNG.
    size_t n = 0;
    for (bool f : a)
        n += f;
    EXPECT_GT(n, 0u);
    EXPECT_LT(n, 32u);
}

TEST_F(FailpointTest, LaterOffMasksAnEarlierArming)
{
    arm("store.put.write=error:ENOSPC;store.put.write=off");
    EXPECT_FALSE(util::evalFailpoint("store.put.write"));
}

TEST_F(FailpointTest, ReArmingReplacesAndDisarmResets)
{
    arm("store.put.write=error");
    EXPECT_TRUE(util::evalFailpoint("store.put.write"));
    EXPECT_EQ(util::failpointFireCount("store.put.write"), 1u);

    // A new spec replaces the old one wholesale.
    arm("store.put.fsync=error");
    EXPECT_FALSE(util::evalFailpoint("store.put.write"));
    EXPECT_TRUE(util::evalFailpoint("store.put.fsync"));

    util::disarmFailpoints();
    EXPECT_FALSE(util::failpointsArmed());
    EXPECT_EQ(util::failpointFireCount("store.put.fsync"), 0u);
}

TEST_F(FailpointTest, UnknownSiteIsRejectedByName)
{
    std::string err;
    EXPECT_FALSE(util::armFailpoints("nosuch.site=error", &err));
    EXPECT_NE(err.find("nosuch.site"), std::string::npos) << err;
    EXPECT_FALSE(util::failpointsArmed());
}

TEST_F(FailpointTest, MalformedSpecsAreRejected)
{
    std::string err;
    EXPECT_FALSE(util::armFailpoints("store.put.write", &err));
    EXPECT_FALSE(util::armFailpoints("store.put.write=", &err));
    EXPECT_FALSE(util::armFailpoints("store.put.write=explode", &err));
    EXPECT_FALSE(util::armFailpoints("store.put.write=error@zero", &err));
}

TEST_F(FailpointTest, FailpointHandleResolvesOnce)
{
    util::Failpoint fp("store.put.write");
    EXPECT_FALSE(fp.eval());
    arm("store.put.write=throw");
    const FailDecision d = fp.eval();
    ASSERT_TRUE(d);
    EXPECT_EQ(d.op, FailOp::Throw);
}

#endif // MICA_FAILPOINTS

} // namespace
} // namespace mica
