/**
 * @file
 * Tests for the workload-fingerprint similarity index: fingerprint
 * canonicalization, VP-tree vs brute-force bit equality (the property
 * the whole subsystem rests on), pooled batch-query determinism, the
 * most-redundant-pair engine, and snapshot durability.
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/fingerprint.hh"
#include "index/fingerprint_index.hh"
#include "index/snapshot.hh"
#include "index/vp_tree.hh"
#include "methodology/workload_space.hh"
#include "pipeline/thread_pool.hh"
#include "stats/rng.hh"

namespace mica::index
{
namespace
{

Matrix
randomDataset(size_t rows, size_t cols, uint64_t seed)
{
    Matrix m;
    Rng rng(seed);
    for (size_t r = 0; r < rows; ++r) {
        std::vector<double> v(cols);
        for (auto &x : v)
            x = rng.gauss();
        m.appendRow(v);
        m.rowNames.push_back("bench" + std::to_string(r));
    }
    return m;
}

/** Self-cleaning temp directory for snapshot tests. */
struct SnapDir
{
    std::string dir;

    SnapDir()
    {
        char tmpl[] = "/tmp/mica_test_index_XXXXXX";
        const char *made = mkdtemp(tmpl);
        dir = made ? made : "/tmp/mica_test_index_fallback";
    }

    ~SnapDir() { std::filesystem::remove_all(dir); }

    std::string path() const { return snapshotPath(dir); }
};

// ----------------------------------------------------------------------
// Fingerprint canonicalization.
// ----------------------------------------------------------------------

TEST(FingerprintTest, MatchesWorkloadSpaceNormalizationBitwise)
{
    const Matrix raw = randomDataset(20, 5, 3);
    const FingerprintSet fps = buildFingerprints(raw);
    const WorkloadSpace space{raw};
    ASSERT_EQ(fps.size(), 20u);
    ASSERT_EQ(fps.dim, 5u);
    for (size_t r = 0; r < 20; ++r)
        for (size_t c = 0; c < 5; ++c)
            EXPECT_EQ(fps.vec(r)[c], space.normalized().at(r, c))
                << "row " << r << " col " << c;
}

TEST(FingerprintTest, EmbedReproducesStoredVectorsBitwise)
{
    const Matrix raw = randomDataset(17, 6, 11);
    for (const size_t pca : {size_t{0}, size_t{3}}) {
        FingerprintOptions opt;
        opt.pcaDims = pca;
        const FingerprintSet fps = buildFingerprints(raw, opt);
        EXPECT_EQ(fps.dim, pca == 0 ? 6u : 3u);
        for (size_t r = 0; r < raw.rows(); ++r) {
            const auto v = fps.embed(raw.rowVec(r));
            ASSERT_EQ(v.size(), fps.dim);
            for (size_t c = 0; c < fps.dim; ++c)
                EXPECT_EQ(v[c], fps.vec(r)[c]);
        }
    }
}

TEST(FingerprintTest, ColumnSubsetRefreezesNormalization)
{
    const Matrix raw = randomDataset(12, 8, 7);
    FingerprintOptions opt;
    opt.columns = {1, 4, 6};
    const FingerprintSet fps = buildFingerprints(raw, opt);
    EXPECT_EQ(fps.dim, 3u);
    // Same as a fingerprint set over the projected matrix.
    const FingerprintSet direct =
        buildFingerprints(raw.selectCols(opt.columns));
    for (size_t r = 0; r < raw.rows(); ++r)
        for (size_t c = 0; c < 3; ++c)
            EXPECT_EQ(fps.vec(r)[c], direct.vec(r)[c]);
}

TEST(FingerprintTest, ConstantColumnsAndWidthMismatchAreHandled)
{
    Matrix raw;
    raw.appendRow({1.0, 2.0});
    raw.appendRow({1.0, 4.0});
    raw.rowNames = {"a", "b"};
    const FingerprintSet fps = buildFingerprints(raw);
    EXPECT_EQ(fps.vec(0)[0], 0.0);      // constant column -> zero
    EXPECT_EQ(fps.vec(1)[0], 0.0);
    EXPECT_THROW(fps.embed({1.0, 2.0, 3.0}), std::invalid_argument);
}

// ----------------------------------------------------------------------
// VP-tree vs brute force: the bit-equality property.
// ----------------------------------------------------------------------

TEST(VpTreeTest, KnnMatchesBruteAcrossSeedsSizesAndK)
{
    for (const uint64_t seed : {1u, 7u, 42u}) {
        for (const size_t n : {size_t{1}, size_t{2}, size_t{17},
                               size_t{64}}) {
            for (const size_t dim : {size_t{1}, size_t{4}}) {
                const Matrix raw = randomDataset(n, dim, seed);
                const FingerprintIndex idx = FingerprintIndex::build(raw);
                for (const size_t k : {size_t{1}, size_t{3}, n + 3}) {
                    for (size_t q = 0; q < n; ++q) {
                        const auto tree = idx.knn(q, k);
                        const auto brute = idx.knn(q, k, true);
                        ASSERT_EQ(tree.size(), brute.size());
                        for (size_t i = 0; i < tree.size(); ++i) {
                            EXPECT_EQ(tree[i].id, brute[i].id);
                            EXPECT_EQ(tree[i].dist, brute[i].dist);
                        }
                    }
                }
            }
        }
    }
}

TEST(VpTreeTest, ExternalQueriesMatchBrute)
{
    const Matrix raw = randomDataset(40, 5, 13);
    const FingerprintIndex idx = FingerprintIndex::build(raw);
    Rng rng(99);
    for (int t = 0; t < 20; ++t) {
        std::vector<double> q(5);
        for (auto &x : q)
            x = 3.0 * rng.gauss();
        const auto tree = idx.knnOfRaw(q, 7);
        const auto brute = idx.knnOfRaw(q, 7, true);
        ASSERT_EQ(tree.size(), brute.size());
        for (size_t i = 0; i < tree.size(); ++i)
            EXPECT_TRUE(tree[i] == brute[i]);
    }
}

TEST(VpTreeTest, DuplicatePointsTieBreakById)
{
    // Three identical rows plus distinct ones: distance ties must
    // resolve by id identically on both paths.
    Matrix raw;
    raw.appendRow({1.0, 1.0});
    raw.appendRow({0.0, 0.0});
    raw.appendRow({1.0, 1.0});
    raw.appendRow({1.0, 1.0});
    raw.appendRow({2.0, 2.0});
    for (size_t r = 0; r < raw.rows(); ++r)
        raw.rowNames.push_back("b" + std::to_string(r));
    const FingerprintIndex idx = FingerprintIndex::build(raw);
    for (size_t q = 0; q < raw.rows(); ++q) {
        const auto tree = idx.knn(q, 4);
        const auto brute = idx.knn(q, 4, true);
        ASSERT_EQ(tree.size(), brute.size());
        for (size_t i = 0; i < tree.size(); ++i)
            EXPECT_TRUE(tree[i] == brute[i]) << "query " << q;
    }
}

TEST(VpTreeTest, RadiusMatchesBruteIncludingBoundary)
{
    const Matrix raw = randomDataset(30, 4, 5);
    const FingerprintIndex idx = FingerprintIndex::build(raw);
    // Use realized distances as radii so the boundary case (dist ==
    // r) is actually exercised: both paths must include it.
    for (size_t q = 0; q < 5; ++q) {
        const auto nbs = idx.knn(q, 10);
        for (const auto &nb : nbs) {
            const auto tree = idx.radius(q, nb.dist);
            const auto brute = idx.radius(q, nb.dist, true);
            ASSERT_EQ(tree.size(), brute.size());
            bool boundary = false;
            for (size_t i = 0; i < tree.size(); ++i) {
                EXPECT_TRUE(tree[i] == brute[i]);
                boundary = boundary || tree[i].dist == nb.dist;
            }
            EXPECT_TRUE(boundary);
        }
    }
}

TEST(VpTreeTest, DegenerateSizes)
{
    const FingerprintIndex empty = FingerprintIndex::build(Matrix{});
    EXPECT_EQ(empty.size(), 0u);
    const Matrix one = randomDataset(1, 3, 2);
    const FingerprintIndex single = FingerprintIndex::build(one);
    EXPECT_TRUE(single.knn(0, 5).empty());          // only self exists
    EXPECT_TRUE(single.radius(0, 100.0).empty());
    EXPECT_TRUE(single.mostRedundant(4).empty());
}

// ----------------------------------------------------------------------
// Batch queries: jobs invariance.
// ----------------------------------------------------------------------

TEST(FingerprintIndexTest, BatchKnnIsJobsInvariant)
{
    const Matrix raw = randomDataset(60, 6, 21);
    const FingerprintIndex idx = FingerprintIndex::build(raw);
    pipeline::ThreadPool pool(8);
    const auto serial = idx.batchKnn(5, nullptr);
    const auto jobs8 = idx.batchKnn(5, &pool);
    ASSERT_EQ(serial.size(), jobs8.size());
    for (size_t q = 0; q < serial.size(); ++q) {
        ASSERT_EQ(serial[q].size(), jobs8[q].size());
        for (size_t i = 0; i < serial[q].size(); ++i)
            EXPECT_TRUE(serial[q][i] == jobs8[q][i]);
    }
}

TEST(FingerprintIndexTest, MostRedundantMatchesAllPairsScan)
{
    const Matrix raw = randomDataset(25, 4, 17);
    const FingerprintIndex idx = FingerprintIndex::build(raw);
    pipeline::ThreadPool pool(8);
    const size_t topN = 8;
    const auto tree = idx.mostRedundant(topN);
    const auto brute = idx.mostRedundant(topN, nullptr, true);
    const auto pooled = idx.mostRedundant(topN, &pool);

    // Ground truth: every pair, sorted by (dist, a, b).
    std::vector<RedundantPair> all;
    const auto &fps = idx.fingerprints();
    for (size_t a = 0; a < fps.size(); ++a)
        for (size_t b = a + 1; b < fps.size(); ++b)
            all.push_back({l2Dist(fps.vec(a), fps.vec(b), fps.dim),
                           static_cast<uint32_t>(a),
                           static_cast<uint32_t>(b)});
    std::sort(all.begin(), all.end());
    all.resize(topN);

    ASSERT_EQ(tree.size(), topN);
    for (size_t i = 0; i < topN; ++i) {
        EXPECT_TRUE(tree[i] == all[i]) << "rank " << i;
        EXPECT_TRUE(brute[i] == all[i]) << "rank " << i;
        EXPECT_TRUE(pooled[i] == all[i]) << "rank " << i;
    }
}

TEST(FingerprintIndexTest, NameLookup)
{
    const Matrix raw = randomDataset(10, 3, 1);
    const FingerprintIndex idx = FingerprintIndex::build(raw);
    EXPECT_EQ(idx.idOf("bench7"), 7);
    EXPECT_EQ(idx.idOf("nope"), -1);
    EXPECT_EQ(idx.nameOf(3), "bench3");
}

// ----------------------------------------------------------------------
// Snapshot durability.
// ----------------------------------------------------------------------

TEST(SnapshotTest, RoundTripPreservesEveryQueryBitwise)
{
    SnapDir tmp;
    const Matrix raw = randomDataset(33, 7, 29);
    FingerprintOptions opt;
    opt.pcaDims = 4;
    const FingerprintIndex built = FingerprintIndex::build(raw, opt);
    ASSERT_TRUE(saveIndexSnapshot(built, tmp.path(), "key-v1"));

    FingerprintIndex loaded;
    std::string why;
    ASSERT_TRUE(loadIndexSnapshot(tmp.path(), "key-v1", &loaded, &why))
        << why;
    EXPECT_EQ(loaded.size(), built.size());
    EXPECT_EQ(loaded.dim(), built.dim());
    EXPECT_EQ(loaded.fingerprints().data, built.fingerprints().data);
    EXPECT_EQ(loaded.fingerprints().names, built.fingerprints().names);
    EXPECT_EQ(loaded.tree().nodes().size(), built.tree().nodes().size());

    for (size_t q = 0; q < built.size(); ++q) {
        const auto a = built.knn(q, 6);
        const auto b = loaded.knn(q, 6);
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i)
            EXPECT_TRUE(a[i] == b[i]);
    }
    // The frozen embedding survives too: external queries agree.
    const auto ea = built.knnOfRaw(raw.rowVec(0), 3);
    const auto eb = loaded.knnOfRaw(raw.rowVec(0), 3);
    ASSERT_EQ(ea.size(), eb.size());
    for (size_t i = 0; i < ea.size(); ++i)
        EXPECT_TRUE(ea[i] == eb[i]);
}

TEST(SnapshotTest, SaveIsAtomicTornWriteRejectsAndRebuilds)
{
    SnapDir tmp;
    const FingerprintIndex built =
        FingerprintIndex::build(randomDataset(12, 4, 5));
    ASSERT_TRUE(saveIndexSnapshot(built, tmp.path(), "key-A"));
    // The staging file was renamed into place, never left behind.
    EXPECT_FALSE(std::filesystem::exists(tmp.path() + ".tmp"));

    // Tear the snapshot mid-file (what a crash used to leave when the
    // writer targeted the final path directly): load rejects cleanly.
    const auto full = std::filesystem::file_size(tmp.path());
    std::filesystem::resize_file(tmp.path(), full / 2);
    FingerprintIndex out;
    std::string why;
    EXPECT_FALSE(loadIndexSnapshot(tmp.path(), "key-A", &out, &why));
    EXPECT_FALSE(why.empty());

    // Re-saving over the torn file rebuilds a loadable snapshot, and
    // a stale .tmp from a crashed writer never blocks it.
    std::ofstream(tmp.path() + ".tmp") << "crash debris";
    ASSERT_TRUE(saveIndexSnapshot(built, tmp.path(), "key-A"));
    EXPECT_FALSE(std::filesystem::exists(tmp.path() + ".tmp"));
    ASSERT_TRUE(loadIndexSnapshot(tmp.path(), "key-A", &out, &why))
        << why;
    EXPECT_EQ(out.size(), built.size());
}

TEST(SnapshotTest, ReadSnapshotKeyPeeksWithoutLoading)
{
    SnapDir tmp;
    const FingerprintIndex built =
        FingerprintIndex::build(randomDataset(6, 2, 9));
    ASSERT_TRUE(saveIndexSnapshot(built, tmp.path(),
                                  "budget=1|space=key|pca=2"));
    std::string key;
    ASSERT_TRUE(readSnapshotKey(tmp.path(), &key));
    EXPECT_EQ(key, "budget=1|space=key|pca=2");
    EXPECT_FALSE(readSnapshotKey(tmp.dir + "/absent.bin", &key));
}

TEST(SnapshotTest, ProbeReadsHeaderOnlyAndFailsClosed)
{
    SnapDir tmp;
    const FingerprintIndex built =
        FingerprintIndex::build(randomDataset(6, 2, 9));
    ASSERT_TRUE(saveIndexSnapshot(built, tmp.path(), "key-v1"));

    const auto hit = probeSnapshotKey(tmp.path());
    EXPECT_TRUE(hit.valid);
    EXPECT_EQ(hit.key, "key-v1");

    // A missing file probes invalid with an empty key, not stale
    // state from an earlier probe.
    const auto gone = probeSnapshotKey(tmp.dir + "/absent.bin");
    EXPECT_FALSE(gone.valid);
    EXPECT_TRUE(gone.key.empty());

    // A header torn mid-key fails the probe rather than yielding a
    // truncated key that would spuriously mismatch (and rebuild).
    std::filesystem::resize_file(tmp.path(), 8);
    const auto torn = probeSnapshotKey(tmp.path());
    EXPECT_FALSE(torn.valid);
    EXPECT_TRUE(torn.key.empty());

    // Wrong magic is not a snapshot at all.
    {
        std::ofstream bad(tmp.path(), std::ios::binary | std::ios::trunc);
        bad << "NOTANIDX with a plausible-looking tail";
    }
    EXPECT_FALSE(probeSnapshotKey(tmp.path()).valid);
}

TEST(SnapshotTest, RejectsKeyMismatchMissingAndCorruptFiles)
{
    SnapDir tmp;
    const FingerprintIndex built =
        FingerprintIndex::build(randomDataset(8, 3, 2));
    ASSERT_TRUE(saveIndexSnapshot(built, tmp.path(), "key-A"));

    FingerprintIndex out;
    std::string why;
    EXPECT_FALSE(loadIndexSnapshot(tmp.path(), "key-B", &out, &why));
    EXPECT_NE(why.find("mismatch"), std::string::npos);
    EXPECT_FALSE(
        loadIndexSnapshot(tmp.dir + "/absent.bin", "key-A", &out, &why));

    // Truncation anywhere in the payload rejects the file.
    std::ifstream in(tmp.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    {
        std::ofstream cut(tmp.path(), std::ios::binary | std::ios::trunc);
        cut.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
    }
    EXPECT_FALSE(loadIndexSnapshot(tmp.path(), "key-A", &out, &why));

    // A scribbled magic is not an index snapshot.
    {
        std::ofstream bad(tmp.path(), std::ios::binary | std::ios::trunc);
        bad << "NOTANIDX and then some garbage bytes";
    }
    EXPECT_FALSE(loadIndexSnapshot(tmp.path(), "key-A", &out, &why));
    EXPECT_NE(why.find("not an index snapshot"), std::string::npos);
}

TEST(SnapshotTest, RejectsStructurallyCorruptTrees)
{
    // A tree whose links form a shared subtree (or a cycle) must be
    // rejected at load, not crash the first query.
    SnapDir tmp;
    const Matrix raw = randomDataset(3, 2, 4);
    const FingerprintSet fps = buildFingerprints(raw);
    std::vector<VpNode> bad(3);
    bad[0] = {0, 1, 1, 0.5};            // both children point at node 1
    bad[1] = {1, VpNode::kNil, VpNode::kNil, 0.0};
    bad[2] = {2, VpNode::kNil, VpNode::kNil, 0.0};
    const FingerprintIndex idx = FingerprintIndex::fromParts(
        fps, VpTree(std::move(bad), fps.dim));
    ASSERT_TRUE(saveIndexSnapshot(idx, tmp.path(), "key-A"));

    FingerprintIndex out;
    std::string why;
    EXPECT_FALSE(loadIndexSnapshot(tmp.path(), "key-A", &out, &why));
    EXPECT_NE(why.find("corrupt tree structure"), std::string::npos);
}

TEST(SnapshotTest, RejectsHugeHeaderCountsWithoutAllocating)
{
    SnapDir tmp;
    const std::string key = "key-A";
    const FingerprintIndex built =
        FingerprintIndex::build(randomDataset(8, 3, 2));
    ASSERT_TRUE(saveIndexSnapshot(built, tmp.path(), key));

    // Patch count and dim to values that pass the per-field caps but
    // whose product would ask for tens of gigabytes: the loader must
    // reject the header, not attempt the allocation.
    std::fstream f(tmp.path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    const std::streamoff countOff = 8 + 4 + 4 + 4 +
        static_cast<std::streamoff>(key.size());
    const uint64_t hugeCount = 1u << 20, hugeDim = 1u << 16;
    f.seekp(countOff);
    f.write(reinterpret_cast<const char *>(&hugeCount),
            sizeof(hugeCount));
    f.write(reinterpret_cast<const char *>(&hugeDim), sizeof(hugeDim));
    f.close();

    FingerprintIndex out;
    std::string why;
    EXPECT_FALSE(loadIndexSnapshot(tmp.path(), key, &out, &why));
    EXPECT_NE(why.find("corrupt"), std::string::npos);
}

} // namespace
} // namespace mica::index
