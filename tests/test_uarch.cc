/**
 * @file
 * Tests for the microarchitecture substrate: caches, TLB, branch
 * predictors, and the hardware-counter analyzer.
 */

#include <gtest/gtest.h>

#include "stats/rng.hh"
#include "test_util.hh"
#include "trace/synthetic.hh"
#include "uarch/cache.hh"
#include "uarch/hpc_runner.hh"
#include "uarch/hw_counter.hh"
#include "uarch/predictors.hh"

namespace mica::uarch
{
namespace
{

// ----------------------------------------------------------------------
// Cache.
// ----------------------------------------------------------------------

TEST(CacheTest, ColdMissesThenHits)
{
    Cache c({1024, 32, 1});
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x11f));       // same 32B line
    EXPECT_FALSE(c.access(0x120));      // next line
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

TEST(CacheTest, DirectMappedConflictEviction)
{
    // 1 KB direct mapped, 32B lines -> 32 sets; addresses 1 KB apart
    // conflict.
    Cache c({1024, 32, 1});
    EXPECT_FALSE(c.access(0x0));
    EXPECT_FALSE(c.access(0x400));      // evicts 0x0
    EXPECT_FALSE(c.access(0x0));        // miss again
}

TEST(CacheTest, TwoWayAssociativityAbsorbsTheConflict)
{
    Cache c({1024, 32, 2});
    EXPECT_FALSE(c.access(0x0));
    EXPECT_FALSE(c.access(0x400));
    EXPECT_TRUE(c.access(0x0));         // still resident
    EXPECT_TRUE(c.access(0x400));
}

TEST(CacheTest, LruEvictsTheOldestWay)
{
    // One set, 2 ways: A, B, touch A, insert C -> B evicted.
    Cache c({64, 32, 2});
    EXPECT_EQ(c.numSets(), 1u);
    c.access(0x000);                    // A
    c.access(0x100);                    // B
    c.access(0x000);                    // touch A
    c.access(0x200);                    // C evicts B (LRU)
    EXPECT_TRUE(c.access(0x000));
    EXPECT_FALSE(c.access(0x100));
}

TEST(CacheTest, SequentialStreamMissRateIsOnePerLine)
{
    Cache c({8192, 32, 1});
    for (uint64_t a = 0; a < 4096; a += 8)
        c.access(0x100000 + a);
    // 512 accesses, one miss per 32B line = 128 misses.
    EXPECT_EQ(c.accesses(), 512u);
    EXPECT_EQ(c.misses(), 128u);
}

TEST(TlbTest, PageGranularityAndCapacity)
{
    Tlb tlb(4, 12);                     // 4 entries, 4 KB pages
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1fff));    // same page
    // Fill the remaining 3 entries, then one more evicts the LRU.
    tlb.access(0x2000);
    tlb.access(0x3000);
    tlb.access(0x4000);
    EXPECT_TRUE(tlb.access(0x1000));    // still resident (was MRU-ish)
    tlb.access(0x5000);
    tlb.access(0x6000);
    tlb.access(0x7000);
    EXPECT_FALSE(tlb.access(0x2000));   // long evicted
}

// ----------------------------------------------------------------------
// Hardware predictors.
// ----------------------------------------------------------------------

TEST(BimodalTest, LearnsABiasedBranch)
{
    BimodalPredictor bp;
    int misses = 0;
    for (int i = 0; i < 1000; ++i)
        misses += bp.predictAndUpdate(0x40, true) != true;
    EXPECT_LT(misses, 5);
}

TEST(BimodalTest, AlternatingBranchDefeatsTwoBitCounters)
{
    BimodalPredictor bp;
    int misses = 0;
    for (int i = 0; i < 1000; ++i)
        misses += bp.predictAndUpdate(0x40, i % 2 == 0) != (i % 2 == 0);
    // A bimodal counter cannot learn T/N/T/N; expect ~50% or worse.
    EXPECT_GT(misses, 400);
}

TEST(TournamentTest, LearnsAlternatingViaLocalHistory)
{
    TournamentPredictor tp;
    int misses = 0;
    for (int i = 0; i < 4000; ++i) {
        const bool t = i % 2 == 0;
        misses += tp.predictAndUpdate(0x40, t) != t;
    }
    EXPECT_LT(misses, 400);             // much better than bimodal
}

TEST(TournamentTest, TracksGlobalCorrelation)
{
    // Branch B follows branch A's outcome; global history captures it.
    TournamentPredictor tp;
    Rng rng(3);
    int missesB = 0;
    for (int i = 0; i < 6000; ++i) {
        const bool a = rng.chance(0.5);
        tp.predictAndUpdate(0x100, a);
        missesB += tp.predictAndUpdate(0x200, a) != a;
    }
    EXPECT_LT(missesB / 6000.0, 0.15);
}

// ----------------------------------------------------------------------
// Hardware-counter analyzer.
// ----------------------------------------------------------------------

TEST(HwCounterTest, MetricsAreWellFormed)
{
    RandomTraceParams p;
    p.numInsts = 30000;
    p.seed = 5;
    RandomTraceSource src(p);
    const HwCounterProfile prof = collectHwProfile(src, "rand");
    EXPECT_EQ(prof.name, "rand");
    EXPECT_EQ(prof.instCount, 30000u);
    EXPECT_GT(prof.ipcEv56, 0.0);
    EXPECT_LE(prof.ipcEv56, 2.0);       // dual issue bound
    EXPECT_GT(prof.ipcEv67, 0.0);
    EXPECT_LE(prof.ipcEv67, 4.0);       // quad issue bound
    for (double r : {prof.branchMissRate, prof.l1dMissRate,
                     prof.l1iMissRate, prof.l2MissRate,
                     prof.dtlbMissRate}) {
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, 1.0);
    }
}

TEST(HwCounterTest, TinyLoopHasNoL1IMisses)
{
    // All instructions within one 32-byte I-cache line region.
    std::vector<InstRecord> recs;
    for (int i = 0; i < 5000; ++i) {
        InstRecord r = test::alu(1, {1});
        r.pc = 0x400000 + 4 * (i % 4);
        recs.push_back(r);
    }
    VectorTraceSource src(recs);
    const HwCounterProfile prof = collectHwProfile(src, "loop");
    EXPECT_LT(prof.l1iMissRate, 0.001);
}

TEST(HwCounterTest, StreamingLoadsMissOncePerLine)
{
    std::vector<InstRecord> recs;
    for (int i = 0; i < 8192; ++i)
        recs.push_back(test::load(0x10000000 + 8 * i));
    VectorTraceSource src(recs);
    const HwCounterProfile prof = collectHwProfile(src, "stream");
    // 8B strides over 32B lines -> miss every 4th access.
    EXPECT_NEAR(prof.l1dMissRate, 0.25, 0.02);
}

TEST(HwCounterTest, PointerChaseBeyondCacheMissesHard)
{
    // Strided accesses covering 1 MB >> 8 KB L1 and 96 KB L2.
    std::vector<InstRecord> recs;
    uint64_t addr = 0x10000000;
    for (int i = 0; i < 16384; ++i) {
        recs.push_back(test::load(addr));
        addr += 8192 + 64;              // new 8 KB TLB page every access
    }
    VectorTraceSource src(recs);
    const HwCounterProfile prof = collectHwProfile(src, "chase");
    EXPECT_GT(prof.l1dMissRate, 0.95);
    EXPECT_GT(prof.l2MissRate, 0.9);
    EXPECT_GT(prof.dtlbMissRate, 0.9);
}

TEST(HwCounterTest, PredictableBranchesBarelyMiss)
{
    std::vector<InstRecord> recs;
    for (int i = 0; i < 10000; ++i)
        recs.push_back(test::branch(0x400000, true));
    VectorTraceSource src(recs);
    const HwCounterProfile prof = collectHwProfile(src, "pred");
    EXPECT_LT(prof.branchMissRate, 0.01);
}

TEST(HwCounterTest, RandomBranchesMissOftenOnEv56)
{
    Rng rng(7);
    std::vector<InstRecord> recs;
    for (int i = 0; i < 10000; ++i)
        recs.push_back(test::branch(0x400000, rng.chance(0.5)));
    VectorTraceSource src(recs);
    const HwCounterProfile prof = collectHwProfile(src, "noise");
    EXPECT_GT(prof.branchMissRate, 0.35);
}

TEST(HwCounterTest, MissesReduceIpc)
{
    // Same instruction count; one trace hits L1, the other misses to
    // memory. The in-order IPC must be strictly lower for the misser.
    std::vector<InstRecord> hitRecs, missRecs;
    for (int i = 0; i < 20000; ++i) {
        hitRecs.push_back(test::load(0x10000000 + (i % 8) * 8));
        missRecs.push_back(test::load(0x10000000 + i * 4160));
    }
    VectorTraceSource hitSrc(hitRecs), missSrc(missRecs);
    const auto hit = collectHwProfile(hitSrc, "hit");
    const auto miss = collectHwProfile(missSrc, "miss");
    EXPECT_GT(hit.ipcEv56, miss.ipcEv56 * 2);
    EXPECT_GT(hit.ipcEv67, miss.ipcEv67);
}

TEST(HwCounterTest, IndependentAluApproachesIssueWidth)
{
    std::vector<InstRecord> recs;
    for (int i = 0; i < 20000; ++i) {
        InstRecord r = test::alu(kInvalidReg);
        r.pc = 0x400000 + 4 * (i % 8);
        recs.push_back(r);
    }
    VectorTraceSource src(recs);
    const auto prof = collectHwProfile(src, "wide");
    EXPECT_GT(prof.ipcEv56, 1.8);
    EXPECT_GT(prof.ipcEv67, 3.5);
}

TEST(HwCounterTest, SerialChainLimitsEv67)
{
    std::vector<InstRecord> recs;
    for (int i = 0; i < 20000; ++i) {
        InstRecord r = test::alu(1, {1});
        r.pc = 0x400000 + 4 * (i % 8);
        recs.push_back(r);
    }
    VectorTraceSource src(recs);
    const auto prof = collectHwProfile(src, "serial");
    EXPECT_LT(prof.ipcEv67, 1.2);
}

TEST(HwCounterTest, MetricNamesAndVectorAgree)
{
    const auto &names = HwCounterProfile::metricNames();
    EXPECT_EQ(names.size(), HwCounterProfile::kNumMetrics);
    HwCounterProfile p;
    p.ipcEv56 = 1;
    p.ipcEv67 = 2;
    p.branchMissRate = 3;
    p.l1dMissRate = 4;
    p.l1iMissRate = 5;
    p.l2MissRate = 6;
    p.dtlbMissRate = 7;
    const auto v = p.toVector();
    ASSERT_EQ(v.size(), HwCounterProfile::kNumMetrics);
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_DOUBLE_EQ(v[i], double(i + 1));
}

TEST(HwCounterTest, ProfilesToMatrixPreservesRows)
{
    RandomTraceParams p;
    p.numInsts = 5000;
    std::vector<HwCounterProfile> profs;
    for (uint64_t s = 1; s <= 3; ++s) {
        p.seed = s;
        RandomTraceSource src(p);
        profs.push_back(collectHwProfile(src, "b" + std::to_string(s)));
    }
    const Matrix m = hwProfilesToMatrix(profs);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), HwCounterProfile::kNumMetrics);
    EXPECT_EQ(m.rowNames[2], "b3");
    EXPECT_DOUBLE_EQ(m(1, 0), profs[1].ipcEv56);
}

TEST(HwCounterTest, BudgetTruncatesCollection)
{
    RandomTraceParams p;
    p.numInsts = 50000;
    RandomTraceSource src(p);
    const auto prof = collectHwProfile(src, "capped", 1000);
    EXPECT_EQ(prof.instCount, 1000u);
}

} // namespace
} // namespace mica::uarch
