/**
 * @file
 * Tests for the methodology layer: workload spaces, the Table III
 * classifier, correlation elimination, the genetic selector, clustering
 * reports, and kiviat construction.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "methodology/classifier.hh"
#include "methodology/cluster_report.hh"
#include "methodology/correlation_elimination.hh"
#include "methodology/genetic_selector.hh"
#include "methodology/kiviat.hh"
#include "methodology/workload_space.hh"
#include "pipeline/thread_pool.hh"
#include "stats/descriptive.hh"
#include "stats/rng.hh"

namespace mica
{
namespace
{

/** Synthetic dataset: `rows` benchmarks x `cols` characteristics. */
Matrix
randomDataset(size_t rows, size_t cols, uint64_t seed)
{
    Matrix m;
    Rng rng(seed);
    for (size_t r = 0; r < rows; ++r) {
        std::vector<double> v(cols);
        for (auto &x : v)
            x = rng.gauss();
        m.appendRow(v);
    }
    for (size_t r = 0; r < rows; ++r)
        m.rowNames.push_back("bench" + std::to_string(r));
    return m;
}

/** Dataset with exact duplicate and near-constant columns. */
Matrix
structuredDataset(size_t rows, uint64_t seed)
{
    Matrix m;
    Rng rng(seed);
    for (size_t r = 0; r < rows; ++r) {
        const double a = rng.gauss();
        const double b = rng.gauss();
        // cols: a, a (duplicate), b, -b (anticorrelated), noise.
        m.appendRow({a, a, b, -b, rng.gauss()});
    }
    return m;
}

// ----------------------------------------------------------------------
// WorkloadSpace.
// ----------------------------------------------------------------------

TEST(WorkloadSpaceTest, NormalizationMakesColumnsStandard)
{
    const WorkloadSpace ws(randomDataset(60, 5, 1));
    for (size_t c = 0; c < ws.numChars(); ++c) {
        EXPECT_NEAR(mean(ws.normalized().colVec(c)), 0.0, 1e-10);
        EXPECT_NEAR(stddev(ws.normalized().colVec(c)), 1.0, 1e-10);
    }
    EXPECT_EQ(ws.numBenchmarks(), 60u);
}

TEST(WorkloadSpaceTest, RawDataIsPreserved)
{
    const Matrix raw = randomDataset(10, 3, 2);
    const WorkloadSpace ws(raw);
    for (size_t r = 0; r < raw.rows(); ++r)
        for (size_t c = 0; c < raw.cols(); ++c)
            EXPECT_DOUBLE_EQ(ws.raw()(r, c), raw(r, c));
}

TEST(WorkloadSpaceTest, DistancesComeFromNormalizedSpace)
{
    // A column with a huge scale must not dominate after z-scoring.
    Matrix m;
    m.appendRow({0.0, 0.0});
    m.appendRow({1000.0, 1.0});
    m.appendRow({2000.0, 2.0});
    const WorkloadSpace ws(m);
    // In the normalized space both columns contribute identically, so
    // d(0,1) == d(1,2).
    EXPECT_NEAR(ws.distances().at(0, 1), ws.distances().at(1, 2), 1e-9);
}

TEST(WorkloadSpaceTest, SubsetDistancesMatchFullWhenAllColumns)
{
    const WorkloadSpace ws(randomDataset(20, 4, 3));
    std::vector<size_t> all = {0, 1, 2, 3};
    const DistanceMatrix sub = ws.distancesForSubset(all);
    for (size_t i = 0; i < sub.numPairs(); ++i)
        EXPECT_NEAR(sub.condensed()[i], ws.distances().condensed()[i],
                    1e-12);
}

// ----------------------------------------------------------------------
// Similarity classifier (Table III).
// ----------------------------------------------------------------------

TEST(ClassifierTest, QuadrantsClosedForm)
{
    // ref max 10 -> threshold 2; cand max 100 -> threshold 20.
    const std::vector<double> ref = {1.0, 5.0, 1.0, 10.0};
    const std::vector<double> cand = {10.0, 90.0, 50.0, 100.0};
    const auto q = classifyTuples(ref, cand, 0.2, 0.2);
    EXPECT_EQ(q.total, 4u);
    EXPECT_EQ(q.trueNegative, 1u);      // (1, 10)
    EXPECT_EQ(q.truePositive, 2u);      // (5, 90), (10, 100)
    EXPECT_EQ(q.falsePositive, 1u);     // (1, 50)
    EXPECT_EQ(q.falseNegative, 0u);
    EXPECT_DOUBLE_EQ(q.refThreshold, 2.0);
    EXPECT_DOUBLE_EQ(q.candThreshold, 20.0);
}

TEST(ClassifierTest, FractionsSumToOne)
{
    Rng rng(5);
    std::vector<double> ref(500), cand(500);
    for (size_t i = 0; i < ref.size(); ++i) {
        ref[i] = rng.unit();
        cand[i] = rng.unit();
    }
    const auto q = classifyTuples(ref, cand);
    EXPECT_NEAR(q.fracTP() + q.fracTN() + q.fracFP() + q.fracFN(), 1.0,
                1e-12);
}

TEST(ClassifierTest, IdenticalSpacesHaveNoFalseQuadrants)
{
    Rng rng(7);
    std::vector<double> d(300);
    for (auto &x : d)
        x = rng.unit();
    const auto q = classifyTuples(d, d);
    EXPECT_EQ(q.falsePositive, 0u);
    EXPECT_EQ(q.falseNegative, 0u);
    EXPECT_DOUBLE_EQ(q.sensitivity(), 1.0);
    EXPECT_DOUBLE_EQ(q.specificity(), 1.0);
}

TEST(ClassifierTest, ThresholdFractionMovesTheBoundary)
{
    const std::vector<double> ref = {1.0, 9.0, 10.0};
    const std::vector<double> cand = {1.0, 9.0, 10.0};
    const auto strict = classifyTuples(ref, cand, 0.95, 0.95);
    const auto loose = classifyTuples(ref, cand, 0.05, 0.05);
    EXPECT_EQ(strict.truePositive, 1u);     // only the max is "large"
    EXPECT_EQ(loose.truePositive, 3u);      // everything is "large"
}

// ----------------------------------------------------------------------
// Correlation elimination.
// ----------------------------------------------------------------------

TEST(CorrelationEliminationTest, RemovesARedundantDuplicateFirst)
{
    const WorkloadSpace ws(structuredDataset(80, 11));
    const auto res = correlationElimination(ws);
    EXPECT_EQ(res.numChars, 5u);
    // The last surviving characteristic is never eliminated.
    EXPECT_EQ(res.eliminationOrder.size(), 4u);
    // The first eliminated characteristic must be one of the perfectly
    // correlated groups (columns 0/1 duplicate, 2/3 anticorrelated).
    const size_t first = res.eliminationOrder[0];
    EXPECT_TRUE(first <= 3) << "eliminated " << first;
}

TEST(CorrelationEliminationTest, TrajectoryCoversAllSizes)
{
    const WorkloadSpace ws(randomDataset(40, 6, 13));
    const auto res = correlationElimination(ws);
    EXPECT_EQ(res.distanceCorrByK.size(), 6u);
    // Keeping all characteristics reproduces the space exactly.
    EXPECT_NEAR(res.distanceCorrByK[5], 1.0, 1e-9);
    for (double rho : res.distanceCorrByK) {
        EXPECT_GE(rho, -1.0);
        EXPECT_LE(rho, 1.0 + 1e-12);
    }
}

TEST(CorrelationEliminationTest, RetainedSetsAreConsistent)
{
    const WorkloadSpace ws(randomDataset(30, 5, 17));
    const auto res = correlationElimination(ws);
    for (size_t k = 1; k <= 5; ++k) {
        const auto kept = res.retained(k);
        EXPECT_EQ(kept.size(), k);
        // retained(k) must be disjoint from the first (N-k) removals.
        for (size_t r = 0; r + k < 5; ++r) {
            for (size_t c : kept)
                EXPECT_NE(c, res.eliminationOrder[r]);
        }
    }
}

TEST(CorrelationEliminationTest, DroppingDuplicatesBarelyHurtsRho)
{
    const WorkloadSpace ws(structuredDataset(100, 19));
    const auto res = correlationElimination(ws);
    // After removing 2 of 5 (the redundant pair members), distances
    // should still correlate almost perfectly with the full space.
    EXPECT_GT(res.distanceCorrByK[2], 0.95);
}

// ----------------------------------------------------------------------
// Genetic selector.
// ----------------------------------------------------------------------

TEST(GeneticSelectorTest, FullSubsetHasRhoOneAndZeroFitness)
{
    const WorkloadSpace ws(randomDataset(25, 6, 23));
    const auto [fitness, rho] =
        subsetFitness(ws, {0, 1, 2, 3, 4, 5});
    EXPECT_NEAR(rho, 1.0, 1e-9);
    EXPECT_NEAR(fitness, 0.0, 1e-9);    // (1 - n/N) factor vanishes
}

TEST(GeneticSelectorTest, EmptySubsetScoresZero)
{
    const WorkloadSpace ws(randomDataset(25, 6, 29));
    const auto [fitness, rho] = subsetFitness(ws, {});
    EXPECT_DOUBLE_EQ(fitness, 0.0);
    EXPECT_DOUBLE_EQ(rho, 0.0);
}

TEST(GeneticSelectorTest, FitnessMatchesDefinition)
{
    const WorkloadSpace ws(randomDataset(30, 8, 31));
    const std::vector<size_t> subset = {1, 4, 6};
    const auto [fitness, rho] = subsetFitness(ws, subset);
    EXPECT_NEAR(fitness, rho * (1.0 - 3.0 / 8.0), 1e-12);
}

TEST(GeneticSelectorTest, FindsTheInformativeColumnsInStructuredData)
{
    // Columns 0/1 duplicated and 2/3 anticorrelated: a good subset
    // keeps one per group plus the noise column.
    const WorkloadSpace ws(structuredDataset(120, 37));
    GaConfig cfg;
    cfg.maxGenerations = 150;
    cfg.seed = 7;
    const GaResult res = geneticSelect(ws, cfg);
    EXPECT_LE(res.selected.size(), 4u);
    EXPECT_GE(res.selected.size(), 2u);
    EXPECT_GT(res.distanceCorrelation, 0.9);
    // Must not keep both members of a perfectly redundant pair.
    int dupCount = 0, antiCount = 0;
    for (size_t s : res.selected) {
        dupCount += (s == 0 || s == 1);
        antiCount += (s == 2 || s == 3);
    }
    EXPECT_LE(dupCount, 1);
    EXPECT_LE(antiCount, 1);
}

TEST(GeneticSelectorTest, DeterministicForFixedSeed)
{
    const WorkloadSpace ws(randomDataset(40, 10, 41));
    GaConfig cfg;
    cfg.maxGenerations = 60;
    cfg.seed = 99;
    const GaResult a = geneticSelect(ws, cfg);
    const GaResult b = geneticSelect(ws, cfg);
    EXPECT_EQ(a.selected, b.selected);
    EXPECT_DOUBLE_EQ(a.fitness, b.fitness);
}

TEST(GeneticSelectorTest, FitnessHistoryIsNonDecreasing)
{
    const WorkloadSpace ws(randomDataset(30, 8, 43));
    GaConfig cfg;
    cfg.maxGenerations = 50;
    const GaResult res = geneticSelect(ws, cfg);
    ASSERT_FALSE(res.bestFitnessHistory.empty());
    for (size_t g = 1; g < res.bestFitnessHistory.size(); ++g)
        EXPECT_GE(res.bestFitnessHistory[g] + 1e-12,
                  res.bestFitnessHistory[g - 1]);
    EXPECT_EQ(res.generationsRun, res.bestFitnessHistory.size());
}

TEST(GeneticSelectorTest, BeatsTheAverageRandomSubsetOfSameSize)
{
    const WorkloadSpace ws(randomDataset(35, 12, 47));
    GaConfig cfg;
    cfg.maxGenerations = 120;
    const GaResult res = geneticSelect(ws, cfg);
    Rng rng(53);
    double randTotal = 0;
    const int trials = 30;
    // One shared engine for all trials — the loop pattern the shared
    // FitnessEval API exists for.
    const FitnessEval eval(ws);
    for (int t = 0; t < trials; ++t) {
        std::vector<size_t> subset;
        while (subset.size() < res.selected.size()) {
            const size_t c = rng.below(12);
            bool dup = false;
            for (size_t s : subset)
                dup = dup || s == c;
            if (!dup)
                subset.push_back(c);
        }
        randTotal += subsetFitness(eval, subset).first;
    }
    EXPECT_GE(res.fitness, randTotal / trials);
}

TEST(GeneticSelectorTest, ParallelRunsAreByteIdenticalAcrossSeeds)
{
    // The determinism contract of the methodology engine: for a fixed
    // seed, the GA run fanned across 8 workers must match the serial
    // run exactly — selected masks, fitness values, and the whole
    // per-generation history.
    const WorkloadSpace ws(randomDataset(40, 12, 59));
    pipeline::ThreadPool pool(8);
    for (uint64_t seed : {7ull, 99ull, 20061027ull}) {
        GaConfig cfg;
        cfg.maxGenerations = 40;
        cfg.seed = seed;
        const GaResult serial = geneticSelect(ws, cfg);
        const GaResult parallel = geneticSelect(ws, cfg, &pool);
        EXPECT_EQ(serial.selected, parallel.selected) << "seed " << seed;
        EXPECT_EQ(serial.generationsRun, parallel.generationsRun);
        EXPECT_EQ(serial.bestFitnessHistory, parallel.bestFitnessHistory);
        EXPECT_DOUBLE_EQ(serial.fitness, parallel.fitness);
        EXPECT_DOUBLE_EQ(serial.distanceCorrelation,
                         parallel.distanceCorrelation);
    }
}

TEST(GeneticSelectorTest, SharedFitnessEvalMatchesThrowawayEngine)
{
    // One engine, many scores: the shared-FitnessEval API must agree
    // exactly with the convenience overload that rebuilds the engine.
    const WorkloadSpace ws(randomDataset(30, 9, 61));
    const FitnessEval eval(ws);
    EXPECT_EQ(eval.numChars(), 9u);
    EXPECT_EQ(eval.numPairs(), 30u * 29u / 2u);
    const std::vector<std::vector<size_t>> subsets = {
        {0}, {1, 4}, {2, 5, 8}, {0, 1, 2, 3, 4, 5, 6, 7, 8}, {}};
    for (const auto &subset : subsets) {
        const auto shared = subsetFitness(eval, subset);
        const auto throwaway = subsetFitness(ws, subset);
        EXPECT_DOUBLE_EQ(shared.first, throwaway.first);
        EXPECT_DOUBLE_EQ(shared.second, throwaway.second);
    }
}

TEST(GeneticSelectorTest, MemoizedAndPureFitnessPathsAgree)
{
    const WorkloadSpace ws(randomDataset(25, 10, 67));
    const FitnessEval eval(ws);
    Rng rng(5);
    for (int i = 0; i < 50; ++i) {
        const uint64_t mask = rng.next() & ((1ull << 10) - 1);
        const auto memoized = eval(mask ? mask : 1);
        const auto pure = eval.compute(mask ? mask : 1);
        EXPECT_DOUBLE_EQ(memoized.first, pure.first);
        EXPECT_DOUBLE_EQ(memoized.second, pure.second);
    }
}

TEST(GeneticSelectorTest, ParallelPrecomputeMatchesSerial)
{
    pipeline::ThreadPool pool(8);
    const WorkloadSpace serialSpace(randomDataset(35, 11, 71));
    const WorkloadSpace parallelSpace(randomDataset(35, 11, 71), &pool);
    EXPECT_EQ(serialSpace.distances().condensed(),
              parallelSpace.distances().condensed());
    const FitnessEval serial(serialSpace);
    const FitnessEval parallel(parallelSpace, &pool);
    Rng rng(3);
    for (int i = 0; i < 40; ++i) {
        const uint64_t mask = (rng.next() & ((1ull << 11) - 1)) | 1;
        EXPECT_DOUBLE_EQ(serial.compute(mask).first,
                         parallel.compute(mask).first);
        EXPECT_DOUBLE_EQ(serial.compute(mask).second,
                         parallel.compute(mask).second);
    }
}

// ----------------------------------------------------------------------
// Cluster report and kiviats.
// ----------------------------------------------------------------------

Matrix
groupedDataset(uint64_t seed)
{
    // Four well-separated groups of benchmarks in 3-D.
    Matrix m;
    Rng rng(seed);
    const double centers[4][3] = {
        {0, 0, 0}, {20, 0, 0}, {0, 20, 0}, {0, 0, 20}};
    int idx = 0;
    for (int g = 0; g < 4; ++g) {
        for (int i = 0; i < 8; ++i, ++idx) {
            m.appendRow({centers[g][0] + 0.3 * rng.gauss(),
                         centers[g][1] + 0.3 * rng.gauss(),
                         centers[g][2] + 0.3 * rng.gauss()});
            m.rowNames.push_back((g < 2 ? std::string("SuiteA/") :
                                          std::string("SuiteB/")) +
                                 "b" + std::to_string(idx));
        }
    }
    return m;
}

TEST(ClusterReportTest, FindsTheFourGroups)
{
    const ClusterReport rep = clusterBenchmarks(groupedDataset(57), 10, 3);
    EXPECT_EQ(rep.chosenK, 4u);
    EXPECT_EQ(rep.clusters.size(), 4u);
    for (const auto &c : rep.clusters)
        EXPECT_EQ(c.members.size(), 8u);
    // Clusters are sorted by size descending (all equal here) and carry
    // resolved names.
    EXPECT_FALSE(rep.clusters[0].memberNames.empty());
}

TEST(ClusterReportTest, SuiteHistogramCountsPrefixes)
{
    const ClusterReport rep = clusterBenchmarks(groupedDataset(61), 10, 3);
    const std::vector<std::string> suites = {"SuiteA", "SuiteB"};
    size_t aTotal = 0, bTotal = 0;
    for (const auto &c : rep.clusters) {
        const auto h = rep.suiteHistogram(c, suites);
        ASSERT_EQ(h.size(), 2u);
        aTotal += h[0];
        bTotal += h[1];
        EXPECT_EQ(h[0] + h[1], c.members.size());
    }
    EXPECT_EQ(aTotal, 16u);
    EXPECT_EQ(bTotal, 16u);
}

TEST(ClusterReportTest, AssignmentAgreesWithClusters)
{
    const ClusterReport rep = clusterBenchmarks(groupedDataset(67), 8, 5);
    for (size_t ci = 0; ci < rep.clusters.size(); ++ci) {
        for (size_t m : rep.clusters[ci].members)
            EXPECT_EQ(rep.assignment[m],
                      static_cast<int>(rep.clusters[ci].id));
    }
}

TEST(ClusterReportTest, SingletonDetection)
{
    Matrix m = groupedDataset(71);
    // Add one extreme outlier benchmark.
    m.appendRow({500, 500, 500});
    m.rowNames.push_back("SuiteB/outlier");
    const ClusterReport rep = clusterBenchmarks(m, 12, 3);
    bool foundSingleton = false;
    for (const auto &c : rep.clusters) {
        if (c.isSingleton() &&
            c.memberNames[0] == "SuiteB/outlier") {
            foundSingleton = true;
        }
    }
    EXPECT_TRUE(foundSingleton);
}

TEST(ClusterReportTest, EmptyDatasetYieldsEmptyReport)
{
    const Matrix empty;
    const ClusterReport rep = clusterBenchmarks(empty, 10, 3);
    EXPECT_EQ(rep.chosenK, 0u);
    EXPECT_TRUE(rep.clusters.empty());
    EXPECT_TRUE(rep.assignment.empty());
}

TEST(ClusterReportTest, ParallelSweepIsByteIdentical)
{
    const Matrix data = groupedDataset(73);
    pipeline::ThreadPool pool(8);
    const ClusterReport serial = clusterBenchmarks(data, 10, 3);
    const ClusterReport parallel =
        clusterBenchmarks(data, 10, 3, 0.9, 0.25, &pool);
    EXPECT_EQ(serial.chosenK, parallel.chosenK);
    EXPECT_EQ(serial.bicByK, parallel.bicByK);
    EXPECT_EQ(serial.assignment, parallel.assignment);
    ASSERT_EQ(serial.clusters.size(), parallel.clusters.size());
    for (size_t c = 0; c < serial.clusters.size(); ++c) {
        EXPECT_EQ(serial.clusters[c].members,
                  parallel.clusters[c].members);
    }
}

TEST(KiviatTest, StarsAreMinMaxNormalized)
{
    Matrix m;
    m.appendRow({0.0, 100.0});
    m.appendRow({10.0, 200.0});
    m.rowNames = {"a", "b"};
    m.colNames = {"x", "y"};
    const auto stars = buildKiviats(m);
    ASSERT_EQ(stars.size(), 2u);
    EXPECT_EQ(stars[0].name, "a");
    EXPECT_EQ(stars[0].axes, (std::vector<std::string>{"x", "y"}));
    EXPECT_DOUBLE_EQ(stars[0].values[0], 0.0);
    EXPECT_DOUBLE_EQ(stars[1].values[0], 1.0);
    EXPECT_DOUBLE_EQ(stars[0].values[1], 0.0);
    EXPECT_DOUBLE_EQ(stars[1].values[1], 1.0);
}

TEST(KiviatTest, RenderProducesNonEmptyArt)
{
    Matrix m;
    m.appendRow({0.2, 0.8, 0.5, 0.9});
    m.rowNames = {"bench"};
    m.colNames = {"c1", "c2", "c3", "c4"};
    const auto stars = buildKiviats(m);
    const std::string art = renderKiviat(stars[0], 6);
    EXPECT_NE(art.find("bench"), std::string::npos);
    EXPECT_GT(art.size(), 100u);
    const std::string bars = renderKiviatBars(stars[0], 10);
    EXPECT_FALSE(bars.empty());
}

// Degenerate-input regressions: an empty matrix used to read row 0
// out of bounds in minmaxNormalize, and constant or non-finite
// columns produced NaN axes that renderKiviat then plotted nowhere.

TEST(KiviatTest, EmptyMatrixYieldsNoStars)
{
    Matrix empty;
    EXPECT_TRUE(buildKiviats(empty).empty());
    Matrix colsOnly(0, 3);
    colsOnly.colNames = {"a", "b", "c"};
    EXPECT_TRUE(buildKiviats(colsOnly).empty());
}

TEST(KiviatTest, ConstantColumnsSitAtTheMidpoint)
{
    Matrix m;
    m.appendRow({5.0, 1.0});
    m.appendRow({5.0, 2.0});
    m.rowNames = {"a", "b"};
    m.colNames = {"const", "varies"};
    const auto stars = buildKiviats(m);
    ASSERT_EQ(stars.size(), 2u);
    EXPECT_DOUBLE_EQ(stars[0].values[0], 0.5);
    EXPECT_DOUBLE_EQ(stars[1].values[0], 0.5);
    for (const auto &s : stars)
        for (double v : s.values)
            EXPECT_TRUE(std::isfinite(v));
}

TEST(KiviatTest, NonFiniteValuesStayWellDefined)
{
    Matrix m;
    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();
    m.appendRow({nan, 1.0, inf});
    m.appendRow({0.5, 2.0, -inf});
    m.rowNames = {"a", "b"};
    m.colNames = {"x", "y", "z"};
    const auto stars = buildKiviats(m);
    ASSERT_EQ(stars.size(), 2u);
    for (const auto &s : stars)
        for (double v : s.values)
            EXPECT_TRUE(std::isfinite(v)) << s.name;

    // Rendering a hand-built star with raw non-finite values must not
    // place markers out of the grid either.
    KiviatStar hostile;
    hostile.name = "hostile";
    hostile.axes = {"x", "y", "z"};
    hostile.values = {nan, inf, -inf};
    const std::string art = renderKiviat(hostile, 5);
    EXPECT_NE(art.find("hostile"), std::string::npos);
    EXPECT_FALSE(renderKiviatBars(hostile, 8).empty());
}

TEST(KiviatTest, ZeroAxesAndTinyRadiusRender)
{
    KiviatStar none;
    none.name = "empty";
    const std::string art = renderKiviat(none, 0);   // radius clamped
    EXPECT_NE(art.find("empty"), std::string::npos);
    EXPECT_NE(art.find('+'), std::string::npos);
    EXPECT_TRUE(renderKiviatBars(none, 5).empty());
}

} // namespace
} // namespace mica
