/**
 * @file
 * Shared helpers for building InstRecord streams in tests.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "trace/inst_record.hh"
#include "trace/synthetic.hh"

namespace mica::test
{

/** Builder with fluent setters for one dynamic instruction. */
struct Rec
{
    InstRecord r;

    explicit Rec(InstClass cls = InstClass::IntAlu) { r.cls = cls; }

    Rec &pc(uint64_t v) { r.pc = v; return *this; }

    Rec &
    srcs(std::initializer_list<uint16_t> regs)
    {
        r.numSrcRegs = 0;
        for (uint16_t s : regs)
            r.srcRegs[r.numSrcRegs++] = s;
        return *this;
    }

    Rec &dst(uint16_t v) { r.dstReg = v; return *this; }
    Rec &mem(uint64_t addr, uint8_t size = 8)
    {
        r.memAddr = addr;
        r.memSize = size;
        return *this;
    }
    Rec &taken(bool t) { r.taken = t; return *this; }
    Rec &target(uint64_t v) { r.target = v; return *this; }

    operator InstRecord() const { return r; }
};

/** Shorthand record constructors. */
inline InstRecord
alu(uint16_t dst = kInvalidReg, std::initializer_list<uint16_t> srcs = {})
{
    Rec b(InstClass::IntAlu);
    b.srcs(srcs);
    b.r.dstReg = dst;
    return b;
}

inline InstRecord
load(uint64_t addr, uint16_t dst = 1, uint64_t pc = 0x1000)
{
    Rec b(InstClass::Load);
    b.pc(pc).mem(addr).dst(dst);
    return b;
}

inline InstRecord
store(uint64_t addr, uint64_t pc = 0x2000)
{
    Rec b(InstClass::Store);
    b.pc(pc).mem(addr);
    return b;
}

inline InstRecord
branch(uint64_t pc, bool taken)
{
    Rec b(InstClass::Branch);
    b.pc(pc).taken(taken);
    return b;
}

/** Run one analyzer over a record vector (accept + finish). */
template <typename Analyzer>
void
feed(Analyzer &a, const std::vector<InstRecord> &recs)
{
    for (const auto &r : recs)
        a.accept(r);
    a.finish();
}

} // namespace mica::test
