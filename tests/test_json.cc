/**
 * @file
 * Tests for the canonical JSON layer the wire protocol rests on:
 * strict parsing (RFC 8259 rejects stay rejected), canonical
 * serialization (same document, same bytes — the CLI↔server
 * byte-identity contract needs nothing less), and the protocol-field
 * accessors (asCount) that keep malformed counts from truncating to
 * something plausible.
 */

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "service/json.hh"

namespace mica::service
{
namespace
{

/** Parse or die, for inputs the test asserts are valid. */
JsonValue
parsed(const std::string &text)
{
    JsonValue v;
    std::string err;
    EXPECT_TRUE(parseJson(text, &v, &err)) << text << ": " << err;
    return v;
}

std::string
reserialized(const std::string &text)
{
    return parsed(text).dump();
}

// ----------------------------------------------------------------------
// Canonical serialization.
// ----------------------------------------------------------------------

TEST(JsonTest, SerializesScalarsCanonically)
{
    EXPECT_EQ(JsonValue::null().dump(), "null");
    EXPECT_EQ(JsonValue::boolean(true).dump(), "true");
    EXPECT_EQ(JsonValue::boolean(false).dump(), "false");
    EXPECT_EQ(JsonValue::number(int64_t{0}).dump(), "0");
    EXPECT_EQ(JsonValue::number(int64_t{-7}).dump(), "-7");
    EXPECT_EQ(JsonValue::str("hi").dump(), "\"hi\"");
}

TEST(JsonTest, DoublesUseShortestRoundTripForm)
{
    EXPECT_EQ(JsonValue::number(0.1).dump(), "0.1");
    EXPECT_EQ(JsonValue::number(1.0 / 3.0).dump(),
              "0.3333333333333333");
    // The shortest form must still round-trip to the same bits.
    const double x = 0.123456789012345678;
    const JsonValue v = parsed(JsonValue::number(x).dump());
    EXPECT_EQ(v.asDouble(), x);
}

TEST(JsonTest, NanAndInfinityRenderAsNull)
{
    EXPECT_EQ(
        JsonValue::number(std::numeric_limits<double>::quiet_NaN())
            .dump(),
        "null");
    EXPECT_EQ(
        JsonValue::number(std::numeric_limits<double>::infinity())
            .dump(),
        "null");
}

TEST(JsonTest, ObjectMembersKeepInsertionOrder)
{
    JsonValue o = JsonValue::object();
    o.set("zebra", JsonValue::number(int64_t{1}));
    o.set("apple", JsonValue::number(int64_t{2}));
    o.set("mango", JsonValue::number(int64_t{3}));
    EXPECT_EQ(o.dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(JsonTest, SerializationHasNoWhitespace)
{
    EXPECT_EQ(reserialized("  { \"a\" : [ 1 , 2 ] , \"b\" : null } "),
              "{\"a\":[1,2],\"b\":null}");
}

TEST(JsonTest, EscapesExactlyWhatJsonRequires)
{
    JsonValue v = JsonValue::str("a\"b\\c\n\t\x01z");
    EXPECT_EQ(v.dump(), "\"a\\\"b\\\\c\\n\\t\\u0001z\"");
    // Multi-byte UTF-8 passes through untouched.
    EXPECT_EQ(JsonValue::str("\xc3\xa9").dump(), "\"\xc3\xa9\"");
}

TEST(JsonTest, LargeIntegersSurviveRoundTrip)
{
    // 2^53 + 1 is not representable as a double; the integer text
    // must survive parse → dump anyway.
    EXPECT_EQ(reserialized("9007199254740993"), "9007199254740993");
    EXPECT_EQ(reserialized("9223372036854775807"),
              "9223372036854775807");
    EXPECT_EQ(reserialized("-9223372036854775808"),
              "-9223372036854775808");
    // Above int64 range the value degrades to a (parseable) double
    // by design — wire counts never approach 2^63.
    JsonValue v;
    std::string err;
    EXPECT_TRUE(parseJson("18446744073709551615", &v, &err)) << err;
}

// ----------------------------------------------------------------------
// Strict parsing.
// ----------------------------------------------------------------------

TEST(JsonTest, ParsesNestedDocuments)
{
    const JsonValue v =
        parsed("{\"a\":[1,2.5,\"x\"],\"b\":{\"c\":true,\"d\":null}}");
    ASSERT_TRUE(v.isObject());
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items().size(), 3u);
    EXPECT_EQ(a->items()[1].asDouble(), 2.5);
    const JsonValue *b = v.find("b");
    ASSERT_NE(b, nullptr);
    const JsonValue *c = b->find("c");
    ASSERT_NE(c, nullptr);
    EXPECT_TRUE(c->asBool());
    EXPECT_TRUE(b->find("d")->isNull());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonTest, DecodesEscapesAndSurrogatePairs)
{
    EXPECT_EQ(parsed("\"\\u0041\\n\\/\"").asString(), "A\n/");
    // U+1F600 as a surrogate pair -> 4-byte UTF-8.
    EXPECT_EQ(parsed("\"\\ud83d\\ude00\"").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(JsonTest, RejectsMalformedInput)
{
    const char *bad[] = {
        "",                      // empty
        "{",                     // truncated object
        "[1,2",                  // truncated array
        "{\"a\":1,}",            // trailing comma
        "[1,,2]",                // empty element
        "\"abc",                 // unterminated string
        "\"\\q\"",               // bad escape
        "\"\\ud83d\"",           // unpaired high surrogate
        "01",                    // leading zero
        "1.",                    // digitless fraction
        "+1",                    // leading plus
        "nul",                   // truncated literal
        "True",                  // wrong case
        "{\"a\":1} x",           // trailing garbage
        "{'a':1}",               // single quotes
        "\"a\tb\"",              // raw control char in string
    };
    for (const char *text : bad) {
        JsonValue v;
        std::string err;
        EXPECT_FALSE(parseJson(text, &v, &err)) << text;
        EXPECT_FALSE(err.empty()) << text;
    }
}

TEST(JsonTest, DepthGuardStopsRunawayNesting)
{
    std::string deep;
    for (int i = 0; i < 200; ++i)
        deep += '[';
    for (int i = 0; i < 200; ++i)
        deep += ']';
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson(deep, &v, &err));
    // A depth of 32 is fine.
    std::string ok;
    for (int i = 0; i < 32; ++i)
        ok += '[';
    for (int i = 0; i < 32; ++i)
        ok += ']';
    EXPECT_TRUE(parseJson(ok, &v, &err)) << err;
}

TEST(JsonTest, ErrorsNameTheByteOffset)
{
    JsonValue v;
    std::string err;
    ASSERT_FALSE(parseJson("{\"a\":tru}", &v, &err));
    EXPECT_NE(err.find("byte"), std::string::npos) << err;
}

// ----------------------------------------------------------------------
// Protocol-field accessors.
// ----------------------------------------------------------------------

TEST(JsonTest, AsCountAcceptsOnlyExactNonNegativeIntegers)
{
    EXPECT_EQ(parsed("5").asCount(), 5);
    EXPECT_EQ(parsed("0").asCount(), 0);
    EXPECT_EQ(parsed("5.0").asCount(), 5);
    EXPECT_EQ(parsed("-1").asCount(), -1);       // fallback
    EXPECT_EQ(parsed("2.5").asCount(), -1);
    EXPECT_EQ(parsed("\"5\"").asCount(), -1);
    EXPECT_EQ(parsed("null").asCount(), -1);
    EXPECT_EQ(parsed("1e300").asCount(7), 7);    // custom fallback
}

} // namespace
} // namespace mica::service
