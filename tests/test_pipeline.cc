/**
 * @file
 * Tests for the parallel profiling pipeline: ThreadPool semantics,
 * ProfileStore durability and key rejection, and end-to-end
 * determinism of parallel collection.
 */

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "experiments/experiments.hh"
#include "mica/dataset.hh"
#include "pipeline/parallel_collector.hh"
#include "pipeline/profile_store.hh"
#include "pipeline/thread_pool.hh"
#include "workloads/registry.hh"

namespace mica::pipeline
{
namespace
{

// ----------------------------------------------------------------------
// ThreadPool
// ----------------------------------------------------------------------

TEST(ThreadPoolTest, RunsSubmittedTasksAndReturnsValues)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 64; ++i)
        futs.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futs[i].get(), i * i);
}

TEST(ThreadPoolTest, ZeroWorkersMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.workerCount(), 1u);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("job failed"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);

    // The worker that ran the throwing task must survive for new work.
    auto after = pool.submit([] { return 42; });
    EXPECT_EQ(after.get(), 42);
}

TEST(ThreadPoolTest, ManyConcurrentTasksAllComplete)
{
    ThreadPool pool(8);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 500; ++i)
        futs.push_back(pool.submit([&count] { ++count; }));
    for (auto &f : futs)
        f.get();
    EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPoolTest, ParallelBlocksCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<int> hits(300, 0);
    parallelBlocks(&pool, hits.size(), [&](size_t b) { ++hits[b]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);

    // Null pool and zero count degrade to plain loops.
    std::vector<int> serialHits(7, 0);
    parallelBlocks(nullptr, serialHits.size(),
                   [&](size_t b) { ++serialHits[b]; });
    for (int h : serialHits)
        EXPECT_EQ(h, 1);
    parallelBlocks(&pool, 0, [&](size_t) { ADD_FAILURE(); });
}

TEST(ThreadPoolTest, ParallelBlocksFinishesAllBeforeRethrowing)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    try {
        parallelBlocks(&pool, 64, [&](size_t b) {
            ++ran;
            if (b % 16 == 3)
                throw std::runtime_error("block failed");
        });
        FAIL() << "expected rethrow";
    } catch (const std::runtime_error &) {
    }
    // Every block ran to completion before the exception unwound the
    // caller — no worker can still touch caller state afterwards.
    EXPECT_EQ(ran.load(), 64);
}

// ----------------------------------------------------------------------
// ProfileStore
// ----------------------------------------------------------------------

StoredProfile
fakeProfile(const std::string &name, double seed)
{
    StoredProfile p;
    p.mica.name = name;
    p.mica.instCount = static_cast<uint64_t>(seed * 1000);
    for (size_t i = 0; i < kNumMicaChars; ++i)
        p.mica.values[i] = seed + 0.001 * static_cast<double>(i);
    p.hpc.name = name;
    p.hpc.instCount = p.mica.instCount;
    p.hpc.ipcEv56 = seed;
    p.hpc.ipcEv67 = seed * 2;
    p.hpc.branchMissRate = seed / 3;
    p.hpc.l1dMissRate = seed / 4;
    p.hpc.l1iMissRate = seed / 5;
    p.hpc.l2MissRate = seed / 6;
    p.hpc.dtlbMissRate = seed / 7;
    return p;
}

/**
 * Per-test unique scratch directory: parallel ctest runs each TEST as
 * its own process, so a shared fixed path would race.
 */
struct StoreDir
{
    std::string dir;

    StoreDir()
    {
        char tmpl[] = "/tmp/mica_test_store_XXXXXX";
        const char *made = mkdtemp(tmpl);
        dir = made ? made : "/tmp/mica_test_store_fallback";
    }

    ~StoreDir() { std::filesystem::remove_all(dir); }
};

TEST(ProfileStoreTest, RoundTripsExactBits)
{
    StoreDir tmp;
    StoreKey key;
    key.maxInsts = 1000;

    ProfileStore writer(tmp.dir, key);
    EXPECT_FALSE(writer.open());    // nothing on disk yet
    writer.put(fakeProfile("s/a.x", 0.125));
    writer.put(fakeProfile("s/b.y", 0.375));

    ProfileStore reader(tmp.dir, key);
    ASSERT_TRUE(reader.open());
    ASSERT_EQ(reader.size(), 2u);
    const StoredProfile *p = reader.find("s/a.x");
    ASSERT_NE(p, nullptr);
    const StoredProfile want = fakeProfile("s/a.x", 0.125);
    EXPECT_EQ(p->mica.instCount, want.mica.instCount);
    for (size_t i = 0; i < kNumMicaChars; ++i)
        EXPECT_EQ(p->mica.values[i], want.mica.values[i]);    // bitwise
    EXPECT_EQ(p->hpc.ipcEv67, want.hpc.ipcEv67);
    EXPECT_EQ(reader.find("missing/none.z"), nullptr);
}

TEST(ProfileStoreTest, RejectsMismatchedKey)
{
    StoreDir tmp;
    StoreKey key;
    key.maxInsts = 1000;
    ProfileStore writer(tmp.dir, key);
    writer.put(fakeProfile("s/a.x", 0.5));

    StoreKey otherBudget = key;
    otherBudget.maxInsts = 2000;
    ProfileStore r1(tmp.dir, otherBudget);
    EXPECT_FALSE(r1.open());
    EXPECT_EQ(r1.size(), 0u);

    StoreKey otherPpm = key;
    otherPpm.ppmMaxOrder = 4;
    ProfileStore r2(tmp.dir, otherPpm);
    EXPECT_FALSE(r2.open());

    StoreKey otherSuites = key;
    otherSuites.suites = {"CommBench"};
    ProfileStore r3(tmp.dir, otherSuites);
    EXPECT_FALSE(r3.open());

    // A rejected store is rewritten by the next put, not appended to.
    r1.put(fakeProfile("s/b.y", 0.75));
    ProfileStore r4(tmp.dir, otherBudget);
    ASSERT_TRUE(r4.open());
    EXPECT_EQ(r4.size(), 1u);
    EXPECT_EQ(r4.find("s/a.x"), nullptr);
}

TEST(ProfileStoreTest, RejectsLegacyCsvEraDirectories)
{
    StoreDir tmp;
    std::filesystem::create_directories(tmp.dir);
    std::ofstream(tmp.dir + "/mica_profiles.csv") << "name,inst_count\n";
    std::ofstream(tmp.dir + "/profiles.bin") << "not a store";
    StoreKey key;
    ProfileStore store(tmp.dir, key);
    EXPECT_FALSE(store.open());
    EXPECT_EQ(store.size(), 0u);
}

TEST(ProfileStoreTest, TruncatedTrailingEntryIsDroppedNotFatal)
{
    StoreDir tmp;
    StoreKey key;
    ProfileStore writer(tmp.dir, key);
    writer.put(fakeProfile("s/a.x", 0.5));
    writer.put(fakeProfile("s/b.y", 0.25));

    // Simulate an interrupted append: chop the last entry mid-way.
    const auto path = tmp.dir + "/profiles.bin";
    const auto size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size - 31);

    ProfileStore reader(tmp.dir, key);
    ASSERT_TRUE(reader.open());
    EXPECT_EQ(reader.size(), 1u);
    EXPECT_NE(reader.find("s/a.x"), nullptr);
    EXPECT_EQ(reader.find("s/b.y"), nullptr);
}

TEST(ProfileStoreTest, PutIsAtomicNoTmpSiblingSurvives)
{
    StoreDir tmp;
    StoreKey key;
    ProfileStore writer(tmp.dir, key);
    writer.put(fakeProfile("s/a.x", 0.5));
    // The tmp staging file was renamed into place, not left behind.
    EXPECT_FALSE(
        std::filesystem::exists(tmp.dir + "/profiles.bin.tmp"));
    EXPECT_TRUE(std::filesystem::exists(tmp.dir + "/profiles.bin"));

    // A stale .tmp from a crashed run never confuses a later put.
    std::ofstream(tmp.dir + "/profiles.bin.tmp") << "crash debris";
    writer.put(fakeProfile("s/b.y", 0.25));
    ProfileStore reader(tmp.dir, key);
    ASSERT_TRUE(reader.open());
    EXPECT_EQ(reader.size(), 2u);
    EXPECT_FALSE(
        std::filesystem::exists(tmp.dir + "/profiles.bin.tmp"));
}

TEST(ProfileStoreTest, TornHeaderRejectsCleanlyAndPutRebuilds)
{
    StoreDir tmp;
    StoreKey key;
    ProfileStore writer(tmp.dir, key);
    writer.put(fakeProfile("s/a.x", 0.5));
    writer.put(fakeProfile("s/b.y", 0.25));

    // Tear the file inside the header — the kind of state a crash
    // mid-write used to leave before writes went through tmp+rename.
    const auto path = tmp.dir + "/profiles.bin";
    std::filesystem::resize_file(path, 10);

    ProfileStore reader(tmp.dir, key);
    EXPECT_FALSE(reader.open());    // clean rejection, no entries
    EXPECT_EQ(reader.size(), 0u);

    // The next put rebuilds a complete, loadable store.
    reader.put(fakeProfile("s/c.z", 0.75));
    ProfileStore reopened(tmp.dir, key);
    ASSERT_TRUE(reopened.open());
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_NE(reopened.find("s/c.z"), nullptr);
}

TEST(ProfileStoreTest, EveryPutLeavesACompleteLoadableFile)
{
    // The atomic-rewrite scheme means the on-disk file is a complete
    // store after every single put — an interrupted sweep can always
    // reload everything persisted so far.
    StoreDir tmp;
    StoreKey key;
    ProfileStore writer(tmp.dir, key);
    for (int i = 0; i < 5; ++i) {
        writer.put(fakeProfile("s/bench." + std::to_string(i),
                               0.125 * (i + 1)));
        ProfileStore reader(tmp.dir, key);
        ASSERT_TRUE(reader.open());
        EXPECT_EQ(reader.size(), static_cast<size_t>(i + 1));
    }
}

// ----------------------------------------------------------------------
// ParallelCollector
// ----------------------------------------------------------------------

std::vector<const workloads::BenchmarkEntry *>
someEntries(size_t n)
{
    std::vector<const workloads::BenchmarkEntry *> out;
    for (const auto &e : workloads::BenchmarkRegistry::instance().all()) {
        if (out.size() >= n)
            break;
        out.push_back(&e);
    }
    return out;
}

TEST(ParallelCollectorTest, ParallelMatchesSerialBitForBit)
{
    const auto entries = someEntries(6);
    MicaRunnerConfig rc;
    rc.maxInsts = 20000;
    const auto serial = collectProfiles(entries, rc, 1);
    const auto parallel = collectProfiles(entries, rc, 8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].name(), parallel[i].name());
        EXPECT_EQ(serial[i].mica.instCount, parallel[i].mica.instCount);
        for (size_t c = 0; c < kNumMicaChars; ++c)
            EXPECT_EQ(serial[i].mica.values[c], parallel[i].mica.values[c]);
        EXPECT_EQ(serial[i].hpc.ipcEv56, parallel[i].hpc.ipcEv56);
        EXPECT_EQ(serial[i].hpc.ipcEv67, parallel[i].hpc.ipcEv67);
        EXPECT_EQ(serial[i].hpc.l2MissRate, parallel[i].hpc.l2MissRate);
    }
}

TEST(ParallelCollectorTest, ProgressCoversEveryJobExactlyOnce)
{
    const auto entries = someEntries(5);
    MicaRunnerConfig rc;
    rc.maxInsts = 5000;
    std::atomic<size_t> calls{0};
    size_t lastDone = 0, lastTotal = 0;
    std::mutex m;
    collectProfiles(entries, rc, 4,
                    [&](size_t done, size_t total, const std::string &) {
                        ++calls;
                        std::lock_guard<std::mutex> lock(m);
                        lastDone = std::max(lastDone, done);
                        lastTotal = total;
                    });
    EXPECT_EQ(calls.load(), entries.size() * 2);
    EXPECT_EQ(lastDone, entries.size() * 2);
    EXPECT_EQ(lastTotal, entries.size() * 2);
}

TEST(ParallelCollectorTest, JobExceptionsReachTheCaller)
{
    workloads::BenchmarkEntry broken;
    broken.info.suite = "Fake";
    broken.info.program = "broken";
    broken.info.input = "x";
    broken.build = []() -> isa::Program {
        throw std::runtime_error("kernel build exploded");
    };
    std::vector<const workloads::BenchmarkEntry *> entries = {&broken};
    MicaRunnerConfig rc;
    EXPECT_THROW(collectProfiles(entries, rc, 4), std::runtime_error);
    EXPECT_THROW(collectProfiles(entries, rc, 1), std::runtime_error);
}

// ----------------------------------------------------------------------
// End-to-end: collectSuiteDataset on the pipeline
// ----------------------------------------------------------------------

experiments::DatasetConfig
smallConfig()
{
    experiments::DatasetConfig cfg;
    cfg.maxInsts = 20000;
    cfg.suites = {"CommBench"};
    return cfg;
}

TEST(PipelineDatasetTest, JobsEightEqualsSerial)
{
    auto serialCfg = smallConfig();
    serialCfg.jobs = 1;
    auto parallelCfg = smallConfig();
    parallelCfg.jobs = 8;
    const auto a = experiments::collectSuiteDataset(serialCfg);
    const auto b = experiments::collectSuiteDataset(parallelCfg);
    ASSERT_EQ(a.benchmarks.size(), b.benchmarks.size());
    for (size_t i = 0; i < a.benchmarks.size(); ++i) {
        EXPECT_EQ(a.micaProfiles[i].name, b.micaProfiles[i].name);
        for (size_t c = 0; c < kNumMicaChars; ++c)
            EXPECT_EQ(a.micaProfiles[i][c], b.micaProfiles[i][c]);
        EXPECT_EQ(a.hpcProfiles[i].ipcEv56, b.hpcProfiles[i].ipcEv56);
        EXPECT_EQ(a.hpcProfiles[i].dtlbMissRate,
                  b.hpcProfiles[i].dtlbMissRate);
    }
}

TEST(PipelineDatasetTest, SecondRunHitsStoreAndBudgetChangeMisses)
{
    StoreDir tmp;
    auto cfg = smallConfig();
    cfg.cacheDir = tmp.dir;
    cfg.jobs = 2;

    size_t profiled = 0;
    cfg.progress = [&profiled](size_t, size_t, const std::string &) {
        ++profiled;
    };

    const auto fresh = experiments::collectSuiteDataset(cfg);
    EXPECT_EQ(profiled, fresh.benchmarks.size() * 2);

    profiled = 0;
    const auto cached = experiments::collectSuiteDataset(cfg);
    EXPECT_EQ(profiled, 0u);    // full store hit: no re-profiling
    for (size_t i = 0; i < fresh.micaProfiles.size(); ++i) {
        for (size_t c = 0; c < kNumMicaChars; ++c)
            EXPECT_EQ(cached.micaProfiles[i][c], fresh.micaProfiles[i][c]);
        EXPECT_EQ(cached.hpcProfiles[i].ipcEv67,
                  fresh.hpcProfiles[i].ipcEv67);
    }

    // The staleness bug the CSV cache had: a different budget must not
    // be served from the old store.
    profiled = 0;
    auto bigger = cfg;
    bigger.maxInsts = 40000;
    const auto recollected = experiments::collectSuiteDataset(bigger);
    EXPECT_EQ(profiled, recollected.benchmarks.size() * 2);
}

TEST(PipelineDatasetTest, PartialStoreOnlyProfilesTheGap)
{
    StoreDir tmp;
    auto cfg = smallConfig();
    cfg.cacheDir = tmp.dir;

    // Seed the store with a run over a subset of what we'll ask for
    // next, under the same key, by dropping benchmarks from the file.
    const auto full = experiments::collectSuiteDataset(cfg);
    pipeline::StoreKey key;
    key.maxInsts = cfg.maxInsts;
    key.ppmMaxOrder = cfg.ppmMaxOrder;
    key.suites = cfg.suites;
    ProfileStore seeded(tmp.dir, key);
    ASSERT_TRUE(seeded.open());
    ASSERT_EQ(seeded.size(), full.benchmarks.size());

    // Rewrite the store with only the first half of the entries.
    std::filesystem::remove(tmp.dir + "/profiles.bin");
    ProfileStore half(tmp.dir, key);
    half.open();
    const size_t keep = full.benchmarks.size() / 2;
    for (size_t i = 0; i < keep; ++i) {
        StoredProfile p;
        p.mica = full.micaProfiles[i];
        p.hpc = full.hpcProfiles[i];
        half.put(p);
    }

    size_t profiled = 0;
    cfg.progress = [&profiled](size_t, size_t, const std::string &) {
        ++profiled;
    };
    const auto merged = experiments::collectSuiteDataset(cfg);
    EXPECT_EQ(profiled, (full.benchmarks.size() - keep) * 2);
    ASSERT_EQ(merged.benchmarks.size(), full.benchmarks.size());
    for (size_t i = 0; i < full.micaProfiles.size(); ++i) {
        for (size_t c = 0; c < kNumMicaChars; ++c)
            EXPECT_EQ(merged.micaProfiles[i][c], full.micaProfiles[i][c]);
    }
}

TEST(PipelineDatasetTest, ConfigFromArgsParsesJobs)
{
    auto parse = [](const char *flag) {
        const char *argv[] = {"prog", flag};
        return experiments::configFromArgs(2, const_cast<char **>(argv))
            .jobs;
    };
    EXPECT_EQ(parse("--jobs=6"), 6u);
    EXPECT_EQ(parse("--jobs=0"), 0u);          // 0 = auto
    EXPECT_EQ(parse("--jobs=-1"), 1u);         // no thread bomb
    EXPECT_EQ(parse("--jobs=banana"), 1u);     // garbage -> serial
    EXPECT_EQ(parse("--jobs="), 1u);
    EXPECT_EQ(parse("--jobs=12x"), 1u);
    EXPECT_EQ(parse("--jobs=999999"), 256u);   // clamped
}

TEST(PipelineDatasetTest, CompletedResultsPersistWhenASweepFails)
{
    StoreDir tmp;
    StoreKey key;
    ProfileStore store(tmp.dir, key);
    store.open();

    const auto good = someEntries(3);
    workloads::BenchmarkEntry broken;
    broken.info.suite = "Fake";
    broken.info.program = "broken";
    broken.info.input = "x";
    broken.build = []() -> isa::Program {
        throw std::runtime_error("kernel build exploded");
    };
    std::vector<const workloads::BenchmarkEntry *> entries = good;
    entries.push_back(&broken);

    MicaRunnerConfig rc;
    rc.maxInsts = 5000;
    ResultFn persist = [&store](const StoredProfile &p) { store.put(p); };
    EXPECT_THROW(collectProfiles(entries, rc, 4, {}, persist),
                 std::runtime_error);

    // Everything that completed before the failure survives on disk.
    ProfileStore reopened(tmp.dir, key);
    ASSERT_TRUE(reopened.open());
    EXPECT_EQ(reopened.size(), good.size());
    for (const auto *e : good)
        EXPECT_NE(reopened.find(e->info.fullName()), nullptr);
    EXPECT_EQ(reopened.find("Fake/broken.x"), nullptr);
}

// ----------------------------------------------------------------------
// Hardened CSV loaders
// ----------------------------------------------------------------------

TEST(CsvHardeningTest, TruncatedAndGarbageRowsRejected)
{
    const std::string path = "/tmp/mica_test_bad.csv";

    {
        std::ofstream out(path);
        out << "name,inst_count";
        for (size_t i = 0; i < kNumMicaChars; ++i)
            out << ",c" << i;
        out << "\nbench/a.x,123,0.5\n";    // truncated row
    }
    EXPECT_TRUE(loadProfilesCsv(path).empty());

    {
        std::ofstream out(path);
        out << "name,inst_count";
        for (size_t i = 0; i < kNumMicaChars; ++i)
            out << ",c" << i;
        out << "\nbench/a.x,NOTANUMBER";
        for (size_t i = 0; i < kNumMicaChars; ++i)
            out << ",0.5";
        out << '\n';
    }
    EXPECT_TRUE(loadProfilesCsv(path).empty());    // non-numeric count

    {
        std::ofstream out(path);
        out << "name,inst_count";
        for (size_t i = 0; i < kNumMicaChars; ++i)
            out << ",c" << i;
        out << "\nbench/a.x,123";
        for (size_t i = 0; i < kNumMicaChars; ++i)
            out << (i == 5 ? ",bogus" : ",0.5");
        out << '\n';
    }
    EXPECT_TRUE(loadProfilesCsv(path).empty());    // non-numeric cell

    {
        std::ofstream out(path);
        out << "name,inst_count";
        for (size_t i = 0; i < kNumMicaChars; ++i)
            out << ",c" << i;
        out << "\nbench/a.x,-1";    // strtoull would wrap to 2^64-1
        for (size_t i = 0; i < kNumMicaChars; ++i)
            out << ",0.5";
        out << "\nbench/b.y,123";
        for (size_t i = 0; i < kNumMicaChars; ++i)
            out << (i == 2 ? ",nan" : ",0.5");    // non-finite cell
        out << '\n';
    }
    EXPECT_TRUE(loadProfilesCsv(path).empty());

    {
        std::ofstream out(path);
        out << "name,inst_count,ipc_ev56,ipc_ev67,branch_miss,l1d_miss,"
               "l1i_miss,l2_miss,dtlb_miss\n";
        out << "bench/a.x,100,0.9,1.4\n";    // truncated HPC row
    }
    EXPECT_TRUE(loadHpcCsv(path).empty());

    std::filesystem::remove(path);
}

TEST(CsvHardeningTest, WellFormedCsvStillRoundTrips)
{
    const std::string path = "/tmp/mica_test_good.csv";
    MicaProfile p;
    p.name = "bench/a.x";
    p.instCount = 4242;
    for (size_t i = 0; i < kNumMicaChars; ++i)
        p.values[i] = 0.25 * static_cast<double>(i);
    saveProfilesCsv(path, {p});
    const auto loaded = loadProfilesCsv(path);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].name, p.name);
    EXPECT_EQ(loaded[0].instCount, p.instCount);
    for (size_t i = 0; i < kNumMicaChars; ++i)
        EXPECT_DOUBLE_EQ(loaded[0].values[i], p.values[i]);
    std::filesystem::remove(path);
}

} // namespace
} // namespace mica::pipeline
