/**
 * @file
 * Closed-form and property tests for the six MICA analyzer families
 * (Table II characteristics 1-47).
 */

#include <gtest/gtest.h>

#include "mica/ilp.hh"
#include "mica/inst_mix.hh"
#include "mica/ppm.hh"
#include "mica/reg_traffic.hh"
#include "mica/strides.hh"
#include "mica/working_set.hh"
#include "stats/rng.hh"
#include "test_util.hh"
#include "trace/synthetic.hh"

namespace mica
{
namespace
{

using test::Rec;
using test::feed;

// ----------------------------------------------------------------------
// Instruction mix (characteristics 1-6).
// ----------------------------------------------------------------------

TEST(InstMixTest, ClosedFormMix)
{
    InstMixAnalyzer mix;
    feed(mix, {test::load(0), test::load(8), test::store(16),
               test::branch(0, true), test::alu(1),
               Rec(InstClass::IntMul), Rec(InstClass::FpAlu),
               Rec(InstClass::FpMul), Rec(InstClass::IntDiv),
               Rec(InstClass::Jump)});
    EXPECT_EQ(mix.total(), 10u);
    EXPECT_DOUBLE_EQ(mix.pctLoads(), 20.0);
    EXPECT_DOUBLE_EQ(mix.pctStores(), 10.0);
    EXPECT_DOUBLE_EQ(mix.pctControl(), 20.0);   // branch + jump
    EXPECT_DOUBLE_EQ(mix.pctArith(), 20.0);     // alu + div
    EXPECT_DOUBLE_EQ(mix.pctIntMul(), 10.0);
    EXPECT_DOUBLE_EQ(mix.pctFpOps(), 20.0);     // fpalu + fpmul
}

TEST(InstMixTest, EmptyTraceYieldsZeroes)
{
    InstMixAnalyzer mix;
    mix.finish();
    EXPECT_EQ(mix.total(), 0u);
    EXPECT_DOUBLE_EQ(mix.pctLoads(), 0.0);
    EXPECT_DOUBLE_EQ(mix.pctFpOps(), 0.0);
}

TEST(InstMixTest, CallsAndReturnsCountAsControl)
{
    InstMixAnalyzer mix;
    feed(mix, {Rec(InstClass::Call), Rec(InstClass::Return),
               test::alu(1), test::alu(1)});
    EXPECT_DOUBLE_EQ(mix.pctControl(), 50.0);
}

TEST(InstMixTest, PercentagesArePartitionOfAtMost100)
{
    RandomTraceParams p;
    p.numInsts = 20000;
    RandomTraceSource src(p);
    InstMixAnalyzer mix;
    InstRecord r;
    while (src.next(r))
        mix.accept(r);
    mix.finish();
    const double sum = mix.pctLoads() + mix.pctStores() +
        mix.pctControl() + mix.pctArith() + mix.pctIntMul() +
        mix.pctFpOps();
    EXPECT_LE(sum, 100.0 + 1e-9);
    EXPECT_GT(sum, 0.0);
}

// ----------------------------------------------------------------------
// Idealized-window ILP (characteristics 7-10).
// ----------------------------------------------------------------------

TEST(IlpTest, IndependentInstructionsReachTheWindowBound)
{
    // No register dependences at all: IPC should approach the window.
    IlpAnalyzer ilp({4});
    std::vector<InstRecord> recs(4000, test::alu(kInvalidReg));
    feed(ilp, recs);
    EXPECT_NEAR(ilp.ipc(0), 4.0, 0.01);
}

TEST(IlpTest, SerialChainHasIpcOne)
{
    IlpAnalyzer ilp({32, 256});
    std::vector<InstRecord> recs;
    for (int i = 0; i < 2000; ++i)
        recs.push_back(test::alu(1, {1}));      // r1 = f(r1)
    feed(ilp, recs);
    EXPECT_NEAR(ilp.ipc(0), 1.0, 0.01);
    EXPECT_NEAR(ilp.ipc(1), 1.0, 0.01);
}

TEST(IlpTest, TwoIndependentChainsHaveIpcTwo)
{
    IlpAnalyzer ilp({64});
    std::vector<InstRecord> recs;
    for (int i = 0; i < 3000; ++i) {
        recs.push_back(test::alu(1, {1}));
        recs.push_back(test::alu(2, {2}));
    }
    feed(ilp, recs);
    EXPECT_NEAR(ilp.ipc(0), 2.0, 0.01);
}

TEST(IlpTest, LargerWindowsNeverHurt)
{
    RandomTraceParams p;
    p.numInsts = 20000;
    p.seed = 3;
    RandomTraceSource src(p);
    IlpAnalyzer ilp;        // paper windows 32/64/128/256
    InstRecord r;
    while (src.next(r))
        ilp.accept(r);
    ilp.finish();
    EXPECT_LE(ilp.ipc(0), ilp.ipc(1) + 1e-9);
    EXPECT_LE(ilp.ipc(1), ilp.ipc(2) + 1e-9);
    EXPECT_LE(ilp.ipc(2), ilp.ipc(3) + 1e-9);
    EXPECT_GE(ilp.ipc(0), 1.0);
    EXPECT_LE(ilp.ipc(3), 256.0);
}

TEST(IlpTest, NonPowerOfTwoWindowsUseTheSlowPathCorrectly)
{
    // The hot path masks the ring index because the paper windows are
    // powers of two; a non-pow2 window must still be accepted and
    // produce exact results through the modulo slow path. With fully
    // independent instructions, each group of W completes one cycle
    // after the previous group: IPC = N / ceil(N / W).
    IlpAnalyzer ilp({32, 48});      // pow2 fast path + non-pow2 slow path
    std::vector<InstRecord> recs(96, test::alu(kInvalidReg));
    feed(ilp, recs);
    EXPECT_EQ(ilp.windowSize(0), 32u);
    EXPECT_EQ(ilp.windowSize(1), 48u);
    EXPECT_DOUBLE_EQ(ilp.ipc(0), 96.0 / 3.0);   // ceil(96/32) = 3
    EXPECT_DOUBLE_EQ(ilp.ipc(1), 96.0 / 2.0);   // ceil(96/48) = 2
}

TEST(IlpTest, NonPowerOfTwoWindowMatchesPowerOfTwoSemantics)
{
    // Same random trace through a pow2 and a non-pow2 window of the
    // same effective size ordering: w=33 must behave like a window
    // one slot larger than w=32, never like a corrupted ring.
    RandomTraceParams p;
    p.numInsts = 10000;
    p.seed = 9;
    RandomTraceSource src(p);
    IlpAnalyzer ilp({32, 33, 64});
    InstRecord r;
    while (src.next(r))
        ilp.accept(r);
    ilp.finish();
    EXPECT_LE(ilp.ipc(0), ilp.ipc(1) + 1e-9);   // 32 <= 33
    EXPECT_LE(ilp.ipc(1), ilp.ipc(2) + 1e-9);   // 33 <= 64
}

TEST(IlpTest, BatchedAcceptMatchesPerRecord)
{
    RandomTraceParams p;
    p.numInsts = 5000;
    p.seed = 21;
    RandomTraceSource src(p);
    std::vector<InstRecord> recs;
    InstRecord r;
    while (src.next(r))
        recs.push_back(r);

    IlpAnalyzer single, batched;
    feed(single, recs);
    batched.acceptBatch(recs.data(), recs.size());
    batched.finish();
    for (size_t w = 0; w < single.numWindows(); ++w)
        EXPECT_DOUBLE_EQ(single.ipc(w), batched.ipc(w));
}

TEST(IlpTest, ZeroRegisterCarriesNoDependence)
{
    IlpAnalyzer ilp({16});
    std::vector<InstRecord> recs;
    for (int i = 0; i < 1600; ++i)
        recs.push_back(test::alu(kZeroReg, {kZeroReg}));
    feed(ilp, recs);
    EXPECT_NEAR(ilp.ipc(0), 16.0, 0.05);
}

TEST(IlpTest, WindowEntryLimitsDistantParallelism)
{
    // Alternate a serial chain with independent work: with window 2,
    // the serial chain throttles entry.
    IlpAnalyzer ilp({2});
    std::vector<InstRecord> recs;
    for (int i = 0; i < 2000; ++i) {
        recs.push_back(test::alu(1, {1}));
        recs.push_back(test::alu(kInvalidReg));
    }
    feed(ilp, recs);
    EXPECT_NEAR(ilp.ipc(0), 2.0, 0.05);
    EXPECT_EQ(ilp.windowSize(0), 2u);
}

// ----------------------------------------------------------------------
// Register traffic (characteristics 11-19).
// ----------------------------------------------------------------------

TEST(RegTrafficTest, AvgInputOperandsClosedForm)
{
    RegTrafficAnalyzer rt;
    feed(rt, {test::alu(1, {2, 3}), test::alu(2, {1}),
              test::alu(3, {})});
    EXPECT_DOUBLE_EQ(rt.avgInputOperands(), 1.0);   // 3 reads / 3 insts
}

TEST(RegTrafficTest, ZeroRegisterReadsAreExcluded)
{
    RegTrafficAnalyzer rt;
    feed(rt, {test::alu(1, {kZeroReg, kZeroReg}),
              test::alu(2, {kZeroReg})});
    EXPECT_DOUBLE_EQ(rt.avgInputOperands(), 0.0);
}

TEST(RegTrafficTest, DegreeOfUseCountsReadsPerInstance)
{
    RegTrafficAnalyzer rt;
    // r1 written once, read three times, then overwritten (0 reads).
    feed(rt, {test::alu(1, {}), test::alu(2, {1}), test::alu(3, {1}),
              test::alu(4, {1}), test::alu(1, {})});
    // Instances closed: first r1 (3 uses), r2 (0), r3 (0), r4 (0),
    // second r1 (0) -> average 3/5.
    EXPECT_DOUBLE_EQ(rt.avgDegreeOfUse(), 3.0 / 5.0);
}

TEST(RegTrafficTest, DependencyDistanceCumulative)
{
    RegTrafficAnalyzer rt;
    std::vector<InstRecord> recs;
    recs.push_back(test::alu(1, {}));           // write r1 at index 0
    recs.push_back(test::alu(5, {1}));          // distance 1
    recs.push_back(test::alu(6, {1}));          // distance 2
    recs.push_back(test::alu(7, {}));
    recs.push_back(test::alu(8, {1}));          // distance 4
    feed(rt, recs);
    EXPECT_EQ(rt.totalDeps(), 3u);
    EXPECT_DOUBLE_EQ(rt.depDistanceCum(0), 1.0 / 3.0);     // <= 1
    EXPECT_DOUBLE_EQ(rt.depDistanceCum(1), 2.0 / 3.0);     // <= 2
    EXPECT_DOUBLE_EQ(rt.depDistanceCum(2), 1.0);           // <= 4
    EXPECT_DOUBLE_EQ(rt.depDistanceCum(6), 1.0);           // <= 64
}

TEST(RegTrafficTest, ReadsBeforeFirstWriteCarryNoDependence)
{
    RegTrafficAnalyzer rt;
    feed(rt, {test::alu(2, {1})});      // r1 never written
    EXPECT_EQ(rt.totalDeps(), 0u);
    EXPECT_DOUBLE_EQ(rt.avgInputOperands(), 1.0);   // still a read
}

TEST(RegTrafficTest, CumulativeDistributionIsMonotone)
{
    RandomTraceParams p;
    p.numInsts = 30000;
    p.seed = 11;
    RandomTraceSource src(p);
    RegTrafficAnalyzer rt;
    InstRecord r;
    while (src.next(r))
        rt.accept(r);
    rt.finish();
    for (size_t c = 1; c < RegTrafficAnalyzer::kDistCuts.size(); ++c)
        EXPECT_LE(rt.depDistanceCum(c - 1), rt.depDistanceCum(c) + 1e-12);
    EXPECT_GE(rt.depDistanceCum(0), 0.0);
    EXPECT_LE(rt.depDistanceCum(6), 1.0);
}

TEST(RegTrafficTest, FinishIsIdempotent)
{
    RegTrafficAnalyzer rt;
    rt.accept(test::alu(1, {}));
    rt.accept(test::alu(2, {1}));
    rt.finish();
    const double first = rt.avgDegreeOfUse();
    rt.finish();
    EXPECT_DOUBLE_EQ(rt.avgDegreeOfUse(), first);
}

// ----------------------------------------------------------------------
// Working sets (characteristics 20-23).
// ----------------------------------------------------------------------

TEST(WorkingSetTest, CountsUniqueBlocksAndPages)
{
    WorkingSetAnalyzer ws;
    // Two accesses in one 32B block, one in another block same page,
    // one on a different page.
    feed(ws, {test::load(0x10000), test::load(0x10004),
              test::load(0x10020), test::load(0x20000)});
    EXPECT_EQ(ws.dBlocks(), 3u);
    EXPECT_EQ(ws.dPages(), 2u);
}

TEST(WorkingSetTest, InstructionStreamUsesFetchAddresses)
{
    WorkingSetAnalyzer ws;
    feed(ws, {test::alu(1), test::alu(1)});     // both at pc 0
    EXPECT_EQ(ws.iBlocks(), 1u);
    EXPECT_EQ(ws.iPages(), 1u);
    EXPECT_EQ(ws.dBlocks(), 0u);
}

TEST(WorkingSetTest, NonMemInstructionsDoNotTouchDataStream)
{
    WorkingSetAnalyzer ws;
    feed(ws, {test::alu(1), test::branch(0x40, true)});
    EXPECT_EQ(ws.dBlocks(), 0u);
    EXPECT_EQ(ws.dPages(), 0u);
    EXPECT_EQ(ws.iBlocks(), 2u);    // pc 0 and pc 0x40
}

TEST(WorkingSetTest, SequentialWalkTouchesExpectedCounts)
{
    WorkingSetAnalyzer ws;
    std::vector<InstRecord> recs;
    for (uint64_t a = 0; a < 4096; a += 8)
        recs.push_back(test::load(0x100000 + a));
    feed(ws, recs);
    EXPECT_EQ(ws.dBlocks(), 4096u / 32);
    EXPECT_EQ(ws.dPages(), 1u);
}

TEST(WorkingSetTest, StoresContributeToTheDataStream)
{
    WorkingSetAnalyzer ws;
    feed(ws, {test::store(0x5000), test::load(0x9000)});
    EXPECT_EQ(ws.dBlocks(), 2u);
    EXPECT_EQ(ws.dPages(), 2u);
}

// ----------------------------------------------------------------------
// Strides (characteristics 24-43).
// ----------------------------------------------------------------------

TEST(StrideTest, GlobalStrideIsBetweenTemporallyAdjacentAccesses)
{
    StrideAnalyzer st;
    feed(st, {test::load(100, 1, 0x10), test::load(108, 1, 0x20),
              test::load(100, 1, 0x10)});
    // Two global strides: 8 and 8.
    EXPECT_EQ(st.globalLoad().total, 2u);
    EXPECT_DOUBLE_EQ(st.globalLoad().prob(0), 0.0);     // stride 0
    EXPECT_DOUBLE_EQ(st.globalLoad().prob(1), 1.0);     // <= 8
}

TEST(StrideTest, LocalStridesTrackPerPc)
{
    StrideAnalyzer st;
    // pc 0x10 strides by 8; pc 0x20 strides by 4096.
    feed(st, {test::load(0, 1, 0x10), test::load(100000, 1, 0x20),
              test::load(8, 1, 0x10), test::load(104096, 1, 0x20)});
    EXPECT_EQ(st.localLoad().total, 2u);
    EXPECT_DOUBLE_EQ(st.localLoad().prob(1), 0.5);      // <= 8
    EXPECT_DOUBLE_EQ(st.localLoad().prob(4), 1.0);      // <= 4096
}

TEST(StrideTest, LoadsAndStoresAreSeparateStreams)
{
    StrideAnalyzer st;
    feed(st, {test::load(0), test::store(1000000), test::load(8)});
    // The intervening store must not perturb the load stream.
    EXPECT_EQ(st.globalLoad().total, 1u);
    EXPECT_DOUBLE_EQ(st.globalLoad().prob(1), 1.0);
    EXPECT_EQ(st.globalStore().total, 0u);
}

TEST(StrideTest, ZeroStrideDetected)
{
    StrideAnalyzer st;
    feed(st, {test::load(64, 1, 0x8), test::load(64, 1, 0x8)});
    EXPECT_DOUBLE_EQ(st.localLoad().prob(0), 1.0);
    EXPECT_DOUBLE_EQ(st.globalLoad().prob(0), 1.0);
}

TEST(StrideTest, NegativeStridesUseAbsoluteDistance)
{
    StrideAnalyzer st;
    feed(st, {test::load(1000), test::load(936)});      // -64
    EXPECT_DOUBLE_EQ(st.globalLoad().prob(2), 1.0);     // <= 64
    EXPECT_DOUBLE_EQ(st.globalLoad().prob(1), 0.0);     // not <= 8
}

TEST(StrideTest, CumulativeProbabilitiesAreMonotone)
{
    RandomTraceParams p;
    p.numInsts = 30000;
    p.seed = 21;
    RandomTraceSource src(p);
    StrideAnalyzer st;
    InstRecord r;
    while (src.next(r))
        st.accept(r);
    st.finish();
    for (const auto *d : {&st.localLoad(), &st.globalLoad(),
                          &st.localStore(), &st.globalStore()}) {
        for (size_t c = 1; c < StrideAnalyzer::kCuts.size(); ++c)
            EXPECT_LE(d->prob(c - 1), d->prob(c) + 1e-12);
        EXPECT_LE(d->prob(4), 1.0);
    }
}

TEST(StrideTest, FirstAccessProducesNoStride)
{
    StrideAnalyzer st;
    feed(st, {test::load(0x100)});
    EXPECT_EQ(st.globalLoad().total, 0u);
    EXPECT_EQ(st.localLoad().total, 0u);
}

// ----------------------------------------------------------------------
// PPM branch predictability (characteristics 44-47).
// ----------------------------------------------------------------------

TEST(PpmTest, AlwaysTakenIsNearlyPerfectlyPredicted)
{
    PpmBranchAnalyzer ppm(8);
    std::vector<InstRecord> recs;
    for (int i = 0; i < 2000; ++i)
        recs.push_back(test::branch(0x100, true));
    feed(ppm, recs);
    EXPECT_EQ(ppm.branches(), 2000u);
    EXPECT_LT(ppm.missRateGAg(), 0.01);
    EXPECT_LT(ppm.missRatePAg(), 0.01);
    EXPECT_LT(ppm.missRateGAs(), 0.01);
    EXPECT_LT(ppm.missRatePAs(), 0.01);
}

TEST(PpmTest, AlternatingPatternIsLearnedByHistory)
{
    PpmBranchAnalyzer ppm(8);
    std::vector<InstRecord> recs;
    for (int i = 0; i < 4000; ++i)
        recs.push_back(test::branch(0x100, i % 2 == 0));
    feed(ppm, recs);
    // All four variants see the alternating history.
    EXPECT_LT(ppm.missRateGAg(), 0.05);
    EXPECT_LT(ppm.missRatePAs(), 0.05);
}

TEST(PpmTest, LongPeriodicPatternNeedsEnoughContext)
{
    // Period-6 pattern: predictable with order >= 6, not with order 2.
    const auto run = [](unsigned order) {
        PpmBranchAnalyzer ppm(order);
        std::vector<InstRecord> recs;
        for (int i = 0; i < 6000; ++i)
            recs.push_back(test::branch(0x40, (i % 6) < 3));
        for (const auto &r : recs)
            ppm.accept(r);
        return ppm.missRateGAg();
    };
    EXPECT_LT(run(8), 0.02);
    EXPECT_GT(run(2), 0.10);
}

TEST(PpmTest, RandomBranchesAreUnpredictable)
{
    Rng rng(7);
    PpmBranchAnalyzer ppm(8);
    std::vector<InstRecord> recs;
    for (int i = 0; i < 20000; ++i)
        recs.push_back(test::branch(0x100, rng.chance(0.5)));
    feed(ppm, recs);
    EXPECT_GT(ppm.missRateGAg(), 0.40);
    EXPECT_LT(ppm.missRateGAg(), 0.60);
}

TEST(PpmTest, BiasedRandomApproachesBiasRate)
{
    Rng rng(9);
    PpmBranchAnalyzer ppm(8);
    std::vector<InstRecord> recs;
    for (int i = 0; i < 20000; ++i)
        recs.push_back(test::branch(0x100, rng.chance(0.9)));
    feed(ppm, recs);
    // An ideal predictor mispredicts ~10%; PPM should be close.
    EXPECT_LT(ppm.missRateGAg(), 0.2);
    EXPECT_GT(ppm.missRateGAg(), 0.05);
}

TEST(PpmTest, PerAddressVariantsSeparateInterleavedBranches)
{
    // Branch A always taken, branch B alternates; interleaved they
    // look noisy to a short global history but trivial per address.
    std::vector<InstRecord> recs;
    for (int i = 0; i < 4000; ++i) {
        recs.push_back(test::branch(0xA0, true));
        recs.push_back(test::branch(0xB0, i % 2 == 0));
    }
    PpmBranchAnalyzer low(1);
    for (const auto &r : recs)
        low.accept(r);
    EXPECT_LT(low.missRatePAs(), low.missRateGAg() + 1e-9);
    EXPECT_LT(low.missRatePAs(), 0.05);
}

TEST(PpmTest, OnlyConditionalBranchesAreCounted)
{
    PpmBranchAnalyzer ppm(4);
    Rec jump(InstClass::Jump);
    jump.taken(true);
    feed(ppm, {test::alu(1), jump, test::load(0x100)});
    EXPECT_EQ(ppm.branches(), 0u);
}

TEST(PpmTest, MissRatesAreProbabilities)
{
    Rng rng(31);
    PpmBranchAnalyzer ppm(6);
    for (int i = 0; i < 5000; ++i)
        ppm.accept(test::branch(0x10 + 16 * (i % 7), rng.chance(0.3)));
    ppm.finish();
    for (double m : {ppm.missRateGAg(), ppm.missRatePAg(),
                     ppm.missRateGAs(), ppm.missRatePAs()}) {
        EXPECT_GE(m, 0.0);
        EXPECT_LE(m, 1.0);
    }
}

TEST(PpmPredictorTest, TableGrowsWithDistinctContexts)
{
    PpmPredictor p(PpmPredictor::History::Global,
                   PpmPredictor::Tables::Shared, 4);
    Rng rng(5);
    for (int i = 0; i < 1000; ++i)
        p.predictAndUpdate(0x100, rng.chance(0.5));
    EXPECT_GT(p.tableEntries(), 16u);
    EXPECT_EQ(p.maxOrder(), 4u);
}

} // namespace
} // namespace mica
