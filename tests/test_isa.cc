/**
 * @file
 * Tests for the mini-ISA substrate: opcode metadata, the assembler,
 * sparse memory, and interpreter semantics.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/interpreter.hh"
#include "isa/memory.hh"
#include "isa/opcode.hh"

namespace mica::isa
{
namespace
{

using namespace reg;

/** Run a program to completion; @return executed instruction count. */
uint64_t
runAll(Interpreter &interp, uint64_t cap = 1000000)
{
    InstRecord r;
    uint64_t n = 0;
    while (n < cap && interp.next(r))
        ++n;
    return n;
}

TEST(OpcodeTest, EveryOpcodeHasANameAndClass)
{
    for (int i = 0; i < kNumOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        EXPECT_NE(opcodeName(op), nullptr);
        EXPECT_STRNE(opcodeName(op), "");
        // opcodeClass must return a valid enumerator.
        EXPECT_LT(static_cast<int>(opcodeClass(op)), kNumInstClasses);
    }
}

TEST(OpcodeTest, ClassificationMatchesSemantics)
{
    EXPECT_EQ(opcodeClass(Opcode::Add), InstClass::IntAlu);
    EXPECT_EQ(opcodeClass(Opcode::Mul), InstClass::IntMul);
    EXPECT_EQ(opcodeClass(Opcode::Div), InstClass::IntDiv);
    EXPECT_EQ(opcodeClass(Opcode::Fadd), InstClass::FpAlu);
    EXPECT_EQ(opcodeClass(Opcode::Fmul), InstClass::FpMul);
    EXPECT_EQ(opcodeClass(Opcode::Fdiv), InstClass::FpDiv);
    EXPECT_EQ(opcodeClass(Opcode::Ld), InstClass::Load);
    EXPECT_EQ(opcodeClass(Opcode::Fld), InstClass::Load);
    EXPECT_EQ(opcodeClass(Opcode::Sd), InstClass::Store);
    EXPECT_EQ(opcodeClass(Opcode::Fsd), InstClass::Store);
    EXPECT_EQ(opcodeClass(Opcode::Beq), InstClass::Branch);
    EXPECT_EQ(opcodeClass(Opcode::J), InstClass::Jump);
    EXPECT_EQ(opcodeClass(Opcode::Jal), InstClass::Call);
    EXPECT_EQ(opcodeClass(Opcode::Jr), InstClass::Return);
}

TEST(OpcodeTest, MemSizesMatchMnemonics)
{
    EXPECT_EQ(opcodeMemSize(Opcode::Lb), 1);
    EXPECT_EQ(opcodeMemSize(Opcode::Lbu), 1);
    EXPECT_EQ(opcodeMemSize(Opcode::Lh), 2);
    EXPECT_EQ(opcodeMemSize(Opcode::Lw), 4);
    EXPECT_EQ(opcodeMemSize(Opcode::Ld), 8);
    EXPECT_EQ(opcodeMemSize(Opcode::Fld), 8);
    EXPECT_EQ(opcodeMemSize(Opcode::Sb), 1);
    EXPECT_EQ(opcodeMemSize(Opcode::Sd), 8);
    EXPECT_EQ(opcodeMemSize(Opcode::Add), 0);
}

TEST(OpcodeTest, FpFlagIdentifiesFpRegisterOpcodes)
{
    EXPECT_TRUE(opcodeIsFp(Opcode::Fadd));
    EXPECT_TRUE(opcodeIsFp(Opcode::Fld));
    EXPECT_FALSE(opcodeIsFp(Opcode::Add));
    EXPECT_FALSE(opcodeIsFp(Opcode::Ld));
}

TEST(MemoryTest, UnwrittenMemoryReadsZero)
{
    Memory m;
    EXPECT_EQ(m.read(0x12345678, 8), 0u);
    EXPECT_EQ(m.read8(0xdeadbeef), 0u);
}

TEST(MemoryTest, ReadBackWrites)
{
    Memory m;
    m.write(0x1000, 8, 0x1122334455667788ull);
    EXPECT_EQ(m.read(0x1000, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.read(0x1000, 4), 0x55667788u);
    EXPECT_EQ(m.read(0x1000, 2), 0x7788u);
    EXPECT_EQ(m.read8(0x1000), 0x88u);
    EXPECT_EQ(m.read8(0x1007), 0x11u);
}

TEST(MemoryTest, CrossPageAccessIsByteConsistent)
{
    Memory m;
    const uint64_t addr = Memory::kPageSize - 3;   // spans two pages
    m.write(addr, 8, 0x0807060504030201ull);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(m.read8(addr + i), i + 1);
    EXPECT_EQ(m.read(addr, 8), 0x0807060504030201ull);
    EXPECT_EQ(m.numPages(), 2u);
}

TEST(MemoryTest, F64RoundTrip)
{
    Memory m;
    m.writeF64(0x2000, -1234.5678);
    EXPECT_DOUBLE_EQ(m.readF64(0x2000), -1234.5678);
}

TEST(MemoryTest, ManyPagesSurviveTableGrowth)
{
    // Touch enough pages to force the flat-hash page table through
    // several growth cycles, then verify every byte.
    Memory m;
    constexpr uint64_t kPages = 1500;
    for (uint64_t p = 0; p < kPages; ++p)
        m.write8(p * Memory::kPageSize + (p % Memory::kPageSize),
                 static_cast<uint8_t>(p * 7 + 1));
    EXPECT_EQ(m.numPages(), kPages);
    for (uint64_t p = 0; p < kPages; ++p) {
        EXPECT_EQ(m.read8(p * Memory::kPageSize +
                          (p % Memory::kPageSize)),
                  static_cast<uint8_t>(p * 7 + 1));
    }
    // Untouched pages still read zero and allocate on demand.
    EXPECT_EQ(m.read8(kPages * Memory::kPageSize + 5), 0u);
}

TEST(MemoryTest, ClearDropsAllPages)
{
    Memory m;
    m.write8(0x100, 1);
    m.write8(0x100000, 2);
    EXPECT_EQ(m.numPages(), 2u);
    m.clear();
    EXPECT_EQ(m.numPages(), 0u);
    EXPECT_EQ(m.read8(0x100), 0u);
}

TEST(AssemblerTest, DuplicateLabelThrows)
{
    Assembler a;
    a.label("x");
    EXPECT_THROW(a.label("x"), std::runtime_error);
}

TEST(AssemblerTest, UnresolvedLabelThrowsAtFinish)
{
    Assembler a;
    a.j("nowhere");
    EXPECT_THROW(a.finish(), std::runtime_error);
}

TEST(AssemblerTest, NewLabelNamesAreUnique)
{
    Assembler a;
    EXPECT_NE(a.newLabel(), a.newLabel());
    EXPECT_NE(a.newLabel("x"), a.newLabel("x"));
}

TEST(AssemblerTest, DataSegmentsAreLaidOutSequentiallyAligned)
{
    Assembler a;
    const uint64_t b1 = a.dataU8({1, 2, 3});
    const uint64_t b2 = a.dataU64({42});
    EXPECT_EQ(b1, Program::kDataBase);
    EXPECT_EQ(b2 % 8, 0u);
    EXPECT_GE(b2, b1 + 3);
    a.halt();
    const Program p = a.finish();
    EXPECT_EQ(p.segments.size(), 2u);
    EXPECT_EQ(p.dataBytes(), 3u + 8u);
}

TEST(AssemblerTest, ReserveLazyAdvancesCursorWithoutSegment)
{
    Assembler a;
    const uint64_t big = a.reserveLazy(1 << 20);
    const uint64_t after = a.dataU8({7});
    EXPECT_GE(after, big + (1 << 20));
    a.halt();
    const Program p = a.finish();
    // Only the one-byte segment was materialized.
    EXPECT_EQ(p.segments.size(), 1u);
    EXPECT_EQ(p.dataBytes(), 1u);
}

TEST(AssemblerTest, BranchTargetsResolveToInstructionIndices)
{
    Assembler a;
    a.li(T0, 3);
    a.label("loop");
    a.addi(T0, T0, -1);
    a.bnez(T0, "loop");
    a.halt();
    const Program p = a.finish();
    // bnez is instruction 2 and must point at index 1.
    EXPECT_EQ(p.code[2].imm, 1);
}

TEST(InterpreterTest, ArithmeticBasics)
{
    Assembler a;
    a.li(T0, 20);
    a.li(T1, 22);
    a.add(T2, T0, T1);
    a.sub(T3, T0, T1);
    a.mul(T4, T0, T1);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_EQ(in.reg(T2), 42);
    EXPECT_EQ(in.reg(T3), -2);
    EXPECT_EQ(in.reg(T4), 440);
}

TEST(InterpreterTest, DivisionEdgeCases)
{
    Assembler a;
    a.li(T0, 7);
    a.li(T1, 0);
    a.div(T2, T0, T1);      // divide by zero -> 0
    a.rem(T3, T0, T1);      // remainder by zero -> dividend
    a.li(T4, -9);
    a.li(T5, 2);
    a.div(T6, T4, T5);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_EQ(in.reg(T2), 0);
    EXPECT_EQ(in.reg(T3), 7);
    EXPECT_EQ(in.reg(T6), -4);
}

TEST(InterpreterTest, ZeroRegisterIsImmutable)
{
    Assembler a;
    a.li(Zero, 99);
    a.addi(Zero, Zero, 5);
    a.add(T0, Zero, Zero);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_EQ(in.reg(Zero), 0);
    EXPECT_EQ(in.reg(T0), 0);
}

TEST(InterpreterTest, ShiftsAndLogicOps)
{
    Assembler a;
    a.li(T0, 0xff00);
    a.shli(T1, T0, 4);
    a.shri(T2, T0, 4);
    a.li(T3, -16);
    a.sari(T4, T3, 2);
    a.andi(T5, T0, 0xf0f0);
    a.ori(T6, T0, 0x00ff);
    a.xori(T7, T0, 0xffff);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_EQ(in.reg(T1), 0xff000);
    EXPECT_EQ(in.reg(T2), 0xff0);
    EXPECT_EQ(in.reg(T4), -4);
    EXPECT_EQ(in.reg(T5), 0xf000);
    EXPECT_EQ(in.reg(T6), 0xffff);
    EXPECT_EQ(in.reg(T7), 0x00ff);
}

TEST(InterpreterTest, ComparisonsSignedAndUnsigned)
{
    Assembler a;
    a.li(T0, -1);
    a.li(T1, 1);
    a.slt(T2, T0, T1);      // -1 < 1 signed
    a.sltu(T3, T0, T1);     // 0xfff... < 1 unsigned is false
    a.slti(T4, T0, 0);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_EQ(in.reg(T2), 1);
    EXPECT_EQ(in.reg(T3), 0);
    EXPECT_EQ(in.reg(T4), 1);
}

TEST(InterpreterTest, LoadSignExtensionAndZeroExtension)
{
    Assembler a;
    const uint64_t d = a.dataU8({0xff, 0xff, 0x80, 0x00});
    a.li(S0, static_cast<int64_t>(d));
    a.lb(T0, S0, 0);        // -1 sign extended
    a.lbu(T1, S0, 0);       // 255
    a.lh(T2, S0, 0);        // -1
    a.lhu(T3, S0, 0);       // 0xffff
    a.lb(T4, S0, 2);        // -128
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_EQ(in.reg(T0), -1);
    EXPECT_EQ(in.reg(T1), 255);
    EXPECT_EQ(in.reg(T2), -1);
    EXPECT_EQ(in.reg(T3), 0xffff);
    EXPECT_EQ(in.reg(T4), -128);
}

TEST(InterpreterTest, StoreThenLoadRoundTrip)
{
    Assembler a;
    const uint64_t buf = a.reserve(64);
    a.li(S0, static_cast<int64_t>(buf));
    a.li(T0, 0x1234567890abcdefll);
    a.sd(T0, S0, 0);
    a.ld(T1, S0, 0);
    a.sw(T0, S0, 16);
    a.lwu(T2, S0, 16);
    a.sb(T0, S0, 32);
    a.lbu(T3, S0, 32);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_EQ(in.reg(T1), 0x1234567890abcdefll);
    EXPECT_EQ(in.reg(T2), 0x90abcdefll);
    EXPECT_EQ(in.reg(T3), 0xef);
}

TEST(InterpreterTest, FloatingPointArithmetic)
{
    Assembler a;
    const uint64_t d = a.dataF64({1.5, 2.5});
    a.li(S0, static_cast<int64_t>(d));
    a.fld(0, S0, 0);
    a.fld(1, S0, 8);
    a.fadd(2, 0, 1);
    a.fsub(3, 0, 1);
    a.fmul(4, 0, 1);
    a.fdiv(5, 1, 0);
    a.fmin(6, 0, 1);
    a.fmax(7, 0, 1);
    a.fsqrt(8, 1);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_DOUBLE_EQ(in.freg(2), 4.0);
    EXPECT_DOUBLE_EQ(in.freg(3), -1.0);
    EXPECT_DOUBLE_EQ(in.freg(4), 3.75);
    EXPECT_DOUBLE_EQ(in.freg(5), 2.5 / 1.5);
    EXPECT_DOUBLE_EQ(in.freg(6), 1.5);
    EXPECT_DOUBLE_EQ(in.freg(7), 2.5);
    EXPECT_DOUBLE_EQ(in.freg(8), std::sqrt(2.5));
}

TEST(InterpreterTest, FpDivByZeroYieldsZero)
{
    Assembler a;
    const uint64_t d = a.dataF64({3.0, 0.0});
    a.li(S0, static_cast<int64_t>(d));
    a.fld(0, S0, 0);
    a.fld(1, S0, 8);
    a.fdiv(2, 0, 1);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_DOUBLE_EQ(in.freg(2), 0.0);
}

TEST(InterpreterTest, FpComparesWriteIntegerRegisters)
{
    Assembler a;
    const uint64_t d = a.dataF64({1.0, 2.0});
    a.li(S0, static_cast<int64_t>(d));
    a.fld(0, S0, 0);
    a.fld(1, S0, 8);
    a.fclt(T0, 0, 1);
    a.fcle(T1, 1, 1);
    a.fceq(T2, 0, 1);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_EQ(in.reg(T0), 1);
    EXPECT_EQ(in.reg(T1), 1);
    EXPECT_EQ(in.reg(T2), 0);
}

TEST(InterpreterTest, ConversionsRoundTrip)
{
    Assembler a;
    a.li(T0, -7);
    a.itof(0, T0);
    a.ftoi(T1, 0);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_DOUBLE_EQ(in.freg(0), -7.0);
    EXPECT_EQ(in.reg(T1), -7);
}

TEST(InterpreterTest, BranchOutcomesSteerControlFlow)
{
    Assembler a;
    a.li(T0, 5);
    a.li(T1, 0);            // sum
    a.label("loop");
    a.add(T1, T1, T0);
    a.addi(T0, T0, -1);
    a.bnez(T0, "loop");
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_EQ(in.reg(T1), 15);  // 5+4+3+2+1
}

TEST(InterpreterTest, BranchRecordsReportTakenAndTarget)
{
    Assembler a;
    a.li(T0, 1);
    a.beqz(T0, "skip");     // not taken
    a.li(T1, 7);
    a.label("skip");
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    InstRecord r;
    in.next(r);             // li
    in.next(r);             // beqz
    EXPECT_EQ(r.cls, InstClass::Branch);
    EXPECT_FALSE(r.taken);
    EXPECT_EQ(r.target, p.pcOf(3));
    in.next(r);             // li T1
    EXPECT_EQ(in.reg(T1), 7);
}

TEST(InterpreterTest, CallAndReturnUseTheLinkRegister)
{
    Assembler a;
    a.j("main");
    a.label("double_it");
    a.add(A0, A0, A0);
    a.ret();
    a.label("main");
    a.li(A0, 21);
    a.call("double_it");
    a.mv(S0, A0);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_EQ(in.reg(S0), 42);
}

TEST(InterpreterTest, TopLevelReturnHitsHaltSentinel)
{
    Assembler a;
    a.li(T0, 1);
    a.ret();                // Ra == kHaltAddr initially
    a.li(T0, 99);           // must not execute
    const Program p = a.finish();
    Interpreter in(p);
    EXPECT_EQ(runAll(in), 2u);
    EXPECT_TRUE(in.halted());
    EXPECT_EQ(in.reg(T0), 1);
}

TEST(InterpreterTest, RunningOffTheEndStops)
{
    Assembler a;
    a.li(T0, 1);
    const Program p = a.finish();
    Interpreter in(p);
    EXPECT_EQ(runAll(in), 1u);
    InstRecord r;
    EXPECT_FALSE(in.next(r));
}

TEST(InterpreterTest, InstCountMatchesEmittedRecords)
{
    Assembler a;
    a.li(T0, 10);
    a.label("l");
    a.addi(T0, T0, -1);
    a.bnez(T0, "l");
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    const uint64_t n = runAll(in);
    EXPECT_EQ(in.instCount(), n);
    EXPECT_EQ(n, 1 + 10 * 2 + 1u);
}

TEST(InterpreterTest, ResetReproducesExecutionExactly)
{
    Assembler a;
    const uint64_t buf = a.reserve(8);
    a.li(S0, static_cast<int64_t>(buf));
    a.ld(T0, S0, 0);
    a.addi(T0, T0, 1);
    a.sd(T0, S0, 0);        // memory side effect
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_EQ(in.reg(T0), 1);
    EXPECT_TRUE(in.reset());
    runAll(in);
    // After reset the memory image is rebuilt, so the load sees 0 again.
    EXPECT_EQ(in.reg(T0), 1);
}

TEST(InterpreterTest, DataSegmentsAreVisibleToLoads)
{
    Assembler a;
    const uint64_t d = a.dataU64({0xabcdef, 77});
    a.li(S0, static_cast<int64_t>(d));
    a.ld(T0, S0, 0);
    a.ld(T1, S0, 8);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_EQ(in.reg(T0), 0xabcdef);
    EXPECT_EQ(in.reg(T1), 77);
}

TEST(InterpreterTest, StoreRecordsCarryAddressAndSize)
{
    Assembler a;
    const uint64_t buf = a.reserve(16);
    a.li(S0, static_cast<int64_t>(buf));
    a.li(T0, 5);
    a.sw(T0, S0, 4);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    InstRecord r;
    in.next(r);
    in.next(r);
    in.next(r);             // the store
    EXPECT_EQ(r.cls, InstClass::Store);
    EXPECT_EQ(r.memAddr, buf + 4);
    EXPECT_EQ(r.memSize, 4);
}

TEST(InterpreterTest, FpRegistersReportShiftedIdsInRecords)
{
    Assembler a;
    const uint64_t d = a.dataF64({1.0});
    a.li(S0, static_cast<int64_t>(d));
    a.fld(3, S0, 0);
    a.fadd(4, 3, 3);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    InstRecord r;
    in.next(r);             // li
    in.next(r);             // fld -> dst is FP reg 3
    EXPECT_EQ(r.dstReg, kNumIntRegs + 3);
    in.next(r);             // fadd
    EXPECT_EQ(r.srcRegs[0], kNumIntRegs + 3);
    EXPECT_EQ(r.dstReg, kNumIntRegs + 4);
}


TEST(InterpreterTest, FpMinMaxNegAbsMov)
{
    Assembler a;
    const uint64_t d = a.dataF64({-3.5, 2.0});
    a.li(S0, static_cast<int64_t>(d));
    a.fld(0, S0, 0);
    a.fld(1, S0, 8);
    a.fmin(2, 0, 1);
    a.fmax(3, 0, 1);
    a.fneg(4, 0);
    a.fabs_(5, 0);
    a.fmov(6, 1);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_DOUBLE_EQ(in.freg(2), -3.5);
    EXPECT_DOUBLE_EQ(in.freg(3), 2.0);
    EXPECT_DOUBLE_EQ(in.freg(4), 3.5);
    EXPECT_DOUBLE_EQ(in.freg(5), 3.5);
    EXPECT_DOUBLE_EQ(in.freg(6), 2.0);
}

TEST(InterpreterTest, AllBranchVariantsSteerCorrectly)
{
    Assembler a;
    a.li(T0, -2);
    a.li(T1, 3);
    a.li(S0, 0);                        // result bits
    const char *labels[] = {"blt", "bge", "bltu", "bgeu"};
    // blt: -2 < 3 signed -> taken.
    a.blt(T0, T1, "blt");
    a.j("after_blt");
    a.label("blt");
    a.ori(S0, S0, 1);
    a.label("after_blt");
    // bge: 3 >= -2 -> taken.
    a.bge(T1, T0, "bge");
    a.j("after_bge");
    a.label("bge");
    a.ori(S0, S0, 2);
    a.label("after_bge");
    // bltu: unsigned(-2) is huge, so 3 < unsigned(-2) -> taken.
    a.bltu(T1, T0, "bltu");
    a.j("after_bltu");
    a.label("bltu");
    a.ori(S0, S0, 4);
    a.label("after_bltu");
    // bgeu: unsigned(-2) >= 3 -> taken.
    a.bgeu(T0, T1, "bgeu");
    a.j("after_bgeu");
    a.label("bgeu");
    a.ori(S0, S0, 8);
    a.label("after_bgeu");
    (void)labels;
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_EQ(in.reg(S0), 15);
}

TEST(InterpreterTest, HalfWordAndWordStores)
{
    Assembler a;
    const uint64_t buf = a.reserve(16);
    a.li(S0, static_cast<int64_t>(buf));
    a.li(T0, 0x1234cdef);
    a.sh(T0, S0, 0);                    // stores 0xcdef
    a.lhu(T1, S0, 0);
    a.lh(T2, S0, 0);                    // sign extended
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_EQ(in.reg(T1), 0xcdef);
    EXPECT_EQ(in.reg(T2), static_cast<int16_t>(0xcdef));
}

TEST(InterpreterTest, JalrCallsThroughARegister)
{
    Assembler a;
    a.j("main");
    a.label("callee");
    a.li(S1, 77);
    a.ret();
    a.label("main");
    // Materialize the callee address: label index 1 -> pcOf(1).
    a.li(T0, static_cast<int64_t>(Program::kCodeBase + 4 * 1));
    a.jalr(T0);
    a.li(S2, 88);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_EQ(in.reg(S1), 77);
    EXPECT_EQ(in.reg(S2), 88);
}

TEST(InterpreterTest, MuliAndNegativeShifts)
{
    Assembler a;
    a.li(T0, -6);
    a.muli(T1, T0, 7);
    a.li(T2, 1);
    a.shli(T3, T2, 63);                 // sign bit
    a.sari(T4, T3, 63);                 // all ones
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    runAll(in);
    EXPECT_EQ(in.reg(T1), -42);
    EXPECT_EQ(in.reg(T4), -1);
}

TEST(InterpreterTest, SetRegAndSetFregSeedState)
{
    Assembler a;
    a.add(T1, A0, A0);
    a.fadd(1, 0, 0);
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    in.setReg(A0, 21);
    in.setFreg(0, 1.25);
    runAll(in);
    EXPECT_EQ(in.reg(T1), 42);
    EXPECT_DOUBLE_EQ(in.freg(1), 2.5);
}

TEST(InterpreterTest, CallRecordsHaveCallClassAndLinkWrite)
{
    Assembler a;
    a.j("main");
    a.label("f");
    a.ret();
    a.label("main");
    a.call("f");
    a.halt();
    const Program p = a.finish();
    Interpreter in(p);
    InstRecord r;
    in.next(r);                         // j main
    EXPECT_EQ(r.cls, InstClass::Jump);
    in.next(r);                         // call f
    EXPECT_EQ(r.cls, InstClass::Call);
    EXPECT_EQ(r.dstReg, reg::Ra);
    EXPECT_TRUE(r.taken);
    in.next(r);                         // ret
    EXPECT_EQ(r.cls, InstClass::Return);
    EXPECT_EQ(r.numSrcRegs, 1);
    EXPECT_EQ(r.srcRegs[0], reg::Ra);
}

} // namespace
} // namespace mica::isa
