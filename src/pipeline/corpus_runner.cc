#include "pipeline/corpus_runner.hh"

#include <cstdio>
#include <filesystem>

#include "obs/obs.hh"
#include "service/json.hh"
#include "util/checked_io.hh"

namespace mica::pipeline
{

namespace
{

namespace fs = std::filesystem;

constexpr const char *kMarkerFile = "shard.done.json";
constexpr const char *kMarkerSchema = "mica-shard-done/1";

std::string
hexDigest(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/**
 * @return true when @p path holds a marker for exactly this shard
 * (schema, name, and content digest all match), filling in the
 * recorded counts. Any unreadable or mismatched marker reads as
 * "not done" — resume must never trust a stale or torn marker.
 */
bool
readDoneMarker(const std::string &path,
               const workloads::CorpusShard &shard, ShardOutcome &out)
{
    std::string text;
    try {
        text = util::readFileBytes(path, "corpus.marker");
    } catch (const util::IoError &) {
        return false;
    }
    service::JsonValue doc;
    if (!service::parseJson(text, &doc) || !doc.isObject())
        return false;
    const auto *schema = doc.find("schema");
    const auto *name = doc.find("shard");
    const auto *digest = doc.find("digest");
    if (!schema || !schema->isString() ||
        schema->asString() != kMarkerSchema || !name ||
        !name->isString() || name->asString() != shard.name ||
        !digest || !digest->isString() ||
        digest->asString() != hexDigest(shard.digest()))
        return false;
    const auto *benchmarks = doc.find("benchmarks");
    const auto *failures = doc.find("failures");
    out.benchmarks = benchmarks && benchmarks->asCount() >= 0
                         ? static_cast<size_t>(benchmarks->asCount())
                         : 0;
    out.failures = failures && failures->asCount() >= 0
                       ? static_cast<size_t>(failures->asCount())
                       : 0;
    return true;
}

void
writeDoneMarker(const std::string &path,
                const workloads::CorpusShard &shard,
                const ShardResult &result)
{
    using service::JsonValue;
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue::str(kMarkerSchema));
    doc.set("shard", JsonValue::str(shard.name));
    doc.set("digest", JsonValue::str(hexDigest(shard.digest())));
    doc.set("benchmarks", JsonValue::number(
                              static_cast<uint64_t>(result.benchmarks)));
    doc.set("failures",
            JsonValue::number(static_cast<uint64_t>(result.failures)));
    util::atomicWriteFile(path, doc.dump() + "\n", "corpus.marker");
}

} // namespace

std::vector<ShardOutcome>
runCorpusShards(const workloads::CorpusManifest &manifest,
                const CorpusRunOptions &opt, const ShardFn &fn)
{
    obs::ObsSpan sp("corpus.run");
    static obs::Counter doneC("corpus.shard.done");
    static obs::Counter skippedC("corpus.shard.skipped");
    static obs::Counter failedC("corpus.shard.failed");

    std::error_code ec;
    fs::create_directories(opt.outDir, ec);
    if (!fs::is_directory(opt.outDir, ec))
        throw workloads::CorpusError(opt.outDir,
                                     "cannot create output directory");

    std::vector<ShardOutcome> outcomes;
    outcomes.reserve(manifest.shards.size());
    for (size_t i = 0; i < manifest.shards.size(); ++i) {
        const auto &shard = manifest.shards[i];
        const std::string shardDir =
            (fs::path(opt.outDir) / shard.name).string();
        const std::string marker =
            (fs::path(shardDir) / kMarkerFile).string();

        ShardOutcome out;
        out.shard = shard.name;
        if (!opt.rerunAll && readDoneMarker(marker, shard, out)) {
            out.status = ShardOutcome::Status::Skipped;
            skippedC.add(1);
            outcomes.push_back(std::move(out));
            continue;
        }

        fs::create_directories(shardDir, ec);
        try {
            const ShardResult r = fn(i, shardDir);
            out.benchmarks = r.benchmarks;
            out.failures = r.failures;
            writeDoneMarker(marker, shard, r);
            out.status = ShardOutcome::Status::Done;
            doneC.add(1);
        } catch (const std::exception &e) {
            // Shard-level quarantine: record the failure, keep the
            // marker absent (the shard recomputes next run), and let
            // the rest of the corpus finish.
            if (!opt.isolate)
                throw;
            out.status = ShardOutcome::Status::Failed;
            out.error = e.what();
            failedC.add(1);
        }
        outcomes.push_back(std::move(out));
    }
    sp.arg("shards", outcomes.size());
    return outcomes;
}

} // namespace mica::pipeline
