#include "pipeline/thread_pool.hh"

namespace mica::pipeline
{

ThreadPool::ThreadPool(unsigned numWorkers)
{
    if (numWorkers == 0) {
        numWorkers = std::thread::hardware_concurrency();
        if (numWorkers == 0)
            numWorkers = 1;
    }
    workers_.reserve(numWorkers);
    for (unsigned i = 0; i < numWorkers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        // Abandon queued tasks; their futures report broken_promise,
        // which callers never see because collectors join before
        // destruction. The abandoned tasks will never hit the dequeue
        // decrement, so the queue-depth gauge settles here.
        static obs::Gauge depth("pool.queue.depth");
        depth.add(-static_cast<int64_t>(queue_.size()));
        std::queue<std::function<void()>> empty;
        queue_.swap(empty);
    }
    available_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            available_.wait(lock,
                            [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop();
        }
        static obs::Gauge depth("pool.queue.depth");
        depth.add(-1);
        static obs::Histogram runUs("pool.task.run_us");
        obs::ObsSpan sp("pool.task");
        const uint64_t t0 = obs::nowNs();
        task();    // packaged_task captures any exception
        runUs.record((obs::nowNs() - t0) / 1000);
    }
}

} // namespace mica::pipeline
