#include "pipeline/parallel_collector.hh"

#include <atomic>
#include <future>
#include <memory>
#include <mutex>

#include "isa/interpreter.hh"
#include "pipeline/thread_pool.hh"
#include "uarch/hpc_runner.hh"

namespace mica::pipeline
{

namespace
{

/** Shared progress state, serializing callback invocations. */
struct Progress
{
    Progress(const ProgressFn &f, size_t t) : fn(f), total(t) {}

    const ProgressFn &fn;
    const size_t total;
    size_t done = 0;
    std::mutex mutex;

    void
    tick(const std::string &label)
    {
        if (!fn)
            return;
        std::lock_guard<std::mutex> lock(mutex);
        fn(++done, total, label);
    }
};

MicaProfile
runMicaJob(const workloads::BenchmarkEntry &e, const MicaRunnerConfig &rc)
{
    const isa::Program prog = e.build();
    isa::Interpreter interp(prog);
    return collectMicaProfile(interp, e.info.fullName(), rc);
}

uarch::HwCounterProfile
runHpcJob(const workloads::BenchmarkEntry &e, const MicaRunnerConfig &rc)
{
    const isa::Program prog = e.build();
    isa::Interpreter interp(prog);
    return uarch::collectHwProfile(interp, e.info.fullName(), rc.maxInsts);
}

} // namespace

std::vector<StoredProfile>
collectProfiles(const std::vector<const workloads::BenchmarkEntry *> &entries,
                const MicaRunnerConfig &rc, unsigned jobs,
                const ProgressFn &progress, const ResultFn &onResult)
{
    std::vector<StoredProfile> results(entries.size());
    Progress prog(progress, entries.size() * 2);

    if (jobs == 1) {
        // Serial path: one build, one interpreter, reset between the
        // two characterizations — same behavior (and cost) as the
        // original serial sweep.
        for (size_t i = 0; i < entries.size(); ++i) {
            const auto &e = *entries[i];
            const isa::Program program = e.build();
            isa::Interpreter interp(program);
            results[i].mica =
                collectMicaProfile(interp, e.info.fullName(), rc);
            prog.tick(e.info.fullName() + " [mica]");
            interp.reset();
            results[i].hpc = uarch::collectHwProfile(
                interp, e.info.fullName(), rc.maxInsts);
            prog.tick(e.info.fullName() + " [hpc]");
            if (onResult)
                onResult(results[i]);
        }
        return results;
    }

    // Each benchmark's two jobs decrement this; whoever finishes
    // second delivers the completed result.
    auto pending = std::make_unique<std::atomic<int>[]>(entries.size());
    for (size_t i = 0; i < entries.size(); ++i)
        pending[i].store(2, std::memory_order_relaxed);
    auto finishJob = [&](size_t i) {
        if (pending[i].fetch_sub(1, std::memory_order_acq_rel) == 1 &&
            onResult)
            onResult(results[i]);
    };

    ThreadPool pool(jobs);
    std::vector<std::future<void>> futures;
    futures.reserve(entries.size() * 2);
    for (size_t i = 0; i < entries.size(); ++i) {
        const auto *e = entries[i];
        futures.push_back(pool.submit([e, &rc, &results, &prog,
                                       &finishJob, i] {
            results[i].mica = runMicaJob(*e, rc);
            prog.tick(e->info.fullName() + " [mica]");
            finishJob(i);
        }));
        futures.push_back(pool.submit([e, &rc, &results, &prog,
                                       &finishJob, i] {
            results[i].hpc = runHpcJob(*e, rc);
            prog.tick(e->info.fullName() + " [hpc]");
            finishJob(i);
        }));
    }

    // Wait for every job before rethrowing so no worker still touches
    // `results` when an exception unwinds this frame.
    std::exception_ptr firstError;
    for (auto &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!firstError)
                firstError = std::current_exception();
        }
    }
    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

} // namespace mica::pipeline
