#include "pipeline/parallel_collector.hh"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "isa/interpreter.hh"
#include "obs/obs.hh"
#include "pipeline/thread_pool.hh"
#include "uarch/hpc_runner.hh"
#include "util/failpoint.hh"

namespace mica::pipeline
{

namespace
{

/**
 * Fault-injection hook for the analysis phase itself (as opposed to
 * the I/O layer hooks in checked_io). Evaluated once per mica job —
 * never in the hpc job — so an `error@N` trigger quarantines a
 * deterministic benchmark count regardless of worker interleaving.
 */
void
checkAnalyzeFault(const std::string &bench)
{
    if (!util::failpointsArmed())
        return;
    const util::FailDecision d = util::evalFailpoint("pipeline.analyze");
    if (!d)
        return;
    switch (d.op) {
    case util::FailOp::Delay:
        std::this_thread::sleep_for(std::chrono::milliseconds(d.param));
        return;
    case util::FailOp::Abort:
        ::_exit(util::kCrashExitCode);
    default:
        throw std::runtime_error(
            "injected analyzer fault (pipeline.analyze): " + bench);
    }
}

/**
 * Per-entry failure ledger for fault-isolated sweeps. Workers record
 * under a mutex; the flush after the pool drains reads it single-
 * threaded, so the report is in input order no matter which worker
 * failed first.
 */
struct FailState
{
    explicit FailState(size_t n)
        : errMica(n), errHpc(n),
          failed(std::make_unique<std::atomic<bool>[]>(n))
    {
        for (size_t i = 0; i < n; ++i)
            failed[i].store(false, std::memory_order_relaxed);
    }

    void
    record(size_t i, bool micaJob, std::string msg)
    {
        if (msg.empty())
            msg = "unknown error";
        std::lock_guard<std::mutex> lock(mutex);
        (micaJob ? errMica : errHpc)[i] = std::move(msg);
        failed[i].store(true, std::memory_order_release);
    }

    std::vector<std::string> errMica, errHpc;
    std::unique_ptr<std::atomic<bool>[]> failed;
    std::mutex mutex;
};

/**
 * Telemetry for one profiling job: a pipeline.job span labeled with
 * the benchmark and characterization kind, plus the job-completion
 * counter the progress reporter's final line is derived from.
 */
struct JobObs
{
    JobObs(const std::string &bench, const char *kind)
        : span_("pipeline.job")
    {
        span_.arg("bench", bench);
        span_.arg("kind", kind);
    }

    ~JobObs()
    {
        static obs::Counter done("pipeline.job.done");
        done.add(1);
    }

    obs::ObsSpan span_;
};

/** Shared progress state, serializing callback invocations. */
struct Progress
{
    Progress(const ProgressFn &f, size_t t) : fn(f), total(t) {}

    const ProgressFn &fn;
    const size_t total;
    size_t done = 0;
    std::mutex mutex;

    void
    tick(const std::string &label)
    {
        if (!fn)
            return;
        std::lock_guard<std::mutex> lock(mutex);
        fn(++done, total, label);
    }
};

MicaProfile
runMicaJob(const isa::Program &prog, const std::string &name,
           const MicaRunnerConfig &rc)
{
    isa::Interpreter interp(prog);
    return collectMicaProfile(interp, name, rc);
}

uarch::HwCounterProfile
runHpcJob(const isa::Program &prog, const std::string &name,
          const MicaRunnerConfig &rc)
{
    isa::Interpreter interp(prog);
    return uarch::collectHwProfile(interp, name, rc.maxInsts);
}

/**
 * One benchmark's program, built at most once and shared by its two
 * profiling jobs. The build runs lazily inside whichever job gets
 * there first so a throwing kernel build still surfaces through that
 * job's future (and the unlucky second job retries and throws too),
 * exactly like the build-per-job scheme it replaces.
 */
struct SharedProgram
{
    const isa::Program &
    get(const workloads::BenchmarkEntry &e)
    {
        std::call_once(once, [&] { program.emplace(e.build()); });
        return *program;
    }

    std::once_flag once;
    std::optional<const isa::Program> program;
};

} // namespace

std::vector<StoredProfile>
collectProfiles(const std::vector<const workloads::BenchmarkEntry *> &entries,
                const MicaRunnerConfig &rc, unsigned jobs,
                const ProgressFn &progress, const ResultFn &onResult,
                const FaultPolicy &policy,
                std::vector<SweepFailure> *failures)
{
    std::vector<StoredProfile> results(entries.size());
    Progress prog(progress, entries.size() * 2);
    FailState fail(entries.size());

    // Called from inside a catch block. Without isolation the active
    // exception propagates exactly as it always has; with isolation
    // it becomes a ledger entry and the sweep moves on.
    auto handleJobError = [&](size_t i, bool micaJob) {
        if (!policy.isolate)
            throw;
        try {
            throw;
        } catch (const std::exception &ex) {
            fail.record(i, micaJob, ex.what());
        } catch (...) {
            fail.record(i, micaJob, "unknown error");
        }
    };

    // After all workers drain: clear any half-written result slots,
    // emit the input-order failure report, and enforce the cap.
    auto flushFailures = [&]() {
        if (!policy.isolate)
            return;
        size_t count = 0;
        for (size_t i = 0; i < entries.size(); ++i) {
            if (!fail.failed[i].load(std::memory_order_acquire))
                continue;
            ++count;
            results[i] = StoredProfile{};
            if (failures) {
                const bool micaJob = !fail.errMica[i].empty();
                failures->push_back(
                    {entries[i]->info.fullName(),
                     micaJob ? "mica" : "hpc",
                     micaJob ? fail.errMica[i] : fail.errHpc[i]});
            }
        }
        if (count > 0) {
            static obs::Counter quarantined("pipeline.quarantined");
            quarantined.add(count);
        }
        if (count > policy.maxFailures)
            throw SweepAborted(count, policy.maxFailures);
    };

    if (jobs == 1) {
        // Serial path: one build, one interpreter, reset between the
        // two characterizations — same behavior (and cost) as the
        // original serial sweep. Trace-backed entries substitute
        // their replay source for the interpreter; the records are
        // the same stream either way, so the profiles are too.
        for (size_t i = 0; i < entries.size(); ++i) {
            const auto &e = *entries[i];
            bool micaJob = true;
            try {
                if (e.source) {
                    auto src = e.source();
                    {
                        JobObs jo(e.info.fullName(), "mica");
                        checkAnalyzeFault(e.info.fullName());
                        results[i].mica =
                            collectMicaProfile(*src, e.info.fullName(), rc);
                    }
                    prog.tick(e.info.fullName() + " [mica]");
                    micaJob = false;
                    if (!src->reset())
                        src = e.source();
                    JobObs jo(e.info.fullName(), "hpc");
                    results[i].hpc = uarch::collectHwProfile(
                        *src, e.info.fullName(), rc.maxInsts);
                } else {
                    const isa::Program program = e.build();
                    isa::Interpreter interp(program);
                    {
                        JobObs jo(e.info.fullName(), "mica");
                        checkAnalyzeFault(e.info.fullName());
                        results[i].mica =
                            collectMicaProfile(interp, e.info.fullName(), rc);
                    }
                    prog.tick(e.info.fullName() + " [mica]");
                    micaJob = false;
                    interp.reset();
                    JobObs jo(e.info.fullName(), "hpc");
                    results[i].hpc = uarch::collectHwProfile(
                        interp, e.info.fullName(), rc.maxInsts);
                }
                prog.tick(e.info.fullName() + " [hpc]");
                if (onResult)
                    onResult(results[i]);
            } catch (...) {
                handleJobError(i, micaJob);
            }
        }
        flushFailures();
        return results;
    }

    // Each benchmark's two jobs decrement this; whoever finishes
    // second delivers the completed result.
    auto pending = std::make_unique<std::atomic<int>[]>(entries.size());
    for (size_t i = 0; i < entries.size(); ++i)
        pending[i].store(2, std::memory_order_relaxed);
    auto finishJob = [&](size_t i) {
        if (pending[i].fetch_sub(1, std::memory_order_acq_rel) == 1 &&
            onResult && !fail.failed[i].load(std::memory_order_acquire))
            onResult(results[i]);
    };

    ThreadPool pool(jobs);
    std::vector<std::future<void>> futures;
    futures.reserve(entries.size() * 2);
    for (size_t i = 0; i < entries.size(); ++i) {
        const auto *e = entries[i];
        if (e->source) {
            // Trace-backed entries have nothing to share: each job
            // opens its own (cheap) replay source, so the two jobs
            // never contend on a read cursor.
            futures.push_back(pool.submit([e, &rc, &results, &prog,
                                           &finishJob, &handleJobError, i] {
                try {
                    auto src = e->source();
                    {
                        JobObs jo(e->info.fullName(), "mica");
                        checkAnalyzeFault(e->info.fullName());
                        results[i].mica =
                            collectMicaProfile(*src, e->info.fullName(), rc);
                    }
                    prog.tick(e->info.fullName() + " [mica]");
                } catch (...) {
                    handleJobError(i, true);
                }
                finishJob(i);
            }));
            futures.push_back(pool.submit([e, &rc, &results, &prog,
                                           &finishJob, &handleJobError, i] {
                try {
                    auto src = e->source();
                    {
                        JobObs jo(e->info.fullName(), "hpc");
                        results[i].hpc = uarch::collectHwProfile(
                            *src, e->info.fullName(), rc.maxInsts);
                    }
                    prog.tick(e->info.fullName() + " [hpc]");
                } catch (...) {
                    handleJobError(i, false);
                }
                finishJob(i);
            }));
            continue;
        }
        // Build each program once and lend the immutable result to
        // both profiling jobs instead of rebuilding it per job; the
        // shared_ptr keeps it alive until the slower job finishes.
        auto program = std::make_shared<SharedProgram>();
        futures.push_back(pool.submit([e, program, &rc, &results, &prog,
                                       &finishJob, &handleJobError, i] {
            try {
                {
                    JobObs jo(e->info.fullName(), "mica");
                    checkAnalyzeFault(e->info.fullName());
                    results[i].mica =
                        runMicaJob(program->get(*e), e->info.fullName(), rc);
                }
                prog.tick(e->info.fullName() + " [mica]");
            } catch (...) {
                handleJobError(i, true);
            }
            finishJob(i);
        }));
        futures.push_back(pool.submit([e, program, &rc, &results, &prog,
                                       &finishJob, &handleJobError, i] {
            try {
                {
                    JobObs jo(e->info.fullName(), "hpc");
                    results[i].hpc =
                        runHpcJob(program->get(*e), e->info.fullName(), rc);
                }
                prog.tick(e->info.fullName() + " [hpc]");
            } catch (...) {
                handleJobError(i, false);
            }
            finishJob(i);
        }));
    }

    // Wait for every job before rethrowing so no worker still touches
    // `results` when an exception unwinds this frame. Under isolation
    // no future carries an exception — failures land in the ledger
    // and are flushed (and possibly escalated) below.
    std::exception_ptr firstError;
    for (auto &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!firstError)
                firstError = std::current_exception();
        }
    }
    if (firstError)
        std::rethrow_exception(firstError);
    flushFailures();
    return results;
}

} // namespace mica::pipeline
