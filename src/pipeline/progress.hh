/**
 * @file
 * Progress-callback contract shared by the pipeline and its clients.
 * Kept dependency-free so experiment headers can expose a hook without
 * dragging the whole pipeline into every translation unit.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <string>

namespace mica::pipeline
{

/**
 * Live status hook: invoked once per finished job with the number of
 * jobs done so far, the total job count, and the job's label
 * ("suite/program.input [mica|hpc]"). With more than one worker it is
 * called from worker threads, serialized by an internal mutex; keep it
 * cheap and do not call back into the collector.
 */
using ProgressFn =
    std::function<void(size_t done, size_t total, const std::string &label)>;

/**
 * @return the standard stderr reporter. On a TTY: a carriage-return
 * status line, newline-terminated when the last job finishes. When
 * stderr is a pipe or file (CI logs), repainting is suppressed in
 * favor of ~10 newline-terminated milestone lines, and the final line
 * reports the job tally from the telemetry snapshot.
 */
ProgressFn stderrProgress();

} // namespace mica::pipeline
