/**
 * @file
 * Fixed-size worker pool with a futures-based submit API.
 *
 * The characterization sweep is embarrassingly parallel (each benchmark
 * is profiled independently), so a plain task queue is all the
 * machinery the pipeline needs. Exceptions thrown by a task are
 * captured in its future and rethrown at get(), never on a worker
 * thread.
 */

#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/obs.hh"

namespace mica::pipeline
{

class ThreadPool
{
  public:
    /**
     * Start @p numWorkers worker threads. Zero selects
     * std::thread::hardware_concurrency() (minimum one).
     */
    explicit ThreadPool(unsigned numWorkers);

    /** Drains nothing: pending tasks are abandoned, running ones join. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a callable; its result (or exception) is delivered
     * through the returned future.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        // Queue-wait time is measured inside the wrapper: submit
        // stamps the enqueue instant, the worker's first act when it
        // invokes the wrapper is recording the difference.
        const uint64_t enqueuedNs = obs::nowNs();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_)
                throw std::runtime_error("submit on stopped ThreadPool");
            queue_.emplace([task, enqueuedNs] {
                static obs::Histogram waitUs("pool.task.wait_us");
                waitUs.record((obs::nowNs() - enqueuedNs) / 1000);
                (*task)();
            });
            static obs::Gauge depth("pool.queue.depth");
            depth.add(1);
        }
        available_.notify_one();
        return fut;
    }

    /** @return number of worker threads. */
    size_t workerCount() const { return workers_.size(); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable available_;
    bool stopping_ = false;
};

/**
 * Run fn(0) .. fn(count - 1) and wait for all of them, fanning the
 * calls across @p pool (nullptr or a single worker degrades to a plain
 * serial loop — the reference path every parallel caller is checked
 * against). Blocks must write disjoint state; the first exception is
 * rethrown after every block finished, so no block still runs when the
 * caller unwinds.
 *
 * Callers must not submit nested parallelBlocks from inside a block:
 * a worker blocking on an inner wave's futures can deadlock once every
 * worker is parked the same way. The methodology engine therefore
 * always fans out leaf work (one Lloyd run, one fitness chunk, one
 * distance block) and keeps reductions on the calling thread.
 */
template <typename Fn>
void
parallelBlocks(ThreadPool *pool, size_t count, Fn &&fn)
{
    if (!pool || pool->workerCount() <= 1 || count <= 1) {
        for (size_t b = 0; b < count; ++b)
            fn(b);
        return;
    }
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (size_t b = 0; b < count; ++b)
        futures.push_back(pool->submit([&fn, b] { fn(b); }));
    std::exception_ptr firstError;
    for (auto &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!firstError)
                firstError = std::current_exception();
        }
    }
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace mica::pipeline
