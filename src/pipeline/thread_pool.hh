/**
 * @file
 * Fixed-size worker pool with a futures-based submit API.
 *
 * The characterization sweep is embarrassingly parallel (each benchmark
 * is profiled independently), so a plain task queue is all the
 * machinery the pipeline needs. Exceptions thrown by a task are
 * captured in its future and rethrown at get(), never on a worker
 * thread.
 */

#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace mica::pipeline
{

class ThreadPool
{
  public:
    /**
     * Start @p numWorkers worker threads. Zero selects
     * std::thread::hardware_concurrency() (minimum one).
     */
    explicit ThreadPool(unsigned numWorkers);

    /** Drains nothing: pending tasks are abandoned, running ones join. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a callable; its result (or exception) is delivered
     * through the returned future.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_)
                throw std::runtime_error("submit on stopped ThreadPool");
            queue_.emplace([task] { (*task)(); });
        }
        available_.notify_one();
        return fut;
    }

    /** @return number of worker threads. */
    size_t workerCount() const { return workers_.size(); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable available_;
    bool stopping_ = false;
};

} // namespace mica::pipeline
