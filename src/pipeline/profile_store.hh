/**
 * @file
 * Durable, config-keyed store of per-benchmark profiling results.
 *
 * The paper's characterization sweep is the expensive step (110
 * machine-days on real hardware), so results must be reusable across
 * runs — but only when they were measured under the same collection
 * configuration. The store binds every file to a key derived from the
 * knobs that change measured values (instruction budget, PPM order,
 * suite filter) plus a format version; a mismatch rejects the whole
 * file instead of silently serving stale numbers, which is exactly the
 * bug the old mica_profiles.csv/hpc_profiles.csv cache had.
 *
 * Entries are stored per benchmark and persisted as they are
 * produced, so an interrupted sweep resumes from the benchmarks
 * already on disk (a partial cache hit re-profiles only the missing
 * ones). Every write goes through a ".tmp" sibling and an atomic
 * rename, so a crash mid-write can never leave a torn store behind.
 */

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "mica/profile.hh"
#include "uarch/hw_counter.hh"

namespace mica::pipeline
{

/** The collection knobs that determine measured profile values. */
struct StoreKey
{
    uint64_t maxInsts = 0;
    unsigned ppmMaxOrder = 8;
    std::vector<std::string> suites;

    /**
     * Trace-replay source (empty = interpret registry kernels).
     * Callers set it to "<dir>#<content-digest>" — the digest covers
     * every trace file's name and payload checksum, so re-recording a
     * trace invalidates the store instead of silently serving
     * profiles of the old bytes. The reader kind (mmap vs streamed)
     * is deliberately *not* part of the key — profiles are
     * byte-identical either way, like engineBatch.
     */
    std::string traceDir;

    /**
     * @return the canonical key string recorded in the store header
     * and compared exactly on open — no hashing, so no collision can
     * ever serve profiles measured under a different config.
     */
    std::string describe() const;
};

/** Both characterizations of one benchmark, as stored. */
struct StoredProfile
{
    MicaProfile mica;
    uarch::HwCounterProfile hpc;

    /** @return benchmark full name ("suite/program.input"). */
    const std::string &name() const { return mica.name; }
};

/**
 * One on-disk store file: <dir>/profiles.bin. Thread-safe for
 * concurrent put() calls.
 */
class ProfileStore
{
  public:
    /** Bump when the binary layout or profile shape changes. */
    static constexpr uint32_t kFormatVersion = 1;

    ProfileStore(const std::string &dir, const StoreKey &key);

    /**
     * Load every valid entry recorded under this store's key.
     * @return false when the file is absent or keyed to a different
     * configuration/format version; the store is then empty and the
     * first put() rewrites it from scratch. A truncated trailing
     * entry (interrupted run) is dropped, keeping the rest.
     * @throws util::IoError when the file exists but cannot be read
     * (EACCES, EIO, …) — callers degrade to compute-without-cache
     * with a loud warning rather than serving silently from an
     * unreadable store.
     */
    bool open();

    /** @return entry for a benchmark, or nullptr when missing. */
    const StoredProfile *find(const std::string &fullName) const;

    /** @return number of loaded + newly put entries. */
    size_t size() const { return entries_.size(); }

    /** Commit attempts per put (first try + retries with backoff). */
    static constexpr int kPutAttempts = 3;

    /**
     * Record one benchmark's result and persist immediately. Each
     * put rewrites the complete store (header + every entry, tens of
     * KB for the full suite) to a ".tmp" sibling and renames it into
     * place, so a crash at any instant leaves either the previous
     * complete file or the new complete file — never a torn one.
     * Transient commit failures are retried (kPutAttempts, bounded
     * exponential backoff, `store.retry` counter); a persistent
     * failure warns once on stderr and the entry stays in memory —
     * put never throws for I/O, so one full disk cannot abort a
     * sweep whose computation is fine.
     */
    void put(const StoredProfile &profile);

    /** @return the store file path. */
    const std::string &path() const { return path_; }

  private:
    std::string dir_;
    std::string path_;
    std::string keyCanon_;
    std::map<std::string, StoredProfile> entries_;
    std::mutex mutex_;
    bool warnedPutFailure_ = false;
};

} // namespace mica::pipeline
