/**
 * @file
 * Parallel fan-out of the profiling sweep.
 *
 * Each benchmark contributes two independent jobs — the MICA
 * characterization and the HPC (simulated hardware counter)
 * characterization — which are submitted to a ThreadPool and written
 * back into a result vector pre-sized in registry order, so the output
 * is deterministic regardless of worker interleaving. Every job builds
 * its own Program and Interpreter; nothing is shared between workers.
 */

#pragma once

#include <string>
#include <vector>

#include "mica/runner.hh"
#include "pipeline/profile_store.hh"
#include "pipeline/progress.hh"
#include "workloads/benchmark.hh"

namespace mica::pipeline
{

/**
 * Completion hook: invoked once per benchmark as soon as BOTH of its
 * jobs have finished, with the completed result. With more than one
 * worker it is called from whichever worker finished second; it must
 * be thread-safe (ProfileStore::put is). This is what lets the store
 * persist results as they are produced, so an interrupted sweep keeps
 * everything completed so far.
 */
using ResultFn = std::function<void(const StoredProfile &)>;

/**
 * Profile @p entries with both characterizations using @p jobs workers
 * (0 = hardware concurrency, 1 = inline on the calling thread).
 *
 * @return one StoredProfile per entry, in input order. Results are
 * bit-identical for any worker count: each job is a pure function of
 * its benchmark and @p rc. The first exception thrown by a job (in
 * input order) is rethrown on the calling thread after all workers
 * drain; results completed before the failure are still delivered
 * through @p onResult.
 */
std::vector<StoredProfile>
collectProfiles(const std::vector<const workloads::BenchmarkEntry *> &entries,
                const MicaRunnerConfig &rc, unsigned jobs,
                const ProgressFn &progress = {},
                const ResultFn &onResult = {});

} // namespace mica::pipeline
