/**
 * @file
 * Parallel fan-out of the profiling sweep.
 *
 * Each benchmark contributes two independent jobs — the MICA
 * characterization and the HPC (simulated hardware counter)
 * characterization — which are submitted to a ThreadPool and written
 * back into a result vector pre-sized in registry order, so the output
 * is deterministic regardless of worker interleaving. Every job builds
 * its own Program and Interpreter; nothing is shared between workers.
 */

#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "mica/runner.hh"
#include "pipeline/profile_store.hh"
#include "pipeline/progress.hh"
#include "workloads/benchmark.hh"

namespace mica::pipeline
{

/**
 * One quarantined benchmark: which one, which phase gave up on it
 * ("scan" for trace validation, "mica"/"hpc" for a profiling job),
 * and the error message. Reports are deterministic: failures are
 * listed in input (registry) order regardless of worker count.
 */
struct SweepFailure
{
    std::string bench;    ///< benchmark full name (or file path at scan)
    std::string phase;    ///< "scan", "mica", or "hpc"
    std::string error;    ///< the exception's message
};

/**
 * How a sweep treats a failing benchmark. The default (isolate =
 * false) preserves the historical contract: the first job exception
 * rethrows after all workers drain. With isolate = true the failing
 * benchmark is quarantined — recorded in the failures list, skipped
 * in the results — and the sweep completes everything else, unless
 * more than maxFailures benchmarks fail, which aborts the sweep with
 * SweepAborted (a runaway fault should stop burning cycles).
 */
struct FaultPolicy
{
    bool isolate = false;
    size_t maxFailures = static_cast<size_t>(-1);
};

/** Thrown when quarantined benchmarks exceed FaultPolicy::maxFailures. */
class SweepAborted : public std::runtime_error
{
  public:
    SweepAborted(size_t failures, size_t maxFailures)
        : std::runtime_error(
              "sweep aborted: " + std::to_string(failures) +
              " benchmarks failed (--max-failures=" +
              std::to_string(maxFailures) + ")"),
          failures_(failures)
    {}

    size_t failures() const { return failures_; }

  private:
    size_t failures_;
};

/**
 * Completion hook: invoked once per benchmark as soon as BOTH of its
 * jobs have finished, with the completed result. With more than one
 * worker it is called from whichever worker finished second; it must
 * be thread-safe (ProfileStore::put is). This is what lets the store
 * persist results as they are produced, so an interrupted sweep keeps
 * everything completed so far.
 */
using ResultFn = std::function<void(const StoredProfile &)>;

/**
 * Profile @p entries with both characterizations using @p jobs workers
 * (0 = hardware concurrency, 1 = inline on the calling thread).
 *
 * @return one StoredProfile per entry, in input order. Results are
 * bit-identical for any worker count: each job is a pure function of
 * its benchmark and @p rc.
 *
 * Failure handling depends on @p policy. Without isolation, the first
 * exception thrown by a job is rethrown on the calling thread after
 * all workers drain; results completed before the failure are still
 * delivered through @p onResult. With isolation, failing benchmarks
 * are appended to @p failures (in input order, one entry per
 * benchmark, preferring the mica job's message when both jobs fail)
 * and their result slots are left default-constructed; @p onResult is
 * never called for a quarantined benchmark. Each quarantined
 * benchmark bumps the "pipeline.quarantined" counter. If more than
 * policy.maxFailures benchmarks fail, SweepAborted is thrown after
 * the pool drains.
 */
std::vector<StoredProfile>
collectProfiles(const std::vector<const workloads::BenchmarkEntry *> &entries,
                const MicaRunnerConfig &rc, unsigned jobs,
                const ProgressFn &progress = {},
                const ResultFn &onResult = {},
                const FaultPolicy &policy = {},
                std::vector<SweepFailure> *failures = nullptr);

} // namespace mica::pipeline
