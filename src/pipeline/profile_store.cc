#include "pipeline/profile_store.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <thread>

#include "obs/obs.hh"
#include "util/checked_io.hh"

namespace mica::pipeline
{

namespace
{

constexpr char kMagic[8] = {'M', 'I', 'C', 'A', 'P', 'S', 'T', '\n'};
constexpr uint32_t kEntryMagic = 0x50524F46;    // "PROF"

template <typename T>
void
writePod(std::ostream &out, const T &v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
readPod(std::istream &in, T &v)
{
    in.read(reinterpret_cast<char *>(&v), sizeof(T));
    return in.gcount() == sizeof(T);
}

void
writeString(std::ostream &out, const std::string &s)
{
    writePod(out, static_cast<uint32_t>(s.size()));
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool
readString(std::istream &in, std::string &s)
{
    uint32_t len = 0;
    if (!readPod(in, len) || len > 4096)
        return false;
    s.resize(len);
    in.read(s.data(), len);
    return in.gcount() == static_cast<std::streamsize>(len);
}

void
writeEntry(std::ostream &out, const StoredProfile &p)
{
    writePod(out, kEntryMagic);
    writeString(out, p.mica.name);
    writePod(out, p.mica.instCount);
    for (double v : p.mica.values)
        writePod(out, v);
    writePod(out, p.hpc.instCount);
    for (double v : p.hpc.toVector())
        writePod(out, v);
}

bool
readEntry(std::istream &in, StoredProfile &p)
{
    uint32_t magic = 0;
    if (!readPod(in, magic) || magic != kEntryMagic)
        return false;
    if (!readString(in, p.mica.name))
        return false;
    if (!readPod(in, p.mica.instCount))
        return false;
    for (double &v : p.mica.values) {
        if (!readPod(in, v))
            return false;
    }
    if (!readPod(in, p.hpc.instCount))
        return false;
    std::array<double, uarch::HwCounterProfile::kNumMetrics> m{};
    for (double &v : m) {
        if (!readPod(in, v))
            return false;
    }
    p.hpc.name = p.mica.name;
    p.hpc.ipcEv56 = m[0];
    p.hpc.ipcEv67 = m[1];
    p.hpc.branchMissRate = m[2];
    p.hpc.l1dMissRate = m[3];
    p.hpc.l1iMissRate = m[4];
    p.hpc.l2MissRate = m[5];
    p.hpc.dtlbMissRate = m[6];
    return true;
}

} // namespace

std::string
StoreKey::describe() const
{
    std::ostringstream ss;
    ss << "budget=" << maxInsts << "|ppm=" << ppmMaxOrder << "|suites=";
    for (size_t i = 0; i < suites.size(); ++i)
        ss << (i ? "," : "") << suites[i];
    // Appended only when set so interpreter-sourced stores keep their
    // pre-trace-era key strings (and stay readable).
    if (!traceDir.empty())
        ss << "|traces=" << traceDir;
    return ss.str();
}

ProfileStore::ProfileStore(const std::string &dir, const StoreKey &key)
    : dir_(dir), path_(dir + "/profiles.bin"), keyCanon_(key.describe())
{
}

bool
ProfileStore::open()
{
    static obs::Counter opened("store.open.ok");
    static obs::Counter rejected("store.open.reject");
    static obs::Counter bytesRead("store.bytes.read");
    obs::ObsSpan sp("store.open");
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();

    std::string bytes;
    try {
        bytes = util::readFileBytes(path_, "store.load");
    } catch (const util::IoError &e) {
        if (e.code() == ENOENT)
            return false;    // absent is not a reject: first run is normal
        // A store that exists but cannot be read (EACCES, EIO, …) is a
        // real failure the caller must decide about — experiments
        // degrade to compute-without-cache with a loud warning.
        throw;
    }
    std::istringstream in;
    in.str(bytes);

    char magic[8] = {};
    in.read(magic, sizeof(magic));
    if (in.gcount() != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        rejected.add(1);
        return false;
    }
    uint32_t version = 0;
    std::string keyCanon;
    if (!readPod(in, version) || version != kFormatVersion) {
        rejected.add(1);
        return false;
    }
    if (!readString(in, keyCanon) || keyCanon != keyCanon_) {
        rejected.add(1);
        return false;
    }

    StoredProfile p;
    while (readEntry(in, p))
        entries_[p.name()] = p;
    bytesRead.add(bytes.size());
    opened.add(1);
    sp.arg("entries", static_cast<uint64_t>(entries_.size()));
    return true;
}

const StoredProfile *
ProfileStore::find(const std::string &fullName) const
{
    static obs::Counter hits("store.find.hit");
    static obs::Counter misses("store.find.miss");
    auto it = entries_.find(fullName);
    (it == entries_.end() ? misses : hits).add(1);
    return it == entries_.end() ? nullptr : &it->second;
}

void
ProfileStore::put(const StoredProfile &profile)
{
    static obs::Counter puts("store.put.count");
    static obs::Counter bytesWritten("store.bytes.written");
    obs::ObsSpan sp("store.commit");
    puts.add(1);
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[profile.name()] = profile;
    sp.arg("entries", static_cast<uint64_t>(entries_.size()));

    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);

    // Serialize the complete store once, then write it to a sibling
    // and rename it into place: a crash at any byte of the write
    // leaves the previous complete file untouched, and rename() on
    // one filesystem is atomic, so a reader can never observe a
    // header without its entries or an entry cut mid-double.
    // Rewriting everything per put costs tens of KB for the full
    // 122-benchmark suite — noise next to one benchmark's profiling
    // time.
    std::ostringstream out;
    out.write(kMagic, sizeof(kMagic));
    writePod(out, kFormatVersion);
    writeString(out, keyCanon_);
    for (const auto &kv : entries_)
        writeEntry(out, kv.second);
    const std::string bytes = out.str();

    // Transient I/O errors (NFS hiccup, EINTR-adjacent weirdness) get
    // a bounded exponential-backoff retry; a persistently failing
    // store warns loudly once and the sweep continues computing — the
    // results of this run are still correct, they just are not
    // cached. Every put keeps trying, so debris or a transient
    // condition from one failure never blocks the next attempt.
    static obs::Counter retries("store.retry");
    for (int attempt = 0;; ++attempt) {
        try {
            util::atomicWriteFile(path_, bytes, "store.put");
            bytesWritten.add(bytes.size());
            return;
        } catch (const util::IoError &e) {
            if (attempt + 1 >= kPutAttempts) {
                if (!warnedPutFailure_) {
                    warnedPutFailure_ = true;
                    std::cerr << "warning: profile store commit failed"
                              << " (results not cached): " << e.what()
                              << "\n";
                }
                return;
            }
            retries.add(1);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1 << attempt));
        }
    }
}

} // namespace mica::pipeline
