/**
 * @file
 * Shard-at-a-time corpus execution with durable per-shard resume.
 *
 * runCorpusShards() walks a corpus manifest in shard order and hands
 * each shard to a caller-supplied callback (the profiling step — the
 * runner itself is policy-free, like the Server's collect callback).
 * After a shard's callback returns, the runner writes a done marker
 * (`shard.done.json`, atomic .tmp + rename) into the shard's output
 * directory, stamped with the shard's content digest. On the next
 * run, shards whose marker matches are skipped outright — so a sweep
 * killed mid-corpus (crash, OOM, failpoint) resumes by recomputing
 * only the unfinished shards, and a shard whose traces changed since
 * the marker was written is recomputed, not trusted.
 *
 * Shards run sequentially: peak memory is bounded by one shard's
 * working set no matter how large the corpus, and parallelism lives
 * inside the callback (the per-benchmark job pool), where it can't
 * defeat the memory bound. A shard whose callback throws is
 * quarantined — recorded in its outcome, later shards still run —
 * mirroring the per-benchmark quarantine semantics one layer up.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "workloads/corpus.hh"

namespace mica::pipeline
{

/** What the per-shard callback reports back on success. */
struct ShardResult
{
    size_t benchmarks = 0;  ///< profiles produced
    size_t failures = 0;    ///< benchmarks quarantined inside the shard
};

/** One shard's fate in a corpus run. */
struct ShardOutcome
{
    enum class Status
    {
        Done,       ///< callback ran, marker written
        Skipped,    ///< valid done marker found, callback not run
        Failed,     ///< callback threw; error holds the reason
    };

    std::string shard;
    Status status = Status::Done;
    size_t benchmarks = 0;
    size_t failures = 0;
    std::string error;
};

/**
 * The per-shard work: profile the manifest's shard @p shardIndex into
 * @p shardOutDir (created by the runner before the call).
 */
using ShardFn =
    std::function<ShardResult(size_t shardIndex,
                              const std::string &shardOutDir)>;

struct CorpusRunOptions
{
    /** Root output directory; each shard gets <outDir>/<shard-name>. */
    std::string outDir;

    /** Ignore done markers and recompute every shard. */
    bool rerunAll = false;

    /**
     * When false, the first shard failure rethrows instead of being
     * quarantined into its outcome.
     */
    bool isolate = true;
};

/**
 * Run every shard of @p manifest through @p fn with resume and
 * quarantine as described above.
 *
 * @return one outcome per shard, in manifest order.
 * @throws workloads::CorpusError when opt.outDir cannot be created;
 *         rethrows the callback's exception when opt.isolate is off.
 */
std::vector<ShardOutcome>
runCorpusShards(const workloads::CorpusManifest &manifest,
                const CorpusRunOptions &opt, const ShardFn &fn);

} // namespace mica::pipeline
