#include "pipeline/progress.hh"

#include <cstdio>

namespace mica::pipeline
{

ProgressFn
stderrProgress()
{
    return [](size_t done, size_t total, const std::string &label) {
        std::fprintf(stderr, "\r[%zu/%zu] %-48s", done, total,
                     label.c_str());
        if (done == total)
            std::fprintf(stderr, "\n");
    };
}

} // namespace mica::pipeline
