#include "pipeline/progress.hh"

#include <unistd.h>

#include <cstdio>

#include "obs/obs.hh"

namespace mica::pipeline
{

namespace
{

/**
 * Final-line suffix sourced from the metrics snapshot rather than the
 * callback's own bookkeeping: the pipeline.job.done counter is the
 * authoritative tally of profiling jobs this process ran (a warm
 * cache rerun legitimately reports fewer jobs than twice the
 * benchmark count).
 */
std::string
finalNote()
{
    const auto snap = obs::snapshotMetrics();
    const auto it = snap.metrics.find("pipeline.job.done");
    if (it == snap.metrics.end() || it->second.value <= 0)
        return "";
    return " (" + std::to_string(it->second.value) +
        " jobs profiled this process)";
}

} // namespace

ProgressFn
stderrProgress()
{
    // Decide the rendering mode once: \r repainting is for humans
    // watching a terminal; in a CI log (pipe/file) it degrades into
    // one unreadable kilometer-long line, so non-TTY output gets a
    // few newline-terminated milestone lines instead.
    const bool tty = ::isatty(fileno(stderr)) != 0;
    return [tty](size_t done, size_t total, const std::string &label) {
        if (tty) {
            std::fprintf(stderr, "\r[%zu/%zu] %-48s", done, total,
                         label.c_str());
            if (done == total)
                std::fprintf(stderr, "\n");
            return;
        }
        if (done == total) {
            std::fprintf(stderr, "[%zu/%zu] done%s\n", done, total,
                         finalNote().c_str());
            return;
        }
        const size_t step = total > 10 ? total / 10 : 1;
        if (done % step == 0)
            std::fprintf(stderr, "[%zu/%zu] %s\n", done, total,
                         label.c_str());
    };
}

} // namespace mica::pipeline
