/**
 * @file
 * Fixed-width text table formatting for the bench harness output.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mica::report
{

/** Column alignment. */
enum class Align { Left, Right };

/**
 * Accumulates rows of string cells and renders them with aligned
 * columns, a header separator, and an optional title — the output
 * format for the regenerated paper tables.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers,
                       std::vector<Align> aligns = {});

    /** Append one row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with fixed precision. */
    static std::string num(double v, int precision = 3);

    /** Convenience: format a percentage with fixed precision. */
    static std::string pct(double fraction, int precision = 1);

    /** @return the rendered table. */
    std::string render(const std::string &title = "") const;

  private:
    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mica::report
