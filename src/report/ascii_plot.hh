/**
 * @file
 * Monospace scatter and line plots for reproducing the paper's figures
 * in terminal output (Fig. 1 scatter, Fig. 4 ROC curves, Fig. 5 lines).
 */

#pragma once

#include <string>
#include <vector>

namespace mica::report
{

/** One labeled point series. */
struct Series
{
    std::string label;
    char marker = '*';
    std::vector<double> x;
    std::vector<double> y;
};

/** Axis/size configuration for plots. */
struct PlotConfig
{
    int width = 70;      ///< plot area width in characters
    int height = 24;     ///< plot area height in characters
    std::string xLabel;
    std::string yLabel;
    std::string title;
    bool fixedScale = false;    ///< use [xMin..xMax]/[yMin..yMax] below
    double xMin = 0, xMax = 1, yMin = 0, yMax = 1;
};

/**
 * Render one or more series as an ASCII scatter plot. Cells hit by
 * multiple points of one series keep the series marker; cells hit by
 * multiple series show '#'. Includes axis ranges and a legend.
 */
std::string scatterPlot(const std::vector<Series> &series,
                        const PlotConfig &cfg);

/**
 * Render a density scatter: like scatterPlot for a single large point
 * cloud, but cells show a density ramp (. : + * @) by hit count.
 */
std::string densityPlot(const std::vector<double> &x,
                        const std::vector<double> &y,
                        const PlotConfig &cfg);

} // namespace mica::report
