#include "report/table.hh"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace mica::report
{

TextTable::TextTable(std::vector<std::string> headers,
                     std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns))
{
    if (aligns_.empty())
        aligns_.assign(headers_.size(), Align::Left);
    if (aligns_.size() != headers_.size())
        throw std::invalid_argument("TextTable: align arity mismatch");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        throw std::invalid_argument("TextTable: row arity mismatch");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

std::string
TextTable::pct(double fraction, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision)
       << (100.0 * fraction) << '%';
    return ss.str();
}

std::string
TextTable::render(const std::string &title) const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emitRow = [&](std::ostringstream &out,
                       const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << (c ? "  " : "");
            if (aligns_[c] == Align::Right)
                out << std::setw(static_cast<int>(width[c]))
                    << std::right << row[c];
            else
                out << std::setw(static_cast<int>(width[c]))
                    << std::left << row[c];
        }
        out << '\n';
    };

    std::ostringstream out;
    if (!title.empty())
        out << title << '\n';
    emitRow(out, headers_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emitRow(out, row);
    return out.str();
}

} // namespace mica::report
