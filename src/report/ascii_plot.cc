#include "report/ascii_plot.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace mica::report
{

namespace
{

struct Bounds
{
    double xMin = 0, xMax = 1, yMin = 0, yMax = 1;
};

/**
 * Points drawable from a series: x and y can disagree in length (a
 * caller bug), in which case only the common prefix is plotted —
 * indexing past the shorter vector read out of bounds here.
 */
size_t
seriesLen(const Series &s)
{
    return std::min(s.x.size(), s.y.size());
}

Bounds
findBounds(const std::vector<Series> &series, const PlotConfig &cfg)
{
    Bounds b;
    if (cfg.fixedScale) {
        b = {cfg.xMin, cfg.xMax, cfg.yMin, cfg.yMax};
    } else {
        bool first = true;
        for (const auto &s : series) {
            for (size_t i = 0; i < seriesLen(s); ++i) {
                if (first) {
                    b.xMin = b.xMax = s.x[i];
                    b.yMin = b.yMax = s.y[i];
                    first = false;
                }
                b.xMin = std::min(b.xMin, s.x[i]);
                b.xMax = std::max(b.xMax, s.x[i]);
                b.yMin = std::min(b.yMin, s.y[i]);
                b.yMax = std::max(b.yMax, s.y[i]);
            }
        }
    }
    // Degenerate ranges divide by zero in the cell mapping; widening
    // applies to fixed scales too (a caller passing xMax == xMin used
    // to get NaN coordinates on every point).
    if (b.xMax <= b.xMin)
        b.xMax = b.xMin + 1.0;
    if (b.yMax <= b.yMin)
        b.yMax = b.yMin + 1.0;
    return b;
}

std::string
frame(const std::vector<std::string> &grid, const Bounds &b,
      const PlotConfig &cfg, const std::string &legend)
{
    std::ostringstream out;
    if (!cfg.title.empty())
        out << cfg.title << '\n';
    out << std::fixed << std::setprecision(2);
    out << "  y: " << cfg.yLabel << "  [" << b.yMin << " .. " << b.yMax
        << "]\n";
    for (const auto &row : grid)
        out << "  |" << row << "|\n";
    out << "  +" << std::string(grid.empty() ? 0 : grid[0].size(), '-')
        << "+\n";
    out << "  x: " << cfg.xLabel << "  [" << b.xMin << " .. " << b.xMax
        << "]\n";
    if (!legend.empty())
        out << legend;
    return out.str();
}

} // namespace

std::string
scatterPlot(const std::vector<Series> &series, const PlotConfig &cfg)
{
    const Bounds b = findBounds(series, cfg);
    std::vector<std::string> grid(cfg.height,
                                  std::string(cfg.width, ' '));
    for (const auto &s : series) {
        for (size_t i = 0; i < seriesLen(s); ++i) {
            const double fx = (s.x[i] - b.xMin) / (b.xMax - b.xMin);
            const double fy = (s.y[i] - b.yMin) / (b.yMax - b.yMin);
            const int cx = std::clamp(
                static_cast<int>(std::lround(fx * (cfg.width - 1))), 0,
                cfg.width - 1);
            const int cy = std::clamp(
                static_cast<int>(std::lround((1.0 - fy) *
                                             (cfg.height - 1))),
                0, cfg.height - 1);
            char &cell = grid[cy][cx];
            cell = (cell == ' ' || cell == s.marker) ? s.marker : '#';
        }
    }
    std::ostringstream legend;
    for (const auto &s : series)
        legend << "  '" << s.marker << "' " << s.label << '\n';
    return frame(grid, b, cfg, legend.str());
}

std::string
densityPlot(const std::vector<double> &x, const std::vector<double> &y,
            const PlotConfig &cfg)
{
    Series s;
    s.x = x;
    s.y = y;
    const Bounds b = findBounds({s}, cfg);
    std::vector<std::vector<int>> count(
        cfg.height, std::vector<int>(cfg.width, 0));
    for (size_t i = 0; i < std::min(x.size(), y.size()); ++i) {
        const double fx = (x[i] - b.xMin) / (b.xMax - b.xMin);
        const double fy = (y[i] - b.yMin) / (b.yMax - b.yMin);
        const int cx = std::clamp(
            static_cast<int>(std::lround(fx * (cfg.width - 1))), 0,
            cfg.width - 1);
        const int cy = std::clamp(
            static_cast<int>(std::lround((1.0 - fy) *
                                         (cfg.height - 1))),
            0, cfg.height - 1);
        ++count[cy][cx];
    }
    int maxC = 1;
    for (const auto &row : count)
        for (int c : row)
            maxC = std::max(maxC, c);
    static const char ramp[] = {' ', '.', ':', '+', '*', '@'};
    std::vector<std::string> grid(cfg.height,
                                  std::string(cfg.width, ' '));
    for (int r = 0; r < cfg.height; ++r) {
        for (int c = 0; c < cfg.width; ++c) {
            if (count[r][c] == 0)
                continue;
            const double f = std::log1p(count[r][c]) /
                std::log1p(static_cast<double>(maxC));
            const int idx = 1 + std::min(
                4, static_cast<int>(std::lround(f * 4.0)));
            grid[r][c] = ramp[idx];
        }
    }
    return frame(grid, b, cfg, "");
}

} // namespace mica::report
