/**
 * @file
 * Prediction-by-Partial-Matching branch predictability (Table II
 * characteristics 44-47), after Chen, Coffey & Mudge [14].
 *
 * PPM is a universal compression/prediction scheme; its misprediction
 * rate is a microarchitecture-independent measure of how predictable a
 * benchmark's branches are, because it upper-bounds what any finite-
 * context history predictor can achieve rather than modeling a specific
 * hardware table organization.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace_source.hh"
#include "util/flat_hash.hh"

namespace mica
{

/**
 * Open-addressing pattern table specialized for PPM context counters.
 *
 * One 8-byte slot holds everything a context needs — bit 63 marks the
 * slot used, bits 62..4 are a 59-bit fingerprint (the low 59 bits of
 * the already-hashed context key), bits 3..0 a biased saturating
 * counter — so a table of N contexts costs half the bytes of a
 * key/value/flag slot layout and packs 8 slots per cache line. With
 * GAs/PAs growing to ~10^5 contexts per table, table bytes are the
 * profiling bottleneck, not instruction count.
 *
 * The 5 dropped key bits make aliasing *possible* (two contexts whose
 * 64-bit keys agree in the low 59 bits would share a counter), with
 * probability ~2^-59 per context pair — the standard partial-tag
 * trade-off of hardware pattern tables. Keys are pre-mixed by
 * PpmPredictor::key(), so the low bits carry full entropy and index
 * the table directly.
 */
class PpmContextTable
{
  public:
    /** @return number of live contexts. */
    size_t size() const { return size_; }

    /** Hint the CPU to pull the key's home slot into cache. */
    void
    prefetch(uint64_t key) const
    {
#if defined(__GNUC__) || defined(__clang__)
        if (!slots_.empty())
            __builtin_prefetch(&slots_[key & mask_]);
#endif
    }

    /**
     * Read the context's counter, then apply one saturating step
     * toward rail (+kMax for taken, -kMax for not taken).
     *
     * @return the counter value *before* the update — the evidence a
     *         PPM prediction is made from. Missing contexts read 0
     *         and are inserted.
     */
    int8_t
    updateSaturating(uint64_t key, int8_t delta, int8_t rail)
    {
        growIfNeeded();
        const uint64_t tagged = kUsed | ((key & kFpMask) << kCtrBits);
        for (size_t i = key & mask_;; i = (i + 1) & mask_) {
            uint64_t &s = slots_[i];
            if (s == 0) {
                // New context: pre-update evidence is 0, counter
                // steps off zero (never saturates).
                s = tagged | static_cast<uint64_t>(kBias + delta);
                ++size_;
                return 0;
            }
            if ((s & ~kCtrMask) == tagged) {
                const int8_t pre =
                    static_cast<int8_t>(s & kCtrMask) - kBias;
                const int8_t next = pre == rail
                    ? pre : static_cast<int8_t>(pre + delta);
                s = (s & ~kCtrMask) |
                    static_cast<uint64_t>(next + kBias);
                return pre;
            }
        }
    }

  private:
    static constexpr unsigned kCtrBits = 4;
    static constexpr uint64_t kCtrMask = (1ull << kCtrBits) - 1;
    static constexpr int8_t kBias = 8;
    static constexpr uint64_t kUsed = 1ull << 63;
    static constexpr uint64_t kFpMask = (1ull << 59) - 1;
    static constexpr size_t kMinCapacity = 16;

    void
    growIfNeeded()
    {
        if (slots_.empty())
            rehash(kMinCapacity);
        else if ((size_ + 1) * 10 > slots_.size() * 7)
            rehash(slots_.size() * 2);
    }

    void
    rehash(size_t newCap)
    {
        std::vector<uint64_t> old = std::move(slots_);
        slots_.assign(newCap, 0);
        mask_ = newCap - 1;
        for (uint64_t s : old) {
            if (s == 0)
                continue;
            // The stored fingerprint contains the low key bits the
            // index is derived from.
            const uint64_t keyLow = (s >> kCtrBits) & kFpMask;
            for (size_t i = keyLow & mask_;; i = (i + 1) & mask_) {
                if (slots_[i] == 0) {
                    slots_[i] = s;
                    break;
                }
            }
        }
    }

    std::vector<uint64_t> slots_;
    size_t size_ = 0;
    size_t mask_ = 0;
};

/**
 * One PPM predictor instance.
 *
 * Four variants are defined by two orthogonal axes, mirroring the
 * two-level predictor taxonomy:
 *  - history: Global (one history register) vs. Per-address (one history
 *    register per static branch);
 *  - tables:  g (one pattern table shared by all branches) vs.
 *    s (separate per-branch pattern tables).
 *
 * Prediction walks contexts from the longest (maxOrder history bits)
 * down to order 0 and predicts with the first context whose evidence
 * counter is non-zero; all context orders are updated afterwards
 * (non-exclusive update). Unseen contexts fall through; a completely
 * cold branch predicts taken.
 */
class PpmPredictor
{
  public:
    enum class History { Global, PerAddress };
    enum class Tables { Shared, PerBranch };

    PpmPredictor(History hist, Tables tables, unsigned maxOrder = 8)
        : hist_(hist), tables_(tables), maxOrder_(maxOrder),
          ctx_(maxOrder + 1), keyBuf_(maxOrder + 1)
    {}

    /**
     * Predict the branch at pc, then update with the actual outcome.
     * @return the prediction made before the update.
     *
     * Prediction and update are fused into one table walk: each
     * (order, context) counter is touched exactly once per branch, so
     * reading it just before updating it observes the same pre-update
     * evidence the original find-then-update formulation saw — half
     * the hash lookups, bit-identical miss rates. Keys are computed up
     * front and their slots prefetched so the per-order cache misses
     * overlap instead of serializing.
     */
    bool
    predictAndUpdate(uint64_t pc, bool taken)
    {
        if (!prepared_ || preparedPc_ != pc)
            prepare(pc);
        prepared_ = false;

        bool prediction = true;     // cold default: predict taken
        bool decided = false;
        const int8_t delta = taken ? 1 : -1;
        const int8_t rail = taken ? kCtrMax : -kCtrMax;
        for (int k = static_cast<int>(maxOrder_); k >= 0; --k) {
            const int8_t pre =
                ctx_[k].updateSaturating(keyBuf_[k], delta, rail);
            if (!decided && pre != 0) {
                prediction = pre > 0;
                decided = true;
            }
        }

        pushHistory(pc, taken);
        return prediction;
    }

    /**
     * Compute the keys and hashes a predictAndUpdate(pc, ...) call
     * will use and prefetch their context slots. Callers running
     * several predictors over the same branch issue every predictor's
     * prepare() first so the table misses overlap instead of
     * serializing per predictor; the following predictAndUpdate(pc)
     * then reuses the buffered keys and hashes. Purely a performance
     * hint — predictAndUpdate() recomputes them when not prepared.
     */
    void
    prepare(uint64_t pc)
    {
        const uint64_t history = currentHistory(pc);
        for (int k = static_cast<int>(maxOrder_); k >= 0; --k) {
            keyBuf_[k] = key(pc, history, k);
            ctx_[k].prefetch(keyBuf_[k]);
        }
        prepared_ = true;
        preparedPc_ = pc;
    }


    unsigned maxOrder() const { return maxOrder_; }

    /** @return total pattern-table entries across all orders. */
    size_t
    tableEntries() const
    {
        size_t n = 0;
        for (const auto &m : ctx_)
            n += m.size();
        return n;
    }

  private:
    static constexpr int8_t kCtrMax = 4;

    uint64_t
    currentHistory(uint64_t pc) const
    {
        if (hist_ == History::Global)
            return ghist_;
        const uint64_t *h = lhist_.find(pc);
        return h ? *h : 0;
    }

    void
    pushHistory(uint64_t pc, bool taken)
    {
        if (hist_ == History::Global) {
            ghist_ = (ghist_ << 1) | (taken ? 1 : 0);
        } else {
            uint64_t &h = lhist_[pc];
            h = (h << 1) | (taken ? 1 : 0);
        }
    }

    /** Mix (order, masked history, optional pc) into a table key. */
    uint64_t
    key(uint64_t pc, uint64_t history, int order) const
    {
        const uint64_t h =
            order > 0 ? (history & ((1ull << order) - 1)) : 0;
        uint64_t k = h * 0x9e3779b97f4a7c15ull;
        if (tables_ == Tables::PerBranch)
            k ^= pc * 0xc2b2ae3d27d4eb4full;
        return k ^ (static_cast<uint64_t>(order) << 56);
    }

    History hist_;
    Tables tables_;
    unsigned maxOrder_;
    std::vector<PpmContextTable> ctx_;
    std::vector<uint64_t> keyBuf_;  ///< per-call key scratch (no alloc)
    bool prepared_ = false;         ///< keyBuf_ valid for
    uint64_t preparedPc_ = 0;       ///< this pc
    uint64_t ghist_ = 0;
    util::FlatHashMap<uint64_t, uint64_t, util::MulHash> lhist_;
};

/**
 * Runs the four PPM variants of Table II (GAg, PAg, GAs, PAs) over the
 * conditional branches of a trace and reports their miss rates.
 */
class PpmBranchAnalyzer : public TraceAnalyzer
{
  public:
    const char *name() const override { return "ppm"; }

    static constexpr size_t kNumVariants = 4;

    explicit PpmBranchAnalyzer(unsigned maxOrder = 8)
        : gag_(PpmPredictor::History::Global,
               PpmPredictor::Tables::Shared, maxOrder),
          pag_(PpmPredictor::History::PerAddress,
               PpmPredictor::Tables::Shared, maxOrder),
          gas_(PpmPredictor::History::Global,
               PpmPredictor::Tables::PerBranch, maxOrder),
          pas_(PpmPredictor::History::PerAddress,
               PpmPredictor::Tables::PerBranch, maxOrder)
    {}

    void accept(const InstRecord &rec) override { step(rec); }

    void
    acceptBatch(const InstRecord *recs, size_t n) override
    {
        for (size_t i = 0; i < n; ++i)
            step(recs[i]);
    }

    /** @return dynamic conditional branches observed. */
    uint64_t branches() const { return branches_; }

    double missRateGAg() const { return rate(0); }
    double missRatePAg() const { return rate(1); }
    double missRateGAs() const { return rate(2); }
    double missRatePAs() const { return rate(3); }

  private:
    void
    step(const InstRecord &rec)
    {
        if (!rec.isCondBranch())
            return;
        ++branches_;
        // All four variants' slots first, then the four walks: the
        // table misses of 4 x (maxOrder + 1) lookups overlap.
        gag_.prepare(rec.pc);
        pag_.prepare(rec.pc);
        gas_.prepare(rec.pc);
        pas_.prepare(rec.pc);
        miss_[0] += gag_.predictAndUpdate(rec.pc, rec.taken) != rec.taken;
        miss_[1] += pag_.predictAndUpdate(rec.pc, rec.taken) != rec.taken;
        miss_[2] += gas_.predictAndUpdate(rec.pc, rec.taken) != rec.taken;
        miss_[3] += pas_.predictAndUpdate(rec.pc, rec.taken) != rec.taken;
    }

    double
    rate(size_t v) const
    {
        return branches_ ? static_cast<double>(miss_[v]) /
                           static_cast<double>(branches_) : 0.0;
    }

    PpmPredictor gag_, pag_, gas_, pas_;
    uint64_t branches_ = 0;
    uint64_t miss_[kNumVariants] = {};
};

} // namespace mica
