/**
 * @file
 * Prediction-by-Partial-Matching branch predictability (Table II
 * characteristics 44-47), after Chen, Coffey & Mudge [14].
 *
 * PPM is a universal compression/prediction scheme; its misprediction
 * rate is a microarchitecture-independent measure of how predictable a
 * benchmark's branches are, because it upper-bounds what any finite-
 * context history predictor can achieve rather than modeling a specific
 * hardware table organization.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/trace_source.hh"

namespace mica
{

/**
 * One PPM predictor instance.
 *
 * Four variants are defined by two orthogonal axes, mirroring the
 * two-level predictor taxonomy:
 *  - history: Global (one history register) vs. Per-address (one history
 *    register per static branch);
 *  - tables:  g (one pattern table shared by all branches) vs.
 *    s (separate per-branch pattern tables).
 *
 * Prediction walks contexts from the longest (maxOrder history bits)
 * down to order 0 and predicts with the first context whose evidence
 * counter is non-zero; all context orders are updated afterwards
 * (non-exclusive update). Unseen contexts fall through; a completely
 * cold branch predicts taken.
 */
class PpmPredictor
{
  public:
    enum class History { Global, PerAddress };
    enum class Tables { Shared, PerBranch };

    PpmPredictor(History hist, Tables tables, unsigned maxOrder = 8)
        : hist_(hist), tables_(tables), maxOrder_(maxOrder),
          ctx_(maxOrder + 1)
    {}

    /**
     * Predict the branch at pc, then update with the actual outcome.
     * @return the prediction made before the update.
     */
    bool
    predictAndUpdate(uint64_t pc, bool taken)
    {
        const uint64_t history = currentHistory(pc);

        bool prediction = true;     // cold default: predict taken
        for (int k = static_cast<int>(maxOrder_); k >= 0; --k) {
            const auto it = ctx_[k].find(key(pc, history, k));
            if (it != ctx_[k].end() && it->second != 0) {
                prediction = it->second > 0;
                break;
            }
        }

        for (int k = static_cast<int>(maxOrder_); k >= 0; --k) {
            int8_t &ctr = ctx_[k][key(pc, history, k)];
            if (taken) {
                if (ctr < kCtrMax)
                    ++ctr;
            } else {
                if (ctr > -kCtrMax)
                    --ctr;
            }
        }

        pushHistory(pc, taken);
        return prediction;
    }

    unsigned maxOrder() const { return maxOrder_; }

    /** @return total pattern-table entries across all orders. */
    size_t
    tableEntries() const
    {
        size_t n = 0;
        for (const auto &m : ctx_)
            n += m.size();
        return n;
    }

  private:
    static constexpr int8_t kCtrMax = 4;

    uint64_t
    currentHistory(uint64_t pc) const
    {
        if (hist_ == History::Global)
            return ghist_;
        const auto it = lhist_.find(pc);
        return it == lhist_.end() ? 0 : it->second;
    }

    void
    pushHistory(uint64_t pc, bool taken)
    {
        if (hist_ == History::Global)
            ghist_ = (ghist_ << 1) | (taken ? 1 : 0);
        else
            lhist_[pc] = (lhist_[pc] << 1) | (taken ? 1 : 0);
    }

    /** Mix (order, masked history, optional pc) into a table key. */
    uint64_t
    key(uint64_t pc, uint64_t history, int order) const
    {
        const uint64_t h =
            order > 0 ? (history & ((1ull << order) - 1)) : 0;
        uint64_t k = h * 0x9e3779b97f4a7c15ull;
        if (tables_ == Tables::PerBranch)
            k ^= pc * 0xc2b2ae3d27d4eb4full;
        return k ^ (static_cast<uint64_t>(order) << 56);
    }

    History hist_;
    Tables tables_;
    unsigned maxOrder_;
    std::vector<std::unordered_map<uint64_t, int8_t>> ctx_;
    uint64_t ghist_ = 0;
    std::unordered_map<uint64_t, uint64_t> lhist_;
};

/**
 * Runs the four PPM variants of Table II (GAg, PAg, GAs, PAs) over the
 * conditional branches of a trace and reports their miss rates.
 */
class PpmBranchAnalyzer : public TraceAnalyzer
{
  public:
    static constexpr size_t kNumVariants = 4;

    explicit PpmBranchAnalyzer(unsigned maxOrder = 8)
        : gag_(PpmPredictor::History::Global,
               PpmPredictor::Tables::Shared, maxOrder),
          pag_(PpmPredictor::History::PerAddress,
               PpmPredictor::Tables::Shared, maxOrder),
          gas_(PpmPredictor::History::Global,
               PpmPredictor::Tables::PerBranch, maxOrder),
          pas_(PpmPredictor::History::PerAddress,
               PpmPredictor::Tables::PerBranch, maxOrder)
    {}

    void
    accept(const InstRecord &rec) override
    {
        if (!rec.isCondBranch())
            return;
        ++branches_;
        miss_[0] += gag_.predictAndUpdate(rec.pc, rec.taken) != rec.taken;
        miss_[1] += pag_.predictAndUpdate(rec.pc, rec.taken) != rec.taken;
        miss_[2] += gas_.predictAndUpdate(rec.pc, rec.taken) != rec.taken;
        miss_[3] += pas_.predictAndUpdate(rec.pc, rec.taken) != rec.taken;
    }

    /** @return dynamic conditional branches observed. */
    uint64_t branches() const { return branches_; }

    double missRateGAg() const { return rate(0); }
    double missRatePAg() const { return rate(1); }
    double missRateGAs() const { return rate(2); }
    double missRatePAs() const { return rate(3); }

  private:
    double
    rate(size_t v) const
    {
        return branches_ ? static_cast<double>(miss_[v]) /
                           static_cast<double>(branches_) : 0.0;
    }

    PpmPredictor gag_, pag_, gas_, pas_;
    uint64_t branches_ = 0;
    uint64_t miss_[kNumVariants] = {};
};

} // namespace mica
