#include "mica/profile.hh"

#include <stdexcept>

namespace mica
{

const std::array<MicaCharInfo, kNumMicaChars> &
micaCharTable()
{
    static const std::array<MicaCharInfo, kNumMicaChars> table = {{
        {0, "pct_loads", "instruction mix", "percentage loads"},
        {1, "pct_stores", "instruction mix", "percentage stores"},
        {2, "pct_control", "instruction mix",
         "percentage control transfers"},
        {3, "pct_arith", "instruction mix",
         "percentage arithmetic operations"},
        {4, "pct_int_mul", "instruction mix",
         "percentage integer multiplies"},
        {5, "pct_fp", "instruction mix", "percentage fp operations"},
        {6, "ilp_32", "ILP", "IPC for idealized 32-entry window"},
        {7, "ilp_64", "ILP", "IPC for idealized 64-entry window"},
        {8, "ilp_128", "ILP", "IPC for idealized 128-entry window"},
        {9, "ilp_256", "ILP", "IPC for idealized 256-entry window"},
        {10, "avg_input_ops", "register traffic",
         "avg. number of input operands"},
        {11, "avg_degree_use", "register traffic", "avg. degree of use"},
        {12, "reg_dep_eq1", "register traffic",
         "prob. register dependence = 1"},
        {13, "reg_dep_le2", "register traffic",
         "prob. register dependence <= 2"},
        {14, "reg_dep_le4", "register traffic",
         "prob. register dependence <= 4"},
        {15, "reg_dep_le8", "register traffic",
         "prob. register dependence <= 8"},
        {16, "reg_dep_le16", "register traffic",
         "prob. register dependence <= 16"},
        {17, "reg_dep_le32", "register traffic",
         "prob. register dependence <= 32"},
        {18, "reg_dep_le64", "register traffic",
         "prob. register dependence <= 64"},
        {19, "dws_32b", "working set",
         "D-stream working set, 32B blocks"},
        {20, "dws_4k", "working set",
         "D-stream working set, 4KB pages"},
        {21, "iws_32b", "working set",
         "I-stream working set, 32B blocks"},
        {22, "iws_4k", "working set",
         "I-stream working set, 4KB pages"},
        {23, "lls_eq0", "data stride", "prob. local load stride = 0"},
        {24, "lls_le8", "data stride", "prob. local load stride <= 8"},
        {25, "lls_le64", "data stride", "prob. local load stride <= 64"},
        {26, "lls_le512", "data stride",
         "prob. local load stride <= 512"},
        {27, "lls_le4096", "data stride",
         "prob. local load stride <= 4096"},
        {28, "gls_eq0", "data stride", "prob. global load stride = 0"},
        {29, "gls_le8", "data stride", "prob. global load stride <= 8"},
        {30, "gls_le64", "data stride",
         "prob. global load stride <= 64"},
        {31, "gls_le512", "data stride",
         "prob. global load stride <= 512"},
        {32, "gls_le4096", "data stride",
         "prob. global load stride <= 4096"},
        {33, "lss_eq0", "data stride", "prob. local store stride = 0"},
        {34, "lss_le8", "data stride", "prob. local store stride <= 8"},
        {35, "lss_le64", "data stride",
         "prob. local store stride <= 64"},
        {36, "lss_le512", "data stride",
         "prob. local store stride <= 512"},
        {37, "lss_le4096", "data stride",
         "prob. local store stride <= 4096"},
        {38, "gss_eq0", "data stride", "prob. global store stride = 0"},
        {39, "gss_le8", "data stride", "prob. global store stride <= 8"},
        {40, "gss_le64", "data stride",
         "prob. global store stride <= 64"},
        {41, "gss_le512", "data stride",
         "prob. global store stride <= 512"},
        {42, "gss_le4096", "data stride",
         "prob. global store stride <= 4096"},
        {43, "ppm_gag", "branch predictability",
         "GAg PPM predictor miss rate"},
        {44, "ppm_pag", "branch predictability",
         "PAg PPM predictor miss rate"},
        {45, "ppm_gas", "branch predictability",
         "GAs PPM predictor miss rate"},
        {46, "ppm_pas", "branch predictability",
         "PAs PPM predictor miss rate"},
    }};
    return table;
}

const MicaCharInfo &
micaCharInfo(size_t index)
{
    if (index >= kNumMicaChars)
        throw std::out_of_range("micaCharInfo: bad index");
    return micaCharTable()[index];
}

} // namespace mica
