/**
 * @file
 * Instruction-mix analyzer (Table II characteristics 1-6).
 */

#pragma once

#include <array>
#include <cstdint>

#include "trace/trace_source.hh"

namespace mica
{

/**
 * Counts dynamic instructions per class and reports the paper's six mix
 * percentages: loads, stores, control transfers, (non-multiply) integer
 * arithmetic, integer multiplies, and floating-point operations.
 */
class InstMixAnalyzer : public TraceAnalyzer
{
  public:
    const char *name() const override { return "inst_mix"; }

    void accept(const InstRecord &rec) override { step(rec); }

    void
    acceptBatch(const InstRecord *recs, size_t n) override
    {
        for (size_t i = 0; i < n; ++i)
            step(recs[i]);
    }

    /** @return total dynamic instructions observed. */
    uint64_t total() const { return total_; }

    /** @return raw count for one class. */
    uint64_t count(InstClass c) const
    {
        return counts_[static_cast<size_t>(c)];
    }

    /** @return fraction in [0, 1] of instructions in class c. */
    double
    fraction(InstClass c) const
    {
        return total_ ? static_cast<double>(count(c)) /
                        static_cast<double>(total_) : 0.0;
    }

    double pctLoads() const { return 100.0 * fraction(InstClass::Load); }
    double pctStores() const { return 100.0 * fraction(InstClass::Store); }

    double
    pctControl() const
    {
        const uint64_t n = count(InstClass::Branch) +
            count(InstClass::Jump) + count(InstClass::Call) +
            count(InstClass::Return);
        return total_ ? 100.0 * static_cast<double>(n) /
                        static_cast<double>(total_) : 0.0;
    }

    /** Integer arithmetic excluding multiplies (chars. 4 vs 5). */
    double
    pctArith() const
    {
        const uint64_t n = count(InstClass::IntAlu) +
            count(InstClass::IntDiv);
        return total_ ? 100.0 * static_cast<double>(n) /
                        static_cast<double>(total_) : 0.0;
    }

    double
    pctIntMul() const
    {
        return 100.0 * fraction(InstClass::IntMul);
    }

    double
    pctFpOps() const
    {
        const uint64_t n = count(InstClass::FpAlu) +
            count(InstClass::FpMul) + count(InstClass::FpDiv);
        return total_ ? 100.0 * static_cast<double>(n) /
                        static_cast<double>(total_) : 0.0;
    }

  private:
    void
    step(const InstRecord &rec)
    {
        ++counts_[static_cast<size_t>(rec.cls)];
        ++total_;
    }

    std::array<uint64_t, kNumInstClasses> counts_{};
    uint64_t total_ = 0;
};

} // namespace mica
