#include "mica/dataset.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mica
{

namespace
{

/**
 * Strict cell parsers: the whole cell must be one finite number.
 * std::stoull/std::stod would throw on garbage (or accept trailing
 * junk), turning a corrupt cache file into a crash or a silently wrong
 * profile.
 */
bool
parseU64(const std::string &cell, uint64_t &out)
{
    // strtoull silently wraps "-1" to 2^64-1 and skips leading
    // whitespace; require the cell to start with a digit.
    if (cell.empty() || cell[0] < '0' || cell[0] > '9')
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtoull(cell.c_str(), &end, 10);
    return errno == 0 && end == cell.c_str() + cell.size();
}

bool
parseDouble(const std::string &cell, double &out)
{
    // strtod skips leading whitespace and happily parses "nan"/"inf";
    // neither is a valid profile value.
    if (cell.empty() || std::isspace(static_cast<unsigned char>(cell[0])))
        return false;
    char *end = nullptr;
    errno = 0;
    out = std::strtod(cell.c_str(), &end);
    return errno == 0 && end == cell.c_str() + cell.size() &&
           std::isfinite(out);
}

} // namespace

Matrix
profilesToMatrix(const std::vector<MicaProfile> &profiles)
{
    Matrix m;
    m.rowNames.reserve(profiles.size());
    for (const auto &info : micaCharTable())
        m.colNames.push_back(info.name);
    for (const auto &p : profiles) {
        m.appendRow(p.toVector());
        m.rowNames.push_back(p.name);
    }
    return m;
}

void
saveProfilesCsv(const std::string &path,
                const std::vector<MicaProfile> &profiles)
{
    std::ofstream out(path);
    out << "name,inst_count";
    for (const auto &info : micaCharTable())
        out << ',' << info.name;
    out << '\n';
    out.precision(17);
    for (const auto &p : profiles) {
        out << p.name << ',' << p.instCount;
        for (double v : p.values)
            out << ',' << v;
        out << '\n';
    }
}

std::vector<MicaProfile>
loadProfilesCsv(const std::string &path)
{
    std::ifstream in(path);
    std::vector<MicaProfile> profiles;
    if (!in)
        return profiles;
    // A full sweep is the paper's 122-benchmark Table I; reserving
    // that up front makes the common reload allocation-free.
    profiles.reserve(128);

    std::string line;
    if (!std::getline(in, line))
        return profiles;
    // Validate the header has the expected column count.
    {
        size_t commas = 0;
        for (char c : line)
            commas += c == ',';
        if (commas != kNumMicaChars + 1)
            return {};
    }

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::stringstream ss(line);
        std::string field;
        MicaProfile p;
        if (!std::getline(ss, field, ',') || field.empty())
            return {};
        p.name = field;
        if (!std::getline(ss, field, ',') ||
            !parseU64(field, p.instCount))
            return {};
        for (size_t i = 0; i < kNumMicaChars; ++i) {
            if (!std::getline(ss, field, ',') ||
                !parseDouble(field, p.values[i]))
                return {};
        }
        if (std::getline(ss, field, ','))
            return {};    // extra trailing cells: not our file
        profiles.push_back(std::move(p));
    }
    return profiles;
}

void
saveHpcCsv(const std::string &path,
           const std::vector<uarch::HwCounterProfile> &profiles)
{
    std::ofstream out(path);
    if (!out)
        return;
    out.precision(17);
    out << "name,inst_count";
    for (const char *m : uarch::HwCounterProfile::metricNames())
        out << ',' << m;
    out << '\n';
    for (const auto &p : profiles) {
        out << p.name << ',' << p.instCount;
        for (double v : p.toVector())
            out << ',' << v;
        out << '\n';
    }
}

std::vector<uarch::HwCounterProfile>
loadHpcCsv(const std::string &path)
{
    std::ifstream in(path);
    std::vector<uarch::HwCounterProfile> out;
    if (!in)
        return out;
    out.reserve(128);
    std::string line;
    if (!std::getline(in, line))
        return out;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::stringstream ss(line);
        std::string cell;
        uarch::HwCounterProfile p;
        if (!std::getline(ss, p.name, ',') || p.name.empty())
            return {};
        if (!std::getline(ss, cell, ',') || !parseU64(cell, p.instCount))
            return {};
        std::array<double, uarch::HwCounterProfile::kNumMetrics> vals{};
        for (double &v : vals) {
            if (!std::getline(ss, cell, ',') || !parseDouble(cell, v))
                return {};
        }
        if (std::getline(ss, cell, ','))
            return {};
        p.ipcEv56 = vals[0];
        p.ipcEv67 = vals[1];
        p.branchMissRate = vals[2];
        p.l1dMissRate = vals[3];
        p.l1iMissRate = vals[4];
        p.l2MissRate = vals[5];
        p.dtlbMissRate = vals[6];
        out.push_back(std::move(p));
    }
    return out;
}

void
saveMatrixCsv(const std::string &path, const Matrix &m)
{
    std::ofstream out(path);
    out << "name";
    for (const auto &c : m.colNames)
        out << ',' << c;
    out << '\n';
    out.precision(17);
    for (size_t r = 0; r < m.rows(); ++r) {
        out << (r < m.rowNames.size() ? m.rowNames[r]
                                      : std::to_string(r));
        for (size_t c = 0; c < m.cols(); ++c)
            out << ',' << m.at(r, c);
        out << '\n';
    }
}

} // namespace mica
