#include "mica/dataset.hh"

#include <fstream>
#include <sstream>

namespace mica
{

Matrix
profilesToMatrix(const std::vector<MicaProfile> &profiles)
{
    Matrix m;
    for (const auto &info : micaCharTable())
        m.colNames.push_back(info.name);
    for (const auto &p : profiles) {
        m.appendRow(p.toVector());
        m.rowNames.push_back(p.name);
    }
    return m;
}

void
saveProfilesCsv(const std::string &path,
                const std::vector<MicaProfile> &profiles)
{
    std::ofstream out(path);
    out << "name,inst_count";
    for (const auto &info : micaCharTable())
        out << ',' << info.name;
    out << '\n';
    out.precision(17);
    for (const auto &p : profiles) {
        out << p.name << ',' << p.instCount;
        for (double v : p.values)
            out << ',' << v;
        out << '\n';
    }
}

std::vector<MicaProfile>
loadProfilesCsv(const std::string &path)
{
    std::ifstream in(path);
    std::vector<MicaProfile> profiles;
    if (!in)
        return profiles;

    std::string line;
    if (!std::getline(in, line))
        return profiles;
    // Validate the header has the expected column count.
    {
        size_t commas = 0;
        for (char c : line)
            commas += c == ',';
        if (commas != kNumMicaChars + 1)
            return {};
    }

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::stringstream ss(line);
        std::string field;
        MicaProfile p;
        if (!std::getline(ss, field, ','))
            continue;
        p.name = field;
        if (!std::getline(ss, field, ','))
            continue;
        p.instCount = std::stoull(field);
        bool ok = true;
        for (size_t i = 0; i < kNumMicaChars; ++i) {
            if (!std::getline(ss, field, ',')) {
                ok = false;
                break;
            }
            p.values[i] = std::stod(field);
        }
        if (ok)
            profiles.push_back(std::move(p));
        else
            return {};
    }
    return profiles;
}

void
saveMatrixCsv(const std::string &path, const Matrix &m)
{
    std::ofstream out(path);
    out << "name";
    for (const auto &c : m.colNames)
        out << ',' << c;
    out << '\n';
    out.precision(17);
    for (size_t r = 0; r < m.rows(); ++r) {
        out << (r < m.rowNames.size() ? m.rowNames[r]
                                      : std::to_string(r));
        for (size_t c = 0; c < m.cols(); ++c)
            out << ',' << m.at(r, c);
        out << '\n';
    }
}

} // namespace mica
