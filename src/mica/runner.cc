#include "mica/runner.hh"

#include <memory>

#include "mica/ilp.hh"
#include "mica/inst_mix.hh"
#include "mica/ppm.hh"
#include "mica/reg_traffic.hh"
#include "mica/strides.hh"
#include "mica/working_set.hh"
#include "obs/obs.hh"
#include "trace/engine.hh"

namespace mica
{

namespace
{

/** Copy instruction-mix results into a profile. */
void
fillMix(MicaProfile &p, const InstMixAnalyzer &mix)
{
    p[PctLoads] = mix.pctLoads();
    p[PctStores] = mix.pctStores();
    p[PctControl] = mix.pctControl();
    p[PctArith] = mix.pctArith();
    p[PctIntMul] = mix.pctIntMul();
    p[PctFpOps] = mix.pctFpOps();
}

void
fillIlp(MicaProfile &p, const IlpAnalyzer &ilp)
{
    p[Ilp32] = ilp.ipc(0);
    p[Ilp64] = ilp.ipc(1);
    p[Ilp128] = ilp.ipc(2);
    p[Ilp256] = ilp.ipc(3);
}

void
fillRegTraffic(MicaProfile &p, const RegTrafficAnalyzer &rt)
{
    p[AvgInputOperands] = rt.avgInputOperands();
    p[AvgDegreeOfUse] = rt.avgDegreeOfUse();
    for (size_t c = 0; c < RegTrafficAnalyzer::kDistCuts.size(); ++c)
        p[RegDepEq1 + c] = rt.depDistanceCum(c);
}

void
fillWorkingSet(MicaProfile &p, const WorkingSetAnalyzer &ws)
{
    p[DWorkSet32B] = static_cast<double>(ws.dBlocks());
    p[DWorkSet4K] = static_cast<double>(ws.dPages());
    p[IWorkSet32B] = static_cast<double>(ws.iBlocks());
    p[IWorkSet4K] = static_cast<double>(ws.iPages());
}

void
fillStrides(MicaProfile &p, const StrideAnalyzer &st)
{
    for (size_t c = 0; c < StrideAnalyzer::kCuts.size(); ++c) {
        p[LocalLoadStrideEq0 + c] = st.localLoad().prob(c);
        p[GlobalLoadStrideEq0 + c] = st.globalLoad().prob(c);
        p[LocalStoreStrideEq0 + c] = st.localStore().prob(c);
        p[GlobalStoreStrideEq0 + c] = st.globalStore().prob(c);
    }
}

void
fillPpm(MicaProfile &p, const PpmBranchAnalyzer &ppm)
{
    p[PpmGAg] = ppm.missRateGAg();
    p[PpmPAg] = ppm.missRatePAg();
    p[PpmGAs] = ppm.missRateGAs();
    p[PpmPAs] = ppm.missRatePAs();
}

/** Drive the engine through the path the config selects. */
uint64_t
runEngine(AnalysisEngine &engine, TraceSource &src,
          const MicaRunnerConfig &cfg)
{
    if (cfg.engineBatch == 0)
        return engine.runPerRecord(src, cfg.maxInsts);
    engine.setBatchSize(cfg.engineBatch);
    return engine.run(src, cfg.maxInsts);
}

} // namespace

MicaProfile
collectMicaProfile(TraceSource &src, const std::string &name,
                   const MicaRunnerConfig &cfg)
{
    obs::ObsSpan sp("mica.collect");
    sp.arg("bench", name);
    InstMixAnalyzer mix;
    IlpAnalyzer ilp;
    RegTrafficAnalyzer rt;
    WorkingSetAnalyzer ws;
    StrideAnalyzer st;
    PpmBranchAnalyzer ppm(cfg.ppmMaxOrder);

    AnalysisEngine engine;
    engine.add(&mix);
    engine.add(&ilp);
    engine.add(&rt);
    engine.add(&ws);
    engine.add(&st);
    engine.add(&ppm);

    MicaProfile p;
    p.name = name;
    p.instCount = runEngine(engine, src, cfg);
    fillMix(p, mix);
    fillIlp(p, ilp);
    fillRegTraffic(p, rt);
    fillWorkingSet(p, ws);
    fillStrides(p, st);
    fillPpm(p, ppm);
    return p;
}

MicaProfile
collectMicaProfileSubset(TraceSource &src, const std::string &name,
                         const std::vector<size_t> &selected,
                         const MicaRunnerConfig &cfg)
{
    bool needMix = false, needIlp = false, needRt = false;
    bool needWs = false, needSt = false, needPpm = false;
    for (size_t s : selected) {
        if (s <= PctFpOps)
            needMix = true;
        else if (s <= Ilp256)
            needIlp = true;
        else if (s <= RegDepLe64)
            needRt = true;
        else if (s <= IWorkSet4K)
            needWs = true;
        else if (s <= GlobalStoreStrideLe4096)
            needSt = true;
        else
            needPpm = true;
    }

    InstMixAnalyzer mix;
    IlpAnalyzer ilp;
    RegTrafficAnalyzer rt;
    WorkingSetAnalyzer ws;
    StrideAnalyzer st;
    PpmBranchAnalyzer ppm(cfg.ppmMaxOrder);

    AnalysisEngine engine;
    if (needMix)
        engine.add(&mix);
    if (needIlp)
        engine.add(&ilp);
    if (needRt)
        engine.add(&rt);
    if (needWs)
        engine.add(&ws);
    if (needSt)
        engine.add(&st);
    if (needPpm)
        engine.add(&ppm);

    MicaProfile p;
    p.name = name;
    p.instCount = runEngine(engine, src, cfg);
    if (needMix)
        fillMix(p, mix);
    if (needIlp)
        fillIlp(p, ilp);
    if (needRt)
        fillRegTraffic(p, rt);
    if (needWs)
        fillWorkingSet(p, ws);
    if (needSt)
        fillStrides(p, st);
    if (needPpm)
        fillPpm(p, ppm);
    return p;
}

} // namespace mica
