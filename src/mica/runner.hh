/**
 * @file
 * One-pass collection of the full 47-characteristic MICA profile.
 */

#pragma once

#include <cstdint>
#include <string>

#include "mica/profile.hh"
#include "trace/engine.hh"
#include "trace/trace_source.hh"

namespace mica
{

/** Knobs for profile collection. */
struct MicaRunnerConfig
{
    uint64_t maxInsts = 0;      ///< instruction budget (0 = unlimited)
    unsigned ppmMaxOrder = 8;   ///< PPM context depth

    /**
     * Records per engine batch. 0 selects the per-record reference
     * path (one virtual accept per instruction); anything else is the
     * batched fast path. Profiles are byte-identical either way, so
     * this knob is not part of the profile-store key.
     */
    size_t engineBatch = AnalysisEngine::kDefaultBatchSize;
};

/**
 * Runs all six analyzer families over one trace in a single pass and
 * assembles the resulting MicaProfile. This is the library's main entry
 * point for characterizing a workload:
 *
 * @code
 *   isa::Interpreter interp(program);
 *   MicaProfile p = collectMicaProfile(interp, "my-bench", {});
 * @endcode
 */
MicaProfile collectMicaProfile(TraceSource &src, const std::string &name,
                               const MicaRunnerConfig &cfg = {});

/**
 * Collect only a subset of characteristics, instantiating just the
 * analyzers the requested indices need. This realizes the paper's
 * headline speedup: measuring the 8 GA-selected characteristics needs
 * fewer analyzers than measuring all 47 (Section V, "approximately 3X").
 * Unrequested profile entries are left at 0.
 *
 * @param selected indices into the Table II characteristic list
 */
MicaProfile collectMicaProfileSubset(TraceSource &src,
                                     const std::string &name,
                                     const std::vector<size_t> &selected,
                                     const MicaRunnerConfig &cfg = {});

} // namespace mica
