/**
 * @file
 * Idealized-window ILP analyzer (Table II characteristics 7-10).
 */

#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "trace/trace_source.hh"

namespace mica
{

/**
 * Measures the IPC achievable by an idealized out-of-order processor
 * limited only by its reorder-window size, per the paper: perfect caches,
 * perfect branch prediction, infinite functional units, unit execution
 * latency. An instruction may start executing once (i) it has entered the
 * window — it enters when the instruction W positions older has completed
 * (in-order window advance) — and (ii) all its register producers have
 * completed. Memory dependences are not modeled (perfect memory
 * disambiguation), matching the register-dataflow limit study the
 * characteristic is defined as.
 *
 * Multiple window sizes are evaluated concurrently in a single pass.
 */
class IlpAnalyzer : public TraceAnalyzer
{
  public:
    const char *name() const override { return "ilp"; }

    /** Default window sweep from the paper. */
    static const std::vector<size_t> &
    paperWindows()
    {
        static const std::vector<size_t> w = {32, 64, 128, 256};
        return w;
    }

    explicit IlpAnalyzer(std::vector<size_t> windows = paperWindows())
    {
        for (size_t w : windows)
            states_.emplace_back(w);
    }

    void
    accept(const InstRecord &rec) override
    {
        uint16_t srcs[3];
        unsigned nsrc;
        uint16_t dst;
        extractOps(rec, srcs, nsrc, dst);
        for (auto &st : states_)
            st.step(srcs, nsrc, dst);
    }

    void
    acceptBatch(const InstRecord *recs, size_t n) override
    {
        // Records outer: every window state is small (ring + regReady
        // fit in a few KB), so all of them stay hot while each record
        // is touched exactly once — and the operand filtering is done
        // once per record instead of once per window.
        for (size_t i = 0; i < n; ++i) {
            uint16_t srcs[3];
            unsigned nsrc;
            uint16_t dst;
            extractOps(recs[i], srcs, nsrc, dst);
            for (auto &st : states_)
                st.step(srcs, nsrc, dst);
        }
    }

    /** @return number of window configurations. */
    size_t numWindows() const { return states_.size(); }

    /** @return configured size of window i. */
    size_t windowSize(size_t i) const { return states_[i].window; }

    /** @return achieved IPC for window configuration i. */
    double
    ipc(size_t i) const
    {
        const auto &st = states_[i];
        return st.maxComplete
            ? static_cast<double>(st.count) /
              static_cast<double>(st.maxComplete)
            : 0.0;
    }

  private:
    /** Filter a record down to its in-range, non-zero operands. */
    static void
    extractOps(const InstRecord &rec, uint16_t srcs[3], unsigned &nsrc,
               uint16_t &dst)
    {
        nsrc = 0;
        for (unsigned s = 0; s < rec.numSrcRegs; ++s) {
            const uint16_t r = rec.srcRegs[s];
            if (r != kZeroReg && r < kNumRegs)
                srcs[nsrc++] = r;
        }
        dst = (rec.hasDst() && rec.dstReg != kZeroReg &&
               rec.dstReg < kNumRegs) ? rec.dstReg : kInvalidReg;
    }

    struct WindowState
    {
        explicit WindowState(size_t w)
            : window(w), mask(w - 1), pow2(w != 0 && (w & (w - 1)) == 0),
              complete(w, 0)
        {
            assert(w > 0 && "ILP window size must be positive");
        }

        void
        step(const uint16_t srcs[3], unsigned nsrc, uint16_t dst)
        {
            // Window-entry constraint: in-order advance; this slot frees
            // when the instruction `window` positions older completed.
            // All paper windows are powers of two, so the ring index is
            // an AND; a non-pow2 window still works via the modulo
            // slow path.
            const size_t slot = pow2 ? static_cast<size_t>(count & mask)
                                     : static_cast<size_t>(count % window);
            uint64_t start = complete[slot];
            for (unsigned s = 0; s < nsrc; ++s)
                start = std::max(start, regReady[srcs[s]]);
            const uint64_t comp = start + 1;
            complete[slot] = comp;
            if (dst != kInvalidReg)
                regReady[dst] = comp;
            maxComplete = std::max(maxComplete, comp);
            ++count;
        }

        size_t window;
        uint64_t mask;
        bool pow2;
        std::vector<uint64_t> complete;
        std::array<uint64_t, kNumRegs> regReady{};
        uint64_t count = 0;
        uint64_t maxComplete = 0;
    };

    std::vector<WindowState> states_;
};

} // namespace mica
