/**
 * @file
 * Idealized-window ILP analyzer (Table II characteristics 7-10).
 */

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trace/trace_source.hh"

namespace mica
{

/**
 * Measures the IPC achievable by an idealized out-of-order processor
 * limited only by its reorder-window size, per the paper: perfect caches,
 * perfect branch prediction, infinite functional units, unit execution
 * latency. An instruction may start executing once (i) it has entered the
 * window — it enters when the instruction W positions older has completed
 * (in-order window advance) — and (ii) all its register producers have
 * completed. Memory dependences are not modeled (perfect memory
 * disambiguation), matching the register-dataflow limit study the
 * characteristic is defined as.
 *
 * Multiple window sizes are evaluated concurrently in a single pass.
 */
class IlpAnalyzer : public TraceAnalyzer
{
  public:
    /** Default window sweep from the paper. */
    static const std::vector<size_t> &
    paperWindows()
    {
        static const std::vector<size_t> w = {32, 64, 128, 256};
        return w;
    }

    explicit IlpAnalyzer(std::vector<size_t> windows = paperWindows())
    {
        for (size_t w : windows)
            states_.emplace_back(w);
    }

    void
    accept(const InstRecord &rec) override
    {
        for (auto &st : states_)
            st.step(rec);
    }

    /** @return number of window configurations. */
    size_t numWindows() const { return states_.size(); }

    /** @return configured size of window i. */
    size_t windowSize(size_t i) const { return states_[i].window; }

    /** @return achieved IPC for window configuration i. */
    double
    ipc(size_t i) const
    {
        const auto &st = states_[i];
        return st.maxComplete
            ? static_cast<double>(st.count) /
              static_cast<double>(st.maxComplete)
            : 0.0;
    }

  private:
    struct WindowState
    {
        explicit WindowState(size_t w) : window(w), complete(w, 0) {}

        void
        step(const InstRecord &rec)
        {
            // Window-entry constraint: in-order advance; this slot frees
            // when the instruction `window` positions older completed.
            uint64_t start = complete[count % window];
            for (unsigned s = 0; s < rec.numSrcRegs; ++s) {
                const uint16_t r = rec.srcRegs[s];
                if (r == kZeroReg || r >= kNumRegs)
                    continue;
                start = std::max(start, regReady[r]);
            }
            const uint64_t comp = start + 1;
            complete[count % window] = comp;
            if (rec.hasDst() && rec.dstReg != kZeroReg &&
                rec.dstReg < kNumRegs) {
                regReady[rec.dstReg] = comp;
            }
            maxComplete = std::max(maxComplete, comp);
            ++count;
        }

        size_t window;
        std::vector<uint64_t> complete;
        std::array<uint64_t, kNumRegs> regReady{};
        uint64_t count = 0;
        uint64_t maxComplete = 0;
    };

    std::vector<WindowState> states_;
};

} // namespace mica
