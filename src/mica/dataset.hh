/**
 * @file
 * Conversion between profile collections and dataset matrices, plus CSV
 * serialization used for on-disk caching of expensive profiling runs.
 */

#pragma once

#include <string>
#include <vector>

#include "mica/profile.hh"
#include "stats/matrix.hh"
#include "uarch/hw_counter.hh"

namespace mica
{

/** @return 47-column matrix; one row per profile, Table II order. */
Matrix profilesToMatrix(const std::vector<MicaProfile> &profiles);

/**
 * Write profiles as CSV: header row of characteristic names, then one
 * row per benchmark (name, instCount, 47 values).
 */
void saveProfilesCsv(const std::string &path,
                     const std::vector<MicaProfile> &profiles);

/**
 * Read profiles back from CSV written by saveProfilesCsv.
 * @return empty vector if the file does not exist or is malformed —
 * including truncated rows and non-numeric cells; a partial parse is
 * never returned.
 */
std::vector<MicaProfile> loadProfilesCsv(const std::string &path);

/**
 * Write HPC profiles as CSV: header row of metric names, then one row
 * per benchmark (name, instCount, 7 values).
 */
void saveHpcCsv(const std::string &path,
                const std::vector<uarch::HwCounterProfile> &profiles);

/**
 * Read HPC profiles back from CSV written by saveHpcCsv. Same
 * all-or-nothing contract as loadProfilesCsv.
 */
std::vector<uarch::HwCounterProfile> loadHpcCsv(const std::string &path);

/**
 * Generic labeled-matrix CSV writer (used for the HPC dataset and the
 * experiment outputs): header "name,<colNames...>", one row per entry.
 */
void saveMatrixCsv(const std::string &path, const Matrix &m);

} // namespace mica
