/**
 * @file
 * The 47-dimensional microarchitecture-independent profile (Table II).
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace mica
{

/** Total number of microarchitecture-independent characteristics. */
constexpr size_t kNumMicaChars = 47;

/**
 * Indices of the characteristics, exactly in Table II order. The value
 * of each enumerator is the (number - 1) of the corresponding row of
 * Table II in the paper.
 */
enum MicaChar : size_t
{
    // Instruction mix (1-6).
    PctLoads = 0,
    PctStores,
    PctControl,
    PctArith,
    PctIntMul,
    PctFpOps,
    // ILP for idealized windows (7-10).
    Ilp32,
    Ilp64,
    Ilp128,
    Ilp256,
    // Register traffic (11-19).
    AvgInputOperands,
    AvgDegreeOfUse,
    RegDepEq1,
    RegDepLe2,
    RegDepLe4,
    RegDepLe8,
    RegDepLe16,
    RegDepLe32,
    RegDepLe64,
    // Working set sizes (20-23).
    DWorkSet32B,
    DWorkSet4K,
    IWorkSet32B,
    IWorkSet4K,
    // Data stream strides (24-43).
    LocalLoadStrideEq0,
    LocalLoadStrideLe8,
    LocalLoadStrideLe64,
    LocalLoadStrideLe512,
    LocalLoadStrideLe4096,
    GlobalLoadStrideEq0,
    GlobalLoadStrideLe8,
    GlobalLoadStrideLe64,
    GlobalLoadStrideLe512,
    GlobalLoadStrideLe4096,
    LocalStoreStrideEq0,
    LocalStoreStrideLe8,
    LocalStoreStrideLe64,
    LocalStoreStrideLe512,
    LocalStoreStrideLe4096,
    GlobalStoreStrideEq0,
    GlobalStoreStrideLe8,
    GlobalStoreStrideLe64,
    GlobalStoreStrideLe512,
    GlobalStoreStrideLe4096,
    // Branch predictability: PPM miss rates (44-47).
    PpmGAg,
    PpmPAg,
    PpmGAs,
    PpmPAs,
};

/** Static description of one characteristic. */
struct MicaCharInfo
{
    size_t index;           ///< 0-based index (Table II number - 1)
    const char *name;       ///< short machine-friendly name
    const char *category;   ///< Table II category
    const char *describe;   ///< human-readable description
};

/** @return the full Table II metadata, indexed by MicaChar. */
const std::array<MicaCharInfo, kNumMicaChars> &micaCharTable();

/** @return metadata for one characteristic. */
const MicaCharInfo &micaCharInfo(size_t index);

/**
 * One benchmark's measured microarchitecture-independent profile: the
 * 47 characteristic values plus identification and the dynamic
 * instruction count the measurement is based on.
 */
struct MicaProfile
{
    std::string name;                       ///< benchmark identification
    uint64_t instCount = 0;                 ///< dynamic instructions
    std::array<double, kNumMicaChars> values{};

    double operator[](size_t i) const { return values[i]; }
    double &operator[](size_t i) { return values[i]; }

    /** @return the values as a vector (for Matrix::appendRow). */
    std::vector<double>
    toVector() const
    {
        return {values.begin(), values.end()};
    }
};

} // namespace mica
