/**
 * @file
 * Instruction- and data-stream working set analyzer (Table II
 * characteristics 20-23).
 */

#pragma once

#include <cstdint>

#include "trace/trace_source.hh"
#include "util/flat_hash.hh"

namespace mica
{

/**
 * Counts the number of unique 32-byte blocks and unique 4 KB pages
 * touched by the data stream (loads + stores) and by the instruction
 * stream (instruction fetch addresses). Multi-byte accesses are
 * attributed to the block/page of their first byte.
 */
class WorkingSetAnalyzer : public TraceAnalyzer
{
  public:
    const char *name() const override { return "working_set"; }

    static constexpr unsigned kBlockBits = 5;   ///< 32-byte blocks
    static constexpr unsigned kPageBits = 12;   ///< 4 KB pages

    void accept(const InstRecord &rec) override { step(rec); }

    void
    acceptBatch(const InstRecord *recs, size_t n) override
    {
        for (size_t i = 0; i < n; ++i)
            step(recs[i]);
    }

    /** @return unique 32B blocks touched by loads/stores. */
    uint64_t dBlocks() const { return dBlocks_.size(); }

    /** @return unique 4KB pages touched by loads/stores. */
    uint64_t dPages() const { return dPages_.size(); }

    /** @return unique 32B blocks of executed instructions. */
    uint64_t iBlocks() const { return iBlocks_.size(); }

    /** @return unique 4KB pages of executed instructions. */
    uint64_t iPages() const { return iPages_.size(); }

  private:
    void
    step(const InstRecord &rec)
    {
        // Same-key filter: consecutive fetches overwhelmingly hit the
        // same block/page (the PC advances 4 bytes at a time), and
        // re-inserting a present key is a set no-op, so comparing
        // against the previous key skips most hash probes outright.
        const uint64_t iBlock = rec.pc >> kBlockBits;
        if (iBlock != lastIBlock_) {
            lastIBlock_ = iBlock;
            iBlocks_.insert(iBlock);
            const uint64_t iPage = rec.pc >> kPageBits;
            if (iPage != lastIPage_) {
                lastIPage_ = iPage;
                iPages_.insert(iPage);
            }
        }
        if (rec.isMem()) {
            const uint64_t dBlock = rec.memAddr >> kBlockBits;
            if (dBlock != lastDBlock_) {
                lastDBlock_ = dBlock;
                dBlocks_.insert(dBlock);
            }
            const uint64_t dPage = rec.memAddr >> kPageBits;
            if (dPage != lastDPage_) {
                lastDPage_ = dPage;
                dPages_.insert(dPage);
            }
        }
    }

    /** ~0 is unreachable: block/page keys are address >> 5 or >> 12. */
    static constexpr uint64_t kNoKey = ~0ull;

    // Block/page numbers are natural keys: the cheap fold-multiply
    // hash spreads them fine.
    util::FlatHashSet<uint64_t, util::MulHash> dBlocks_;
    util::FlatHashSet<uint64_t, util::MulHash> dPages_;
    util::FlatHashSet<uint64_t, util::MulHash> iBlocks_;
    util::FlatHashSet<uint64_t, util::MulHash> iPages_;
    uint64_t lastIBlock_ = kNoKey;
    uint64_t lastIPage_ = kNoKey;
    uint64_t lastDBlock_ = kNoKey;
    uint64_t lastDPage_ = kNoKey;
};

} // namespace mica
