/**
 * @file
 * Instruction- and data-stream working set analyzer (Table II
 * characteristics 20-23).
 */

#pragma once

#include <cstdint>
#include <unordered_set>

#include "trace/trace_source.hh"

namespace mica
{

/**
 * Counts the number of unique 32-byte blocks and unique 4 KB pages
 * touched by the data stream (loads + stores) and by the instruction
 * stream (instruction fetch addresses). Multi-byte accesses are
 * attributed to the block/page of their first byte.
 */
class WorkingSetAnalyzer : public TraceAnalyzer
{
  public:
    static constexpr unsigned kBlockBits = 5;   ///< 32-byte blocks
    static constexpr unsigned kPageBits = 12;   ///< 4 KB pages

    void
    accept(const InstRecord &rec) override
    {
        iBlocks_.insert(rec.pc >> kBlockBits);
        iPages_.insert(rec.pc >> kPageBits);
        if (rec.isMem()) {
            dBlocks_.insert(rec.memAddr >> kBlockBits);
            dPages_.insert(rec.memAddr >> kPageBits);
        }
    }

    /** @return unique 32B blocks touched by loads/stores. */
    uint64_t dBlocks() const { return dBlocks_.size(); }

    /** @return unique 4KB pages touched by loads/stores. */
    uint64_t dPages() const { return dPages_.size(); }

    /** @return unique 32B blocks of executed instructions. */
    uint64_t iBlocks() const { return iBlocks_.size(); }

    /** @return unique 4KB pages of executed instructions. */
    uint64_t iPages() const { return iPages_.size(); }

  private:
    std::unordered_set<uint64_t> dBlocks_;
    std::unordered_set<uint64_t> dPages_;
    std::unordered_set<uint64_t> iBlocks_;
    std::unordered_set<uint64_t> iPages_;
};

} // namespace mica
