/**
 * @file
 * Register-traffic analyzer (Table II characteristics 11-19), after
 * Franklin & Sohi's register traffic analysis [12].
 */

#pragma once

#include <array>
#include <cstdint>

#include "trace/trace_source.hh"

namespace mica
{

/**
 * Measures three register-traffic properties:
 *
 *  - average number of register input operands per instruction;
 *  - average degree of use: how many times a register instance (one
 *    register write) is read before the register is overwritten;
 *  - the register dependency distance distribution: for every register
 *    read, the number of dynamic instructions since the value was
 *    produced, reported as cumulative probabilities at 1, 2, 4, 8, 16,
 *    32, 64.
 *
 * The hardwired zero register is excluded everywhere: reading it conveys
 * no dataflow.
 */
class RegTrafficAnalyzer : public TraceAnalyzer
{
  public:
    /** Cumulative dependency-distance cut points from Table II. */
    static constexpr std::array<uint64_t, 7> kDistCuts =
        {1, 2, 4, 8, 16, 32, 64};

    void
    accept(const InstRecord &rec) override
    {
        // Reads first: an instruction consumes its sources before it
        // produces its destination.
        for (unsigned s = 0; s < rec.numSrcRegs; ++s) {
            const uint16_t r = rec.srcRegs[s];
            if (r == kZeroReg || r >= kNumRegs)
                continue;
            ++totalReads_;
            auto &st = regs_[r];
            if (st.written) {
                ++st.uses;
                const uint64_t dist = instIdx_ - st.lastWriteIdx;
                ++totalDeps_;
                for (size_t c = 0; c < kDistCuts.size(); ++c) {
                    if (dist <= kDistCuts[c])
                        ++distCum_[c];
                }
            }
        }
        if (rec.hasDst() && rec.dstReg != kZeroReg &&
            rec.dstReg < kNumRegs) {
            auto &st = regs_[rec.dstReg];
            if (st.written) {
                useSum_ += st.uses;
                ++instances_;
            }
            st.written = true;
            st.uses = 0;
            st.lastWriteIdx = instIdx_;
        }
        ++instIdx_;
        ++totalInsts_;
    }

    void
    finish() override
    {
        if (flushed_)
            return;
        flushed_ = true;
        // Close the still-live register instances.
        for (auto &st : regs_) {
            if (st.written) {
                useSum_ += st.uses;
                ++instances_;
            }
        }
    }

    /** @return average register input operands per instruction. */
    double
    avgInputOperands() const
    {
        return totalInsts_ ? static_cast<double>(totalReads_) /
                             static_cast<double>(totalInsts_) : 0.0;
    }

    /** @return average times a register instance is consumed. */
    double
    avgDegreeOfUse() const
    {
        return instances_ ? static_cast<double>(useSum_) /
                            static_cast<double>(instances_) : 0.0;
    }

    /**
     * @return cumulative probability that a register dependence spans at
     *         most kDistCuts[cut] dynamic instructions.
     */
    double
    depDistanceCum(size_t cut) const
    {
        return totalDeps_ ? static_cast<double>(distCum_[cut]) /
                            static_cast<double>(totalDeps_) : 0.0;
    }

    /** @return total register reads with a known producer. */
    uint64_t totalDeps() const { return totalDeps_; }

  private:
    struct RegState
    {
        bool written = false;
        uint64_t uses = 0;
        uint64_t lastWriteIdx = 0;
    };

    std::array<RegState, kNumRegs> regs_{};
    std::array<uint64_t, 7> distCum_{};
    uint64_t totalReads_ = 0;
    uint64_t totalDeps_ = 0;
    uint64_t totalInsts_ = 0;
    uint64_t instIdx_ = 0;
    uint64_t useSum_ = 0;
    uint64_t instances_ = 0;
    bool flushed_ = false;
};

} // namespace mica
