/**
 * @file
 * Register-traffic analyzer (Table II characteristics 11-19), after
 * Franklin & Sohi's register traffic analysis [12].
 */

#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#include "trace/trace_source.hh"

namespace mica
{

/**
 * Measures three register-traffic properties:
 *
 *  - average number of register input operands per instruction;
 *  - average degree of use: how many times a register instance (one
 *    register write) is read before the register is overwritten;
 *  - the register dependency distance distribution: for every register
 *    read, the number of dynamic instructions since the value was
 *    produced, reported as cumulative probabilities at 1, 2, 4, 8, 16,
 *    32, 64.
 *
 * The hardwired zero register is excluded everywhere: reading it conveys
 * no dataflow.
 */
class RegTrafficAnalyzer : public TraceAnalyzer
{
  public:
    const char *name() const override { return "reg_traffic"; }

    /** Cumulative dependency-distance cut points from Table II. */
    static constexpr std::array<uint64_t, 7> kDistCuts =
        {1, 2, 4, 8, 16, 32, 64};

    void accept(const InstRecord &rec) override { step(rec); }

    void
    acceptBatch(const InstRecord *recs, size_t n) override
    {
        for (size_t i = 0; i < n; ++i)
            step(recs[i]);
    }

  private:
    void
    step(const InstRecord &rec)
    {
        // Reads first: an instruction consumes its sources before it
        // produces its destination.
        for (unsigned s = 0; s < rec.numSrcRegs; ++s) {
            const uint16_t r = rec.srcRegs[s];
            if (r == kZeroReg || r >= kNumRegs)
                continue;
            ++totalReads_;
            auto &st = regs_[r];
            if (st.written) {
                ++st.uses;
                const uint64_t dist = instIdx_ - st.lastWriteIdx;
                ++totalDeps_;
                // One histogram bucket per dependence instead of a
                // comparison per cut: the cuts are powers of two, so
                // the bucket is the bit width of dist - 1 (dist >= 1
                // always: the producer precedes the reader). Bucket 7
                // collects distances beyond the last cut;
                // depDistanceCum() folds the histogram back into the
                // cumulative counts.
                const int bucket = dist <= 1
                    ? 0
                    : std::min<int>(kDistCuts.size(),
                                    64 - __builtin_clzll(dist - 1));
                ++distHist_[bucket];
            }
        }
        if (rec.hasDst() && rec.dstReg != kZeroReg &&
            rec.dstReg < kNumRegs) {
            auto &st = regs_[rec.dstReg];
            if (st.written) {
                useSum_ += st.uses;
                ++instances_;
            }
            st.written = true;
            st.uses = 0;
            st.lastWriteIdx = instIdx_;
        }
        ++instIdx_;
        ++totalInsts_;
    }

  public:
    void
    finish() override
    {
        if (flushed_)
            return;
        flushed_ = true;
        // Close the still-live register instances.
        for (auto &st : regs_) {
            if (st.written) {
                useSum_ += st.uses;
                ++instances_;
            }
        }
    }

    /** @return average register input operands per instruction. */
    double
    avgInputOperands() const
    {
        return totalInsts_ ? static_cast<double>(totalReads_) /
                             static_cast<double>(totalInsts_) : 0.0;
    }

    /** @return average times a register instance is consumed. */
    double
    avgDegreeOfUse() const
    {
        return instances_ ? static_cast<double>(useSum_) /
                            static_cast<double>(instances_) : 0.0;
    }

    /**
     * @return cumulative probability that a register dependence spans at
     *         most kDistCuts[cut] dynamic instructions.
     */
    double
    depDistanceCum(size_t cut) const
    {
        if (!totalDeps_)
            return 0.0;
        uint64_t n = 0;
        for (size_t b = 0; b <= cut; ++b)
            n += distHist_[b];
        return static_cast<double>(n) /
               static_cast<double>(totalDeps_);
    }

    /** @return total register reads with a known producer. */
    uint64_t totalDeps() const { return totalDeps_; }

  private:
    struct RegState
    {
        bool written = false;
        uint64_t uses = 0;
        uint64_t lastWriteIdx = 0;
    };

    std::array<RegState, kNumRegs> regs_{};
    std::array<uint64_t, 8> distHist_{};    ///< [7] = beyond last cut
    uint64_t totalReads_ = 0;
    uint64_t totalDeps_ = 0;
    uint64_t totalInsts_ = 0;
    uint64_t instIdx_ = 0;
    uint64_t useSum_ = 0;
    uint64_t instances_ = 0;
    bool flushed_ = false;
};

} // namespace mica
