/**
 * @file
 * Local and global data-stride analyzer (Table II characteristics
 * 24-43), after Lau et al. [13].
 */

#pragma once

#include <array>
#include <cstdint>
#include <cstdlib>
#include <unordered_map>

#include "trace/trace_source.hh"

namespace mica
{

/**
 * Characterizes the data stream with stride distributions:
 *
 *  - a *global* stride is the absolute address difference between
 *    temporally adjacent memory accesses of the same kind (load or
 *    store), regardless of which instruction issued them;
 *  - a *local* stride is the same quantity restricted to accesses by a
 *    single static instruction (tracked per PC).
 *
 * For each of the four streams (local/global x load/store) the analyzer
 * reports the cumulative probability of strides being 0, <= 8, <= 64,
 * <= 512 and <= 4096 bytes.
 */
class StrideAnalyzer : public TraceAnalyzer
{
  public:
    /** Cumulative stride cut points from Table II (0 means exactly 0). */
    static constexpr std::array<uint64_t, 5> kCuts = {0, 8, 64, 512, 4096};

    /** One stride distribution (counts at each cumulative cut). */
    struct Dist
    {
        std::array<uint64_t, 5> cum{};
        uint64_t total = 0;

        void
        add(uint64_t stride)
        {
            ++total;
            for (size_t c = 0; c < kCuts.size(); ++c) {
                if (stride <= kCuts[c])
                    ++cum[c];
            }
        }

        double
        prob(size_t cut) const
        {
            return total ? static_cast<double>(cum[cut]) /
                           static_cast<double>(total) : 0.0;
        }
    };

    void
    accept(const InstRecord &rec) override
    {
        if (!rec.isMem())
            return;
        const bool is_load = rec.cls == InstClass::Load;
        auto &globalLast = is_load ? lastGlobalLoad_ : lastGlobalStore_;
        auto &globalDist = is_load ? globalLoad_ : globalStore_;
        auto &localMap = is_load ? lastLocalLoad_ : lastLocalStore_;
        auto &localDist = is_load ? localLoad_ : localStore_;

        if (globalLast.valid)
            globalDist.add(absDiff(rec.memAddr, globalLast.addr));
        globalLast.addr = rec.memAddr;
        globalLast.valid = true;

        auto [it, inserted] = localMap.try_emplace(rec.pc, rec.memAddr);
        if (!inserted) {
            localDist.add(absDiff(rec.memAddr, it->second));
            it->second = rec.memAddr;
        }
    }

    const Dist &localLoad() const { return localLoad_; }
    const Dist &globalLoad() const { return globalLoad_; }
    const Dist &localStore() const { return localStore_; }
    const Dist &globalStore() const { return globalStore_; }

  private:
    static uint64_t
    absDiff(uint64_t a, uint64_t b)
    {
        return a > b ? a - b : b - a;
    }

    struct Last
    {
        uint64_t addr = 0;
        bool valid = false;
    };

    Dist localLoad_, globalLoad_, localStore_, globalStore_;
    Last lastGlobalLoad_, lastGlobalStore_;
    std::unordered_map<uint64_t, uint64_t> lastLocalLoad_;
    std::unordered_map<uint64_t, uint64_t> lastLocalStore_;
};

} // namespace mica
