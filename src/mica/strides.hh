/**
 * @file
 * Local and global data-stride analyzer (Table II characteristics
 * 24-43), after Lau et al. [13].
 */

#pragma once

#include <array>
#include <cstdint>
#include <cstdlib>

#include "trace/trace_source.hh"
#include "util/flat_hash.hh"

namespace mica
{

/**
 * Characterizes the data stream with stride distributions:
 *
 *  - a *global* stride is the absolute address difference between
 *    temporally adjacent memory accesses of the same kind (load or
 *    store), regardless of which instruction issued them;
 *  - a *local* stride is the same quantity restricted to accesses by a
 *    single static instruction (tracked per PC).
 *
 * For each of the four streams (local/global x load/store) the analyzer
 * reports the cumulative probability of strides being 0, <= 8, <= 64,
 * <= 512 and <= 4096 bytes.
 */
class StrideAnalyzer : public TraceAnalyzer
{
  public:
    const char *name() const override { return "strides"; }

    /** Cumulative stride cut points from Table II (0 means exactly 0). */
    static constexpr std::array<uint64_t, 5> kCuts = {0, 8, 64, 512, 4096};

    /** One stride distribution, bucketed between the cumulative cuts. */
    struct Dist
    {
        /** hist[c] counts kCuts[c-1] < stride <= kCuts[c]; the last
         *  bucket collects strides beyond the final cut. */
        std::array<uint64_t, 6> hist{};
        uint64_t total = 0;

        void
        add(uint64_t stride)
        {
            ++total;
            // Branchless bucket select: the cuts are sorted, so the
            // bucket index is how many cuts the stride exceeds. One
            // increment replaces a compare-and-add per cut; prob()
            // folds the histogram back into cumulative counts.
            size_t c = 0;
            for (uint64_t cut : kCuts)
                c += stride > cut;
            ++hist[c];
        }

        double
        prob(size_t cut) const
        {
            if (!total)
                return 0.0;
            uint64_t n = 0;
            for (size_t c = 0; c <= cut; ++c)
                n += hist[c];
            return static_cast<double>(n) /
                   static_cast<double>(total);
        }
    };

    void accept(const InstRecord &rec) override { step(rec); }

    void
    acceptBatch(const InstRecord *recs, size_t n) override
    {
        // Two passes, loads then stores. Every stride stream is
        // defined within one access kind — global strides per kind,
        // local strides per (kind, pc) — so processing the span's
        // stores after its loads cannot change any distribution, and
        // each pass runs with its kind's state selected once instead
        // of re-selected per record.
        scanKind(recs, n, InstClass::Load, lastGlobalLoad_, globalLoad_,
                 lastLocalLoad_, localLoad_);
        scanKind(recs, n, InstClass::Store, lastGlobalStore_,
                 globalStore_, lastLocalStore_, localStore_);
    }

    const Dist &localLoad() const { return localLoad_; }
    const Dist &globalLoad() const { return globalLoad_; }
    const Dist &localStore() const { return localStore_; }
    const Dist &globalStore() const { return globalStore_; }

  private:
    void
    step(const InstRecord &rec)
    {
        if (!rec.isMem())
            return;
        const bool is_load = rec.cls == InstClass::Load;
        auto &globalLast = is_load ? lastGlobalLoad_ : lastGlobalStore_;
        auto &globalDist = is_load ? globalLoad_ : globalStore_;
        auto &localMap = is_load ? lastLocalLoad_ : lastLocalStore_;
        auto &localDist = is_load ? localLoad_ : localStore_;

        if (globalLast.valid)
            globalDist.add(absDiff(rec.memAddr, globalLast.addr));
        globalLast.addr = rec.memAddr;
        globalLast.valid = true;

        auto [lastAddr, inserted] =
            localMap.tryEmplace(rec.pc, rec.memAddr);
        if (!inserted) {
            localDist.add(absDiff(rec.memAddr, *lastAddr));
            *lastAddr = rec.memAddr;
        }
    }

    static uint64_t
    absDiff(uint64_t a, uint64_t b)
    {
        return a > b ? a - b : b - a;
    }

    struct Last;

    void
    scanKind(const InstRecord *recs, size_t n, InstClass kind,
             Last &globalLast, Dist &globalDist,
             util::FlatHashMap<uint64_t, uint64_t, util::MulHash>
                 &localMap,
             Dist &localDist)
    {
        for (size_t i = 0; i < n; ++i) {
            const InstRecord &rec = recs[i];
            if (rec.cls != kind)
                continue;
            if (globalLast.valid)
                globalDist.add(absDiff(rec.memAddr, globalLast.addr));
            globalLast.addr = rec.memAddr;
            globalLast.valid = true;

            auto [lastAddr, inserted] =
                localMap.tryEmplace(rec.pc, rec.memAddr);
            if (!inserted) {
                localDist.add(absDiff(rec.memAddr, *lastAddr));
                *lastAddr = rec.memAddr;
            }
        }
    }

    struct Last
    {
        uint64_t addr = 0;
        bool valid = false;
    };

    Dist localLoad_, globalLoad_, localStore_, globalStore_;
    Last lastGlobalLoad_, lastGlobalStore_;
    // Keyed by instruction PC — a natural key space, cheap hash.
    util::FlatHashMap<uint64_t, uint64_t, util::MulHash> lastLocalLoad_;
    util::FlatHashMap<uint64_t, uint64_t, util::MulHash> lastLocalStore_;
};

} // namespace mica
