/**
 * @file
 * Deterministic fault injection: named failpoints at I/O call sites.
 *
 * Every durable write/read site in the persistence stack (profile
 * store, index snapshots, trace files) evaluates a named failpoint
 * before touching the file. Disarmed — the default — an evaluation is
 * one relaxed atomic load; armed via `--failpoints=SPEC` or the
 * MICA_FAILPOINTS environment variable, the named sites fire
 * deterministic faults so tests, CI, and the `mica faults
 * crash-matrix` harness can prove every failure either recovers
 * cleanly or rejects loudly — never silently corrupts data.
 *
 * Spec grammar (';'-separated list of points):
 *
 *   SPEC    := POINT (';' POINT)*
 *   POINT   := NAME '=' ACTION [':' ARG] [TRIGGER]
 *   ACTION  := 'error'      fail the call with an errno (ARG = errno
 *                           name ENOSPC/EIO/EACCES/ENOENT or number;
 *                           default EIO)
 *            | 'shortwrite' write only ARG bytes (default half the
 *                           buffer), then fail with ENOSPC
 *            | 'throw'      throw std::runtime_error (ARG = message)
 *            | 'delay'      sleep ARG milliseconds, then proceed
 *            | 'abort'      write half the buffer (write sites), then
 *                           _exit(kCrashExitCode) — simulated crash
 *            | 'off'        explicitly disarmed (spec can mask a point
 *                           armed earlier in the list)
 *   TRIGGER := '@' N           fire on the Nth evaluation only (1-based)
 *            | ',every=' N     fire on every Nth evaluation
 *            | ',p=' P [',seed=' S]   fire with probability P from a
 *                           seeded per-site RNG — identical spec (and
 *                           serial execution) means an identical fire
 *                           pattern, byte-identical run to run
 *
 *   Default trigger: fire on every evaluation.
 *
 * Examples:
 *
 *   store.put.write=error:ENOSPC@2      second store commit hits ENOSPC
 *   trace.chunk.read=error,every=3      every 3rd chunk read fails EIO
 *   index.snapshot.rename=abort@1       crash at the snapshot rename
 *   store.put.write=shortwrite:100      torn 100-byte writes, always
 *
 * Site names are a fixed registry (knownFailpoints()); arming an
 * unknown name is an error naming it, so a typo can never silently
 * test nothing. Hit counting is per site and process-wide:
 * deterministic for serial runs, documented-racy across worker
 * threads (the count still totals exactly, only the attribution of
 * "the Nth hit" to a particular job varies).
 *
 * Mirrors the MICA_OBS pattern: building with -DMICA_FAILPOINTS=0
 * compiles the whole API to empty inlines, so release builds can
 * prove the hooks cost nothing.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef MICA_FAILPOINTS
#define MICA_FAILPOINTS 1
#endif

namespace mica::util
{

/** Exit code of an 'abort'-action simulated crash. */
constexpr int kCrashExitCode = 97;

enum class FailOp : uint8_t
{
    None,          ///< do not fire
    Error,         ///< fail the call with `err`
    ShortWrite,    ///< write only `param` bytes, then fail ENOSPC
    Throw,         ///< throw std::runtime_error
    Delay,         ///< sleep `param` ms, then proceed normally
    Abort,         ///< partial write, then _exit(kCrashExitCode)
};

/** What one evaluation of an armed failpoint asks the site to do. */
struct FailDecision
{
    FailOp op = FailOp::None;
    int err = 0;           ///< errno for Error (and ShortWrite's tail)
    uint64_t param = 0;    ///< ShortWrite byte cap / Delay milliseconds
    const char *site = ""; ///< site name, for error messages

    explicit operator bool() const { return op != FailOp::None; }
};

/** One registered site's metadata (see knownFailpoints()). */
struct FailpointInfo
{
    std::string name;
    bool writeSite = false;    ///< on a durable-write path (crash matrix)
};

#if MICA_FAILPOINTS

/**
 * Handle to one named site. Construction resolves the name against
 * the fixed registry once; eval() is one relaxed load while nothing
 * is armed. The idiomatic use is a function-local static:
 *
 *   static util::Failpoint fp("store.put.write");
 *   if (auto d = fp.eval())
 *       ...act on d...
 *
 * (checked_io evaluates sites for its callers, so most code never
 * touches this class directly.)
 */
class Failpoint
{
  public:
    explicit Failpoint(const std::string &name);

    /** Evaluate the site: count the hit, return what to do (if armed). */
    FailDecision eval() noexcept;

  private:
    uint32_t site_;
};

/**
 * Evaluate a site by name (the checked_io layer builds
 * "<prefix>.<op>" names at the call site). Names not in the registry
 * never fire — arming already rejected them, so this stays noexcept.
 * Call only after failpointsArmed() returned true; while disarmed it
 * is correct but wastes a name lookup.
 */
FailDecision evalFailpoint(const std::string &name) noexcept;

/**
 * Arm the points named in @p spec (see the grammar above), replacing
 * any previous arming.
 * @return false with *err naming the offending token when the spec
 * does not parse or names an unknown site.
 */
bool armFailpoints(const std::string &spec, std::string *err = nullptr);

/** Disarm every site and reset all hit counters. */
void disarmFailpoints();

/** @return whether any site is currently armed. */
bool failpointsArmed();

/** @return times @p name fired so far (0 for unknown names). */
uint64_t failpointFireCount(const std::string &name);

/** @return the fixed site registry, in stable order. */
const std::vector<FailpointInfo> &knownFailpoints();

#else // !MICA_FAILPOINTS — the whole API becomes empty inlines.

class Failpoint
{
  public:
    explicit Failpoint(const std::string &) {}

    FailDecision eval() noexcept { return {}; }
};

inline FailDecision
evalFailpoint(const std::string &) noexcept
{
    return {};
}

inline bool
armFailpoints(const std::string &, std::string *err = nullptr)
{
    if (err)
        *err = "fault injection compiled out (MICA_FAILPOINTS=0)";
    return false;
}

inline void
disarmFailpoints()
{
}

inline bool
failpointsArmed()
{
    return false;
}

inline uint64_t
failpointFireCount(const std::string &)
{
    return 0;
}

inline const std::vector<FailpointInfo> &
knownFailpoints()
{
    static const std::vector<FailpointInfo> none;
    return none;
}

#endif // MICA_FAILPOINTS

} // namespace mica::util
