/**
 * @file
 * Open-addressing flat hash containers for analyzer hot paths.
 *
 * std::unordered_map/set allocate one node per element and chase at
 * least one pointer per lookup. The analyzer hot loops do one or more
 * lookups per dynamic instruction (PPM context tables, working-set
 * block/page sets, per-PC stride tables, the interpreter's page
 * table), so node allocation and pointer chasing dominate profiling
 * time. These containers keep all slots in one contiguous
 * power-of-two array probed linearly: no per-element allocation and
 * at most one cache miss per lookup in the common case.
 *
 * Semantics are deliberately minimal — insert, find, grow. There is
 * no erase, hence no tombstones: profiling state only ever
 * accumulates over a trace and is dropped wholesale afterwards.
 * Keys must be integral (they are hashed through a 64-bit finalizer);
 * mapped values must be default-constructible and movable.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mica::util
{

/**
 * Finalizer-style 64-bit mixer (MurmurHash3 fmix64). Full avalanche,
 * so degenerate key patterns (page numbers, word-aligned PCs, keys
 * differing only in high bits) spread over the table instead of
 * clustering in one probe run.
 */
inline uint64_t
hashMix(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

/** Default hash policy: full-avalanche mix of the key. */
struct MixHash
{
    static uint64_t of(uint64_t x) { return hashMix(x); }
};

/**
 * Cheap fold-multiply-fold policy (4 ops vs the finalizer's 5): fold
 * the high half into the low, one odd-constant multiply, then fold
 * the well-mixed high product bits back down so the *low* bits used
 * for table indexing depend on every input bit. Good enough for
 * natural key spaces (addresses, PCs, block/page numbers) probed on a
 * hot path; prefer MixHash (full avalanche) when keys may be
 * adversarial.
 */
struct MulHash
{
    static uint64_t
    of(uint64_t x)
    {
        x ^= x >> 32;
        x *= 0x9e3779b97f4a7c15ull;
        return x ^ (x >> 29);
    }
};

/**
 * Identity hash policy for keys that are *already* well mixed (e.g.,
 * the PPM context keys, which are built by multiplicative hashing).
 * Multiplying by an odd constant is bijective on the low bits used
 * for indexing, so such keys need no second mix.
 */
struct PremixedHash
{
    static uint64_t of(uint64_t x) { return x; }
};

/**
 * Open-addressing hash map from an integral key to a value.
 *
 * Grows by doubling at 70% load; capacity is always a power of two so
 * probing is an AND, not a modulo. Pointers returned by find() /
 * tryEmplace() / operator[] are invalidated by any later insertion.
 */
template <typename K, typename V, typename Hash = MixHash>
class FlatHashMap
{
  public:
    FlatHashMap() = default;

    /** @return number of stored entries. */
    size_t size() const { return size_; }

    bool empty() const { return size_ == 0; }

    /** Drop all entries and release the slot array. */
    void
    clear()
    {
        slots_.clear();
        slots_.shrink_to_fit();
        size_ = 0;
        mask_ = 0;
    }

    /** Pre-size the table so n entries fit without rehashing. */
    void
    reserve(size_t n)
    {
        size_t cap = kMinCapacity;
        while (cap * 7 < n * 10)
            cap <<= 1;
        if (cap > slots_.size())
            rehash(cap);
    }

    /** @return pointer to the mapped value, or nullptr when absent. */
    V *
    find(K key)
    {
        if (slots_.empty())
            return nullptr;
        for (size_t i = probe(key);; i = (i + 1) & mask_) {
            Slot &s = slots_[i];
            if (!s.used)
                return nullptr;
            if (s.key == key)
                return &s.value;
        }
    }

    const V *
    find(K key) const
    {
        return const_cast<FlatHashMap *>(this)->find(key);
    }

    bool contains(K key) const { return find(key) != nullptr; }

    /**
     * Insert (key, value) unless the key is present.
     *
     * @return the mapped value (new or pre-existing) and whether the
     *         insertion happened — std::map::try_emplace semantics.
     */
    std::pair<V *, bool>
    tryEmplace(K key, V value)
    {
        growIfNeeded();
        for (size_t i = probe(key);; i = (i + 1) & mask_) {
            Slot &s = slots_[i];
            if (!s.used) {
                s.used = true;
                s.key = key;
                s.value = std::move(value);
                ++size_;
                return {&s.value, true};
            }
            if (s.key == key)
                return {&s.value, false};
        }
    }

    /** Map-style accessor: value-initializes missing entries. */
    V &operator[](K key) { return *tryEmplace(key, V()).first; }

    /** @return current slot-array capacity (for tests/diagnostics). */
    size_t capacity() const { return slots_.size(); }

  private:
    static constexpr size_t kMinCapacity = 16;

    struct Slot
    {
        K key{};
        V value{};
        bool used = false;
    };

    size_t
    probe(K key) const
    {
        return static_cast<size_t>(
            Hash::of(static_cast<uint64_t>(key))) & mask_;
    }

    void
    growIfNeeded()
    {
        if (slots_.empty())
            rehash(kMinCapacity);
        else if ((size_ + 1) * 10 > slots_.size() * 7)
            rehash(slots_.size() * 2);
    }

    void
    rehash(size_t newCap)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_ = std::vector<Slot>(newCap);
        mask_ = newCap - 1;
        for (Slot &s : old) {
            if (!s.used)
                continue;
            for (size_t i = probe(s.key);; i = (i + 1) & mask_) {
                Slot &d = slots_[i];
                if (!d.used) {
                    d.used = true;
                    d.key = s.key;
                    d.value = std::move(s.value);
                    break;
                }
            }
        }
    }

    std::vector<Slot> slots_;
    size_t size_ = 0;
    size_t mask_ = 0;
};

/**
 * Open-addressing hash set of integral keys. Same growth and probing
 * policy as FlatHashMap, without the mapped values.
 */
template <typename K, typename Hash = MixHash>
class FlatHashSet
{
  public:
    FlatHashSet() = default;

    size_t size() const { return size_; }

    bool empty() const { return size_ == 0; }

    void
    clear()
    {
        slots_.clear();
        slots_.shrink_to_fit();
        size_ = 0;
        mask_ = 0;
    }

    void
    reserve(size_t n)
    {
        size_t cap = kMinCapacity;
        while (cap * 7 < n * 10)
            cap <<= 1;
        if (cap > slots_.size())
            rehash(cap);
    }

    bool
    contains(K key) const
    {
        if (slots_.empty())
            return false;
        for (size_t i = probe(key);; i = (i + 1) & mask_) {
            const Slot &s = slots_[i];
            if (!s.used)
                return false;
            if (s.key == key)
                return true;
        }
    }

    /** @return true when the key was newly inserted. */
    bool
    insert(K key)
    {
        growIfNeeded();
        for (size_t i = probe(key);; i = (i + 1) & mask_) {
            Slot &s = slots_[i];
            if (!s.used) {
                s.used = true;
                s.key = key;
                ++size_;
                return true;
            }
            if (s.key == key)
                return false;
        }
    }

    size_t capacity() const { return slots_.size(); }

  private:
    static constexpr size_t kMinCapacity = 16;

    struct Slot
    {
        K key{};
        bool used = false;
    };

    size_t
    probe(K key) const
    {
        return static_cast<size_t>(
            Hash::of(static_cast<uint64_t>(key))) & mask_;
    }

    void
    growIfNeeded()
    {
        if (slots_.empty())
            rehash(kMinCapacity);
        else if ((size_ + 1) * 10 > slots_.size() * 7)
            rehash(slots_.size() * 2);
    }

    void
    rehash(size_t newCap)
    {
        std::vector<Slot> old = std::move(slots_);
        slots_ = std::vector<Slot>(newCap);
        mask_ = newCap - 1;
        for (const Slot &s : old) {
            if (!s.used)
                continue;
            for (size_t i = probe(s.key);; i = (i + 1) & mask_) {
                Slot &d = slots_[i];
                if (!d.used) {
                    d.used = true;
                    d.key = s.key;
                    break;
                }
            }
        }
    }

    std::vector<Slot> slots_;
    size_t size_ = 0;
    size_t mask_ = 0;
};

} // namespace mica::util
