/**
 * @file
 * Deterministic multi-level compaction quantile sketch (see
 * quantile.hh for the design constraints it satisfies).
 */

#include "util/quantile.hh"

#include <algorithm>
#include <cmath>
#include <utility>

namespace mica::util
{

size_t
quantileRank(double q, uint64_t n)
{
    if (n == 0)
        return 0;
    if (q <= 0.0)
        return 0;
    if (q >= 1.0)
        return n - 1;
    auto r = static_cast<uint64_t>(std::ceil(q * static_cast<double>(n)));
    if (r > 0)
        --r;
    if (r >= n)
        r = n - 1;
    return static_cast<size_t>(r);
}

QuantileSketch::QuantileSketch(size_t capacity)
    : capacity_(capacity < 8 ? 8 : capacity)
{
    levels_.emplace_back();
    levels_[0].reserve(capacity_);
    takeOdd_.push_back(false);
}

void
QuantileSketch::add(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    levels_[0].push_back(v);
    if (levels_[0].size() >= capacity_)
        compact(0);
}

void
QuantileSketch::compact(size_t level)
{
    // Sort the full level, promote every other item one level up
    // (doubling its weight), and flip the parity so the next
    // compaction keeps the ranks it dropped this time. No randomness:
    // the same inputs always leave the same state behind.
    if (level + 1 >= levels_.size()) {
        // Grow first: emplace_back may reallocate, so references into
        // levels_ must only be taken afterwards.
        levels_.emplace_back();
        takeOdd_.push_back(false);
    }
    auto &src = levels_[level];
    std::sort(src.begin(), src.end());
    auto &dst = levels_[level + 1];
    const size_t start = takeOdd_[level] ? 1 : 0;
    takeOdd_[level] = !takeOdd_[level];
    for (size_t i = start; i < src.size(); i += 2)
        dst.push_back(src[i]);
    src.clear();
    if (dst.size() >= capacity_)
        compact(level + 1);
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    for (size_t level = 0; level < other.levels_.size(); ++level) {
        if (other.levels_[level].empty())
            continue;
        while (level >= levels_.size()) {
            levels_.emplace_back();
            takeOdd_.push_back(false);
        }
        auto &dst = levels_[level];
        dst.insert(dst.end(), other.levels_[level].begin(),
                   other.levels_[level].end());
        if (dst.size() >= capacity_)
            compact(level);
    }
}

double
QuantileSketch::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    // The retained extremes may have been compacted away, so the ends
    // of the range answer from the exactly-tracked min/max.
    if (q <= 0.0)
        return min_;
    if (q >= 1.0)
        return max_;

    std::vector<std::pair<double, uint64_t>> items;
    uint64_t total = 0;
    for (size_t level = 0; level < levels_.size(); ++level) {
        const uint64_t weight = uint64_t(1) << level;
        for (double v : levels_[level]) {
            items.emplace_back(v, weight);
            total += weight;
        }
    }
    std::sort(items.begin(), items.end());

    const uint64_t target = quantileRank(q, total);
    uint64_t cum = 0;
    for (const auto &[value, weight] : items) {
        cum += weight;
        if (cum > target)
            return value;
    }
    return items.back().first;
}

double
ExactQuantiles::quantile(double q) const
{
    if (values_.empty())
        return 0.0;
    std::sort(values_.begin(), values_.end());
    return values_[quantileRank(q, values_.size())];
}

} // namespace mica::util
