/**
 * @file
 * Deterministic streaming quantile estimation for the perf layer.
 *
 * The bench harness and the serve-bench client both need dispersion
 * (p50/p90/p99) over streams whose size is unknown up front — bench
 * repetitions are a handful of values, per-op round-trip latencies can
 * be hundreds of thousands. QuantileSketch covers both with one
 * structure shaped by three requirements:
 *
 *  - **Fixed size.** Memory is bounded by the compaction capacity
 *    regardless of stream length, so a long-running latency recorder
 *    never grows. Streams shorter than the capacity are held exactly
 *    and quantiles are then exact (nearest-rank), which is what makes
 *    the small-n bench summaries precise.
 *
 *  - **Deterministic.** Compaction uses an alternating parity selector
 *    instead of coin flips, so the same insertion order always yields
 *    byte-identical state and identical quantile answers — reruns of a
 *    bench diff cleanly, and tests can assert exact equality.
 *
 *  - **Mergeable.** merge() folds another sketch in level-by-level, so
 *    per-shard recorders (one per connection, one per repetition) can
 *    be combined into one summary without re-streaming raw values.
 *
 * The design is the standard multi-level compactor (KLL without the
 * randomness): level i holds items of weight 2^i; a full level is
 * sorted and every other item is promoted. Rank error grows slowly
 * with stream length — ExactQuantiles is the sort-everything oracle
 * the tests compare against to pin the bound.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mica::util
{

/**
 * Fixed-size deterministic quantile sketch over doubles.
 *
 * add() is amortised O(1); quantile() is O(S log S) in the retained
 * sample count S (<= ~2 * capacity). Not thread-safe — one writer, or
 * per-thread sketches folded with merge().
 */
class QuantileSketch
{
  public:
    /** Default per-level compaction capacity (items). */
    static constexpr size_t kDefaultCapacity = 512;

    explicit QuantileSketch(size_t capacity = kDefaultCapacity);

    /** Insert one observation. */
    void add(double v);

    /** Fold @p other in; both must use the same capacity. */
    void merge(const QuantileSketch &other);

    /**
     * Estimate the value at quantile @p q in [0, 1] (clamped).
     * Nearest-rank over the weighted retained sample: exact while the
     * stream still fits in level 0. @return 0.0 on an empty sketch.
     */
    double quantile(double q) const;

    /** @return observations seen (not retained). */
    uint64_t count() const { return count_; }

    /** @return exact smallest observation (0.0 when empty). */
    double min() const { return count_ == 0 ? 0.0 : min_; }

    /** @return exact largest observation (0.0 when empty). */
    double max() const { return count_ == 0 ? 0.0 : max_; }

    bool empty() const { return count_ == 0; }

  private:
    void compact(size_t level);

    size_t capacity_;
    uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
    /** levels_[i] holds items of weight 2^i; only level 0 is unsorted. */
    std::vector<std::vector<double>> levels_;
    /** Per-level parity: promote even- or odd-indexed items next. */
    std::vector<bool> takeOdd_;
};

/**
 * The exact oracle: stores every value, sorts on demand. Same
 * nearest-rank convention as QuantileSketch so the two agree exactly
 * on any stream the sketch retains in full. Test/reference use only —
 * memory is O(n).
 */
class ExactQuantiles
{
  public:
    void add(double v) { values_.push_back(v); }

    /** @return the nearest-rank quantile; 0.0 when empty. */
    double quantile(double q) const;

    uint64_t count() const { return values_.size(); }

  private:
    mutable std::vector<double> values_;
};

/**
 * @return the index selected by quantile @p q over @p n ordered items
 * (the shared nearest-rank convention: ceil(q*n) - 1, clamped).
 */
size_t quantileRank(double q, uint64_t n);

} // namespace mica::util
