#include "util/arg_parse.hh"

#include <cstdlib>

namespace mica::util
{

bool
CliArgs::has(const std::string &name) const
{
    for (const auto &f : flags) {
        if (f.first == name)
            return true;
    }
    return false;
}

std::string
CliArgs::value(const std::string &name, const std::string &fallback) const
{
    // Last wins, like every conventional CLI: a wrapper script can
    // append an override after a base command's flags.
    for (auto it = flags.rbegin(); it != flags.rend(); ++it) {
        if (it->first == name)
            return it->second;
    }
    return fallback;
}

namespace
{

/** @return whether s is a plain decimal number. */
bool
isDecimal(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
    }
    return true;
}

} // namespace

long long
CliArgs::intValue(const std::string &name, long long fallback) const
{
    const std::string v = value(name);
    return isDecimal(v) ? std::strtoll(v.c_str(), nullptr, 10) : fallback;
}

bool
CliArgs::intOk(const std::string &name) const
{
    return !has(name) || isDecimal(value(name));
}

CliArgs
parseCliArgs(int argc, char **argv, const std::vector<std::string> &known)
{
    CliArgs out;
    auto accepted = [&] {
        std::string list;
        if (known.empty())
            return list;
        list = " (accepted:";
        for (const auto &k : known) {
            list += " --" +
                (k.back() == '=' ? k.substr(0, k.size() - 1) : k);
        }
        list += ")";
        return list;
    };
    auto reject = [&](const std::string &flag) {
        out.error = "unknown flag '" + flag + "'" + accepted();
        return out;
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.size() < 2 || arg[0] != '-') {
            out.positionals.push_back(arg);
            continue;
        }
        if (arg[1] != '-')
            return reject(arg);
        const size_t eq = arg.find('=');
        const bool hasValue = eq != std::string::npos;
        const std::string name =
            arg.substr(2, hasValue ? eq - 2 : std::string::npos);
        bool found = false, takesValue = false;
        for (const auto &k : known) {
            if (k == name || (k.back() == '=' &&
                              k.compare(0, k.size() - 1, name) == 0 &&
                              k.size() - 1 == name.size())) {
                found = true;
                takesValue = k.back() == '=';
                break;
            }
        }
        if (!found)
            return reject(hasValue ? arg.substr(0, eq) : arg);
        if (hasValue && !takesValue) {
            out.error = "flag '--" + name + "' takes no value (got '" +
                arg.substr(eq + 1) + "')";
            return out;
        }
        if (!hasValue && takesValue) {
            // "--cache /tmp/x" (space instead of '=') would silently
            // drop the value into the positionals and run uncached.
            out.error = "flag '--" + name + "' needs a value (--" +
                name + "=...)";
            return out;
        }
        out.flags.emplace_back(name, hasValue ? arg.substr(eq + 1) : "");
    }
    return out;
}

} // namespace mica::util
