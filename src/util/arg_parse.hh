/**
 * @file
 * Strict command-line flag parsing for the mica CLI.
 *
 * The CLI's original loop scanned for the flags it knew and silently
 * ignored everything else, so `mica cluster --mask=40` (a typo for
 * --maxk) ran the full default sweep without a word. This helper
 * splits argv into positionals and --flag[=value] options against an
 * explicit allow-list and reports the first unknown flag *by name*.
 * The bench harnesses keep the permissive experiments::configFromArgs
 * on purpose — google-benchmark flags must pass through there.
 */

#pragma once

#include <string>
#include <vector>

namespace mica::util
{

/** Result of parsing one argv. */
struct CliArgs
{
    /** Non-flag arguments, in order (argv[0] is not included). */
    std::vector<std::string> positionals;

    /** Parsed (name, value) options; value is "" for bare flags. */
    std::vector<std::pair<std::string, std::string>> flags;

    /** Nonempty when parsing failed; names the offending flag. */
    std::string error;

    bool ok() const { return error.empty(); }

    /** @return whether --name appeared. */
    bool has(const std::string &name) const;

    /**
     * @return value of --name=value, or @p fallback when absent.
     * A repeated flag follows the usual CLI convention: last wins.
     */
    std::string value(const std::string &name,
                      const std::string &fallback = "") const;

    /**
     * @return --name parsed as a non-negative integer; @p fallback
     * when absent or not a plain decimal number.
     */
    long long intValue(const std::string &name, long long fallback) const;

    /**
     * @return whether --name is absent or parses as a plain decimal —
     * callers that must not let a typo'd value silently mean "use the
     * default" check this and reject.
     */
    bool intOk(const std::string &name) const;
};

/**
 * Parse argv[1..] against an allow-list of flag names (no "--"
 * prefix). An entry ending in '=' declares a value-taking flag
 * ("budget="); a plain entry declares a bare flag ("quick"). Passing
 * a value to a bare flag ("--quick=50000") is an error — silently
 * swallowing "=false" would invert the user's intent — and so is
 * writing a value-taking flag bare ("--cache /tmp/x" with a space
 * would silently run uncached).
 * Arguments starting with "--" must match a known name — anything
 * else sets CliArgs::error naming the flag and listing the accepted
 * ones. A lone "-" and arguments not starting with "-" are
 * positionals; any other single-dash argument is rejected (the CLI
 * has no short options).
 */
CliArgs parseCliArgs(int argc, char **argv,
                     const std::vector<std::string> &known);

} // namespace mica::util
