#include "util/checked_io.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/failpoint.hh"

namespace mica::util
{

namespace
{

/**
 * Evaluate "<prefix>.<op>" and carry out everything the decision asks
 * for that is not write-specific: fail with an errno, throw, sleep,
 * or simulate a crash. @return the decision so write paths can act on
 * ShortWrite/Abort byte caps. The disarmed path does no string
 * concatenation — failpointsArmed() is one atomic load (and a
 * compile-time false under MICA_FAILPOINTS=0, folding the whole call
 * away).
 */
FailDecision
checkSite(const std::string &prefix, const char *op,
          const std::string &path, bool isWrite)
{
    if (!failpointsArmed())
        return {};
    FailDecision d = evalFailpoint(prefix + "." + op);
    switch (d.op) {
      case FailOp::None:
        break;
      case FailOp::Error:
        throw IoError(op, path, d.err);
      case FailOp::Throw:
        throw std::runtime_error(std::string("injected fault at ") +
                                 d.site + " (" + path + ")");
      case FailOp::Delay:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(d.param));
        d = {};    // proceed normally after the stall
        break;
      case FailOp::ShortWrite:
        if (!isWrite)
            throw IoError(op, path, d.err);
        break;    // write path truncates, then fails
      case FailOp::Abort:
        if (!isWrite)
            ::_exit(kCrashExitCode);
        break;    // write path tears the write first
    }
    return d;
}

} // namespace

IoError::IoError(const std::string &op, const std::string &path, int err)
    : std::runtime_error(op + " failed: " + path + ": " +
                         (err ? std::strerror(err)
                              : "unexpected end of file")),
      op_(op), path_(path), err_(err)
{
}

CheckedFile
CheckedFile::openRead(const std::string &path,
                      const std::string &sitePrefix)
{
    checkSite(sitePrefix, "open", path, false);
    int fd;
    do {
        fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0)
        throw IoError("open", path, errno);
    CheckedFile f;
    f.fd_ = fd;
    f.path_ = path;
    f.prefix_ = sitePrefix;
    return f;
}

CheckedFile
CheckedFile::openWrite(const std::string &path,
                       const std::string &sitePrefix)
{
    checkSite(sitePrefix, "open", path, false);
    int fd;
    do {
        fd = ::open(path.c_str(),
                    O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0)
        throw IoError("open", path, errno);
    CheckedFile f;
    f.fd_ = fd;
    f.path_ = path;
    f.prefix_ = sitePrefix;
    return f;
}

CheckedFile::~CheckedFile()
{
    if (fd_ >= 0)
        ::close(fd_);
}

CheckedFile::CheckedFile(CheckedFile &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)), prefix_(std::move(other.prefix_))
{
}

CheckedFile &
CheckedFile::operator=(CheckedFile &&other) noexcept
{
    if (this != &other) {
        if (fd_ >= 0)
            ::close(fd_);
        fd_ = std::exchange(other.fd_, -1);
        path_ = std::move(other.path_);
        prefix_ = std::move(other.prefix_);
    }
    return *this;
}

void
CheckedFile::writeAll(const void *buf, size_t n)
{
    FailDecision d = checkSite(prefix_, "write", path_, true);
    size_t cap = n;
    if (d.op == FailOp::ShortWrite)
        cap = d.param == UINT64_MAX ? n / 2
                                    : std::min<uint64_t>(d.param, n);
    else if (d.op == FailOp::Abort)
        cap = n / 2;

    const char *p = static_cast<const char *>(buf);
    size_t left = cap;
    while (left > 0) {
        ssize_t w = ::write(fd_, p, left);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            throw IoError("write", path_, errno);
        }
        p += w;
        left -= size_t(w);
    }
    if (d.op == FailOp::Abort)
        ::_exit(kCrashExitCode);    // simulated crash: torn write
    if (cap != n)
        throw IoError("write", path_, d.err ? d.err : ENOSPC);
}

void
CheckedFile::readExact(void *buf, size_t n)
{
    const size_t got = readUpTo(buf, n);
    if (got != n)
        throw IoError("read", path_, 0);    // 0 = premature EOF
}

size_t
CheckedFile::readUpTo(void *buf, size_t n)
{
    checkSite(prefix_, "read", path_, false);
    char *p = static_cast<char *>(buf);
    size_t got = 0;
    while (got < n) {
        ssize_t r = ::read(fd_, p + got, n - got);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            throw IoError("read", path_, errno);
        }
        if (r == 0)
            break;
        got += size_t(r);
    }
    return got;
}

void
CheckedFile::seekTo(uint64_t off)
{
    if (::lseek(fd_, static_cast<off_t>(off), SEEK_SET) < 0)
        throw IoError("seek", path_, errno);
}

uint64_t
CheckedFile::size()
{
    struct stat st = {};
    if (::fstat(fd_, &st) != 0)
        throw IoError("stat", path_, errno);
    return static_cast<uint64_t>(st.st_size);
}

void
CheckedFile::syncToDisk()
{
    // Not a "write" for failpoint purposes: there are no bytes to
    // tear, so Abort crashes here and ShortWrite degrades to Error.
    checkSite(prefix_, "fsync", path_, false);
    int rc;
    do {
        rc = ::fsync(fd_);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        throw IoError("fsync", path_, errno);
}

void
CheckedFile::close()
{
    if (fd_ < 0)
        return;
    int rc;
    do {
        rc = ::close(fd_);
    } while (rc != 0 && errno == EINTR);
    fd_ = -1;
    if (rc != 0)
        throw IoError("close", path_, errno);
}

void
checkedRename(const std::string &from, const std::string &to,
              const std::string &sitePrefix)
{
    // Like fsync: a simulated crash lands *before* the rename — the
    // destination keeps its previous (complete) contents.
    checkSite(sitePrefix, "rename", to, false);
    if (::rename(from.c_str(), to.c_str()) != 0)
        throw IoError("rename", to, errno);
}

std::string
readFileBytes(const std::string &path, const std::string &sitePrefix)
{
    CheckedFile f = CheckedFile::openRead(path, sitePrefix);
    std::string out;
    out.resize(f.size());
    // The file can legitimately grow or shrink between the stat and
    // the read (another process committing); read what is actually
    // there and size the result to it.
    const size_t got = f.readUpTo(out.data(), out.size());
    out.resize(got);
    f.close();
    return out;
}

void
atomicWriteFile(const std::string &path, const void *data, size_t n,
                const std::string &sitePrefix)
{
    const std::string tmp = path + ".tmp";
    try {
        CheckedFile f = CheckedFile::openWrite(tmp, sitePrefix);
        f.writeAll(data, n);
        f.syncToDisk();
        f.close();
        checkedRename(tmp, path, sitePrefix);
    } catch (...) {
        // A failed commit must never leave debris that blocks (or
        // worse, gets mistaken for) the next attempt.
        ::unlink(tmp.c_str());
        throw;
    }
}

} // namespace mica::util
