/**
 * @file
 * Checked POSIX file I/O: every failure carries op + path + errno,
 * and every call hosts a fault-injection hook.
 *
 * The persistence stack (profile store, index snapshots, trace files)
 * funnels its opens/reads/writes/fsyncs/renames through this one
 * layer, which buys two things at once:
 *
 *  - **Errors that name themselves.** An IoError always says which
 *    operation failed, on which path, with which errno — "write
 *    failed" with no path can never reach a user again.
 *
 *  - **One injection surface.** Each call evaluates the failpoint
 *    named "<sitePrefix>.<op>" (e.g. prefix "store.put" makes the
 *    write call evaluate "store.put.write"), so arming a spec drills
 *    faults into all three on-disk formats without per-format hooks;
 *    see failpoint.hh for the spec grammar and registry.
 *
 * The helpers cover the two shapes the formats actually use: slurp a
 * whole file for in-memory parsing (readFileBytes), and the atomic
 * write-.tmp/fsync/rename commit that is the repo-wide durability
 * idiom (atomicWriteFile, or a streaming CheckedFile + checkedRename
 * for the trace writer). Failed commits always remove their .tmp, so
 * debris from one failed attempt never blocks the next.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace mica::util
{

/** A failed file operation: what, where, and the OS's why. */
class IoError : public std::runtime_error
{
  public:
    IoError(const std::string &op, const std::string &path, int err);

    /** @return the failed operation ("open", "write", "rename", …). */
    const std::string &op() const { return op_; }

    /** @return the file the operation was on. */
    const std::string &path() const { return path_; }

    /** @return the errno (ENOENT, EACCES, ENOSPC, …; 0 = logical). */
    int code() const { return err_; }

  private:
    std::string op_;
    std::string path_;
    int err_;
};

/**
 * RAII wrapper around one file descriptor. Every method throws
 * IoError on failure (looping on EINTR first) and evaluates the
 * "<sitePrefix>.<op>" failpoint before touching the fd. Move-only;
 * the destructor closes silently — call close() for a checked close.
 */
class CheckedFile
{
  public:
    /** Open @p path read-only. @throws IoError (code ENOENT when absent). */
    static CheckedFile openRead(const std::string &path,
                                const std::string &sitePrefix);

    /** Create/truncate @p path for writing. @throws IoError. */
    static CheckedFile openWrite(const std::string &path,
                                 const std::string &sitePrefix);

    CheckedFile() = default;
    ~CheckedFile();

    CheckedFile(CheckedFile &&other) noexcept;
    CheckedFile &operator=(CheckedFile &&other) noexcept;
    CheckedFile(const CheckedFile &) = delete;
    CheckedFile &operator=(const CheckedFile &) = delete;

    /** Write all @p n bytes. @throws IoError (short write = ENOSPC). */
    void writeAll(const void *buf, size_t n);

    /** Read exactly @p n bytes; premature EOF throws (code 0). */
    void readExact(void *buf, size_t n);

    /** Read up to @p n bytes. @return bytes read (0 at EOF). */
    size_t readUpTo(void *buf, size_t n);

    /** Reposition to absolute offset @p off. */
    void seekTo(uint64_t off);

    /** @return file size via fstat. */
    uint64_t size();

    /** fsync the fd (the durability point of a commit). */
    void syncToDisk();

    /** Checked close; idempotent. */
    void close();

    bool isOpen() const { return fd_ >= 0; }

    const std::string &path() const { return path_; }

  private:
    int fd_ = -1;
    std::string path_;
    std::string prefix_;
};

/** Checked ::rename evaluating "<sitePrefix>.rename". @throws IoError. */
void checkedRename(const std::string &from, const std::string &to,
                   const std::string &sitePrefix);

/**
 * Slurp a whole file into memory for parsing.
 * @throws IoError; callers treat code()==ENOENT as "absent, normal".
 */
std::string readFileBytes(const std::string &path,
                          const std::string &sitePrefix);

/**
 * The atomic-commit idiom in one call: write @p n bytes to
 * "<path>.tmp", fsync, and rename into place. On any failure the .tmp
 * is removed and the previous @p path (if any) is left untouched.
 * @throws IoError naming the step that failed.
 */
void atomicWriteFile(const std::string &path, const void *data, size_t n,
                     const std::string &sitePrefix);

inline void
atomicWriteFile(const std::string &path, const std::string &data,
                const std::string &sitePrefix)
{
    atomicWriteFile(path, data.data(), data.size(), sitePrefix);
}

} // namespace mica::util
