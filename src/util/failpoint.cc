#include "failpoint.hh"

#if MICA_FAILPOINTS

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>
#include <random>
#include <stdexcept>
#include <unordered_map>

#include "obs/obs.hh"

namespace mica::util
{

namespace
{

/**
 * The fixed site registry. Names are string literals so FailDecision
 * can point at them without lifetime concerns; the write-site flag
 * marks the durable-write paths the crash matrix must cover. Adding
 * an instrumented call site means adding a row here — arming a name
 * that is not in this table is a spec error, so the registry can
 * never drift silently behind the code.
 */
struct SiteDef
{
    const char *name;
    bool writeSite;
};

constexpr SiteDef kSites[] = {
    // Profile store commit (put: serialize + .tmp + rename).
    {"store.put.open", true},
    {"store.put.write", true},
    {"store.put.fsync", true},
    {"store.put.rename", true},
    // Profile store load.
    {"store.load.open", false},
    {"store.load.read", false},
    // Index snapshot save (.tmp + rename) and load.
    {"index.snapshot.open", true},
    {"index.snapshot.write", true},
    {"index.snapshot.fsync", true},
    {"index.snapshot.rename", true},
    {"index.load.open", false},
    {"index.load.read", false},
    // Trace recording (.tmp + rename) and the read paths.
    {"trace.record.open", true},
    {"trace.record.write", true},
    {"trace.record.fsync", true},
    {"trace.record.rename", true},
    {"trace.probe.open", false},
    {"trace.probe.read", false},
    {"trace.chunk.read", false},
    {"trace.replay.open", false},
    // Analyzer-stage hook (sweep quarantine of a throwing job).
    {"pipeline.analyze", false},
    // Service daemon connection handling: a fired site fails one
    // client's accept/read/write, which quarantines that connection —
    // the daemon itself must stay up (tested in CI's serve smoke).
    {"serve.accept", false},
    {"serve.read", false},
    {"serve.write", false},
};

constexpr size_t kSiteCount = sizeof(kSites) / sizeof(kSites[0]);

enum class TriggerKind : uint8_t
{
    Always,    ///< fire every evaluation
    Once,      ///< fire on evaluation #n only
    Every,     ///< fire on every nth evaluation
    Prob,      ///< fire with probability p (seeded RNG)
};

struct ArmedPoint
{
    FailOp op = FailOp::None;
    int err = EIO;
    uint64_t param = 0;
    TriggerKind trigger = TriggerKind::Always;
    uint64_t n = 1;
    double p = 0.0;
    std::mt19937_64 rng;
};

struct SiteState
{
    uint64_t hits = 0;
    uint64_t fired = 0;
    bool armed = false;
    ArmedPoint point;
};

/**
 * All arming/eval state behind one mutex. The unarmed fast path never
 * takes it (one relaxed load of gArmedSites); once a spec is armed the
 * run is a fault drill, not a benchmark, so slow-path cost is fine —
 * and the lock makes hit counting exact across worker threads.
 */
std::mutex gMu;
std::atomic<uint32_t> gArmedSites{0};
SiteState gState[kSiteCount];

uint32_t
siteIndex(const std::string &name)
{
    static const std::unordered_map<std::string, uint32_t> byName = [] {
        std::unordered_map<std::string, uint32_t> m;
        for (uint32_t i = 0; i < kSiteCount; ++i)
            m.emplace(kSites[i].name, i);
        return m;
    }();
    auto it = byName.find(name);
    return it == byName.end() ? UINT32_MAX : it->second;
}

bool
parseErrno(const std::string &tok, int *out)
{
    static const std::unordered_map<std::string, int> names = {
        {"EIO", EIO},       {"ENOSPC", ENOSPC}, {"EACCES", EACCES},
        {"ENOENT", ENOENT}, {"EINTR", EINTR},   {"EBADF", EBADF},
        {"EPERM", EPERM},   {"EROFS", EROFS},   {"EMFILE", EMFILE},
    };
    auto it = names.find(tok);
    if (it != names.end()) {
        *out = it->second;
        return true;
    }
    char *end = nullptr;
    long v = std::strtol(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0' || v <= 0 || v > 4096)
        return false;
    *out = int(v);
    return true;
}

bool
parseU64(const std::string &tok, uint64_t *out)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0')
        return false;
    *out = v;
    return true;
}

/** Parse one `NAME=ACTION[:ARG][@N|,k=v...]` token into *slot. */
bool
parsePoint(const std::string &tok, uint32_t *siteOut, ArmedPoint *slot,
           std::string *err)
{
    auto bad = [&](const std::string &why) {
        if (err)
            *err = "failpoint spec \"" + tok + "\": " + why;
        return false;
    };

    size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0)
        return bad("expected NAME=ACTION");
    std::string name = tok.substr(0, eq);
    *siteOut = siteIndex(name);
    if (*siteOut == UINT32_MAX)
        return bad("unknown failpoint \"" + name +
                   "\" (see `mica faults ls`)");

    // ACTION[:ARG] runs up to the first '@' or ',' (trigger part).
    std::string rest = tok.substr(eq + 1);
    size_t trig = rest.find_first_of("@,");
    std::string actionArg = rest.substr(0, trig);
    std::string trigger =
        trig == std::string::npos ? "" : rest.substr(trig);

    size_t colon = actionArg.find(':');
    std::string action = actionArg.substr(0, colon);
    std::string arg =
        colon == std::string::npos ? "" : actionArg.substr(colon + 1);

    ArmedPoint pt;
    if (action == "error") {
        pt.op = FailOp::Error;
        if (!arg.empty() && !parseErrno(arg, &pt.err))
            return bad("bad errno \"" + arg + "\"");
    } else if (action == "shortwrite") {
        pt.op = FailOp::ShortWrite;
        pt.err = ENOSPC;
        pt.param = UINT64_MAX;    // "half the buffer" sentinel
        if (!arg.empty() && !parseU64(arg, &pt.param))
            return bad("bad byte count \"" + arg + "\"");
    } else if (action == "throw") {
        pt.op = FailOp::Throw;
    } else if (action == "delay") {
        pt.op = FailOp::Delay;
        pt.param = 10;
        if (!arg.empty() && !parseU64(arg, &pt.param))
            return bad("bad delay \"" + arg + "\"");
    } else if (action == "abort") {
        pt.op = FailOp::Abort;
    } else if (action == "off") {
        pt.op = FailOp::None;
    } else {
        return bad("unknown action \"" + action + "\"");
    }

    // Trigger: "@N" or ",key=value" pairs.
    uint64_t seed = 1;
    bool haveSeed = false;
    if (!trigger.empty() && trigger[0] == '@') {
        pt.trigger = TriggerKind::Once;
        if (!parseU64(trigger.substr(1), &pt.n) || pt.n == 0)
            return bad("bad @N trigger \"" + trigger + "\"");
    } else if (!trigger.empty()) {
        std::string s = trigger;
        while (!s.empty()) {
            if (s[0] != ',')
                return bad("bad trigger near \"" + s + "\"");
            s.erase(0, 1);
            size_t next = s.find(',');
            std::string kv = s.substr(0, next);
            s = next == std::string::npos ? "" : s.substr(next);
            size_t kveq = kv.find('=');
            if (kveq == std::string::npos)
                return bad("bad trigger token \"" + kv + "\"");
            std::string k = kv.substr(0, kveq);
            std::string v = kv.substr(kveq + 1);
            if (k == "every") {
                pt.trigger = TriggerKind::Every;
                if (!parseU64(v, &pt.n) || pt.n == 0)
                    return bad("bad every=N \"" + v + "\"");
            } else if (k == "p") {
                pt.trigger = TriggerKind::Prob;
                char *end = nullptr;
                pt.p = std::strtod(v.c_str(), &end);
                if (end == v.c_str() || *end != '\0' || pt.p < 0.0 ||
                    pt.p > 1.0)
                    return bad("bad p=P \"" + v + "\" (want [0,1])");
            } else if (k == "seed") {
                haveSeed = true;
                if (!parseU64(v, &seed))
                    return bad("bad seed \"" + v + "\"");
            } else {
                return bad("unknown trigger key \"" + k + "\"");
            }
        }
        if (haveSeed && pt.trigger != TriggerKind::Prob)
            return bad("seed= only applies with p=");
    }
    pt.rng.seed(seed);

    *slot = std::move(pt);
    return true;
}

} // namespace

bool
armFailpoints(const std::string &spec, std::string *err)
{
    // Parse the whole spec before touching live state, so a bad spec
    // never leaves a half-armed configuration behind.
    std::vector<std::pair<uint32_t, ArmedPoint>> parsed;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t semi = spec.find(';', pos);
        std::string tok = spec.substr(
            pos, semi == std::string::npos ? std::string::npos
                                          : semi - pos);
        pos = semi == std::string::npos ? spec.size() : semi + 1;
        if (tok.empty())
            continue;
        uint32_t site = 0;
        ArmedPoint pt;
        if (!parsePoint(tok, &site, &pt, err))
            return false;
        parsed.emplace_back(site, std::move(pt));
    }

    std::lock_guard<std::mutex> lk(gMu);
    for (auto &st : gState)
        st = SiteState{};
    uint32_t armed = 0;
    for (auto &[site, pt] : parsed) {
        // Later tokens override earlier ones (lets a caller mask a
        // point from an inherited env spec with `name=off`).
        if (gState[site].armed)
            --armed;
        gState[site].armed = pt.op != FailOp::None;
        gState[site].point = std::move(pt);
        if (gState[site].armed)
            ++armed;
    }
    gArmedSites.store(armed, std::memory_order_release);
    return true;
}

void
disarmFailpoints()
{
    std::lock_guard<std::mutex> lk(gMu);
    for (auto &st : gState)
        st = SiteState{};
    gArmedSites.store(0, std::memory_order_release);
}

bool
failpointsArmed()
{
    return gArmedSites.load(std::memory_order_acquire) != 0;
}

uint64_t
failpointFireCount(const std::string &name)
{
    uint32_t site = siteIndex(name);
    if (site == UINT32_MAX)
        return 0;
    std::lock_guard<std::mutex> lk(gMu);
    return gState[site].fired;
}

const std::vector<FailpointInfo> &
knownFailpoints()
{
    static const std::vector<FailpointInfo> infos = [] {
        std::vector<FailpointInfo> v;
        v.reserve(kSiteCount);
        for (const auto &s : kSites)
            v.push_back({s.name, s.writeSite});
        return v;
    }();
    return infos;
}

namespace
{

FailDecision
evalSite(uint32_t site) noexcept
{
    if (gArmedSites.load(std::memory_order_relaxed) == 0)
        return {};

    std::lock_guard<std::mutex> lk(gMu);
    SiteState &st = gState[site];
    if (!st.armed)
        return {};
    ++st.hits;

    ArmedPoint &pt = st.point;
    bool fire = false;
    switch (pt.trigger) {
      case TriggerKind::Always:
        fire = true;
        break;
      case TriggerKind::Once:
        fire = st.hits == pt.n;
        break;
      case TriggerKind::Every:
        fire = st.hits % pt.n == 0;
        break;
      case TriggerKind::Prob: {
        std::uniform_real_distribution<double> dist(0.0, 1.0);
        fire = dist(pt.rng) < pt.p;
        break;
      }
    }
    if (!fire)
        return {};

    ++st.fired;
    static obs::Counter fired("failpoint.fired");
    fired.add(1);
    return {pt.op, pt.err, pt.param, kSites[site].name};
}

} // namespace

Failpoint::Failpoint(const std::string &name) : site_(siteIndex(name))
{
    if (site_ == UINT32_MAX)
        throw std::logic_error(
            "failpoint site \"" + name +
            "\" is not in the registry (src/util/failpoint.cc)");
}

FailDecision
Failpoint::eval() noexcept
{
    return evalSite(site_);
}

FailDecision
evalFailpoint(const std::string &name) noexcept
{
    if (gArmedSites.load(std::memory_order_relaxed) == 0)
        return {};
    const uint32_t site = siteIndex(name);
    return site == UINT32_MAX ? FailDecision{} : evalSite(site);
}

} // namespace mica::util

#endif // MICA_FAILPOINTS
