/**
 * @file
 * Dynamic instruction record: the unit of work of every trace analyzer.
 *
 * A trace source (the mini-ISA interpreter, a replay buffer, a synthetic
 * generator) produces a stream of InstRecord values. This mirrors what the
 * paper's ATOM instrumentation exposes per dynamic instruction: the class
 * of the operation, its register operands, the effective address of memory
 * operations, and the outcome of control transfers.
 */

#pragma once

#include <array>
#include <cstdint>

namespace mica
{

/**
 * Coarse operation classes. These are the classes the MICA instruction-mix
 * characteristics are defined over (Table II, characteristics 1-6):
 * loads, stores, control transfers, integer arithmetic, integer multiply,
 * and floating-point operations.
 */
enum class InstClass : uint8_t
{
    IntAlu,     ///< integer add/sub/logic/shift/compare
    IntMul,     ///< integer multiply
    IntDiv,     ///< integer divide / remainder
    FpAlu,      ///< floating-point add/sub/compare/convert
    FpMul,      ///< floating-point multiply
    FpDiv,      ///< floating-point divide / sqrt
    Load,       ///< memory read
    Store,      ///< memory write
    Branch,     ///< conditional control transfer
    Jump,       ///< unconditional direct jump
    Call,       ///< subroutine call (direct or indirect)
    Return,     ///< subroutine return / indirect jump
    Nop,        ///< no architectural effect
};

/** Number of distinct InstClass values. */
constexpr int kNumInstClasses = 13;

/** @return true for any control-transfer class (chars. 3 of Table II). */
constexpr bool
isControlClass(InstClass c)
{
    return c == InstClass::Branch || c == InstClass::Jump ||
           c == InstClass::Call || c == InstClass::Return;
}

/** @return true for floating-point operation classes. */
constexpr bool
isFpClass(InstClass c)
{
    return c == InstClass::FpAlu || c == InstClass::FpMul ||
           c == InstClass::FpDiv;
}

/** @return true for integer arithmetic classes (excluding multiplies). */
constexpr bool
isIntArithClass(InstClass c)
{
    return c == InstClass::IntAlu || c == InstClass::IntDiv;
}

/**
 * Unified register-id space shared by all analyzers.
 *
 * Integer registers are 0..31 and floating-point registers are 32..63.
 * Register 0 is hardwired to zero (like Alpha's r31 / RISC-V's x0) and is
 * excluded from register-traffic accounting by the analyzers.
 */
constexpr uint16_t kNumIntRegs = 32;
constexpr uint16_t kNumFpRegs = 32;
constexpr uint16_t kNumRegs = kNumIntRegs + kNumFpRegs;
constexpr uint16_t kZeroReg = 0;
constexpr uint16_t kInvalidReg = 0xffff;

/**
 * One dynamic instruction, as observed by the instrumentation layer.
 *
 * Field validity rules:
 *  - srcRegs[0..numSrcRegs-1] are valid source register ids;
 *  - dstReg is kInvalidReg when the instruction writes no register;
 *  - memAddr/memSize are meaningful only when cls is Load or Store;
 *  - taken/target are meaningful only for control-transfer classes
 *    (unconditional transfers report taken = true).
 */
struct InstRecord
{
    uint64_t pc = 0;            ///< address of the instruction itself
    InstClass cls = InstClass::Nop;

    uint8_t numSrcRegs = 0;     ///< number of valid entries in srcRegs
    std::array<uint16_t, 3> srcRegs = {kInvalidReg, kInvalidReg,
                                       kInvalidReg};
    uint16_t dstReg = kInvalidReg;

    uint64_t memAddr = 0;       ///< effective address (Load/Store only)
    uint8_t memSize = 0;        ///< access size in bytes (Load/Store only)

    bool taken = false;         ///< control transfer outcome
    uint64_t target = 0;        ///< control transfer destination

    /** @return true if this record is a memory access. */
    bool isMem() const
    {
        return cls == InstClass::Load || cls == InstClass::Store;
    }

    /** @return true if this record is any control transfer. */
    bool isControl() const { return isControlClass(cls); }

    /** @return true if this record is a conditional branch. */
    bool isCondBranch() const { return cls == InstClass::Branch; }

    /** @return true if this record writes a destination register. */
    bool hasDst() const { return dstReg != kInvalidReg; }
};

} // namespace mica
