/**
 * @file
 * File-backed trace recording and replay.
 *
 * The paper's methodology is defined over dynamic instruction traces,
 * but until this subsystem every trace had to come from the built-in
 * mini-ISA interpreter. A versioned binary trace format decouples the
 * two: any TraceSource can be teed to disk once (RecordingSource +
 * TraceFileWriter) and replayed any number of times, byte-identically,
 * by either of two readers — a streamed FileTraceSource and an
 * mmap-backed MappedTraceSource whose spans point straight into the
 * mapping (zero copy). A lenient text reader covers hand-made traces.
 *
 * Format (all integers native-endian; a byte-swapped file fails the
 * version check and is rejected):
 *
 *   header, 48 bytes:
 *     char[8]  magic        "MICATRC\n"
 *     u32      version      1 (raw records) or 2 (columnar)
 *     u32      recordBytes  sizeof(InstRecord)
 *     u64      layoutHash   kTraceLayoutHash (field offsets + sizes)
 *     u64      recordCount  total records (kTraceUnfinished until the
 *                           writer's close() patches it)
 *     u64      payloadBytes total bytes of all chunks after the header
 *     u64      payloadHash  FNV-1a over every payload byte
 *   v1 payload: a sequence of chunks
 *     u32      chunkMagic   kTraceChunkMagic ("TCHK")
 *     u32      count        records in this chunk (> 0)
 *     InstRecord[count]     raw records, padding bytes zeroed
 *   v2 payload: a sequence of columnar chunks
 *     u32      chunkMagic   kTraceChunkMagicV2 ("TCH2")
 *     u32      count        records in this chunk (> 0)
 *     u32[6]   colBytes     byte length of each column stream
 *     byte[..] columns      the six streams, concatenated in column
 *                           order (see trace/columnar.hh)
 *
 * A v1 chunk advances the file offset by 8 + count * sizeof(InstRecord)
 * with records 8-byte aligned, so the mmap reader lends InstRecord
 * spans directly out of the mapping. A v2 chunk stores the same records
 * as delta/varint/bit-packed column streams (~5 bytes per record
 * instead of 48); it must be decoded, so v2 files replay through the
 * streamed reader (MappedTraceSource is v1-only). Readers dispatch
 * on the header version; both versions stay readable forever.
 *
 * Every reader validates the whole chunk structure AND the payload
 * checksum up front (one sequential read at open; for v2 the probe
 * fully decodes every chunk so corruption is reported per column) and
 * rejects corrupt, truncated, or version/layout-mismatched files with
 * a TraceFileError naming the file and the reason — a bad trace file
 * can never silently degrade into re-interpreting, partial replay, or
 * replaying flipped bits.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/inst_record.hh"
#include "trace/trace_source.hh"
#include "util/checked_io.hh"

namespace mica
{

/** Format 1: chunks of raw 8-byte-aligned InstRecords (mmap-able). */
constexpr uint32_t kTraceFormatV1 = 1;

/** Format 2: columnar chunks (delta/varint/bit-packed streams). */
constexpr uint32_t kTraceFormatV2 = 2;

/** Newest format this build can read and write. */
constexpr uint32_t kTraceFormatLatest = kTraceFormatV2;

/** Sentinel recordCount of a recording whose writer never closed. */
constexpr uint64_t kTraceUnfinished = ~0ull;

/**
 * Hash of the InstRecord memory layout (size, alignment, and every
 * field's offset + size). Recorded in the header and compared on open,
 * so a trace written by a build with a different record layout is
 * rejected instead of reinterpreting its bytes as garbage.
 */
constexpr uint64_t
traceLayoutHash()
{
    uint64_t h = 14695981039346656037ull;   // FNV-1a
    const uint64_t parts[] = {
        sizeof(InstRecord), alignof(InstRecord),
        offsetof(InstRecord, pc), sizeof(uint64_t),
        offsetof(InstRecord, cls), sizeof(InstClass),
        offsetof(InstRecord, numSrcRegs), sizeof(uint8_t),
        offsetof(InstRecord, srcRegs), 3 * sizeof(uint16_t),
        offsetof(InstRecord, dstReg), sizeof(uint16_t),
        offsetof(InstRecord, memAddr), sizeof(uint64_t),
        offsetof(InstRecord, memSize), sizeof(uint8_t),
        offsetof(InstRecord, taken), sizeof(bool),
        offsetof(InstRecord, target), sizeof(uint64_t),
        static_cast<uint64_t>(kNumInstClasses),
    };
    for (uint64_t v : parts) {
        h ^= v;
        h *= 1099511628211ull;
    }
    return h;
}

constexpr uint64_t kTraceLayoutHash = traceLayoutHash();

/**
 * Every trace-file failure carries the file path, a reason, and —
 * when the OS was involved — the errno, so callers can distinguish a
 * missing file (ENOENT) from a permission problem (EACCES) from
 * corruption (code() == 0) without parsing the message.
 */
class TraceFileError : public std::runtime_error
{
  public:
    TraceFileError(const std::string &path, const std::string &reason,
                   int err = 0)
        : std::runtime_error("trace file " + path + ": " + reason),
          err_(err)
    {}

    /** @return the errno, or 0 for format/corruption failures. */
    int code() const { return err_; }

  private:
    int err_;
};

/** Header facts of one validated binary trace file. */
struct TraceFileInfo
{
    uint32_t version = 0;       ///< trace format version (1 or 2)
    uint64_t recordCount = 0;   ///< total records across all chunks
    uint64_t payloadBytes = 0;  ///< bytes after the 48-byte header
    uint64_t chunkCount = 0;    ///< number of payload chunks
    uint64_t payloadHash = 0;   ///< verified FNV-1a of the payload
};

/** Word-folding FNV-1a, the hash the trace format uses throughout. */
uint64_t fnv1a(const void *data, size_t n,
               uint64_t h = 14695981039346656037ull);

/**
 * Validate @p path as a binary trace file: header fields, exact file
 * size, and the full chunk chain (magics, counts, and their sum).
 *
 * @return the validated header facts.
 * @throws TraceFileError naming the file and the failed check.
 */
TraceFileInfo probeTraceFile(const std::string &path);

/**
 * Streaming writer for the binary trace format.
 *
 * Records are buffered into fixed-size chunks and flushed as each
 * chunk fills. All bytes go to "<path>.tmp"; close() patches the
 * final record count into the header and renames the file into place,
 * so readers only ever see complete traces — a crash mid-recording
 * leaves at most a stale .tmp sibling, never a torn trace file.
 */
class TraceFileWriter
{
  public:
    /** Records buffered per v1 chunk (192 KB of payload). */
    static constexpr size_t kChunkRecords = 4096;

    /**
     * Records buffered per v2 chunk. Columnar encoding amortizes the
     * 32-byte chunk header and the per-chunk delta restart over more
     * records; the decode scratch stays well under 1 MB.
     */
    static constexpr size_t kChunkRecordsV2 = 16384;

    /**
     * Create the destination directory if needed and open the .tmp
     * sibling.
     * @param version on-disk format: kTraceFormatV1 (raw records) or
     *        kTraceFormatV2 (columnar).
     * @throws TraceFileError when the file cannot be opened or
     *         @p version is unknown.
     */
    explicit TraceFileWriter(const std::string &path,
                             uint32_t version = kTraceFormatV1);

    /** Discards the .tmp file unless close() already ran. */
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    /** Append one record. */
    void append(const InstRecord &rec);

    /** Append @p n records. */
    void append(const InstRecord *recs, size_t n);

    /**
     * Flush pending records, finalize the header, and atomically
     * rename the .tmp file to the destination path.
     * @throws TraceFileError when any write or the rename fails.
     */
    void close();

    /** Abandon the recording and delete the .tmp file. */
    void abort();

    /** @return records appended so far. */
    uint64_t recordCount() const { return count_; }

    /** @return the destination path. */
    const std::string &path() const { return path_; }

    /** @return the on-disk format version being written. */
    uint32_t version() const { return version_; }

  private:
    void flushChunk();

    std::string path_;
    std::string tmpPath_;
    uint32_t version_ = kTraceFormatV1;
    size_t chunkCap_ = kChunkRecords;
    util::CheckedFile out_;
    std::vector<InstRecord> chunk_;
    std::string enc_;           ///< reused v2 chunk encode buffer
    uint64_t count_ = 0;
    uint64_t payloadBytes_ = 0;
    uint64_t payloadHash_ = 14695981039346656037ull;    // FNV-1a basis
    bool open_ = false;
};

/**
 * Streamed reader: one buffered chunk in memory at a time, so replay
 * cost is O(chunk) memory regardless of trace length. Supports
 * reset(); spans point into the internal chunk buffer.
 */
class FileTraceSource : public TraceSource
{
  public:
    /**
     * @param known facts from an earlier probeTraceFile of this file:
     *        when given, the constructor re-validates only the header
     *        (cheap) instead of re-reading the whole payload — the
     *        chunk-level guards still reject a file that changed
     *        underneath. When omitted, the file is fully probed.
     * @throws TraceFileError when the file fails validation.
     */
    explicit FileTraceSource(const std::string &path,
                             const TraceFileInfo *known = nullptr);

    bool next(InstRecord &rec) override;
    size_t nextBatch(InstRecord *buf, size_t n) override;
    size_t nextSpan(const InstRecord *&span, InstRecord *buf,
                    size_t n) override;
    bool reset() override;

    /** @return total records in the file. */
    uint64_t recordCount() const { return info_.recordCount; }

  private:
    /** Load the next chunk into buf_; @return false at end of trace. */
    bool refill();

    std::string path_;
    TraceFileInfo info_;
    util::CheckedFile in_;
    std::vector<InstRecord> buf_;
    std::vector<char> enc_;     ///< reused v2 column payload buffer
    size_t pos_ = 0;            ///< consumed records within buf_
    uint64_t chunksRead_ = 0;
};

/**
 * mmap-backed reader: the whole file is mapped read-only and
 * nextSpan() lends records directly out of the mapping — zero copies
 * on the profiling hot path (chunks keep records 8-byte aligned).
 * Supports reset(). v1-only by design: a v2 file stores encoded
 * columns, not InstRecord bytes, so there is nothing to lend spans
 * out of — the constructor rejects v2 files and points at the
 * streamed reader.
 */
class MappedTraceSource : public TraceSource
{
  public:
    /**
     * @param known as for FileTraceSource: skips the full payload
     *        re-probe; the mapping's header and size are still
     *        verified and every chunk walk is bounds-checked.
     * @throws TraceFileError when the file fails validation or mmap.
     */
    explicit MappedTraceSource(const std::string &path,
                               const TraceFileInfo *known = nullptr);

    ~MappedTraceSource() override;

    MappedTraceSource(const MappedTraceSource &) = delete;
    MappedTraceSource &operator=(const MappedTraceSource &) = delete;

    bool next(InstRecord &rec) override;
    size_t nextBatch(InstRecord *buf, size_t n) override;
    size_t nextSpan(const InstRecord *&span, InstRecord *buf,
                    size_t n) override;
    bool reset() override;

    /** @return total records in the file. */
    uint64_t recordCount() const { return info_.recordCount; }

  private:
    /** Position cursor at the next chunk; @return false at end. */
    bool advanceChunk();

    std::string path_;
    TraceFileInfo info_;
    const char *base_ = nullptr;    ///< mapping base (nullptr if empty)
    size_t mapBytes_ = 0;
    const char *cursor_ = nullptr;  ///< next unread chunk header
    const InstRecord *recs_ = nullptr;  ///< next record in current chunk
    size_t left_ = 0;               ///< records left in current chunk
};

/**
 * Tees every record pulled through it to a TraceFileWriter, whatever
 * mix of next()/nextBatch()/nextSpan() the consumer uses — each
 * consumed record is written exactly once, in trace order. The
 * wrapper is single-pass: reset() refuses (a rewound replay would be
 * recorded twice), so record a fresh wrapper per pass instead.
 */
class RecordingSource : public TraceSource
{
  public:
    RecordingSource(TraceSource &inner, TraceFileWriter &writer)
        : inner_(inner), writer_(writer)
    {}

    bool
    next(InstRecord &rec) override
    {
        if (!inner_.next(rec))
            return false;
        writer_.append(rec);
        return true;
    }

    size_t
    nextBatch(InstRecord *buf, size_t n) override
    {
        const size_t got = inner_.nextBatch(buf, n);
        writer_.append(buf, got);
        return got;
    }

    size_t
    nextSpan(const InstRecord *&span, InstRecord *buf, size_t n) override
    {
        const size_t got = inner_.nextSpan(span, buf, n);
        writer_.append(span, got);
        return got;
    }

    bool reset() override { return false; }

  private:
    TraceSource &inner_;
    TraceFileWriter &writer_;
};

/**
 * Parse a hand-made text trace. One record per line:
 *
 *   # comment                (blank lines and '#' comments skipped)
 *   load  pc=0x400000 addr=0x10000 size=8 dst=3 src=1:2
 *   alu   dst=4 src=3
 *   branch pc=0x400008 taken=1 target=0x400000
 *
 * The first token is the instruction class (case-insensitive; the
 * aliases ld/st/br/jmp/ret/mul/div are accepted), followed by
 * whitespace- or comma-separated key=value fields: pc, addr, size,
 * dst, src (colon-separated list), taken (0/1/true/false), target.
 * The reader is lenient: unknown keys and malformed values are
 * ignored, missing fields get sensible defaults (sequential PCs,
 * 8-byte accesses, unconditional transfers taken) — but an unknown
 * instruction class throws TraceFileError naming the line, because
 * silently dropping instructions would skew every characteristic.
 *
 * @param what label used in error messages (e.g. the file path)
 */
std::vector<InstRecord> parseTextTrace(std::istream &in,
                                       const std::string &what);

/** Read a text trace file. @throws TraceFileError (open or parse). */
std::vector<InstRecord> readTextTrace(const std::string &path);

/**
 * Open a trace file with the reader its contents call for: binary
 * ".trace" files dispatch on the header format version — v1 via
 * MappedTraceSource (or FileTraceSource when @p streamed), v2 always
 * via the streamed FileTraceSource — and ".csv"/".txt" text traces
 * replay from a parsed buffer.
 * @param known optional earlier probe result for binary files (see
 *        the reader constructors); when omitted the file is probed
 *        here so the version dispatch can read it. Ignored for text
 *        traces.
 * @throws TraceFileError when the file fails validation.
 */
std::unique_ptr<TraceSource> openTraceFile(const std::string &path,
                                           bool streamed = false,
                                           const TraceFileInfo *known =
                                               nullptr);

/** Facts reported by convertTraceFile. */
struct TraceConvertStats
{
    uint32_t srcVersion = 0;    ///< format of the source file
    uint32_t dstVersion = 0;    ///< format written
    uint64_t records = 0;       ///< records copied
    uint64_t srcBytes = 0;      ///< source file size on disk
    uint64_t dstBytes = 0;      ///< destination file size on disk
};

/**
 * Re-encode the binary trace at @p src into @p dst with format
 * @p dstVersion (written atomically via the normal .tmp + rename
 * writer path), then re-open both files and verify them
 * record-identical — every record of @p dst must equal the canonical
 * form (trace/columnar.hh) of the corresponding @p src record.
 *
 * @throws TraceFileError when @p src fails validation, the write
 *         fails, or — after deleting @p dst — verification fails.
 */
TraceConvertStats convertTraceFile(const std::string &src,
                                   const std::string &dst,
                                   uint32_t dstVersion);

/**
 * Replay @p a and @p b side by side and compare canonicalized records.
 * @param why receives a description of the first difference.
 * @return true when both traces hold identical records.
 */
bool traceRecordsIdentical(const std::string &a, const std::string &b,
                           std::string &why);

} // namespace mica
