/**
 * @file
 * Abstract interfaces for producers and consumers of instruction traces.
 */

#pragma once

#include <cstdint>

#include "trace/inst_record.hh"

namespace mica
{

/**
 * A pull-based producer of dynamic instructions.
 *
 * Sources are single-pass by default; sources that can be re-run (e.g.,
 * the interpreter, replay buffers) override reset().
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next dynamic instruction.
     *
     * @param rec Output record, valid only when the call returns true.
     * @retval true a record was produced.
     * @retval false the trace is exhausted.
     */
    virtual bool next(InstRecord &rec) = 0;

    /**
     * Rewind the source to the beginning of the trace.
     *
     * @retval true the source supports re-running and has been rewound.
     * @retval false the source is single-pass.
     */
    virtual bool reset() { return false; }
};

/**
 * A consumer of dynamic instructions.
 *
 * Analyzers accumulate state over the trace; finish() is invoked exactly
 * once after the last record so analyzers can flush pending state (e.g.,
 * open register-use instances).
 */
class TraceAnalyzer
{
  public:
    virtual ~TraceAnalyzer() = default;

    /** Observe one dynamic instruction. */
    virtual void accept(const InstRecord &rec) = 0;

    /** Called once after the last record of the trace. */
    virtual void finish() {}
};

} // namespace mica
