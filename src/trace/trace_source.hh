/**
 * @file
 * Abstract interfaces for producers and consumers of instruction traces.
 */

#pragma once

#include <cstddef>
#include <cstdint>

#include "trace/inst_record.hh"

namespace mica
{

/**
 * A pull-based producer of dynamic instructions.
 *
 * Sources are single-pass by default; sources that can be re-run (e.g.,
 * the interpreter, replay buffers) override reset().
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next dynamic instruction.
     *
     * @param rec Output record, valid only when the call returns true.
     * @retval true a record was produced.
     * @retval false the trace is exhausted.
     */
    virtual bool next(InstRecord &rec) = 0;

    /**
     * Produce up to n records into buf.
     *
     * The default implementation loops next(), so every source gets
     * the bulk API for free; sources with cheap bulk access (replay
     * buffers, generators, the interpreter) override it to amortize
     * the per-record virtual call. A batch is a plain prefix of the
     * record stream: mixing next() and nextBatch() calls observes the
     * same trace in the same order.
     *
     * @param buf destination for up to n records
     * @param n   batch capacity (may be 0)
     * @return number of records produced; < n only at end of trace.
     */
    virtual size_t
    nextBatch(InstRecord *buf, size_t n)
    {
        size_t got = 0;
        while (got < n && next(buf[got]))
            ++got;
        return got;
    }

    /**
     * Borrow the next span of up to n records with no copy when the
     * source already holds materialized records (replay buffers).
     *
     * On return, span points either into the source's own storage or
     * at buf (the default implementation fills buf via nextBatch).
     * The span stays valid until the next call that advances this
     * source. Consumes the same records as nextBatch would.
     *
     * Unlike nextBatch, a span may be shorter than n away from the
     * end of the trace: sources with chunked storage (file-backed
     * traces) lend one chunk's worth at a time, so only a return of 0
     * signals exhaustion. Consumers must loop until 0.
     *
     * @param span out-parameter: start of the produced records
     * @param buf  caller-provided backing store of capacity n
     * @param n    maximum records to produce
     * @return number of records in span; 0 only at end of trace.
     */
    virtual size_t
    nextSpan(const InstRecord *&span, InstRecord *buf, size_t n)
    {
        span = buf;
        return nextBatch(buf, n);
    }

    /**
     * Rewind the source to the beginning of the trace.
     *
     * @retval true the source supports re-running and has been rewound.
     * @retval false the source is single-pass.
     */
    virtual bool reset() { return false; }
};

/**
 * A consumer of dynamic instructions.
 *
 * Analyzers accumulate state over the trace; finish() is invoked exactly
 * once after the last record so analyzers can flush pending state (e.g.,
 * open register-use instances).
 */
class TraceAnalyzer
{
  public:
    virtual ~TraceAnalyzer() = default;

    /**
     * Short stable identifier ("inst_mix", "ppm", ...) used to label
     * telemetry — per-analyzer batch-kernel histograms are named
     * engine.<name>.batch_ns. Not a display string.
     */
    virtual const char *name() const { return "analyzer"; }

    /** Observe one dynamic instruction. */
    virtual void accept(const InstRecord &rec) = 0;

    /**
     * Observe a contiguous span of n dynamic instructions in trace
     * order.
     *
     * The contract: acceptBatch(recs, n) must be observationally
     * identical to calling accept(recs[i]) for i in [0, n) — the
     * default implementation does exactly that, so analyzers that
     * only implement accept() are always correct. Analyzers on the
     * profiling hot path override it so their whole batch loop is one
     * tight, devirtualized kernel: one virtual call per batch instead
     * of one per instruction.
     */
    virtual void
    acceptBatch(const InstRecord *recs, size_t n)
    {
        for (size_t i = 0; i < n; ++i)
            accept(recs[i]);
    }

    /** Called once after the last record of the trace. */
    virtual void finish() {}
};

} // namespace mica
