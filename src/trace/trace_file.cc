#include "trace/trace_file.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "obs/obs.hh"
#include "trace/columnar.hh"
#include "trace/synthetic.hh"
#include "util/failpoint.hh"

namespace mica
{

namespace
{

constexpr char kTraceMagic[8] = {'M', 'I', 'C', 'A', 'T', 'R', 'C', '\n'};
constexpr uint32_t kTraceChunkMagic = 0x4b484354;     // "TCHK"
constexpr uint32_t kTraceChunkMagicV2 = 0x32484354;   // "TCH2"
constexpr size_t kTraceHeaderBytes = 48;
constexpr size_t kChunkHeaderBytes = 8;

/** v2 chunk header: magic, count, and six column byte lengths. */
constexpr size_t kChunkHeaderBytesV2 =
    8 + columnar::kNumColumns * sizeof(uint32_t);

/**
 * Upper bounds a v2 chunk header may claim. The writer emits at most
 * kChunkRecordsV2 records (< 1 MB encoded); these caps only exist so
 * a corrupt or concurrently rewritten file cannot make a reader
 * allocate gigabytes before validation catches up.
 */
constexpr uint32_t kMaxChunkRecordsV2 = 1u << 20;
constexpr uint64_t kMaxChunkPayloadV2 = 64ull << 20;

/** Parsed v2 chunk header (validated against the caps above). */
struct ChunkHeaderV2
{
    uint32_t count = 0;
    uint32_t colBytes[columnar::kNumColumns] = {};
    uint64_t payloadBytes = 0;  ///< sum of colBytes
};

/**
 * Validate the 32 raw bytes of a v2 chunk header. @p remaining is the
 * payload left in the file after this header; @p what distinguishes
 * the probe ("corrupt chunk header at payload offset N") from the
 * replay-path guard ("chunk header changed after open").
 */
ChunkHeaderV2
checkChunkHeaderV2(const char *raw, uint64_t remaining,
                   const std::string &path, const std::string &what)
{
    uint32_t magic = 0;
    ChunkHeaderV2 ch;
    std::memcpy(&magic, raw, sizeof(magic));
    std::memcpy(&ch.count, raw + 4, sizeof(ch.count));
    std::memcpy(ch.colBytes, raw + 8, sizeof(ch.colBytes));
    for (uint32_t b : ch.colBytes)
        ch.payloadBytes += b;
    if (magic != kTraceChunkMagicV2 || ch.count == 0 ||
        ch.count > kMaxChunkRecordsV2 ||
        ch.payloadBytes > kMaxChunkPayloadV2 ||
        ch.payloadBytes > remaining)
        throw TraceFileError(path, what);
    return ch;
}

static_assert(std::is_trivially_copyable<InstRecord>::value,
              "trace files store raw InstRecord bytes");
static_assert(alignof(InstRecord) <= 8,
              "chunk layout only guarantees 8-byte record alignment");

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

/** Fixed-size header, written and patched field by field. */
struct TraceHeader
{
    uint32_t version = kTraceFormatV1;
    uint32_t recordBytes = sizeof(InstRecord);
    uint64_t layoutHash = kTraceLayoutHash;
    uint64_t recordCount = kTraceUnfinished;
    uint64_t payloadBytes = 0;
    uint64_t payloadHash = kFnvOffset;
};

template <typename T>
void
putPod(std::string &out, const T &v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof(T));
}

/** The header's exact on-disk bytes (written whole, and re-patched). */
std::string
headerBytes(const TraceHeader &h)
{
    std::string b;
    b.reserve(kTraceHeaderBytes);
    b.append(kTraceMagic, sizeof(kTraceMagic));
    putPod(b, h.version);
    putPod(b, h.recordBytes);
    putPod(b, h.layoutHash);
    putPod(b, h.recordCount);
    putPod(b, h.payloadBytes);
    putPod(b, h.payloadHash);
    return b;
}

/** Re-raise a checked-I/O failure as this subsystem's error type. */
[[noreturn]] void
rethrowTraceIo(const util::IoError &e)
{
    throw TraceFileError(e.path(),
                         e.op() + " failed: " +
                             (e.code() ? std::strerror(e.code())
                                       : "unexpected end of file"),
                         e.code());
}

/**
 * Act on an armed read-path failpoint: stall for Delay, simulate a
 * crash for Abort, otherwise fail the read with the injected errno.
 */
void
checkReadFailpoint(const char *site, const std::string &path,
                   const char *what)
{
    if (!util::failpointsArmed())
        return;
    util::FailDecision d = util::evalFailpoint(site);
    if (!d)
        return;
    if (d.op == util::FailOp::Delay) {
        std::this_thread::sleep_for(std::chrono::milliseconds(d.param));
        return;
    }
    if (d.op == util::FailOp::Abort)
        ::_exit(util::kCrashExitCode);
    const int err = d.err ? d.err : EIO;
    throw TraceFileError(path,
                         std::string(what) + " failed: " +
                             std::strerror(err),
                         err);
}

/**
 * Parse and check everything a 48-byte header buffer alone can prove;
 * chunk-chain checks need the file size and are done by
 * probeTraceFile.
 */
void
checkHeaderBytes(const char *buf, const std::string &path,
                 TraceHeader &h)
{
    if (std::memcmp(buf, kTraceMagic, sizeof(kTraceMagic)) != 0)
        throw TraceFileError(path, "not a mica trace file (bad magic)");
    std::memcpy(&h.version, buf + 8, sizeof(h.version));
    std::memcpy(&h.recordBytes, buf + 12, sizeof(h.recordBytes));
    std::memcpy(&h.layoutHash, buf + 16, sizeof(h.layoutHash));
    std::memcpy(&h.recordCount, buf + 24, sizeof(h.recordCount));
    std::memcpy(&h.payloadBytes, buf + 32, sizeof(h.payloadBytes));
    std::memcpy(&h.payloadHash, buf + 40, sizeof(h.payloadHash));
    if (h.version < kTraceFormatV1 || h.version > kTraceFormatLatest) {
        throw TraceFileError(
            path, "unsupported trace format version " +
                std::to_string(h.version) + " (this build reads 1.." +
                std::to_string(kTraceFormatLatest) + ")");
    }
    if (h.recordBytes != sizeof(InstRecord) ||
        h.layoutHash != kTraceLayoutHash) {
        throw TraceFileError(path,
                             "record layout mismatch (file recorded by "
                             "an incompatible build)");
    }
    if (h.recordCount == kTraceUnfinished)
        throw TraceFileError(path,
                             "unfinished recording (writer never closed)");
}

} // namespace

/**
 * Incremental FNV-1a folding 8 bytes per step (then byte-at-a-time
 * for the tail). Word-wise keeps the open-time validation pass at a
 * small fraction of replay cost instead of dominating it; detection
 * strength is equivalent for the flipped-bits/truncation corruption
 * this guards against.
 */
uint64_t
fnv1a(const void *data, size_t n, uint64_t h)
{
    const auto *p = static_cast<const unsigned char *>(data);
    while (n >= 8) {
        uint64_t w;
        std::memcpy(&w, p, 8);
        h ^= w;
        h *= kFnvPrime;
        p += 8;
        n -= 8;
    }
    while (n > 0) {
        h ^= *p++;
        h *= kFnvPrime;
        --n;
    }
    return h;
}

TraceFileInfo
probeTraceFile(const std::string &path)
{
    static obs::Histogram validateUs("trace.probe.validate_us");
    obs::ObsSpan sp("trace.probe");
    const uint64_t t0 = obs::nowNs();
    util::CheckedFile in;
    uint64_t fileBytes = 0;
    TraceHeader h;
    try {
        in = util::CheckedFile::openRead(path, "trace.probe");
        fileBytes = in.size();
        char hb[kTraceHeaderBytes] = {};
        const size_t got = in.readUpTo(hb, sizeof(hb));
        // Check the magic before the length so any non-trace file —
        // however short — reports "not a trace", not "truncated".
        if (got < sizeof(kTraceMagic) ||
            std::memcmp(hb, kTraceMagic, sizeof(kTraceMagic)) != 0)
            throw TraceFileError(path,
                                 "not a mica trace file (bad magic)");
        if (got < kTraceHeaderBytes)
            throw TraceFileError(path, "truncated header");
        checkHeaderBytes(hb, path, h);
    } catch (const util::IoError &e) {
        rethrowTraceIo(e);
    }
    if (fileBytes != kTraceHeaderBytes + h.payloadBytes)
        throw TraceFileError(path, "truncated or oversized payload (" +
                                       std::to_string(fileBytes) +
                                       " bytes on disk, header claims " +
                                       std::to_string(kTraceHeaderBytes +
                                                      h.payloadBytes) +
                                       ")");

    // Walk the chunk chain in one sequential read: every chunk
    // magic/count must check out, the counts must add up to exactly
    // the header's record count, and every payload byte feeds the
    // checksum — a flipped bit anywhere rejects the file instead of
    // silently replaying altered records. v2 chunks are additionally
    // decoded in full, so corruption that survives as a structurally
    // valid column stream still rejects — and names the column.
    TraceFileInfo info;
    info.version = h.version;
    info.recordCount = h.recordCount;
    info.payloadBytes = h.payloadBytes;
    uint64_t offset = 0;
    uint64_t records = 0;
    uint64_t hash = kFnvOffset;
    if (h.version == kTraceFormatV1) {
        std::vector<char> io(1 << 20);
        while (offset < h.payloadBytes) {
            if (h.payloadBytes - offset < kChunkHeaderBytes)
                throw TraceFileError(path, "truncated chunk header");
            uint32_t magic = 0, count = 0;
            char ch[kChunkHeaderBytes];
            try {
                in.readExact(ch, sizeof(ch));
            } catch (const util::IoError &e) {
                if (e.code() == 0)
                    throw TraceFileError(path, "truncated chunk header");
                rethrowTraceIo(e);
            }
            std::memcpy(&magic, ch, sizeof(magic));
            std::memcpy(&count, ch + 4, sizeof(count));
            if (magic != kTraceChunkMagic || count == 0)
                throw TraceFileError(path,
                                     "corrupt chunk header at payload "
                                     "offset " + std::to_string(offset));
            hash = fnv1a(&magic, sizeof(magic), hash);
            hash = fnv1a(&count, sizeof(count), hash);
            uint64_t bytes = uint64_t(count) * sizeof(InstRecord);
            if (h.payloadBytes - offset - kChunkHeaderBytes < bytes)
                throw TraceFileError(path, "truncated chunk payload");
            offset += kChunkHeaderBytes + bytes;
            while (bytes > 0) {
                const size_t take = static_cast<size_t>(
                    std::min<uint64_t>(bytes, io.size()));
                try {
                    in.readExact(io.data(), take);
                } catch (const util::IoError &e) {
                    if (e.code() == 0)
                        throw TraceFileError(path,
                                             "truncated chunk payload");
                    rethrowTraceIo(e);
                }
                hash = fnv1a(io.data(), take, hash);
                bytes -= take;
            }
            records += count;
            ++info.chunkCount;
        }
    } else {
        std::vector<char> enc;
        std::vector<InstRecord> scratch;
        while (offset < h.payloadBytes) {
            if (h.payloadBytes - offset < kChunkHeaderBytesV2)
                throw TraceFileError(path, "truncated chunk header");
            char ch[kChunkHeaderBytesV2];
            try {
                in.readExact(ch, sizeof(ch));
            } catch (const util::IoError &e) {
                if (e.code() == 0)
                    throw TraceFileError(path, "truncated chunk header");
                rethrowTraceIo(e);
            }
            const ChunkHeaderV2 hdr = checkChunkHeaderV2(
                ch, h.payloadBytes - offset - kChunkHeaderBytesV2, path,
                "corrupt chunk header at payload offset " +
                    std::to_string(offset));
            hash = fnv1a(ch, sizeof(ch), hash);
            enc.resize(hdr.payloadBytes);
            try {
                in.readExact(enc.data(), enc.size());
            } catch (const util::IoError &e) {
                if (e.code() == 0)
                    throw TraceFileError(path, "truncated chunk payload");
                rethrowTraceIo(e);
            }
            hash = fnv1a(enc.data(), enc.size(), hash);
            scratch.resize(hdr.count);
            columnar::decodeChunk(enc.data(), hdr.colBytes, hdr.count,
                                  scratch.data(), path);
            offset += kChunkHeaderBytesV2 + hdr.payloadBytes;
            records += hdr.count;
            ++info.chunkCount;
        }
    }
    if (records != h.recordCount)
        throw TraceFileError(path, "record count mismatch (header says " +
                                       std::to_string(h.recordCount) +
                                       ", chunks hold " +
                                       std::to_string(records) + ")");
    if (hash != h.payloadHash)
        throw TraceFileError(path, "payload checksum mismatch");
    info.payloadHash = hash;
    validateUs.record((obs::nowNs() - t0) / 1000);
    sp.arg("records", info.recordCount);
    sp.arg("chunks", info.chunkCount);
    return info;
}

// ----------------------------------------------------------------------
// TraceFileWriter
// ----------------------------------------------------------------------

TraceFileWriter::TraceFileWriter(const std::string &path,
                                 uint32_t version)
    : path_(path), tmpPath_(path + ".tmp"), version_(version),
      chunkCap_(version == kTraceFormatV2 ? kChunkRecordsV2
                                          : kChunkRecords)
{
    if (version < kTraceFormatV1 || version > kTraceFormatLatest)
        throw TraceFileError(path, "unknown trace format version " +
                                       std::to_string(version));
    std::error_code ec;
    const auto parent = std::filesystem::path(path).parent_path();
    if (!parent.empty())
        std::filesystem::create_directories(parent, ec);

    try {
        out_ = util::CheckedFile::openWrite(tmpPath_, "trace.record");
        TraceHeader unfinished;
        unfinished.version = version_;
        const std::string h = headerBytes(unfinished);
        out_.writeAll(h.data(), h.size());    // recordCount = unfinished
    } catch (const util::IoError &e) {
        out_ = util::CheckedFile();
        std::filesystem::remove(tmpPath_, ec);
        rethrowTraceIo(e);
    }
    chunk_.reserve(chunkCap_);
    open_ = true;
}

TraceFileWriter::~TraceFileWriter()
{
    if (open_)
        abort();
}

void
TraceFileWriter::append(const InstRecord &rec)
{
    append(&rec, 1);
}

void
TraceFileWriter::append(const InstRecord *recs, size_t n)
{
    // Copy field by field into a once-zeroed scratch record so struct
    // padding bytes land on disk as zeros — recordings of the same
    // trace are byte-identical files, not just equivalent ones.
    InstRecord clean;
    std::memset(static_cast<void *>(&clean), 0, sizeof(clean));
    for (size_t i = 0; i < n; ++i) {
        const InstRecord &r = recs[i];
        clean.pc = r.pc;
        clean.cls = r.cls;
        clean.numSrcRegs = r.numSrcRegs;
        clean.srcRegs = r.srcRegs;
        clean.dstReg = r.dstReg;
        clean.memAddr = r.memAddr;
        clean.memSize = r.memSize;
        clean.taken = r.taken;
        clean.target = r.target;
        chunk_.push_back(clean);
        if (chunk_.size() == chunkCap_)
            flushChunk();
    }
    count_ += n;
}

void
TraceFileWriter::flushChunk()
{
    if (chunk_.empty())
        return;
    const uint32_t count = static_cast<uint32_t>(chunk_.size());
    if (version_ == kTraceFormatV1) {
        const size_t bytes = chunk_.size() * sizeof(InstRecord);
        char ch[kChunkHeaderBytes];
        std::memcpy(ch, &kTraceChunkMagic, sizeof(kTraceChunkMagic));
        std::memcpy(ch + 4, &count, sizeof(count));
        out_.writeAll(ch, sizeof(ch));
        out_.writeAll(chunk_.data(), bytes);
        // Hash magic and count as two 4-byte pieces, exactly as the
        // probe does — FNV's word folding makes piecewise and whole
        // hashing differ.
        payloadHash_ = fnv1a(&kTraceChunkMagic, sizeof(kTraceChunkMagic),
                             payloadHash_);
        payloadHash_ = fnv1a(&count, sizeof(count), payloadHash_);
        payloadHash_ = fnv1a(chunk_.data(), bytes, payloadHash_);
        payloadBytes_ += kChunkHeaderBytes + bytes;
    } else {
        enc_.clear();
        uint32_t colBytes[columnar::kNumColumns] = {};
        columnar::encodeChunk(chunk_.data(), chunk_.size(), enc_,
                              colBytes);
        char ch[kChunkHeaderBytesV2];
        std::memcpy(ch, &kTraceChunkMagicV2, sizeof(kTraceChunkMagicV2));
        std::memcpy(ch + 4, &count, sizeof(count));
        std::memcpy(ch + 8, colBytes, sizeof(colBytes));
        out_.writeAll(ch, sizeof(ch));
        out_.writeAll(enc_.data(), enc_.size());
        payloadHash_ = fnv1a(ch, sizeof(ch), payloadHash_);
        payloadHash_ = fnv1a(enc_.data(), enc_.size(), payloadHash_);
        payloadBytes_ += kChunkHeaderBytesV2 + enc_.size();
    }
    chunk_.clear();
}

void
TraceFileWriter::close()
{
    if (!open_)
        return;
    try {
        flushChunk();

        TraceHeader h;
        h.version = version_;
        h.recordCount = count_;
        h.payloadBytes = payloadBytes_;
        h.payloadHash = payloadHash_;
        const std::string hb = headerBytes(h);
        out_.seekTo(0);
        out_.writeAll(hb.data(), hb.size());
        out_.syncToDisk();
        out_.close();
        open_ = false;
        util::checkedRename(tmpPath_, path_, "trace.record");
    } catch (const util::IoError &e) {
        open_ = false;
        out_ = util::CheckedFile();    // drop the fd, silently
        std::error_code ec;
        std::filesystem::remove(tmpPath_, ec);
        rethrowTraceIo(e);
    }
}

void
TraceFileWriter::abort()
{
    if (open_) {
        out_ = util::CheckedFile();    // drop the fd, silently
        open_ = false;
    }
    std::error_code ec;
    std::filesystem::remove(tmpPath_, ec);
}

// ----------------------------------------------------------------------
// FileTraceSource (streamed)
// ----------------------------------------------------------------------

FileTraceSource::FileTraceSource(const std::string &path,
                                 const TraceFileInfo *known)
    : path_(path), info_(known ? *known : probeTraceFile(path))
{
    static obs::Counter opens("trace.open.stream");
    opens.add(1);
    try {
        in_ = util::CheckedFile::openRead(path_, "trace.replay");
        if (known) {
            // The caller already validated the payload; re-check only
            // the header so a file swapped since that scan still
            // rejects.
            char hb[kTraceHeaderBytes];
            in_.readExact(hb, sizeof(hb));
            TraceHeader h;
            checkHeaderBytes(hb, path_, h);
            if (info_.version == 0)
                info_.version = h.version;  // pre-v2 probe results
            if (h.version != info_.version ||
                h.recordCount != info_.recordCount ||
                h.payloadBytes != info_.payloadBytes ||
                h.payloadHash != info_.payloadHash)
                throw TraceFileError(path_, "file changed since it was "
                                            "scanned");
        } else {
            in_.seekTo(kTraceHeaderBytes);
        }
    } catch (const util::IoError &e) {
        rethrowTraceIo(e);
    }
}

bool
FileTraceSource::refill()
{
    if (chunksRead_ == info_.chunkCount)
        return false;
    checkReadFailpoint("trace.chunk.read", path_, "chunk read");
    static obs::Counter chunks("trace.chunk.decoded");
    static obs::Counter bytes("trace.bytes.read");
    // probeTraceFile validated the whole chain; a mismatch here means
    // the file changed underneath us, which must not degrade into a
    // silently short trace.
    if (info_.version == kTraceFormatV1) {
        uint32_t magic = 0, count = 0;
        char ch[kChunkHeaderBytes];
        try {
            in_.readExact(ch, sizeof(ch));
        } catch (const util::IoError &e) {
            if (e.code() == 0)
                throw TraceFileError(path_,
                                     "chunk header changed after open");
            rethrowTraceIo(e);
        }
        std::memcpy(&magic, ch, sizeof(magic));
        std::memcpy(&count, ch + 4, sizeof(count));
        if (magic != kTraceChunkMagic || count == 0)
            throw TraceFileError(path_,
                                 "chunk header changed after open");
        buf_.resize(count);
        try {
            in_.readExact(buf_.data(), count * sizeof(InstRecord));
        } catch (const util::IoError &e) {
            if (e.code() == 0)
                throw TraceFileError(path_,
                                     "chunk payload changed after open");
            rethrowTraceIo(e);
        }
        bytes.add(kChunkHeaderBytes +
                  uint64_t(count) * sizeof(InstRecord));
    } else {
        char ch[kChunkHeaderBytesV2];
        try {
            in_.readExact(ch, sizeof(ch));
        } catch (const util::IoError &e) {
            if (e.code() == 0)
                throw TraceFileError(path_,
                                     "chunk header changed after open");
            rethrowTraceIo(e);
        }
        const ChunkHeaderV2 hdr =
            checkChunkHeaderV2(ch, info_.payloadBytes, path_,
                               "chunk header changed after open");
        enc_.resize(hdr.payloadBytes);
        try {
            in_.readExact(enc_.data(), enc_.size());
        } catch (const util::IoError &e) {
            if (e.code() == 0)
                throw TraceFileError(path_,
                                     "chunk payload changed after open");
            rethrowTraceIo(e);
        }
        buf_.resize(hdr.count);
        columnar::decodeChunk(enc_.data(), hdr.colBytes, hdr.count,
                              buf_.data(), path_);
        bytes.add(kChunkHeaderBytesV2 + hdr.payloadBytes);
    }
    chunks.add(1);
    pos_ = 0;
    ++chunksRead_;
    return true;
}

bool
FileTraceSource::next(InstRecord &rec)
{
    if (pos_ == buf_.size() && !refill())
        return false;
    rec = buf_[pos_++];
    return true;
}

size_t
FileTraceSource::nextBatch(InstRecord *buf, size_t n)
{
    size_t got = 0;
    while (got < n) {
        if (pos_ == buf_.size() && !refill())
            break;
        const size_t take = std::min(n - got, buf_.size() - pos_);
        std::copy_n(buf_.data() + pos_, take, buf + got);
        pos_ += take;
        got += take;
    }
    return got;
}

size_t
FileTraceSource::nextSpan(const InstRecord *&span, InstRecord *, size_t n)
{
    if (pos_ == buf_.size() && !refill())
        return 0;
    const size_t got = std::min(n, buf_.size() - pos_);
    span = buf_.data() + pos_;
    pos_ += got;
    return got;
}

bool
FileTraceSource::reset()
{
    try {
        in_.seekTo(kTraceHeaderBytes);
    } catch (const util::IoError &e) {
        rethrowTraceIo(e);
    }
    buf_.clear();
    pos_ = 0;
    chunksRead_ = 0;
    return true;
}

// ----------------------------------------------------------------------
// MappedTraceSource
// ----------------------------------------------------------------------

MappedTraceSource::MappedTraceSource(const std::string &path,
                                     const TraceFileInfo *known)
    : path_(path), info_(known ? *known : probeTraceFile(path))
{
    static obs::Counter opens("trace.open.mmap");
    opens.add(1);
    // v2 chunks hold encoded column streams, not InstRecord bytes, so
    // there is nothing a mapping could lend spans out of.
    if (info_.version == kTraceFormatV2)
        throw TraceFileError(path,
                             "columnar v2 trace: mmap replay is "
                             "v1-only; use the streamed reader");
    mapBytes_ = kTraceHeaderBytes + info_.payloadBytes;
    checkReadFailpoint("trace.replay.open", path, "open");
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0)
        throw TraceFileError(path,
                             std::string("open failed: ") +
                                 std::strerror(errno),
                             errno);
    // The probe ran against a separate open: re-stat through this fd
    // so a file swapped in between cannot shrink the mapping under
    // the validated byte counts (reads past EOF in a mapping are
    // SIGBUS, not recoverable errors).
    struct stat st = {};
    if (::fstat(fd, &st) != 0 ||
        static_cast<uint64_t>(st.st_size) != mapBytes_) {
        ::close(fd);
        throw TraceFileError(path, "file changed since it was scanned");
    }
    void *base =
        ::mmap(nullptr, mapBytes_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (base == MAP_FAILED)
        throw TraceFileError(path,
                             std::string("mmap failed: ") +
                                 std::strerror(errno),
                             errno);
    base_ = static_cast<const char *>(base);
    cursor_ = base_ + kTraceHeaderBytes;

    // Validate the mapped header itself (cheap), so both the no-probe
    // fast path and a probe raced by a same-size rewrite reject here.
    TraceHeader h;
    std::memcpy(&h.version, base_ + 8, sizeof(h.version));
    std::memcpy(&h.recordBytes, base_ + 12, sizeof(h.recordBytes));
    std::memcpy(&h.layoutHash, base_ + 16, sizeof(h.layoutHash));
    std::memcpy(&h.recordCount, base_ + 24, sizeof(h.recordCount));
    std::memcpy(&h.payloadBytes, base_ + 32, sizeof(h.payloadBytes));
    std::memcpy(&h.payloadHash, base_ + 40, sizeof(h.payloadHash));
    if (std::memcmp(base_, kTraceMagic, sizeof(kTraceMagic)) != 0 ||
        h.version != kTraceFormatV1 ||
        h.recordBytes != sizeof(InstRecord) ||
        h.layoutHash != kTraceLayoutHash ||
        h.recordCount != info_.recordCount ||
        h.payloadBytes != info_.payloadBytes ||
        h.payloadHash != info_.payloadHash) {
        ::munmap(const_cast<char *>(base_), mapBytes_);
        base_ = nullptr;
        throw TraceFileError(path, "file changed since it was scanned");
    }
}

MappedTraceSource::~MappedTraceSource()
{
    if (base_)
        ::munmap(const_cast<char *>(base_), mapBytes_);
}

bool
MappedTraceSource::advanceChunk()
{
    const char *end = base_ + mapBytes_;
    if (cursor_ == end)
        return false;
    // Bounds-check every chunk walk: the validation probe ran against
    // a separate open of the path, so a concurrent rewrite could put
    // arbitrary counts here — decoding them unchecked would walk the
    // cursor (and the next memcpy) out of the mapping.
    uint32_t magic = 0, count = 0;
    if (end - cursor_ < static_cast<ptrdiff_t>(kChunkHeaderBytes))
        throw TraceFileError(path_, "chunk header out of bounds (file "
                                    "changed after open?)");
    std::memcpy(&magic, cursor_, sizeof(magic));
    std::memcpy(&count, cursor_ + 4, sizeof(count));
    if (magic != kTraceChunkMagic || count == 0 ||
        static_cast<uint64_t>(end - cursor_) - kChunkHeaderBytes <
            uint64_t(count) * sizeof(InstRecord))
        throw TraceFileError(path_, "corrupt chunk in mapping (file "
                                    "changed after open?)");
    recs_ = reinterpret_cast<const InstRecord *>(cursor_ +
                                                 kChunkHeaderBytes);
    left_ = count;
    cursor_ += kChunkHeaderBytes + size_t(count) * sizeof(InstRecord);
    static obs::Counter chunks("trace.chunk.decoded");
    chunks.add(1);
    return true;
}

bool
MappedTraceSource::next(InstRecord &rec)
{
    if (left_ == 0 && !advanceChunk())
        return false;
    rec = *recs_++;
    --left_;
    return true;
}

size_t
MappedTraceSource::nextBatch(InstRecord *buf, size_t n)
{
    size_t got = 0;
    while (got < n) {
        if (left_ == 0 && !advanceChunk())
            break;
        const size_t take = std::min(n - got, left_);
        std::copy_n(recs_, take, buf + got);
        recs_ += take;
        left_ -= take;
        got += take;
    }
    return got;
}

size_t
MappedTraceSource::nextSpan(const InstRecord *&span, InstRecord *,
                            size_t n)
{
    if (left_ == 0 && !advanceChunk())
        return 0;
    const size_t got = std::min(n, left_);
    span = recs_;
    recs_ += got;
    left_ -= got;
    return got;
}

bool
MappedTraceSource::reset()
{
    cursor_ = base_ ? base_ + kTraceHeaderBytes : nullptr;
    recs_ = nullptr;
    left_ = 0;
    return true;
}

// ----------------------------------------------------------------------
// Text traces
// ----------------------------------------------------------------------

namespace
{

/** Lower-cased copy for case-insensitive matching. */
std::string
lowered(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

/** @return true and the class for a known class token. */
bool
classFromToken(const std::string &token, InstClass &cls)
{
    const std::string t = lowered(token);
    if (t == "intalu" || t == "alu" || t == "int")
        cls = InstClass::IntAlu;
    else if (t == "intmul" || t == "mul")
        cls = InstClass::IntMul;
    else if (t == "intdiv" || t == "div")
        cls = InstClass::IntDiv;
    else if (t == "fpalu" || t == "fp")
        cls = InstClass::FpAlu;
    else if (t == "fpmul")
        cls = InstClass::FpMul;
    else if (t == "fpdiv")
        cls = InstClass::FpDiv;
    else if (t == "load" || t == "ld")
        cls = InstClass::Load;
    else if (t == "store" || t == "st")
        cls = InstClass::Store;
    else if (t == "branch" || t == "br")
        cls = InstClass::Branch;
    else if (t == "jump" || t == "jmp")
        cls = InstClass::Jump;
    else if (t == "call")
        cls = InstClass::Call;
    else if (t == "return" || t == "ret")
        cls = InstClass::Return;
    else if (t == "nop")
        cls = InstClass::Nop;
    else
        return false;
    return true;
}

/** Lenient number parse (decimal or 0x hex); false on garbage. */
bool
parseU64(const std::string &s, uint64_t &v)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    v = std::strtoull(s.c_str(), &end, 0);
    return *end == '\0';
}

bool
parseBool(const std::string &s, bool &v)
{
    const std::string t = lowered(s);
    if (t == "1" || t == "true" || t == "t" || t == "yes") {
        v = true;
        return true;
    }
    if (t == "0" || t == "false" || t == "f" || t == "no") {
        v = false;
        return true;
    }
    return false;
}

} // namespace

std::vector<InstRecord>
parseTextTrace(std::istream &in, const std::string &what)
{
    std::vector<InstRecord> out;
    std::string line;
    size_t lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        // Strip comments; commas count as whitespace so CSV-style
        // rows parse the same as space-separated ones.
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        for (char &c : line) {
            if (c == ',')
                c = ' ';
        }
        std::istringstream ls(line);
        std::string token;
        if (!(ls >> token))
            continue;   // blank line

        InstRecord rec;
        if (!classFromToken(token, rec.cls)) {
            throw TraceFileError(
                what, "line " + std::to_string(lineNo) +
                          ": unknown instruction class '" + token + "'");
        }
        // Defaults a hand-made trace should not have to spell out:
        // sequential PCs, 8-byte accesses, unconditional transfers
        // taken.
        rec.pc = 0x400000 + 4 * out.size();
        if (rec.isMem())
            rec.memSize = 8;
        if (rec.cls == InstClass::Jump || rec.cls == InstClass::Call ||
            rec.cls == InstClass::Return)
            rec.taken = true;

        while (ls >> token) {
            const size_t eq = token.find('=');
            if (eq == std::string::npos)
                continue;   // lenient: stray token
            const std::string key = lowered(token.substr(0, eq));
            const std::string val = token.substr(eq + 1);
            uint64_t num = 0;
            if (key == "pc" && parseU64(val, num)) {
                rec.pc = num;
            } else if ((key == "addr" || key == "mem") &&
                       parseU64(val, num)) {
                rec.memAddr = num;
            } else if (key == "size" && parseU64(val, num)) {
                rec.memSize = static_cast<uint8_t>(num);
            } else if (key == "dst" && parseU64(val, num)) {
                rec.dstReg = static_cast<uint16_t>(num);
            } else if (key == "target" && parseU64(val, num)) {
                rec.target = num;
            } else if (key == "taken") {
                bool b = false;
                if (parseBool(val, b))
                    rec.taken = b;
            } else if (key == "src") {
                std::istringstream ss(val);
                std::string part;
                rec.numSrcRegs = 0;
                while (std::getline(ss, part, ':') &&
                       rec.numSrcRegs < rec.srcRegs.size()) {
                    if (parseU64(part, num)) {
                        rec.srcRegs[rec.numSrcRegs++] =
                            static_cast<uint16_t>(num);
                    }
                }
            }
            // Unknown keys and malformed values fall through: lenient.
        }
        out.push_back(rec);
    }
    return out;
}

std::vector<InstRecord>
readTextTrace(const std::string &path)
{
    checkReadFailpoint("trace.replay.open", path, "open");
    std::ifstream in(path);
    if (!in) {
        const int err = errno;
        throw TraceFileError(path,
                             std::string("open failed: ") +
                                 std::strerror(err),
                             err);
    }
    return parseTextTrace(in, path);
}

std::unique_ptr<TraceSource>
openTraceFile(const std::string &path, bool streamed,
              const TraceFileInfo *known)
{
    const std::string ext =
        std::filesystem::path(path).extension().string();
    if (ext == ".csv" || ext == ".txt")
        return std::make_unique<VectorTraceSource>(readTextTrace(path));
    // Dispatch on the header format version: v2 files always replay
    // through the streamed reader (mmap has no raw records to lend).
    TraceFileInfo local;
    if (known == nullptr) {
        local = probeTraceFile(path);
        known = &local;
    }
    if (streamed || known->version == kTraceFormatV2)
        return std::make_unique<FileTraceSource>(path, known);
    return std::make_unique<MappedTraceSource>(path, known);
}

TraceConvertStats
convertTraceFile(const std::string &src, const std::string &dst,
                 uint32_t dstVersion)
{
    obs::ObsSpan sp("trace.convert");
    const TraceFileInfo srcInfo = probeTraceFile(src);
    TraceConvertStats stats;
    stats.srcVersion = srcInfo.version;
    stats.dstVersion = dstVersion;
    stats.srcBytes = kTraceHeaderBytes + srcInfo.payloadBytes;

    {
        FileTraceSource in(src, &srcInfo);
        TraceFileWriter out(dst, dstVersion);
        const InstRecord *span = nullptr;
        size_t got = 0;
        while ((got = in.nextSpan(span, nullptr, size_t(-1))) > 0)
            out.append(span, got);
        stats.records = out.recordCount();
        out.close();
    }

    // Trust nothing about the copy loop: re-open both files and prove
    // them record-identical before reporting success.
    std::string why;
    if (!traceRecordsIdentical(src, dst, why)) {
        std::error_code ec;
        std::filesystem::remove(dst, ec);
        throw TraceFileError(dst, "conversion verification failed: " +
                                      why);
    }
    stats.dstBytes =
        kTraceHeaderBytes + probeTraceFile(dst).payloadBytes;
    sp.arg("records", stats.records);
    sp.arg("dst_bytes", stats.dstBytes);
    return stats;
}

bool
traceRecordsIdentical(const std::string &a, const std::string &b,
                      std::string &why)
{
    FileTraceSource ra(a);
    FileTraceSource rb(b);
    if (ra.recordCount() != rb.recordCount()) {
        why = a + " holds " + std::to_string(ra.recordCount()) +
              " records, " + b + " holds " +
              std::to_string(rb.recordCount());
        return false;
    }
    InstRecord x, y;
    uint64_t i = 0;
    while (ra.next(x)) {
        if (!rb.next(y)) {
            why = b + " ended early at record " + std::to_string(i);
            return false;
        }
        // Compare canonical forms: the validity rules in
        // inst_record.hh make anything beyond them unobservable, and
        // v2 encoding canonicalizes by construction.
        const InstRecord ca = columnar::canonicalRecord(x);
        const InstRecord cb = columnar::canonicalRecord(y);
        if (std::memcmp(&ca, &cb, sizeof(InstRecord)) != 0) {
            why = "record " + std::to_string(i) + " differs";
            return false;
        }
        ++i;
    }
    why.clear();
    return true;
}

} // namespace mica
