/**
 * @file
 * Single-pass fan-out of one trace source into many analyzers.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hh"
#include "trace/trace_source.hh"

namespace mica
{

/**
 * Drives a TraceSource and broadcasts every record to a set of analyzers.
 *
 * This mirrors the structure of an ATOM/Pin analysis run: the instrumented
 * program is executed once while all requested characteristics are
 * accumulated concurrently. Analyzers are not owned by the engine.
 *
 * Records move in batches: the engine borrows a span of records from
 * the source per refill (TraceSource::nextSpan — zero-copy for replay
 * buffers, one source call per ~1K records otherwise), then dispatches
 * adaptively, following what measurement shows about cache behavior:
 *
 *  - a single attached analyzer gets the whole span through one
 *    TraceAnalyzer::acceptBatch call — its devirtualized batch kernel
 *    is 1.3-1.6x the per-record loop;
 *  - several analyzers are fanned out record-inner (every record to
 *    every analyzer before advancing), because handing each analyzer
 *    the span in turn evicts the other analyzers' hot table state
 *    between passes and measures *slower* than record-at-a-time.
 *
 * Both acceptBatch and the record-inner loop are observationally
 * identical to per-record processing, and analyzers are independent of
 * one another, so every path produces bit-identical results;
 * runPerRecord() keeps the original record-at-a-time loop as the
 * reference path for equivalence tests.
 */
class AnalysisEngine
{
  public:
    /**
     * Records pulled per source refill. 1K records (~48 KB) keep the
     * batch close to L1-resident while each analyzer re-streams it,
     * yet amortize the virtual dispatch and loop overheads to noise.
     */
    static constexpr size_t kDefaultBatchSize = 1024;

    /** Register an analyzer; must outlive the run() call. */
    void add(TraceAnalyzer *a) { analyzers_.push_back(a); }

    /** Remove all registered analyzers. */
    void clear() { analyzers_.clear(); }

    /** @return number of registered analyzers. */
    size_t numAnalyzers() const { return analyzers_.size(); }

    /** Set records per batch; values below 1 clamp to 1. */
    void setBatchSize(size_t n) { batchSize_ = n ? n : 1; }

    /** @return records pulled per batch. */
    size_t batchSize() const { return batchSize_; }

    /**
     * Pull record batches from the source until exhaustion or a budget
     * is hit, then finish() every analyzer.
     *
     * @param src trace producer
     * @param maxInsts maximum number of dynamic instructions to process
     *                 (0 means unlimited)
     * @return number of instructions processed
     */
    uint64_t
    run(TraceSource &src, uint64_t maxInsts = 0)
    {
        static obs::Counter records("engine.records");
        obs::ObsSpan sp("engine.run");
        sp.arg("analyzers", static_cast<uint64_t>(analyzers_.size()));
        // Batch-kernel time is attributed per analyzer when there is
        // exactly one (the devirtualized-kernel path); the fan-out
        // path times the whole record-inner batch. One clock pair per
        // ~1K-record batch keeps the cost well under the overhead
        // budget even on the fastest analyzers.
        const bool lone = analyzers_.size() == 1;
        obs::Histogram kernelNs(
            lone ? "engine." + std::string(analyzers_.front()->name()) +
                    ".batch_ns"
                 : std::string("engine.batch_ns"));
        std::vector<InstRecord> buf(batchSize_);
        uint64_t n = 0;
        for (;;) {
            size_t want = buf.size();
            if (maxInsts != 0 && maxInsts - n < want)
                want = static_cast<size_t>(maxInsts - n);
            if (want == 0)
                break;
            const InstRecord *span = nullptr;
            const size_t got = src.nextSpan(span, buf.data(), want);
            if (got == 0)
                break;
            const uint64_t t0 = obs::nowNs();
            if (lone) {
                analyzers_.front()->acceptBatch(span, got);
            } else {
                for (size_t i = 0; i < got; ++i)
                    for (auto *a : analyzers_)
                        a->accept(span[i]);
            }
            kernelNs.record(obs::nowNs() - t0);
            n += got;
            records.add(got);
        }
        finishAll();
        sp.arg("records", n);
        return n;
    }

    /**
     * Reference path: the original record-at-a-time loop (one virtual
     * next() and one virtual accept() per instruction). Kept so tests
     * can assert the batched path is bit-identical, and selectable via
     * MicaRunnerConfig::engineBatch = 0.
     */
    uint64_t
    runPerRecord(TraceSource &src, uint64_t maxInsts = 0)
    {
        InstRecord rec;
        uint64_t n = 0;
        while ((maxInsts == 0 || n < maxInsts) && src.next(rec)) {
            for (auto *a : analyzers_)
                a->accept(rec);
            ++n;
        }
        finishAll();
        return n;
    }

  private:
    void
    finishAll()
    {
        for (auto *a : analyzers_)
            a->finish();
    }

    std::vector<TraceAnalyzer *> analyzers_;
    size_t batchSize_ = kDefaultBatchSize;
};

} // namespace mica
