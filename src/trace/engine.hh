/**
 * @file
 * Single-pass fan-out of one trace source into many analyzers.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace_source.hh"

namespace mica
{

/**
 * Drives a TraceSource and broadcasts every record to a set of analyzers.
 *
 * This mirrors the structure of an ATOM/Pin analysis run: the instrumented
 * program is executed once while all requested characteristics are
 * accumulated concurrently. Analyzers are not owned by the engine.
 */
class AnalysisEngine
{
  public:
    /** Register an analyzer; must outlive the run() call. */
    void add(TraceAnalyzer *a) { analyzers_.push_back(a); }

    /** Remove all registered analyzers. */
    void clear() { analyzers_.clear(); }

    /** @return number of registered analyzers. */
    size_t numAnalyzers() const { return analyzers_.size(); }

    /**
     * Pull records from the source until exhaustion or a budget is hit,
     * then finish() every analyzer.
     *
     * @param src trace producer
     * @param maxInsts maximum number of dynamic instructions to process
     *                 (0 means unlimited)
     * @return number of instructions processed
     */
    uint64_t
    run(TraceSource &src, uint64_t maxInsts = 0)
    {
        InstRecord rec;
        uint64_t n = 0;
        while ((maxInsts == 0 || n < maxInsts) && src.next(rec)) {
            for (auto *a : analyzers_)
                a->accept(rec);
            ++n;
        }
        for (auto *a : analyzers_)
            a->finish();
        return n;
    }

  private:
    std::vector<TraceAnalyzer *> analyzers_;
};

} // namespace mica
