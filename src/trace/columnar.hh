/**
 * @file
 * Columnar chunk codec for trace format v2.
 *
 * A v1 chunk stores raw 40-byte InstRecords; at corpus scale that is
 * ~40 GB per billion records and the page cache becomes the limit. A
 * v2 chunk stores the same records as six independent column streams,
 * each encoded with the cheapest scheme that fits its distribution:
 *
 *   column 0 "cls"       one byte per record: the InstClass in the low
 *                        7 bits, the taken flag in bit 7.
 *   column 1 "pc"        zigzag(varint(pc[i] - pc[i-1])), previous PC
 *                        starting at 0 for every chunk (chunks stay
 *                        independently decodable). Sequential code is
 *                        one byte per record.
 *   column 2 "reg"       a width byte W (bits per register id for this
 *                        chunk), then a bit stream per record: 2 bits
 *                        numSrcRegs, 1 bit hasDst, then (numSrcRegs +
 *                        hasDst) register ids of W bits each.
 *   column 3 "mem_addr"  zigzag varint address deltas, one entry per
 *                        memory record only (previous address starts
 *                        at 0 per chunk).
 *   column 4 "mem_size"  one byte per memory record.
 *   column 5 "target"    zigzag(varint(target - pc)), one entry per
 *                        control-transfer record only.
 *
 * The encoder canonicalizes records exactly as the field-validity
 * rules in inst_record.hh allow (and as the v1 writer already zeroes
 * struct padding): unused srcRegs lanes read back as kInvalidReg,
 * memAddr/memSize are 0 for non-memory records, target is 0 for
 * non-control records. The taken flag survives for every class. The
 * interpreter only ever emits canonical records, so real recordings
 * round-trip byte-identically; canonicalRecord() is the shared
 * definition used by the codec and by `mica trace convert`'s
 * record-identity verification.
 *
 * Every decode failure throws TraceFileError naming the failing
 * column, so a flipped bit in a 200 MB corpus shard reports
 * "corrupt column 'pc' ..." instead of a bare checksum mismatch.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "trace/inst_record.hh"

namespace mica
{
namespace columnar
{

/** Number of column streams in a v2 chunk. */
constexpr size_t kNumColumns = 6;

enum ColumnId : size_t
{
    kColCls = 0,
    kColPc = 1,
    kColReg = 2,
    kColMemAddr = 3,
    kColMemSize = 4,
    kColTarget = 5,
};

/** @return the stable name of a column (used in error messages). */
const char *columnName(size_t col);

/** Append @p v as a little-endian base-128 varint (1..10 bytes). */
void putVarint(std::string &out, uint64_t v);

/**
 * Decode one varint at @p p (not past @p end). Advances @p p.
 * @return false on truncation or an overlong (> 10 byte) encoding.
 */
bool getVarint(const unsigned char *&p, const unsigned char *end,
               uint64_t &v);

/** Map a signed delta onto small unsigned values (0,-1,1,-2,...). */
constexpr uint64_t
zigzagEncode(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode. */
constexpr int64_t
zigzagDecode(uint64_t v)
{
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/** MSB-first bit appender over a byte string. */
class BitWriter
{
  public:
    explicit BitWriter(std::string &out) : out_(out) {}

    /** Append the low @p nbits bits of @p v (nbits <= 57). */
    void
    put(uint64_t v, unsigned nbits)
    {
        acc_ = (acc_ << nbits) | (v & ((nbits >= 64) ? ~0ull
                                                     : ((1ull << nbits) -
                                                        1)));
        bits_ += nbits;
        while (bits_ >= 8) {
            bits_ -= 8;
            out_.push_back(static_cast<char>((acc_ >> bits_) & 0xff));
        }
    }

    /** Pad the last partial byte with zero bits and emit it. */
    void
    flush()
    {
        if (bits_ > 0) {
            out_.push_back(
                static_cast<char>((acc_ << (8 - bits_)) & 0xff));
            bits_ = 0;
        }
        acc_ = 0;
    }

  private:
    std::string &out_;
    uint64_t acc_ = 0;
    unsigned bits_ = 0;
};

/** MSB-first bit reader over a byte range. */
class BitReader
{
  public:
    BitReader(const unsigned char *p, const unsigned char *end)
        : p_(p), end_(end), begin_(p)
    {}

    /** Read @p nbits bits (nbits <= 57). @return false past the end. */
    bool
    get(unsigned nbits, uint64_t &v)
    {
        while (bits_ < nbits) {
            if (p_ == end_)
                return false;
            acc_ = (acc_ << 8) | *p_++;
            bits_ += 8;
        }
        bits_ -= nbits;
        v = (nbits == 0) ? 0
                         : ((acc_ >> bits_) & ((nbits >= 64)
                                                   ? ~0ull
                                                   : ((1ull << nbits) -
                                                      1)));
        return true;
    }

    /** @return bytes pulled from the input so far. */
    size_t consumed() const { return static_cast<size_t>(p_ - begin_); }

  private:
    const unsigned char *p_;
    const unsigned char *end_;
    const unsigned char *begin_;
    uint64_t acc_ = 0;
    unsigned bits_ = 0;
};

/**
 * @return @p r with every field the validity rules declare meaningless
 * forced to its default (and struct padding zeroed), so two records
 * that analyzers cannot distinguish compare equal with memcmp.
 */
InstRecord canonicalRecord(const InstRecord &r);

/**
 * Encode @p n records as six column streams appended to @p out (which
 * is NOT cleared), recording each column's byte length in
 * @p colBytes[kNumColumns]. Records are canonicalized first.
 */
void encodeChunk(const InstRecord *recs, size_t n, std::string &out,
                 uint32_t colBytes[kNumColumns]);

/**
 * Decode @p n records from the concatenated column payload at
 * @p payload, whose per-column byte lengths are @p colBytes.
 *
 * Every structural violation — truncated or overlong varints, an
 * out-of-range class id, a register width over 16, trailing bytes in
 * any column — throws TraceFileError naming @p path and the column.
 */
void decodeChunk(const char *payload,
                 const uint32_t colBytes[kNumColumns], size_t n,
                 InstRecord *out, const std::string &path);

} // namespace columnar
} // namespace mica
