/**
 * @file
 * Synthetic trace sources used by unit and property tests.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/inst_record.hh"
#include "trace/trace_source.hh"

namespace mica
{

/**
 * Replays a pre-built vector of records. Supports reset().
 */
class VectorTraceSource : public TraceSource
{
  public:
    VectorTraceSource() = default;

    explicit VectorTraceSource(std::vector<InstRecord> recs)
        : recs_(std::move(recs))
    {}

    /** Append a record to the replay buffer. */
    void push(const InstRecord &rec) { recs_.push_back(rec); }

    /** Pre-size the buffer when the trace length is known up front. */
    void reserve(size_t n) { recs_.reserve(n); }

    /** @return number of records in the buffer. */
    size_t size() const { return recs_.size(); }

    bool
    next(InstRecord &rec) override
    {
        if (pos_ >= recs_.size())
            return false;
        rec = recs_[pos_++];
        return true;
    }

    size_t
    nextBatch(InstRecord *buf, size_t n) override
    {
        const size_t got = std::min(n, recs_.size() - pos_);
        std::copy_n(recs_.data() + pos_, got, buf);
        pos_ += got;
        return got;
    }

    size_t
    nextSpan(const InstRecord *&span, InstRecord *, size_t n) override
    {
        // The replay buffer is already materialized: lend it out
        // directly instead of copying into the engine's batch.
        const size_t got = std::min(n, recs_.size() - pos_);
        span = recs_.data() + pos_;
        pos_ += got;
        return got;
    }

    bool
    reset() override
    {
        pos_ = 0;
        return true;
    }

  private:
    std::vector<InstRecord> recs_;
    size_t pos_ = 0;
};

/**
 * Parameters of the random trace generator. Probabilities are selected
 * in declaration order; whatever remains is integer ALU work.
 */
struct RandomTraceParams
{
    uint64_t numInsts = 10000;
    uint64_t seed = 1;
    double pLoad = 0.25;
    double pStore = 0.10;
    double pBranch = 0.10;
    double pFp = 0.10;
    double pIntMul = 0.02;
    double pTaken = 0.6;        ///< branch taken probability
    uint64_t dataFootprint = 1 << 16;   ///< bytes of data touched
    uint64_t codeFootprint = 1 << 12;   ///< bytes of code touched
};

/**
 * Generates a pseudo-random—but deterministic—instruction stream.
 *
 * Used by property tests to exercise analyzers across a wide parameter
 * space without depending on the ISA layer. The generator maintains a
 * plausible register-dependence structure (destinations cycle through the
 * register file; sources pick recently written registers).
 */
class RandomTraceSource : public TraceSource
{
  public:
    explicit RandomTraceSource(const RandomTraceParams &p)
        : params_(p), state_(p.seed ? p.seed : 0x9e3779b97f4a7c15ull)
    {}

    bool next(InstRecord &rec) override { return genNext(rec); }

    size_t nextBatch(InstRecord *buf, size_t n) override;

    bool
    reset() override
    {
        emitted_ = 0;
        state_ = params_.seed ? params_.seed : 0x9e3779b97f4a7c15ull;
        pc_ = kCodeBase;
        lastDst_ = 1;
        return true;
    }

    static constexpr uint64_t kCodeBase = 0x400000;
    static constexpr uint64_t kDataBase = 0x10000000;

  private:
    /** Non-virtual record generation shared by next()/nextBatch(). */
    bool genNext(InstRecord &rec);

    /** xorshift64* step. */
    uint64_t
    rnd()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545f4914f6cdd1dull;
    }

    double rndUnit() { return (rnd() >> 11) * (1.0 / 9007199254740992.0); }

    RandomTraceParams params_;
    uint64_t state_;
    uint64_t emitted_ = 0;
    uint64_t pc_ = kCodeBase;
    uint16_t lastDst_ = 1;
};

} // namespace mica
