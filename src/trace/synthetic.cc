#include "trace/synthetic.hh"

namespace mica
{

size_t
RandomTraceSource::nextBatch(InstRecord *buf, size_t n)
{
    size_t got = 0;
    while (got < n && genNext(buf[got]))
        ++got;
    return got;
}

bool
RandomTraceSource::genNext(InstRecord &rec)
{
    if (emitted_ >= params_.numInsts)
        return false;
    ++emitted_;

    rec = InstRecord{};
    rec.pc = pc_;

    const double u = rndUnit();
    double acc = params_.pLoad;

    auto pick_src = [this]() -> uint16_t {
        // Bias sources toward recently written registers so dependence
        // distances are short but nonzero.
        uint16_t r = 1 + static_cast<uint16_t>(rnd() % 8);
        uint16_t cand = (lastDst_ + 32 - r) % 31 + 1;
        return cand;
    };

    if (u < acc) {
        rec.cls = InstClass::Load;
        rec.numSrcRegs = 1;
        rec.srcRegs[0] = pick_src();
        rec.dstReg = 1 + static_cast<uint16_t>(rnd() % 31);
        rec.memAddr = kDataBase + (rnd() % params_.dataFootprint);
        rec.memSize = 8;
        lastDst_ = rec.dstReg;
    } else if (u < (acc += params_.pStore)) {
        rec.cls = InstClass::Store;
        rec.numSrcRegs = 2;
        rec.srcRegs[0] = pick_src();
        rec.srcRegs[1] = pick_src();
        rec.memAddr = kDataBase + (rnd() % params_.dataFootprint);
        rec.memSize = 8;
    } else if (u < (acc += params_.pBranch)) {
        rec.cls = InstClass::Branch;
        rec.numSrcRegs = 2;
        rec.srcRegs[0] = pick_src();
        rec.srcRegs[1] = pick_src();
        rec.taken = rndUnit() < params_.pTaken;
        rec.target = kCodeBase + (rnd() % params_.codeFootprint & ~3ull);
    } else if (u < (acc += params_.pFp)) {
        rec.cls = InstClass::FpAlu;
        rec.numSrcRegs = 2;
        rec.srcRegs[0] = 32 + static_cast<uint16_t>(rnd() % 31) + 1;
        rec.srcRegs[1] = 32 + static_cast<uint16_t>(rnd() % 31) + 1;
        rec.dstReg = 32 + static_cast<uint16_t>(rnd() % 31) + 1;
    } else if (u < (acc += params_.pIntMul)) {
        rec.cls = InstClass::IntMul;
        rec.numSrcRegs = 2;
        rec.srcRegs[0] = pick_src();
        rec.srcRegs[1] = pick_src();
        rec.dstReg = 1 + static_cast<uint16_t>(rnd() % 31);
        lastDst_ = rec.dstReg;
    } else {
        rec.cls = InstClass::IntAlu;
        rec.numSrcRegs = 2;
        rec.srcRegs[0] = pick_src();
        rec.srcRegs[1] = pick_src();
        rec.dstReg = 1 + static_cast<uint16_t>(rnd() % 31);
        lastDst_ = rec.dstReg;
    }

    // Advance the program counter; taken transfers jump.
    if (rec.isControl() && rec.taken)
        pc_ = rec.target;
    else
        pc_ = kCodeBase + ((pc_ - kCodeBase + 4) % params_.codeFootprint);
    return true;
}

} // namespace mica
