#include "trace/columnar.hh"

#include <algorithm>
#include <cstring>

#include "trace/trace_file.hh"

namespace mica
{
namespace columnar
{

namespace
{

constexpr const char *kColumnNames[kNumColumns] = {
    "cls", "pc", "reg", "mem_addr", "mem_size", "target",
};

/** Uniform error text so every corrupt column reads the same way. */
[[noreturn]] void
columnError(const std::string &path, size_t col, const std::string &why)
{
    throw TraceFileError(path, "corrupt column '" +
                                   std::string(columnName(col)) + "': " +
                                   why);
}

/** Bits needed to store @p v (0 for 0). */
unsigned
bitWidth(uint64_t v)
{
    unsigned w = 0;
    while (v != 0) {
        ++w;
        v >>= 1;
    }
    return w;
}

} // namespace

const char *
columnName(size_t col)
{
    return col < kNumColumns ? kColumnNames[col] : "?";
}

void
putVarint(std::string &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<char>((v & 0x7f) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<char>(v));
}

bool
getVarint(const unsigned char *&p, const unsigned char *end, uint64_t &v)
{
    uint64_t out = 0;
    unsigned shift = 0;
    while (p != end) {
        const unsigned char b = *p++;
        if (shift == 63 && (b & 0x7e) != 0)
            return false;   // would overflow 64 bits
        if (shift > 63)
            return false;   // overlong encoding
        out |= uint64_t(b & 0x7f) << shift;
        if ((b & 0x80) == 0) {
            v = out;
            return true;
        }
        shift += 7;
    }
    return false;   // ran off the end mid-varint
}

InstRecord
canonicalRecord(const InstRecord &r)
{
    InstRecord c;
    std::memset(static_cast<void *>(&c), 0, sizeof(c));
    c.pc = r.pc;
    c.cls = r.cls;
    c.numSrcRegs = r.numSrcRegs <= 3 ? r.numSrcRegs : uint8_t(3);
    c.srcRegs = {kInvalidReg, kInvalidReg, kInvalidReg};
    for (size_t i = 0; i < c.numSrcRegs; ++i)
        c.srcRegs[i] = r.srcRegs[i];
    c.dstReg = r.dstReg;
    c.taken = r.taken;
    if (r.isMem()) {
        c.memAddr = r.memAddr;
        c.memSize = r.memSize;
    }
    if (r.isControl())
        c.target = r.target;
    return c;
}

void
encodeChunk(const InstRecord *recs, size_t n, std::string &out,
            uint32_t colBytes[kNumColumns])
{
    // Column 0: class + taken, one byte per record; also the pass that
    // finds the register bit width for column 2.
    size_t mark = out.size();
    unsigned regWidth = 0;
    for (size_t i = 0; i < n; ++i) {
        const InstRecord &r = recs[i];
        out.push_back(static_cast<char>(
            (static_cast<uint8_t>(r.cls) & 0x7f) |
            (r.taken ? 0x80 : 0x00)));
        const unsigned srcs = r.numSrcRegs <= 3 ? r.numSrcRegs : 3u;
        for (size_t s = 0; s < srcs; ++s)
            regWidth = std::max(regWidth, bitWidth(r.srcRegs[s]));
        if (r.hasDst())
            regWidth = std::max(regWidth, bitWidth(r.dstReg));
    }
    colBytes[kColCls] = static_cast<uint32_t>(out.size() - mark);

    // Column 1: PC deltas. The previous PC starts at 0 per chunk so a
    // chunk decodes with no cross-chunk state; deltas wrap mod 2^64.
    mark = out.size();
    uint64_t prevPc = 0;
    for (size_t i = 0; i < n; ++i) {
        putVarint(out, zigzagEncode(
                           static_cast<int64_t>(recs[i].pc - prevPc)));
        prevPc = recs[i].pc;
    }
    colBytes[kColPc] = static_cast<uint32_t>(out.size() - mark);

    // Column 2: register operands, bit-packed at the chunk-wide width.
    mark = out.size();
    out.push_back(static_cast<char>(regWidth));
    {
        BitWriter bw(out);
        for (size_t i = 0; i < n; ++i) {
            const InstRecord &r = recs[i];
            const unsigned srcs = r.numSrcRegs <= 3 ? r.numSrcRegs : 3u;
            bw.put(srcs, 2);
            bw.put(r.hasDst() ? 1 : 0, 1);
            for (size_t s = 0; s < srcs; ++s)
                bw.put(r.srcRegs[s], regWidth);
            if (r.hasDst())
                bw.put(r.dstReg, regWidth);
        }
        bw.flush();
    }
    colBytes[kColReg] = static_cast<uint32_t>(out.size() - mark);

    // Columns 3+4: memory address deltas and access sizes, entries for
    // memory records only.
    mark = out.size();
    uint64_t prevAddr = 0;
    for (size_t i = 0; i < n; ++i) {
        if (!recs[i].isMem())
            continue;
        putVarint(out, zigzagEncode(static_cast<int64_t>(
                           recs[i].memAddr - prevAddr)));
        prevAddr = recs[i].memAddr;
    }
    colBytes[kColMemAddr] = static_cast<uint32_t>(out.size() - mark);

    mark = out.size();
    for (size_t i = 0; i < n; ++i) {
        if (recs[i].isMem())
            out.push_back(static_cast<char>(recs[i].memSize));
    }
    colBytes[kColMemSize] = static_cast<uint32_t>(out.size() - mark);

    // Column 5: control-transfer targets as PC-relative deltas.
    mark = out.size();
    for (size_t i = 0; i < n; ++i) {
        if (!recs[i].isControl())
            continue;
        putVarint(out, zigzagEncode(static_cast<int64_t>(
                           recs[i].target - recs[i].pc)));
    }
    colBytes[kColTarget] = static_cast<uint32_t>(out.size() - mark);
}

void
decodeChunk(const char *payload, const uint32_t colBytes[kNumColumns],
            size_t n, InstRecord *out, const std::string &path)
{
    const unsigned char *cols[kNumColumns];
    const unsigned char *ends[kNumColumns];
    {
        const auto *p = reinterpret_cast<const unsigned char *>(payload);
        for (size_t c = 0; c < kNumColumns; ++c) {
            cols[c] = p;
            p += colBytes[c];
            ends[c] = p;
        }
    }

    // Column 0 first: the class stream decides which records consume
    // entries from the memory and target columns.
    if (colBytes[kColCls] != n)
        columnError(path, kColCls,
                    "expected " + std::to_string(n) + " bytes, have " +
                        std::to_string(colBytes[kColCls]));
    for (size_t i = 0; i < n; ++i) {
        InstRecord &r = out[i];
        r = InstRecord{};
        const unsigned char b = cols[kColCls][i];
        const unsigned cls = b & 0x7f;
        if (cls >= static_cast<unsigned>(kNumInstClasses))
            columnError(path, kColCls,
                        "invalid class value " + std::to_string(cls) +
                            " at record " + std::to_string(i));
        r.cls = static_cast<InstClass>(cls);
        r.taken = (b & 0x80) != 0;
    }

    // Column 1: PC deltas.
    {
        const unsigned char *p = cols[kColPc];
        uint64_t prevPc = 0;
        for (size_t i = 0; i < n; ++i) {
            uint64_t z = 0;
            if (!getVarint(p, ends[kColPc], z))
                columnError(path, kColPc,
                            "bad varint at record " + std::to_string(i));
            prevPc += static_cast<uint64_t>(zigzagDecode(z));
            out[i].pc = prevPc;
        }
        if (p != ends[kColPc])
            columnError(path, kColPc,
                        std::to_string(ends[kColPc] - p) +
                            " trailing bytes");
    }

    // Column 2: register operands.
    {
        if (colBytes[kColReg] < 1)
            columnError(path, kColReg, "missing width byte");
        const unsigned width = cols[kColReg][0];
        if (width > 16)
            columnError(path, kColReg,
                        "register width " + std::to_string(width) +
                            " exceeds 16 bits");
        BitReader br(cols[kColReg] + 1, ends[kColReg]);
        for (size_t i = 0; i < n; ++i) {
            InstRecord &r = out[i];
            uint64_t srcs = 0, hasDst = 0, v = 0;
            if (!br.get(2, srcs) || !br.get(1, hasDst))
                columnError(path, kColReg,
                            "truncated at record " + std::to_string(i));
            r.numSrcRegs = static_cast<uint8_t>(srcs);
            for (size_t s = 0; s < srcs; ++s) {
                if (!br.get(width, v))
                    columnError(path, kColReg,
                                "truncated at record " +
                                    std::to_string(i));
                r.srcRegs[s] = static_cast<uint16_t>(v);
            }
            if (hasDst) {
                if (!br.get(width, v))
                    columnError(path, kColReg,
                                "truncated at record " +
                                    std::to_string(i));
                r.dstReg = static_cast<uint16_t>(v);
            }
        }
        // Everything after the consumed bits must be padding within
        // the final byte — whole trailing bytes mean a corrupt length.
        if (1 + br.consumed() != colBytes[kColReg])
            columnError(path, kColReg,
                        std::to_string(colBytes[kColReg] -
                                       (1 + br.consumed())) +
                            " trailing bytes");
    }

    // Columns 3+4: memory records, in order.
    {
        const unsigned char *pa = cols[kColMemAddr];
        const unsigned char *ps = cols[kColMemSize];
        uint64_t prevAddr = 0;
        for (size_t i = 0; i < n; ++i) {
            if (!out[i].isMem())
                continue;
            uint64_t z = 0;
            if (!getVarint(pa, ends[kColMemAddr], z))
                columnError(path, kColMemAddr,
                            "bad varint at record " + std::to_string(i));
            prevAddr += static_cast<uint64_t>(zigzagDecode(z));
            out[i].memAddr = prevAddr;
            if (ps == ends[kColMemSize])
                columnError(path, kColMemSize,
                            "truncated at record " + std::to_string(i));
            out[i].memSize = *ps++;
        }
        if (pa != ends[kColMemAddr])
            columnError(path, kColMemAddr,
                        std::to_string(ends[kColMemAddr] - pa) +
                            " trailing bytes");
        if (ps != ends[kColMemSize])
            columnError(path, kColMemSize,
                        std::to_string(ends[kColMemSize] - ps) +
                            " trailing bytes");
    }

    // Column 5: control-transfer targets.
    {
        const unsigned char *p = cols[kColTarget];
        for (size_t i = 0; i < n; ++i) {
            if (!out[i].isControl())
                continue;
            uint64_t z = 0;
            if (!getVarint(p, ends[kColTarget], z))
                columnError(path, kColTarget,
                            "bad varint at record " + std::to_string(i));
            out[i].target =
                out[i].pc + static_cast<uint64_t>(zigzagDecode(z));
        }
        if (p != ends[kColTarget])
            columnError(path, kColTarget,
                        std::to_string(ends[kColTarget] - p) +
                            " trailing bytes");
    }
}

} // namespace columnar
} // namespace mica
