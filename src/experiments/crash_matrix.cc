#include "experiments/crash_matrix.hh"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <functional>
#include <stdexcept>

#include "index/fingerprint_index.hh"
#include "index/snapshot.hh"
#include "pipeline/profile_store.hh"
#include "trace/trace_file.hh"
#include "util/checked_io.hh"
#include "util/failpoint.hh"

namespace mica::experiments
{

bool
crashMatrixSupported()
{
    return MICA_FAILPOINTS != 0;
}

namespace
{

namespace fs = std::filesystem;

// Child exit codes other than util::kCrashExitCode are harness
// verdicts: the crash never happened, which is itself a failure.
constexpr int kChildArmFailed = 40;
constexpr int kChildThrew = 41;
constexpr int kChildSurvived = 42;

/**
 * One writer family: prepare() commits a valid baseline, mutate()
 * performs the write the crash lands in (run faulted in the child,
 * then unfaulted for recovery), validateNew() accepts only the
 * completed post-mutate state. `file` is the destination the
 * old-or-new contract is checked on.
 */
struct Scenario
{
    const char *prefix;
    const char *file;
    std::function<void(const std::string &dir)> prepare;
    std::function<void(const std::string &dir)> mutate;
    std::function<bool(const std::string &dir)> validateNew;
};

pipeline::StoredProfile
profileNamed(const std::string &name)
{
    pipeline::StoredProfile p;
    p.mica.name = name;
    p.hpc.name = name;
    return p;
}

/** @return a deterministic tiny index; @p salt varies the contents. */
index::FingerprintIndex
smallIndex(double salt)
{
    Matrix raw(4, 3);
    raw.rowNames = {"a", "b", "c", "d"};
    raw.colNames = {"x", "y", "z"};
    for (size_t r = 0; r < raw.rows(); ++r) {
        for (size_t c = 0; c < raw.cols(); ++c)
            raw(r, c) = salt + double(r * 3 + c) * (1.0 + salt);
    }
    return index::FingerprintIndex::build(raw);
}

void
writeTrace(const std::string &path, size_t records)
{
    TraceFileWriter w(path);
    InstRecord rec;
    for (size_t i = 0; i < records; ++i) {
        rec.pc = 0x1000 + i * 4;
        rec.cls = InstClass::IntAlu;
        w.append(rec);
    }
    w.close();
}

std::vector<Scenario>
scenarios()
{
    const pipeline::StoreKey key;
    return {
        {"store.put", "profiles.bin",
         [key](const std::string &dir) {
             pipeline::ProfileStore s(dir, key);
             s.put(profileNamed("crash/alpha.a"));
         },
         [key](const std::string &dir) {
             pipeline::ProfileStore s(dir, key);
             s.open();
             s.put(profileNamed("crash/beta.b"));
         },
         [key](const std::string &dir) {
             pipeline::ProfileStore s(dir, key);
             return s.open() && s.find("crash/alpha.a") &&
                 s.find("crash/beta.b");
         }},
        {"index.snapshot", "index.bin",
         [](const std::string &dir) {
             std::string why;
             if (!index::saveIndexSnapshot(smallIndex(0.0),
                                           dir + "/index.bin",
                                           "crash-key", &why))
                 throw std::runtime_error("baseline snapshot: " + why);
         },
         [](const std::string &dir) {
             std::string why;
             if (!index::saveIndexSnapshot(smallIndex(1.0),
                                           dir + "/index.bin",
                                           "crash-key", &why))
                 throw std::runtime_error("snapshot save: " + why);
         },
         [](const std::string &dir) {
             index::FingerprintIndex idx;
             std::string why;
             return index::loadIndexSnapshot(dir + "/index.bin",
                                             "crash-key", &idx, &why);
         }},
        {"trace.record", "crash__t.a.trace",
         [](const std::string &dir) {
             writeTrace(dir + "/crash__t.a.trace", 100);
         },
         [](const std::string &dir) {
             writeTrace(dir + "/crash__t.a.trace", 120);
         },
         [](const std::string &dir) {
             return probeTraceFile(dir + "/crash__t.a.trace")
                        .recordCount == 120;
         }},
    };
}

std::string
slurp(const std::string &path)
{
    return util::readFileBytes(path, "store.load");
}

bool
anyTmpDebris(const std::string &dir)
{
    for (const auto &de : fs::directory_iterator(dir)) {
        if (de.path().extension() == ".tmp")
            return true;
    }
    return false;
}

CrashMatrixRow
runCell(const util::FailpointInfo &site, const Scenario &sc,
        const std::string &dir)
{
    CrashMatrixRow row;
    row.site = site.name;
    row.scenario = sc.prefix;

    fs::create_directories(dir);
    sc.prepare(dir);
    const std::string target = dir + "/" + sc.file;
    const std::string before = slurp(target);

    const pid_t pid = ::fork();
    if (pid < 0) {
        row.detail = std::string("fork: ") + std::strerror(errno);
        return row;
    }
    if (pid == 0) {
        // Child: the crash victim. Expected error chatter (store
        // warnings, ...) goes nowhere; the only report that matters
        // is the exit code.
        const int devnull = ::open("/dev/null", O_WRONLY);
        if (devnull >= 0) {
            ::dup2(devnull, 1);
            ::dup2(devnull, 2);
        }
        std::string err;
        if (!util::armFailpoints(site.name + "=abort@1", &err))
            ::_exit(kChildArmFailed);
        try {
            sc.mutate(dir);
        } catch (...) {
            ::_exit(kChildThrew);
        }
        ::_exit(kChildSurvived);
    }

    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status)) {
        row.detail = "child did not exit normally";
        return row;
    }
    switch (WEXITSTATUS(status)) {
    case util::kCrashExitCode:
        row.crashed = true;
        break;
    case kChildArmFailed:
        row.detail = "arming the failpoint failed in the child";
        return row;
    case kChildThrew:
        row.detail = "fault surfaced as an exception, not a crash";
        return row;
    case kChildSurvived:
        row.detail = "failpoint never fired (site not on this path)";
        return row;
    default:
        row.detail =
            "unexpected child exit " +
            std::to_string(WEXITSTATUS(status));
        return row;
    }

    // The contract: the survivor is the complete old file or the
    // complete new one. (With abort@1 every site fires before the
    // rename, so byte-identical-to-old is the expected arm; a parsing
    // new file is accepted for forward compatibility.)
    row.oldValid = slurp(target) == before;
    if (!row.oldValid) {
        try {
            row.newValid = sc.validateNew(dir);
        } catch (...) {
            row.newValid = false;
        }
    }
    if (!row.oldValid && !row.newValid) {
        row.detail = "survivor is neither the old nor the new file";
        return row;
    }

    // Recovery: the same write, unfaulted, must commit over whatever
    // the crash left (including stale .tmp debris) and validate.
    try {
        sc.mutate(dir);
    } catch (const std::exception &e) {
        row.detail = std::string("recovery write failed: ") + e.what();
        return row;
    }
    try {
        if (!sc.validateNew(dir)) {
            row.detail = "recovered file does not validate";
            return row;
        }
    } catch (const std::exception &e) {
        row.detail = std::string("recovered file rejected: ") + e.what();
        return row;
    }
    if (anyTmpDebris(dir)) {
        row.detail = ".tmp debris left after recovery";
        return row;
    }
    row.recovered = true;
    return row;
}

} // namespace

std::vector<CrashMatrixRow>
runCrashMatrix(const std::string &workDir)
{
    std::vector<Scenario> scs = scenarios();
    std::vector<CrashMatrixRow> rows;
    for (const util::FailpointInfo &fp : util::knownFailpoints()) {
        if (!fp.writeSite)
            continue;
        const Scenario *sc = nullptr;
        for (const Scenario &s : scs) {
            if (fp.name.rfind(std::string(s.prefix) + ".", 0) == 0)
                sc = &s;
        }
        if (!sc) {
            CrashMatrixRow row;
            row.site = fp.name;
            row.scenario = "?";
            row.detail = "write site has no scenario mapped";
            rows.push_back(row);
            continue;
        }
        // One scratch dir per site: cells are fully independent.
        std::string dir = workDir + "/" + fp.name;
        for (auto &ch : dir) {
            if (ch == '.')
                ch = '_';
        }
        rows.push_back(runCell(fp, *sc, dir));
    }
    return rows;
}

} // namespace mica::experiments
