/**
 * @file
 * Shared experiment support: one-call collection of the paper's two
 * datasets (47 MICA characteristics + 7 HPC metrics for all 122
 * benchmarks) with optional on-disk caching, plus small helpers used
 * by the bench harnesses.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mica/profile.hh"
#include "stats/matrix.hh"
#include "uarch/hw_counter.hh"
#include "workloads/benchmark.hh"

namespace mica::experiments
{

/** Collection knobs shared by all experiments. */
struct DatasetConfig
{
    /**
     * Per-benchmark dynamic instruction budget (0 = run to completion;
     * every registry kernel terminates within a few hundred thousand
     * instructions).
     */
    uint64_t maxInsts = 0;

    /** PPM branch-predictor context depth. */
    unsigned ppmMaxOrder = 8;

    /**
     * Optional CSV cache directory. When set, profiles are read from
     * <cacheDir>/mica_profiles.csv and <cacheDir>/hpc_profiles.csv if
     * present, and written there after a fresh collection.
     */
    std::string cacheDir;

    /** Restrict collection to these suites (empty = all six). */
    std::vector<std::string> suites;
};

/** The two workload datasets of Section III. */
struct SuiteDataset
{
    std::vector<workloads::BenchmarkInfo> benchmarks;
    std::vector<MicaProfile> micaProfiles;
    std::vector<uarch::HwCounterProfile> hpcProfiles;

    /** @return 122 x 47 matrix in Table II column order. */
    Matrix micaMatrix() const;

    /** @return 122 x 7 matrix of hardware-counter metrics. */
    Matrix hpcMatrix() const;

    /** @return row index of "suite/program.input", or npos. */
    size_t indexOf(const std::string &fullName) const;
};

/**
 * Profile every registered benchmark with both characterizations.
 * Deterministic for a fixed config. This is the expensive step the
 * paper spends 110 machine-days on; here it is seconds.
 */
SuiteDataset collectSuiteDataset(const DatasetConfig &cfg = {});

/**
 * Parse harness flags shared by the bench executables:
 * --budget=N (maxInsts), --cache=DIR, --quick (reduced budget).
 * Unrecognized arguments are ignored so google-benchmark flags pass
 * through.
 */
DatasetConfig configFromArgs(int argc, char **argv);

/** @return the per-suite prefixes ("BioInfoMark", ...) in table order. */
const std::vector<std::string> &suiteNames();

} // namespace mica::experiments
