/**
 * @file
 * Shared experiment support: one-call collection of the paper's two
 * datasets (47 MICA characteristics + 7 HPC metrics for all 122
 * benchmarks) with optional on-disk caching, plus small helpers used
 * by the bench harnesses.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mica/profile.hh"
#include "pipeline/parallel_collector.hh"
#include "pipeline/progress.hh"
#include "stats/matrix.hh"
#include "uarch/hw_counter.hh"
#include "workloads/benchmark.hh"

namespace mica::experiments
{

/** Collection knobs shared by all experiments. */
struct DatasetConfig
{
    /**
     * Per-benchmark dynamic instruction budget (0 = run to completion;
     * every registry kernel terminates within a few hundred thousand
     * instructions).
     */
    uint64_t maxInsts = 0;

    /** PPM branch-predictor context depth. */
    unsigned ppmMaxOrder = 8;

    /**
     * Optional profile-store directory. When set, per-benchmark results
     * are served from <cacheDir>/profiles.bin when its key matches this
     * config (budget, PPM order, suite filter); missing benchmarks are
     * profiled and appended, so a partial store only costs the gap.
     * Reference CSVs (mica_profiles.csv / hpc_profiles.csv) are also
     * exported there for human inspection, but are never read back as a
     * cache — the legacy CSV cache ignored the collection config and
     * could silently serve stale profiles. A store file that exists
     * but cannot be read (permissions, I/O errors) degrades the sweep
     * to compute-without-cache with a loud stderr warning and the
     * "store.degraded_open" counter, rather than failing it.
     */
    std::string cacheDir;

    /** Restrict collection to these suites (empty = all six). */
    std::vector<std::string> suites;

    /**
     * Replay benchmarks from recorded trace files in this directory
     * (see workloads::traceBenchmarks) instead of interpreting the
     * registry kernels. Replayed profiles are byte-identical to
     * interpreting the same programs directly. The profile-store key
     * carries the directory plus a digest of the trace contents, so
     * re-recorded files re-profile instead of hitting a stale cache.
     * Throws TraceFileError when the directory is missing or two
     * files map to one benchmark name. A file that is corrupt,
     * version-mismatched, or shorter than a nonzero maxInsts (the
     * replay would silently come up short) is quarantined instead —
     * reported in SuiteDataset::failures, subject to maxFailures —
     * and replay never silently falls back to interpretation.
     */
    std::string traceDir;

    /**
     * Replay from an explicit list of trace files instead of a
     * directory (mutually exclusive with traceDir; used by the corpus
     * layer to profile one shard at a time). Same validation,
     * quarantine, and byte-identity semantics as traceDir. The
     * profile-store key carries traceLabel plus the content digest of
     * exactly these files.
     */
    std::vector<std::string> traceFiles;

    /**
     * Cache-key label for a traceFiles replay (e.g.
     * "corpus:shard-003"). Two different file sets never collide even
     * under one label — the content digest is part of the key — but a
     * stable label keeps a shard's store reusable across runs.
     */
    std::string traceLabel;

    /**
     * Replay through the streamed FileTraceSource instead of the
     * default mmap-backed reader. Byte-identical output either way,
     * so (like jobs) this is not part of the store key.
     */
    bool traceStream = false;

    /**
     * Profiling worker threads (1 = serial on the calling thread,
     * 0 = one per hardware thread). Output is bit-identical for every
     * value; this only changes wall-clock time.
     */
    unsigned jobs = 1;

    /** Optional live status hook (see pipeline::ProgressFn). */
    pipeline::ProgressFn progress;

    /**
     * Fault-isolation cap: a benchmark whose trace fails validation
     * at scan time, or whose profiling job throws, is quarantined
     * (reported in SuiteDataset::failures, excluded from the
     * dataset) instead of aborting the sweep — up to this many.
     * Exceeding the cap throws pipeline::SweepAborted after the pool
     * drains, on the theory that mass failure is an environment
     * problem, not a per-input one. The default tolerates any number
     * of stragglers; 0 makes any failure abort.
     */
    size_t maxFailures = static_cast<size_t>(-1);
};

/** The two workload datasets of Section III. */
struct SuiteDataset
{
    std::vector<workloads::BenchmarkInfo> benchmarks;
    std::vector<MicaProfile> micaProfiles;
    std::vector<uarch::HwCounterProfile> hpcProfiles;

    /**
     * Benchmarks quarantined during collection (scan-time trace
     * rejects, then profiling-job failures), in deterministic order;
     * every name here is absent from the three vectors above. Empty
     * on a clean sweep. Callers presenting results should surface
     * these and exit with the partial-failure status.
     */
    std::vector<pipeline::SweepFailure> failures;

    /** @return 122 x 47 matrix in Table II column order. */
    Matrix micaMatrix() const;

    /** @return 122 x 7 matrix of hardware-counter metrics. */
    Matrix hpcMatrix() const;

    /** @return row index of "suite/program.input", or npos. */
    size_t indexOf(const std::string &fullName) const;
};

/**
 * Profile every registered benchmark with both characterizations,
 * fanning the per-benchmark jobs across cfg.jobs workers and reusing
 * any profile-store entries recorded under an identical config.
 * Deterministic (bit-identical) for a fixed config at any job count.
 * This is the expensive step the paper spends 110 machine-days on;
 * here it is seconds — and now scales with cores.
 */
SuiteDataset collectSuiteDataset(const DatasetConfig &cfg = {});

/**
 * Parse harness flags shared by the bench executables:
 * --budget=N (maxInsts), --cache=DIR, --jobs=N (0 = auto),
 * --quick (reduced budget), --suites=A,B (suite filter),
 * --traces=DIR (replay recorded traces), --reader=stream|mmap
 * (trace reader choice), --max-failures=N (fault-isolation cap,
 * see DatasetConfig::maxFailures). Environment overrides: MICA_BUDGET,
 * MICA_CACHE, MICA_JOBS, MICA_TRACES. Unrecognized arguments are
 * ignored so google-benchmark flags pass through.
 */
DatasetConfig configFromArgs(int argc, char **argv);

/** @return the per-suite prefixes ("BioInfoMark", ...) in table order. */
const std::vector<std::string> &suiteNames();

} // namespace mica::experiments
