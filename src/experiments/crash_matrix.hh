/**
 * @file
 * Crash-consistency matrix over the durable write paths.
 *
 * For every write-path failpoint in the registry (store.put.*,
 * index.snapshot.*, trace.record.*), a child process is forked, the
 * site is armed with `abort@1` (simulated crash: torn write, then
 * _exit), and the matching writer scenario runs until it dies at the
 * site. The parent then verifies the old-valid-or-new-valid contract:
 * the surviving destination file is byte-identical to its pre-crash
 * contents, or parses as a complete post-write file — never anything
 * in between. Finally the same operation reruns unfaulted to prove
 * recovery: the write succeeds, the new state validates, and no .tmp
 * debris is left behind to block or be mistaken for a commit.
 */

#pragma once

#include <string>
#include <vector>

namespace mica::experiments
{

/** One (failpoint site x writer scenario) cell's verdict. */
struct CrashMatrixRow
{
    std::string site;        ///< failpoint armed with abort@1
    std::string scenario;    ///< "store.put" | "index.snapshot" | "trace.record"
    bool crashed = false;    ///< child died with util::kCrashExitCode
    bool oldValid = false;   ///< survivor byte-identical to pre-crash file
    bool newValid = false;   ///< survivor parses as the completed write
    bool recovered = false;  ///< unfaulted rerun committed cleanly
    std::string detail;      ///< explanation when !ok()

    bool ok() const { return crashed && (oldValid || newValid) && recovered; }
};

/** @return false when fault injection is compiled out (MICA_FAILPOINTS=0). */
bool crashMatrixSupported();

/**
 * Run the full matrix under @p workDir (created if needed; each site
 * gets its own scratch subdirectory). Requires crashMatrixSupported().
 */
std::vector<CrashMatrixRow> runCrashMatrix(const std::string &workDir);

} // namespace mica::experiments
