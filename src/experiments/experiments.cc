/**
 * @file
 * Implementation of the shared experiment dataset collection, built on
 * the parallel profiling pipeline (src/pipeline).
 */

#include "experiments/experiments.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "mica/dataset.hh"
#include "obs/obs.hh"
#include "mica/runner.hh"
#include "pipeline/parallel_collector.hh"
#include "pipeline/profile_store.hh"
#include "uarch/hpc_runner.hh"
#include "util/checked_io.hh"
#include "workloads/registry.hh"

namespace mica::experiments
{

namespace
{

/**
 * Strict worker-count parser. strtoul would wrap "-1" to ULONG_MAX
 * and spawn billions of threads; garbage would silently mean "auto".
 * Anything that is not a plain decimal number falls back to serial,
 * and absurd counts are clamped.
 */
unsigned
parseJobs(const char *s)
{
    if (!s || !*s || *s < '0' || *s > '9')
        return 1;
    char *end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (*end != '\0')
        return 1;
    return static_cast<unsigned>(v > 256 ? 256 : v);
}

bool
suiteSelected(const DatasetConfig &cfg, const std::string &suite)
{
    if (cfg.suites.empty())
        return true;
    for (const auto &s : cfg.suites) {
        if (s == suite)
            return true;
    }
    return false;
}

} // namespace

Matrix
SuiteDataset::micaMatrix() const
{
    return profilesToMatrix(micaProfiles);
}

Matrix
SuiteDataset::hpcMatrix() const
{
    return uarch::hwProfilesToMatrix(hpcProfiles);
}

size_t
SuiteDataset::indexOf(const std::string &fullName) const
{
    for (size_t i = 0; i < benchmarks.size(); ++i) {
        if (benchmarks[i].fullName() == fullName)
            return i;
    }
    return static_cast<size_t>(-1);
}

SuiteDataset
collectSuiteDataset(const DatasetConfig &cfg)
{
    const auto &reg = workloads::BenchmarkRegistry::instance();

    SuiteDataset ds;
    // Trace-backed entries need owned storage; registry entries are
    // borrowed from the singleton. Both flow through one pointer list
    // so everything downstream (store, collector) is source-agnostic.
    std::vector<workloads::BenchmarkEntry> traceEntries;
    std::vector<const workloads::BenchmarkEntry *> selected;
    uint64_t traceStamp = 0;
    if (!cfg.traceDir.empty() && !cfg.traceFiles.empty())
        throw std::invalid_argument(
            "traceDir and traceFiles are mutually exclusive");
    if (!cfg.traceDir.empty() || !cfg.traceFiles.empty()) {
        // Scan-time quarantine: a corrupt or short trace file is
        // reported and skipped; the rest of the sweep proceeds. The
        // directory iterator's order is filesystem-dependent, so sort
        // the report to keep it deterministic across runs and hosts.
        std::vector<std::pair<std::string, std::string>> badFiles;
        traceEntries =
            cfg.traceDir.empty()
                ? workloads::traceBenchmarksFromFiles(
                      cfg.traceFiles, cfg.traceStream, cfg.maxInsts,
                      &traceStamp, &badFiles,
                      cfg.traceLabel.empty() ? "trace set"
                                             : cfg.traceLabel)
                : workloads::traceBenchmarks(cfg.traceDir,
                                             cfg.traceStream,
                                             cfg.maxInsts, &traceStamp,
                                             &badFiles);
        std::sort(badFiles.begin(), badFiles.end());
        for (auto &bad : badFiles)
            ds.failures.push_back({std::move(bad.first), "scan",
                                   std::move(bad.second)});
        if (!ds.failures.empty()) {
            static obs::Counter quarantined("pipeline.quarantined");
            quarantined.add(ds.failures.size());
            if (ds.failures.size() > cfg.maxFailures)
                throw pipeline::SweepAborted(ds.failures.size(),
                                             cfg.maxFailures);
        }
        for (const auto &e : traceEntries) {
            if (suiteSelected(cfg, e.info.suite)) {
                ds.benchmarks.push_back(e.info);
                selected.push_back(&e);
            }
        }
    } else {
        for (const auto &e : reg.all()) {
            if (suiteSelected(cfg, e.info.suite)) {
                ds.benchmarks.push_back(e.info);
                selected.push_back(&e);
            }
        }
    }

    // A suite filter that matches nothing is a typo, and a typo must
    // not silently mean "profile zero benchmarks" (the same
    // strictness the CLI applies to its numeric flags).
    for (const auto &want : cfg.suites) {
        bool any = false;
        for (const auto &info : ds.benchmarks)
            any = any || info.suite == want;
        if (!any) {
            throw std::invalid_argument(
                "unknown suite '" + want +
                "' (selects no benchmarks; see 'mica list')");
        }
    }

    // The store is keyed by everything that changes measured values; a
    // store written under a different budget/PPM-order/suite filter/
    // trace directory (or a legacy CSV-era directory, which has no
    // profiles.bin at all) is rejected wholesale and the sweep
    // re-collects. For trace replay the key carries a digest of the
    // trace *contents*, so re-recording a file invalidates the cache
    // instead of silently serving profiles of the old bytes.
    pipeline::StoreKey key;
    key.maxInsts = cfg.maxInsts;
    key.ppmMaxOrder = cfg.ppmMaxOrder;
    key.suites = cfg.suites;
    if (!cfg.traceDir.empty() || !cfg.traceFiles.empty()) {
        // A file-list replay keys on its label (or "files") plus the
        // same content digest a directory replay uses, so one shard's
        // store never serves another's profiles.
        std::ostringstream stamped;
        stamped << (!cfg.traceDir.empty()
                        ? cfg.traceDir
                        : (cfg.traceLabel.empty() ? "files"
                                                  : cfg.traceLabel))
                << '#' << std::hex << traceStamp;
        key.traceDir = stamped.str();
    }

    std::unique_ptr<pipeline::ProfileStore> store;
    if (!cfg.cacheDir.empty()) {
        store = std::make_unique<pipeline::ProfileStore>(cfg.cacheDir, key);
        try {
            store->open();
        } catch (const util::IoError &e) {
            // A store that exists but cannot be read must not take
            // the sweep down with it: results are still computable,
            // just not cacheable. Degrade loudly.
            static obs::Counter degraded("store.degraded_open");
            degraded.add(1);
            std::fprintf(stderr,
                         "warning: profile store unusable, computing "
                         "without cache: %s\n",
                         e.what());
            store.reset();
        }
    }

    std::vector<const workloads::BenchmarkEntry *> missing;
    for (const auto *e : selected) {
        if (!store || !store->find(e->info.fullName()))
            missing.push_back(e);
    }

    if (store) {
        // Make cache effectiveness visible: a warm rerun that serves
        // every profile from the store should say so instead of just
        // finishing suspiciously fast.
        static obs::Counter hitC("store.profile.hit");
        static obs::Counter computedC("store.profile.computed");
        const size_t hits = selected.size() - missing.size();
        hitC.add(hits);
        computedC.add(missing.size());
        std::fprintf(stderr, "store: %zu hit / %zu computed\n", hits,
                     missing.size());
    }

    MicaRunnerConfig rc;
    rc.maxInsts = cfg.maxInsts;
    rc.ppmMaxOrder = cfg.ppmMaxOrder;

    // Persist each result the moment its two jobs finish (put is
    // thread-safe), so an interrupted or partially failed sweep keeps
    // everything completed so far.
    pipeline::ResultFn persist;
    if (store) {
        persist = [&store](const pipeline::StoredProfile &p) {
            store->put(p);
        };
    }

    // Profiling failures are isolated: the sweep finishes everyone
    // else, and the budget left over from scan-time quarantine caps
    // how many more benchmarks may fail.
    pipeline::FaultPolicy policy;
    policy.isolate = true;
    policy.maxFailures = cfg.maxFailures - ds.failures.size();
    std::vector<pipeline::SweepFailure> sweepFailures;
    std::vector<pipeline::StoredProfile> fresh;
    if (!missing.empty())
        fresh = pipeline::collectProfiles(missing, rc, cfg.jobs,
                                          cfg.progress, persist, policy,
                                          &sweepFailures);

    std::unordered_set<std::string> failedNames;
    for (auto &f : sweepFailures) {
        failedNames.insert(f.bench);
        ds.failures.push_back(std::move(f));
    }

    ds.micaProfiles.reserve(selected.size());
    ds.hpcProfiles.reserve(selected.size());
    if (store) {
        // Assemble everything from the store so cached and fresh
        // entries flow through one path. A name the store cannot
        // produce despite a "successful" sweep is itself quarantined
        // (belt and braces — put() never removes entries).
        for (const auto *e : selected) {
            const std::string name = e->info.fullName();
            if (failedNames.count(name))
                continue;
            const auto *p = store->find(name);
            if (!p) {
                failedNames.insert(name);
                ds.failures.push_back(
                    {name, "store", "missing from store after sweep"});
                continue;
            }
            ds.micaProfiles.push_back(p->mica);
            ds.hpcProfiles.push_back(p->hpc);
        }
    } else {
        for (size_t k = 0; k < fresh.size(); ++k) {
            if (failedNames.count(missing[k]->info.fullName()))
                continue;
            ds.micaProfiles.push_back(std::move(fresh[k].mica));
            ds.hpcProfiles.push_back(std::move(fresh[k].hpc));
        }
    }

    if (!failedNames.empty()) {
        // Quarantined benchmarks leave every dataset vector, so rows
        // stay aligned and downstream analyses see only completed
        // profiles.
        std::vector<workloads::BenchmarkInfo> kept;
        kept.reserve(ds.benchmarks.size());
        for (auto &info : ds.benchmarks) {
            if (!failedNames.count(info.fullName()))
                kept.push_back(std::move(info));
        }
        ds.benchmarks = std::move(kept);
    }

    if (store && !fresh.empty()) {
        // Human-readable exports next to the binary store. Never read
        // back — the store is the single source of cached truth.
        std::error_code ec;
        std::filesystem::create_directories(cfg.cacheDir, ec);
        saveProfilesCsv(cfg.cacheDir + "/mica_profiles.csv",
                        ds.micaProfiles);
        saveHpcCsv(cfg.cacheDir + "/hpc_profiles.csv", ds.hpcProfiles);
    }
    return ds;
}

namespace
{

/** Split "A,B,C" into its non-empty parts. */
std::vector<std::string>
splitCommas(const char *s)
{
    std::vector<std::string> out;
    std::string cur;
    for (; ; ++s) {
        if (*s == ',' || *s == '\0') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
            if (*s == '\0')
                break;
        } else {
            cur.push_back(*s);
        }
    }
    return out;
}

} // namespace

DatasetConfig
configFromArgs(int argc, char **argv)
{
    DatasetConfig cfg;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--budget=", 9) == 0)
            cfg.maxInsts = std::strtoull(arg + 9, nullptr, 10);
        else if (std::strncmp(arg, "--cache=", 8) == 0)
            cfg.cacheDir = arg + 8;
        else if (std::strncmp(arg, "--jobs=", 7) == 0)
            cfg.jobs = parseJobs(arg + 7);
        else if (std::strncmp(arg, "--suites=", 9) == 0)
            cfg.suites = splitCommas(arg + 9);
        else if (std::strncmp(arg, "--traces=", 9) == 0)
            cfg.traceDir = arg + 9;
        else if (std::strncmp(arg, "--reader=", 9) == 0)
            cfg.traceStream = std::strcmp(arg + 9, "stream") == 0;
        else if (std::strncmp(arg, "--max-failures=", 15) == 0)
            cfg.maxFailures = std::strtoull(arg + 15, nullptr, 10);
        else if (std::strcmp(arg, "--quick") == 0)
            cfg.maxInsts = 50000;
    }
    if (const char *env = std::getenv("MICA_BUDGET"))
        cfg.maxInsts = std::strtoull(env, nullptr, 10);
    if (const char *env = std::getenv("MICA_CACHE"))
        cfg.cacheDir = env;
    if (const char *env = std::getenv("MICA_JOBS"))
        cfg.jobs = parseJobs(env);
    if (const char *env = std::getenv("MICA_TRACES"))
        cfg.traceDir = env;
    return cfg;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "BioInfoMark", "BioMetricsWorkload", "CommBench",
        "MediaBench", "MiBench", "SPEC2000",
    };
    return names;
}

} // namespace mica::experiments
