/**
 * @file
 * Implementation of the shared experiment dataset collection.
 */

#include "experiments/experiments.hh"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "isa/interpreter.hh"
#include "mica/dataset.hh"
#include "mica/runner.hh"
#include "uarch/hpc_runner.hh"
#include "workloads/registry.hh"

namespace mica::experiments
{

namespace
{

/** CSV cache of the HPC profiles (the MICA side reuses mica/dataset). */
void
saveHpcCsv(const std::string &path,
           const std::vector<uarch::HwCounterProfile> &profiles)
{
    std::ofstream out(path);
    if (!out)
        return;
    out.precision(17);
    out << "name,inst_count";
    for (const char *m : uarch::HwCounterProfile::metricNames())
        out << ',' << m;
    out << '\n';
    for (const auto &p : profiles) {
        out << p.name << ',' << p.instCount;
        for (double v : p.toVector())
            out << ',' << v;
        out << '\n';
    }
}

std::vector<uarch::HwCounterProfile>
loadHpcCsv(const std::string &path)
{
    std::ifstream in(path);
    std::vector<uarch::HwCounterProfile> out;
    if (!in)
        return out;
    std::string line;
    if (!std::getline(in, line))
        return out;
    while (std::getline(in, line)) {
        std::stringstream ss(line);
        std::string cell;
        uarch::HwCounterProfile p;
        if (!std::getline(ss, p.name, ','))
            return {};
        if (!std::getline(ss, cell, ','))
            return {};
        p.instCount = std::strtoull(cell.c_str(), nullptr, 10);
        std::vector<double> vals;
        while (std::getline(ss, cell, ','))
            vals.push_back(std::strtod(cell.c_str(), nullptr));
        if (vals.size() != uarch::HwCounterProfile::kNumMetrics)
            return {};
        p.ipcEv56 = vals[0];
        p.ipcEv67 = vals[1];
        p.branchMissRate = vals[2];
        p.l1dMissRate = vals[3];
        p.l1iMissRate = vals[4];
        p.l2MissRate = vals[5];
        p.dtlbMissRate = vals[6];
        out.push_back(std::move(p));
    }
    return out;
}

bool
suiteSelected(const DatasetConfig &cfg, const std::string &suite)
{
    if (cfg.suites.empty())
        return true;
    for (const auto &s : cfg.suites) {
        if (s == suite)
            return true;
    }
    return false;
}

} // namespace

Matrix
SuiteDataset::micaMatrix() const
{
    return profilesToMatrix(micaProfiles);
}

Matrix
SuiteDataset::hpcMatrix() const
{
    return uarch::hwProfilesToMatrix(hpcProfiles);
}

size_t
SuiteDataset::indexOf(const std::string &fullName) const
{
    for (size_t i = 0; i < benchmarks.size(); ++i) {
        if (benchmarks[i].fullName() == fullName)
            return i;
    }
    return static_cast<size_t>(-1);
}

SuiteDataset
collectSuiteDataset(const DatasetConfig &cfg)
{
    const auto &reg = workloads::BenchmarkRegistry::instance();

    SuiteDataset ds;
    for (const auto &e : reg.all()) {
        if (suiteSelected(cfg, e.info.suite))
            ds.benchmarks.push_back(e.info);
    }

    // Try the cache first: both files must exist and cover exactly the
    // selected benchmarks, in order.
    if (!cfg.cacheDir.empty()) {
        const auto micaPath = cfg.cacheDir + "/mica_profiles.csv";
        const auto hpcPath = cfg.cacheDir + "/hpc_profiles.csv";
        auto mica = loadProfilesCsv(micaPath);
        auto hpc = loadHpcCsv(hpcPath);
        bool ok = mica.size() == ds.benchmarks.size() &&
                  hpc.size() == ds.benchmarks.size();
        for (size_t i = 0; ok && i < mica.size(); ++i) {
            ok = mica[i].name == ds.benchmarks[i].fullName() &&
                 hpc[i].name == ds.benchmarks[i].fullName();
        }
        if (ok) {
            ds.micaProfiles = std::move(mica);
            ds.hpcProfiles = std::move(hpc);
            return ds;
        }
    }

    MicaRunnerConfig rc;
    rc.maxInsts = cfg.maxInsts;
    rc.ppmMaxOrder = cfg.ppmMaxOrder;

    for (const auto &e : reg.all()) {
        if (!suiteSelected(cfg, e.info.suite))
            continue;
        const auto prog = e.build();
        isa::Interpreter interp(prog);
        ds.micaProfiles.push_back(
            collectMicaProfile(interp, e.info.fullName(), rc));
        interp.reset();
        ds.hpcProfiles.push_back(
            uarch::collectHwProfile(interp, e.info.fullName(),
                                    cfg.maxInsts));
    }

    if (!cfg.cacheDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cfg.cacheDir, ec);
        saveProfilesCsv(cfg.cacheDir + "/mica_profiles.csv",
                        ds.micaProfiles);
        saveHpcCsv(cfg.cacheDir + "/hpc_profiles.csv", ds.hpcProfiles);
    }
    return ds;
}

DatasetConfig
configFromArgs(int argc, char **argv)
{
    DatasetConfig cfg;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--budget=", 9) == 0)
            cfg.maxInsts = std::strtoull(arg + 9, nullptr, 10);
        else if (std::strncmp(arg, "--cache=", 8) == 0)
            cfg.cacheDir = arg + 8;
        else if (std::strcmp(arg, "--quick") == 0)
            cfg.maxInsts = 50000;
    }
    if (const char *env = std::getenv("MICA_BUDGET"))
        cfg.maxInsts = std::strtoull(env, nullptr, 10);
    if (const char *env = std::getenv("MICA_CACHE"))
        cfg.cacheDir = env;
    return cfg;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {
        "BioInfoMark", "BioMetricsWorkload", "CommBench",
        "MediaBench", "MiBench", "SPEC2000",
    };
    return names;
}

} // namespace mica::experiments
