#include "obs/obs.hh"

#include "util/quantile.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

namespace mica::obs
{

namespace
{

bool
writeFile(const std::string &path, const std::string &body)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    out.flush();
    return static_cast<bool>(out);
}

} // namespace

double
histQuantile(const HistogramValue &h, double q)
{
    if (h.count <= 0)
        return 0.0;
    const auto rank = static_cast<int64_t>(
        util::quantileRank(q, static_cast<uint64_t>(h.count)));
    int64_t cum = 0;
    size_t lastNonEmpty = 0;
    for (size_t b = 0; b < kHistBuckets; ++b) {
        if (h.buckets[b] == 0)
            continue;
        lastNonEmpty = b;
        if (cum + h.buckets[b] > rank) {
            // The target is the (rank - cum)-th of this bucket's
            // items; spread them uniformly across the bucket's span.
            const auto lo = static_cast<double>(histBucketLo(b));
            const auto hi = static_cast<double>(histBucketHi(b));
            const double pos = static_cast<double>(rank - cum) + 0.5;
            return lo +
                   (hi - lo) * pos / static_cast<double>(h.buckets[b]);
        }
        cum += h.buckets[b];
    }
    return static_cast<double>(histBucketHi(lastNonEmpty));
}

#if MICA_OBS

namespace
{

/** Append @p s to @p out with JSON string escaping. */
void
appendEscaped(std::string &out, const char *s)
{
    for (; *s; ++s) {
        const unsigned char c = static_cast<unsigned char>(*s);
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
}

/**
 * Total atomic cells per thread slab. Counters and gauges take one
 * cell, histograms kHistCells; registration past the capacity turns
 * the handle into a no-op instead of failing.
 */
constexpr size_t kCells = 4096;
constexpr size_t kHistCells = 2 + kHistBuckets;    // count, sum, buckets
constexpr uint32_t kInvalidCell = 0xffffffffu;

/** Fixed-size recorded span, sized to match ObsSpan's buffers. */
struct TraceEvent
{
    uint64_t tsNs = 0;
    uint64_t durNs = 0;
    uint32_t tid = 0;
    char name[48] = {};
    char args[104] = {};
};

/**
 * One thread's private telemetry storage. Metric cells are written by
 * the owning thread only (relaxed single-writer stores) and read by
 * snapshotters from any thread. The span ring is guarded by a mutex —
 * spans are job-granular (hundreds per run, not millions), so an
 * uncontended lock there buys race-free drains without touching the
 * metric fast path.
 */
struct Slab
{
    std::array<std::atomic<int64_t>, kCells> cells{};
    uint32_t tid = 0;

    std::mutex ringMutex;
    std::vector<TraceEvent> ring;    ///< sized lazily to kTraceRingCap
    uint64_t ringCount = 0;          ///< events ever recorded here
};

struct MetricInfo
{
    std::string name;
    MetricKind kind;
    uint32_t cell;
};

/**
 * Process-wide registry. Leaked on purpose: thread_local slab owners
 * fold into it from thread destructors, which can outlive any
 * destruction order a static registry could promise.
 */
struct Registry
{
    std::mutex regMutex;
    std::vector<MetricInfo> metrics;
    uint32_t cellsUsed = 0;

    std::mutex slabMutex;
    std::vector<Slab *> live;
    std::array<int64_t, kCells> retired{};    ///< folded dead threads
    std::vector<TraceEvent> retiredEvents;

    uint32_t nextTid = 0;
    std::atomic<bool> traceOn{false};
    std::chrono::steady_clock::time_point origin =
        std::chrono::steady_clock::now();
};

Registry &
reg()
{
    static Registry *r = new Registry;
    return *r;
}

void
retireSlab(Slab *s)
{
    Registry &r = reg();
    std::lock_guard<std::mutex> lock(r.slabMutex);
    for (size_t c = 0; c < kCells; ++c)
        r.retired[c] += s->cells[c].load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> rl(s->ringMutex);
        const uint64_t lo =
            s->ringCount > kTraceRingCap ? s->ringCount - kTraceRingCap : 0;
        for (uint64_t i = lo; i < s->ringCount; ++i)
            r.retiredEvents.push_back(s->ring[i % kTraceRingCap]);
    }
    r.live.erase(std::remove(r.live.begin(), r.live.end(), s),
                 r.live.end());
    delete s;
}

/** Folds this thread's slab into the registry at thread exit. */
struct SlabOwner
{
    Slab *slab = nullptr;

    ~SlabOwner()
    {
        if (slab)
            retireSlab(slab);
    }
};

Slab &
mySlab()
{
    thread_local SlabOwner owner;
    if (!owner.slab) {
        auto *s = new Slab;
        Registry &r = reg();
        std::lock_guard<std::mutex> lock(r.slabMutex);
        s->tid = ++r.nextTid;
        r.live.push_back(s);
        owner.slab = s;
    }
    return *owner.slab;
}

/**
 * Find-or-create a metric's base cell. Same name → same cell, so
 * every handle constructed for "store.put.count" feeds one metric.
 * A kind clash or cell exhaustion yields a no-op handle rather than
 * an abort: telemetry must never take the tool down.
 */
uint32_t
registerMetric(const std::string &name, MetricKind kind, size_t cells)
{
    Registry &r = reg();
    std::lock_guard<std::mutex> lock(r.regMutex);
    for (const auto &m : r.metrics) {
        if (m.name == name)
            return m.kind == kind ? m.cell : kInvalidCell;
    }
    if (r.cellsUsed + cells > kCells)
        return kInvalidCell;
    const uint32_t cell = r.cellsUsed;
    r.cellsUsed += static_cast<uint32_t>(cells);
    r.metrics.push_back({name, kind, cell});
    return cell;
}

/**
 * Single-writer add: only the owning thread writes its cells, so a
 * plain load+store (no lock prefix) is race-free; relaxed atomics
 * make the cross-thread reads at fold time well-defined.
 */
inline void
cellAdd(Slab &s, uint32_t cell, int64_t v)
{
    auto &c = s.cells[cell];
    c.store(c.load(std::memory_order_relaxed) + v,
            std::memory_order_relaxed);
}

void
recordEvent(const char *name, const char *args, uint64_t tsNs,
            uint64_t durNs)
{
    static Counter dropped("obs.trace.dropped");
    Slab &s = mySlab();
    bool overwrote = false;
    {
        std::lock_guard<std::mutex> lock(s.ringMutex);
        if (s.ring.empty())
            s.ring.resize(kTraceRingCap);
        TraceEvent &e = s.ring[s.ringCount % kTraceRingCap];
        overwrote = s.ringCount >= kTraceRingCap;
        e.tsNs = tsNs;
        e.durNs = durNs;
        e.tid = s.tid;
        std::snprintf(e.name, sizeof(e.name), "%s", name);
        std::snprintf(e.args, sizeof(e.args), "%s", args);
        ++s.ringCount;
    }
    if (overwrote)
        dropped.add(1);
}

/** All recorded events, oldest-timestamp first (parents before kids). */
std::vector<TraceEvent>
collectEvents()
{
    Registry &r = reg();
    std::vector<TraceEvent> out;
    {
        std::lock_guard<std::mutex> lock(r.slabMutex);
        out = r.retiredEvents;
        for (Slab *s : r.live) {
            std::lock_guard<std::mutex> rl(s->ringMutex);
            const uint64_t lo = s->ringCount > kTraceRingCap
                ? s->ringCount - kTraceRingCap
                : 0;
            for (uint64_t i = lo; i < s->ringCount; ++i)
                out.push_back(s->ring[i % kTraceRingCap]);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.tsNs != b.tsNs)
                      return a.tsNs < b.tsNs;
                  return a.durNs > b.durNs;
              });
    return out;
}

void
appendHistogramJson(std::string &out, const HistogramValue &h)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\": %lld, \"sum\": %lld, \"buckets\": {",
                  static_cast<long long>(h.count),
                  static_cast<long long>(h.sum));
    out += buf;
    bool first = true;
    for (size_t b = 0; b < kHistBuckets; ++b) {
        if (h.buckets[b] == 0)
            continue;
        std::snprintf(buf, sizeof(buf), "%s\"%zu\": %lld",
                      first ? "" : ", ", b,
                      static_cast<long long>(h.buckets[b]));
        out += buf;
        first = false;
    }
    out += "}, \"quantiles\": {";
    const char *qn[] = {"p50", "p90", "p99"};
    const double qs[] = {0.50, 0.90, 0.99};
    for (int i = 0; i < 3; ++i) {
        std::snprintf(buf, sizeof(buf), "%s\"%s\": %.6g",
                      i == 0 ? "" : ", ", qn[i], histQuantile(h, qs[i]));
        out += buf;
    }
    out += "}}";
}

} // namespace

uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - reg().origin)
            .count());
}

Counter::Counter(const std::string &name)
    : cell_(registerMetric(name, MetricKind::Counter, 1))
{
}

void
Counter::add(uint64_t v) noexcept
{
    if (cell_ != kInvalidCell)
        cellAdd(mySlab(), cell_, static_cast<int64_t>(v));
}

Gauge::Gauge(const std::string &name)
    : cell_(registerMetric(name, MetricKind::Gauge, 1))
{
}

void
Gauge::add(int64_t delta) noexcept
{
    if (cell_ != kInvalidCell)
        cellAdd(mySlab(), cell_, delta);
}

Histogram::Histogram(const std::string &name)
    : cell_(registerMetric(name, MetricKind::Histogram, kHistCells))
{
}

void
Histogram::record(uint64_t value) noexcept
{
    if (cell_ == kInvalidCell)
        return;
    Slab &s = mySlab();
    cellAdd(s, cell_, 1);                                    // count
    cellAdd(s, cell_ + 1, static_cast<int64_t>(value));      // sum
    cellAdd(s, cell_ + 2 + static_cast<uint32_t>(histBucket(value)), 1);
}

void
setTraceEnabled(bool on)
{
    reg().traceOn.store(on, std::memory_order_relaxed);
}

bool
traceEnabled()
{
    return reg().traceOn.load(std::memory_order_relaxed);
}

ObsSpan::ObsSpan(const char *name)
{
    live_ = traceEnabled();
    if (!live_)
        return;
    std::snprintf(name_, sizeof(name_), "%s", name);
    args_[0] = '\0';
    startNs_ = nowNs();
}

ObsSpan::~ObsSpan()
{
    if (!live_)
        return;
    recordEvent(name_, args_, startNs_, nowNs() - startNs_);
}

void
ObsSpan::append(const char *fragment, size_t len)
{
    // Keep whole key/value fragments: an argument that would overflow
    // the buffer is dropped rather than truncated into invalid JSON.
    if (argsLen_ + len + 1 > kArgsCap)
        return;
    std::memcpy(args_ + argsLen_, fragment, len);
    argsLen_ = static_cast<uint16_t>(argsLen_ + len);
    args_[argsLen_] = '\0';
}

void
ObsSpan::arg(const char *key, uint64_t v)
{
    if (!live_)
        return;
    char buf[64];
    const int n = std::snprintf(buf, sizeof(buf), "%s\"%s\": %llu",
                                argsLen_ ? ", " : "", key,
                                static_cast<unsigned long long>(v));
    if (n > 0 && static_cast<size_t>(n) < sizeof(buf))
        append(buf, static_cast<size_t>(n));
}

void
ObsSpan::arg(const char *key, const char *value)
{
    if (!live_)
        return;
    std::string esc;
    appendEscaped(esc, value);
    char buf[96];
    const int n = std::snprintf(buf, sizeof(buf), "%s\"%s\": \"%s\"",
                                argsLen_ ? ", " : "", key, esc.c_str());
    if (n > 0 && static_cast<size_t>(n) < sizeof(buf))
        append(buf, static_cast<size_t>(n));
}

void
ObsSpan::arg(const char *key, const std::string &value)
{
    arg(key, value.c_str());
}

void
ObsSpan::argF(const char *key, double v)
{
    if (!live_)
        return;
    char buf[64];
    const int n = std::snprintf(buf, sizeof(buf), "%s\"%s\": %.6g",
                                argsLen_ ? ", " : "", key, v);
    if (n > 0 && static_cast<size_t>(n) < sizeof(buf))
        append(buf, static_cast<size_t>(n));
}

MetricsSnapshot
snapshotMetrics()
{
    Registry &r = reg();
    // Fold under both locks: regMutex pins the metric table, slabMutex
    // pins the slab list. Writers never take either, so a snapshot
    // during a run sees each cell's latest relaxed store.
    std::lock_guard<std::mutex> rlock(r.regMutex);
    std::lock_guard<std::mutex> slock(r.slabMutex);

    std::array<int64_t, kCells> total = r.retired;
    for (const Slab *s : r.live) {
        for (size_t c = 0; c < kCells; ++c)
            total[c] += s->cells[c].load(std::memory_order_relaxed);
    }

    MetricsSnapshot snap;
    for (const auto &m : r.metrics) {
        MetricValue v;
        v.kind = m.kind;
        if (m.kind == MetricKind::Histogram) {
            v.hist.count = total[m.cell];
            v.hist.sum = total[m.cell + 1];
            for (size_t b = 0; b < kHistBuckets; ++b)
                v.hist.buckets[b] = total[m.cell + 2 + b];
        } else {
            v.value = total[m.cell];
        }
        snap.metrics[m.name] = v;
    }
    return snap;
}

std::string
metricsJson()
{
    const MetricsSnapshot snap = snapshotMetrics();
    std::string out = "{\n  \"schema\": \"mica-obs-metrics/1\",\n"
                      "  \"compiled\": true,\n";
    char buf[64];
    for (const auto kind :
         {MetricKind::Counter, MetricKind::Gauge, MetricKind::Histogram}) {
        out += kind == MetricKind::Counter ? "  \"counters\": {"
            : kind == MetricKind::Gauge    ? "  \"gauges\": {"
                                           : "  \"histograms\": {";
        bool first = true;
        for (const auto &kv : snap.metrics) {
            if (kv.second.kind != kind)
                continue;
            out += first ? "\n    \"" : ",\n    \"";
            appendEscaped(out, kv.first.c_str());
            out += "\": ";
            if (kind == MetricKind::Histogram) {
                appendHistogramJson(out, kv.second.hist);
            } else {
                std::snprintf(buf, sizeof(buf), "%lld",
                              static_cast<long long>(kv.second.value));
                out += buf;
            }
            first = false;
        }
        out += first ? "}" : "\n  }";
        out += kind == MetricKind::Histogram ? "\n" : ",\n";
    }
    out += "}\n";
    return out;
}

bool
writeMetricsJson(const std::string &path)
{
    return writeFile(path, metricsJson());
}

std::vector<TraceEventCopy>
traceEvents()
{
    std::vector<TraceEventCopy> out;
    for (const TraceEvent &e : collectEvents()) {
        TraceEventCopy c;
        c.name = e.name;
        c.args = e.args;
        c.tsNs = e.tsNs;
        c.durNs = e.durNs;
        c.tid = e.tid;
        out.push_back(std::move(c));
    }
    return out;
}

std::string
traceJson()
{
    std::string out = "{\"traceEvents\":[";
    char buf[128];
    bool first = true;
    for (const TraceEvent &e : collectEvents()) {
        out += first ? "\n" : ",\n";
        out += "{\"name\":\"";
        appendEscaped(out, e.name);
        // Timestamps are microseconds in the trace-event format; the
        // fractional digits keep full nanosecond resolution.
        std::snprintf(buf, sizeof(buf),
                      "\",\"cat\":\"mica\",\"ph\":\"X\",\"pid\":1,"
                      "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                      e.tid, static_cast<double>(e.tsNs) / 1000.0,
                      static_cast<double>(e.durNs) / 1000.0);
        out += buf;
        if (e.args[0] != '\0') {
            out += ",\"args\":{";
            out += e.args;
            out += "}";
        }
        out += "}";
        first = false;
    }
    out += "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

bool
writeTraceJson(const std::string &path)
{
    return writeFile(path, traceJson());
}

std::vector<SpanStat>
spanStats()
{
    std::map<std::string, SpanStat> byName;
    for (const TraceEvent &e : collectEvents()) {
        SpanStat &s = byName[e.name];
        s.name = e.name;
        s.count += 1;
        s.totalNs += e.durNs;
        s.maxNs = std::max(s.maxNs, e.durNs);
    }
    std::vector<SpanStat> out;
    out.reserve(byName.size());
    for (auto &kv : byName)
        out.push_back(std::move(kv.second));
    std::sort(out.begin(), out.end(),
              [](const SpanStat &a, const SpanStat &b) {
                  if (a.totalNs != b.totalNs)
                      return a.totalNs > b.totalNs;
                  return a.name < b.name;
              });
    return out;
}

std::string
summaryText(size_t topCounters, size_t topSpans)
{
    const MetricsSnapshot snap = snapshotMetrics();
    std::vector<std::pair<std::string, int64_t>> counters;
    for (const auto &kv : snap.metrics) {
        if (kv.second.kind == MetricKind::Counter &&
            kv.second.value != 0)
            counters.emplace_back(kv.first, kv.second.value);
    }
    std::stable_sort(counters.begin(), counters.end(),
                     [](const auto &a, const auto &b) {
                         return a.second > b.second;
                     });
    const std::vector<SpanStat> spans = spanStats();

    std::ostringstream out;
    out << "obs: " << snap.metrics.size() << " metrics, ";
    uint64_t spanCount = 0;
    for (const auto &s : spans)
        spanCount += s.count;
    out << spanCount << " spans recorded\n";
    if (!counters.empty()) {
        out << "top counters:\n";
        for (size_t i = 0; i < counters.size() && i < topCounters; ++i) {
            char line[128];
            std::snprintf(line, sizeof(line), "  %-36s %12lld\n",
                          counters[i].first.c_str(),
                          static_cast<long long>(counters[i].second));
            out << line;
        }
    }
    if (!spans.empty()) {
        out << "slowest spans (by total time):\n";
        for (size_t i = 0; i < spans.size() && i < topSpans; ++i) {
            char line[160];
            std::snprintf(line, sizeof(line),
                          "  %-28s %8llux  total %9.3f ms  max %9.3f ms\n",
                          spans[i].name.c_str(),
                          static_cast<unsigned long long>(spans[i].count),
                          static_cast<double>(spans[i].totalNs) / 1e6,
                          static_cast<double>(spans[i].maxNs) / 1e6);
            out << line;
        }
    }
    return out.str();
}

void
resetForTest()
{
    Registry &r = reg();
    std::lock_guard<std::mutex> rlock(r.regMutex);
    std::lock_guard<std::mutex> slock(r.slabMutex);
    r.retired.fill(0);
    r.retiredEvents.clear();
    for (Slab *s : r.live) {
        for (auto &c : s->cells)
            c.store(0, std::memory_order_relaxed);
        std::lock_guard<std::mutex> rl(s->ringMutex);
        s->ringCount = 0;
    }
}

#else // !MICA_OBS

bool
writeMetricsJson(const std::string &path)
{
    return writeFile(path, metricsJson());
}

bool
writeTraceJson(const std::string &path)
{
    return writeFile(path, traceJson());
}

#endif // MICA_OBS

} // namespace mica::obs
