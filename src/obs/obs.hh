/**
 * @file
 * Runtime telemetry: a metrics registry and a scoped span tracer.
 *
 * Every subsystem reports what it did (counters, gauges, log2
 * histograms) and where the time went (RAII spans) through this one
 * header. Two properties shape the design:
 *
 *  - **Hot paths pay almost nothing.** Each thread owns a private slab
 *    of atomic cells; an increment is one relaxed load + store on the
 *    calling thread's own cache line region — no lock, no CAS, no heap
 *    allocation per event. Readers fold the slabs (plus the folded
 *    totals of exited threads) at snapshot time. Spans record into a
 *    bounded per-thread ring only while a sink (--trace-out /
 *    --obs-summary) armed the tracer; with the tracer idle an ObsSpan
 *    is one relaxed bool load.
 *
 *  - **Compiles out completely.** Building with -DMICA_OBS=0 replaces
 *    the whole API with empty inlines, so the disabled overhead is
 *    provably ~0 and the bench obs family can measure the difference.
 *
 * Metric names follow `subsystem.noun.verb` (store.bytes.written,
 * pool.task.run_us, index.query.nodes_visited). Handles are cheap to
 * construct and deduplicate by name, so `static obs::Counter` at the
 * use site is the idiomatic pattern.
 *
 * The trace drain emits Chrome-tracing/Perfetto JSON
 * ({"traceEvents":[...]} with pid/tid/ts/dur/name/args); open it at
 * chrome://tracing or https://ui.perfetto.dev.
 */

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#ifndef MICA_OBS
#define MICA_OBS 1
#endif

namespace mica::obs
{

/**
 * Histogram buckets are powers of two: bucket 0 holds the value 0,
 * bucket b >= 1 holds [2^(b-1), 2^b - 1]. 64-bit values need 65
 * buckets (value 2^63.. lands in bucket 64).
 */
constexpr size_t kHistBuckets = 65;

/** @return the bucket index of @p v (its bit width; 0 for 0). */
constexpr size_t
histBucket(uint64_t v)
{
    size_t b = 0;
    while (v != 0) {
        ++b;
        v >>= 1;
    }
    return b;
}

/** @return smallest value falling in bucket @p b. */
constexpr uint64_t
histBucketLo(size_t b)
{
    return b == 0 ? 0 : uint64_t(1) << (b - 1);
}

/** @return largest value falling in bucket @p b. */
constexpr uint64_t
histBucketHi(size_t b)
{
    return b == 0 ? 0 : b >= 64 ? ~uint64_t(0) : (uint64_t(1) << b) - 1;
}

/** Folded histogram state at snapshot time. */
struct HistogramValue
{
    int64_t count = 0;
    int64_t sum = 0;
    std::array<int64_t, kHistBuckets> buckets{};
};

/**
 * Estimate the value at quantile @p q in [0, 1] from the log2
 * buckets: walk to the bucket holding the nearest-rank target and
 * interpolate linearly across its [histBucketLo, histBucketHi] span.
 * Exact for the single-valued buckets (0 and 1); otherwise off by at
 * most one bucket width. Available in both MICA_OBS legs — a stub
 * build just never sees a non-empty histogram. @return 0.0 when empty.
 */
double histQuantile(const HistogramValue &h, double q);

enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
};

/** One folded metric: counters/gauges use value, histograms hist. */
struct MetricValue
{
    MetricKind kind = MetricKind::Counter;
    int64_t value = 0;
    HistogramValue hist;
};

/** Point-in-time fold of every registered metric, sorted by name. */
struct MetricsSnapshot
{
    std::map<std::string, MetricValue> metrics;
};

/** Per-name aggregate over recorded spans (for the summary footer). */
struct SpanStat
{
    std::string name;
    uint64_t count = 0;
    uint64_t totalNs = 0;
    uint64_t maxNs = 0;
};

/** One recorded span, copied out of the rings (tests, summaries). */
struct TraceEventCopy
{
    std::string name;
    std::string args;    ///< raw JSON fragment: `"k":1,"s":"v"` or ""
    uint64_t tsNs = 0;
    uint64_t durNs = 0;
    uint32_t tid = 0;
};

#if MICA_OBS

/** Per-thread span ring capacity; overflow overwrites the oldest. */
constexpr size_t kTraceRingCap = 2048;

/** @return nanoseconds since the registry's (per-process) origin. */
uint64_t nowNs();

/**
 * Monotonic named counter. Copies of the same name share one metric;
 * add() is safe from any thread and never allocates.
 */
class Counter
{
  public:
    explicit Counter(const std::string &name);

    void add(uint64_t v = 1) noexcept;

  private:
    uint32_t cell_;
};

/**
 * Up/down gauge. Each thread accumulates signed deltas in its own
 * slab; the folded value is the sum over all threads, so paired
 * add(+1)/add(-1) on different threads still nets to the live level.
 */
class Gauge
{
  public:
    explicit Gauge(const std::string &name);

    void add(int64_t delta) noexcept;

  private:
    uint32_t cell_;
};

/** Log2-bucketed histogram of unsigned values (see histBucket). */
class Histogram
{
  public:
    explicit Histogram(const std::string &name);

    void record(uint64_t value) noexcept;

  private:
    uint32_t cell_;
};

/**
 * Arm or disarm the span tracer. Metrics are always live; spans only
 * record while armed (the CLI arms it when --trace-out or
 * --obs-summary is present), so a run with no sinks does no tracing
 * work beyond one relaxed load per span site.
 */
void setTraceEnabled(bool on);

bool traceEnabled();

/**
 * RAII scope that records one Chrome-tracing "complete" event (name,
 * thread, wall-clock interval, optional args) when it goes out of
 * scope. Nesting follows C++ scope nesting by construction, so spans
 * on one thread are always strictly nested. Name and args live in
 * fixed internal buffers — no heap allocation per span; overlong
 * values are truncated.
 */
class ObsSpan
{
  public:
    explicit ObsSpan(const char *name);
    ~ObsSpan();

    ObsSpan(const ObsSpan &) = delete;
    ObsSpan &operator=(const ObsSpan &) = delete;

    /** Attach a numeric argument (shown in the trace viewer). */
    void arg(const char *key, uint64_t v);

    /** Attach a string argument (JSON-escaped here, once). */
    void arg(const char *key, const char *value);
    void arg(const char *key, const std::string &value);

    /** Attach a floating-point argument (%.6g). */
    void argF(const char *key, double v);

  private:
    void append(const char *fragment, size_t len);

    static constexpr size_t kNameCap = 48;
    static constexpr size_t kArgsCap = 104;

    uint64_t startNs_ = 0;
    uint16_t argsLen_ = 0;
    bool live_ = false;
    char name_[kNameCap];
    char args_[kArgsCap];
};

/** Fold every slab (live + retired threads) into one snapshot. */
MetricsSnapshot snapshotMetrics();

/** Stable JSON rendering of snapshotMetrics() (sorted names). */
std::string metricsJson();

bool writeMetricsJson(const std::string &path);

/** Copy out every recorded span, sorted by (tsNs, longest first). */
std::vector<TraceEventCopy> traceEvents();

/** Chrome-tracing JSON ({"traceEvents":[...]}) of traceEvents(). */
std::string traceJson();

bool writeTraceJson(const std::string &path);

/** Per-name span aggregates, descending by total time. */
std::vector<SpanStat> spanStats();

/**
 * Human-readable footer: top counters by value plus the slowest span
 * names by total time (the --obs-summary output).
 */
std::string summaryText(size_t topCounters = 8, size_t topSpans = 6);

/**
 * Zero every metric cell and drop every recorded span. Test-only:
 * callers must ensure no other thread is concurrently recording.
 */
void resetForTest();

#else // !MICA_OBS — the whole API becomes empty inlines.

constexpr size_t kTraceRingCap = 0;

inline uint64_t
nowNs()
{
    return 0;
}

class Counter
{
  public:
    explicit Counter(const std::string &) {}

    void add(uint64_t = 1) noexcept {}
};

class Gauge
{
  public:
    explicit Gauge(const std::string &) {}

    void add(int64_t) noexcept {}
};

class Histogram
{
  public:
    explicit Histogram(const std::string &) {}

    void record(uint64_t) noexcept {}
};

inline void
setTraceEnabled(bool)
{
}

inline bool
traceEnabled()
{
    return false;
}

class ObsSpan
{
  public:
    explicit ObsSpan(const char *) {}

    ObsSpan(const ObsSpan &) = delete;
    ObsSpan &operator=(const ObsSpan &) = delete;

    void arg(const char *, uint64_t) {}
    void arg(const char *, const char *) {}
    void arg(const char *, const std::string &) {}
    void argF(const char *, double) {}
};

inline MetricsSnapshot
snapshotMetrics()
{
    return {};
}

inline std::string
metricsJson()
{
    return "{\n  \"schema\": \"mica-obs-metrics/1\",\n"
           "  \"compiled\": false,\n"
           "  \"counters\": {},\n  \"gauges\": {},\n"
           "  \"histograms\": {}\n}\n";
}

inline std::vector<TraceEventCopy>
traceEvents()
{
    return {};
}

inline std::string
traceJson()
{
    return "{\"traceEvents\":[]}\n";
}

inline std::vector<SpanStat>
spanStats()
{
    return {};
}

inline std::string
summaryText(size_t = 8, size_t = 6)
{
    return "obs: telemetry compiled out (MICA_OBS=0)\n";
}

inline void
resetForTest()
{
}

// Sink writers still produce valid (empty) JSON so --metrics /
// --trace-out keep working in a MICA_OBS=0 build.
bool writeMetricsJson(const std::string &path);
bool writeTraceJson(const std::string &path);

#endif // MICA_OBS

} // namespace mica::obs
