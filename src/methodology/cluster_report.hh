/**
 * @file
 * Benchmark clustering in a reduced space (Section VI, Fig. 6).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/kmeans.hh"
#include "stats/matrix.hh"

namespace mica
{

/** One cluster of similarly behaving benchmarks. */
struct BenchmarkCluster
{
    size_t id = 0;
    std::vector<size_t> members;            ///< row indices
    std::vector<std::string> memberNames;   ///< resolved names

    bool isSingleton() const { return members.size() == 1; }
};

/** Full clustering result for the Fig. 6 experiment. */
struct ClusterReport
{
    size_t chosenK = 0;
    std::vector<double> bicByK;
    std::vector<BenchmarkCluster> clusters;     ///< sorted by size desc
    std::vector<int> assignment;                ///< cluster id per row

    /**
     * @return for a cluster, how many members' names start with each
     *         of the given suite prefixes ("suite/bench" naming).
     */
    std::vector<size_t>
    suiteHistogram(const BenchmarkCluster &c,
                   const std::vector<std::string> &suitePrefixes) const;
};

/**
 * Cluster benchmarks with k-means, choosing K by the paper's rule:
 * sweep K = 1..maxK and keep the smallest K whose BIC score is within
 * bicFrac (90%) of the maximum.
 *
 * @param data  reduced-space dataset (rows must carry rowNames)
 * @param maxK  upper end of the K sweep (70 in the paper)
 * @param seed  RNG seed for k-means seeding
 * @param bicVarFloor measurement-resolution floor on the BIC variance
 *        estimate, in squared (normalized) data units; see bicScore.
 *        The default of 0.25 treats within-cluster spread below half a
 *        standard deviation per axis as measurement-identical, which
 *        keeps deterministic-kernel populations from degenerating into
 *        one cluster per benchmark.
 * @param pool  fan the sweep's (k, restart) Lloyd runs across these
 *        workers; the report is byte-identical for any worker count
 */
ClusterReport clusterBenchmarks(const Matrix &data, size_t maxK,
                                uint64_t seed, double bicFrac = 0.9,
                                double bicVarFloor = 0.25,
                                pipeline::ThreadPool *pool = nullptr);

} // namespace mica
