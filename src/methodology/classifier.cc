#include "methodology/classifier.hh"

#include <algorithm>
#include <stdexcept>

namespace mica
{

SimilarityQuadrants
classifyTuples(const std::vector<double> &refDist,
               const std::vector<double> &candDist, double refFrac,
               double candFrac)
{
    if (refDist.size() != candDist.size())
        throw std::invalid_argument("classifyTuples: size mismatch");

    SimilarityQuadrants q;
    q.total = refDist.size();
    double refMax = 0.0, candMax = 0.0;
    for (double d : refDist)
        refMax = std::max(refMax, d);
    for (double d : candDist)
        candMax = std::max(candMax, d);
    q.refThreshold = refFrac * refMax;
    q.candThreshold = candFrac * candMax;

    for (size_t i = 0; i < refDist.size(); ++i) {
        const bool refLarge = refDist[i] > q.refThreshold;
        const bool candLarge = candDist[i] > q.candThreshold;
        if (refLarge && candLarge)
            ++q.truePositive;
        else if (!refLarge && !candLarge)
            ++q.trueNegative;
        else if (!refLarge && candLarge)
            ++q.falsePositive;
        else
            ++q.falseNegative;
    }
    return q;
}

} // namespace mica
