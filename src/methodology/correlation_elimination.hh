/**
 * @file
 * Correlation elimination (Section V-A): iteratively remove the
 * characteristic with the highest average correlation to the others.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "methodology/workload_space.hh"

namespace mica
{

/** Full elimination trajectory of the correlation-elimination method. */
struct CorrelationEliminationResult
{
    /**
     * Characteristics in removal order: eliminationOrder[0] was removed
     * first (it had the highest average absolute correlation with all
     * remaining characteristics at that step).
     */
    std::vector<size_t> eliminationOrder;

    /** Total number of characteristics N in the original space. */
    size_t numChars = 0;

    /**
     * distanceCorrByK[k-1] = Pearson correlation between the pairwise
     * benchmark distances in the k-characteristic reduced space and the
     * distances in the full space (the quantity plotted in Fig. 5).
     */
    std::vector<double> distanceCorrByK;

    /** @return the retained characteristic indices when k are kept. */
    std::vector<size_t> retained(size_t k) const;
};

/**
 * Run correlation elimination on a workload space.
 *
 * At every step the average absolute Pearson correlation of each active
 * characteristic against the other active characteristics is computed;
 * the characteristic with the highest average is dropped (it adds the
 * least information). The distance correlation versus the full space is
 * recorded for every intermediate size.
 */
CorrelationEliminationResult
correlationElimination(const WorkloadSpace &space);

} // namespace mica
