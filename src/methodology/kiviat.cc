#include "methodology/kiviat.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "stats/descriptive.hh"

namespace mica
{

std::vector<KiviatStar>
buildKiviats(const Matrix &data)
{
    Matrix norm = data;
    minmaxNormalize(norm);
    std::vector<KiviatStar> stars;
    stars.reserve(norm.rows());
    for (size_t r = 0; r < norm.rows(); ++r) {
        KiviatStar s;
        s.name = r < norm.rowNames.size() ? norm.rowNames[r]
                                          : std::to_string(r);
        s.axes = norm.colNames;
        s.values = norm.rowVec(r);
        stars.push_back(std::move(s));
    }
    return stars;
}

namespace
{

/** Clamp one axis value to [0, 1]; non-finite plots at the center. */
double
clampAxis(double v)
{
    if (!std::isfinite(v))
        return 0.0;
    return std::min(1.0, std::max(0.0, v));
}

} // namespace

std::string
renderKiviat(const KiviatStar &star, int radius)
{
    radius = std::max(radius, 1);   // radius <= 0 would make an empty grid
    const int h = 2 * radius + 1;
    const int w = 4 * radius + 1;     // x stretched 2:1 for aspect ratio
    std::vector<std::string> grid(h, std::string(w, ' '));
    const double cx = 2 * radius, cy = radius;
    const size_t n = star.values.size();

    auto plot = [&](double x, double y, char ch) {
        const int ix = static_cast<int>(std::lround(x));
        const int iy = static_cast<int>(std::lround(y));
        if (iy >= 0 && iy < h && ix >= 0 && ix < w)
            grid[iy][ix] = ch;
    };

    for (size_t a = 0; a < n; ++a) {
        const double ang = 2.0 * M_PI * static_cast<double>(a) /
            static_cast<double>(n) - M_PI / 2.0;
        const double dx = std::cos(ang), dy = std::sin(ang);
        // Spoke.
        for (int t = 1; t <= radius; ++t) {
            plot(cx + 2.0 * dx * t, cy + dy * t, '.');
        }
        // Value marker plus axis digit at the rim.
        const double v = clampAxis(star.values[a]);
        plot(cx + 2.0 * dx * v * radius, cy + dy * v * radius, 'o');
        plot(cx + 2.0 * dx * (radius + 0.49), cy + dy * (radius + 0.49),
             static_cast<char>('1' + static_cast<int>(a % 9)));
    }
    plot(cx, cy, '+');

    std::ostringstream out;
    out << star.name << '\n';
    for (const auto &row : grid)
        out << row << '\n';
    for (size_t a = 0; a < n; ++a) {
        out << "  " << (a + 1) << ". "
            << (a < star.axes.size() ? star.axes[a] : "?") << " = ";
        out.precision(3);
        out << star.values[a] << '\n';
    }
    return out.str();
}

std::string
renderKiviatBars(const KiviatStar &star, int width)
{
    std::ostringstream out;
    for (size_t a = 0; a < star.values.size(); ++a) {
        const double v = clampAxis(star.values[a]);
        const int fill = static_cast<int>(std::lround(v * width));
        out << '[';
        for (int i = 0; i < width; ++i)
            out << (i < fill ? '#' : ' ');
        out << ']';
    }
    return out.str();
}

} // namespace mica
