/**
 * @file
 * Genetic-algorithm feature selection (Section V-B).
 *
 * A solution is a bitmask over the N characteristics. The fitness is
 *
 *     f = rho * (1 - n/N)
 *
 * where rho is the Pearson correlation between pairwise benchmark
 * distances in the selected subspace and in the full space, and n is the
 * number of selected characteristics. The first factor rewards fidelity
 * to the full-space structure; the second rewards small subsets, which
 * is what makes the retained characteristics cheap to measure.
 *
 * The fitness engine (FitnessEval) is public so callers scoring many
 * subsets against one space (the GA itself, the evaluation benches,
 * correlation-elimination comparisons) build its O(n^2 * C) per-pair
 * precompute once and share it, instead of rebuilding it per call.
 * A fitness value is a pure function of the bitmask, so evaluating
 * genomes across a pipeline::ThreadPool is byte-identical to the
 * serial loop for any worker count; the per-bitmask memo is sharded by
 * mask hash so concurrent workers merge their results without
 * serializing on one lock.
 */

#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "methodology/workload_space.hh"

namespace mica
{

/**
 * Fitness evaluation engine. Pre-computes, for every characteristic,
 * the squared per-pair contribution to the Euclidean distance; a
 * subset's distance vector is then a masked sum, which keeps the GA's
 * inner loop cheap. Thread-safe: compute() is pure, operator() memoizes
 * per bitmask in hash-sharded caches.
 */
class FitnessEval
{
  public:
    /**
     * Build the per-characteristic pair precompute (blocked across the
     * pool when given; the space must stay alive only for the ctor).
     * @throw std::invalid_argument for more than 64 characteristics.
     */
    explicit FitnessEval(const WorkloadSpace &space,
                         pipeline::ThreadPool *pool = nullptr);

    size_t numChars() const { return numChars_; }
    size_t numPairs() const { return pairs_; }

    /**
     * Evaluate a bitmask from scratch — a pure function of the mask,
     * no cache involved. @return {fitness, rho}.
     */
    std::pair<double, double> compute(uint64_t mask) const;

    /** Memoized compute(); safe to call from pool workers. */
    std::pair<double, double> operator()(uint64_t mask) const;

  private:
    struct Shard
    {
        std::mutex mutex;
        std::unordered_map<uint64_t, std::pair<double, double>> memo;
    };
    static constexpr size_t kShards = 16;

    size_t numChars_ = 0;
    size_t pairs_ = 0;
    std::vector<double> fullDist_;
    double fullMean_ = 0.0;         ///< mean of fullDist_
    double fullVar_ = 0.0;          ///< sum of squared deviations
    std::vector<double> sq_;        ///< [c * pairs_ + p] squared deltas
    mutable std::array<Shard, kShards> shards_;
};

/** GA hyper-parameters (defaults tuned for the 47-char space). */
struct GaConfig
{
    size_t populationSize = 64;
    size_t maxGenerations = 300;
    size_t stallGenerations = 40;   ///< stop if no improvement this long
    double mutationRate = 0.02;     ///< per-bit flip probability
    double crossoverRate = 0.9;     ///< else clone a parent
    size_t tournamentSize = 3;
    size_t eliteCount = 2;          ///< solutions copied unchanged
    uint64_t seed = 20061027;       ///< IISWC 2006 :-)
};

/** Outcome of a GA run. */
struct GaResult
{
    std::vector<size_t> selected;   ///< chosen characteristic indices
    double fitness = 0.0;           ///< f = rho * (1 - n/N)
    double distanceCorrelation = 0.0;   ///< the rho factor alone
    size_t generationsRun = 0;
    std::vector<double> bestFitnessHistory;    ///< per generation
};

/**
 * Evaluate the GA fitness of an explicit subset against a shared
 * engine. @return {fitness, rho}.
 */
std::pair<double, double>
subsetFitness(const FitnessEval &eval, const std::vector<size_t> &subset);

/**
 * Convenience overload that builds a throwaway FitnessEval — fine for
 * a one-off score, quadratic-in-benchmarks wasteful in a loop; build
 * one FitnessEval and use the overload above instead.
 */
std::pair<double, double>
subsetFitness(const WorkloadSpace &space, const std::vector<size_t> &subset);

/**
 * Run the genetic algorithm against a workload space. Deterministic for
 * a given configuration/seed: with a pool, each generation's genome
 * evaluations fan out across the workers, and the selected masks are
 * byte-identical to the serial run for any worker count (breeding and
 * selection always consume the single RNG stream on the calling
 * thread).
 */
GaResult geneticSelect(const WorkloadSpace &space, const GaConfig &cfg = {},
                       pipeline::ThreadPool *pool = nullptr);

} // namespace mica
