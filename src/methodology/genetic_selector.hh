/**
 * @file
 * Genetic-algorithm feature selection (Section V-B).
 *
 * A solution is a bitmask over the N characteristics. The fitness is
 *
 *     f = rho * (1 - n/N)
 *
 * where rho is the Pearson correlation between pairwise benchmark
 * distances in the selected subspace and in the full space, and n is the
 * number of selected characteristics. The first factor rewards fidelity
 * to the full-space structure; the second rewards small subsets, which
 * is what makes the retained characteristics cheap to measure.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "methodology/workload_space.hh"

namespace mica
{

/** GA hyper-parameters (defaults tuned for the 47-char space). */
struct GaConfig
{
    size_t populationSize = 64;
    size_t maxGenerations = 300;
    size_t stallGenerations = 40;   ///< stop if no improvement this long
    double mutationRate = 0.02;     ///< per-bit flip probability
    double crossoverRate = 0.9;     ///< else clone a parent
    size_t tournamentSize = 3;
    size_t eliteCount = 2;          ///< solutions copied unchanged
    uint64_t seed = 20061027;       ///< IISWC 2006 :-)
};

/** Outcome of a GA run. */
struct GaResult
{
    std::vector<size_t> selected;   ///< chosen characteristic indices
    double fitness = 0.0;           ///< f = rho * (1 - n/N)
    double distanceCorrelation = 0.0;   ///< the rho factor alone
    size_t generationsRun = 0;
    std::vector<double> bestFitnessHistory;    ///< per generation
};

/**
 * Evaluate the GA fitness of an explicit subset (used by tests and the
 * evaluation benches). @return {fitness, rho}.
 */
std::pair<double, double>
subsetFitness(const WorkloadSpace &space, const std::vector<size_t> &subset);

/**
 * Run the genetic algorithm against a workload space. Deterministic for
 * a given configuration/seed.
 */
GaResult geneticSelect(const WorkloadSpace &space, const GaConfig &cfg = {});

} // namespace mica
