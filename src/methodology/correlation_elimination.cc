#include "methodology/correlation_elimination.hh"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hh"

namespace mica
{

std::vector<size_t>
CorrelationEliminationResult::retained(size_t k) const
{
    // The first (numChars - k) entries of eliminationOrder are gone.
    std::vector<bool> removed(numChars, false);
    const size_t toRemove = numChars > k ? numChars - k : 0;
    for (size_t i = 0; i < toRemove && i < eliminationOrder.size(); ++i)
        removed[eliminationOrder[i]] = true;
    std::vector<size_t> keep;
    keep.reserve(k);
    for (size_t c = 0; c < numChars; ++c)
        if (!removed[c])
            keep.push_back(c);
    return keep;
}

CorrelationEliminationResult
correlationElimination(const WorkloadSpace &space)
{
    const size_t n = space.numChars();
    CorrelationEliminationResult res;
    res.numChars = n;
    res.distanceCorrByK.assign(n, 0.0);
    if (n == 0)
        return res;

    // Precompute the full correlation matrix once; the average over the
    // active set is recomputed per step.
    const Matrix corr = correlationMatrix(space.normalized());
    const auto &fullDist = space.distances().condensed();

    std::vector<size_t> active(n);
    for (size_t c = 0; c < n; ++c)
        active[c] = c;

    // Full space trivially correlates perfectly with itself.
    res.distanceCorrByK[n - 1] = 1.0;

    while (active.size() > 1) {
        // Rank by average absolute correlation against the other
        // active characteristics.
        size_t worstPos = 0;
        double worstAvg = -1.0;
        for (size_t i = 0; i < active.size(); ++i) {
            double sum = 0.0;
            for (size_t j = 0; j < active.size(); ++j) {
                if (i == j)
                    continue;
                sum += std::fabs(corr.at(active[i], active[j]));
            }
            const double avg =
                sum / static_cast<double>(active.size() - 1);
            if (avg > worstAvg) {
                worstAvg = avg;
                worstPos = i;
            }
        }
        res.eliminationOrder.push_back(active[worstPos]);
        active.erase(active.begin() + static_cast<long>(worstPos));

        const DistanceMatrix sub = space.distancesForSubset(active);
        res.distanceCorrByK[active.size() - 1] =
            pearson(fullDist, sub.condensed());
    }
    return res;
}

} // namespace mica
