/**
 * @file
 * Implementation of cluster-medoid benchmark subsetting.
 */

#include "methodology/subsetting.hh"

#include <algorithm>
#include <cmath>

#include "stats/kmeans.hh"

namespace mica
{

namespace
{

double
rowDistance(const Matrix &m, size_t a, const double *b)
{
    double d2 = 0.0;
    const double *ra = m.row(a);
    for (size_t c = 0; c < m.cols(); ++c) {
        const double d = ra[c] - b[c];
        d2 += d * d;
    }
    return std::sqrt(d2);
}

/** Build a SubsetResult from a k-means fit over `data`. */
SubsetResult
fromFit(const Matrix &data, const KMeansResult &fit)
{
    SubsetResult out;
    out.populationSize = data.rows();

    for (size_t c = 0; c < fit.k; ++c) {
        const auto members = fit.members(c);
        if (members.empty())
            continue;

        // Medoid: the member closest to the centroid.
        size_t medoid = members[0];
        double best = 1e300;
        for (size_t m : members) {
            const double d = rowDistance(data, m, fit.centroids.row(c));
            if (d < best) {
                best = d;
                medoid = m;
            }
        }

        Representative rep;
        rep.row = medoid;
        rep.name = medoid < data.rowNames.size() ? data.rowNames[medoid]
                                                 : std::to_string(medoid);
        rep.covers = members;
        double sum = 0.0;
        for (size_t m : members) {
            const double d = rowDistance(data, m, data.row(medoid));
            rep.maxDistance = std::max(rep.maxDistance, d);
            sum += d;
        }
        rep.meanDistance = sum / static_cast<double>(members.size());
        out.representatives.push_back(std::move(rep));
    }

    // Population-level coverage.
    double sum = 0.0;
    for (const auto &rep : out.representatives) {
        out.maxCoverDistance =
            std::max(out.maxCoverDistance, rep.maxDistance);
        sum += rep.meanDistance *
               static_cast<double>(rep.covers.size());
    }
    out.meanCoverDistance =
        out.populationSize
            ? sum / static_cast<double>(out.populationSize) : 0.0;
    out.reductionFactor =
        out.representatives.empty()
            ? 0.0
            : static_cast<double>(out.populationSize) /
                  static_cast<double>(out.representatives.size());

    std::sort(out.representatives.begin(), out.representatives.end(),
              [](const Representative &a, const Representative &b) {
                  if (a.covers.size() != b.covers.size())
                      return a.covers.size() > b.covers.size();
                  return a.row < b.row;
              });
    return out;
}

} // namespace

std::vector<size_t>
SubsetResult::selectedRows() const
{
    std::vector<size_t> rows;
    rows.reserve(representatives.size());
    for (const auto &r : representatives)
        rows.push_back(r.row);
    std::sort(rows.begin(), rows.end());
    return rows;
}

SubsetResult
selectRepresentatives(const Matrix &data, size_t maxK, uint64_t seed,
                      double bicFrac, double bicVarFloor,
                      pipeline::ThreadPool *pool)
{
    const BicSweepResult sweep =
        bicSweep(data, maxK, seed, bicFrac, bicVarFloor, pool);
    if (sweep.fits.empty())
        return {};      // empty dataset: nothing to represent
    return fromFit(data, sweep.fits[sweep.chosenK - 1]);
}

SubsetResult
selectKRepresentatives(const Matrix &data, size_t k, uint64_t seed,
                       pipeline::ThreadPool *pool)
{
    KMeansParams params;
    params.k = std::min(k, data.rows());
    params.seed = seed;
    params.restarts = 5;
    return fromFit(data, kMeansFit(data, params, pool));
}

} // namespace mica
