/**
 * @file
 * Kiviat (radar/star) plot data and ASCII rendering (Fig. 6).
 *
 * Each benchmark is drawn as a star whose axes are the key
 * microarchitecture-independent characteristics, min-max normalized to
 * [0, 1] across the benchmark population so the plots are comparable.
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "stats/matrix.hh"

namespace mica
{

/** Kiviat data for one benchmark. */
struct KiviatStar
{
    std::string name;
    std::vector<std::string> axes;
    std::vector<double> values;     ///< normalized to [0, 1]
};

/**
 * Build kiviat stars for every row of a dataset. Values are min-max
 * normalized per column; degenerate datasets stay well-defined (an
 * empty matrix yields no stars, constant columns and non-finite
 * values sit at the 0.5 midpoint — see minmaxNormalize).
 */
std::vector<KiviatStar> buildKiviats(const Matrix &data);

/**
 * Render one star as monospace ASCII art: spokes at equal angles, the
 * value marked on each spoke, axis labels in a legend below.
 * Non-finite values plot at the center; a star with no axes renders
 * as just the center glyph and its name.
 *
 * @param star   the star to render
 * @param radius plot radius in character cells (rows; columns are 2x),
 *               clamped to at least 1
 */
std::string renderKiviat(const KiviatStar &star, int radius = 8);

/** Render a compact one-line bar summary (one block per axis). */
std::string renderKiviatBars(const KiviatStar &star, int width = 10);

} // namespace mica
