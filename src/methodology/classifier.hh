/**
 * @file
 * Benchmark-tuple similarity classification (Section IV, Table III).
 *
 * Every benchmark pair ("tuple") is classified by whether its distance
 * is large or small in two spaces: the hardware-performance-counter
 * space (the reference) and a microarchitecture-independent space (the
 * candidate). "Large" means exceeding a threshold fraction (20% in the
 * paper) of the maximum distance observed in that space.
 */

#pragma once

#include <cstddef>
#include <vector>

namespace mica
{

/** Fractions (and counts) of the four Table III quadrants. */
struct SimilarityQuadrants
{
    // Counts.
    size_t truePositive = 0;    ///< large in both spaces
    size_t trueNegative = 0;    ///< small in both spaces
    size_t falsePositive = 0;   ///< small reference, large candidate
    size_t falseNegative = 0;   ///< large reference, small candidate
    size_t total = 0;

    // Thresholds actually applied (absolute distances).
    double refThreshold = 0.0;
    double candThreshold = 0.0;

    double fracTP() const { return frac(truePositive); }
    double fracTN() const { return frac(trueNegative); }
    double fracFP() const { return frac(falsePositive); }
    double fracFN() const { return frac(falseNegative); }

    /** Sensitivity: P(large candidate | large reference). */
    double
    sensitivity() const
    {
        const size_t denom = truePositive + falseNegative;
        return denom ? static_cast<double>(truePositive) /
                       static_cast<double>(denom) : 0.0;
    }

    /** Specificity: P(small candidate | small reference). */
    double
    specificity() const
    {
        const size_t denom = trueNegative + falsePositive;
        return denom ? static_cast<double>(trueNegative) /
                       static_cast<double>(denom) : 0.0;
    }

  private:
    double
    frac(size_t n) const
    {
        return total ? static_cast<double>(n) /
                       static_cast<double>(total) : 0.0;
    }
};

/**
 * Classify all benchmark tuples.
 *
 * @param refDist  condensed distances in the reference (HPC) space
 * @param candDist condensed distances in the candidate (MICA) space
 * @param refFrac  "large" threshold as a fraction of max(refDist)
 * @param candFrac "large" threshold as a fraction of max(candDist)
 */
SimilarityQuadrants classifyTuples(const std::vector<double> &refDist,
                                   const std::vector<double> &candDist,
                                   double refFrac = 0.2,
                                   double candFrac = 0.2);

} // namespace mica
