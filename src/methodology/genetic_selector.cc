#include "methodology/genetic_selector.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "stats/descriptive.hh"
#include "stats/rng.hh"

namespace mica
{

namespace
{

/**
 * Fitness evaluation engine. Pre-computes, for every characteristic,
 * the squared per-pair contribution to the Euclidean distance; a
 * subset's distance vector is then a masked sum, which keeps the GA's
 * inner loop cheap. Fitness values are memoized per bitmask.
 */
class FitnessEval
{
  public:
    explicit FitnessEval(const WorkloadSpace &space)
        : numChars_(space.numChars()),
          fullDist_(space.distances().condensed())
    {
        if (numChars_ > 64)
            throw std::invalid_argument("GA supports up to 64 chars");
        const Matrix &m = space.normalized();
        const size_t pairs = fullDist_.size();
        sq_.assign(numChars_, std::vector<double>(pairs));
        size_t p = 0;
        for (size_t i = 0; i < m.rows(); ++i) {
            for (size_t j = i + 1; j < m.rows(); ++j, ++p) {
                for (size_t c = 0; c < numChars_; ++c) {
                    const double d = m.at(i, c) - m.at(j, c);
                    sq_[c][p] = d * d;
                }
            }
        }
    }

    size_t numChars() const { return numChars_; }

    /** @return {fitness, rho} for a bitmask. */
    std::pair<double, double>
    operator()(uint64_t mask)
    {
        auto it = memo_.find(mask);
        if (it != memo_.end())
            return it->second;

        const size_t pairs = fullDist_.size();
        std::vector<double> dist(pairs, 0.0);
        size_t n = 0;
        for (size_t c = 0; c < numChars_; ++c) {
            if (!(mask & (1ull << c)))
                continue;
            ++n;
            const auto &col = sq_[c];
            for (size_t p = 0; p < pairs; ++p)
                dist[p] += col[p];
        }
        std::pair<double, double> result{0.0, 0.0};
        if (n > 0) {
            for (double &d : dist)
                d = std::sqrt(d);
            const double rho = pearson(fullDist_, dist);
            const double sizeFactor = 1.0 -
                static_cast<double>(n) / static_cast<double>(numChars_);
            result = {rho * sizeFactor, rho};
        }
        memo_[mask] = result;
        return result;
    }

  private:
    size_t numChars_;
    std::vector<double> fullDist_;
    std::vector<std::vector<double>> sq_;
    std::unordered_map<uint64_t, std::pair<double, double>> memo_;
};

uint64_t
randomMask(Rng &rng, size_t n)
{
    // Varying density seeds the population with diverse subset sizes.
    const double density = 0.1 + 0.8 * rng.unit();
    uint64_t m = 0;
    for (size_t c = 0; c < n; ++c)
        if (rng.chance(density))
            m |= 1ull << c;
    if (m == 0)
        m |= 1ull << rng.below(n);
    return m;
}

size_t
tournament(Rng &rng, const std::vector<double> &fit, size_t k)
{
    size_t best = rng.below(fit.size());
    for (size_t i = 1; i < k; ++i) {
        const size_t cand = rng.below(fit.size());
        if (fit[cand] > fit[best])
            best = cand;
    }
    return best;
}

} // namespace

std::pair<double, double>
subsetFitness(const WorkloadSpace &space, const std::vector<size_t> &subset)
{
    FitnessEval eval(space);
    uint64_t mask = 0;
    for (size_t c : subset)
        mask |= 1ull << c;
    return eval(mask);
}

GaResult
geneticSelect(const WorkloadSpace &space, const GaConfig &cfg)
{
    FitnessEval eval(space);
    const size_t n = eval.numChars();
    Rng rng(cfg.seed);

    std::vector<uint64_t> pop(cfg.populationSize);
    for (auto &m : pop)
        m = randomMask(rng, n);

    uint64_t bestMask = pop[0];
    double bestFit = -1.0;
    size_t sinceImprove = 0;

    GaResult res;
    std::vector<double> fit(pop.size());

    for (size_t gen = 0; gen < cfg.maxGenerations; ++gen) {
        for (size_t i = 0; i < pop.size(); ++i)
            fit[i] = eval(pop[i]).first;

        // Track the global best.
        bool improved = false;
        for (size_t i = 0; i < pop.size(); ++i) {
            if (fit[i] > bestFit + 1e-12) {
                bestFit = fit[i];
                bestMask = pop[i];
                improved = true;
            }
        }
        res.bestFitnessHistory.push_back(bestFit);
        res.generationsRun = gen + 1;
        sinceImprove = improved ? 0 : sinceImprove + 1;
        if (sinceImprove >= cfg.stallGenerations)
            break;

        // Build the next generation: elitism + tournament selection +
        // uniform crossover + per-bit mutation.
        std::vector<size_t> order(pop.size());
        for (size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t b) { return fit[a] > fit[b]; });

        std::vector<uint64_t> next;
        next.reserve(pop.size());
        for (size_t e = 0; e < cfg.eliteCount && e < pop.size(); ++e)
            next.push_back(pop[order[e]]);

        while (next.size() < pop.size()) {
            const uint64_t p1 =
                pop[tournament(rng, fit, cfg.tournamentSize)];
            const uint64_t p2 =
                pop[tournament(rng, fit, cfg.tournamentSize)];
            uint64_t child = p1;
            if (rng.chance(cfg.crossoverRate)) {
                // Uniform crossover: take each bit from either parent.
                const uint64_t pickMask = rng.next() &
                    ((n >= 64) ? ~0ull : ((1ull << n) - 1));
                child = (p1 & pickMask) | (p2 & ~pickMask);
            }
            for (size_t c = 0; c < n; ++c)
                if (rng.chance(cfg.mutationRate))
                    child ^= 1ull << c;
            if (child == 0)
                child |= 1ull << rng.below(n);
            next.push_back(child);
        }
        pop.swap(next);
    }

    const auto [f, rho] = eval(bestMask);
    res.fitness = f;
    res.distanceCorrelation = rho;
    for (size_t c = 0; c < n; ++c)
        if (bestMask & (1ull << c))
            res.selected.push_back(c);
    return res;
}

} // namespace mica
