#include "methodology/genetic_selector.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/obs.hh"
#include "pipeline/thread_pool.hh"
#include "stats/rng.hh"
#include "util/flat_hash.hh"

namespace mica
{

namespace
{

uint64_t
randomMask(Rng &rng, size_t n)
{
    // Varying density seeds the population with diverse subset sizes.
    const double density = 0.1 + 0.8 * rng.unit();
    uint64_t m = 0;
    for (size_t c = 0; c < n; ++c)
        if (rng.chance(density))
            m |= 1ull << c;
    if (m == 0)
        m |= 1ull << rng.below(n);
    return m;
}

size_t
tournament(Rng &rng, const std::vector<double> &fit, size_t k)
{
    size_t best = rng.below(fit.size());
    for (size_t i = 1; i < k; ++i) {
        const size_t cand = rng.below(fit.size());
        if (fit[cand] > fit[best])
            best = cand;
    }
    return best;
}

} // namespace

FitnessEval::FitnessEval(const WorkloadSpace &space,
                         pipeline::ThreadPool *pool)
    : numChars_(space.numChars()),
      pairs_(space.distances().numPairs()),
      fullDist_(space.distances().condensed())
{
    if (numChars_ > 64)
        throw std::invalid_argument("GA supports up to 64 chars");

    // Moments of the full-space distance vector, computed once with the
    // same summation order as stats::pearson so cached rho values match
    // a from-scratch pearson() call bit for bit.
    double sum = 0.0;
    for (double v : fullDist_)
        sum += v;
    fullMean_ = pairs_ ? sum / static_cast<double>(pairs_) : 0.0;
    fullVar_ = 0.0;
    for (double v : fullDist_) {
        const double dv = v - fullMean_;
        fullVar_ += dv * dv;
    }

    // Per-characteristic squared pair deltas, blocked over contiguous
    // condensed ranges: block b owns pairs [cuts[b], cuts[b+1]) and
    // writes sq_[c * pairs_ + p] for every c — disjoint slices, so the
    // parallel fill is bit-identical to the serial one.
    const Matrix &m = space.normalized();
    sq_.resize(numChars_ * pairs_);
    const size_t blocks =
        pool && pool->workerCount() > 1
            ? std::min<size_t>(pairs_, pool->workerCount() * 4)
            : 1;
    pipeline::parallelBlocks(pool, blocks, [&](size_t b) {
        const size_t p0 = pairs_ * b / blocks;
        const size_t p1 = pairs_ * (b + 1) / blocks;
        if (p0 >= p1)
            return;
        auto [i, j] = space.distances().pairOf(p0);
        const double *ri = m.row(i);
        for (size_t p = p0; p < p1; ++p) {
            const double *rj = m.row(j);
            for (size_t c = 0; c < numChars_; ++c) {
                const double d = ri[c] - rj[c];
                sq_[c * pairs_ + p] = d * d;
            }
            if (++j == m.rows()) {
                ++i;
                j = i + 1;
                ri = m.row(i);
            }
        }
    });
}

std::pair<double, double>
FitnessEval::compute(uint64_t mask) const
{
    size_t idx[64];
    size_t n = 0;
    for (size_t c = 0; c < numChars_; ++c)
        if (mask & (1ull << c))
            idx[n++] = c;
    if (n == 0 || pairs_ == 0)
        return {0.0, 0.0};

    // Reused per-thread scratch: one allocation per worker, not per
    // evaluated genome.
    thread_local std::vector<double> dist;
    dist.assign(pairs_, 0.0);

    // Masked sum of the squared per-characteristic contributions,
    // four columns per sweep. Each element still accumulates its
    // columns in ascending order, so the sums match the one-column-
    // per-sweep reference bit for bit; the fusion just quarters the
    // passes over the scratch vector.
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        const double *c0 = &sq_[idx[c + 0] * pairs_];
        const double *c1 = &sq_[idx[c + 1] * pairs_];
        const double *c2 = &sq_[idx[c + 2] * pairs_];
        const double *c3 = &sq_[idx[c + 3] * pairs_];
        for (size_t p = 0; p < pairs_; ++p) {
            double s = dist[p];
            s += c0[p];
            s += c1[p];
            s += c2[p];
            s += c3[p];
            dist[p] = s;
        }
    }
    for (; c < n; ++c) {
        const double *col = &sq_[idx[c] * pairs_];
        for (size_t p = 0; p < pairs_; ++p)
            dist[p] += col[p];
    }

    // Fused sqrt + Pearson against the full-space distances, using the
    // precomputed full-side moments (same arithmetic as
    // stats::pearson, minus the redundant full-vector passes).
    double sumB = 0.0;
    for (size_t p = 0; p < pairs_; ++p) {
        dist[p] = std::sqrt(dist[p]);
        sumB += dist[p];
    }
    const double mb = sumB / static_cast<double>(pairs_);
    double sab = 0.0, sbb = 0.0;
    for (size_t p = 0; p < pairs_; ++p) {
        const double da = fullDist_[p] - fullMean_;
        const double db = dist[p] - mb;
        sab += da * db;
        sbb += db * db;
    }
    const double rho = (fullVar_ <= 0.0 || sbb <= 0.0)
        ? 0.0
        : sab / std::sqrt(fullVar_ * sbb);
    const double sizeFactor =
        1.0 - static_cast<double>(n) / static_cast<double>(numChars_);
    return {rho * sizeFactor, rho};
}

std::pair<double, double>
FitnessEval::operator()(uint64_t mask) const
{
    Shard &shard = shards_[util::hashMix(mask) % kShards];
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.memo.find(mask);
        if (it != shard.memo.end())
            return it->second;
    }
    // Compute outside the lock: concurrent workers may race on the
    // same fresh mask and both compute it, but the value is a pure
    // function of the mask, so whichever insert lands is identical.
    const std::pair<double, double> result = compute(mask);
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.memo.emplace(mask, result);
    return result;
}

std::pair<double, double>
subsetFitness(const FitnessEval &eval, const std::vector<size_t> &subset)
{
    uint64_t mask = 0;
    for (size_t c : subset)
        mask |= 1ull << c;
    return eval(mask);
}

std::pair<double, double>
subsetFitness(const WorkloadSpace &space, const std::vector<size_t> &subset)
{
    return subsetFitness(FitnessEval(space), subset);
}

GaResult
geneticSelect(const WorkloadSpace &space, const GaConfig &cfg,
              pipeline::ThreadPool *pool)
{
    FitnessEval eval(space, pool);
    const size_t n = eval.numChars();
    Rng rng(cfg.seed);

    std::vector<uint64_t> pop(cfg.populationSize);
    for (auto &m : pop)
        m = randomMask(rng, n);

    uint64_t bestMask = pop[0];
    double bestFit = -1.0;
    size_t sinceImprove = 0;

    GaResult res;
    std::vector<double> fit(pop.size());

    // Genome evaluations fan out across the pool. fit[i] depends only
    // on pop[i] (FitnessEval is pure per mask), so any worker count —
    // including the serial fallback — produces identical fitness
    // vectors; everything that consumes the shared RNG stays on this
    // thread, in program order.
    const size_t chunks = pool && pool->workerCount() > 1
        ? std::min(pop.size(), pool->workerCount() * 4)
        : 1;

    for (size_t gen = 0; gen < cfg.maxGenerations; ++gen) {
        static obs::Counter generations("ga.generation.count");
        generations.add(1);
        obs::ObsSpan sp("ga.generation");
        sp.arg("gen", static_cast<uint64_t>(gen));
        pipeline::parallelBlocks(pool, chunks, [&](size_t b) {
            const size_t lo = pop.size() * b / chunks;
            const size_t hi = pop.size() * (b + 1) / chunks;
            for (size_t i = lo; i < hi; ++i)
                fit[i] = eval(pop[i]).first;
        });

        // Track the global best.
        bool improved = false;
        for (size_t i = 0; i < pop.size(); ++i) {
            if (fit[i] > bestFit + 1e-12) {
                bestFit = fit[i];
                bestMask = pop[i];
                improved = true;
            }
        }
        sp.argF("best_fitness", bestFit);
        res.bestFitnessHistory.push_back(bestFit);
        res.generationsRun = gen + 1;
        sinceImprove = improved ? 0 : sinceImprove + 1;
        if (sinceImprove >= cfg.stallGenerations)
            break;

        // Build the next generation: elitism + tournament selection +
        // uniform crossover + per-bit mutation.
        std::vector<size_t> order(pop.size());
        for (size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t b) { return fit[a] > fit[b]; });

        std::vector<uint64_t> next;
        next.reserve(pop.size());
        for (size_t e = 0; e < cfg.eliteCount && e < pop.size(); ++e)
            next.push_back(pop[order[e]]);

        while (next.size() < pop.size()) {
            const uint64_t p1 =
                pop[tournament(rng, fit, cfg.tournamentSize)];
            const uint64_t p2 =
                pop[tournament(rng, fit, cfg.tournamentSize)];
            uint64_t child = p1;
            if (rng.chance(cfg.crossoverRate)) {
                // Uniform crossover: take each bit from either parent.
                const uint64_t pickMask = rng.next() &
                    ((n >= 64) ? ~0ull : ((1ull << n) - 1));
                child = (p1 & pickMask) | (p2 & ~pickMask);
            }
            for (size_t c = 0; c < n; ++c)
                if (rng.chance(cfg.mutationRate))
                    child ^= 1ull << c;
            if (child == 0)
                child |= 1ull << rng.below(n);
            next.push_back(child);
        }
        pop.swap(next);
    }

    const auto [f, rho] = eval(bestMask);
    res.fitness = f;
    res.distanceCorrelation = rho;
    for (size_t c = 0; c < n; ++c)
        if (bestMask & (1ull << c))
            res.selected.push_back(c);
    return res;
}

} // namespace mica
