/**
 * @file
 * A workload space: a normalized dataset plus its pairwise distances.
 *
 * Section IV of the paper builds two of these (one from the 47 MICA
 * characteristics, one from the 7 HPC metrics): z-score normalize every
 * characteristic across benchmarks, then compare benchmarks by Euclidean
 * distance.
 */

#pragma once

#include <cstddef>
#include <vector>

#include "stats/distance.hh"
#include "stats/matrix.hh"

namespace mica
{

/** Immutable workload space built from a raw dataset. */
class WorkloadSpace
{
  public:
    /**
     * Normalize (z-score per column) and compute all pair distances.
     * A pool parallelizes the distance-matrix build (bit-identical to
     * the serial build; see DistanceMatrix).
     */
    explicit WorkloadSpace(Matrix raw,
                           pipeline::ThreadPool *pool = nullptr);

    /** @return the dataset as measured. */
    const Matrix &raw() const { return raw_; }

    /** @return the z-score normalized dataset. */
    const Matrix &normalized() const { return norm_; }

    /** @return pairwise Euclidean distances in the normalized space. */
    const DistanceMatrix &distances() const { return dist_; }

    /** @return number of benchmarks. */
    size_t numBenchmarks() const { return raw_.rows(); }

    /** @return number of characteristics. */
    size_t numChars() const { return raw_.cols(); }

    /**
     * Pairwise distances using only a subset of (normalized) columns;
     * this is the quantity the feature-selection methods score.
     */
    DistanceMatrix
    distancesForSubset(const std::vector<size_t> &cols) const
    {
        return DistanceMatrix(norm_, cols);
    }

  private:
    Matrix raw_;
    Matrix norm_;
    DistanceMatrix dist_;
};

} // namespace mica
