#include "methodology/cluster_report.hh"

#include <algorithm>

namespace mica
{

std::vector<size_t>
ClusterReport::suiteHistogram(
    const BenchmarkCluster &c,
    const std::vector<std::string> &suitePrefixes) const
{
    std::vector<size_t> hist(suitePrefixes.size(), 0);
    for (const auto &name : c.memberNames) {
        for (size_t s = 0; s < suitePrefixes.size(); ++s) {
            if (name.rfind(suitePrefixes[s], 0) == 0) {
                ++hist[s];
                break;
            }
        }
    }
    return hist;
}

ClusterReport
clusterBenchmarks(const Matrix &data, size_t maxK, uint64_t seed,
                  double bicFrac, double bicVarFloor,
                  pipeline::ThreadPool *pool)
{
    ClusterReport rep;
    BicSweepResult sweep =
        bicSweep(data, maxK, seed, bicFrac, bicVarFloor, pool);
    rep.chosenK = sweep.chosenK;
    rep.bicByK = sweep.bicByK;
    if (sweep.fits.empty())
        return rep;     // empty dataset: no clusters, chosenK == 0
    const KMeansResult &fit = sweep.fits[sweep.chosenK - 1];
    rep.assignment = fit.assignment;

    rep.clusters.resize(fit.k);
    for (size_t c = 0; c < fit.k; ++c) {
        rep.clusters[c].id = c;
        rep.clusters[c].members = fit.members(c);
        for (size_t r : rep.clusters[c].members) {
            rep.clusters[c].memberNames.push_back(
                r < data.rowNames.size() ? data.rowNames[r]
                                         : std::to_string(r));
        }
    }
    // Drop empty clusters, sort by size (largest first).
    rep.clusters.erase(
        std::remove_if(rep.clusters.begin(), rep.clusters.end(),
                       [](const BenchmarkCluster &c) {
                           return c.members.empty();
                       }),
        rep.clusters.end());
    std::sort(rep.clusters.begin(), rep.clusters.end(),
              [](const BenchmarkCluster &a, const BenchmarkCluster &b) {
                  if (a.members.size() != b.members.size())
                      return a.members.size() > b.members.size();
                  return a.id < b.id;
              });
    return rep;
}

} // namespace mica
