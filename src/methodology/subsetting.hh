/**
 * @file
 * Benchmark-suite subsetting: the downstream application the paper's
 * methodology enables (Section I: "if the new workload domain is not
 * significantly different ... there is no need for including those
 * benchmarks"; cf. Eeckhout et al. [16] and Phansalkar et al. [9]).
 *
 * Given a workload space, pick one representative per behavior cluster
 * so that simulating only the representatives covers the population,
 * and quantify the coverage loss.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "methodology/cluster_report.hh"
#include "stats/matrix.hh"

namespace mica
{

/** One selected representative and the benchmarks it stands in for. */
struct Representative
{
    size_t row = 0;                     ///< dataset row of the pick
    std::string name;                   ///< resolved benchmark name
    std::vector<size_t> covers;         ///< rows it represents
    double maxDistance = 0.0;           ///< worst distance it covers
    double meanDistance = 0.0;          ///< average distance it covers
};

/** Result of a subsetting run. */
struct SubsetResult
{
    std::vector<Representative> representatives;
    size_t populationSize = 0;

    // Coverage statistics over the whole population.
    double maxCoverDistance = 0.0;      ///< worst benchmark-to-rep dist
    double meanCoverDistance = 0.0;     ///< average benchmark-to-rep
    double reductionFactor = 0.0;       ///< population / representatives

    /** @return the selected dataset rows, ascending. */
    std::vector<size_t> selectedRows() const;
};

/**
 * Select cluster medoids as suite representatives.
 *
 * Benchmarks are clustered with k-means (+ BIC model selection, as in
 * Fig. 6); within each cluster the member closest to the centroid is
 * the representative. Coverage distances are Euclidean in the provided
 * space.
 *
 * @param data reduced (or full) normalized dataset with rowNames
 * @param maxK upper end of the BIC sweep
 * @param seed k-means seeding
 * @param bicFrac   BIC within-fraction-of-max rule (0.9 in the paper)
 * @param bicVarFloor measurement-resolution floor (see bicScore)
 * @param pool fan the sweep's (k, restart) Lloyd runs across these
 *        workers; the result is byte-identical for any worker count
 */
SubsetResult selectRepresentatives(const Matrix &data, size_t maxK,
                                   uint64_t seed, double bicFrac = 0.9,
                                   double bicVarFloor = 0.25,
                                   pipeline::ThreadPool *pool = nullptr);

/**
 * Select exactly k representatives (fixed-size subset), bypassing the
 * BIC sweep; used to trade subset size against coverage explicitly.
 * The k-means restarts run as pool jobs when a pool is given.
 */
SubsetResult selectKRepresentatives(const Matrix &data, size_t k,
                                    uint64_t seed,
                                    pipeline::ThreadPool *pool = nullptr);

} // namespace mica
