#include "methodology/workload_space.hh"

#include "stats/descriptive.hh"

namespace mica
{

WorkloadSpace::WorkloadSpace(Matrix raw, pipeline::ThreadPool *pool)
    : raw_(std::move(raw))
{
    norm_ = raw_;
    zscoreNormalize(norm_);
    dist_ = DistanceMatrix(norm_, pool);
}

} // namespace mica
