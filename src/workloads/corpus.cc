#include "workloads/corpus.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "obs/obs.hh"
#include "service/json.hh"
#include "trace/trace_file.hh"
#include "util/checked_io.hh"

namespace mica::workloads
{

namespace
{

namespace fs = std::filesystem;

/** Render a digest the way the manifest stores it. */
std::string
hexDigest(uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Parse "0x..." back to a u64; @return false on malformed text. */
bool
parseHexDigest(const std::string &s, uint64_t &v)
{
    if (s.size() < 3 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X'))
        return false;
    v = 0;
    for (size_t i = 2; i < s.size(); ++i) {
        const char c = s[i];
        unsigned d;
        if (c >= '0' && c <= '9')
            d = static_cast<unsigned>(c - '0');
        else if (c >= 'a' && c <= 'f')
            d = static_cast<unsigned>(c - 'a') + 10;
        else if (c >= 'A' && c <= 'F')
            d = static_cast<unsigned>(c - 'A') + 10;
        else
            return false;
        v = (v << 4) | d;
    }
    return true;
}

bool
isTraceExtension(const std::string &ext)
{
    return ext == ".trace" || ext == ".csv" || ext == ".txt";
}

} // namespace

uint64_t
CorpusShard::records() const
{
    uint64_t n = 0;
    for (const auto &t : traces)
        n += t.records;
    return n;
}

uint64_t
CorpusShard::bytes() const
{
    uint64_t n = 0;
    for (const auto &t : traces)
        n += t.bytes;
    return n;
}

uint64_t
CorpusShard::digest() const
{
    uint64_t h = fnv1a(name.data(), name.size());
    for (const auto &t : traces) {
        h = fnv1a(t.file.data(), t.file.size(), h);
        h = fnv1a(&t.digest, sizeof(t.digest), h);
        h = fnv1a(&t.records, sizeof(t.records), h);
    }
    return h;
}

size_t
CorpusManifest::traceCount() const
{
    size_t n = 0;
    for (const auto &s : shards)
        n += s.traces.size();
    return n;
}

uint64_t
CorpusManifest::records() const
{
    uint64_t n = 0;
    for (const auto &s : shards)
        n += s.records();
    return n;
}

uint64_t
CorpusManifest::bytes() const
{
    uint64_t n = 0;
    for (const auto &s : shards)
        n += s.bytes();
    return n;
}

size_t
CorpusManifest::shardIndex(const std::string &name) const
{
    for (size_t i = 0; i < shards.size(); ++i) {
        if (shards[i].name == name)
            return i;
    }
    return static_cast<size_t>(-1);
}

std::vector<std::string>
CorpusManifest::shardFiles(size_t shard) const
{
    std::vector<std::string> out;
    if (shard >= shards.size())
        return out;
    out.reserve(shards[shard].traces.size());
    for (const auto &t : shards[shard].traces)
        out.push_back((fs::path(root) / t.file).string());
    return out;
}

std::string
CorpusManifest::dump() const
{
    using service::JsonValue;
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue::str(kSchema));
    JsonValue shardArr = JsonValue::array();
    for (const auto &s : shards) {
        JsonValue sj = JsonValue::object();
        sj.set("name", JsonValue::str(s.name));
        JsonValue traceArr = JsonValue::array();
        for (const auto &t : s.traces) {
            JsonValue tj = JsonValue::object();
            tj.set("file", JsonValue::str(t.file));
            tj.set("format",
                   JsonValue::number(static_cast<uint64_t>(t.format)));
            tj.set("records", JsonValue::number(t.records));
            tj.set("bytes", JsonValue::number(t.bytes));
            tj.set("digest", JsonValue::str(hexDigest(t.digest)));
            traceArr.push(std::move(tj));
        }
        sj.set("traces", std::move(traceArr));
        shardArr.push(std::move(sj));
    }
    doc.set("shards", std::move(shardArr));
    return doc.dump();
}

CorpusManifest
scanCorpus(const std::string &dir, size_t shardSize)
{
    obs::ObsSpan sp("corpus.scan");
    if (shardSize == 0)
        throw CorpusError(dir, "shard size must be at least 1");
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        throw CorpusError(dir, "not a directory");

    // Deterministic plan: relative paths, sorted lexicographically, so
    // the same tree shards the same way on every host and filesystem.
    std::vector<std::string> files;
    for (const auto &de : fs::recursive_directory_iterator(dir)) {
        if (!de.is_regular_file())
            continue;
        if (!isTraceExtension(de.path().extension().string()))
            continue;
        files.push_back(
            fs::relative(de.path(), dir, ec).generic_string());
    }
    if (files.empty())
        throw CorpusError(dir, "no trace files found (looked for "
                               "*.trace, *.csv, *.txt)");
    std::sort(files.begin(), files.end());

    CorpusManifest m;
    m.root = fs::absolute(dir).lexically_normal().string();
    for (size_t base = 0; base < files.size(); base += shardSize) {
        CorpusShard shard;
        char name[32];
        std::snprintf(name, sizeof(name), "shard-%03zu",
                      m.shards.size());
        shard.name = name;
        const size_t end = std::min(files.size(), base + shardSize);
        for (size_t i = base; i < end; ++i) {
            const std::string abs =
                (fs::path(m.root) / files[i]).string();
            CorpusTrace t;
            t.file = files[i];
            t.bytes = fs::file_size(abs, ec);
            if (fs::path(files[i]).extension() == ".trace") {
                // Full validation now beats a quarantine surprise
                // mid-sweep: an unreadable corpus should be fixed or
                // pruned before it is sharded.
                const TraceFileInfo fi = probeTraceFile(abs);
                t.format = fi.version;
                t.records = fi.recordCount;
                t.digest =
                    fnv1a(&fi.recordCount, sizeof(fi.recordCount),
                          fnv1a(&fi.payloadHash,
                                sizeof(fi.payloadHash)));
            } else {
                const std::string bytes =
                    util::readFileBytes(abs, "corpus.scan");
                std::istringstream text(bytes);
                t.format = 0;
                t.records = parseTextTrace(text, abs).size();
                t.digest = fnv1a(bytes.data(), bytes.size());
            }
            shard.traces.push_back(std::move(t));
        }
        m.shards.push_back(std::move(shard));
    }
    sp.arg("files", files.size());
    sp.arg("shards", m.shards.size());
    static obs::Counter scanned("corpus.scan.files");
    scanned.add(files.size());
    return m;
}

void
saveCorpus(const CorpusManifest &m)
{
    const std::string path =
        (fs::path(m.root) / CorpusManifest::kFileName).string();
    util::atomicWriteFile(path, m.dump() + "\n", "corpus.manifest");
}

CorpusManifest
loadCorpus(const std::string &dir)
{
    const std::string path =
        (fs::path(dir) / CorpusManifest::kFileName).string();
    const std::string text = util::readFileBytes(path, "corpus.load");

    service::JsonValue doc;
    std::string err;
    if (!service::parseJson(text, &doc, &err) || !doc.isObject())
        throw CorpusError(path, "not valid JSON: " + err);
    const auto *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != CorpusManifest::kSchema)
        throw CorpusError(path,
                          "schema mismatch (want " +
                              std::string(CorpusManifest::kSchema) +
                              ")");
    const auto *shards = doc.find("shards");
    if (!shards || !shards->isArray() || shards->items().empty())
        throw CorpusError(path, "missing or empty 'shards' array");

    CorpusManifest m;
    m.root = fs::absolute(dir).lexically_normal().string();
    for (const auto &sj : shards->items()) {
        const auto *name = sj.isObject() ? sj.find("name") : nullptr;
        const auto *traces = sj.isObject() ? sj.find("traces") : nullptr;
        if (!name || !name->isString() || name->asString().empty() ||
            !traces || !traces->isArray() || traces->items().empty())
            throw CorpusError(path, "malformed shard entry");
        CorpusShard shard;
        shard.name = name->asString();
        if (m.shardIndex(shard.name) != static_cast<size_t>(-1))
            throw CorpusError(path, "duplicate shard name '" +
                                        shard.name + "'");
        for (const auto &tj : traces->items()) {
            const auto *file = tj.isObject() ? tj.find("file") : nullptr;
            const auto *format =
                tj.isObject() ? tj.find("format") : nullptr;
            const auto *records =
                tj.isObject() ? tj.find("records") : nullptr;
            const auto *bytes = tj.isObject() ? tj.find("bytes") : nullptr;
            const auto *digest =
                tj.isObject() ? tj.find("digest") : nullptr;
            CorpusTrace t;
            if (!file || !file->isString() || file->asString().empty() ||
                !format || format->asCount() < 0 || !records ||
                records->asCount() < 0 || !bytes ||
                bytes->asCount() < 0 || !digest || !digest->isString() ||
                !parseHexDigest(digest->asString(), t.digest))
                throw CorpusError(path,
                                  "malformed trace entry in shard '" +
                                      shard.name + "'");
            t.file = file->asString();
            t.format = static_cast<uint32_t>(format->asCount());
            t.records = static_cast<uint64_t>(records->asCount());
            t.bytes = static_cast<uint64_t>(bytes->asCount());
            shard.traces.push_back(std::move(t));
        }
        m.shards.push_back(std::move(shard));
    }
    return m;
}

} // namespace mica::workloads
