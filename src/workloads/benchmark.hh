/**
 * @file
 * Benchmark descriptors for the 122-entry suite table (Table I).
 *
 * The paper characterizes 122 benchmarks from six suites. This repo
 * substitutes each (suite, program, input) row with a parameterized
 * mini-ISA kernel whose dominant loops mirror the real program's
 * behavior; see DESIGN.md for the substitution argument. Every entry
 * carries the paper's reported dynamic instruction count so Table I can
 * be regenerated side by side with the synthetic counts.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "isa/program.hh"
#include "trace/trace_source.hh"

namespace mica::workloads
{

/** Identification of one Table I row. */
struct BenchmarkInfo
{
    std::string suite;      ///< e.g. "SPEC2000"
    std::string program;    ///< e.g. "bzip2"
    std::string input;      ///< e.g. "graphic"
    uint64_t paperICountM = 0;  ///< Table I dynamic insts (millions)

    /** @return canonical "suite/program.input" name. */
    std::string
    fullName() const
    {
        return suite + "/" + program + "." + input;
    }

    /** @return "program.input" without the suite. */
    std::string
    shortName() const
    {
        return program + "." + input;
    }
};

/**
 * One registered benchmark: its Table I identity plus a builder that
 * assembles the substitute kernel. Building is deferred so that merely
 * enumerating the registry is cheap; programs are assembled on demand.
 *
 * Trace-backed entries (see traceBenchmarks) carry a source factory
 * instead: when `source` is set, profiling pulls records from a fresh
 * TraceSource per job — positioned at the start of the trace — and
 * `build` is never consulted, so a recorded workload is profiled
 * exactly like an interpreted one everywhere downstream.
 */
struct BenchmarkEntry
{
    BenchmarkInfo info;
    std::function<isa::Program()> build;
    std::function<std::unique_ptr<TraceSource>()> source;
};

} // namespace mica::workloads
