/**
 * @file
 * The 122 Table I rows, each bound to a kernel instantiation.
 *
 * Parameter choices implement the substitution argument of DESIGN.md:
 * every benchmark's kernel and sizing are picked so its position along
 * the 47-characteristic axes mirrors the real program's dominant loops
 * (mix, ILP, working set, strides, branch behavior). Inputs of the same
 * program share the kernel family and differ in sizes/seeds, like real
 * input sets do. paperICountM records the dynamic instruction count
 * (millions) the paper reports, for the Table I reproduction.
 */

#include "workloads/registry.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "trace/trace_file.hh"
#include "workloads/kernel_lib.hh"

namespace mica::workloads
{

namespace k = kernels;
using V = k::ImageFilterParams::Variant;

BenchmarkRegistry::BenchmarkRegistry()
{
    auto add = [this](std::string suite, std::string program,
                      std::string input, uint64_t icountM,
                      std::function<isa::Program()> build) {
        entries_.push_back({{std::move(suite), std::move(program),
                             std::move(input), icountM},
                            std::move(build)});
    };

    // ------------------------------------------------------------------
    // BioInfoMark (12): alignment, index scans, HMMs, phylogenetics.
    // ------------------------------------------------------------------
    add("BioInfoMark", "blast", "protein", 81092, [] {
        // Defining trait: a multi-MB index working set probed randomly.
        return k::kmerScan({.dbBytes = 20000, .tableBytes = 1 << 22,
                            .queryBytes = 64, .extendThresholdBits = 5,
                            .iters = 1, .seed = 101});
    });
    add("BioInfoMark", "ce", "ce", 4816, [] {
        return k::dpMatrix({.queryLen = 96, .dbLen = 128, .alphabet = 20,
                            .iters = 1, .seed = 102});
    });
    add("BioInfoMark", "clustalw", "clustalw", 884859, [] {
        return k::dpMatrix({.queryLen = 128, .dbLen = 160, .alphabet = 20,
                            .iters = 1, .seed = 103});
    });
    add("BioInfoMark", "fasta", "fasta34", 759654, [] {
        return k::dpMatrix({.queryLen = 64, .dbLen = 288, .alphabet = 4,
                            .iters = 1, .seed = 104, .matchScore = 5,
                            .mismatchPenalty = -4, .gapPenalty = -7});
    });
    add("BioInfoMark", "glimmer", "004663", 26610, [] {
        // Interpolated Markov scan: small index, no extension phase.
        return k::kmerScan({.dbBytes = 16000, .tableBytes = 1 << 16,
                            .queryBytes = 16, .extendThresholdBits = 12,
                            .iters = 1, .seed = 105});
    });
    add("BioInfoMark", "hmmer", "build", 321, [] {
        return k::hmmViterbi({.states = 48, .seqLen = 160, .alphabet = 20,
                              .iters = 1, .seed = 106,
                              .trainingPass = true});
    });
    add("BioInfoMark", "hmmer", "calibrate", 43048, [] {
        return k::hmmViterbi({.states = 64, .seqLen = 192, .alphabet = 20,
                              .iters = 1, .seed = 107});
    });
    add("BioInfoMark", "hmmer", "search (artemia)", 47, [] {
        return k::hmmViterbi({.states = 48, .seqLen = 128, .alphabet = 20,
                              .iters = 1, .seed = 108});
    });
    add("BioInfoMark", "hmmer", "search (sprot)", 1785862, [] {
        return k::hmmViterbi({.states = 80, .seqLen = 224, .alphabet = 20,
                              .iters = 1, .seed = 109});
    });
    add("BioInfoMark", "phylip", "dnapenny", 184557, [] {
        return k::phyloKernel({.taxa = 24, .sites = 320, .iters = 1,
                               .seed = 110, .parsimony = true});
    });
    add("BioInfoMark", "phylip", "promlk", 557514, [] {
        return k::phyloKernel({.taxa = 20, .sites = 160, .iters = 1,
                               .seed = 111, .parsimony = false});
    });
    add("BioInfoMark", "predator", "predator", 804859, [] {
        // Repeat finding: large-band DP over a long genomic stretch.
        return k::dpMatrix({.queryLen = 48, .dbLen = 448, .alphabet = 4,
                            .iters = 1, .seed = 112, .matchScore = 3,
                            .mismatchPenalty = -2, .gapPenalty = -5});
    });

    // ------------------------------------------------------------------
    // BioMetricsWorkload (8): dense FP linear algebra + GMM scoring.
    // ------------------------------------------------------------------
    add("BioMetricsWorkload", "csu", "Bayesian (project)", 403313, [] {
        return k::matVec({.rows = 192, .cols = 384, .iters = 2,
                          .seed = 201, .unroll = 4});
    });
    add("BioMetricsWorkload", "csu", "Bayesian (train)", 28158, [] {
        return k::covarianceUpdate({.dim = 72, .samples = 24, .iters = 1,
                                    .seed = 202});
    });
    add("BioMetricsWorkload", "csu", "PreprocessNormalize", 4059, [] {
        return k::imageNormalize({.pixels = 1 << 13, .iters = 2,
                                  .seed = 203});
    });
    add("BioMetricsWorkload", "csu", "SubspaceProject (LDA)", 6054, [] {
        return k::matVec({.rows = 160, .cols = 320, .iters = 2,
                          .seed = 204, .unroll = 4});
    });
    add("BioMetricsWorkload", "csu", "SubspaceProject (PCA)", 6098, [] {
        return k::matVec({.rows = 176, .cols = 352, .iters = 2,
                          .seed = 205, .unroll = 4});
    });
    add("BioMetricsWorkload", "csu", "SubspaceTrain (LDA)", 51297, [] {
        return k::denseMatMul({.n = 36, .iters = 1, .seed = 206});
    });
    add("BioMetricsWorkload", "csu", "SubspaceTrain (PCA)", 41729, [] {
        return k::denseMatMul({.n = 34, .iters = 1, .seed = 207});
    });
    add("BioMetricsWorkload", "speak", "decode", 46648, [] {
        return k::gmmDecode({.frames = 48, .mixtures = 16, .dim = 24,
                             .iters = 1, .seed = 208});
    });

    // ------------------------------------------------------------------
    // CommBench (12): header-processing and payload-codec kernels.
    // ------------------------------------------------------------------
    add("CommBench", "cast", "decode", 130, [] {
        return k::blockCipher({.bufBytes = 3 << 10, .rounds = 16,
                               .iters = 3, .seed = 301, .decrypt = true});
    });
    add("CommBench", "cast", "encode", 130, [] {
        return k::blockCipher({.bufBytes = 3 << 10, .rounds = 16,
                               .iters = 3, .seed = 302});
    });
    add("CommBench", "drr", "drr", 235, [] {
        return k::queueScheduler({.numQueues = 16, .pktsPerQueue = 24,
                                  .quantum = 512, .iters = 400,
                                  .seed = 303});
    });
    add("CommBench", "frag", "frag", 49, [] {
        return k::packetFrag({.pktBytes = 8192, .mtu = 576, .iters = 24,
                              .seed = 304});
    });
    add("CommBench", "jpeg", "decode", 238, [] {
        return k::dct8x8({.blocks = 56, .iters = 2, .seed = 305,
                          .inverse = true});
    });
    add("CommBench", "jpeg", "encode", 339, [] {
        return k::dct8x8({.blocks = 64, .iters = 2, .seed = 306});
    });
    add("CommBench", "reed", "decode", 1298, [] {
        return k::gfReedSolomon({.dataBytes = 1 << 11, .parityBytes = 16,
                                 .iters = 1, .seed = 307,
                                 .decode = true});
    });
    add("CommBench", "reed", "encode", 912, [] {
        return k::gfReedSolomon({.dataBytes = 1 << 11, .parityBytes = 16,
                                 .iters = 1, .seed = 308});
    });
    add("CommBench", "rtr", "rtr", 1137, [] {
        return k::trieLookup({.numKeys = 1024, .trieNodes = 8192,
                              .maxDepth = 24, .iters = 3, .seed = 309});
    });
    add("CommBench", "tcp", "tcp", 58, [] {
        return k::checksum({.pktBytes = 1500, .numPkts = 40, .iters = 2,
                            .seed = 310});
    });
    add("CommBench", "zip", "decode", 50, [] {
        return k::lz77({.bufBytes = 24 << 10, .windowBytes = 1 << 12,
                        .alphabet = 32, .iters = 1, .seed = 311,
                        .decode = true});
    });
    add("CommBench", "zip", "encode", 322, [] {
        return k::lz77({.bufBytes = 7 << 10, .windowBytes = 1 << 12,
                        .alphabet = 32, .iters = 1, .seed = 312});
    });

    // ------------------------------------------------------------------
    // MediaBench (12): DSP loops, codecs, rendering, interpreters.
    // ------------------------------------------------------------------
    add("MediaBench", "epic", "test1", 205, [] {
        return k::waveletTransform({.n = 1 << 12, .levels = 7, .iters = 4,
                                    .seed = 401});
    });
    add("MediaBench", "epic", "test2", 2296, [] {
        return k::waveletTransform({.n = 1 << 13, .levels = 8, .iters = 2,
                                    .seed = 402});
    });
    add("MediaBench", "unepic", "test1", 35, [] {
        return k::waveletTransform({.n = 1 << 12, .levels = 7, .iters = 4,
                                    .seed = 403, .inverse = true});
    });
    add("MediaBench", "unepic", "test2", 876, [] {
        return k::waveletTransform({.n = 1 << 13, .levels = 8, .iters = 2,
                                    .seed = 404, .inverse = true});
    });
    add("MediaBench", "g721", "decode", 323, [] {
        return k::adpcmCodec({.samples = 5000, .iters = 1, .seed = 405,
                              .decode = true, .g721 = true});
    });
    add("MediaBench", "g721", "encode", 343, [] {
        return k::adpcmCodec({.samples = 5000, .iters = 1, .seed = 406,
                              .g721 = true});
    });
    add("MediaBench", "ghostscript", "gs", 868, [] {
        return k::interpDispatch({.codeLen = 3200, .numOps = 48,
                                  .handlerBody = 8, .hotOpFraction = 0.15,
                                  .iters = 3, .seed = 407});
    });
    add("MediaBench", "mesa", "mipmap", 32, [] {
        return k::texMap({.texBytes = 1 << 14, .pixels = 5000, .iters = 2,
                          .seed = 408});
    });
    add("MediaBench", "mesa", "osdemo", 10, [] {
        return k::texMap({.texBytes = 1 << 15, .pixels = 4000, .iters = 2,
                          .seed = 409});
    });
    add("MediaBench", "mesa", "texgen", 86, [] {
        return k::texMap({.texBytes = 1 << 16, .pixels = 6000, .iters = 2,
                          .seed = 410});
    });
    add("MediaBench", "mpeg2", "decode", 149, [] {
        return k::motionComp({.frameW = 160, .frameH = 96,
                              .searchRange = 4, .iters = 6, .seed = 411,
                              .encode = false});
    });
    add("MediaBench", "mpeg2", "encode", 1528, [] {
        return k::motionComp({.frameW = 160, .frameH = 96,
                              .searchRange = 3, .iters = 1, .seed = 412,
                              .encode = true});
    });

    // ------------------------------------------------------------------
    // MiBench (29): small embedded kernels.
    // ------------------------------------------------------------------
    add("MiBench", "CRC32", "large", 612, [] {
        return k::crc32({.bufBytes = 24 << 10, .iters = 1, .seed = 501});
    });
    add("MiBench", "FFT", "fft (large)", 237, [] {
        return k::fftButterfly({.n = 1 << 11, .iters = 2, .seed = 502});
    });
    add("MiBench", "FFT", "fftinv (large)", 217, [] {
        return k::fftButterfly({.n = 1 << 11, .iters = 2, .seed = 503,
                                .inverse = true});
    });
    add("MiBench", "adpcm", "rawcaudio", 758, [] {
        return k::adpcmCodec({.samples = 7000, .iters = 1, .seed = 504});
    });
    add("MiBench", "adpcm", "rawdaudio", 639, [] {
        return k::adpcmCodec({.samples = 7000, .iters = 1, .seed = 505,
                              .decode = true});
    });
    add("MiBench", "basicmath", "large", 1523, [] {
        return k::basicMath({.problems = 800, .iters = 1, .seed = 506});
    });
    add("MiBench", "bitcount", "large", 681, [] {
        return k::bitOps({.words = 2600, .iters = 1, .seed = 507});
    });
    add("MiBench", "blowfish", "decode", 495, [] {
        return k::blockCipher({.bufBytes = 4 << 10, .rounds = 16,
                               .iters = 2, .seed = 508, .decrypt = true});
    });
    add("MiBench", "blowfish", "encode", 498, [] {
        return k::blockCipher({.bufBytes = 4 << 10, .rounds = 16,
                               .iters = 2, .seed = 509});
    });
    add("MiBench", "dijkstra", "large", 252, [] {
        return k::graphSssp({.nodes = 160, .degree = 8, .iters = 1,
                             .seed = 510});
    });
    add("MiBench", "ghostscript", "large", 868, [] {
        return k::interpDispatch({.codeLen = 3200, .numOps = 48,
                                  .handlerBody = 8, .hotOpFraction = 0.15,
                                  .iters = 3, .seed = 511});
    });
    add("MiBench", "ispell", "large", 1027, [] {
        return k::hashDict({.numWords = 2048, .numQueries = 1600,
                            .tableSlots = 4096, .iters = 1, .seed = 512});
    });
    add("MiBench", "jpeg", "cjpeg", 121, [] {
        return k::dct8x8({.blocks = 48, .iters = 2, .seed = 513});
    });
    add("MiBench", "jpeg", "djpeg", 24, [] {
        return k::dct8x8({.blocks = 40, .iters = 2, .seed = 514,
                          .inverse = true});
    });
    add("MiBench", "lame", "large", 1199, [] {
        return k::audioSynth({.samples = 5 << 10, .stages = 4, .iters = 1,
                              .seed = 515, .withTables = true});
    });
    add("MiBench", "mad", "large", 345, [] {
        return k::audioSynth({.samples = 4 << 10, .stages = 3, .iters = 1,
                              .seed = 516});
    });
    add("MiBench", "patricia", "large", 399, [] {
        return k::trieLookup({.numKeys = 768, .trieNodes = 4096,
                              .maxDepth = 20, .iters = 3, .seed = 517});
    });
    add("MiBench", "pgp", "decode", 111, [] {
        return k::bigIntArith({.words = 28, .iters = 18, .seed = 518});
    });
    add("MiBench", "pgp", "encode", 48, [] {
        return k::bigIntArith({.words = 24, .iters = 14, .seed = 519});
    });
    add("MiBench", "qsort", "large", 512, [] {
        return k::quickSort({.elems = 2048, .iters = 1, .seed = 520});
    });
    add("MiBench", "rsynth", "say (large)", 775, [] {
        return k::audioSynth({.samples = 3 << 10, .stages = 6, .iters = 1,
                              .seed = 521});
    });
    add("MiBench", "sha", "large", 114, [] {
        return k::shaHash({.bufBytes = 5 << 10, .iters = 1, .seed = 522});
    });
    add("MiBench", "susan", "corners (large)", 29, [] {
        return k::imageFilter2D({.width = 96, .height = 64,
                                 .variant = V::Threshold, .iters = 1,
                                 .seed = 523});
    });
    add("MiBench", "susan", "edges (large)", 73, [] {
        return k::imageFilter2D({.width = 112, .height = 72,
                                 .variant = V::Threshold, .iters = 1,
                                 .seed = 524});
    });
    add("MiBench", "susan", "smoothing (large)", 300, [] {
        return k::imageFilter2D({.width = 128, .height = 80,
                                 .variant = V::Smooth, .iters = 1,
                                 .seed = 525});
    });
    add("MiBench", "tiff", "2bw", 143, [] {
        return k::imageFilter2D({.width = 192, .height = 128,
                                 .variant = V::Gray, .iters = 2,
                                 .seed = 526});
    });
    add("MiBench", "tiff", "2rgba", 268, [] {
        return k::imageFilter2D({.width = 224, .height = 144,
                                 .variant = V::Rgba, .iters = 3,
                                 .seed = 527});
    });
    add("MiBench", "tiff", "dither", 1228, [] {
        return k::imageFilter2D({.width = 224, .height = 144,
                                 .variant = V::Dither, .iters = 3,
                                 .seed = 528});
    });
    add("MiBench", "tiff", "median", 763, [] {
        return k::imageFilter2D({.width = 160, .height = 96,
                                 .variant = V::Median, .iters = 1,
                                 .seed = 529});
    });
    add("MiBench", "typeset", "lout", 609, [] {
        return k::interpDispatch({.codeLen = 2600, .numOps = 32,
                                  .handlerBody = 7, .hotOpFraction = 0.3,
                                  .iters = 3, .seed = 530});
    });

    // ------------------------------------------------------------------
    // SPEC CPU2000 (49).
    // ------------------------------------------------------------------
    add("SPEC2000", "ammp", "ref", 388534, [] {
        return k::stencilSweep({.nx = 64, .ny = 64, .points = 5,
                                .passes = 2, .iters = 1, .seed = 601,
                                .sparse = true});
    });
    add("SPEC2000", "applu", "ref", 336798, [] {
        return k::stencilSweep({.nx = 96, .ny = 96, .points = 5,
                                .passes = 2, .iters = 1, .seed = 602});
    });
    add("SPEC2000", "apsi", "ref", 361955, [] {
        return k::stencilSweep({.nx = 80, .ny = 80, .points = 9,
                                .passes = 2, .iters = 1, .seed = 603});
    });
    add("SPEC2000", "art", "ref-110", 77067, [] {
        return k::neuralScan({.inputs = 1 << 12, .neurons = 12,
                              .iters = 1, .seed = 604});
    });
    add("SPEC2000", "art", "ref-470", 84660, [] {
        return k::neuralScan({.inputs = 1 << 12, .neurons = 13,
                              .iters = 1, .seed = 605});
    });
    add("SPEC2000", "bzip2", "graphic", 157003, [] {
        return k::bwtSort({.blockBytes = 1400, .alphabet = 200,
                           .iters = 1, .seed = 606});
    });
    add("SPEC2000", "bzip2", "program", 136389, [] {
        return k::bwtSort({.blockBytes = 1300, .alphabet = 96, .iters = 1,
                           .seed = 607});
    });
    add("SPEC2000", "bzip2", "source", 122267, [] {
        return k::bwtSort({.blockBytes = 1200, .alphabet = 64, .iters = 1,
                           .seed = 608});
    });
    add("SPEC2000", "crafty", "ref", 194311, [] {
        return k::bitOps({.words = 2000, .iters = 1, .seed = 609,
                          .chess = true});
    });
    add("SPEC2000", "eon", "cook", 100552, [] {
        return k::rayTrace({.spheres = 24, .rays = 300, .iters = 1,
                            .seed = 610});
    });
    add("SPEC2000", "eon", "kajiya", 131268, [] {
        return k::rayTrace({.spheres = 28, .rays = 330, .iters = 1,
                            .seed = 611});
    });
    add("SPEC2000", "eon", "rush", 73139, [] {
        return k::rayTrace({.spheres = 20, .rays = 280, .iters = 1,
                            .seed = 612});
    });
    add("SPEC2000", "equake", "ref", 158071, [] {
        return k::stencilSweep({.nx = 72, .ny = 72, .points = 5,
                                .passes = 2, .iters = 1, .seed = 613,
                                .sparse = true});
    });
    add("SPEC2000", "facerec", "ref", 249735, [] {
        return k::matVec({.rows = 160, .cols = 288, .iters = 2,
                          .seed = 614, .unroll = 4});
    });
    add("SPEC2000", "fma3d", "ref", 312960, [] {
        return k::stencilSweep({.nx = 68, .ny = 68, .points = 5,
                                .passes = 2, .iters = 1, .seed = 615,
                                .sparse = true});
    });
    add("SPEC2000", "galgel", "ref", 326916, [] {
        return k::denseMatMul({.n = 38, .iters = 1, .seed = 616});
    });
    add("SPEC2000", "gap", "ref", 310323, [] {
        return k::bigIntArith({.words = 36, .iters = 14, .seed = 617});
    });
    add("SPEC2000", "gcc", "166", 46614, [] {
        return k::interpDispatch({.codeLen = 3600, .numOps = 64,
                                  .handlerBody = 10, .hotOpFraction = 0.0,
                                  .iters = 2, .seed = 618});
    });
    add("SPEC2000", "gcc", "200", 106339, [] {
        return k::interpDispatch({.codeLen = 4000, .numOps = 64,
                                  .handlerBody = 10,
                                  .hotOpFraction = 0.05, .iters = 2,
                                  .seed = 619});
    });
    add("SPEC2000", "gcc", "expr", 11847, [] {
        return k::interpDispatch({.codeLen = 3000, .numOps = 64,
                                  .handlerBody = 10, .hotOpFraction = 0.1,
                                  .iters = 2, .seed = 620});
    });
    add("SPEC2000", "gcc", "integrate", 13019, [] {
        return k::interpDispatch({.codeLen = 3200, .numOps = 64,
                                  .handlerBody = 10, .hotOpFraction = 0.0,
                                  .iters = 2, .seed = 621});
    });
    add("SPEC2000", "gcc", "scilab", 60784, [] {
        return k::interpDispatch({.codeLen = 3800, .numOps = 64,
                                  .handlerBody = 10,
                                  .hotOpFraction = 0.08, .iters = 2,
                                  .seed = 622});
    });
    add("SPEC2000", "gzip", "graphic", 113400, [] {
        return k::lz77({.bufBytes = 9 << 10, .windowBytes = 1 << 12,
                        .alphabet = 200, .iters = 1, .seed = 623});
    });
    add("SPEC2000", "gzip", "log", 42506, [] {
        return k::lz77({.bufBytes = 10 << 10, .windowBytes = 1 << 12,
                        .alphabet = 24, .iters = 1, .seed = 624});
    });
    add("SPEC2000", "gzip", "program", 161726, [] {
        return k::lz77({.bufBytes = 9 << 10, .windowBytes = 1 << 12,
                        .alphabet = 96, .iters = 1, .seed = 625});
    });
    add("SPEC2000", "gzip", "random", 91961, [] {
        // Incompressible input: hash probes almost never match.
        return k::lz77({.bufBytes = 8 << 10, .windowBytes = 1 << 12,
                        .alphabet = 0, .iters = 1, .seed = 626});
    });
    add("SPEC2000", "gzip", "source", 84366, [] {
        return k::lz77({.bufBytes = 9 << 10, .windowBytes = 1 << 12,
                        .alphabet = 48, .iters = 1, .seed = 627});
    });
    add("SPEC2000", "lucas", "ref", 134753, [] {
        return k::fftButterfly({.n = 1 << 12, .iters = 1, .seed = 628});
    });
    add("SPEC2000", "mcf", "ref", 59800, [] {
        // Defining trait: serial pointer chase over a multi-MB arena.
        return k::pointerChase({.nodes = 1 << 15, .iters = 1, .seed = 629,
                                .steps = 26000});
    });
    add("SPEC2000", "mesa", "ref", 314449, [] {
        return k::texMap({.texBytes = 1 << 16, .pixels = 9000, .iters = 2,
                          .seed = 630});
    });
    add("SPEC2000", "mgrid", "ref", 440934, [] {
        return k::stencilSweep({.nx = 88, .ny = 88, .points = 9,
                                .passes = 2, .iters = 1, .seed = 631});
    });
    add("SPEC2000", "parser", "ref", 530784, [] {
        return k::hashDict({.numWords = 4096, .numQueries = 1800,
                            .tableSlots = 8192, .iters = 1, .seed = 632});
    });
    for (const auto &[input, icount] :
         std::vector<std::pair<const char *, uint64_t>>{
             {"splitmail.535", 69857}, {"splitmail.704", 73966},
             {"splitmail.850", 142509}, {"splitmail.957", 122893},
             {"diffmail", 43327}, {"makerand", 2055},
             {"perfect", 29791}}) {
        const uint64_t seedBase = 633 + (icount % 7);
        add("SPEC2000", "perlbmk", input, icount, [seedBase, icount] {
            return k::interpDispatch(
                {.codeLen = 2800 + (icount % 5) * 320, .numOps = 96,
                 .handlerBody = 8,
                 .hotOpFraction = 0.2 + 0.02 * double(icount % 4),
                 .iters = 3, .seed = seedBase});
        });
    }
    add("SPEC2000", "sixtrack", "ref", 452446, [] {
        return k::denseMatMul({.n = 32, .iters = 1, .seed = 640});
    });
    add("SPEC2000", "swim", "ref", 221868, [] {
        return k::stencilSweep({.nx = 112, .ny = 112, .points = 5,
                                .passes = 1, .iters = 1, .seed = 641});
    });
    add("SPEC2000", "twolf", "ref", 397222, [] {
        return k::annealPlace({.cells = 4096, .moves = 6000, .iters = 1,
                               .seed = 642});
    });
    add("SPEC2000", "vortex", "ref1", 129793, [] {
        return k::objDb({.objects = 4096, .opsPerObject = 3,
                         .traversals = 6000, .iters = 1, .seed = 643});
    });
    add("SPEC2000", "vortex", "ref2", 151475, [] {
        return k::objDb({.objects = 5120, .opsPerObject = 3,
                         .traversals = 6600, .iters = 1, .seed = 644});
    });
    add("SPEC2000", "vortex", "ref3", 145113, [] {
        return k::objDb({.objects = 4608, .opsPerObject = 2,
                         .traversals = 6300, .iters = 1, .seed = 645});
    });
    add("SPEC2000", "vpr", "place", 117001, [] {
        return k::annealPlace({.cells = 3072, .moves = 5200, .iters = 1,
                               .seed = 646});
    });
    add("SPEC2000", "vpr", "route", 82351, [] {
        return k::graphSssp({.nodes = 150, .degree = 6, .iters = 1,
                             .seed = 647});
    });
    add("SPEC2000", "wupwise", "ref", 337770, [] {
        return k::denseMatMul({.n = 33, .iters = 1, .seed = 648});
    });
}

const BenchmarkRegistry &
BenchmarkRegistry::instance()
{
    static BenchmarkRegistry registry;
    return registry;
}

std::vector<const BenchmarkEntry *>
BenchmarkRegistry::bySuite(const std::string &suite) const
{
    std::vector<const BenchmarkEntry *> out;
    for (const auto &e : entries_) {
        if (e.info.suite == suite)
            out.push_back(&e);
    }
    return out;
}

const BenchmarkEntry *
BenchmarkRegistry::find(const std::string &fullName) const
{
    for (const auto &e : entries_) {
        if (e.info.fullName() == fullName)
            return &e;
    }
    return nullptr;
}

size_t
BenchmarkRegistry::indexOf(const std::string &fullName) const
{
    for (size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].info.fullName() == fullName)
            return i;
    }
    return static_cast<size_t>(-1);
}

std::vector<std::string>
BenchmarkRegistry::suites() const
{
    std::vector<std::string> out;
    for (const auto &e : entries_) {
        bool seen = false;
        for (const auto &s : out)
            seen = seen || s == e.info.suite;
        if (!seen)
            out.push_back(e.info.suite);
    }
    return out;
}

namespace
{

/** Invert the "suite__program.input" filename-stem encoding. */
BenchmarkInfo
traceInfoFromStem(const std::string &stem)
{
    BenchmarkInfo info;
    std::string rest = stem;
    const size_t sep = stem.find("__");
    if (sep != std::string::npos) {
        info.suite = stem.substr(0, sep);
        rest = stem.substr(sep + 2);
    } else {
        info.suite = "traces";
    }
    // Split at the first '.': inputs may themselves contain dots
    // ("perlbmk.splitmail.535"), programs never do.
    const size_t dot = rest.find('.');
    info.program = rest.substr(0, dot);
    if (dot != std::string::npos)
        info.input = rest.substr(dot + 1);
    return info;
}

} // namespace

std::vector<BenchmarkEntry>
traceBenchmarks(const std::string &dir, bool streamReader,
                uint64_t maxInsts, uint64_t *contentStamp,
                std::vector<std::pair<std::string, std::string>>
                    *quarantined)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        throw TraceFileError(dir, "not a trace directory");
    std::vector<std::string> files;
    for (const auto &de : fs::directory_iterator(dir)) {
        if (de.is_regular_file())
            files.push_back(de.path().string());
    }
    return traceBenchmarksFromFiles(files, streamReader, maxInsts,
                                    contentStamp, quarantined, dir);
}

std::vector<BenchmarkEntry>
traceBenchmarksFromFiles(const std::vector<std::string> &files,
                         bool streamReader, uint64_t maxInsts,
                         uint64_t *contentStamp,
                         std::vector<std::pair<std::string, std::string>>
                             *quarantined,
                         const std::string &what)
{
    namespace fs = std::filesystem;

    // Per-entry content identity, folded into *contentStamp after the
    // deterministic sort so cache keys depend on what the traces hold.
    std::vector<uint64_t> fileHash;
    std::vector<BenchmarkEntry> out;
    for (const auto &file : files) {
        const fs::path p(file);
        const std::string ext = p.extension().string();
        const bool binary = ext == ".trace";
        if (!binary && ext != ".csv" && ext != ".txt")
            continue;

        BenchmarkEntry e;
        e.info = traceInfoFromStem(p.stem().string());
        uint64_t contentId = 0;
        try {
            if (binary) {
                // Eager validation: a bad file must reject at scan
                // time, not degrade the sweep later. The factories
                // reuse this probe (header-only re-check per open)
                // instead of re-reading the payload on every job.
                const TraceFileInfo fi = probeTraceFile(p.string());
                e.info.paperICountM = fi.recordCount / 1000000;
                if (maxInsts != 0 && maxInsts > fi.recordCount) {
                    throw TraceFileError(
                        p.string(),
                        "holds " + std::to_string(fi.recordCount) +
                            " records but the profiling budget is " +
                            std::to_string(maxInsts) +
                            " — replay would silently diverge from "
                            "direct interpretation (lower --budget, "
                            "use 0, or re-record)");
                }
                contentId =
                    fnv1a(&fi.recordCount, sizeof(fi.recordCount),
                          fnv1a(&fi.payloadHash,
                                sizeof(fi.payloadHash)));
                e.source = [path = p.string(), streamReader, fi] {
                    return openTraceFile(path, streamReader, &fi);
                };
            } else {
                if (contentStamp || maxInsts != 0) {
                    std::ifstream in(p.string(), std::ios::binary);
                    std::ostringstream bytes;
                    bytes << in.rdbuf();
                    const std::string s = bytes.str();
                    contentId = fnv1a(s.data(), s.size());
                    if (maxInsts != 0) {
                        // Text traces get the same budget guard as
                        // binary ones: coming up short must reject,
                        // not silently profile a shorter stream.
                        std::istringstream text(s);
                        const size_t n =
                            parseTextTrace(text, p.string()).size();
                        if (maxInsts > n) {
                            throw TraceFileError(
                                p.string(),
                                "holds " + std::to_string(n) +
                                    " records but the profiling "
                                    "budget is " +
                                    std::to_string(maxInsts) +
                                    " — replay would silently "
                                    "diverge (lower --budget or "
                                    "use 0)");
                        }
                    }
                }
                e.source = [path = p.string(), streamReader] {
                    return openTraceFile(path, streamReader);
                };
            }
        } catch (const TraceFileError &ex) {
            // Scan-time quarantine: one bad file must not take down
            // the whole sweep when the caller opted into isolation.
            // The file contributes neither an entry nor a stamp bit.
            if (!quarantined)
                throw;
            quarantined->emplace_back(p.string(), ex.what());
            continue;
        }
        fileHash.push_back(contentId);
        out.push_back(std::move(e));
    }

    // Precompute each entry's Table I position and name once: the
    // comparator runs O(M log M) times and indexOf is a linear
    // registry scan.
    const auto &reg = BenchmarkRegistry::instance();
    std::vector<size_t> regIdx(out.size());
    std::vector<std::string> names(out.size());
    for (size_t i = 0; i < out.size(); ++i) {
        names[i] = out[i].info.fullName();
        regIdx[i] = reg.indexOf(names[i]);
    }
    std::vector<size_t> order(out.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (regIdx[a] != regIdx[b])
            return regIdx[a] < regIdx[b];
        return names[a] < names[b];
    });

    std::vector<BenchmarkEntry> sorted;
    sorted.reserve(out.size());
    uint64_t stamp = fnv1a(nullptr, 0);
    for (size_t k = 0; k < order.size(); ++k) {
        const size_t idx = order[k];
        const std::string &name = names[idx];
        // Two files mapping to one benchmark name would profile
        // whichever happened to win — reject instead of guessing.
        if (k > 0 && names[order[k - 1]] == name)
            throw TraceFileError(what, "duplicate trace benchmark '" +
                                           name +
                                           "' (two files map to the "
                                           "same name)");
        stamp = fnv1a(name.data(), name.size(), stamp);
        stamp = fnv1a(&fileHash[idx], sizeof(fileHash[idx]), stamp);
        sorted.push_back(std::move(out[idx]));
    }
    if (contentStamp)
        *contentStamp = stamp;
    return sorted;
}

} // namespace mica::workloads
