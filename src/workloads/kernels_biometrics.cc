/**
 * @file
 * Biometrics kernel builders: dense linear algebra (subspace projection
 * and training), covariance accumulation, image normalization, and GMM
 * scoring. These substitute the BioMetricsWorkload programs (csu face
 * recognition, speak speaker verification): floating-point dominated,
 * highly regular strides, large dense operands.
 */

#include "workloads/kernel_lib.hh"

#include <cstring>

#include "isa/assembler.hh"

namespace mica::workloads::kernels
{

using namespace isa;
using namespace isa::reg;

namespace
{

/** Load a double constant into FP register fr through a stack slot. */
void
fimm(Assembler &a, uint8_t fr, double v)
{
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    a.li(T9, static_cast<int64_t>(bits));
    a.sd(T9, Sp, -8);
    a.fld(fr, Sp, -8);
}

} // namespace

isa::Program
matVec(const MatVecParams &p)
{
    Assembler a("matVec");

    const uint64_t mat = a.dataF64(randomDoubles(p.rows * p.cols,
                                                 -1.0, 1.0, p.seed));
    const uint64_t vec = a.dataF64(randomDoubles(p.cols, -1.0, 1.0,
                                                 p.seed * 3 + 1));
    const uint64_t out = a.reserve(p.rows * 8);
    const unsigned unroll = p.unroll ? p.unroll : 1;
    const size_t colsRounded = p.cols - p.cols % unroll;

    // S0 matrix row ptr, S1 vec, S2 out, S3 row, S4 rows, S5 cols,
    // S6 rounded cols, S9 iters; T0 col; f0..f3 accumulators.
    a.li(S9, p.iters);
    a.li(S4, static_cast<int64_t>(p.rows));
    a.li(S5, static_cast<int64_t>(p.cols));
    a.li(S6, static_cast<int64_t>(colsRounded));

    a.label("iter");
    a.li(S0, static_cast<int64_t>(mat));
    a.li(S2, static_cast<int64_t>(out));
    a.li(S3, 0);                        // row = 0

    a.label("row");
    a.li(S1, static_cast<int64_t>(vec));
    // Independent accumulators break the add chain: this is what gives
    // the biometrics kernels their high inherent ILP.
    for (unsigned u = 0; u < unroll && u < 4; ++u)
        fimm(a, static_cast<uint8_t>(u), 0.0);
    a.li(T0, 0);

    a.label("dot");
    for (unsigned u = 0; u < unroll && u < 4; ++u) {
        a.fld(4, S0, static_cast<int64_t>(8 * u));
        a.fld(5, S1, static_cast<int64_t>(8 * u));
        a.fmul(6, 4, 5);
        a.fadd(static_cast<uint8_t>(u), static_cast<uint8_t>(u), 6);
    }
    a.addi(S0, S0, 8 * unroll);
    a.addi(S1, S1, 8 * unroll);
    a.addi(T0, T0, unroll);
    a.blt(T0, S6, "dot");

    // Reduce the accumulators and handle the remainder columns.
    for (unsigned u = 1; u < unroll && u < 4; ++u)
        a.fadd(0, 0, static_cast<uint8_t>(u));
    const std::string tail = a.newLabel("tail");
    const std::string tailDone = a.newLabel("td");
    a.label(tail);
    a.bge(T0, S5, tailDone);
    a.fld(4, S0, 0);
    a.fld(5, S1, 0);
    a.fmul(6, 4, 5);
    a.fadd(0, 0, 6);
    a.addi(S0, S0, 8);
    a.addi(S1, S1, 8);
    a.addi(T0, T0, 1);
    a.j(tail);
    a.label(tailDone);

    a.shli(T1, S3, 3);
    a.add(T1, S2, T1);
    a.fsd(0, T1, 0);                    // out[row]

    a.addi(S3, S3, 1);
    a.blt(S3, S4, "row");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
covarianceUpdate(const CovarianceParams &p)
{
    Assembler a("covariance");

    const uint64_t samples = a.dataF64(randomDoubles(p.samples * p.dim,
                                                     -1.0, 1.0, p.seed));
    const uint64_t cov = a.reserve(p.dim * p.dim * 8);

    // S0 sample base, S1 cov, S2 sample idx, S3 i, S4 j,
    // S5 dim, S6 samples, S7 &x[i] row temp, S9 iters; f0 x[i], f1 x[j].
    a.li(S9, p.iters);
    a.li(S5, static_cast<int64_t>(p.dim));
    a.li(S6, static_cast<int64_t>(p.samples));

    a.label("iter");
    a.li(S2, 0);

    a.label("sample");
    a.li(S0, static_cast<int64_t>(samples));
    a.mul(T0, S2, S5);
    a.shli(T0, T0, 3);
    a.add(S0, S0, T0);                  // &x[0] of this sample

    a.li(S3, 0);                        // i
    a.label("rowloop");
    a.shli(T1, S3, 3);
    a.add(S7, S0, T1);
    a.fld(0, S7, 0);                    // x[i]
    // Upper-triangular accumulate: cov[i][j] += x[i] * x[j], j >= i.
    a.li(S1, static_cast<int64_t>(cov));
    a.mul(T2, S3, S5);
    a.add(T2, T2, S3);
    a.shli(T2, T2, 3);
    a.add(S1, S1, T2);                  // &cov[i][i]
    a.add(T3, S0, T1);                  // &x[i]
    a.mv(S4, S3);                       // j = i

    a.label("colloop");
    a.fld(1, T3, 0);                    // x[j]
    a.fmul(2, 0, 1);
    a.fld(3, S1, 0);
    a.fadd(3, 3, 2);
    a.fsd(3, S1, 0);
    a.addi(S1, S1, 8);
    a.addi(T3, T3, 8);
    a.addi(S4, S4, 1);
    a.blt(S4, S5, "colloop");

    a.addi(S3, S3, 1);
    a.blt(S3, S5, "rowloop");

    a.addi(S2, S2, 1);
    a.blt(S2, S6, "sample");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
imageNormalize(const ImageNormalizeParams &p)
{
    Assembler a("imageNormalize");

    const uint64_t img = a.dataU8(randomBytes(p.pixels, 0, p.seed));
    const uint64_t out = a.reserve(p.pixels * 8);

    // Pass 1 computes the integer pixel sum; pass 2 subtracts the mean
    // and scales — a streaming byte-in/double-out pipeline.
    // S0 img, S1 out, S2 i, S3 pixels, S4 sum, S9 iters; f0 mean,
    // f1 scale, f2 pixel.
    a.li(S9, p.iters);
    a.li(S3, static_cast<int64_t>(p.pixels));

    a.label("iter");
    a.li(S0, static_cast<int64_t>(img));
    a.li(S4, 0);
    a.li(S2, 0);
    a.label("sum");
    a.add(T0, S0, S2);
    a.lbu(T1, T0, 0);
    a.add(S4, S4, T1);
    a.addi(S2, S2, 1);
    a.blt(S2, S3, "sum");

    a.itof(0, S4);
    a.itof(1, S3);
    a.fdiv(0, 0, 1);                    // mean
    fimm(a, 1, 1.0 / 128.0);            // scale

    a.li(S1, static_cast<int64_t>(out));
    a.li(S2, 0);
    a.label("norm");
    a.add(T0, S0, S2);
    a.lbu(T1, T0, 0);
    a.itof(2, T1);
    a.fsub(2, 2, 0);
    a.fmul(2, 2, 1);
    a.shli(T2, S2, 3);
    a.add(T2, S1, T2);
    a.fsd(2, T2, 0);
    a.addi(S2, S2, 1);
    a.blt(S2, S3, "norm");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
gmmDecode(const GmmDecodeParams &p)
{
    Assembler a("gmmDecode");

    const uint64_t feats = a.dataF64(randomDoubles(p.frames * p.dim,
                                                   -2.0, 2.0, p.seed));
    const uint64_t means = a.dataF64(randomDoubles(p.mixtures * p.dim,
                                                   -2.0, 2.0,
                                                   p.seed * 3 + 1));
    const uint64_t precs = a.dataF64(randomDoubles(p.mixtures * p.dim,
                                                   0.1, 2.0,
                                                   p.seed * 5 + 2));
    const uint64_t scores = a.reserve(p.frames * 8);

    // S0 frame ptr, S1 mean ptr, S2 prec ptr, S3 frame, S4 mix, S5 d,
    // S6 dim, S7 mixtures, S8 frames, S9 iters;
    // f0 acc, f1 x, f2 mu, f3 pr, f4 diff, f5 best.
    a.li(S9, p.iters);
    a.li(S6, static_cast<int64_t>(p.dim));
    a.li(S7, static_cast<int64_t>(p.mixtures));
    a.li(S8, static_cast<int64_t>(p.frames));

    a.label("iter");
    a.li(S3, 0);

    a.label("frame");
    fimm(a, 5, -1.0e30);                // best = -inf
    a.li(S4, 0);

    a.label("mix");
    a.li(S0, static_cast<int64_t>(feats));
    a.mul(T0, S3, S6);
    a.shli(T0, T0, 3);
    a.add(S0, S0, T0);
    a.li(S1, static_cast<int64_t>(means));
    a.mul(T1, S4, S6);
    a.shli(T1, T1, 3);
    a.add(S1, S1, T1);
    a.li(S2, static_cast<int64_t>(precs));
    a.add(S2, S2, T1);

    fimm(a, 0, 0.0);                    // acc = 0
    a.li(S5, 0);
    a.label("dim");
    a.fld(1, S0, 0);
    a.fld(2, S1, 0);
    a.fld(3, S2, 0);
    a.fsub(4, 1, 2);                    // x - mu
    a.fmul(4, 4, 4);                    // squared
    a.fmul(4, 4, 3);                    // * precision
    a.fadd(0, 0, 4);
    a.addi(S0, S0, 8);
    a.addi(S1, S1, 8);
    a.addi(S2, S2, 8);
    a.addi(S5, S5, 1);
    a.blt(S5, S6, "dim");

    a.fneg(0, 0);                       // log-likelihood ~ -distance
    a.fmax(5, 5, 0);                    // running best mixture

    a.addi(S4, S4, 1);
    a.blt(S4, S7, "mix");

    a.li(T2, static_cast<int64_t>(scores));
    a.shli(T3, S3, 3);
    a.add(T2, T2, T3);
    a.fsd(5, T2, 0);

    a.addi(S3, S3, 1);
    a.blt(S3, S8, "frame");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

isa::Program
denseMatMul(const MatMulParams &p)
{
    Assembler a("denseMatMul");

    const size_t n = p.n;
    const uint64_t matA = a.dataF64(randomDoubles(n * n, -1.0, 1.0,
                                                  p.seed));
    const uint64_t matB = a.dataF64(randomDoubles(n * n, -1.0, 1.0,
                                                  p.seed * 3 + 1));
    const uint64_t matC = a.reserve(n * n * 8);

    // i-k-j loop order: the inner loop streams a row of B and a row of
    // C with unit stride while a[i][k] stays in a register.
    // S0 &a[i][k], S1 &b[k][0], S2 &c[i][0], S3 i, S4 k, S5 j,
    // S6 n, S9 iters; f0 a[i][k], f1 b, f2 c.
    a.li(S9, p.iters);
    a.li(S6, static_cast<int64_t>(n));

    a.label("iter");
    a.li(S3, 0);

    a.label("iloop");
    a.li(S4, 0);

    a.label("kloop");
    a.li(S0, static_cast<int64_t>(matA));
    a.mul(T0, S3, S6);
    a.add(T0, T0, S4);
    a.shli(T0, T0, 3);
    a.add(S0, S0, T0);
    a.fld(0, S0, 0);                    // a[i][k]

    a.li(S1, static_cast<int64_t>(matB));
    a.mul(T1, S4, S6);
    a.shli(T1, T1, 3);
    a.add(S1, S1, T1);                  // &b[k][0]

    a.li(S2, static_cast<int64_t>(matC));
    a.mul(T2, S3, S6);
    a.shli(T2, T2, 3);
    a.add(S2, S2, T2);                  // &c[i][0]

    a.li(S5, 0);
    a.label("jloop");
    a.fld(1, S1, 0);
    a.fmul(1, 0, 1);
    a.fld(2, S2, 0);
    a.fadd(2, 2, 1);
    a.fsd(2, S2, 0);
    a.addi(S1, S1, 8);
    a.addi(S2, S2, 8);
    a.addi(S5, S5, 1);
    a.blt(S5, S6, "jloop");

    a.addi(S4, S4, 1);
    a.blt(S4, S6, "kloop");

    a.addi(S3, S3, 1);
    a.blt(S3, S6, "iloop");

    a.addi(S9, S9, -1);
    a.bnez(S9, "iter");
    a.halt();
    return a.finish();
}

} // namespace mica::workloads::kernels
